package nvmeopf

import (
	"nvmeopf/internal/hdf5"
	"nvmeopf/internal/hostqp"
)

// The mini-HDF5 surface: a from-scratch hierarchical data format library
// (groups + typed 1-D datasets with contiguous storage) used for the
// paper's application-level study. Dataset I/O runs through an NVMe-oPF
// initiator with data tagged throughput-critical and metadata tagged
// latency-sensitive — the VOL-style co-design of §V-E.

// H5Device is the asynchronous block device mini-HDF5 files live on.
type H5Device = hdf5.Device

// H5File is an open mini-HDF5 file.
type H5File = hdf5.File

// H5Dataset is an open one-dimensional typed dataset.
type H5Dataset = hdf5.Dataset

// H5Datatype enumerates dataset element types.
type H5Datatype = hdf5.Datatype

// Datatypes.
const (
	H5Float32 = hdf5.Float32
	H5Float64 = hdf5.Float64
	H5Int32   = hdf5.Int32
	H5Int64   = hdf5.Int64
	H5UInt8   = hdf5.UInt8
)

// HostSession is an initiator queue-pair session (the sans-IO state
// machine both transports share); simulated initiators expose one.
type HostSession = hostqp.Session

// H5Create formats dev as a fresh mini-HDF5 file.
func H5Create(dev H5Device, done func(*H5File, error)) { hdf5.Create(dev, done) }

// H5Open opens an existing mini-HDF5 file on dev.
func H5Open(dev H5Device, done func(*H5File, error)) { hdf5.Open(dev, done) }

// NewH5SessionDevice exposes a partition [base, base+blocks) of an
// NVMe-oPF namespace as an H5Device over an initiator session. deferFn
// must schedule its argument after the current event cascade — for a
// simulated session pass the cluster's Defer; it drives the quiesce check
// that drains partial throughput-critical windows when the writer goes
// idle.
func NewH5SessionDevice(sess *HostSession, blockSize uint32, base, blocks uint64, deferFn func(func())) (H5Device, error) {
	return hdf5.NewSessionDevice(sess, blockSize, base, blocks, deferFn)
}
