package stats

import (
	"fmt"
	"strings"
)

// Counter accumulates an operation count and byte count over a known
// duration, and derives IOPS and bandwidth. The zero value is ready to use.
// Counter is not synchronized: confine each instance to one goroutine (the
// simulator's event loop, a connection's reactor) and Merge results after
// the run. For counters fed from several goroutines use AtomicCounter.
type Counter struct {
	Ops   int64
	Bytes int64
}

// Add records n operations moving total bytes.
func (c *Counter) Add(ops, bytes int64) {
	c.Ops += ops
	c.Bytes += bytes
}

// Merge adds o into c.
func (c *Counter) Merge(o Counter) {
	c.Ops += o.Ops
	c.Bytes += o.Bytes
}

// IOPS returns operations per second over a duration of durNanos.
func (c Counter) IOPS(durNanos int64) float64 {
	if durNanos <= 0 {
		return 0
	}
	return float64(c.Ops) / (float64(durNanos) / 1e9)
}

// Bandwidth returns bytes per second over a duration of durNanos.
func (c Counter) Bandwidth(durNanos int64) float64 {
	if durNanos <= 0 {
		return 0
	}
	return float64(c.Bytes) / (float64(durNanos) / 1e9)
}

// Table renders aligned fixed-width rows for terminal reports. Rows are
// added as string slices; columns are sized to the widest cell.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted cells, one format-arg pair per cell is
// not enforced; callers pass pre-formatted strings via fmt.Sprintf when
// needed. This helper formats every value with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
