package stats

import (
	"strings"
	"testing"
)

func TestCounterRates(t *testing.T) {
	var c Counter
	c.Add(1000, 4096*1000)
	sec := int64(1e9)
	if got := c.IOPS(sec); got != 1000 {
		t.Errorf("IOPS = %v, want 1000", got)
	}
	if got := c.Bandwidth(sec); got != 4096*1000 {
		t.Errorf("Bandwidth = %v", got)
	}
	if c.IOPS(0) != 0 || c.Bandwidth(-1) != 0 {
		t.Error("nonpositive duration should give 0 rate")
	}
}

func TestCounterMerge(t *testing.T) {
	a := Counter{Ops: 1, Bytes: 10}
	b := Counter{Ops: 2, Bytes: 20}
	a.Merge(b)
	if a.Ops != 3 || a.Bytes != 30 {
		t.Fatalf("merge = %+v", a)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines (header, sep, 2 rows), got %d:\n%s", len(lines), out)
	}
	// Column alignment: "value" column should start at the same offset in
	// header and rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", `he said "hi"`)
	out := tb.CSV()
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Errorf("Bar(5,10,10) = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Errorf("overflow bar should clamp")
	}
	if Bar(-1, 10, 10) != "" || Bar(1, 0, 10) != "" {
		t.Errorf("degenerate bars should be empty")
	}
}
