package stats

import "sync/atomic"

// AtomicCounter is the concurrency-safe sibling of Counter: Add may be
// called from any goroutine (one atomic add per field, no lock) and
// Snapshot returns a consistent-enough plain Counter for reporting. Use it
// where several reactors or workers feed one counter; keep plain Counter
// for single-goroutine hot loops, where the atomics would be pure cost.
type AtomicCounter struct {
	ops   atomic.Int64
	bytes atomic.Int64
}

// Add records n operations moving total bytes.
func (c *AtomicCounter) Add(ops, bytes int64) {
	c.ops.Add(ops)
	c.bytes.Add(bytes)
}

// Snapshot returns the current totals as a plain Counter. The two loads
// are individually atomic but not taken as a pair; between them a
// concurrent Add may land, so Ops and Bytes can be skewed by at most the
// in-flight operation — fine for monitoring, which is this type's job.
func (c *AtomicCounter) Snapshot() Counter {
	return Counter{Ops: c.ops.Load(), Bytes: c.bytes.Load()}
}
