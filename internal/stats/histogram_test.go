package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zeroed: %v", h.String())
	}
	if h.Quantile(0.99) != 0 {
		t.Fatalf("empty quantile = %d, want 0", h.Quantile(0.99))
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.Record(12345)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got != 12345 {
			t.Errorf("Quantile(%v) = %d, want 12345", q, got)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample not clamped: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramMinMaxSumMean(t *testing.T) {
	var h Histogram
	vals := []int64{10, 20, 30, 40}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if h.Sum() != 100 {
		t.Fatalf("sum=%d", h.Sum())
	}
	if h.Mean() != 25 {
		t.Fatalf("mean=%v", h.Mean())
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 37 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

func TestBucketLowInverse(t *testing.T) {
	// For every bucket, bucketIndex(bucketLow(i)) == i.
	for i := 0; i < maxExp*subBuckets-subBuckets; i++ {
		lo := bucketLow(i)
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", i, lo, got)
		}
	}
}

// TestQuantileRelativeError checks the histogram quantile against the exact
// quantile on random workload-like samples; the log bucketing bounds
// relative error to ~1/64 plus one bucket.
func TestQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mixture of a body (~100us) and a heavy tail (~10ms).
		var v int64
		if rng.Intn(100) < 97 {
			v = 50_000 + rng.Int63n(100_000)
		} else {
			v = 1_000_000 + rng.Int63n(20_000_000)
		}
		h.Record(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 0.9999} {
		exact := ExactQuantile(samples, q)
		got := h.Quantile(q)
		relErr := float64(got-exact) / float64(exact)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.05 {
			t.Errorf("q=%v exact=%d got=%d relErr=%.3f", q, exact, got, relErr)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1_000_000)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() {
		t.Fatalf("merge count/sum mismatch: %d/%d vs %d/%d", a.Count(), a.Sum(), all.Count(), all.Sum())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge min/max mismatch")
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merge quantile mismatch at %v: %d vs %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a Histogram
	a.Record(5)
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != 1 || a.Min() != 5 {
		t.Fatalf("merge with empty perturbed state: %s", a.String())
	}
	var empty Histogram
	var src Histogram
	src.Record(9)
	empty.Merge(&src)
	if empty.Min() != 9 || empty.Max() != 9 || empty.Count() != 1 {
		t.Fatalf("merge into empty wrong: %s", empty.String())
	}
}

func TestRecordN(t *testing.T) {
	var h, ref Histogram
	h.RecordN(100, 5)
	for i := 0; i < 5; i++ {
		ref.Record(100)
	}
	if h.Count() != ref.Count() || h.Sum() != ref.Sum() || h.Min() != ref.Min() || h.Max() != ref.Max() {
		t.Fatalf("RecordN mismatch: %s vs %s", h.String(), ref.String())
	}
	h.RecordN(50, 0)
	h.RecordN(50, -3)
	if h.Count() != 5 {
		t.Fatalf("RecordN with n<=0 recorded something")
	}
}

func TestTailDegrades(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Record(int64(i))
	}
	if h.Tail() != h.Max() {
		t.Errorf("tiny sample Tail() should be max")
	}
	for i := 0; i < 1000; i++ {
		h.Record(int64(i))
	}
	if h.Tail() != h.P999() {
		t.Errorf("1k sample Tail() should be p99.9")
	}
	for i := 0; i < 10000; i++ {
		h.Record(int64(i))
	}
	if h.Tail() != h.P9999() {
		t.Errorf("10k sample Tail() should be p99.99")
	}
}

// Property: quantiles are monotone nondecreasing in q, and bounded by
// min/max, for arbitrary sample sets.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Record(int64(r % 10_000_000))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two histograms is equivalent to recording the
// concatenation of their samples.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b, all Histogram
		for _, x := range xs {
			a.Record(int64(x))
			all.Record(int64(x))
		}
		for _, y := range ys {
			b.Record(int64(y))
			all.Record(int64(y))
		}
		a.Merge(&b)
		if a.Count() != all.Count() || a.Sum() != all.Sum() {
			return false
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
			if a.Quantile(q) != all.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatNanos(t *testing.T) {
	cases := map[int64]string{
		5:             "5ns",
		1500:          "1.50us",
		2_500_000:     "2.50ms",
		3_000_000_000: "3.00s",
	}
	for in, want := range cases {
		if got := FormatNanos(in); got != want {
			t.Errorf("FormatNanos(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytesPerSec(t *testing.T) {
	cases := map[float64]string{
		10:     "10B/s",
		1500:   "1.50KB/s",
		2.5e6:  "2.50MB/s",
		3.25e9: "3.25GB/s",
		12.5e9: "12.50GB/s",
	}
	for in, want := range cases {
		if got := FormatBytesPerSec(in); got != want {
			t.Errorf("FormatBytesPerSec(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(10)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}
