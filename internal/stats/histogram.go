// Package stats provides latency histograms, throughput counters, and
// table rendering used by the benchmark harness and the experiment runners.
//
// The histogram is log-bucketed (HDR-style) so that recording is O(1) and
// allocation-free on the hot path while still resolving high percentiles
// (p99.99) with bounded relative error.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// subBucketBits controls histogram resolution: each power-of-two range is
// split into 2^subBucketBits linear sub-buckets, bounding relative error of
// any recorded value to 1/2^subBucketBits (~1.6% here).
const subBucketBits = 6

const subBuckets = 1 << subBucketBits

// maxExp is the number of power-of-two ranges tracked. 2^44 ns is about
// 4.8 hours, far beyond any latency this repo measures.
const maxExp = 44

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (nanoseconds by convention). The zero value is ready to use.
// Histogram is not safe for concurrent use; in the simulator every
// recording site runs on the single event-loop goroutine, and the TCP
// driver keeps one histogram per worker and merges at the end.
type Histogram struct {
	counts [maxExp * subBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Position of the highest set bit, relative to the sub-bucket width.
	exp := bits.Len64(uint64(v)) - 1 - subBucketBits
	if exp >= maxExp-1 {
		exp = maxExp - 2
		return (exp+1)*subBuckets - 1 + subBuckets
	}
	sub := int(v >> uint(exp)) // in [subBuckets, 2*subBuckets)
	return (exp+1)*subBuckets + (sub - subBuckets)
}

// bucketLow returns the lowest value mapping to bucket i (inverse of
// bucketIndex, up to quantization).
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := i/subBuckets - 1
	sub := i%subBuckets + subBuckets
	return int64(sub) << uint(exp)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordN adds the same sample n times.
func (h *Histogram) RecordN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)] += n
	h.n += n
	h.sum += v * n
	if h.n == n || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge adds all samples of o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 if empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *Histogram) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean of recorded samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]). For q=1 it
// returns Max(). Empty histograms return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P90, P99, P999, P9999 are convenience accessors for common tails.
func (h *Histogram) P50() int64   { return h.Quantile(0.50) }
func (h *Histogram) P90() int64   { return h.Quantile(0.90) }
func (h *Histogram) P99() int64   { return h.Quantile(0.99) }
func (h *Histogram) P999() int64  { return h.Quantile(0.999) }
func (h *Histogram) P9999() int64 { return h.Quantile(0.9999) }

// Tail returns the 99.99th percentile when at least minSamples samples are
// available to make it meaningful, otherwise it degrades to the highest
// percentile the sample count supports (p99.9, then p99, then max).
// The paper reports 99.99% tail latency; short simulations of LS tenants at
// QD=1 may not accumulate 10^4 samples, so experiments call Tail.
func (h *Histogram) Tail() int64 {
	switch {
	case h.n >= 10000:
		return h.P9999()
	case h.n >= 1000:
		return h.P999()
	case h.n >= 100:
		return h.P99()
	default:
		return h.Max()
	}
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d p99.99=%d max=%d",
		h.n, h.Mean(), h.P50(), h.P99(), h.P9999(), h.max)
}

// Percentiles returns (quantile, value) pairs for a default ladder, for
// report rendering.
func (h *Histogram) Percentiles() []struct {
	Q float64
	V int64
} {
	qs := []float64{0.5, 0.9, 0.99, 0.999, 0.9999}
	out := make([]struct {
		Q float64
		V int64
	}, 0, len(qs))
	for _, q := range qs {
		out = append(out, struct {
			Q float64
			V int64
		}{q, h.Quantile(q)})
	}
	return out
}

// ExactQuantile computes the q-quantile of raw samples; used by tests to
// validate Histogram against ground truth.
func ExactQuantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// FormatNanos renders a nanosecond count in a human unit.
func FormatNanos(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// FormatBytesPerSec renders a byte rate.
func FormatBytesPerSec(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2fGB/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2fMB/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2fKB/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0fB/s", bps)
	}
}

// Bar renders a crude ASCII bar of width proportional to v/max, used by the
// experiment CLI to sketch figures in the terminal.
func Bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 || width <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
