package stats

import (
	"sync"
	"testing"
)

func TestAtomicCounterConcurrentAdds(t *testing.T) {
	const workers, perWorker = 8, 1000
	var c AtomicCounter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1, 4096)
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Ops != workers*perWorker {
		t.Fatalf("ops = %d, want %d", snap.Ops, workers*perWorker)
	}
	if snap.Bytes != workers*perWorker*4096 {
		t.Fatalf("bytes = %d, want %d", snap.Bytes, workers*perWorker*4096)
	}
	// The snapshot is a plain Counter: derived rates work on it directly.
	if iops := snap.IOPS(1e9); iops != workers*perWorker {
		t.Fatalf("IOPS over 1s = %v", iops)
	}
}
