package simcluster

import (
	"bytes"
	"testing"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// runRecordedCluster drives 1 LS + 1 TC tenant with flight recorders on
// both sides and returns the parsed host and target dumps plus the
// request counts, exercising the full record → dump → parse pipeline.
func runRecordedCluster(t *testing.T, tcReqs, lsReqs, window int) (host, target *telemetry.Dump) {
	t.Helper()
	prof, err := ProfileFor(100)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{Profile: prof, Mode: targetqp.ModeOPF, Seed: 42})
	hostRec, targetRec := c.AttachFlightRecorders(telemetry.RecorderConfig{})
	if c.HostRecorder() != hostRec || c.TargetRecorder() != targetRec {
		t.Fatal("recorder accessors do not return the attached recorders")
	}
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInitiatorNode("ini0", tn)
	tc, err := in.Connect(hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: window, QueueDepth: 32, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := in.Connect(hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()

	done, issued := 0, 0
	tc.Session.OnConnect(func() {
		var submit func()
		submit = func() {
			i := issued
			issued++
			if err := tc.Session.Submit(hostqp.IO{
				Op: nvme.OpRead, LBA: uint64(i), Blocks: 1,
				Done: func(hostqp.Result) {
					done++
					if issued < tcReqs {
						submit()
					}
				},
			}); err != nil {
				t.Errorf("tc submit %d: %v", i, err)
			}
		}
		// Keep the queue saturated without exceeding the depth limit.
		for issued < tcReqs && issued < 24 {
			submit()
		}
	})
	lsDone := 0
	ls.Session.OnConnect(func() {
		var issue func()
		issue = func() {
			if lsDone >= lsReqs {
				return
			}
			_ = ls.Session.Submit(hostqp.IO{
				Op: nvme.OpRead, LBA: 9000, Blocks: 1,
				Done: func(hostqp.Result) { lsDone++; issue() },
			})
		}
		issue()
	})
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	if done != tcReqs || lsDone != lsReqs {
		t.Fatalf("completions: tc=%d/%d ls=%d/%d", done, tcReqs, lsDone, lsReqs)
	}

	// The handshake must have fed the host recorder a clock estimate: both
	// sides share the virtual clock, so the estimated offset cannot exceed
	// the handshake RTT.
	off, rtt := hostRec.ClockOffset()
	if rtt <= 0 {
		t.Fatalf("handshake RTT estimate = %d, want > 0", rtt)
	}
	if off < -rtt || off > rtt {
		t.Fatalf("shared-clock offset estimate %dns exceeds RTT bound %dns", off, rtt)
	}

	parse := func(rec *telemetry.Recorder) *telemetry.Dump {
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		d, err := telemetry.ReadDump(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	return parse(hostRec), parse(targetRec)
}

// TestClusterFlightRecorderReconstruction is the acceptance bar for the
// flight-recorder pipeline: with ample ring capacity, the correlator must
// rebuild ≥ 99% of submitted requests into complete timelines whose stage
// durations telescope exactly to the end-to-end latency.
func TestClusterFlightRecorderReconstruction(t *testing.T) {
	const tcReqs, lsReqs, window = 64, 8, 8
	host, target := runRecordedCluster(t, tcReqs, lsReqs, window)
	if host.Meta.Role != "host" || target.Meta.Role != "target" {
		t.Fatalf("dump roles: %q / %q", host.Meta.Role, target.Meta.Role)
	}

	c := telemetry.Correlate(host, target)
	if !c.TwoSided {
		t.Fatal("correlation not two-sided")
	}
	if c.Submitted != tcReqs+lsReqs {
		t.Fatalf("submitted = %d, want %d", c.Submitted, tcReqs+lsReqs)
	}
	if ratio := float64(c.CompleteCount()) / float64(c.Submitted); ratio < 0.99 {
		t.Fatalf("reconstruction ratio %.3f < 0.99 (%d/%d)", ratio, c.CompleteCount(), c.Submitted)
	}

	for i := range c.Timelines {
		tl := &c.Timelines[i]
		if !tl.Complete(true) {
			t.Fatalf("incomplete timeline tenant=%d cid=%d epoch=%d: %+v", tl.Tenant, tl.CID, tl.Epoch, tl.Points)
		}
		if !tl.Monotonic(c.Tolerance) {
			t.Fatalf("non-monotonic timeline tenant=%d cid=%d: %+v", tl.Tenant, tl.CID, tl.Points)
		}
		e2e, ok := tl.E2E()
		if !ok || e2e <= 0 {
			t.Fatalf("timeline tenant=%d cid=%d lacks e2e latency", tl.Tenant, tl.CID)
		}
		var sum int64
		for _, name := range telemetry.SpanOrder {
			sum += telemetry.Breakdown(tl)[name]
		}
		// Spans telescope: the sum equals e2e up to the clock-estimate
		// error, once per cross-runtime hop (host→target and back).
		if diff := sum - e2e; diff > 2*c.Tolerance || diff < -2*c.Tolerance {
			t.Fatalf("spans sum %d != e2e %d (tolerance %d) for tenant=%d cid=%d",
				sum, e2e, c.Tolerance, tl.Tenant, tl.CID)
		}
		// Queued TC requests must show the queueing stages; LS and the
		// drain-marked trigger (which bypasses the tenant queue) must not.
		switch prio := proto.Priority(tl.Prio); {
		case prio.LatencySensitive():
			if tl.Has(telemetry.StageEnqueue) {
				t.Fatalf("LS timeline has an enqueue stage: %+v", tl.Points)
			}
		case prio.Draining():
			if !tl.Has(telemetry.StageDrainMark) || tl.Has(telemetry.StageEnqueue) {
				t.Fatalf("draining timeline stages wrong: %+v", tl.Points)
			}
		default:
			if !tl.Has(telemetry.StageDrainStart) {
				t.Fatalf("TC timeline missing drain-start: %+v", tl.Points)
			}
		}
	}

	// The analyzer sees a healthy run: everything reconstructed, no
	// anomalies, both tenant classes present in the tables.
	rep := telemetry.Analyze(c, telemetry.AnalyzeOptions{})
	if rep.Incomplete != 0 || len(rep.Anomalies) != 0 {
		t.Fatalf("healthy run reported %d incomplete, anomalies %+v", rep.Incomplete, rep.Anomalies)
	}
	classes := map[string]bool{}
	for _, s := range rep.Stats {
		classes[s.Class.String()] = true
		if s.P50 <= 0 || s.Max < s.P99 || s.P99 < s.P50 {
			t.Fatalf("stats row out of order: %+v", s)
		}
	}
	if !classes["ls"] || !classes["tc"] {
		t.Fatalf("report classes = %v, want both ls and tc", classes)
	}
}

// TestClusterFlightRecorderDeterminism: two identical simulated runs must
// produce byte-identical analyzer reports — the property that makes the
// opf-trace golden test (and every future trace regression test) stable.
func TestClusterFlightRecorderDeterminism(t *testing.T) {
	render := func() string {
		host, target := runRecordedCluster(t, 32, 4, 8)
		rep := telemetry.Analyze(telemetry.Correlate(host, target), telemetry.AnalyzeOptions{})
		var buf bytes.Buffer
		if err := rep.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("reports differ across identical runs:\n--- run 1:\n%s\n--- run 2:\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty report")
	}
}
