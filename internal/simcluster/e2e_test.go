package simcluster

import (
	"reflect"
	"testing"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// TestE2EExactMergeAcrossFabric is the feedback channel's core
// correctness claim, asserted over the full simulated fabric: every
// latency the host observes is also what the host's own registry records,
// and the target's merged per-tenant e2e histogram must equal that
// registry's histogram EXACTLY — bucket counts, sum, sample count, and
// max — because both sides share one bucket geometry and deltas merge by
// addition, never by re-sampling.
func TestE2EExactMergeAcrossFabric(t *testing.T) {
	prof, err := ProfileFor(100)
	if err != nil {
		t.Fatal(err)
	}
	targetTel := telemetry.New()
	hostTel := telemetry.New()
	c := New(Options{
		Profile: prof, Mode: targetqp.ModeOPF, Seed: 7,
		Telemetry:       targetTel,
		HostTelemetryNS: 200_000, // 200 µs virtual cadence
	})
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInitiatorNode("ini0", tn)
	ls, err := in.Connect(hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 4, NSID: 1,
		Telemetry: hostTel,
	})
	if err != nil {
		t.Fatal(err)
	}

	const reqs = 64
	done := 0
	ls.Session.OnConnect(func() {
		var issue func()
		issue = func() {
			if done >= reqs {
				return
			}
			_ = ls.Session.Submit(hostqp.IO{
				Op: nvme.OpRead, LBA: uint64(done), Blocks: 1,
				Done: func(hostqp.Result) { done++; issue() },
			})
		}
		issue()
	})
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	if done != reqs {
		t.Fatalf("completed %d/%d", done, reqs)
	}
	tenant := ls.Session.Tenant()

	// The final tick after the workload drained shipped the last delta, so
	// the merge must now be exact, not just eventually close.
	hostHist := hostTel.LatencyHist(tenant, telemetry.ClassLS)
	merged := targetTel.E2EHist(tenant, telemetry.ClassLS)
	if hostHist == nil || merged == nil {
		t.Fatalf("histograms missing: host=%v target=%v", hostHist != nil, merged != nil)
	}
	want, got := hostHist.Snapshot(), merged.Snapshot()
	if got.Count != int64(reqs) {
		t.Fatalf("target merged %d samples, want %d", got.Count, reqs)
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatal("merged bucket counts differ from the host's histogram")
	}
	if got.Sum != want.Sum || got.Max != want.Max {
		t.Fatalf("sum/max: got (%d, %d), want (%d, %d)", got.Sum, got.Max, want.Sum, want.Max)
	}

	// The e2e view includes the fabric: its p99 dominates the target-side
	// service p99, and the snapshot reports the gap.
	var found bool
	for _, s := range targetTel.E2E() {
		if s.Tenant != uint16(tenant) {
			continue
		}
		found = true
		if s.Updates == 0 {
			t.Fatal("no updates counted")
		}
		for _, cs := range s.Classes {
			if cs.Class != "ls" {
				continue
			}
			if cs.GapP99NS <= 0 {
				t.Fatalf("egress gap %dns, want > 0 (e2e includes the fabric)", cs.GapP99NS)
			}
		}
	}
	if !found {
		t.Fatal("tenant missing from /debug/e2e snapshot")
	}

	// The acks drove periodic clock re-estimates on the host. Both sides
	// share the virtual clock, so every estimate must stay within its RTT
	// error bound.
	count, _ := hostTel.ClockReestimates(tenant)
	if count == 0 {
		t.Fatal("no clock re-estimates recorded")
	}
	off, rtt := ls.Session.ClockOffset()
	if rtt <= 0 {
		t.Fatalf("rtt %d, want > 0", rtt)
	}
	if off < -rtt || off > rtt {
		t.Fatalf("shared-clock offset estimate %dns exceeds RTT bound %dns", off, rtt)
	}
}

// TestE2EChannelOffBitIdentical pins that a cluster without
// HostTelemetryNS produces zero feedback state: same wire, same stats,
// same registries as before the feature existed.
func TestE2EChannelOffBitIdentical(t *testing.T) {
	prof, err := ProfileFor(100)
	if err != nil {
		t.Fatal(err)
	}
	targetTel := telemetry.New()
	c := New(Options{Profile: prof, Mode: targetqp.ModeOPF, Seed: 7, Telemetry: targetTel})
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInitiatorNode("ini0", tn)
	ls, err := in.Connect(hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	ls.Session.OnConnect(func() {
		for i := 0; i < 4; i++ {
			_ = ls.Session.Submit(hostqp.IO{
				Op: nvme.OpRead, LBA: uint64(i), Blocks: 1,
				Done: func(hostqp.Result) { done++ },
			})
		}
	})
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	if st := tn.Target.Stats(); st.TelemetryUpdates != 0 {
		t.Fatalf("%d TelemetryUpdates with the channel off", st.TelemetryUpdates)
	}
	if e2e := targetTel.E2E(); len(e2e) != 0 {
		t.Fatalf("e2e state with the channel off: %+v", e2e)
	}
}
