package simcluster

import (
	"fmt"
	"testing"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/workload"
)

// runLSWithBackground runs one closed-loop LS reader (QD 1, the paper's
// latency probe) against a target, optionally alongside background write
// initiators of the given class, and returns the LS tail latency, the
// total background ops recorded, and the target node for stats
// inspection.
func runLSWithBackground(t *testing.T, bgCount int, bgClass proto.Priority, aging int64) (int64, int64, *TargetNode) {
	t.Helper()
	c := New(Options{Profile: ProfileCL(), Mode: targetqp.ModeOPF, Seed: 11, ScavengerAging: aging})
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	lsNode := c.NewInitiatorNode("ls0", tn)
	lsIni, err := lsNode.Connect(hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	stop := int64(80_000_000)
	lsRun, err := workload.NewRunner(lsIni.Session, c.Eng.Now, workload.Spec{
		Mix: workload.ReadOnly, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 1,
		RegionStart: 0, RegionBlocks: 1 << 20, WarmupUntil: stop / 5, StopAt: stop, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	bgRuns := make([]*workload.Runner, 0, bgCount)
	for i := 0; i < bgCount; i++ {
		n := c.NewInitiatorNode(fmt.Sprintf("bg%d", i), tn)
		ini, cerr := n.Connect(hostqp.Config{Class: bgClass, Window: 8, QueueDepth: 16, NSID: 1})
		if cerr != nil {
			t.Fatal(cerr)
		}
		r, werr := workload.NewRunner(ini.Session, c.Eng.Now, workload.Spec{
			Mix: workload.WriteOnly, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 16,
			RegionStart: uint64(1+i) << 20, RegionBlocks: 1 << 20,
			WarmupUntil: stop / 5, StopAt: stop, Seed: uint64(40 + i),
		})
		if werr != nil {
			t.Fatal(werr)
		}
		bgRuns = append(bgRuns, r)
	}
	lsRun.Start()
	for _, r := range bgRuns {
		r.Start()
	}
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	if lsRun.Result().Latency.Count() == 0 {
		t.Fatal("no LS samples")
	}
	var bgOps int64
	for _, r := range bgRuns {
		bgOps += r.Result().Recorded.Ops
	}
	return lsRun.Result().Latency.Tail(), bgOps, tn
}

// TestScavengerNoisyNeighbor is the headline property of the class: a
// sustained stream of best-effort background writes makes forward progress
// but cannot move the LS tail, because scavenger windows drain only into
// leftover capacity and in bounded chunks. The same stream labelled
// throughput-critical is the control: its drain windows hit the device on
// their own schedule, so it visibly does move the LS tail.
func TestScavengerNoisyNeighbor(t *testing.T) {
	aloneTail, _, _ := runLSWithBackground(t, 0, proto.PrioScavenger, 0)
	scavTail, scavOps, tn := runLSWithBackground(t, 2, proto.PrioScavenger, 0)
	if scavOps == 0 {
		t.Fatal("scavenger flood recorded no ops — background class starved outright")
	}
	pm := tn.Target.PMStats()
	if pm.ScavQueued == 0 || pm.ScavDrains == 0 {
		t.Fatalf("scavenger path not exercised: queued=%d drains=%d", pm.ScavQueued, pm.ScavDrains)
	}
	// The LS probe runs at QD 1 with the bypass, so its tail should be
	// essentially unchanged by best-effort load. Allow 25% slack for the
	// shared target NIC/CPU pipe (capsule serialization is below the
	// priority scheme) plus an absolute floor so a near-zero baseline
	// doesn't make the ratio twitchy.
	limit := aloneTail + aloneTail/4 + 20_000
	if scavTail > limit {
		t.Fatalf("LS tail moved under scavenger flood: alone %dus, flooded %dus (limit %dus)",
			aloneTail/1000, scavTail/1000, limit/1000)
	}
	// Control: the identical stream submitted as TC interferes more — if it
	// doesn't, this test is measuring an unloaded target, not isolation.
	tcTail, tcOps, _ := runLSWithBackground(t, 2, proto.PrioThroughputCritical, 0)
	if tcOps == 0 {
		t.Fatal("TC control flood recorded no ops")
	}
	if scavTail >= tcTail {
		t.Fatalf("scavenger flood hurt LS at least as much as the TC control: scav %dus >= tc %dus",
			scavTail/1000, tcTail/1000)
	}
	t.Logf("LS tail: alone %dus, scavenger flood %dus (%d ops), TC control %dus (%d ops)",
		aloneTail/1000, scavTail/1000, scavOps, tcTail/1000, tcOps)
}

// TestScavengerAgedDrainUnderContinuousLS pins the aging bound: a deep
// closed-loop LS stream keeps lsPending nonzero at every poll point, so a
// parked scavenger window would starve forever without ScavengerAging. With
// aging set, the window force-drains and the scavenger ops complete while
// the foreground stream is still running.
func TestScavengerAgedDrainUnderContinuousLS(t *testing.T) {
	c := New(Options{Profile: ProfileCL(), Mode: targetqp.ModeOPF, Seed: 13, ScavengerAging: 2_000_000})
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	lsNode := c.NewInitiatorNode("ls0", tn)
	lsIni, err := lsNode.Connect(hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 128, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	scavNode := c.NewInitiatorNode("scav0", tn)
	scavIni, err := scavNode.Connect(hostqp.Config{Class: proto.PrioScavenger, Window: 4, QueueDepth: 8, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	stop := int64(60_000_000)
	lsRun, err := workload.NewRunner(lsIni.Session, c.Eng.Now, workload.Spec{
		Mix: workload.ReadOnly, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 128,
		RegionStart: 0, RegionBlocks: 1 << 20, WarmupUntil: stop / 5, StopAt: stop, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const scavIOs = 4
	doneAt := make([]int64, 0, scavIOs)
	scavIni.Session.OnConnect(func() {
		for i := 0; i < scavIOs; i++ {
			lba := uint64(1<<20 + i)
			if serr := scavIni.Session.Submit(hostqp.IO{
				Op: nvme.OpWrite, LBA: lba, Blocks: 1,
				Done: func(r hostqp.Result) {
					if !r.Status.OK() {
						t.Errorf("scavenger write: %v", r.Status)
					}
					doneAt = append(doneAt, c.Eng.Now())
				},
			}); serr != nil {
				t.Errorf("scavenger submit: %v", serr)
			}
		}
	})
	lsRun.Start()
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	if len(doneAt) != scavIOs {
		t.Fatalf("parked scavenger window never completed: %d/%d ops done", len(doneAt), scavIOs)
	}
	for _, at := range doneAt {
		if at >= stop {
			t.Fatalf("scavenger op completed at %dns, after the LS stream stopped at %dns — "+
				"aging did not release the window under load", at, stop)
		}
	}
	pm := tn.Target.PMStats()
	if pm.ScavAgedDrains == 0 {
		t.Fatalf("no aged drains recorded (drains=%d) — scavenger progressed on leftover capacity, "+
			"so this test no longer exercises the aging bound", pm.ScavDrains)
	}
	t.Logf("scavenger ops completed at %v ns under continuous LS (aged drains: %d)", doneAt, pm.ScavAgedDrains)
}
