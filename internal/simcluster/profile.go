// Package simcluster assembles whole NVMe-oPF deployments on the
// discrete-event engine: initiator nodes and target nodes with their
// poller CPUs and NICs, point-to-point links at 10/25/100 Gbps, simulated
// SSDs, and the host/target queue-pair state machines wired through the
// network and CPU cost models. Every experiment in the paper's evaluation
// runs on a cluster built here.
package simcluster

import (
	"fmt"

	"nvmeopf/internal/simnet"
	"nvmeopf/internal/ssdsim"
)

// Profile captures one hardware platform: link rate, NIC/link parameters,
// per-node poller-CPU costs, and the SSD model. The two profiles mirror
// Table I: Chameleon Cloud (CC) nodes carry the 10/25 Gbps NICs and a
// 2.3 GHz EPYC 7352; CloudLab (CL) nodes carry 100 Gbps NICs and a faster
// 2.8 GHz EPYC 7543.
//
// The CPU constants are calibration values, not measurements: they are
// chosen so the relative results of the paper's evaluation (who wins,
// by roughly what factor, where saturation appears) reproduce. See
// DESIGN.md §5.
type Profile struct {
	Name      string
	LinkGbps  float64
	Link      simnet.LinkConfig
	HostCPU   simnet.CPUConfig
	TargetCPU simnet.CPUConfig
	SSD       ssdsim.Config
}

// etherOverhead is the per-packet wire overhead: Ethernet preamble + SFD
// (8) + header (14) + FCS (4) + IFG (12) + IPv4 (20) + TCP (20).
const etherOverhead = 78

// ccCPU returns the poller cost model for the slower CC (10/25G) nodes.
// The standalone-small-send surcharge depends on the NIC line rate: the
// 25 Gbps runs drain tiny segments (and their ACK clocking) considerably
// faster than the saturated 10 Gbps runs, which the paper's Fig. 7(a)
// SPDK-10G vs SPDK-25G gap reflects.
func ccCPU(gbps float64) simnet.CPUConfig {
	small := simnet.Time(6400)
	if gbps >= 25 {
		small = 4200
	}
	return simnet.CPUConfig{
		RxPDU:        1150,
		TxPDU:        1150,
		SmallTxExtra: small,
		RxSmallExtra: 6000,
		PerByte:      0.030,
		SubmitOp:     420,
	}
}

// clCPU returns the poller cost model for the faster CL (100G) nodes.
func clCPU() simnet.CPUConfig {
	return simnet.CPUConfig{
		RxPDU:        420,
		TxPDU:        420,
		SmallTxExtra: 3300,
		RxSmallExtra: 5000,
		PerByte:      0.020,
		SubmitOp:     300,
	}
}

// ccSSD models the Chameleon Cloud 3.2 TB NVMe SSD: fast 4K reads,
// substantially slower sustained 4K writes.
func ccSSD() ssdsim.Config {
	c := ssdsim.DefaultConfig(0, false)
	c.ReadBase, c.ReadJitter = 52_000, 12_000
	c.WriteBase, c.WriteJitter = 120_000, 30_000
	return c
}

// clSSD models the CloudLab 1.6 TB NVMe SSD: a newer device whose
// DRAM-buffered 4K writes sustain nearly read-class IOPS.
func clSSD() ssdsim.Config {
	c := ssdsim.DefaultConfig(0, false)
	c.ReadBase, c.ReadJitter = 50_000, 12_000
	c.WriteBase, c.WriteJitter = 54_000, 14_000
	return c
}

// ProfileCC returns the Chameleon Cloud platform at 10 or 25 Gbps
// (storage_nvme nodes, 3.2 TB NVMe SSD).
func ProfileCC(gbps float64) (Profile, error) {
	if gbps != 10 && gbps != 25 {
		return Profile{}, fmt.Errorf("simcluster: CC profile supports 10/25 Gbps, not %v", gbps)
	}
	return Profile{
		Name:     fmt.Sprintf("CC-%.0fG", gbps),
		LinkGbps: gbps,
		Link: simnet.LinkConfig{
			BitsPerSec:       int64(gbps * 1e9),
			MTU:              1500,
			PacketOverhead:   etherOverhead,
			PropagationDelay: 20_000, // 20us in-rack RTT/2
		},
		HostCPU:   ccCPU(gbps),
		TargetCPU: ccCPU(gbps),
		SSD:       ccSSD(),
	}, nil
}

// ProfileCL returns the CloudLab platform at 100 Gbps (r6525 nodes,
// 1.6 TB NVMe SSD).
func ProfileCL() Profile {
	return Profile{
		Name:     "CL-100G",
		LinkGbps: 100,
		Link: simnet.LinkConfig{
			BitsPerSec:       100e9,
			MTU:              1500,
			PacketOverhead:   etherOverhead,
			PropagationDelay: 15_000,
		},
		HostCPU:   clCPU(),
		TargetCPU: clCPU(),
		SSD:       clSSD(),
	}
}

// ProfileFor returns the platform the paper used for a line rate:
// CC for 10/25 Gbps, CL for 100 Gbps.
func ProfileFor(gbps float64) (Profile, error) {
	switch gbps {
	case 10, 25:
		return ProfileCC(gbps)
	case 100:
		return ProfileCL(), nil
	default:
		return Profile{}, fmt.Errorf("simcluster: no platform for %v Gbps", gbps)
	}
}
