package simcluster

import (
	"testing"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/workload"
)

func TestProfiles(t *testing.T) {
	for _, gbps := range []float64{10, 25, 100} {
		p, err := ProfileFor(gbps)
		if err != nil {
			t.Fatalf("%vG: %v", gbps, err)
		}
		if p.LinkGbps != gbps {
			t.Errorf("%vG profile reports %vG", gbps, p.LinkGbps)
		}
		if err := p.Link.Validate(); err != nil {
			t.Errorf("%vG link: %v", gbps, err)
		}
		if err := p.HostCPU.Validate(); err != nil {
			t.Errorf("%vG host cpu: %v", gbps, err)
		}
	}
	if _, err := ProfileFor(40); err == nil {
		t.Error("40G profile should not exist")
	}
	if _, err := ProfileCC(100); err == nil {
		t.Error("CC at 100G should be rejected")
	}
	// The CL platform has faster CPUs than CC (Table I).
	cc, _ := ProfileCC(10)
	cl := ProfileCL()
	if cl.HostCPU.RxPDU >= cc.HostCPU.RxPDU {
		t.Error("CL CPU should be faster than CC")
	}
}

// buildPair returns a one-initiator cluster ready to run.
func buildPair(t *testing.T, mode targetqp.Mode, gbps float64, hostCfg hostqp.Config, backed bool) (*Cluster, *Initiator, *TargetNode) {
	t.Helper()
	prof, err := ProfileFor(gbps)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{Profile: prof, Mode: mode, Seed: 42})
	tn, err := c.NewTargetNode("tgt0", backed)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInitiatorNode("ini0", tn)
	ini, err := in.Connect(hostCfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, ini, tn
}

func TestHandshakeOverSimNetwork(t *testing.T) {
	c, ini, _ := buildPair(t, targetqp.ModeOPF, 100,
		hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1}, false)
	if ini.Session.Connected() {
		t.Fatal("connected before events ran")
	}
	c.Run()
	if !ini.Session.Connected() {
		t.Fatal("handshake did not complete")
	}
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	// Handshake took two one-way trips plus CPU time: tens of us.
	if now := c.Eng.Now(); now < 30_000 || now > 500_000 {
		t.Errorf("handshake duration %dns looks wrong", now)
	}
}

func TestSingleReadLatencyPlausible(t *testing.T) {
	c, ini, _ := buildPair(t, targetqp.ModeOPF, 100,
		hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1}, false)
	var lat int64 = -1
	ini.Session.OnConnect(func() {
		err := ini.Session.Submit(hostqp.IO{
			Op: nvme.OpRead, LBA: 0, Blocks: 1,
			Done: func(r hostqp.Result) {
				if !r.Status.OK() {
					t.Errorf("status %v", r.Status)
				}
				lat = r.Latency()
			},
		})
		if err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if lat < 0 {
		t.Fatal("read never completed")
	}
	// One 4K read: ~2x15us propagation + ~50us device + CPU + wire
	// -> roughly 85-120us.
	if lat < 60_000 || lat > 250_000 {
		t.Fatalf("single-read latency = %dns, outside plausible envelope", lat)
	}
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndDataIntegrityOverSim(t *testing.T) {
	c, ini, _ := buildPair(t, targetqp.ModeOPF, 100,
		hostqp.Config{Class: proto.PrioThroughputCritical, Window: 2, QueueDepth: 8, NSID: 1}, true)
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i * 13)
	}
	var got []byte
	ini.Session.OnConnect(func() {
		// The read is issued only after the write's completion is
		// observed: two requests in one drain window execute concurrently
		// on the device's channels, so issuing them back-to-back would be
		// a read-your-own-racing-write (window 2 forces the write to wait
		// for a drain, hence the Flush below).
		ini.Session.Flush()
		_ = ini.Session.Submit(hostqp.IO{
			Op: nvme.OpWrite, LBA: 5, Blocks: 1, Data: want,
			Done: func(r hostqp.Result) {
				if !r.Status.OK() {
					t.Errorf("write: %v", r.Status)
				}
				ini.Session.Flush()
				_ = ini.Session.Submit(hostqp.IO{
					Op: nvme.OpRead, LBA: 5, Blocks: 1,
					Done: func(r hostqp.Result) {
						if !r.Status.OK() {
							t.Errorf("read: %v", r.Status)
						}
						got = r.Data
					},
				})
			},
		})
	})
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d bytes", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

// runOne runs a closed-loop TC workload for simMillis of virtual time and
// returns the recorded result and the target node.
func runOne(t *testing.T, mode targetqp.Mode, gbps float64, window int, mix workload.Mix, simMillis int64) (*workload.Result, *TargetNode) {
	t.Helper()
	prof, err := ProfileFor(gbps)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Options{Profile: prof, Mode: mode, Seed: 7})
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInitiatorNode("ini0", tn)
	ini, err := in.Connect(hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: window, QueueDepth: 128, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := simMillis * 1_000_000
	r, err := workload.NewRunner(ini.Session, c.Eng.Now, workload.Spec{
		Mix: mix, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 128,
		RegionStart: 0, RegionBlocks: 1 << 24,
		WarmupUntil: stop / 5, StopAt: stop, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	return r.Result(), tn
}

func TestOPFBeatsBaselineThroughputRead10G(t *testing.T) {
	base, _ := runOne(t, targetqp.ModeBaseline, 10, 32, workload.ReadOnly, 60)
	opf, _ := runOne(t, targetqp.ModeOPF, 10, 32, workload.ReadOnly, 60)
	if base.Recorded.Ops == 0 || opf.Recorded.Ops == 0 {
		t.Fatalf("no ops recorded: base=%d opf=%d", base.Recorded.Ops, opf.Recorded.Ops)
	}
	ratio := float64(opf.Recorded.Ops) / float64(base.Recorded.Ops)
	if ratio < 1.3 {
		t.Fatalf("oPF/SPDK read@10G throughput ratio = %.2f, want > 1.3", ratio)
	}
	t.Logf("read@10G single TC initiator: baseline %.0f IOPS, oPF %.0f IOPS (%.2fx)",
		base.Recorded.IOPS(48_000_000), opf.Recorded.IOPS(48_000_000), ratio)
}

func TestCoalescingReducesWireResponses(t *testing.T) {
	_, tnBase := runOne(t, targetqp.ModeBaseline, 100, 32, workload.ReadOnly, 20)
	_, tnOPF := runOne(t, targetqp.ModeOPF, 100, 32, workload.ReadOnly, 20)
	base := tnBase.Target.Stats()
	opf := tnOPF.Target.Stats()
	// Baseline: one response per command. oPF: ~1/32.
	if base.RespPDUs < base.CmdPDUs {
		t.Fatalf("baseline responses %d < commands %d", base.RespPDUs, base.CmdPDUs)
	}
	if opf.RespPDUs*8 > opf.CmdPDUs {
		t.Fatalf("oPF coalescing weak: %d responses for %d commands", opf.RespPDUs, opf.CmdPDUs)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := runOne(t, targetqp.ModeOPF, 25, 16, workload.Mixed5050, 10)
	b, _ := runOne(t, targetqp.ModeOPF, 25, 16, workload.Mixed5050, 10)
	if a.Recorded.Ops != b.Recorded.Ops || a.Latency.Sum() != b.Latency.Sum() {
		t.Fatalf("same seed diverged: %d/%d ops, %d/%d latsum",
			a.Recorded.Ops, b.Recorded.Ops, a.Latency.Sum(), b.Latency.Sum())
	}
}

func TestLSTailLatencyUnderTCLoad(t *testing.T) {
	// One LS + one TC initiator on separate nodes against one target:
	// baseline queues the LS request behind the TC backlog; oPF bypasses.
	run := func(mode targetqp.Mode) (tail int64) {
		prof := ProfileCL()
		c := New(Options{Profile: prof, Mode: mode, Seed: 3})
		tn, err := c.NewTargetNode("tgt0", false)
		if err != nil {
			t.Fatal(err)
		}
		lsNode := c.NewInitiatorNode("ls0", tn)
		tcNode := c.NewInitiatorNode("tc0", tn)
		lsIni, err := lsNode.Connect(hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
		if err != nil {
			t.Fatal(err)
		}
		tcIni, err := tcNode.Connect(hostqp.Config{Class: proto.PrioThroughputCritical, Window: 32, QueueDepth: 128, NSID: 1})
		if err != nil {
			t.Fatal(err)
		}
		stop := int64(80_000_000)
		lsRun, err := workload.NewRunner(lsIni.Session, c.Eng.Now, workload.Spec{
			Mix: workload.ReadOnly, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 1,
			RegionStart: 0, RegionBlocks: 1 << 20, WarmupUntil: stop / 5, StopAt: stop, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		tcRun, err := workload.NewRunner(tcIni.Session, c.Eng.Now, workload.Spec{
			Mix: workload.ReadOnly, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 128,
			RegionStart: 1 << 20, RegionBlocks: 1 << 20, WarmupUntil: stop / 5, StopAt: stop, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		lsRun.Start()
		tcRun.Start()
		c.Run()
		if err := c.CheckHealthy(); err != nil {
			t.Fatal(err)
		}
		if lsRun.Result().Latency.Count() == 0 {
			t.Fatal("no LS samples")
		}
		return lsRun.Result().Latency.Tail()
	}
	baseTail := run(targetqp.ModeBaseline)
	opfTail := run(targetqp.ModeOPF)
	if opfTail >= baseTail {
		t.Fatalf("LS tail latency: oPF %d >= baseline %d", opfTail, baseTail)
	}
	t.Logf("LS tail: baseline %dus, oPF %dus", baseTail/1000, opfTail/1000)
}
