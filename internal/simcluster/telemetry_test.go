package simcluster

import (
	"strings"
	"testing"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// TestClusterTelemetryInstruments runs 1 LS + 1 TC tenant against an oPF
// target with a live registry attached to both sides, and asserts the
// instruments the exporter serves: per-tenant submitted/completed, LS
// bypass, queue/drain activity, a coalescing ratio > 1 for the TC tenant,
// and virtual-clock latency samples. Deterministic: fixed seed, fixed
// request counts.
func TestClusterTelemetryInstruments(t *testing.T) {
	prof, err := ProfileFor(100)
	if err != nil {
		t.Fatal(err)
	}
	targetTel := telemetry.New()
	hostTel := telemetry.New()
	c := New(Options{Profile: prof, Mode: targetqp.ModeOPF, Seed: 42, Telemetry: targetTel})
	if c.Telemetry() != targetTel {
		t.Fatal("Telemetry() accessor does not return the wired registry")
	}
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInitiatorNode("ini0", tn)

	const window = 8
	tc, err := in.Connect(hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: window, QueueDepth: 32, NSID: 1,
		Telemetry: hostTel,
	})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := in.Connect(hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
		Telemetry: hostTel,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()

	const tcReqs = 4 * window // four full windows
	done := 0
	tc.Session.OnConnect(func() {
		for i := 0; i < tcReqs; i++ {
			if err := tc.Session.Submit(hostqp.IO{
				Op: nvme.OpRead, LBA: uint64(i), Blocks: 1,
				Done: func(hostqp.Result) { done++ },
			}); err != nil {
				t.Errorf("tc submit %d: %v", i, err)
			}
		}
	})
	lsDone := 0
	ls.Session.OnConnect(func() {
		var issue func()
		issue = func() {
			if lsDone >= 4 {
				return
			}
			_ = ls.Session.Submit(hostqp.IO{
				Op: nvme.OpRead, LBA: 9000, Blocks: 1,
				Done: func(hostqp.Result) { lsDone++; issue() },
			})
		}
		issue()
	})
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}
	if done != tcReqs || lsDone != 4 {
		t.Fatalf("completions: tc=%d/%d ls=%d/4", done, tcReqs, lsDone)
	}

	tcID, lsID := tc.Session.Tenant(), ls.Session.Tenant()

	// Target-side instruments.
	byTenant := map[uint16]telemetry.TenantSnapshot{}
	for _, s := range targetTel.Tenants() {
		byTenant[s.Tenant] = s
	}
	ts, ok := byTenant[uint16(tcID)]
	if !ok {
		t.Fatalf("target registry has no snapshot for TC tenant %d", tcID)
	}
	if ts.Submitted != tcReqs || ts.Completed != tcReqs {
		t.Fatalf("TC target counters: submitted=%d completed=%d want %d", ts.Submitted, ts.Completed, tcReqs)
	}
	// Each window's draining request takes the drain path instead of
	// enqueuing, so queued = requests minus one per window.
	if ts.TCQueued != tcReqs-tcReqs/window {
		t.Fatalf("TC queued = %d, want %d", ts.TCQueued, tcReqs-tcReqs/window)
	}
	if ts.Drains != tcReqs/window {
		t.Fatalf("drains = %d, want %d", ts.Drains, tcReqs/window)
	}
	if ts.Window != window {
		t.Fatalf("observed drain window = %d, want %d", ts.Window, window)
	}
	if ts.QueueDepth != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", ts.QueueDepth)
	}
	// One coalesced response per window: ratio == window size.
	if ts.CoalescingRatio <= 1 {
		t.Fatalf("coalescing ratio = %v, want > 1", ts.CoalescingRatio)
	}
	if ts.CoalescingRatio != float64(window) {
		t.Fatalf("coalescing ratio = %v, want exactly %d (one response per full window)", ts.CoalescingRatio, window)
	}
	if ts.Suppressed != tcReqs-tcReqs/window {
		t.Fatalf("suppressed = %d, want %d", ts.Suppressed, tcReqs-tcReqs/window)
	}
	if ts.LatencySamples == 0 || ts.LatencyP50 <= 0 {
		t.Fatalf("target service-latency samples missing: %+v", ts)
	}

	lss, ok := byTenant[uint16(lsID)]
	if !ok {
		t.Fatalf("target registry has no snapshot for LS tenant %d", lsID)
	}
	if lss.LSBypassed != 4 {
		t.Fatalf("LS bypass = %d, want 4", lss.LSBypassed)
	}
	if lss.Responses != 4 || lss.Coalesced != 0 {
		t.Fatalf("LS responses = %d coalesced = %d, want 4/0", lss.Responses, lss.Coalesced)
	}

	// Host-side instruments live in the host registry.
	hostBy := map[uint16]telemetry.TenantSnapshot{}
	for _, s := range hostTel.Tenants() {
		hostBy[s.Tenant] = s
	}
	hts := hostBy[uint16(tcID)]
	if hts.Submitted != tcReqs || hts.Completed != tcReqs {
		t.Fatalf("host TC counters: %+v", hts)
	}
	if hts.Class != "throughput-critical" {
		t.Fatalf("host TC class = %q", hts.Class)
	}
	if hts.Window != window {
		t.Fatalf("host window gauge = %d, want %d", hts.Window, window)
	}
	if hts.LatencyP50 <= 0 {
		t.Fatalf("host end-to-end latency samples missing: %+v", hts)
	}
	if hls := hostBy[uint16(lsID)]; hls.Class != "latency-sensitive" {
		t.Fatalf("host LS class = %q (the PM always runs TC-mode; the class must come from the session config)", hls.Class)
	}
	if g := hostTel.Global(); g.Connections != 2 {
		t.Fatalf("host connections = %d, want 2", g.Connections)
	}

	// The exporter renders the same signal.
	text := targetTel.PrometheusText()
	if !strings.Contains(text, "nvmeopf_tenant_submitted_total") {
		t.Fatalf("prometheus text missing series:\n%s", text)
	}
}

// TestClusterTraceTimeline attaches trace hooks to both sides and
// reconstructs one TC window's lifecycle: every stage must appear, in
// causal order, for the drain request.
func TestClusterTraceTimeline(t *testing.T) {
	prof, err := ProfileFor(100)
	if err != nil {
		t.Fatal(err)
	}
	// The sim is single-threaded (one event loop), so a plain slice is a
	// safe collector.
	var events []telemetry.Event
	collect := func(e telemetry.Event) { events = append(events, e) }

	c := New(Options{Profile: prof, Mode: targetqp.ModeOPF, Seed: 7, Trace: collect})
	tn, err := c.NewTargetNode("tgt0", false)
	if err != nil {
		t.Fatal(err)
	}
	in := c.NewInitiatorNode("ini0", tn)
	const window = 4
	ini, err := in.Connect(hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: window, QueueDepth: 16, NSID: 1,
		Trace: collect,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	ini.Session.OnConnect(func() {
		for i := 0; i < window; i++ {
			_ = ini.Session.Submit(hostqp.IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1, Done: func(hostqp.Result) {}})
		}
	})
	c.Run()
	if err := c.CheckHealthy(); err != nil {
		t.Fatal(err)
	}

	count := map[telemetry.Stage]int{}
	firstIdx := map[telemetry.Stage]int{}
	for i, e := range events {
		count[e.Stage]++
		if _, seen := firstIdx[e.Stage]; !seen {
			firstIdx[e.Stage] = i
		}
	}
	if count[telemetry.StageSubmit] != window {
		t.Fatalf("submit events = %d, want %d", count[telemetry.StageSubmit], window)
	}
	if count[telemetry.StageDrainMark] != 1 {
		t.Fatalf("drain-mark events = %d, want 1", count[telemetry.StageDrainMark])
	}
	// The window's first window-1 requests enqueue; the draining request
	// releases them.
	if count[telemetry.StageEnqueue] != window-1 {
		t.Fatalf("enqueue events = %d, want %d", count[telemetry.StageEnqueue], window-1)
	}
	if count[telemetry.StageDrainStart] != 1 {
		t.Fatalf("drain-start events = %d, want 1", count[telemetry.StageDrainStart])
	}
	if count[telemetry.StageDeviceComplete] != window {
		t.Fatalf("device-complete events = %d, want %d", count[telemetry.StageDeviceComplete], window)
	}
	if count[telemetry.StageCoalescedNotify] != 1 {
		t.Fatalf("coalesced-notify events = %d, want 1", count[telemetry.StageCoalescedNotify])
	}
	if count[telemetry.StageReplay] != window {
		t.Fatalf("replay events = %d, want %d", count[telemetry.StageReplay], window)
	}
	// Causal order across the timeline.
	order := []telemetry.Stage{
		telemetry.StageSubmit, telemetry.StageEnqueue, telemetry.StageDrainStart,
		telemetry.StageDeviceComplete, telemetry.StageCoalescedNotify, telemetry.StageReplay,
	}
	for i := 1; i < len(order); i++ {
		if firstIdx[order[i]] < firstIdx[order[i-1]] {
			t.Fatalf("stage %v first seen at %d, before %v at %d",
				order[i], firstIdx[order[i]], order[i-1], firstIdx[order[i-1]])
		}
	}
	// The drain-start event names the draining CID and the full batch.
	ds := events[firstIdx[telemetry.StageDrainStart]]
	if ds.Aux != window {
		t.Fatalf("drain-start batch size = %d, want %d", ds.Aux, window)
	}
	cn := events[firstIdx[telemetry.StageCoalescedNotify]]
	if cn.Aux != window || cn.CID != ds.CID {
		t.Fatalf("coalesced-notify (cid=%d aux=%d) does not match drain (cid=%d window=%d)",
			cn.CID, cn.Aux, ds.CID, window)
	}
}
