package simcluster

import (
	"math/rand"
	"testing"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/workload"
)

// Regression for the unbacked-read bug: read payload bytes must traverse
// the fabric even on timing-only devices, so a 10 Gbps link bounds read
// throughput at roughly line rate.
func TestReadThroughputBoundedByLink(t *testing.T) {
	res, _ := runOne(t, targetqp.ModeOPF, 10, 32, workload.ReadOnly, 60)
	iops := res.Recorded.IOPS(48_000_000)
	// 10 Gbps with ~4.35 KB wire bytes per read caps around 287K IOPS;
	// anything near the 320K device cap means payloads stopped flowing.
	if iops > 295_000 {
		t.Fatalf("read@10G IOPS = %.0f exceeds link capacity; data PDUs missing", iops)
	}
	if iops < 200_000 {
		t.Fatalf("read@10G IOPS = %.0f unexpectedly low", iops)
	}
}

// Reads must deliver a C2HData PDU per request even when coalescing
// suppresses the per-request completion notifications.
func TestReadDataPDUsAlwaysFlow(t *testing.T) {
	_, tn := runOne(t, targetqp.ModeOPF, 100, 32, workload.ReadOnly, 20)
	st := tn.Target.Stats()
	if st.DataPDUs < st.CmdPDUs*9/10 {
		t.Fatalf("data PDUs %d << commands %d", st.DataPDUs, st.CmdPDUs)
	}
	if st.RespPDUs*8 > st.CmdPDUs {
		t.Fatalf("coalescing broken: %d responses for %d commands", st.RespPDUs, st.CmdPDUs)
	}
}

// Randomized end-to-end invariant: any mix of tenant classes, windows, and
// queue depths completes every submitted request exactly once with no
// protocol errors, under the full network + device model.
func TestRandomMultiTenantInvariant(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		prof := ProfileCL()
		cl := New(Options{Profile: prof, Mode: targetqp.ModeOPF, Seed: uint64(trial)})
		tn, err := cl.NewTargetNode("t", false)
		if err != nil {
			t.Fatal(err)
		}
		nTenants := 1 + rng.Intn(5)
		type tracker struct {
			submitted int
			completed int
		}
		trackers := make([]*tracker, nTenants)
		for i := 0; i < nTenants; i++ {
			node := cl.NewInitiatorNode("n", tn)
			class := proto.PrioThroughputCritical
			qd := 1 + rng.Intn(64)
			window := 1 + rng.Intn(48)
			if rng.Intn(3) == 0 {
				class, qd, window = proto.PrioLatencySensitive, 1, 1
			}
			ini, err := node.Connect(hostqp.Config{Class: class, Window: window, QueueDepth: qd, NSID: 1})
			if err != nil {
				t.Fatal(err)
			}
			tr := &tracker{}
			trackers[i] = tr
			n := 1 + rng.Intn(300)
			sess := ini.Session
			sess.OnConnect(func() {
				var pump func()
				issued, flushed := 0, false
				pump = func() {
					for issued < n && sess.CanSubmit() {
						op := nvme.OpRead
						if rng.Intn(2) == 0 {
							op = nvme.OpWrite
						}
						var data []byte
						if op == nvme.OpWrite {
							data = make([]byte, 4096)
						}
						err := sess.Submit(hostqp.IO{
							Op: op, LBA: uint64(issued), Blocks: 1, Data: data,
							Done: func(r hostqp.Result) {
								tr.completed++
								pump()
							},
						})
						if err != nil {
							t.Errorf("trial %d: submit: %v", trial, err)
							return
						}
						issued++
						tr.submitted++
					}
					// Flush the tail window once everything is issued; keep
					// retrying from completions while the queue is full.
					if issued == n && !flushed && sess.PartialWindow() > 0 && sess.CanSubmit() {
						sess.Flush()
						if sess.Submit(hostqp.IO{Op: nvme.OpFlush, Done: func(hostqp.Result) {}}) == nil {
							flushed = true
						}
					}
				}
				pump()
			})
		}
		cl.Run()
		if err := cl.CheckHealthy(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, tr := range trackers {
			if tr.completed != tr.submitted {
				t.Fatalf("trial %d tenant %d: %d submitted, %d completed",
					trial, i, tr.submitted, tr.completed)
			}
		}
	}
}

// The no-bypass ablation must degrade LS tail latency relative to the full
// design, while the shared-queue ablation must degrade TC throughput.
func TestAblationDirections(t *testing.T) {
	type cfgFn func(*Options)
	run := func(mutate cfgFn, noBypass bool) (tcIOPS float64, lsTail int64) {
		prof := ProfileCL()
		opts := Options{Profile: prof, Mode: targetqp.ModeOPF, Seed: 5}
		if mutate != nil {
			mutate(&opts)
		}
		cl := New(opts)
		tn, err := cl.NewTargetNode("t", false)
		if err != nil {
			t.Fatal(err)
		}
		stop := int64(60_000_000)
		lsClass := proto.PrioLatencySensitive
		if noBypass {
			lsClass = proto.PrioNormal
		}
		lsIni, err := cl.NewInitiatorNode("ls", tn).Connect(hostqp.Config{Class: lsClass, Window: 1, QueueDepth: 1, NSID: 1})
		if err != nil {
			t.Fatal(err)
		}
		lsRun, err := workload.NewRunner(lsIni.Session, cl.Eng.Now, workload.Spec{
			Mix: workload.ReadOnly, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 1,
			RegionStart: 0, RegionBlocks: 1 << 20, WarmupUntil: stop / 5, StopAt: stop, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		lsRun.Start()
		var tcRunners []*workload.Runner
		for i := 0; i < 3; i++ {
			ini, err := cl.NewInitiatorNode("tc", tn).Connect(hostqp.Config{
				Class: proto.PrioThroughputCritical, Window: 32, QueueDepth: 128, NSID: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			r, err := workload.NewRunner(ini.Session, cl.Eng.Now, workload.Spec{
				Mix: workload.ReadOnly, Pattern: workload.Sequential, Blocks: 1, QueueDepth: 128,
				RegionStart: uint64(i+1) << 20, RegionBlocks: 1 << 20,
				WarmupUntil: stop / 5, StopAt: stop, Seed: uint64(i) + 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			r.Start()
			tcRunners = append(tcRunners, r)
		}
		cl.Run()
		if err := cl.CheckHealthy(); err != nil {
			t.Fatal(err)
		}
		for _, r := range tcRunners {
			tcIOPS += r.Result().Recorded.IOPS(stop * 4 / 5)
		}
		return tcIOPS, lsRun.Result().Latency.Tail()
	}

	fullTC, fullTail := run(nil, false)
	sharedTC, _ := run(func(o *Options) { o.SharedQueueAblation = true }, false)
	_, noBypassTail := run(nil, true)

	if sharedTC >= fullTC {
		t.Errorf("shared queue should cost throughput: %.0f >= %.0f", sharedTC, fullTC)
	}
	if noBypassTail <= fullTail {
		t.Errorf("no-bypass should cost LS tail: %d <= %d", noBypassTail, fullTail)
	}
	t.Logf("TC IOPS: full %.0f, shared %.0f | LS tail: full %dus, no-bypass %dus",
		fullTC, sharedTC, fullTail/1000, noBypassTail/1000)
}
