package simcluster

import (
	"fmt"
	"time"

	"nvmeopf/internal/autotune"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/simnet"
	"nvmeopf/internal/ssdsim"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// Cluster is one simulated deployment: an engine plus the nodes built on
// it. Build target nodes first, then initiator nodes, then Connect
// initiators; run the engine through Run/RunFor.
type Cluster struct {
	Eng       *simnet.Engine
	profile   Profile
	mode      targetqp.Mode
	shared    bool // shared-queue ablation
	seed      uint64
	atCfg     *autotune.Config
	scavAging int64
	hostTelNS int64
	telTicks  int // telemetry cadence events currently in the queue
	tel       *telemetry.Registry
	trace     telemetry.TraceFunc
	hostRec   *telemetry.Recorder
	targetRec *telemetry.Recorder
	errs      []error
}

// Options configures cluster-wide behaviour.
type Options struct {
	Profile Profile
	Mode    targetqp.Mode
	// SharedQueueAblation disables per-tenant queue isolation at every
	// target (ablation benchmark only).
	SharedQueueAblation bool
	// Seed drives every stochastic component (SSD jitter). Same seed,
	// same results.
	Seed uint64
	// Telemetry optionally attaches one live metrics registry to every
	// target node, recording the same target-side instruments the TCP
	// transport exposes — sim experiments assert on live signal instead
	// of only post-run histograms. Nil disables at zero cost. (Host-side
	// instruments attach per initiator via hostqp.Config.Telemetry.)
	Telemetry *telemetry.Registry
	// Trace optionally receives target-side PDU lifecycle events. Runs
	// on the event loop: keep it fast.
	Trace telemetry.TraceFunc
	// Autotune enables the closed-loop adaptive drain-window controller
	// at every target node (one controller per node, on the virtual
	// clock). The config's Clock/Telemetry fields are filled in from the
	// cluster's when unset. Nil runs the static windows bit-identically
	// to a cluster without the field.
	Autotune *autotune.Config
	// ScavengerAging bounds (in virtual nanoseconds) how long a parked
	// scavenger queue can starve behind continuous LS/TC traffic before
	// the target force-drains it anyway. The simulator needs no ticker:
	// the target re-polls on every command and completion, so foreground
	// traffic itself ages the parked window out. Zero disables the bound.
	ScavengerAging int64
	// HostTelemetryNS enables the in-band e2e feedback channel on every
	// initiator Connect creates: each emits one TelemetryUpdate every
	// HostTelemetryNS of virtual time (the simulated keep-alive cadence),
	// shipped through the same modelled NIC/link path as commands. Zero
	// (the default) disables — no update PDUs exist and the cluster is
	// bit-identical to one without the field.
	HostTelemetryNS int64
}

// New creates an empty cluster.
func New(opts Options) *Cluster {
	return &Cluster{
		Eng:       simnet.NewEngine(),
		profile:   opts.Profile,
		mode:      opts.Mode,
		shared:    opts.SharedQueueAblation,
		seed:      opts.Seed,
		atCfg:     opts.Autotune,
		scavAging: opts.ScavengerAging,
		hostTelNS: opts.HostTelemetryNS,
		tel:       opts.Telemetry,
		trace:     opts.Trace,
	}
}

// Telemetry returns the cluster's target-side metrics registry (nil when
// telemetry is disabled).
func (c *Cluster) Telemetry() *telemetry.Registry { return c.tel }

// AttachFlightRecorders creates a host-side and a target-side flight
// recorder on the cluster's virtual clock and wires them into every node
// built afterwards: call it before NewTargetNode/Connect. The target
// recorder chains onto the cluster trace hook; the host recorder attaches
// to each initiator created by Connect (unless that Config brings its
// own). cfg.Clock and cfg.Role are overridden.
func (c *Cluster) AttachFlightRecorders(cfg telemetry.RecorderConfig) (host, target *telemetry.Recorder) {
	hostCfg, targetCfg := cfg, cfg
	hostCfg.Clock, targetCfg.Clock = c.Eng.Now, c.Eng.Now
	hostCfg.Role, targetCfg.Role = "host", "target"
	c.hostRec = telemetry.NewRecorder(hostCfg)
	c.targetRec = telemetry.NewRecorder(targetCfg)
	c.trace = telemetry.ChainTrace(c.trace, c.targetRec.Trace)
	return c.hostRec, c.targetRec
}

// HostRecorder returns the attached host-side flight recorder (nil when
// AttachFlightRecorders was not called).
func (c *Cluster) HostRecorder() *telemetry.Recorder { return c.hostRec }

// TargetRecorder returns the attached target-side flight recorder.
func (c *Cluster) TargetRecorder() *telemetry.Recorder { return c.targetRec }

// Profile returns the cluster's platform profile.
func (c *Cluster) Profile() Profile { return c.profile }

// Mode returns the target operating mode (baseline or oPF).
func (c *Cluster) Mode() targetqp.Mode { return c.mode }

// Errors returns protocol errors recorded during the run. A correct
// simulation finishes with none.
func (c *Cluster) Errors() []error { return c.errs }

func (c *Cluster) fail(err error) {
	if err != nil {
		c.errs = append(c.errs, err)
	}
}

// TargetNode is one storage server: a poller CPU, a NIC, one SSD, and one
// NVMe-oPF (or baseline) target serving every connected initiator.
type TargetNode struct {
	c      *Cluster
	Name   string
	CPU    *simnet.CPU
	NIC    *simnet.Link // shared ingress/egress pipe of this node
	SSD    *ssdsim.SSD
	Target *targetqp.Target
}

// NewTargetNode builds a target node. backed enables the SSD's in-memory
// data store (needed by data-integrity tests and the HDF5 experiments;
// timing-only experiments leave it off).
func (c *Cluster) NewTargetNode(name string, backed bool) (*TargetNode, error) {
	cpu := simnet.NewCPU(c.Eng, name+"/cpu", c.profile.TargetCPU)
	// The node NIC is modelled as a link with zero propagation: it only
	// adds the node's serialization bottleneck shared by all peers.
	nicCfg := c.profile.Link
	nicCfg.PropagationDelay = 0
	nic := simnet.NewLink(c.Eng, name+"/nic", nicCfg)

	ssdCfg := c.profile.SSD
	ssdCfg.Seed = c.seed*1315423911 + uint64(len(name)) + 1
	ssdCfg.Backed = backed
	ssd, err := ssdsim.New(c.Eng, ssdCfg)
	if err != nil {
		return nil, err
	}
	tn := &TargetNode{c: c, Name: name, CPU: cpu, NIC: nic, SSD: ssd}
	var ctrl *autotune.Controller
	if c.atCfg != nil {
		// Each target node owns one controller on the virtual clock — the
		// simulated analogue of the TCP server's per-shard controllers.
		ac := *c.atCfg
		if ac.Clock == nil {
			ac.Clock = c.Eng.Now
		}
		if ac.Telemetry == nil {
			ac.Telemetry = c.tel
		}
		var err error
		ctrl, err = autotune.New(ac)
		if err != nil {
			return nil, err
		}
	}
	tgt, err := targetqp.NewTarget(targetqp.Config{
		Mode:                c.mode,
		MaxPending:          4096,
		SharedQueueAblation: c.shared,
		ScavengerAging:      time.Duration(c.scavAging),
		Telemetry:           c.tel,
		Trace:               c.trace,
		Clock:               c.Eng.Now, // virtual time drives latency samples
		Autotune:            ctrl,
	}, &ssdBackend{node: tn})
	if err != nil {
		return nil, err
	}
	tn.Target = tgt
	return tn, nil
}

// ssdBackend adapts the simulated SSD to the targetqp.Backend interface,
// charging the target poller's submission cost.
type ssdBackend struct {
	node *TargetNode
}

// Namespace implements targetqp.Backend.
func (b *ssdBackend) Namespace() nvme.Namespace { return b.node.SSD.Namespace() }

// Submit implements targetqp.Backend.
func (b *ssdBackend) Submit(cmd nvme.Command, data []byte, highPrio bool, done func(nvme.Completion, []byte)) {
	node := b.node
	node.CPU.Exec(node.CPU.SubmitCost(), func() {
		node.SSD.Submit(ssdsim.Request{Cmd: cmd, Data: data, Done: done}, highPrio)
	})
}

// InitiatorNode is one client machine: a poller CPU and a NIC-link to its
// target node. Several initiators (tenants) may run on one node, sharing
// both — the contention that scaling pattern 1 (Fig. 8(a–c)) measures.
type InitiatorNode struct {
	c      *Cluster
	Name   string
	CPU    *simnet.CPU
	Link   *simnet.Link // host NIC + cable to the target node
	target *TargetNode
}

// NewInitiatorNode builds a client node wired to one target node (the
// paper's experiments pair each initiator-node with a single target-node).
func (c *Cluster) NewInitiatorNode(name string, target *TargetNode) *InitiatorNode {
	cpu := simnet.NewCPU(c.Eng, name+"/cpu", c.profile.HostCPU)
	link := simnet.NewLink(c.Eng, name+"<->"+target.Name, c.profile.Link)
	return &InitiatorNode{c: c, Name: name, CPU: cpu, Link: link, target: target}
}

// Initiator is one tenant: a host queue pair connected over the node's
// link to the target node.
type Initiator struct {
	Node    *InitiatorNode
	Session *hostqp.Session
	tsess   *targetqp.Session
}

// payloadBytes returns the data bytes a PDU carries, which drive per-byte
// CPU costs (headers are covered by the fixed per-PDU cost).
func payloadBytes(p proto.PDU) int {
	switch pdu := p.(type) {
	case *proto.CapsuleCmd:
		return len(pdu.Data)
	case *proto.C2HData:
		return len(pdu.Data)
	case *proto.H2CData:
		return len(pdu.Data)
	default:
		return 0
	}
}

// standalonePDU reports whether a PDU is emitted as an isolated small send
// (a completion notification triggered by a device-completion event) as
// opposed to the batched submission/data path.
func standalonePDU(p proto.PDU) bool {
	_, isResp := p.(*proto.CapsuleResp)
	return isResp
}

// Connect creates one initiator of the given host configuration on this
// node and starts its handshake. Run the engine (even one event batch)
// before submitting I/O; Session.OnConnect sequences that naturally.
func (n *InitiatorNode) Connect(cfg hostqp.Config) (*Initiator, error) {
	c := n.c
	if cfg.Recorder == nil {
		cfg.Recorder = c.hostRec // nil when no recorders are attached
	}
	ini := &Initiator{Node: n}

	tsess, err := n.target.Target.NewSession(func(p proto.PDU) {
		// Target -> host: poller tx, target NIC, host link, host rx.
		size := p.WireSize()
		payload := payloadBytes(p)
		tn := n.target
		tn.CPU.Exec(tn.CPU.TxCost(payload, standalonePDU(p)), func() {
			tn.NIC.Send(simnet.DirBtoA, size, func() {
				n.Link.Send(simnet.DirBtoA, size, func() {
					n.CPU.Exec(n.CPU.RxCost(payload, standalonePDU(p)), func() {
						c.fail(ini.Session.HandlePDU(p))
					})
				})
			})
		})
	})
	if err != nil {
		return nil, err
	}
	ini.tsess = tsess

	hostSend := func(p proto.PDU) {
		// Host -> target: poller tx, host link, target NIC, target rx.
		size := p.WireSize()
		payload := payloadBytes(p)
		tn := n.target
		n.CPU.Exec(n.CPU.TxCost(payload, false), func() {
			n.Link.Send(simnet.DirAtoB, size, func() {
				tn.NIC.Send(simnet.DirAtoB, size, func() {
					tn.CPU.Exec(tn.CPU.RxCost(payload, standalonePDU(p)), func() {
						c.fail(tsess.HandlePDU(p))
					})
				})
			})
		})
	}
	sess, err := hostqp.New(cfg, hostSend, c.Eng.Now)
	if err != nil {
		return nil, err
	}
	ini.Session = sess
	sess.Start()
	if c.hostTelNS > 0 {
		sess.EnableE2E()
		var tick func()
		tick = func() {
			// Sample liveness before emitting, and count only non-cadence
			// events as work: the update we are about to send queues its
			// own delivery events, and other tenants' heartbeats sit in the
			// queue alongside real I/O — if either counted, the cadences
			// would keep each other (and Run()) alive forever on an idle
			// cluster. With the check first and sibling ticks excluded, an
			// otherwise-idle cluster gets one final update per tenant and
			// every cadence stops, so Run() still terminates.
			c.telTicks--
			alive := c.Eng.Pending() > c.telTicks
			if u := sess.BuildTelemetryUpdate(); u != nil {
				hostSend(u)
			}
			if alive {
				c.telTicks++
				c.Eng.Schedule(time.Duration(c.hostTelNS), tick)
			}
		}
		c.telTicks++
		c.Eng.Schedule(time.Duration(c.hostTelNS), tick)
	}
	return ini, nil
}

// Run processes events until the queue empties; RunFor advances the
// virtual clock by d nanoseconds.
func (c *Cluster) Run() int64 { return c.Eng.Run() }

// RunFor advances the cluster by d nanoseconds of virtual time.
func (c *Cluster) RunFor(d int64) int64 { return c.Eng.RunUntil(c.Eng.Now() + d) }

// CheckHealthy returns an error if any protocol error was recorded.
func (c *Cluster) CheckHealthy() error {
	if len(c.errs) > 0 {
		return fmt.Errorf("simcluster: %d protocol errors, first: %w", len(c.errs), c.errs[0])
	}
	return nil
}
