package nvme

import "fmt"

// SQ is a bounded circular submission queue of Commands with head/tail
// semantics matching the NVMe host-device contract: the producer advances
// the tail, the consumer advances the head, and the queue is full when it
// holds size-1 entries (one slot is sacrificed to distinguish full from
// empty, as real NVMe queues do).
//
// SQ is intentionally not synchronized: in the simulator everything runs on
// the event loop, and in the TCP runtime each queue is owned by exactly one
// goroutine (share memory by communicating).
type SQ struct {
	entries []Command
	head    uint32
	tail    uint32
}

// NewSQ creates a submission queue that can hold size-1 outstanding
// entries. Size must be at least 2.
func NewSQ(size int) *SQ {
	if size < 2 {
		panic(fmt.Sprintf("nvme: SQ size %d < 2", size))
	}
	return &SQ{entries: make([]Command, size)}
}

// Size returns the raw ring size (usable capacity is Size()-1).
func (q *SQ) Size() int { return len(q.entries) }

// Len returns the number of occupied entries.
func (q *SQ) Len() int {
	n := int(q.tail) - int(q.head)
	if n < 0 {
		n += len(q.entries)
	}
	return n
}

// Full reports whether another Push would fail.
func (q *SQ) Full() bool { return q.Len() == len(q.entries)-1 }

// Empty reports whether the queue holds no entries.
func (q *SQ) Empty() bool { return q.head == q.tail }

// Push enqueues a command, returning false when the ring is full.
func (q *SQ) Push(c Command) bool {
	if q.Full() {
		return false
	}
	q.entries[q.tail] = c
	q.tail = (q.tail + 1) % uint32(len(q.entries))
	return true
}

// Pop dequeues the oldest command.
func (q *SQ) Pop() (Command, bool) {
	if q.Empty() {
		return Command{}, false
	}
	c := q.entries[q.head]
	q.head = (q.head + 1) % uint32(len(q.entries))
	return c, true
}

// Head returns the current head index (reported in CQEs as SQHD).
func (q *SQ) Head() uint16 { return uint16(q.head) }

// CQ is a bounded circular completion queue of Completions with the same
// ring discipline as SQ.
type CQ struct {
	entries []Completion
	head    uint32
	tail    uint32
}

// NewCQ creates a completion queue that can hold size-1 outstanding
// entries. Size must be at least 2.
func NewCQ(size int) *CQ {
	if size < 2 {
		panic(fmt.Sprintf("nvme: CQ size %d < 2", size))
	}
	return &CQ{entries: make([]Completion, size)}
}

// Size returns the raw ring size (usable capacity is Size()-1).
func (q *CQ) Size() int { return len(q.entries) }

// Len returns the number of occupied entries.
func (q *CQ) Len() int {
	n := int(q.tail) - int(q.head)
	if n < 0 {
		n += len(q.entries)
	}
	return n
}

// Full reports whether another Push would fail.
func (q *CQ) Full() bool { return q.Len() == len(q.entries)-1 }

// Empty reports whether the queue holds no entries.
func (q *CQ) Empty() bool { return q.head == q.tail }

// Push enqueues a completion, returning false when the ring is full.
func (q *CQ) Push(c Completion) bool {
	if q.Full() {
		return false
	}
	q.entries[q.tail] = c
	q.tail = (q.tail + 1) % uint32(len(q.entries))
	return true
}

// Pop dequeues the oldest completion.
func (q *CQ) Pop() (Completion, bool) {
	if q.Empty() {
		return Completion{}, false
	}
	c := q.entries[q.head]
	q.head = (q.head + 1) % uint32(len(q.entries))
	return c, true
}

// CIDAllocator hands out 16-bit command identifiers that are unique among
// outstanding commands of one queue pair, and recycles them on completion.
// NVMe requires CID uniqueness per SQ; the fabric layer additionally relies
// on it to match coalesced completions to pending requests.
type CIDAllocator struct {
	free []CID
	used map[CID]bool
	next CID
	max  int
}

// NewCIDAllocator creates an allocator for at most max outstanding CIDs
// (max <= 65536).
func NewCIDAllocator(max int) *CIDAllocator {
	if max <= 0 || max > 1<<16 {
		panic(fmt.Sprintf("nvme: CID allocator size %d out of range", max))
	}
	return &CIDAllocator{used: make(map[CID]bool, max), max: max}
}

// Alloc returns a fresh CID, or false if max CIDs are outstanding.
func (a *CIDAllocator) Alloc() (CID, bool) {
	if len(a.used) >= a.max {
		return 0, false
	}
	if n := len(a.free); n > 0 {
		cid := a.free[n-1]
		a.free = a.free[:n-1]
		a.used[cid] = true
		return cid, true
	}
	cid := a.next
	a.next++
	a.used[cid] = true
	return cid, true
}

// Release returns a CID to the pool. Releasing a CID that is not
// outstanding is a protocol bug and reported as an error.
func (a *CIDAllocator) Release(cid CID) error {
	if !a.used[cid] {
		return fmt.Errorf("nvme: release of non-outstanding CID %d", cid)
	}
	delete(a.used, cid)
	a.free = append(a.free, cid)
	return nil
}

// Outstanding returns the number of live CIDs.
func (a *CIDAllocator) Outstanding() int { return len(a.used) }
