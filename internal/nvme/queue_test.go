package nvme

import (
	"testing"
	"testing/quick"
)

func TestSQBasics(t *testing.T) {
	q := NewSQ(4)
	if q.Size() != 4 || q.Len() != 0 || !q.Empty() || q.Full() {
		t.Fatalf("fresh queue state wrong: len=%d", q.Len())
	}
	for i := 0; i < 3; i++ {
		if !q.Push(Command{CID: CID(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !q.Full() {
		t.Fatal("queue of size 4 should be full at 3 entries")
	}
	if q.Push(Command{CID: 99}) {
		t.Fatal("push into full queue succeeded")
	}
	for i := 0; i < 3; i++ {
		c, ok := q.Pop()
		if !ok || c.CID != CID(i) {
			t.Fatalf("pop %d: got %v ok=%v", i, c.CID, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestSQWrapAround(t *testing.T) {
	q := NewSQ(4)
	next := uint16(0)
	expect := uint16(0)
	for round := 0; round < 100; round++ {
		for q.Push(Command{CID: next}) {
			next++
		}
		for !q.Empty() {
			c, _ := q.Pop()
			if c.CID != expect {
				t.Fatalf("round %d: got CID %d, want %d", round, c.CID, expect)
			}
			expect++
		}
	}
	if next != expect {
		t.Fatalf("pushed %d != popped %d", next, expect)
	}
}

func TestSQPanicsOnTinySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for size < 2")
		}
	}()
	NewSQ(1)
}

func TestCQPanicsOnTinySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for size < 2")
		}
	}()
	NewCQ(0)
}

func TestCQBasics(t *testing.T) {
	q := NewCQ(3)
	if !q.Push(Completion{CID: 1}) || !q.Push(Completion{CID: 2}) {
		t.Fatal("push failed")
	}
	if !q.Full() {
		t.Fatal("size-3 CQ should be full at 2")
	}
	if q.Push(Completion{CID: 3}) {
		t.Fatal("push into full CQ succeeded")
	}
	c, ok := q.Pop()
	if !ok || c.CID != 1 {
		t.Fatalf("pop = %v, %v", c.CID, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}

// Property: an SQ behaves exactly like a bounded FIFO for any sequence of
// push/pop operations.
func TestSQFIFOProperty(t *testing.T) {
	f := func(ops []bool, sizeSeed uint8) bool {
		size := int(sizeSeed%14) + 2
		q := NewSQ(size)
		var model []CID
		next := CID(0)
		for _, push := range ops {
			if push {
				ok := q.Push(Command{CID: next})
				wantOK := len(model) < size-1
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
					next++
				}
			} else {
				c, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if c.CID != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) || q.Empty() != (len(model) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCQFIFOProperty(t *testing.T) {
	f := func(ops []bool, sizeSeed uint8) bool {
		size := int(sizeSeed%14) + 2
		q := NewCQ(size)
		var model []CID
		next := CID(0)
		for _, push := range ops {
			if push {
				ok := q.Push(Completion{CID: next})
				if ok != (len(model) < size-1) {
					return false
				}
				if ok {
					model = append(model, next)
					next++
				}
			} else {
				c, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if c.CID != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCIDAllocatorUnique(t *testing.T) {
	a := NewCIDAllocator(128)
	seen := make(map[CID]bool)
	for i := 0; i < 128; i++ {
		cid, ok := a.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[cid] {
			t.Fatalf("duplicate CID %d", cid)
		}
		seen[cid] = true
	}
	if _, ok := a.Alloc(); ok {
		t.Fatal("alloc beyond max succeeded")
	}
	if a.Outstanding() != 128 {
		t.Fatalf("outstanding = %d", a.Outstanding())
	}
}

func TestCIDAllocatorRecycle(t *testing.T) {
	a := NewCIDAllocator(2)
	c1, _ := a.Alloc()
	c2, _ := a.Alloc()
	if err := a.Release(c1); err != nil {
		t.Fatal(err)
	}
	c3, ok := a.Alloc()
	if !ok {
		t.Fatal("alloc after release failed")
	}
	if c3 != c1 {
		t.Fatalf("expected recycled CID %d, got %d", c1, c3)
	}
	if err := a.Release(c1); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(c1); err == nil {
		t.Fatal("double release succeeded")
	}
	if err := a.Release(c2); err != nil {
		t.Fatal(err)
	}
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", a.Outstanding())
	}
}

func TestCIDAllocatorPanicsOnBadMax(t *testing.T) {
	for _, n := range []int{0, -1, 1 << 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("want panic for max=%d", n)
				}
			}()
			NewCIDAllocator(n)
		}()
	}
}

// Property: alloc/release in arbitrary order never hands out a CID that is
// currently outstanding.
func TestCIDAllocatorProperty(t *testing.T) {
	f := func(ops []bool) bool {
		a := NewCIDAllocator(16)
		live := map[CID]bool{}
		var liveList []CID
		for _, alloc := range ops {
			if alloc {
				cid, ok := a.Alloc()
				if ok != (len(live) < 16) {
					return false
				}
				if ok {
					if live[cid] {
						return false // duplicate!
					}
					live[cid] = true
					liveList = append(liveList, cid)
				}
			} else if len(liveList) > 0 {
				cid := liveList[len(liveList)-1]
				liveList = liveList[:len(liveList)-1]
				delete(live, cid)
				if a.Release(cid) != nil {
					return false
				}
			}
			if a.Outstanding() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
