// Package nvme implements the subset of the NVMe base specification that an
// NVMe-over-Fabrics runtime needs: the I/O command set (read/write/flush),
// 64-byte submission queue entries, 16-byte completion queue entries, status
// codes, and circular submission/completion queues with head/tail doorbells.
//
// The types mirror the on-device layout closely enough that the fabric layer
// (internal/proto) can embed commands in capsules byte-for-byte, and the SSD
// model (internal/ssdsim) can consume them unchanged.
package nvme

import (
	"encoding/binary"
	"fmt"
)

// Opcode is an NVMe I/O command opcode.
type Opcode uint8

// I/O command set opcodes (NVMe base spec, figure "Opcodes for I/O
// Commands").
const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "Flush"
	case OpWrite:
		return "Write"
	case OpRead:
		return "Read"
	default:
		return fmt.Sprintf("Opcode(0x%02x)", uint8(o))
	}
}

// Status is an NVMe completion status (status code type << 8 | status code).
// Zero means success.
type Status uint16

// Status codes used by this runtime (generic command status type 0).
const (
	StatusSuccess        Status = 0x0000
	StatusInvalidOpcode  Status = 0x0001
	StatusInvalidField   Status = 0x0002
	StatusIDConflict     Status = 0x0003
	StatusDataXferError  Status = 0x0004
	StatusAborted        Status = 0x0007
	StatusInvalidNSID    Status = 0x000B
	StatusLBAOutOfRange  Status = 0x0080
	StatusCapacityExceed Status = 0x0081
	StatusQueueFull      Status = 0x0101 // command-specific SCT
	StatusBusy           Status = 0x0102 // command-specific SCT: admission cap hit, retry later
	StatusInternalError  Status = 0x0006
)

// OK reports whether the status indicates success.
func (s Status) OK() bool { return s == StatusSuccess }

// Retryable reports whether the command may be resubmitted verbatim and is
// expected to succeed once the target sheds load. Today only StatusBusy
// (admission-control rejection) qualifies: the command was never executed,
// so a retry cannot double-apply it.
func (s Status) Retryable() bool { return s == StatusBusy }

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "Success"
	case StatusInvalidOpcode:
		return "InvalidOpcode"
	case StatusInvalidField:
		return "InvalidField"
	case StatusIDConflict:
		return "CommandIDConflict"
	case StatusDataXferError:
		return "DataTransferError"
	case StatusAborted:
		return "Aborted"
	case StatusInvalidNSID:
		return "InvalidNamespace"
	case StatusLBAOutOfRange:
		return "LBAOutOfRange"
	case StatusCapacityExceed:
		return "CapacityExceeded"
	case StatusQueueFull:
		return "QueueFull"
	case StatusBusy:
		return "Busy"
	case StatusInternalError:
		return "InternalError"
	default:
		return fmt.Sprintf("Status(0x%04x)", uint16(s))
	}
}

// CID is a 16-bit command identifier, unique among a queue pair's
// outstanding commands.
type CID = uint16

// Command is a 64-byte NVMe submission queue entry, restricted to the
// fields the I/O command set uses. SLBA/NLB live in CDW10-12 as in the
// spec; the data itself travels out-of-band (in-capsule for fabrics).
type Command struct {
	Opcode Opcode
	Flags  uint8 // FUSE/PSDT bits; unused here but carried on the wire
	CID    CID
	NSID   uint32
	SLBA   uint64 // starting logical block address
	NLB    uint16 // number of logical blocks, 0's-based per spec
}

// CommandSize is the wire size of an encoded submission entry.
const CommandSize = 64

// Marshal encodes the command into a 64-byte SQE layout:
// byte 0 opcode, byte 1 flags, bytes 2-3 CID, 4-7 NSID,
// CDW10-11 (40-47) SLBA, CDW12 (48-49) NLB.
func (c *Command) Marshal(dst []byte) {
	if len(dst) < CommandSize {
		panic("nvme: Marshal buffer too small")
	}
	for i := 0; i < CommandSize; i++ {
		dst[i] = 0
	}
	dst[0] = uint8(c.Opcode)
	dst[1] = c.Flags
	binary.LittleEndian.PutUint16(dst[2:], c.CID)
	binary.LittleEndian.PutUint32(dst[4:], c.NSID)
	binary.LittleEndian.PutUint64(dst[40:], c.SLBA)
	binary.LittleEndian.PutUint16(dst[48:], c.NLB)
}

// Unmarshal decodes a 64-byte SQE.
func (c *Command) Unmarshal(src []byte) error {
	if len(src) < CommandSize {
		return fmt.Errorf("nvme: short command: %d bytes", len(src))
	}
	c.Opcode = Opcode(src[0])
	c.Flags = src[1]
	c.CID = binary.LittleEndian.Uint16(src[2:])
	c.NSID = binary.LittleEndian.Uint32(src[4:])
	c.SLBA = binary.LittleEndian.Uint64(src[40:])
	c.NLB = binary.LittleEndian.Uint16(src[48:])
	return nil
}

// Blocks returns the number of logical blocks the command covers (NLB is
// zero-based on the wire).
func (c *Command) Blocks() uint32 { return uint32(c.NLB) + 1 }

// Completion is a 16-byte NVMe completion queue entry.
type Completion struct {
	Result uint32 // command-specific result (DW0)
	SQHead uint16
	SQID   uint16
	CID    CID
	Status Status // includes phase bit stripped
}

// CompletionSize is the wire size of an encoded CQE.
const CompletionSize = 16

// Marshal encodes the completion.
func (c *Completion) Marshal(dst []byte) {
	if len(dst) < CompletionSize {
		panic("nvme: Marshal buffer too small")
	}
	binary.LittleEndian.PutUint32(dst[0:], c.Result)
	binary.LittleEndian.PutUint32(dst[4:], 0)
	binary.LittleEndian.PutUint16(dst[8:], c.SQHead)
	binary.LittleEndian.PutUint16(dst[10:], c.SQID)
	binary.LittleEndian.PutUint16(dst[12:], c.CID)
	binary.LittleEndian.PutUint16(dst[14:], uint16(c.Status)<<1) // bit 0 is the phase tag
}

// Unmarshal decodes a 16-byte CQE.
func (c *Completion) Unmarshal(src []byte) error {
	if len(src) < CompletionSize {
		return fmt.Errorf("nvme: short completion: %d bytes", len(src))
	}
	c.Result = binary.LittleEndian.Uint32(src[0:])
	c.SQHead = binary.LittleEndian.Uint16(src[8:])
	c.SQID = binary.LittleEndian.Uint16(src[10:])
	c.CID = binary.LittleEndian.Uint16(src[12:])
	c.Status = Status(binary.LittleEndian.Uint16(src[14:]) >> 1)
	return nil
}

// Namespace describes an NVMe namespace: a linear array of logical blocks.
type Namespace struct {
	ID        uint32
	BlockSize uint32 // bytes per logical block
	Capacity  uint64 // total logical blocks
}

// Validate checks a namespace description.
func (ns Namespace) Validate() error {
	if ns.ID == 0 {
		return fmt.Errorf("nvme: namespace ID 0 is reserved")
	}
	if ns.BlockSize == 0 || ns.BlockSize&(ns.BlockSize-1) != 0 {
		return fmt.Errorf("nvme: block size %d is not a power of two", ns.BlockSize)
	}
	if ns.Capacity == 0 {
		return fmt.Errorf("nvme: zero-capacity namespace")
	}
	return nil
}

// CheckRange reports a status for an access of nlb blocks at slba.
func (ns Namespace) CheckRange(slba uint64, nlb uint32) Status {
	if nlb == 0 {
		return StatusInvalidField
	}
	if slba >= ns.Capacity || uint64(nlb) > ns.Capacity-slba {
		return StatusLBAOutOfRange
	}
	return StatusSuccess
}

// Bytes returns the byte length of an access of nlb blocks.
func (ns Namespace) Bytes(nlb uint32) int { return int(nlb) * int(ns.BlockSize) }
