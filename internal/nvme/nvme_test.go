package nvme

import (
	"testing"
	"testing/quick"
)

func TestCommandRoundTrip(t *testing.T) {
	in := Command{
		Opcode: OpWrite,
		Flags:  0x40,
		CID:    0xBEEF,
		NSID:   3,
		SLBA:   0x123456789A,
		NLB:    255,
	}
	var buf [CommandSize]byte
	in.Marshal(buf[:])
	var out Command
	if err := out.Unmarshal(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestCommandRoundTripProperty(t *testing.T) {
	f := func(op, flags uint8, cid uint16, nsid uint32, slba uint64, nlb uint16) bool {
		in := Command{Opcode: Opcode(op), Flags: flags, CID: cid, NSID: nsid, SLBA: slba, NLB: nlb}
		var buf [CommandSize]byte
		in.Marshal(buf[:])
		var out Command
		if err := out.Unmarshal(buf[:]); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommandUnmarshalShort(t *testing.T) {
	var c Command
	if err := c.Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("want error for short buffer")
	}
}

func TestCompletionRoundTripProperty(t *testing.T) {
	f := func(result uint32, sqhead, sqid, cid uint16, status uint16) bool {
		in := Completion{Result: result, SQHead: sqhead, SQID: sqid, CID: cid, Status: Status(status & 0x7FFF)}
		var buf [CompletionSize]byte
		in.Marshal(buf[:])
		var out Completion
		if err := out.Unmarshal(buf[:]); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionUnmarshalShort(t *testing.T) {
	var c Completion
	if err := c.Unmarshal(make([]byte, 3)); err == nil {
		t.Fatal("want error for short buffer")
	}
}

func TestMarshalPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for short dst")
		}
	}()
	(&Command{}).Marshal(make([]byte, 8))
}

func TestStatusStrings(t *testing.T) {
	if !StatusSuccess.OK() {
		t.Fatal("success should be OK")
	}
	if StatusLBAOutOfRange.OK() {
		t.Fatal("LBA out of range should not be OK")
	}
	for _, s := range []Status{StatusSuccess, StatusInvalidOpcode, StatusInvalidField,
		StatusIDConflict, StatusDataXferError, StatusAborted, StatusInvalidNSID,
		StatusLBAOutOfRange, StatusCapacityExceed, StatusQueueFull, StatusInternalError} {
		if s.String() == "" {
			t.Errorf("empty string for %#x", uint16(s))
		}
	}
	if Status(0x7777).String() != "Status(0x7777)" {
		t.Errorf("unknown status string = %q", Status(0x7777).String())
	}
}

func TestOpcodeStrings(t *testing.T) {
	cases := map[Opcode]string{OpFlush: "Flush", OpWrite: "Write", OpRead: "Read", Opcode(0x99): "Opcode(0x99)"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", uint8(op), got, want)
		}
	}
}

func TestCommandBlocks(t *testing.T) {
	c := Command{NLB: 0}
	if c.Blocks() != 1 {
		t.Errorf("NLB 0 should mean 1 block (zero-based), got %d", c.Blocks())
	}
	c.NLB = 7
	if c.Blocks() != 8 {
		t.Errorf("Blocks = %d, want 8", c.Blocks())
	}
}

func TestNamespaceValidate(t *testing.T) {
	good := Namespace{ID: 1, BlockSize: 4096, Capacity: 1024}
	if err := good.Validate(); err != nil {
		t.Fatalf("good namespace rejected: %v", err)
	}
	bad := []Namespace{
		{ID: 0, BlockSize: 4096, Capacity: 1},
		{ID: 1, BlockSize: 0, Capacity: 1},
		{ID: 1, BlockSize: 4095, Capacity: 1},
		{ID: 1, BlockSize: 4096, Capacity: 0},
	}
	for i, ns := range bad {
		if err := ns.Validate(); err == nil {
			t.Errorf("bad namespace %d accepted: %+v", i, ns)
		}
	}
}

func TestNamespaceCheckRange(t *testing.T) {
	ns := Namespace{ID: 1, BlockSize: 512, Capacity: 100}
	cases := []struct {
		slba uint64
		nlb  uint32
		want Status
	}{
		{0, 1, StatusSuccess},
		{99, 1, StatusSuccess},
		{0, 100, StatusSuccess},
		{0, 0, StatusInvalidField},
		{100, 1, StatusLBAOutOfRange},
		{99, 2, StatusLBAOutOfRange},
		{^uint64(0), 1, StatusLBAOutOfRange},
	}
	for _, c := range cases {
		if got := ns.CheckRange(c.slba, c.nlb); got != c.want {
			t.Errorf("CheckRange(%d, %d) = %v, want %v", c.slba, c.nlb, got, c.want)
		}
	}
	if ns.Bytes(3) != 1536 {
		t.Errorf("Bytes(3) = %d", ns.Bytes(3))
	}
}
