package telemetry

import (
	"sort"

	"nvmeopf/internal/proto"
)

// autotuneLogCap bounds the autotune decision log (cold path, mutex
// guarded — one entry per controller decision, never per request).
const autotuneLogCap = 128

// AutotuneActions is the fixed action vocabulary of the adaptive
// drain-window controller, in the order the Prometheus exposition emits
// the per-action decision counters.
var AutotuneActions = []string{"shrink", "grow", "hold", "cold"}

// AutotuneDecision is one adaptive-controller verdict: what the
// controller did to a tenant's drain window and why. Field order is the
// JSON order served on /debug/autotune (golden-tested — append only).
type AutotuneDecision struct {
	Tenant proto.TenantID `json:"tenant"`
	// Action is one of AutotuneActions: "shrink" (multiplicative
	// back-off), "grow" (additive increase), "hold" (hysteresis band or
	// bound), "cold" (too few LS samples; static bounds applied).
	Action     string `json:"action"`
	Window     int    `json:"window"`
	PrevWindow int    `json:"prev_window"`
	// Cap is the admission cap set alongside the window (0: cleared).
	Cap int `json:"cap"`
	// BurnRate is the interval LS error-budget burn that drove the
	// decision (-1: no samples).
	BurnRate float64 `json:"burn_rate"`
	// LSP99NS is the interval LS service-latency p99 (-1: no samples).
	LSP99NS int64 `json:"ls_p99_ns"`
	// Fill is mean achieved batch size over the window (drain occupancy).
	Fill float64 `json:"fill"`
	// Samples is the LS observation count in the decision interval.
	Samples int64  `json:"samples"`
	Reason  string `json:"reason"`
	At      int64  `json:"at"`
	Seq     uint64 `json:"seq"`
}

// AutotuneTenantState is one tenant's current controller state for
// /debug/autotune: live window/cap, decision counts, and the last verdict.
type AutotuneTenantState struct {
	Tenant uint16 `json:"tenant"`
	Window int    `json:"window"`
	Cap    int    `json:"cap"`
	// Decisions counts verdicts per action, in AutotuneActions order.
	Decisions []int64          `json:"decisions"`
	Last      AutotuneDecision `json:"last"`
}

// autotuneTenant is the registry's mutable per-tenant controller state.
type autotuneTenant struct {
	window int
	cap    int
	counts [4]int64 // AutotuneActions order
	last   AutotuneDecision
}

// actionIndex maps an action to its AutotuneActions slot (-1: unknown).
func actionIndex(a string) int {
	for i, s := range AutotuneActions {
		if s == a {
			return i
		}
	}
	return -1
}

// RecordAutotune appends one adaptive-controller decision to the
// /debug/autotune log and updates the tenant's live state. Cold path.
func (r *Registry) RecordAutotune(d AutotuneDecision) {
	if r == nil {
		return
	}
	r.atMu.Lock()
	defer r.atMu.Unlock()
	r.atSeq++
	d.Seq = r.atSeq
	if len(r.atLog) < autotuneLogCap {
		r.atLog = append(r.atLog, d)
	} else {
		r.atLog[r.atPos] = d
		r.atPos = (r.atPos + 1) % autotuneLogCap
	}
	if r.atState == nil {
		r.atState = make(map[uint16]*autotuneTenant)
	}
	st, ok := r.atState[uint16(d.Tenant)]
	if !ok {
		st = &autotuneTenant{}
		r.atState[uint16(d.Tenant)] = st
	}
	st.window = d.Window
	st.cap = d.Cap
	if i := actionIndex(d.Action); i >= 0 {
		st.counts[i]++
	}
	st.last = d
}

// AutotuneLog returns the retained decisions, oldest first.
func (r *Registry) AutotuneLog() []AutotuneDecision {
	if r == nil {
		return nil
	}
	r.atMu.Lock()
	defer r.atMu.Unlock()
	out := make([]AutotuneDecision, 0, len(r.atLog))
	out = append(out, r.atLog[r.atPos:]...)
	out = append(out, r.atLog[:r.atPos]...)
	return out
}

// AutotuneStates returns every controlled tenant's current state, in
// tenant order (deterministic for golden tests and /metrics).
func (r *Registry) AutotuneStates() []AutotuneTenantState {
	if r == nil {
		return nil
	}
	r.atMu.Lock()
	defer r.atMu.Unlock()
	out := make([]AutotuneTenantState, 0, len(r.atState))
	for t, st := range r.atState {
		out = append(out, AutotuneTenantState{
			Tenant:    t,
			Window:    st.window,
			Cap:       st.cap,
			Decisions: append([]int64(nil), st.counts[:]...),
			Last:      st.last,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
