package telemetry

import (
	"testing"

	"nvmeopf/internal/proto"
)

// TestNilRegistrySafe drives every method on a nil receiver: all must be
// no-ops, none may panic — nil is the "telemetry disabled" value the
// datapath is wired with by default.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.SetClass(1, proto.PrioThroughputCritical)
	r.IncSubmitted(1, 4096)
	r.IncCompleted(1, 100, 4096, true)
	r.IncLSBypass(1)
	r.IncTCQueued(1)
	r.SetQueueDepth(1, 5)
	r.SetWindow(1, 32)
	r.ObserveDrain(1, 16, false)
	r.IncSuppressed(1)
	r.IncResponse(1, true)
	r.IncConnection()
	r.IncReconnect()
	r.IncTransportError()
	r.RecordWindowDecision(WindowDecision{Tenant: 1, Window: 8, Source: SourceDynamic})
	if got := r.Tenants(); got != nil {
		t.Fatalf("nil registry Tenants() = %v, want nil", got)
	}
	if got := r.WindowLog(); got != nil {
		t.Fatalf("nil registry WindowLog() = %v, want nil", got)
	}
	if g := r.Global(); g != (GlobalSnapshot{}) {
		t.Fatalf("nil registry Global() = %+v, want zero", g)
	}
	if r.PrometheusText() == "" {
		t.Fatal("nil registry PrometheusText() empty")
	}
	if r.SnapshotTable() == "" {
		t.Fatal("nil registry SnapshotTable() empty")
	}
}

func TestTenantCountersAndSnapshot(t *testing.T) {
	r := New()
	const tid proto.TenantID = 7
	r.SetClass(tid, proto.PrioThroughputCritical)
	for i := 0; i < 32; i++ {
		r.IncSubmitted(tid, 4096)
	}
	for i := 0; i < 32; i++ {
		r.IncCompleted(tid, int64(1000*(i+1)), 0, i != 0) // one error
	}
	r.IncTCQueued(tid)
	r.SetQueueDepth(tid, 3)
	r.ObserveDrain(tid, 16, false)
	r.ObserveDrain(tid, 16, true)
	for i := 0; i < 30; i++ {
		r.IncSuppressed(tid)
	}
	r.IncResponse(tid, true)
	r.IncResponse(tid, false)

	snaps := r.Tenants()
	if len(snaps) != 1 {
		t.Fatalf("Tenants() returned %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Tenant != 7 || s.Class != "throughput-critical" {
		t.Fatalf("snapshot identity wrong: %+v", s)
	}
	if s.Submitted != 32 || s.Completed != 32 || s.Errors != 1 {
		t.Fatalf("request counters wrong: %+v", s)
	}
	if s.BytesWritten != 32*4096 {
		t.Fatalf("bytes written = %d, want %d", s.BytesWritten, 32*4096)
	}
	if s.QueueDepth != 3 || s.Window != 16 {
		t.Fatalf("gauges wrong: depth=%d window=%d", s.QueueDepth, s.Window)
	}
	if s.Drains != 1 || s.ForcedDrains != 1 || s.Suppressed != 30 {
		t.Fatalf("drain counters wrong: %+v", s)
	}
	if s.Responses != 2 || s.Coalesced != 1 {
		t.Fatalf("response counters wrong: %+v", s)
	}
	// 32 completions over 2 responses: the live Fig. 6(c) ratio.
	if s.CoalescingRatio != 16 {
		t.Fatalf("coalescing ratio = %v, want 16", s.CoalescingRatio)
	}
	if s.LatencySamples != 32 || s.LatencyP50 == 0 || s.LatencyMax != 32000 {
		t.Fatalf("latency snapshot wrong: %+v", s)
	}
	if s.LatencyP99 < s.LatencyP50 || s.LatencyMax < s.LatencyP99 {
		t.Fatalf("latency quantiles out of order: %+v", s)
	}
}

// TestLatencyRingWraps overfills the sample ring and checks the snapshot
// stays bounded and reflects recent values.
func TestLatencyRingWraps(t *testing.T) {
	r := New()
	const tid proto.TenantID = 1
	for i := 0; i < latRingSize*3; i++ {
		r.IncCompleted(tid, 500, 0, true)
	}
	s := r.Tenants()[0]
	if s.LatencySamples != latRingSize {
		t.Fatalf("samples = %d, want ring size %d", s.LatencySamples, latRingSize)
	}
	if s.LatencyP50 != 500 || s.LatencyMax != 500 {
		t.Fatalf("wrapped ring quantiles wrong: %+v", s)
	}
}

func TestWindowLogRing(t *testing.T) {
	r := New()
	for i := 0; i < windowLogCap+10; i++ {
		r.RecordWindowDecision(WindowDecision{Tenant: 2, Window: i + 1, Source: SourceDynamic})
	}
	log := r.WindowLog()
	if len(log) != windowLogCap {
		t.Fatalf("log length = %d, want %d", len(log), windowLogCap)
	}
	// Oldest retained entry is decision #11; newest is #(cap+10).
	if log[0].Seq != 11 || log[len(log)-1].Seq != uint64(windowLogCap+10) {
		t.Fatalf("ring order wrong: first seq %d, last seq %d", log[0].Seq, log[len(log)-1].Seq)
	}
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq+1 {
			t.Fatalf("non-monotone seq at %d: %d after %d", i, log[i].Seq, log[i-1].Seq)
		}
	}
	// RecordWindowDecision also refreshes the tenant's window gauge.
	if w := r.Tenants()[0].Window; w != windowLogCap+10 {
		t.Fatalf("window gauge = %d, want %d", w, windowLogCap+10)
	}
}

func TestUntouchedTenantsSkipped(t *testing.T) {
	r := New()
	r.IncSubmitted(0, 0)
	r.IncSubmitted(255, 0)
	snaps := r.Tenants()
	if len(snaps) != 2 || snaps[0].Tenant != 0 || snaps[1].Tenant != 255 {
		t.Fatalf("expected exactly tenants 0 and 255, got %+v", snaps)
	}
}
