package telemetry

import (
	"testing"
	"time"

	"nvmeopf/internal/proto"
)

// TestNilRegistrySafe drives every method on a nil receiver: all must be
// no-ops, none may panic — nil is the "telemetry disabled" value the
// datapath is wired with by default.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.SetClass(1, proto.PrioThroughputCritical)
	r.IncSubmitted(1, 4096)
	r.IncCompleted(1, proto.PrioThroughputCritical, 100, 4096, true)
	r.IncLSBypass(1)
	r.IncTCQueued(1)
	r.SetQueueDepth(1, 5)
	r.SetWindow(1, 32)
	r.ObserveDrain(1, 16, false)
	r.IncSuppressed(1)
	r.IncResponse(1, true)
	r.IncConnection()
	r.IncReconnect()
	r.IncTransportError()
	r.RecordWindowDecision(WindowDecision{Tenant: 1, Window: 8, Source: SourceDynamic})
	r.SetSLO(1, time.Millisecond, 0.999)
	r.SetDefaultSLO(time.Millisecond, 0.999)
	r.TickSLO(1000)
	r.SetRecorder(nil)
	if got := r.SLOs(2000); got != nil {
		t.Fatalf("nil registry SLOs() = %v, want nil", got)
	}
	if got := r.Recorder(); got != nil {
		t.Fatalf("nil registry Recorder() = %v, want nil", got)
	}
	if got := r.LatencyHist(1, ClassTC); got != nil {
		t.Fatalf("nil registry LatencyHist() = %v, want nil", got)
	}
	if got := r.Tenants(); got != nil {
		t.Fatalf("nil registry Tenants() = %v, want nil", got)
	}
	if got := r.WindowLog(); got != nil {
		t.Fatalf("nil registry WindowLog() = %v, want nil", got)
	}
	if g := r.Global(); g != (GlobalSnapshot{}) {
		t.Fatalf("nil registry Global() = %+v, want zero", g)
	}
	if r.PrometheusText() == "" {
		t.Fatal("nil registry PrometheusText() empty")
	}
	if r.SnapshotTable() == "" {
		t.Fatal("nil registry SnapshotTable() empty")
	}
}

func TestTenantCountersAndSnapshot(t *testing.T) {
	r := New()
	const tid proto.TenantID = 7
	r.SetClass(tid, proto.PrioThroughputCritical)
	for i := 0; i < 32; i++ {
		r.IncSubmitted(tid, 4096)
	}
	for i := 0; i < 32; i++ {
		r.IncCompleted(tid, proto.PrioThroughputCritical, int64(1000*(i+1)), 0, i != 0) // one error
	}
	r.IncTCQueued(tid)
	r.SetQueueDepth(tid, 3)
	r.ObserveDrain(tid, 16, false)
	r.ObserveDrain(tid, 16, true)
	for i := 0; i < 30; i++ {
		r.IncSuppressed(tid)
	}
	r.IncResponse(tid, true)
	r.IncResponse(tid, false)

	snaps := r.Tenants()
	if len(snaps) != 1 {
		t.Fatalf("Tenants() returned %d snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Tenant != 7 || s.Class != "throughput-critical" {
		t.Fatalf("snapshot identity wrong: %+v", s)
	}
	if s.Submitted != 32 || s.Completed != 32 || s.Errors != 1 {
		t.Fatalf("request counters wrong: %+v", s)
	}
	if s.BytesWritten != 32*4096 {
		t.Fatalf("bytes written = %d, want %d", s.BytesWritten, 32*4096)
	}
	if s.QueueDepth != 3 || s.Window != 16 {
		t.Fatalf("gauges wrong: depth=%d window=%d", s.QueueDepth, s.Window)
	}
	if s.Drains != 1 || s.ForcedDrains != 1 || s.Suppressed != 30 {
		t.Fatalf("drain counters wrong: %+v", s)
	}
	if s.Responses != 2 || s.Coalesced != 1 {
		t.Fatalf("response counters wrong: %+v", s)
	}
	// 32 completions over 2 responses: the live Fig. 6(c) ratio.
	if s.CoalescingRatio != 16 {
		t.Fatalf("coalescing ratio = %v, want 16", s.CoalescingRatio)
	}
	if s.LatencySamples != 32 || s.LatencyP50 == 0 || s.LatencyMax != 32000 {
		t.Fatalf("latency snapshot wrong: %+v", s)
	}
	if s.LatencyP99 < s.LatencyP50 || s.LatencyMax < s.LatencyP99 {
		t.Fatalf("latency quantiles out of order: %+v", s)
	}
}

// TestLatencyHistogramUnbounded: the log-bucketed histograms count every
// sample (unlike the fixed sample rings they replaced) and still report
// exact quantiles for a single-valued distribution.
func TestLatencyHistogramUnbounded(t *testing.T) {
	r := New()
	const tid proto.TenantID = 1
	const n = 100_000
	for i := 0; i < n; i++ {
		r.IncCompleted(tid, proto.PrioLatencySensitive, 500, 0, true)
	}
	s := r.Tenants()[0]
	if s.LatencySamples != n {
		t.Fatalf("samples = %d, want %d", s.LatencySamples, n)
	}
	if s.LatencyP50 != 500 || s.LatencyMax != 500 {
		t.Fatalf("single-valued quantiles wrong: %+v", s)
	}
	if h := r.LatencyHist(tid, ClassLS); h.Count() != n {
		t.Fatalf("LS hist count = %d, want %d", h.Count(), n)
	}
	if h := r.LatencyHist(tid, ClassTC); h != nil {
		t.Fatalf("TC hist installed without TC samples")
	}
}

// TestSLOAccounting checks the good/violation split against both a
// per-tenant and the registry-default objective.
func TestSLOAccounting(t *testing.T) {
	r := New()
	r.SetSLO(1, time.Microsecond, 0.99) // 1000ns objective, 1% budget
	r.SetDefaultSLO(2*time.Microsecond, 0.999)
	for i := 0; i < 10; i++ {
		lat := int64(500)
		if i < 3 {
			lat = 1500 // violates tenant 1's objective, meets the default
		}
		r.IncCompleted(1, proto.PrioLatencySensitive, lat, 0, true)
		r.IncCompleted(2, proto.PrioLatencySensitive, lat, 0, true)
	}
	slos := r.SLOs(0)
	if len(slos) != 2 {
		t.Fatalf("SLOs() returned %d tenants, want 2", len(slos))
	}
	t1, t2 := slos[0], slos[1]
	if t1.Tenant != 1 || t1.ObjectiveNS != 1000 || t1.Good != 7 || t1.Violations != 3 {
		t.Fatalf("tenant 1 SLO wrong: %+v", t1)
	}
	if t1.BudgetPPM != 10_000 {
		t.Fatalf("tenant 1 budget = %d ppm, want 10000", t1.BudgetPPM)
	}
	// 30% violations against a 1% budget: burn rate 30.
	if t1.BurnTotal < 29.9 || t1.BurnTotal > 30.1 {
		t.Fatalf("tenant 1 burn total = %v, want 30", t1.BurnTotal)
	}
	if t2.Tenant != 2 || t2.ObjectiveNS != 2000 || t2.Good != 10 || t2.Violations != 0 {
		t.Fatalf("tenant 2 (default SLO) wrong: %+v", t2)
	}
	if t2.Compliance != 1 {
		t.Fatalf("tenant 2 compliance = %v, want 1", t2.Compliance)
	}
}

func TestWindowLogRing(t *testing.T) {
	r := New()
	for i := 0; i < windowLogCap+10; i++ {
		r.RecordWindowDecision(WindowDecision{Tenant: 2, Window: i + 1, Source: SourceDynamic})
	}
	log := r.WindowLog()
	if len(log) != windowLogCap {
		t.Fatalf("log length = %d, want %d", len(log), windowLogCap)
	}
	// Oldest retained entry is decision #11; newest is #(cap+10).
	if log[0].Seq != 11 || log[len(log)-1].Seq != uint64(windowLogCap+10) {
		t.Fatalf("ring order wrong: first seq %d, last seq %d", log[0].Seq, log[len(log)-1].Seq)
	}
	for i := 1; i < len(log); i++ {
		if log[i].Seq != log[i-1].Seq+1 {
			t.Fatalf("non-monotone seq at %d: %d after %d", i, log[i].Seq, log[i-1].Seq)
		}
	}
	// RecordWindowDecision also refreshes the tenant's window gauge.
	if w := r.Tenants()[0].Window; w != windowLogCap+10 {
		t.Fatalf("window gauge = %d, want %d", w, windowLogCap+10)
	}
}

func TestUntouchedTenantsSkipped(t *testing.T) {
	r := New()
	r.IncSubmitted(0, 0)
	r.IncSubmitted(255, 0)
	snaps := r.Tenants()
	if len(snaps) != 2 || snaps[0].Tenant != 0 || snaps[1].Tenant != 255 {
		t.Fatalf("expected exactly tenants 0 and 255, got %+v", snaps)
	}
}
