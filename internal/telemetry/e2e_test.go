package telemetry

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"nvmeopf/internal/proto"
)

// TestE2EAccumDeltaExactMerge pins the core contract of the feedback
// channel: host-side deltas merged at the target reproduce the host's
// histogram exactly (bucket counts and sums equal; max within the shared
// bucket's bound), across multiple delta rounds.
func TestE2EAccumDeltaExactMerge(t *testing.T) {
	acc := NewE2EAccum()
	reg := New()
	ref := &Hist{} // what the host actually observed

	record := func(lat int64) {
		acc.Record(proto.PrioLatencySensitive, lat)
		ref.Record(lat)
	}
	merge := func() {
		u := &proto.TelemetryUpdate{}
		acc.FillUpdate(u)
		if err := reg.MergeE2E(9, u); err != nil {
			t.Fatalf("MergeE2E: %v", err)
		}
	}

	for _, lat := range []int64{1_000, 50_000, 50_001, 1_000_000} {
		record(lat)
	}
	merge()
	for _, lat := range []int64{25, 2_000_000, 50_000} {
		record(lat)
	}
	merge()

	got := reg.E2EHist(9, ClassLS).Snapshot()
	want := ref.Snapshot()
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatal("merged bucket counts differ from the host histogram")
	}
	if got.Sum != want.Sum || got.Count != want.Count {
		t.Fatalf("sum/count: got (%d, %d), want (%d, %d)", got.Sum, got.Count, want.Sum, want.Count)
	}
	// The wire max is the top delta bucket's upper bound: same bucket as
	// the true max, never below it.
	if got.Max < want.Max || histBucketIndex(got.Max) != histBucketIndex(want.Max) {
		t.Fatalf("max: got %d, want within bucket of %d", got.Max, want.Max)
	}
	if q := got.Quantile(0.99); q != want.Quantile(0.99) {
		t.Fatalf("p99: got %d, want %d", q, want.Quantile(0.99))
	}
}

// TestE2EAccumDeltaIsDelta asserts the second FillUpdate carries only new
// samples, and a quiet accumulator yields an empty (not-fresh) update.
func TestE2EAccumDeltaIsDelta(t *testing.T) {
	acc := NewE2EAccum()
	acc.Record(proto.PrioThroughputCritical, 500)
	var u proto.TelemetryUpdate
	if !acc.FillUpdate(&u) {
		t.Fatal("first FillUpdate not fresh")
	}
	if len(u.Classes) != 1 || u.Classes[0].Class != proto.PrioThroughputCritical {
		t.Fatalf("classes = %+v", u.Classes)
	}
	var n int64
	for _, b := range u.Classes[0].Buckets {
		n += int64(b.Count)
	}
	if n != 1 || u.Classes[0].Sum != 500 {
		t.Fatalf("delta carries %d samples sum %d, want 1 sum 500", n, u.Classes[0].Sum)
	}
	if acc.FillUpdate(&u) {
		t.Fatal("quiet accumulator produced a fresh update")
	}
	if len(u.Classes) != 0 {
		t.Fatalf("quiet update still carries classes: %+v", u.Classes)
	}
	acc.Record(proto.PrioThroughputCritical, 501)
	if !acc.FillUpdate(&u) {
		t.Fatal("third FillUpdate not fresh")
	}
	n = 0
	for _, b := range u.Classes[0].Buckets {
		n += int64(b.Count)
	}
	if n != 1 || u.Classes[0].Sum != 501 {
		t.Fatalf("second delta carries %d samples sum %d, want 1 sum 501", n, u.Classes[0].Sum)
	}
}

// TestE2EAccumBusyRetries asserts busy/retry counters are
// reported-and-reset per update (window counters, not running totals on
// the wire) while the registry accumulates them as totals.
func TestE2EAccumBusyRetries(t *testing.T) {
	acc := NewE2EAccum()
	acc.AddBusy()
	acc.AddBusy()
	acc.AddRetries(3)
	var u proto.TelemetryUpdate
	if !acc.FillUpdate(&u) {
		t.Fatal("busy/retry-only update not fresh")
	}
	if u.Busy != 2 || u.Retries != 3 {
		t.Fatalf("busy=%d retries=%d, want 2/3", u.Busy, u.Retries)
	}
	acc.FillUpdate(&u)
	if u.Busy != 0 || u.Retries != 0 {
		t.Fatalf("counters not reset: busy=%d retries=%d", u.Busy, u.Retries)
	}

	reg := New()
	reg.MergeE2E(1, &proto.TelemetryUpdate{SubBits: HistSubBits, Busy: 2, Retries: 3})
	reg.MergeE2E(1, &proto.TelemetryUpdate{SubBits: HistSubBits, Busy: 1, QueueDepth: 5})
	e2e := reg.E2E()
	if len(e2e) != 1 {
		t.Fatalf("e2e snapshots = %d, want 1", len(e2e))
	}
	s := e2e[0]
	if s.Updates != 2 || s.Busy != 3 || s.Retries != 3 || s.QueueDepth != 5 {
		t.Fatalf("snapshot %+v, want updates=2 busy=3 retries=3 qd=5", s)
	}
}

// TestMergeE2EGeometryMismatch asserts a wrong sub-bucket tag is rejected
// before any state changes.
func TestMergeE2EGeometryMismatch(t *testing.T) {
	reg := New()
	u := &proto.TelemetryUpdate{
		SubBits: HistSubBits + 1,
		Classes: []proto.TelemetryClassDelta{{
			Class:   proto.PrioLatencySensitive,
			Sum:     100,
			Buckets: []proto.TelemetryBucket{{Index: 10, Count: 1}},
		}},
	}
	if err := reg.MergeE2E(4, u); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if len(reg.E2E()) != 0 {
		t.Fatal("rejected update still created e2e state")
	}
	// Out-of-range bucket indices are dropped, not written out of bounds.
	ok := &proto.TelemetryUpdate{
		SubBits: HistSubBits,
		Classes: []proto.TelemetryClassDelta{{
			Class:   proto.PrioLatencySensitive,
			Buckets: []proto.TelemetryBucket{{Index: 65535, Count: 1}, {Index: 3, Count: 2}},
		}},
	}
	if err := reg.MergeE2E(4, ok); err != nil {
		t.Fatalf("valid update rejected: %v", err)
	}
	if n := reg.E2EHist(4, ClassLS).Count(); n != 2 {
		t.Fatalf("merged %d samples, want 2 (out-of-range bucket dropped)", n)
	}
}

func TestClassDeltaGoodBad(t *testing.T) {
	acc := NewE2EAccum()
	acc.Record(proto.PrioLatencySensitive, 1_000)   // well under
	acc.Record(proto.PrioLatencySensitive, 40_000)  // bucket upper 40959, still under
	acc.Record(proto.PrioLatencySensitive, 100_000) // over
	var u proto.TelemetryUpdate
	acc.FillUpdate(&u)
	good, bad := ClassDeltaGoodBad(&u.Classes[0], 50_000)
	if good != 2 || bad != 1 {
		t.Fatalf("good=%d bad=%d, want 2/1", good, bad)
	}
	// A corrupt out-of-range index contributes to neither side.
	cd := proto.TelemetryClassDelta{Buckets: []proto.TelemetryBucket{{Index: 65535, Count: 9}}}
	if g, b := ClassDeltaGoodBad(&cd, 50_000); g != 0 || b != 0 {
		t.Fatalf("out-of-range bucket judged: good=%d bad=%d", g, b)
	}
}

func TestResetE2EGauges(t *testing.T) {
	reg := New()
	reg.MergeE2E(7, &proto.TelemetryUpdate{SubBits: HistSubBits, QueueDepth: 42, Busy: 1})
	reg.ResetE2EGauges(7)
	s := reg.E2E()[0]
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth %d after reset, want 0", s.QueueDepth)
	}
	if s.Busy != 1 || s.Updates != 1 {
		t.Fatalf("cumulative counters reset too: %+v", s)
	}
}

func TestClockReestimates(t *testing.T) {
	reg := New()
	if c, d := reg.ClockReestimates(3); c != 0 || d != 0 {
		t.Fatalf("fresh tenant reports (%d, %d)", c, d)
	}
	reg.RecordClockReestimate(3, 250)
	reg.RecordClockReestimate(3, -80)
	c, d := reg.ClockReestimates(3)
	if c != 2 || d != -80 {
		t.Fatalf("got (%d, %d), want (2, -80)", c, d)
	}
	var nilReg *Registry
	nilReg.RecordClockReestimate(3, 1) // must not panic
}

// e2eGoldenRegistry builds a deterministic registry with both the
// target-side service view and a merged host e2e view, via the real
// host-side accumulator.
func e2eGoldenRegistry(t *testing.T) *Registry {
	t.Helper()
	r := New()
	r.SetClass(2, 1) // latency-sensitive
	// Target-side service latencies: three LS completions at 40 µs.
	for i := 0; i < 3; i++ {
		r.IncCompleted(2, proto.PrioLatencySensitive, 40_000, 4096, true)
	}
	// Host-side: the same tenant saw 1 ms end to end, twice, plus busy
	// push-back — shipped through the real accumulator.
	acc := NewE2EAccum()
	acc.Record(proto.PrioLatencySensitive, 1_000_000)
	acc.Record(proto.PrioLatencySensitive, 1_000_000)
	acc.AddBusy()
	acc.AddRetries(2)
	u := &proto.TelemetryUpdate{QueueDepth: 7}
	acc.FillUpdate(u)
	if err := r.MergeE2E(2, u); err != nil {
		t.Fatalf("MergeE2E: %v", err)
	}
	r.RecordClockReestimate(2, 1200)
	return r
}

// e2eGoldenJSON is the exact /debug/e2e body for e2eGoldenRegistry. The
// shape is a contract: opf-top parses it.
const e2eGoldenJSON = `{
  "tenants": [
    {
      "tenant": 2,
      "updates": 1,
      "queue_depth": 7,
      "busy": 1,
      "retries": 2,
      "classes": [
        {
          "class": "ls",
          "samples": 2,
          "p50_ns": 1000000,
          "p99_ns": 1000000,
          "max_ns": 1000000,
          "service_p99_ns": 40000,
          "gap_p99_ns": 960000
        }
      ]
    }
  ]
}
`

func TestDebugE2EGolden(t *testing.T) {
	got := fetchJSON(t, e2eGoldenRegistry(t), "/debug/e2e")
	diffGolden(t, got, e2eGoldenJSON)
}

// e2ePromGolden is the exact nvmeopf_e2e_* + clock-re-estimate section of
// the exposition for e2eGoldenRegistry.
const e2ePromGolden = `# HELP nvmeopf_e2e_latency_hist_ns Host-observed end-to-end latency histogram per class, merged from TelemetryUpdate deltas.
# TYPE nvmeopf_e2e_latency_hist_ns histogram
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="1023"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="2047"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="4095"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="8191"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="16383"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="32767"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="65535"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="131071"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="262143"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="524287"} 0
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="1048575"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="2097151"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="4194303"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="8388607"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="16777215"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="33554431"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="67108863"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="134217727"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="268435455"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="536870911"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="1073741823"} 2
nvmeopf_e2e_latency_hist_ns_bucket{tenant="2",class="ls",le="+Inf"} 2
nvmeopf_e2e_latency_hist_ns_sum{tenant="2",class="ls"} 2000000
nvmeopf_e2e_latency_hist_ns_count{tenant="2",class="ls"} 2
# HELP nvmeopf_e2e_gap_ns Egress gap: host-observed e2e p99 minus target-side service p99.
# TYPE nvmeopf_e2e_gap_ns gauge
nvmeopf_e2e_gap_ns{tenant="2",class="ls"} 960000
# HELP nvmeopf_e2e_updates_total TelemetryUpdate PDUs merged from hosts.
# TYPE nvmeopf_e2e_updates_total counter
nvmeopf_e2e_updates_total{tenant="2"} 1
# HELP nvmeopf_e2e_host_queue_depth Host-side outstanding commands at the last update.
# TYPE nvmeopf_e2e_host_queue_depth gauge
nvmeopf_e2e_host_queue_depth{tenant="2"} 7
# HELP nvmeopf_e2e_busy_total Host-observed StatusBusy completions.
# TYPE nvmeopf_e2e_busy_total counter
nvmeopf_e2e_busy_total{tenant="2"} 1
# HELP nvmeopf_e2e_retries_total Host-side resubmissions reported over the feedback channel.
# TYPE nvmeopf_e2e_retries_total counter
nvmeopf_e2e_retries_total{tenant="2"} 2
# HELP nvmeopf_clock_reestimate_delta_ns Last periodic clock-offset re-estimate minus the previous estimate.
# TYPE nvmeopf_clock_reestimate_delta_ns gauge
nvmeopf_clock_reestimate_delta_ns{tenant="2"} 1200
# HELP nvmeopf_clock_reestimates_total Periodic clock-offset re-estimates performed.
# TYPE nvmeopf_clock_reestimates_total counter
nvmeopf_clock_reestimates_total{tenant="2"} 1
`

func TestE2EPrometheusGolden(t *testing.T) {
	full := e2eGoldenRegistry(t).PrometheusText()
	i := strings.Index(full, "# HELP nvmeopf_e2e_latency_hist_ns ")
	if i < 0 {
		t.Fatalf("exposition has no e2e section:\n%s", full)
	}
	j := strings.Index(full, "# HELP nvmeopf_connections_total ")
	if j < 0 || j < i {
		t.Fatalf("exposition order broken")
	}
	diffGolden(t, full[i:j], e2ePromGolden)
}

// TestE2ESectionAbsentWhenUnused pins the disabled-is-invisible contract:
// a registry that never merged a TelemetryUpdate emits no nvmeopf_e2e_*
// or clock series at all.
func TestE2ESectionAbsentWhenUnused(t *testing.T) {
	text := goldenRegistry().PrometheusText()
	for _, forbidden := range []string{"nvmeopf_e2e_", "nvmeopf_clock_"} {
		if strings.Contains(text, forbidden) {
			t.Fatalf("idle registry exposes %s series", forbidden)
		}
	}
	if body := fetchJSON(t, goldenRegistry(), "/debug/e2e"); !strings.Contains(body, `"tenants": null`) {
		t.Fatalf("idle /debug/e2e body: %s", body)
	}
}

// TestDebugEndpointsRejectNonGET covers the read-only contract of every
// /debug JSON endpoint: POST is answered 405 with an Allow header, and
// GET responds with application/json.
func TestDebugEndpointsRejectNonGET(t *testing.T) {
	srv := httptest.NewServer(e2eGoldenRegistry(t).Handler())
	defer srv.Close()
	paths := []string{"/debug/tenants", "/debug/windows", "/debug/slo", "/debug/autotune", "/debug/e2e"}
	for _, p := range paths {
		resp, err := http.Post(srv.URL+p, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", p, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s Allow = %q, want GET", p, allow)
		}
		get, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		get.Body.Close()
		if ct := get.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s content type %q", p, ct)
		}
	}
	// /debug/trace is gated too (404 without a recorder, but never 200 on
	// POST).
	resp, err := http.Post(srv.URL+"/debug/trace", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/trace = %d, want 405", resp.StatusCode)
	}
}
