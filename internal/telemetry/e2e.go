package telemetry

import (
	"fmt"
	"sync/atomic"

	"nvmeopf/internal/proto"
)

// The end-to-end feedback plane: hosts accumulate what they actually
// observe — end-to-end latency per class, busy push-back, resubmissions —
// and ship sparse histogram deltas to the target inside TelemetryUpdate
// PDUs on the transport's keep-alive cadence. The target merges each
// tenant's deltas into per-tenant e2e histograms that share the service
// histograms' bucket geometry, so the merge is exact (bucket-wise
// addition, no re-sampling) and the egress gap — host e2e p99 minus
// target service p99 — is directly comparable. This closes the blind spot
// the service-side signal has by construction: queueing that happens
// after a completion leaves the target's NIC.

// HistSubBits is the histogram geometry tag carried in
// proto.TelemetryUpdate.SubBits: the sub-bucket resolution of the HDR
// grid both sides must share for deltas to merge exactly.
const HistSubBits = histSubBits

// wirePriority maps a latency class back to the representative wire
// priority TelemetryUpdate carries for it.
func (c Class) wirePriority() proto.Priority {
	switch c {
	case ClassLS:
		return proto.PrioLatencySensitive
	case ClassScav:
		return proto.PrioScavenger
	default:
		return proto.PrioThroughputCritical
	}
}

// E2EAccum accumulates one host session's end-to-end observations between
// TelemetryUpdates. Record runs on the completion path (lock-free, no
// allocation after the first sample per class); FillUpdate runs on the
// emission cadence and extracts the delta since the previous call.
// AddBusy/AddRetries are safe from any goroutine; Record and FillUpdate
// must run on the session's event context (they share the delta
// baseline).
type E2EAccum struct {
	hist    [numClasses]*Hist
	prev    [numClasses][]int64
	prevSum [numClasses]int64
	busy    atomic.Int64
	retries atomic.Int64
}

// NewE2EAccum creates an accumulator.
func NewE2EAccum() *E2EAccum { return &E2EAccum{} }

// Record adds one end-to-end completion latency (clock units; negative
// samples are dropped). A nil accumulator ignores the call.
func (a *E2EAccum) Record(prio proto.Priority, latency int64) {
	if a == nil || latency < 0 {
		return
	}
	c := ClassOf(prio)
	if a.hist[c] == nil {
		a.hist[c] = &Hist{}
	}
	a.hist[c].Record(latency)
}

// AddBusy counts one StatusBusy completion.
func (a *E2EAccum) AddBusy() {
	if a == nil {
		return
	}
	a.busy.Add(1)
}

// AddRetries counts n resubmitted commands (replays after a connection
// loss, re-sends after busy push-back).
func (a *E2EAccum) AddRetries(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.retries.Add(n)
}

// FillUpdate writes the deltas since the previous FillUpdate into u
// (Classes, SubBits, Busy, Retries) and advances the baseline. The caller
// fills HostClock and QueueDepth. Returns true when the update carries
// any new information (samples, busy or retry counts) — heartbeat-only
// updates still refresh the clock estimate and queue-depth gauge, so
// callers typically send either way.
func (a *E2EAccum) FillUpdate(u *proto.TelemetryUpdate) bool {
	u.SubBits = HistSubBits
	u.Classes = nil
	fresh := false
	if a == nil {
		return false
	}
	u.Busy = uint32(a.busy.Swap(0))
	u.Retries = uint32(a.retries.Swap(0))
	fresh = u.Busy > 0 || u.Retries > 0
	for c := Class(0); c < numClasses; c++ {
		h := a.hist[c]
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		prev := a.prev[c]
		cd := proto.TelemetryClassDelta{Class: c.wirePriority()}
		top := -1
		for i, n := range snap.Counts {
			var p int64
			if prev != nil {
				p = prev[i]
			}
			if d := n - p; d > 0 {
				cd.Buckets = append(cd.Buckets, proto.TelemetryBucket{
					Index: uint16(i), Count: uint32(d),
				})
				top = i
			}
		}
		if top < 0 {
			continue
		}
		cd.Sum = uint64(snap.Sum - a.prevSum[c])
		// The per-window maximum is bounded by the top occupied delta
		// bucket (and never beyond the lifetime max).
		mx := histBucketUpper(top)
		if mx > snap.Max {
			mx = snap.Max
		}
		cd.Max = uint64(mx)
		a.prev[c] = snap.Counts
		a.prevSum[c] = snap.Sum
		u.Classes = append(u.Classes, cd)
		fresh = true
	}
	return fresh
}

// ClassDeltaGoodBad splits one wire class delta's samples into within/over-
// objective counts by bucket bound: a bucket whose upper bound meets the
// objective counts as good. The verdict carries the histogram's resolution
// (≤3.1% relative error) — the same contract as every quantile the
// registry serves. Out-of-range indices are skipped, matching mergeDelta.
func ClassDeltaGoodBad(cd *proto.TelemetryClassDelta, objectiveNS int64) (good, bad int64) {
	for _, b := range cd.Buckets {
		if int(b.Index) >= histBuckets {
			continue
		}
		if histBucketUpper(int(b.Index)) <= objectiveNS {
			good += int64(b.Count)
		} else {
			bad += int64(b.Count)
		}
	}
	return good, bad
}

// e2eClassHist returns the tenant's e2e histogram for a class, installing
// it on first use (same lazy-CAS pattern as the service histograms).
func (s *tenantSlot) e2eClassHist(c Class) *Hist {
	if h := s.e2eHist[c].Load(); h != nil {
		return h
	}
	h := &Hist{}
	if s.e2eHist[c].CompareAndSwap(nil, h) {
		return h
	}
	return s.e2eHist[c].Load()
}

// mergeDelta adds one wire class delta into the histogram. Out-of-range
// bucket indices are dropped (a host speaking a wider geometry already
// failed the SubBits check; this is belt-and-suspenders for corruption).
func (h *Hist) mergeDelta(cd *proto.TelemetryClassDelta) {
	for _, b := range cd.Buckets {
		if int(b.Index) >= histBuckets {
			continue
		}
		h.counts[b.Index].Add(int64(b.Count))
	}
	h.sum.Add(int64(cd.Sum))
	for {
		m := h.max.Load()
		if int64(cd.Max) <= m || h.max.CompareAndSwap(m, int64(cd.Max)) {
			break
		}
	}
}

// MergeE2E merges one host's TelemetryUpdate into the tenant's end-to-end
// view. The geometry tag must match this registry's grid — a mismatch is
// an error (merging across grids would silently corrupt quantiles). A nil
// registry accepts and drops the update.
func (r *Registry) MergeE2E(t proto.TenantID, u *proto.TelemetryUpdate) error {
	if u.SubBits != HistSubBits {
		return fmt.Errorf("telemetry: TelemetryUpdate geometry sub-bits %d != %d", u.SubBits, HistSubBits)
	}
	if r == nil {
		return nil
	}
	s := r.slot(t)
	s.e2eUpdates.Add(1)
	s.e2eQueueDepth.Store(int64(u.QueueDepth))
	s.e2eBusy.Add(int64(u.Busy))
	s.e2eRetries.Add(int64(u.Retries))
	for i := range u.Classes {
		cd := &u.Classes[i]
		if len(cd.Buckets) == 0 && cd.Sum == 0 {
			continue
		}
		s.e2eClassHist(ClassOf(cd.Class)).mergeDelta(cd)
	}
	return nil
}

// E2EHist returns the tenant's merged end-to-end histogram for a class
// (nil when no host reported samples for it yet).
func (r *Registry) E2EHist(t proto.TenantID, c Class) *Hist {
	if r == nil || c >= numClasses {
		return nil
	}
	s := r.peek(t)
	if s == nil {
		return nil
	}
	return s.e2eHist[c].Load()
}

// ResetE2EGauges clears the tenant's last-value e2e gauges on session
// teardown so a recycled tenant ID does not inherit a dead host's
// outstanding queue depth. Cumulative counters and histograms are kept,
// like every other tenant metric.
func (r *Registry) ResetE2EGauges(t proto.TenantID) {
	if r == nil {
		return
	}
	if s := r.peek(t); s != nil {
		s.e2eQueueDepth.Store(0)
	}
}

// RecordClockReestimate records one periodic clock-offset refresh on the
// host: delta is the new estimate minus the previous one (ns), the drift
// the keep-alive round trip just corrected.
func (r *Registry) RecordClockReestimate(t proto.TenantID, delta int64) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.clockReest.Add(1)
	s.clockReestDelta.Store(delta)
}

// ClockReestimates returns how many re-estimates the tenant performed and
// the last one's delta.
func (r *Registry) ClockReestimates(t proto.TenantID) (count, lastDelta int64) {
	if r == nil {
		return 0, 0
	}
	s := r.peek(t)
	if s == nil {
		return 0, 0
	}
	return s.clockReest.Load(), s.clockReestDelta.Load()
}

// E2EClassSnapshot is one class's end-to-end view next to the target-side
// service latency it telescopes over.
type E2EClassSnapshot struct {
	Class   string `json:"class"`
	Samples int64  `json:"samples"`
	P50NS   int64  `json:"p50_ns"`
	P99NS   int64  `json:"p99_ns"`
	MaxNS   int64  `json:"max_ns"`
	// ServiceP99NS is the target-side service p99 for the same class;
	// GapP99NS = P99NS − ServiceP99NS is the egress gap: latency the host
	// saw that the target's own telemetry cannot.
	ServiceP99NS int64 `json:"service_p99_ns"`
	GapP99NS     int64 `json:"gap_p99_ns"`
}

// E2ESnapshot is one tenant's state on the feedback channel.
type E2ESnapshot struct {
	Tenant     uint16             `json:"tenant"`
	Updates    int64              `json:"updates"`
	QueueDepth int64              `json:"queue_depth"`
	Busy       int64              `json:"busy"`
	Retries    int64              `json:"retries"`
	Classes    []E2EClassSnapshot `json:"classes"`
}

// E2E snapshots every tenant that reported at least one TelemetryUpdate,
// in tenant order (served at /debug/e2e).
func (r *Registry) E2E() []E2ESnapshot {
	if r == nil {
		return nil
	}
	var out []E2ESnapshot
	r.eachTouched(func(i int, s *tenantSlot) {
		if s.e2eUpdates.Load() == 0 {
			return
		}
		snap := E2ESnapshot{
			Tenant:     uint16(i),
			Updates:    s.e2eUpdates.Load(),
			QueueDepth: s.e2eQueueDepth.Load(),
			Busy:       s.e2eBusy.Load(),
			Retries:    s.e2eRetries.Load(),
		}
		for c := Class(0); c < numClasses; c++ {
			h := s.e2eHist[c].Load()
			if h == nil {
				continue
			}
			hs := h.Snapshot()
			if hs.Count == 0 {
				continue
			}
			cs := E2EClassSnapshot{
				Class:   c.String(),
				Samples: hs.Count,
				P50NS:   hs.Quantile(0.50),
				P99NS:   hs.Quantile(0.99),
				MaxNS:   hs.Max,
			}
			if sh := s.hist[c].Load(); sh != nil {
				cs.ServiceP99NS = sh.Quantile(0.99)
			}
			cs.GapP99NS = cs.P99NS - cs.ServiceP99NS
			snap.Classes = append(snap.Classes, cs)
		}
		out = append(out, snap)
	})
	return out
}
