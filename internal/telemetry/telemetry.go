// Package telemetry is the live observability plane of the NVMe-oPF
// runtime: a low-overhead metrics registry, a pluggable PDU-lifecycle
// trace hook, and an HTTP exporter.
//
// Everything internal/stats offers is post-hoc — histograms read after a
// run finishes. The paper's contribution is a queueing/QoS scheme, and
// operating one (window tuning, admission control, SLO enforcement)
// requires continuous per-tenant signal while the target serves traffic:
// queue depths, drain windows, coalescing ratios, LS tail latency. This
// package provides that signal with a design constraint inherited from the
// datapath it instruments: the hot path pays only an atomic add.
//
// Cost model:
//
//   - A nil *Registry is fully usable and free: every method is
//     nil-receiver-safe and returns immediately, so disabled telemetry
//     costs a predictable branch and zero allocations (verified by
//     TestDisabledRegistryZeroAllocs).
//   - An enabled Registry keeps one fixed slot per possible tenant
//     (proto.TenantID is uint16) in lazily installed pages holding only atomic
//     counters/gauges and a lock-free ring of latency samples. No maps, no
//     locks, no allocation on the record path.
//   - Cold paths — the window-decision log and the exporter's snapshots —
//     take a mutex; they run once per drain epoch or per scrape, never per
//     request.
//
// The trace hook (TraceFunc) is invoked by internal/core, internal/hostqp
// and internal/targetqp at the PDU lifecycle points of Algorithms 1–4, so
// tests and debugging tools can reconstruct a request's full timeline:
//
//	submit → drain-mark → enqueue → drain-start → device-complete →
//	coalesced-notify → replay
package telemetry

import (
	"fmt"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// Stage is one point in a request's lifecycle at which the runtime invokes
// the trace hook.
type Stage uint8

// Lifecycle stages, in the order a coalesced TC request traverses them.
// LS/normal requests skip the queueing stages (submit → device-complete).
const (
	// StageSubmit: the host session put a command capsule on the wire.
	StageSubmit Stage = iota
	// StageDrainMark: the host PM stamped the draining flag on this
	// request (Alg. 1) — it will flush the tenant's window at the target.
	StageDrainMark
	// StageEnqueue: the target PM absorbed a TC request into its tenant
	// queue (Alg. 3); Aux carries the queue depth after the push.
	StageEnqueue
	// StageDrainStart: the target PM released a whole window for
	// execution; Aux carries the batch size. The event's CID is the
	// triggering (draining or overflow) request.
	StageDrainStart
	// StageDeviceComplete: the backend finished the command; Aux carries
	// the service latency in clock units when the target has a clock, else
	// zero.
	StageDeviceComplete
	// StageCoalescedNotify: the target PM emitted one coalesced response
	// covering the tenant's whole window (Alg. 4); the CID is the drain
	// request's.
	StageCoalescedNotify
	// StageReplay: the host PM replayed one request's completion from a
	// coalesced response (Alg. 2); Aux carries the end-to-end latency in
	// clock units.
	StageReplay
	// StageArrive: the target session received a command capsule, before
	// the PM classified it; Aux carries the in-capsule payload bytes.
	// (Appended after StageReplay to keep earlier stage values stable in
	// recorded dumps; causally it sits between submit and enqueue.)
	StageArrive
	// StageComplete: the host session delivered the application-visible
	// completion — coalesced or individual, any class; Aux carries the
	// end-to-end latency in clock units. Emitted after StageReplay for
	// coalesced members.
	StageComplete
	// StageTeardown: a session was torn down after its connection died.
	// Emitted once per teardown (CID zero); Aux carries the number of
	// queued requests dropped with it.
	StageTeardown
	// StageForcedDrain: the drain watchdog force-released a tenant's
	// parked TC queue because no draining flag arrived within the deadline
	// (host crashed or went silent mid-window). Aux carries the batch
	// size; the CID is the last parked request's. Emitted alongside
	// StageDrainStart so window correlation keeps working. (Appended after
	// StageTeardown to keep recorded stage values stable; causally it sits
	// with drain-start.)
	StageForcedDrain
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageSubmit:
		return "submit"
	case StageDrainMark:
		return "drain-mark"
	case StageEnqueue:
		return "enqueue"
	case StageDrainStart:
		return "drain-start"
	case StageDeviceComplete:
		return "device-complete"
	case StageCoalescedNotify:
		return "coalesced-notify"
	case StageReplay:
		return "replay"
	case StageArrive:
		return "arrive"
	case StageComplete:
		return "complete"
	case StageTeardown:
		return "teardown"
	case StageForcedDrain:
		return "forced-drain"
	default:
		return fmt.Sprintf("Stage(%d)", uint8(s))
	}
}

// StageFromString inverts Stage.String (used by dump readers). The second
// result is false for unknown names.
func StageFromString(s string) (Stage, bool) {
	for st := StageSubmit; st <= StageForcedDrain; st++ {
		if st.String() == s {
			return st, true
		}
	}
	return 0, false
}

// rank orders stages causally within one request's lifecycle (the const
// order is historical: arrive/complete were appended to keep recorded
// numeric values stable).
func (s Stage) rank() int {
	switch s {
	case StageSubmit:
		return 0
	case StageDrainMark:
		return 1
	case StageArrive:
		return 2
	case StageEnqueue:
		return 3
	case StageDrainStart, StageForcedDrain:
		return 4
	case StageDeviceComplete:
		return 5
	case StageCoalescedNotify:
		return 6
	case StageReplay:
		return 7
	case StageComplete:
		return 8
	case StageTeardown:
		return 9
	default:
		return 10
	}
}

// Event is one trace point. Events carry no timestamp: the layers that
// emit them are sans-IO and clock-free; a consumer that needs wall or
// virtual time stamps events as they arrive (it runs on the emitting
// reactor, so arrival order is lifecycle order per tenant).
type Event struct {
	Stage  Stage
	Tenant proto.TenantID
	CID    nvme.CID
	Prio   proto.Priority
	// Aux is stage-specific: queue depth after enqueue, batch size at
	// drain-start, latency at device-complete/replay.
	Aux int64
}

// String renders the event for debug logs.
func (e Event) String() string {
	return fmt.Sprintf("%s tenant=%d cid=%d prio=%s aux=%d",
		e.Stage, e.Tenant, e.CID, e.Prio, e.Aux)
}

// TraceFunc receives lifecycle events. It is called synchronously on the
// emitting reactor goroutine: implementations must be fast and must not
// call back into the session/PM that emitted the event. A nil TraceFunc
// disables tracing at zero cost (the emitters check before building the
// Event).
type TraceFunc func(Event)

// WindowSource says which mechanism produced a window decision.
type WindowSource string

// Window decision sources.
const (
	// SourceStatic: the §IV-D static selection at connection setup.
	SourceStatic WindowSource = "static"
	// SourceDynamic: the runtime hill-climbing tuner after a drain.
	SourceDynamic WindowSource = "dynamic"
	// SourceDrain: a window observed at the target when a drain released
	// it (batch size as seen target-side).
	SourceDrain WindowSource = "drain"
)

// WindowDecision is one entry of the window-optimizer decision log served
// at /debug/windows.
type WindowDecision struct {
	Tenant proto.TenantID `json:"tenant"`
	// Window is the size chosen (host side) or observed (target side).
	Window int `json:"window"`
	// PrevWindow is the size before the decision (0 when unknown).
	PrevWindow int `json:"prev_window,omitempty"`
	// Bytes moved by the epoch/window that triggered the decision.
	Bytes int64 `json:"bytes,omitempty"`
	// Source tells which mechanism decided.
	Source WindowSource `json:"source"`
	// Seq is a registry-assigned monotone sequence number.
	Seq uint64 `json:"seq"`
}
