package telemetry

import (
	"sort"
)

// Cross-runtime timeline correlation: merge a host-side and a target-side
// flight-recorder dump into per-request timelines on one time axis.
//
// Correlation key. CIDs are reused (the host allocator recycles a CID as
// soon as its completion lands), so (tenant, CID) alone is ambiguous
// across a long run. But both sides observe one TCP byte stream, so the
// k-th StageSubmit of (tenant, cid) on the host pairs with the k-th
// StageArrive of (tenant, cid) on the target — the pair (tenant, CID,
// submit-epoch k) is unique. The correlator counts epochs per key on each
// side independently and zips them.
//
// Time axis. Target timestamps are normalized onto the *host* axis, since
// the analyst usually holds the host dump: t_host = t_target - offset, where
// offset = target_clock - host_clock as estimated during the ICReq/ICResp
// handshake (see hostqp: offset = T - (t0 + rtt/2)). The estimate's error
// is bounded by the handshake RTT, which Correlation carries as Tolerance
// so validity checks don't flag sub-RTT inversions between runtimes.

// TimelinePoint is one stage observation inside a request timeline.
type TimelinePoint struct {
	Stage Stage
	TS    int64 // host-axis nanoseconds
	Aux   int64
	Host  bool // observed by the host-side recorder
}

// Timeline is one request's merged lifecycle.
type Timeline struct {
	Tenant uint16
	CID    uint16
	Epoch  int // k-th reuse of this (tenant, CID)
	Prio   uint8
	Points []TimelinePoint // causally ordered (Stage rank, then TS)
}

// point returns the first observation of a stage (nil if absent).
func (tl *Timeline) point(s Stage) *TimelinePoint {
	for i := range tl.Points {
		if tl.Points[i].Stage == s {
			return &tl.Points[i]
		}
	}
	return nil
}

// TS returns a stage's host-axis timestamp and whether it was observed.
func (tl *Timeline) TS(s Stage) (int64, bool) {
	if p := tl.point(s); p != nil {
		return p.TS, true
	}
	return 0, false
}

// Has reports whether the timeline observed a stage.
func (tl *Timeline) Has(s Stage) bool { return tl.point(s) != nil }

// E2E returns the submit→complete latency (0, false when either end is
// missing — e.g. a single-sided dump).
func (tl *Timeline) E2E() (int64, bool) {
	s, okS := tl.TS(StageSubmit)
	c, okC := tl.TS(StageComplete)
	if !okS || !okC {
		return 0, false
	}
	return c - s, true
}

// Complete reports whether the timeline has both ends of the request
// (submit and complete) plus the target-side arrival when a target dump
// participated — the acceptance bar for "reconstructed".
func (tl *Timeline) Complete(twoSided bool) bool {
	if !tl.Has(StageSubmit) || !tl.Has(StageComplete) {
		return false
	}
	if twoSided && !tl.Has(StageArrive) {
		return false
	}
	return true
}

// Monotonic verifies causal order: within one runtime timestamps must be
// non-decreasing along stage rank; across runtimes an inversion up to tol
// (the clock-offset error bound) is allowed.
func (tl *Timeline) Monotonic(tol int64) bool {
	for i := 1; i < len(tl.Points); i++ {
		a, b := tl.Points[i-1], tl.Points[i]
		if b.TS >= a.TS {
			continue
		}
		if a.Host != b.Host && a.TS-b.TS <= tol {
			continue // cross-runtime, within clock-estimate error
		}
		return false
	}
	return true
}

// sortPoints orders by causal stage rank, breaking ties by timestamp.
func (tl *Timeline) sortPoints() {
	sort.SliceStable(tl.Points, func(i, j int) bool {
		a, b := tl.Points[i], tl.Points[j]
		if ra, rb := a.Stage.rank(), b.Stage.rank(); ra != rb {
			return ra < rb
		}
		return a.TS < b.TS
	})
}

// Correlation is the result of merging one or two dumps.
type Correlation struct {
	Timelines []Timeline
	// Offset is the applied clock offset (target minus host, ns).
	Offset int64
	// Tolerance bounds the offset's error (the handshake RTT).
	Tolerance int64
	// TwoSided reports whether both a host and a target dump contributed.
	TwoSided bool
	// Submitted counts StageSubmit events seen (the denominator for the
	// reconstruction ratio).
	Submitted int
	// Anomalies aggregates the auto-captured snapshots from both dumps.
	Anomalies []AnomalySnapshot
}

// CompleteCount returns how many timelines pass Complete+Monotonic.
func (c *Correlation) CompleteCount() int {
	n := 0
	for i := range c.Timelines {
		tl := &c.Timelines[i]
		if tl.Complete(c.TwoSided) && tl.Monotonic(c.Tolerance) {
			n++
		}
	}
	return n
}

type reqKey struct {
	tenant uint16
	cid    uint16
}

// correlator accumulates timelines while scanning a dump.
type correlator struct {
	byKey map[reqKey][]*Timeline
	order []*Timeline // creation order, for deterministic output
}

func newCorrelator() *correlator {
	return &correlator{byKey: make(map[reqKey][]*Timeline)}
}

// open starts a new epoch for the key.
func (c *correlator) open(k reqKey, prio uint8) *Timeline {
	tl := &Timeline{Tenant: k.tenant, CID: k.cid, Epoch: len(c.byKey[k]), Prio: prio}
	c.byKey[k] = append(c.byKey[k], tl)
	c.order = append(c.order, tl)
	return tl
}

// last returns the key's most recent epoch (nil when none).
func (c *correlator) last(k reqKey) *Timeline {
	l := c.byKey[k]
	if len(l) == 0 {
		return nil
	}
	return l[len(l)-1]
}

// at returns the key's epoch i (nil when out of range).
func (c *correlator) at(k reqKey, i int) *Timeline {
	l := c.byKey[k]
	if i < 0 || i >= len(l) {
		return nil
	}
	return l[i]
}

// Correlate merges dumps into per-request timelines. Either dump may be
// nil for single-sided analysis. Events must be dump-ordered (ReadDump
// and Recorder.Events both guarantee it).
func Correlate(host, target *Dump) *Correlation {
	out := &Correlation{}
	off, rtt := int64(0), int64(0)
	if host != nil && host.Meta.ClockOffset != 0 {
		off, rtt = host.Meta.ClockOffset, host.Meta.RTT
	} else if target != nil && target.Meta.ClockOffset != 0 {
		off, rtt = target.Meta.ClockOffset, target.Meta.RTT
	}
	out.Offset, out.Tolerance = off, rtt
	out.TwoSided = host != nil && target != nil

	corr := newCorrelator()

	if host != nil {
		out.Anomalies = append(out.Anomalies, host.Anomalies...)
		// The host PM stamps the draining flag (and emits drain-mark)
		// before the submit event of the same request. When a CID is
		// reused from a completion callback the previous epoch is already
		// closed, so a drain-mark seen after a complete belongs to the
		// *next* submit of that key — hold it until the epoch opens.
		pendingMark := map[reqKey]*TimelinePoint{}
		for _, e := range host.Events {
			k := reqKey{e.Tenant, e.CID}
			pt := TimelinePoint{Stage: Stage(e.Stage), TS: e.TS, Aux: e.Aux, Host: true}
			switch Stage(e.Stage) {
			case StageSubmit:
				tl := corr.open(k, e.Prio)
				if pm := pendingMark[k]; pm != nil {
					tl.Points = append(tl.Points, *pm)
					delete(pendingMark, k)
				}
				tl.Points = append(tl.Points, pt)
			case StageDrainMark:
				if tl := corr.last(k); tl != nil && !tl.Has(StageComplete) {
					tl.Points = append(tl.Points, pt)
				} else {
					p := pt
					pendingMark[k] = &p
				}
			case StageReplay, StageComplete:
				if tl := corr.last(k); tl != nil {
					tl.Points = append(tl.Points, pt)
				}
			}
		}
	}

	if target != nil {
		out.Anomalies = append(out.Anomalies, target.Anomalies...)
		// arriveEpoch counts arrivals per key; cur points at the epoch the
		// key's in-flight instance belongs to. Batch-level events fan out
		// to the tenant's open members via the state sets below.
		arriveEpoch := map[reqKey]int{}
		enqueued := map[uint16][]*Timeline{} // tenant → enqueue seen, drain pending
		draining := map[uint16][]*Timeline{} // drain seen, notify pending
		for _, e := range target.Events {
			k := reqKey{e.Tenant, e.CID}
			st := Stage(e.Stage)
			pt := TimelinePoint{Stage: st, TS: e.TS - off, Aux: e.Aux, Host: false}
			switch st {
			case StageArrive:
				ep := arriveEpoch[k]
				arriveEpoch[k] = ep + 1
				tl := corr.at(k, ep)
				if tl == nil {
					// Single-sided target dump (or host dump truncated by
					// ring wrap): open an epoch from the target's view.
					tl = corr.open(k, e.Prio)
				}
				tl.Points = append(tl.Points, pt)
			case StageEnqueue:
				if tl := corr.at(k, arriveEpoch[k]-1); tl != nil {
					tl.Points = append(tl.Points, pt)
					enqueued[e.Tenant] = append(enqueued[e.Tenant], tl)
				}
			case StageDrainStart:
				for _, tl := range enqueued[e.Tenant] {
					tl.Points = append(tl.Points, pt)
					draining[e.Tenant] = append(draining[e.Tenant], tl)
				}
				enqueued[e.Tenant] = enqueued[e.Tenant][:0]
			case StageDeviceComplete:
				if tl := corr.at(k, arriveEpoch[k]-1); tl != nil {
					tl.Points = append(tl.Points, pt)
				}
			case StageCoalescedNotify:
				// Drain windows pipeline: a notify can fire while a later
				// batch is still in device service. Only members whose
				// device completion has already been seen belong to this
				// notify; the rest wait for the next one.
				keep := draining[e.Tenant][:0]
				for _, tl := range draining[e.Tenant] {
					if tl.Has(StageDeviceComplete) {
						tl.Points = append(tl.Points, pt)
					} else {
						keep = append(keep, tl)
					}
				}
				draining[e.Tenant] = keep
			}
		}
	}

	for _, tl := range corr.order {
		tl.sortPoints()
		if tl.Has(StageSubmit) {
			out.Submitted++
		} else if out.TwoSided {
			out.Submitted++ // arrived without a recorded submit: still a request
		}
		out.Timelines = append(out.Timelines, *tl)
	}
	// Deterministic report order: tenant, then first timestamp, then CID.
	sort.SliceStable(out.Timelines, func(i, j int) bool {
		a, b := &out.Timelines[i], &out.Timelines[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		at, bt := int64(0), int64(0)
		if len(a.Points) > 0 {
			at = a.Points[0].TS
		}
		if len(b.Points) > 0 {
			bt = b.Points[0].TS
		}
		if at != bt {
			return at < bt
		}
		if a.CID != b.CID {
			return a.CID < b.CID
		}
		return a.Epoch < b.Epoch
	})
	return out
}
