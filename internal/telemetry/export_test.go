package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// goldenRegistry builds a registry with fixed, deterministic contents.
func goldenRegistry() *Registry {
	r := New()
	r.SetClass(0, 1) // latency-sensitive
	r.SetSLO(0, 2*time.Microsecond, 0.999)
	r.IncSubmitted(0, 0)
	r.IncCompleted(0, 1, 1500, 4096, true)
	r.IncLSBypass(0)

	r.SetClass(3, 2) // throughput-critical
	for i := 0; i < 16; i++ {
		r.IncSubmitted(3, 4096)
		r.IncTCQueued(3)
	}
	for i := 0; i < 16; i++ {
		r.IncCompleted(3, 2, -1, 0, true) // no latency samples: deterministic
	}
	for i := 0; i < 15; i++ {
		r.IncSuppressed(3)
	}
	r.SetQueueDepth(3, 0)
	r.ObserveDrain(3, 16, false)
	r.IncResponse(3, true)
	for i := 0; i < 3; i++ {
		r.IncBusyRejection(3)
	}
	r.IncReplayed(3)
	r.IncReplayed(3)
	r.IncConnection()
	r.IncConnection()
	return r
}

// goldenText is the exact exposition the golden registry must render. The
// format is a contract: Prometheus scrapers parse it, so any change must
// be deliberate.
const goldenText = `# HELP nvmeopf_tenant_submitted_total Requests submitted.
# TYPE nvmeopf_tenant_submitted_total counter
nvmeopf_tenant_submitted_total{tenant="0"} 1
nvmeopf_tenant_submitted_total{tenant="3"} 16
# HELP nvmeopf_tenant_completed_total Application-visible completions.
# TYPE nvmeopf_tenant_completed_total counter
nvmeopf_tenant_completed_total{tenant="0"} 1
nvmeopf_tenant_completed_total{tenant="3"} 16
# HELP nvmeopf_tenant_errors_total Completions with a non-success status.
# TYPE nvmeopf_tenant_errors_total counter
nvmeopf_tenant_errors_total{tenant="0"} 0
nvmeopf_tenant_errors_total{tenant="3"} 0
# HELP nvmeopf_tenant_bytes_read_total Payload bytes read.
# TYPE nvmeopf_tenant_bytes_read_total counter
nvmeopf_tenant_bytes_read_total{tenant="0"} 4096
nvmeopf_tenant_bytes_read_total{tenant="3"} 0
# HELP nvmeopf_tenant_bytes_written_total Payload bytes written.
# TYPE nvmeopf_tenant_bytes_written_total counter
nvmeopf_tenant_bytes_written_total{tenant="0"} 0
nvmeopf_tenant_bytes_written_total{tenant="3"} 65536
# HELP nvmeopf_tenant_ls_bypass_total Latency-sensitive requests that bypassed the TC queues.
# TYPE nvmeopf_tenant_ls_bypass_total counter
nvmeopf_tenant_ls_bypass_total{tenant="0"} 1
nvmeopf_tenant_ls_bypass_total{tenant="3"} 0
# HELP nvmeopf_tenant_tc_queued_total Throughput-critical requests absorbed into the tenant queue.
# TYPE nvmeopf_tenant_tc_queued_total counter
nvmeopf_tenant_tc_queued_total{tenant="0"} 0
nvmeopf_tenant_tc_queued_total{tenant="3"} 16
# HELP nvmeopf_tenant_queue_depth Pending TC requests in the tenant queue.
# TYPE nvmeopf_tenant_queue_depth gauge
nvmeopf_tenant_queue_depth{tenant="0"} 0
nvmeopf_tenant_queue_depth{tenant="3"} 0
# HELP nvmeopf_tenant_drain_window Drain window size (chosen on the host, observed at the target).
# TYPE nvmeopf_tenant_drain_window gauge
nvmeopf_tenant_drain_window{tenant="0"} 0
nvmeopf_tenant_drain_window{tenant="3"} 16
# HELP nvmeopf_tenant_drains_total Windows released by a draining flag.
# TYPE nvmeopf_tenant_drains_total counter
nvmeopf_tenant_drains_total{tenant="0"} 0
nvmeopf_tenant_drains_total{tenant="3"} 1
# HELP nvmeopf_tenant_forced_drains_total Windows released by the safety valve.
# TYPE nvmeopf_tenant_forced_drains_total counter
nvmeopf_tenant_forced_drains_total{tenant="0"} 0
nvmeopf_tenant_forced_drains_total{tenant="3"} 0
# HELP nvmeopf_tenant_suppressed_total Device completions absorbed by coalescing.
# TYPE nvmeopf_tenant_suppressed_total counter
nvmeopf_tenant_suppressed_total{tenant="0"} 0
nvmeopf_tenant_suppressed_total{tenant="3"} 15
# HELP nvmeopf_tenant_responses_total Wire responses emitted.
# TYPE nvmeopf_tenant_responses_total counter
nvmeopf_tenant_responses_total{tenant="0"} 0
nvmeopf_tenant_responses_total{tenant="3"} 1
# HELP nvmeopf_tenant_coalesced_responses_total Wire responses covering a whole window.
# TYPE nvmeopf_tenant_coalesced_responses_total counter
nvmeopf_tenant_coalesced_responses_total{tenant="0"} 0
nvmeopf_tenant_coalesced_responses_total{tenant="3"} 1
# HELP nvmeopf_busy_rejections_total Requests refused admission with StatusBusy.
# TYPE nvmeopf_busy_rejections_total counter
nvmeopf_busy_rejections_total{tenant="0"} 0
nvmeopf_busy_rejections_total{tenant="3"} 3
# HELP nvmeopf_replayed_requests_total Requests resubmitted by host-side recovery.
# TYPE nvmeopf_replayed_requests_total counter
nvmeopf_replayed_requests_total{tenant="0"} 0
nvmeopf_replayed_requests_total{tenant="3"} 2
# HELP nvmeopf_tenant_coalescing_ratio Completions per wire response (>1 means coalescing).
# TYPE nvmeopf_tenant_coalescing_ratio gauge
nvmeopf_tenant_coalescing_ratio{tenant="0"} 0.0000
nvmeopf_tenant_coalescing_ratio{tenant="3"} 16.0000
# HELP nvmeopf_tenant_latency_ns End-to-end latency quantiles from the log-bucketed histograms.
# TYPE nvmeopf_tenant_latency_ns gauge
nvmeopf_tenant_latency_ns{tenant="0",quantile="0.5"} 1500
nvmeopf_tenant_latency_ns{tenant="0",quantile="0.95"} 1500
nvmeopf_tenant_latency_ns{tenant="0",quantile="0.99"} 1500
nvmeopf_tenant_latency_ns{tenant="0",quantile="0.999"} 1500
nvmeopf_tenant_latency_ns{tenant="0",quantile="1"} 1500
# HELP nvmeopf_tenant_latency_hist_ns End-to-end latency histogram per class (log-bucketed, ~3% relative error).
# TYPE nvmeopf_tenant_latency_hist_ns histogram
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="1023"} 0
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="2047"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="4095"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="8191"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="16383"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="32767"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="65535"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="131071"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="262143"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="524287"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="1048575"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="2097151"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="4194303"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="8388607"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="16777215"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="33554431"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="67108863"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="134217727"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="268435455"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="536870911"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="1073741823"} 1
nvmeopf_tenant_latency_hist_ns_bucket{tenant="0",class="ls",le="+Inf"} 1
nvmeopf_tenant_latency_hist_ns_sum{tenant="0",class="ls"} 1500
nvmeopf_tenant_latency_hist_ns_count{tenant="0",class="ls"} 1
# HELP nvmeopf_tenant_slo_objective_ns Declared per-tenant latency objective.
# TYPE nvmeopf_tenant_slo_objective_ns gauge
nvmeopf_tenant_slo_objective_ns{tenant="0"} 2000
# HELP nvmeopf_tenant_slo_good_total Completions within the latency objective.
# TYPE nvmeopf_tenant_slo_good_total counter
nvmeopf_tenant_slo_good_total{tenant="0"} 1
# HELP nvmeopf_tenant_slo_violations_total Completions slower than the objective.
# TYPE nvmeopf_tenant_slo_violations_total counter
nvmeopf_tenant_slo_violations_total{tenant="0"} 0
# HELP nvmeopf_tenant_slo_burn_rate Error-budget burn rate per trailing window (1 = consuming exactly the budget).
# TYPE nvmeopf_tenant_slo_burn_rate gauge
nvmeopf_tenant_slo_burn_rate{tenant="0",window="total"} 0.0000
# HELP nvmeopf_connections_total Connections established.
# TYPE nvmeopf_connections_total counter
nvmeopf_connections_total 2
# HELP nvmeopf_reconnects_total Connections re-established after failure.
# TYPE nvmeopf_reconnects_total counter
nvmeopf_reconnects_total 2
# HELP nvmeopf_transport_errors_total Transport-level failures.
# TYPE nvmeopf_transport_errors_total counter
nvmeopf_transport_errors_total 0
# HELP nvmeopf_disconnects_total Sessions torn down after their connection died.
# TYPE nvmeopf_disconnects_total counter
nvmeopf_disconnects_total 1
# HELP nvmeopf_teardown_dropped_total Queued requests discarded by session teardown.
# TYPE nvmeopf_teardown_dropped_total counter
nvmeopf_teardown_dropped_total 5
`

func TestPrometheusGolden(t *testing.T) {
	r := goldenRegistry()
	r.IncReconnect()
	r.IncReconnect()
	r.IncDisconnect()
	r.AddTeardownDrops(5)
	got := r.PrometheusText()
	if got != goldenText {
		// Report the first diverging line for a readable failure.
		gl, wl := strings.Split(got, "\n"), strings.Split(goldenText, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("exposition line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("exposition length mismatch: got %d lines, want %d", len(gl), len(wl))
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `nvmeopf_tenant_submitted_total{tenant="3"} 16`) {
		t.Fatalf("metrics body missing expected series:\n%s", body)
	}
}

// TestDebugTenantsRoundTrip decodes /debug/tenants back into snapshot
// structs and checks the table matches the registry.
func TestDebugTenantsRoundTrip(t *testing.T) {
	r := goldenRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var decoded struct {
		Global  GlobalSnapshot   `json:"global"`
		Tenants []TenantSnapshot `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Global.Connections != 2 {
		t.Fatalf("global connections = %d, want 2", decoded.Global.Connections)
	}
	want := r.Tenants()
	if len(decoded.Tenants) != len(want) {
		t.Fatalf("tenant count = %d, want %d", len(decoded.Tenants), len(want))
	}
	for i := range want {
		if decoded.Tenants[i] != want[i] {
			t.Fatalf("tenant %d round-trip mismatch:\n got %+v\nwant %+v", i, decoded.Tenants[i], want[i])
		}
	}
}

func TestDebugWindowsEndpoint(t *testing.T) {
	r := New()
	r.RecordWindowDecision(WindowDecision{Tenant: 4, Window: 32, PrevWindow: 16, Bytes: 1 << 20, Source: SourceDynamic})
	r.RecordWindowDecision(WindowDecision{Tenant: 4, Window: 16, PrevWindow: 32, Source: SourceDynamic})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/windows")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded struct {
		Windows []WindowDecision `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded.Windows) != 2 {
		t.Fatalf("window log length = %d, want 2", len(decoded.Windows))
	}
	if decoded.Windows[0].Window != 32 || decoded.Windows[1].Window != 16 ||
		decoded.Windows[0].Seq != 1 || decoded.Windows[1].Seq != 2 {
		t.Fatalf("window log wrong: %+v", decoded.Windows)
	}
}

func TestServeAndClose(t *testing.T) {
	r := goldenRegistry()
	exp, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + exp.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("get from live exporter: %v", err)
	}
	resp.Body.Close()
	if err := exp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// fetchJSON fetches one debug endpoint and returns the exact body.
func fetchJSON(t *testing.T, r *Registry, path string) string {
	t.Helper()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// diffGolden fails with the first diverging line of a golden comparison.
func diffGolden(t *testing.T, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("length mismatch: got %d lines, want %d", len(gl), len(wl))
}

// sloGoldenText is the exact /debug/slo body for the registry built in
// TestDebugSLOGolden. Field order and shape are a contract: dashboards
// parse this, so any change must be deliberate.
const sloGoldenText = `{
  "windows": [
    "1m",
    "5m",
    "1h",
    "total"
  ],
  "slos": [
    {
      "tenant": 2,
      "objective_ns": 1000000,
      "budget_ppm": 10000,
      "good": 98,
      "violations": 2,
      "compliance": 0.98,
      "burn_rate": [
        -1,
        4,
        4
      ],
      "burn_total": 2
    }
  ]
}
`

func TestDebugSLOGolden(t *testing.T) {
	r := New()
	const t0 = int64(10_000_000_000_000) // fixed virtual epoch: no wall clock
	r.SetClock(func() int64 { return t0 + int64(2*time.Minute) })
	defer r.SetClock(nil)
	r.SetSLO(2, time.Millisecond, 0.99) // 10000 ppm error budget
	// 50 in-objective completions checkpointed at t0: the 1m window has no
	// checkpoint young enough (burn -1), the 5m and 1h windows measure the
	// delta past t0.
	for i := 0; i < 50; i++ {
		r.IncCompleted(2, 1, 500_000, 0, true)
	}
	r.TickSLO(t0)
	// Then 48 good and 2 violating completions inside the trailing window:
	// interval violation fraction 2/50 = 4x the 1% budget, lifetime
	// fraction 2/100 = 2x.
	for i := 0; i < 48; i++ {
		r.IncCompleted(2, 1, 500_000, 0, true)
	}
	r.IncCompleted(2, 1, 2_000_000, 0, true)
	r.IncCompleted(2, 1, 3_000_000, 0, true)
	diffGolden(t, fetchJSON(t, r, "/debug/slo"), sloGoldenText)
}

// autotuneGoldenText is the exact /debug/autotune body for the decisions
// recorded in TestDebugAutotuneGolden: per-action counters in
// AutotuneActions order, tenants sorted, decisions oldest first.
const autotuneGoldenText = `{
  "actions": [
    "shrink",
    "grow",
    "hold",
    "cold"
  ],
  "tenants": [
    {
      "tenant": 3,
      "window": 16,
      "cap": 128,
      "decisions": [
        1,
        0,
        0,
        1
      ],
      "last": {
        "tenant": 3,
        "action": "shrink",
        "window": 16,
        "prev_window": 32,
        "cap": 128,
        "burn_rate": 2.5,
        "ls_p99_ns": 250000,
        "fill": 0.75,
        "samples": 64,
        "reason": "burn 2.50 > 1.00: multiplicative back-off",
        "at": 200,
        "seq": 2
      }
    },
    {
      "tenant": 5,
      "window": 12,
      "cap": 96,
      "decisions": [
        0,
        1,
        0,
        0
      ],
      "last": {
        "tenant": 5,
        "action": "grow",
        "window": 12,
        "prev_window": 8,
        "cap": 96,
        "burn_rate": 0.25,
        "ls_p99_ns": 90000,
        "fill": 1,
        "samples": 32,
        "reason": "burn 0.25 < 0.50, fill 1.00: additive grow",
        "at": 300,
        "seq": 3
      }
    }
  ],
  "decisions": [
    {
      "tenant": 3,
      "action": "cold",
      "window": 32,
      "prev_window": 32,
      "cap": 0,
      "burn_rate": -1,
      "ls_p99_ns": -1,
      "fill": 0,
      "samples": 0,
      "reason": "interval samples 0 < 8: static bounds",
      "at": 100,
      "seq": 1
    },
    {
      "tenant": 3,
      "action": "shrink",
      "window": 16,
      "prev_window": 32,
      "cap": 128,
      "burn_rate": 2.5,
      "ls_p99_ns": 250000,
      "fill": 0.75,
      "samples": 64,
      "reason": "burn 2.50 > 1.00: multiplicative back-off",
      "at": 200,
      "seq": 2
    },
    {
      "tenant": 5,
      "action": "grow",
      "window": 12,
      "prev_window": 8,
      "cap": 96,
      "burn_rate": 0.25,
      "ls_p99_ns": 90000,
      "fill": 1,
      "samples": 32,
      "reason": "burn 0.25 < 0.50, fill 1.00: additive grow",
      "at": 300,
      "seq": 3
    }
  ]
}
`

func TestDebugAutotuneGolden(t *testing.T) {
	r := New()
	r.RecordAutotune(AutotuneDecision{
		Tenant: 3, Action: "cold", Window: 32, PrevWindow: 32,
		BurnRate: -1, LSP99NS: -1,
		Reason: "interval samples 0 < 8: static bounds", At: 100,
	})
	r.RecordAutotune(AutotuneDecision{
		Tenant: 3, Action: "shrink", Window: 16, PrevWindow: 32, Cap: 128,
		BurnRate: 2.5, LSP99NS: 250_000, Fill: 0.75, Samples: 64,
		Reason: "burn 2.50 > 1.00: multiplicative back-off", At: 200,
	})
	r.RecordAutotune(AutotuneDecision{
		Tenant: 5, Action: "grow", Window: 12, PrevWindow: 8, Cap: 96,
		BurnRate: 0.25, LSP99NS: 90_000, Fill: 1, Samples: 32,
		Reason: "burn 0.25 < 0.50, fill 1.00: additive grow", At: 300,
	})
	diffGolden(t, fetchJSON(t, r, "/debug/autotune"), autotuneGoldenText)
}

// TestAutotuneLogWraps overfills the decision ring and checks it keeps
// exactly the newest autotuneLogCap decisions, oldest first.
func TestAutotuneLogWraps(t *testing.T) {
	r := New()
	for i := 0; i < autotuneLogCap+5; i++ {
		r.RecordAutotune(AutotuneDecision{Tenant: 1, Action: "hold", At: int64(i)})
	}
	log := r.AutotuneLog()
	if len(log) != autotuneLogCap {
		t.Fatalf("log length = %d, want %d", len(log), autotuneLogCap)
	}
	if log[0].Seq != 6 || log[len(log)-1].Seq != uint64(autotuneLogCap+5) {
		t.Fatalf("wrap kept wrong range: first seq %d, last seq %d",
			log[0].Seq, log[len(log)-1].Seq)
	}
}
