package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// ev builds one dump event.
func ev(ts int64, st Stage, tenant uint16, cid uint16, prio uint8, aux int64) RecordedEvent {
	return RecordedEvent{TS: ts, Stage: uint8(st), Tenant: tenant, CID: cid, Prio: prio, Aux: aux}
}

// twoSidedFixture builds matching host/target dumps for one TC request
// (tenant 1, CID 5) and one LS request (tenant 2, CID 3). Target clock
// runs 100ns ahead of the host's; the host estimated that offset with a
// 10ns RTT during the handshake.
func twoSidedFixture() (*Dump, *Dump) {
	host := &Dump{
		Meta: DumpMeta{Format: DumpFormat, Role: "host", ClockOffset: 100, RTT: 10},
		Events: []RecordedEvent{
			ev(1000, StageSubmit, 1, 5, 2, 4096),
			ev(1000, StageDrainMark, 1, 5, 2, 0),
			ev(2000, StageSubmit, 2, 3, 1, 0),
			ev(4000, StageComplete, 2, 3, 1, 2000),
			ev(9000, StageComplete, 1, 5, 2, 8000),
		},
	}
	target := &Dump{
		Meta: DumpMeta{Format: DumpFormat, Role: "target"},
		Events: []RecordedEvent{
			// Target-clock timestamps: host time + 100.
			ev(1600, StageArrive, 1, 5, 2, 4096),
			ev(1700, StageEnqueue, 1, 5, 2, 1),
			ev(2600, StageArrive, 2, 3, 1, 0),
			ev(3100, StageDrainStart, 1, 5, 2, 1),
			ev(3600, StageDeviceComplete, 2, 3, 1, 1000),
			ev(6100, StageDeviceComplete, 1, 5, 2, 3000),
			ev(7100, StageCoalescedNotify, 1, 5, 2, 1),
		},
	}
	return host, target
}

func TestCorrelateTwoSided(t *testing.T) {
	host, target := twoSidedFixture()
	c := Correlate(host, target)
	if !c.TwoSided || c.Offset != 100 || c.Tolerance != 10 {
		t.Fatalf("correlation meta wrong: twoSided=%v offset=%d tol=%d", c.TwoSided, c.Offset, c.Tolerance)
	}
	if c.Submitted != 2 || len(c.Timelines) != 2 {
		t.Fatalf("submitted=%d timelines=%d, want 2/2", c.Submitted, len(c.Timelines))
	}
	if c.CompleteCount() != 2 {
		t.Fatalf("CompleteCount = %d, want 2", c.CompleteCount())
	}

	tc := &c.Timelines[0] // tenant 1 sorts first
	if tc.Tenant != 1 || tc.CID != 5 || tc.Prio != 2 || len(tc.Points) != 8 {
		t.Fatalf("TC timeline wrong: %+v", tc)
	}
	// Target events land on the host axis: target TS minus the offset.
	for stage, want := range map[Stage]int64{
		StageSubmit: 1000, StageArrive: 1500, StageEnqueue: 1600,
		StageDrainStart: 3000, StageDeviceComplete: 6000,
		StageCoalescedNotify: 7000, StageComplete: 9000,
	} {
		if got, ok := tc.TS(stage); !ok || got != want {
			t.Fatalf("stage %v TS = %d,%v, want %d", stage, got, ok, want)
		}
	}
	if e2e, ok := tc.E2E(); !ok || e2e != 8000 {
		t.Fatalf("TC e2e = %d,%v, want 8000", e2e, ok)
	}

	// The telescoping invariant: span durations sum exactly to e2e.
	bd := Breakdown(tc)
	if bd[SpanXfer] != 500 || bd[SpanQueue] != 1500 || bd[SpanService] != 3000 ||
		bd[SpanNotify] != 1000 || bd[SpanReturn] != 2000 {
		t.Fatalf("TC breakdown wrong: %+v", bd)
	}
	var sum int64
	for _, name := range SpanOrder {
		sum += bd[name]
	}
	if sum != 8000 {
		t.Fatalf("span sum = %d, want e2e 8000", sum)
	}

	// LS request: no queue/notify stages; spans collapse, sum still exact.
	ls := &c.Timelines[1]
	if ls.Tenant != 2 || ls.Prio != 1 {
		t.Fatalf("LS timeline wrong: %+v", ls)
	}
	lbd := Breakdown(ls)
	if lbd[SpanXfer] != 500 || lbd[SpanService] != 1000 || lbd[SpanReturn] != 500 {
		t.Fatalf("LS breakdown wrong: %+v", lbd)
	}
	if _, hasQueue := lbd[SpanQueue]; hasQueue {
		t.Fatalf("LS breakdown reports a queue span: %+v", lbd)
	}
}

// TestCorrelateCIDReuse: the same (tenant, CID) submitted twice must
// produce two epochs, each pairing the k-th submit with the k-th arrival.
func TestCorrelateCIDReuse(t *testing.T) {
	host := &Dump{
		Meta: DumpMeta{Format: DumpFormat, Role: "host"},
		Events: []RecordedEvent{
			ev(100, StageSubmit, 1, 9, 1, 0),
			ev(300, StageComplete, 1, 9, 1, 200),
			ev(500, StageSubmit, 1, 9, 1, 0),
			ev(900, StageComplete, 1, 9, 1, 400),
		},
	}
	target := &Dump{
		Meta: DumpMeta{Format: DumpFormat, Role: "target"},
		Events: []RecordedEvent{
			ev(150, StageArrive, 1, 9, 1, 0),
			ev(200, StageDeviceComplete, 1, 9, 1, 0),
			ev(600, StageArrive, 1, 9, 1, 0),
			ev(700, StageDeviceComplete, 1, 9, 1, 0),
		},
	}
	c := Correlate(host, target)
	if len(c.Timelines) != 2 || c.Submitted != 2 || c.CompleteCount() != 2 {
		t.Fatalf("reuse correlation wrong: %d timelines, %d submitted, %d complete",
			len(c.Timelines), c.Submitted, c.CompleteCount())
	}
	for i, wantE2E := range []int64{200, 400} {
		tl := &c.Timelines[i]
		if tl.Epoch != i {
			t.Fatalf("timeline %d epoch = %d", i, tl.Epoch)
		}
		if e2e, ok := tl.E2E(); !ok || e2e != wantE2E {
			t.Fatalf("epoch %d e2e = %d, want %d", i, e2e, wantE2E)
		}
	}
}

// TestCorrelateSingleSided: a target-only dump still yields timelines
// (opened at arrival) without counting host-side submits it cannot see.
func TestCorrelateSingleSided(t *testing.T) {
	_, target := twoSidedFixture()
	c := Correlate(nil, target)
	if c.TwoSided {
		t.Fatal("single-sided correlation claims two sides")
	}
	if len(c.Timelines) != 2 {
		t.Fatalf("timelines = %d, want 2", len(c.Timelines))
	}
	if c.Timelines[0].Has(StageSubmit) {
		t.Fatal("target-only timeline has a submit stage")
	}
	// Without the host dump's meta the offset defaults to zero.
	if c.Offset != 0 {
		t.Fatalf("offset = %d, want 0", c.Offset)
	}
}

func TestAnalyzeDetectorsAndReport(t *testing.T) {
	host, target := twoSidedFixture()
	// Drop the TC complete: an incomplete timeline plus a reconstruction
	// ratio below 1.
	host.Events = host.Events[:len(host.Events)-1]
	c := Correlate(host, target)
	rep := Analyze(c, AnalyzeOptions{StallThreshold: 1000})
	if rep.Submitted != 2 || rep.Complete != 1 || rep.Incomplete != 1 {
		t.Fatalf("report counts wrong: %+v", rep)
	}
	if r := rep.ReconstructionRatio(); r != 0.5 {
		t.Fatalf("reconstruction ratio = %v, want 0.5", r)
	}
	var kinds []string
	for _, a := range rep.Anomalies {
		kinds = append(kinds, a.Kind)
	}
	// TC queue wait was 1500ns > 1000ns threshold → drain-stall; the
	// dropped complete → incomplete. Sorted by kind.
	if len(kinds) != 2 || kinds[0] != "drain-stall" || kinds[1] != "incomplete" {
		t.Fatalf("anomaly kinds = %v", kinds)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== opf-trace report ==",
		"dumps: host+target  clock-offset=100ns  tolerance=10ns",
		"2 submitted, 1 reconstructed (50.0%), 1 incomplete",
		"[drain-stall]",
		"[incomplete]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
