package telemetry

import (
	"testing"
)

// TestDisabledRegistryZeroAllocs is the hard guarantee behind "nil
// registry = zero cost": the full submit-path instrument sequence on a
// disabled (nil) registry must not allocate. testing.AllocsPerRun makes
// this a test failure, not just a benchmark number.
func TestDisabledRegistryZeroAllocs(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.IncSubmitted(3, 4096)
		r.IncTCQueued(3)
		r.SetQueueDepth(3, 7)
		r.IncCompleted(3, 2, 1500, 4096, true)
		r.IncSuppressed(3)
		r.IncResponse(3, true)
	})
	if allocs != 0 {
		t.Fatalf("disabled registry allocated %.1f allocs/op on the submit path, want 0", allocs)
	}
}

// TestEnabledRegistryZeroAllocs: the enabled record path is atomics into
// pre-allocated slots — it must not allocate either.
func TestEnabledRegistryZeroAllocs(t *testing.T) {
	r := New()
	allocs := testing.AllocsPerRun(1000, func() {
		r.IncSubmitted(3, 4096)
		r.IncTCQueued(3)
		r.SetQueueDepth(3, 7)
		r.IncCompleted(3, 2, 1500, 4096, true)
		r.IncSuppressed(3)
		r.IncResponse(3, true)
	})
	if allocs != 0 {
		t.Fatalf("enabled registry allocated %.1f allocs/op on the record path, want 0", allocs)
	}
}

// TestRecorderTraceZeroAllocs: the flight recorder shares the registry's
// cost model — an enabled Trace is three atomic stores into a
// pre-installed ring (the lazy ring install happens on AllocsPerRun's
// warm-up call), and a nil recorder is one branch.
func TestRecorderTraceZeroAllocs(t *testing.T) {
	rec := NewRecorder(RecorderConfig{PerTenant: 64})
	ev := Event{Stage: StageSubmit, Tenant: 3, CID: 9, Prio: 2, Aux: 4096}
	if allocs := testing.AllocsPerRun(1000, func() { rec.Trace(ev) }); allocs != 0 {
		t.Fatalf("enabled recorder Trace allocated %.1f allocs/op, want 0", allocs)
	}
	var nilRec *Recorder
	if allocs := testing.AllocsPerRun(1000, func() { nilRec.Trace(ev) }); allocs != 0 {
		t.Fatalf("nil recorder Trace allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestHistRecordZeroAllocs: the histogram record path is two atomic adds
// plus a CAS loop for the max — never an allocation.
func TestHistRecordZeroAllocs(t *testing.T) {
	h := &Hist{}
	v := int64(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		v += 997
		h.Record(v)
	}); allocs != 0 {
		t.Fatalf("hist Record allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkRecorderTrace measures the per-event flight-recorder cost the
// reactor pays when a recorder is attached.
func BenchmarkRecorderTrace(b *testing.B) {
	rec := NewRecorder(RecorderConfig{})
	ev := Event{Stage: StageSubmit, Tenant: 3, CID: 9, Prio: 2, Aux: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Trace(ev)
	}
}

// BenchmarkHistRecord measures the histogram record path in isolation.
func BenchmarkHistRecord(b *testing.B) {
	h := &Hist{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

// BenchmarkDisabledSubmitPath measures the cost a telemetry-disabled
// datapath pays per request: one nil check per instrument call.
func BenchmarkDisabledSubmitPath(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.IncSubmitted(3, 4096)
		r.IncCompleted(3, 2, 1500, 4096, true)
	}
}

// BenchmarkEnabledSubmitPath measures the enabled cost: atomic adds plus
// one ring sample store.
func BenchmarkEnabledSubmitPath(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.IncSubmitted(3, 4096)
		r.IncCompleted(3, 2, 1500, 4096, true)
	}
}

// BenchmarkEnabledSubmitPathParallel exercises contention: many
// goroutines recording into the same tenant slot.
func BenchmarkEnabledSubmitPathParallel(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.IncSubmitted(3, 4096)
			r.IncCompleted(3, 2, 1500, 4096, true)
		}
	})
}
