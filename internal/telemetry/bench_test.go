package telemetry

import (
	"testing"
)

// TestDisabledRegistryZeroAllocs is the hard guarantee behind "nil
// registry = zero cost": the full submit-path instrument sequence on a
// disabled (nil) registry must not allocate. testing.AllocsPerRun makes
// this a test failure, not just a benchmark number.
func TestDisabledRegistryZeroAllocs(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.IncSubmitted(3, 4096)
		r.IncTCQueued(3)
		r.SetQueueDepth(3, 7)
		r.IncCompleted(3, 1500, 4096, true)
		r.IncSuppressed(3)
		r.IncResponse(3, true)
	})
	if allocs != 0 {
		t.Fatalf("disabled registry allocated %.1f allocs/op on the submit path, want 0", allocs)
	}
}

// TestEnabledRegistryZeroAllocs: the enabled record path is atomics into
// pre-allocated slots — it must not allocate either.
func TestEnabledRegistryZeroAllocs(t *testing.T) {
	r := New()
	allocs := testing.AllocsPerRun(1000, func() {
		r.IncSubmitted(3, 4096)
		r.IncTCQueued(3)
		r.SetQueueDepth(3, 7)
		r.IncCompleted(3, 1500, 4096, true)
		r.IncSuppressed(3)
		r.IncResponse(3, true)
	})
	if allocs != 0 {
		t.Fatalf("enabled registry allocated %.1f allocs/op on the record path, want 0", allocs)
	}
}

// BenchmarkDisabledSubmitPath measures the cost a telemetry-disabled
// datapath pays per request: one nil check per instrument call.
func BenchmarkDisabledSubmitPath(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.IncSubmitted(3, 4096)
		r.IncCompleted(3, 1500, 4096, true)
	}
}

// BenchmarkEnabledSubmitPath measures the enabled cost: atomic adds plus
// one ring sample store.
func BenchmarkEnabledSubmitPath(b *testing.B) {
	r := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.IncSubmitted(3, 4096)
		r.IncCompleted(3, 1500, 4096, true)
	}
}

// BenchmarkEnabledSubmitPathParallel exercises contention: many
// goroutines recording into the same tenant slot.
func BenchmarkEnabledSubmitPathParallel(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.IncSubmitted(3, 4096)
			r.IncCompleted(3, 1500, 4096, true)
		}
	})
}
