package telemetry

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHistBucketGeometry checks the two geometric invariants every other
// guarantee rests on: a bucket's upper bound never undershoots the values
// it admits, and the relative overshoot is bounded by 1/histSubBuckets
// (values below histSubBuckets are exact).
func TestHistBucketGeometry(t *testing.T) {
	check := func(v int64) {
		t.Helper()
		up := histBucketUpper(histBucketIndex(v))
		if up < v {
			t.Fatalf("bucket upper %d < value %d", up, v)
		}
		if v < histSubBuckets {
			if up != v {
				t.Fatalf("value %d below sub-bucket range not exact: upper %d", v, up)
			}
			return
		}
		if err := up - v; err*histSubBuckets > v {
			t.Fatalf("value %d: upper %d overshoots by %d (> v/%d)", v, up, err, histSubBuckets)
		}
	}
	for v := int64(0); v < 1<<14; v++ {
		check(v)
	}
	// Sweep the full int64 range at every octave boundary and interior.
	for shift := 14; shift < 63; shift++ {
		base := int64(1) << shift
		for _, v := range []int64{base - 1, base, base + 1, base + base/3, base + base/2} {
			if v > 0 {
				check(v)
			}
		}
	}
	check(1<<63 - 1)
}

// TestHistQuantileErrorBounds records synthetic distributions and checks
// every reported quantile sits within one sub-bucket (≤ 1/32 relative)
// above the exact sample quantile and never below it.
func TestHistQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() int64{
		"uniform":  func() int64 { return rng.Int63n(1_000_000) },
		"exp-tail": func() int64 { return int64(1000 * (1 + rng.ExpFloat64()*50)) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 500_000 + rng.Int63n(1000)
			}
			return 2_000 + rng.Int63n(100)
		},
	}
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	for name, draw := range distributions {
		h := &Hist{}
		samples := make([]int64, 0, 20_000)
		for i := 0; i < 20_000; i++ {
			v := draw()
			h.Record(v)
			samples = append(samples, v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		hs := h.Snapshot()
		if hs.Count != int64(len(samples)) {
			t.Fatalf("%s: count %d, want %d", name, hs.Count, len(samples))
		}
		if hs.Max != samples[len(samples)-1] {
			t.Fatalf("%s: max %d, want %d", name, hs.Max, samples[len(samples)-1])
		}
		for _, q := range quantiles {
			got := hs.Quantile(q)
			exact := exactQuantile(samples, q)
			if got < exact {
				t.Fatalf("%s: q%.3f = %d undershoots exact %d", name, q, got, exact)
			}
			if limit := exact + exact/histSubBuckets + 1; got > limit {
				t.Fatalf("%s: q%.3f = %d exceeds error bound %d (exact %d)", name, q, got, limit, exact)
			}
		}
		if hs.Quantile(1) != hs.Max {
			t.Fatalf("%s: q1 = %d, want exact max %d", name, hs.Quantile(1), hs.Max)
		}
	}
}

// TestHistMergeEqualsConcat: merging two histograms must be
// indistinguishable from recording both sample streams into one.
func TestHistMergeEqualsConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, concat := &Hist{}, &Hist{}, &Hist{}
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		a.Record(v)
		concat.Record(v)
	}
	for i := 0; i < 3000; i++ {
		v := rng.Int63n(1 << 10)
		b.Record(v)
		concat.Record(v)
	}
	a.Merge(b)
	sa, sc := a.Snapshot(), concat.Snapshot()
	if sa.Count != sc.Count || sa.Sum != sc.Sum || sa.Max != sc.Max {
		t.Fatalf("merge summary differs: merged {n=%d sum=%d max=%d}, concat {n=%d sum=%d max=%d}",
			sa.Count, sa.Sum, sa.Max, sc.Count, sc.Sum, sc.Max)
	}
	for i := range sa.Counts {
		if sa.Counts[i] != sc.Counts[i] {
			t.Fatalf("bucket %d differs: merged %d, concat %d", i, sa.Counts[i], sc.Counts[i])
		}
	}
}

// TestHistNilAndClamp covers the degenerate inputs the record path must
// absorb: nil receivers and negative samples.
func TestHistNilAndClamp(t *testing.T) {
	var h *Hist
	h.Record(100)
	h.Merge(&Hist{})
	(&Hist{}).Merge(h)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil hist not inert")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Counts != nil {
		t.Fatalf("nil hist snapshot not zero: %+v", s)
	}

	g := &Hist{}
	g.Record(-12345)
	if g.Count() != 1 || g.Quantile(1) != 0 {
		t.Fatalf("negative sample not clamped to 0: count=%d max=%d", g.Count(), g.Quantile(1))
	}
}

// TestCumulativeLEExactAtExportBounds: the /metrics bucket bounds coincide
// with internal bucket uppers, so the cumulative counts there are exact,
// not approximations.
func TestCumulativeLEExactAtExportBounds(t *testing.T) {
	h := &Hist{}
	for _, b := range histExportBounds {
		h.Record(b)     // lands exactly at the boundary: counts as <= b
		h.Record(b + 1) // first value of the next bucket: must not
	}
	hs := h.Snapshot()
	want := int64(0)
	for _, b := range histExportBounds {
		want++ // the sample at the boundary itself
		if got := hs.CumulativeLE(b); got != want {
			t.Fatalf("CumulativeLE(%d) = %d, want %d", b, got, want)
		}
		want++ // b+1 joins the population below the next boundary
	}
}

// TestClassOf pins the priority → class mapping (normal traffic accounts
// as TC: it shares the batched execution path).
func TestClassOf(t *testing.T) {
	if ClassOf(1) != ClassLS || ClassOf(0) != ClassTC || ClassOf(2) != ClassTC {
		t.Fatalf("ClassOf mapping wrong: ls=%v normal=%v tc=%v", ClassOf(1), ClassOf(0), ClassOf(2))
	}
	if ClassLS.String() != "ls" || ClassTC.String() != "tc" {
		t.Fatalf("class labels wrong: %q %q", ClassLS.String(), ClassTC.String())
	}
}
