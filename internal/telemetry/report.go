package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"

	"nvmeopf/internal/proto"
)

// Offline analysis over correlated timelines: the engine behind the
// opf-trace CLI. Everything here is deterministic for a given input so
// reports can be golden-tested (under the simulator's virtual clock even
// the durations are reproducible bit-for-bit).

// Span names, in telescoping order. Adjacent spans share endpoints, so
// for a fully observed request the durations sum exactly to the
// end-to-end latency — the property the golden test asserts.
const (
	SpanXfer    = "xfer"    // submit → arrive (wire + handshake offset)
	SpanQueue   = "queue"   // arrive → drain-start (TC queue wait)
	SpanService = "service" // drain-start (or arrive) → device-complete
	SpanNotify  = "notify"  // device-complete → coalesced-notify
	SpanReturn  = "return"  // last target stage → complete (wire + replay)
)

// SpanOrder is the canonical presentation order.
var SpanOrder = []string{SpanXfer, SpanQueue, SpanService, SpanNotify, SpanReturn}

// Breakdown splits a timeline into named spans. Absent stages collapse
// their span into the neighbors (e.g. an LS request has no queue/notify
// span), preserving the telescoping-sum property for whatever stages were
// observed.
func Breakdown(tl *Timeline) map[string]int64 {
	out := map[string]int64{}
	submit, okSubmit := tl.TS(StageSubmit)
	arrive, okArrive := tl.TS(StageArrive)
	drain, okDrain := tl.TS(StageDrainStart)
	device, okDevice := tl.TS(StageDeviceComplete)
	notify, okNotify := tl.TS(StageCoalescedNotify)
	complete, okComplete := tl.TS(StageComplete)

	cursor, okCursor := submit, okSubmit
	step := func(name string, ts int64, ok bool) {
		if !ok {
			return
		}
		if okCursor {
			out[name] = ts - cursor
		}
		cursor, okCursor = ts, true
	}
	step(SpanXfer, arrive, okArrive)
	step(SpanQueue, drain, okDrain)
	step(SpanService, device, okDevice)
	step(SpanNotify, notify, okNotify)
	step(SpanReturn, complete, okComplete)
	return out
}

// Anomaly is one detected (or dump-carried) issue.
type Anomaly struct {
	Kind   string // "drain-stall" | "hol-blocking" | "incomplete"
	Tenant uint16
	CID    uint16
	Epoch  int
	// Detail is a one-line human explanation with the numbers inline.
	Detail string
}

// AnalyzeOptions tunes the detectors.
type AnalyzeOptions struct {
	// StallThreshold flags queue spans longer than this (ns). 0 disables
	// the recomputed detector (dump-carried snapshots still surface).
	StallThreshold int64
	// HoLFactor flags an LS request whose service span exceeds this
	// multiple of the LS median while a TC drain window of another tenant
	// overlaps it (default 4).
	HoLFactor float64
	// Top bounds the slowest-requests table (default 5).
	Top int
}

// TenantStats is one row of the per-tenant percentile table.
type TenantStats struct {
	Tenant uint16
	Class  Class
	Count  int
	P50    int64
	P95    int64
	P99    int64
	Max    int64
	// SpanMean holds the mean duration per span name.
	SpanMean map[string]int64
}

// Report is the analyzed result.
type Report struct {
	Corr       *Correlation
	Submitted  int
	Complete   int
	Incomplete int
	Stats      []TenantStats // tenant-major, LS before TC
	Slowest    []*Timeline
	Anomalies  []Anomaly
}

// ReconstructionRatio is complete/submitted (1 when nothing submitted).
func (r *Report) ReconstructionRatio() float64 {
	if r.Submitted == 0 {
		return 1
	}
	return float64(r.Complete) / float64(r.Submitted)
}

func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Analyze runs the detectors and aggregations over a correlation.
func Analyze(c *Correlation, opts AnalyzeOptions) *Report {
	if opts.HoLFactor <= 0 {
		opts.HoLFactor = 4
	}
	if opts.Top <= 0 {
		opts.Top = 5
	}
	r := &Report{Corr: c, Submitted: c.Submitted}

	type bucket struct {
		lats  []int64
		spans map[string]int64
		n     int
	}
	type tenantClassKey struct {
		tenant uint16
		class  uint8
	}
	buckets := map[tenantClassKey]*bucket{} // [tenant, class]
	var withE2E []*Timeline

	// Drain windows per tenant (for the HoL detector): intervals from
	// drain-start to coalesced-notify observed on TC timelines.
	type window struct{ start, end int64 }
	drainWin := map[uint16][]window{}

	for i := range c.Timelines {
		tl := &c.Timelines[i]
		cls := ClassOf(proto.Priority(tl.Prio))
		if !tl.Complete(c.TwoSided) || !tl.Monotonic(c.Tolerance) {
			r.Incomplete++
			r.Anomalies = append(r.Anomalies, Anomaly{
				Kind: "incomplete", Tenant: tl.Tenant, CID: tl.CID, Epoch: tl.Epoch,
				Detail: fmt.Sprintf("tenant=%d cid=%d epoch=%d: missing or non-monotonic stages (%d points)",
					tl.Tenant, tl.CID, tl.Epoch, len(tl.Points)),
			})
		} else {
			r.Complete++
		}
		bd := Breakdown(tl)
		key := tenantClassKey{tl.Tenant, uint8(cls)}
		b := buckets[key]
		if b == nil {
			b = &bucket{spans: map[string]int64{}}
			buckets[key] = b
		}
		if e2e, ok := tl.E2E(); ok {
			b.lats = append(b.lats, e2e)
			withE2E = append(withE2E, tl)
		}
		b.n++
		for _, name := range SpanOrder {
			b.spans[name] += bd[name]
		}
		if qs, ok := tl.TS(StageDrainStart); ok {
			if ns, ok2 := tl.TS(StageCoalescedNotify); ok2 {
				drainWin[tl.Tenant] = append(drainWin[tl.Tenant], window{qs, ns})
			}
			if opts.StallThreshold > 0 {
				if arr, okA := tl.TS(StageArrive); okA && qs-arr > opts.StallThreshold {
					r.Anomalies = append(r.Anomalies, Anomaly{
						Kind: "drain-stall", Tenant: tl.Tenant, CID: tl.CID, Epoch: tl.Epoch,
						Detail: fmt.Sprintf("tenant=%d cid=%d epoch=%d: queued %dns before drain (threshold %dns)",
							tl.Tenant, tl.CID, tl.Epoch, qs-arr, opts.StallThreshold),
					})
				}
			}
		}
	}

	// Dump-carried snapshots become anomalies verbatim.
	for _, s := range c.Anomalies {
		r.Anomalies = append(r.Anomalies, Anomaly{
			Kind: s.Kind, Tenant: s.Tenant,
			Detail: fmt.Sprintf("tenant=%d: recorder snapshot (%s), queue age %dns, %d events captured",
				s.Tenant, s.Kind, s.AgeNS, len(s.Events)),
		})
	}

	// HoL detector: LS service spans stretched under another tenant's
	// open drain window.
	var lsService []int64
	for i := range c.Timelines {
		tl := &c.Timelines[i]
		if !proto.Priority(tl.Prio).LatencySensitive() {
			continue
		}
		if d := Breakdown(tl)[SpanService]; d > 0 {
			lsService = append(lsService, d)
		}
	}
	if len(lsService) > 0 {
		sort.Slice(lsService, func(i, j int) bool { return lsService[i] < lsService[j] })
		median := exactQuantile(lsService, 0.5)
		limit := int64(float64(median) * opts.HoLFactor)
		for i := range c.Timelines {
			tl := &c.Timelines[i]
			if !proto.Priority(tl.Prio).LatencySensitive() {
				continue
			}
			svc := Breakdown(tl)[SpanService]
			if svc <= limit || limit == 0 {
				continue
			}
			arr, okA := tl.TS(StageArrive)
			dev, okD := tl.TS(StageDeviceComplete)
			if !okA || !okD {
				continue
			}
			// One anomaly per blocked request, however many windows of
			// however many tenants its service time straddled. Tenants are
			// scanned in order so the named blocker is deterministic.
			flag := func() (uint16, bool) {
				tenants := make([]int, 0, len(drainWin))
				for tenant := range drainWin {
					tenants = append(tenants, int(tenant))
				}
				sort.Ints(tenants)
				for _, ti := range tenants {
					tenant := uint16(ti)
					wins := drainWin[tenant]
					if tenant == tl.Tenant {
						continue
					}
					for _, w := range wins {
						if arr < w.end && dev > w.start { // overlap
							return tenant, true
						}
					}
				}
				return 0, false
			}
			if tenant, blocked := flag(); blocked {
				r.Anomalies = append(r.Anomalies, Anomaly{
					Kind: "hol-blocking", Tenant: tl.Tenant, CID: tl.CID, Epoch: tl.Epoch,
					Detail: fmt.Sprintf("tenant=%d cid=%d epoch=%d: LS service %dns (median %dns) behind tenant %d drain window",
						tl.Tenant, tl.CID, tl.Epoch, svc, median, tenant),
				})
			}
		}
	}

	// Percentile tables.
	var keys []tenantClassKey
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].class < keys[j].class
	})
	for _, k := range keys {
		b := buckets[k]
		sort.Slice(b.lats, func(i, j int) bool { return b.lats[i] < b.lats[j] })
		ts := TenantStats{
			Tenant: k.tenant, Class: Class(k.class), Count: b.n,
			P50:      exactQuantile(b.lats, 0.50),
			P95:      exactQuantile(b.lats, 0.95),
			P99:      exactQuantile(b.lats, 0.99),
			SpanMean: map[string]int64{},
		}
		if n := len(b.lats); n > 0 {
			ts.Max = b.lats[n-1]
		}
		for _, name := range SpanOrder {
			if b.n > 0 {
				ts.SpanMean[name] = b.spans[name] / int64(b.n)
			}
		}
		r.Stats = append(r.Stats, ts)
	}

	// Slowest requests.
	sort.SliceStable(withE2E, func(i, j int) bool {
		a, _ := withE2E[i].E2E()
		b, _ := withE2E[j].E2E()
		if a != b {
			return a > b
		}
		if withE2E[i].Tenant != withE2E[j].Tenant {
			return withE2E[i].Tenant < withE2E[j].Tenant
		}
		return withE2E[i].CID < withE2E[j].CID
	})
	if len(withE2E) > opts.Top {
		withE2E = withE2E[:opts.Top]
	}
	r.Slowest = withE2E

	// Deterministic anomaly order.
	sort.SliceStable(r.Anomalies, func(i, j int) bool {
		a, b := r.Anomalies[i], r.Anomalies[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.CID != b.CID {
			return a.CID < b.CID
		}
		return a.Epoch < b.Epoch
	})
	return r
}

// WriteText renders the report for terminals (and the golden test).
// Timestamps are printed relative to the earliest event so wall-clock
// dumps normalize; durations print as-is.
func (r *Report) WriteText(w io.Writer) error {
	sides := "host"
	if r.Corr.TwoSided {
		sides = "host+target"
	} else if len(r.Corr.Timelines) > 0 && !r.Corr.Timelines[0].Has(StageSubmit) {
		sides = "target"
	}
	var err error
	p := func(format string, a ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, a...)
		}
	}
	p("== opf-trace report ==\n")
	p("dumps: %s  clock-offset=%dns  tolerance=%dns\n", sides, r.Corr.Offset, r.Corr.Tolerance)
	p("requests: %d submitted, %d reconstructed (%.1f%%), %d incomplete\n\n",
		r.Submitted, r.Complete, 100*r.ReconstructionRatio(), r.Incomplete)

	p("-- per-tenant end-to-end latency (ns) --\n")
	p("%6s %5s %6s %10s %10s %10s %10s\n", "tenant", "class", "count", "p50", "p95", "p99", "max")
	for _, s := range r.Stats {
		p("%6d %5s %6d %10d %10d %10d %10d\n", s.Tenant, s.Class, s.Count, s.P50, s.P95, s.P99, s.Max)
	}
	p("\n-- per-tenant mean stage durations (ns) --\n")
	p("%6s %5s", "tenant", "class")
	for _, name := range SpanOrder {
		p(" %9s", name)
	}
	p("\n")
	for _, s := range r.Stats {
		p("%6d %5s", s.Tenant, s.Class)
		for _, name := range SpanOrder {
			p(" %9d", s.SpanMean[name])
		}
		p("\n")
	}

	if len(r.Slowest) > 0 {
		p("\n-- slowest requests --\n")
		p("%6s %5s %5s %10s", "tenant", "cid", "epoch", "e2e")
		for _, name := range SpanOrder {
			p(" %9s", name)
		}
		p("\n")
		for _, tl := range r.Slowest {
			e2e, _ := tl.E2E()
			bd := Breakdown(tl)
			p("%6d %5d %5d %10d", tl.Tenant, tl.CID, tl.Epoch, e2e)
			for _, name := range SpanOrder {
				p(" %9d", bd[name])
			}
			p("\n")
		}
	}

	p("\n-- anomalies --\n")
	if len(r.Anomalies) == 0 {
		p("none detected\n")
	}
	for _, a := range r.Anomalies {
		p("[%s] %s\n", a.Kind, a.Detail)
	}
	return err
}
