package telemetry

import (
	"sync"
	"testing"

	"nvmeopf/internal/proto"
)

// TestRegistryConcurrentStress hammers every record path from many
// goroutines while readers scrape continuously. Run with -race (the CI
// race job covers this package): the registry must be completely
// lock-free-safe on the record path and consistent on the read path.
func TestRegistryConcurrentStress(t *testing.T) {
	r := New()
	const (
		writers = 16
		perG    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrapers: exercise every snapshot path concurrently with writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Tenants()
				_ = r.WindowLog()
				_ = r.Global()
				_ = r.PrometheusText()
			}
		}()
	}

	var writerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			tid := proto.TenantID(g % 8)
			for i := 0; i < perG; i++ {
				r.IncSubmitted(tid, 4096)
				r.IncTCQueued(tid)
				r.SetQueueDepth(tid, i%64)
				r.IncCompleted(tid, proto.Priority(1+g%2), int64(i), 4096, i%100 != 0)
				r.IncSuppressed(tid)
				r.IncResponse(tid, i%16 == 0)
				r.ObserveDrain(tid, 16, i%2 == 0)
				r.IncConnection()
				if i%100 == 0 {
					r.RecordWindowDecision(WindowDecision{Tenant: tid, Window: i % 64, Source: SourceDynamic})
				}
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	var submitted, completed, errors int64
	for _, s := range r.Tenants() {
		submitted += s.Submitted
		completed += s.Completed
		errors += s.Errors
	}
	const total = writers * perG
	if submitted != total || completed != total {
		t.Fatalf("lost updates: submitted=%d completed=%d, want %d", submitted, completed, total)
	}
	if errors != writers*(perG/100) {
		t.Fatalf("errors = %d, want %d", errors, writers*(perG/100))
	}
	if got := r.Global().Connections; got != total {
		t.Fatalf("connections = %d, want %d", got, total)
	}
	if len(r.WindowLog()) != windowLogCap {
		t.Fatalf("window log = %d entries, want full ring %d", len(r.WindowLog()), windowLogCap)
	}
}
