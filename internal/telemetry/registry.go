package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"nvmeopf/internal/proto"
)

// MaxTenants is the tenant ID space (proto.TenantID is uint16). Slots are
// organised as lazily installed fixed-size pages so the record path stays
// a fixed-offset atomic add with no map lookup and no lock, while an idle
// registry does not pay for 65536 pre-allocated slots.
const MaxTenants = 65536

// tenantPageSize is the slot count per lazily allocated page; pages are
// CAS-installed once on a tenant's first touch and never freed.
const (
	tenantPageSize = 256
	numTenantPages = MaxTenants / tenantPageSize
)

// tenantPage is one contiguous block of tenant slots.
type tenantPage [tenantPageSize]tenantSlot

// windowLogCap bounds the window-decision log (cold path, mutex-guarded).
const windowLogCap = 128

// sloCheckpointCap bounds each tenant's SLO checkpoint ring. Checkpoints
// are taken once per Tick (scrape), so 256 of them cover hours of history
// at typical scrape intervals.
const sloCheckpointCap = 256

// tenantSlot holds one tenant's instruments. Counters only ever grow;
// gauges are last-value.
type tenantSlot struct {
	// touched is set on the first write so the exporter can skip the
	// never-used slots without comparing every field.
	touched atomic.Bool
	class   atomic.Int32 // proto.Priority of the connection (gauge)

	submitted    atomic.Int64
	completed    atomic.Int64
	errors       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	lsBypassed   atomic.Int64
	tcQueued     atomic.Int64
	queueDepth   atomic.Int64 // gauge: pending TC requests at the target PM
	window       atomic.Int64 // gauge: drain window (host: chosen; target: observed)
	drains       atomic.Int64
	forcedDrains atomic.Int64
	suppressed   atomic.Int64 // completions absorbed by coalescing
	responses    atomic.Int64 // wire responses emitted for this tenant
	coalesced    atomic.Int64 // of which coalesced

	busyRejections atomic.Int64 // admissions refused with StatusBusy
	replayed       atomic.Int64 // requests resubmitted by recovery

	// Scavenger (best-effort) class instruments. Exported in their own
	// gated block so deployments without scavenger traffic keep their
	// exposition byte-identical.
	scavQueued     atomic.Int64 // scavenger requests absorbed into queues
	scavQueueDepth atomic.Int64 // gauge: parked scavenger requests
	scavDrains     atomic.Int64 // scavenger windows released
	scavAgedDrains atomic.Int64 // of which forced by the aging bound

	// hist holds the per-class latency histograms. Installed lazily (one
	// 15 KiB Hist per active tenant-class, CAS once) so an idle registry
	// stays small; after installation Record is allocation-free.
	hist [numClasses]atomic.Pointer[Hist]

	// SLO instruments. objective 0 means "no per-tenant SLO declared"
	// (the registry default, if any, applies); budgetPPM is the error
	// budget — violations allowed per million completions.
	sloObjective atomic.Int64
	sloBudgetPPM atomic.Int64
	sloGood      atomic.Int64
	sloBad       atomic.Int64

	// Host-reported end-to-end view, merged from TelemetryUpdate PDUs
	// (see e2e.go). The histograms share the service-side geometry, so
	// host deltas add in exactly.
	e2eHist       [numClasses]atomic.Pointer[Hist]
	e2eUpdates    atomic.Int64 // TelemetryUpdates merged for this tenant
	e2eQueueDepth atomic.Int64 // gauge: host outstanding at the last update
	e2eBusy       atomic.Int64 // host-observed StatusBusy completions
	e2eRetries    atomic.Int64 // host-side resubmissions

	// Periodic clock re-estimation (host side): how many keep-alive
	// round trips refreshed the offset, and the last refresh's delta
	// against the previous estimate.
	clockReest      atomic.Int64
	clockReestDelta atomic.Int64
}

// classHist returns the tenant's histogram for a class, installing it on
// first use.
func (s *tenantSlot) classHist(c Class) *Hist {
	if h := s.hist[c].Load(); h != nil {
		return h
	}
	h := &Hist{}
	if s.hist[c].CompareAndSwap(nil, h) {
		return h
	}
	return s.hist[c].Load()
}

// sloCheckpoint is one (time, counters) sample of a tenant's SLO
// accounting, taken by Tick; burn rates are computed from the deltas
// between the newest counters and the checkpoint closest to each window's
// left edge.
type sloCheckpoint struct {
	ts   int64
	good int64
	bad  int64
}

// Registry is the metrics store. The zero value is not used directly —
// create one with New — but a nil *Registry is a first-class value: every
// method checks the receiver and returns immediately, so components wired
// with a nil registry run un-instrumented at zero cost.
//
// Record methods are safe for concurrent use from any goroutine.
type Registry struct {
	tenants [numTenantPages]atomic.Pointer[tenantPage]

	connections     atomic.Int64
	reconnects      atomic.Int64
	transportErrors atomic.Int64
	disconnects     atomic.Int64
	teardownDrops   atomic.Int64
	shards          atomic.Int64

	// Cluster instruments (see internal/cluster): failovers counts primary
	// re-targets a host performed, staleEpochs counts cluster maps or
	// registrations rejected for carrying an epoch older than the newest
	// one seen, discoveryExpired counts TTL'd discovery registrations that
	// lapsed, clusterEpoch is the newest map epoch observed, and
	// clusterDegraded is 1 while a host is refusing writes because its
	// shard has no live replica.
	failovers       atomic.Int64
	staleEpochs     atomic.Int64
	discoveryExpire atomic.Int64
	clusterEpoch    atomic.Int64
	clusterDegraded atomic.Int64

	// Registry-wide default SLO, applied to tenants without their own.
	defObjective atomic.Int64
	defBudgetPPM atomic.Int64

	winMu  sync.Mutex
	winSeq uint64
	winLog []WindowDecision // ring of the last windowLogCap decisions
	winPos int

	sloMu     sync.Mutex
	sloChecks map[uint16][]sloCheckpoint // ring per tenant, oldest first

	// Adaptive drain-window controller state (see autotune.go).
	atMu    sync.Mutex
	atSeq   uint64
	atLog   []AutotuneDecision // ring of the last autotuneLogCap decisions
	atPos   int
	atState map[uint16]*autotuneTenant

	// clock overrides the exporter's time source (nil: wall clock).
	clock atomic.Pointer[func() int64]

	// rec is the attached flight recorder (nil: /debug/trace disabled).
	rec atomic.Pointer[Recorder]
}

// SetClock overrides the time source the HTTP exporter stamps scrapes
// with (SLO checkpoints, burn-rate edges). Simulated deployments pass
// their virtual clock; golden tests pass a fixed one. Nil restores the
// wall clock.
func (r *Registry) SetClock(fn func() int64) {
	if r == nil {
		return
	}
	if fn == nil {
		r.clock.Store(nil)
		return
	}
	r.clock.Store(&fn)
}

// now reads the registry's time source.
func (r *Registry) now() int64 {
	if r != nil {
		if p := r.clock.Load(); p != nil {
			return (*p)()
		}
	}
	return time.Now().UnixNano()
}

// New creates an enabled registry.
func New() *Registry { return &Registry{} }

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

func (r *Registry) slot(t proto.TenantID) *tenantSlot {
	pg := r.tenants[t>>8].Load()
	if pg == nil {
		fresh := new(tenantPage)
		if r.tenants[t>>8].CompareAndSwap(nil, fresh) {
			pg = fresh
		} else {
			pg = r.tenants[t>>8].Load()
		}
	}
	s := &pg[t&(tenantPageSize-1)]
	if !s.touched.Load() {
		s.touched.Store(true)
	}
	return s
}

// peek returns the tenant's slot without installing a page: nil when the
// tenant's page was never touched. Read-only accessors use it so a probe
// of an idle tenant stays allocation-free.
func (r *Registry) peek(t proto.TenantID) *tenantSlot {
	pg := r.tenants[t>>8].Load()
	if pg == nil {
		return nil
	}
	return &pg[t&(tenantPageSize-1)]
}

// eachTouched visits every tenant slot with recorded activity, in tenant
// order. Cold path (exports, snapshots, SLO ticks).
func (r *Registry) eachTouched(fn func(id int, s *tenantSlot)) {
	for p := range r.tenants {
		pg := r.tenants[p].Load()
		if pg == nil {
			continue
		}
		for i := range pg {
			s := &pg[i]
			if !s.touched.Load() {
				continue
			}
			fn(p*tenantPageSize+i, s)
		}
	}
}

// SetRecorder attaches a flight recorder so the HTTP exporter can serve
// /debug/trace dumps alongside the metrics (nil detaches).
func (r *Registry) SetRecorder(rec *Recorder) {
	if r == nil {
		return
	}
	r.rec.Store(rec)
}

// Recorder returns the attached flight recorder (nil when none).
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.rec.Load()
}

// SetClass records the tenant's connection priority class (shown in the
// /debug/tenants table).
func (r *Registry) SetClass(t proto.TenantID, p proto.Priority) {
	if r == nil {
		return
	}
	r.slot(t).class.Store(int32(p))
}

// IncSubmitted records one submitted request and the payload bytes it
// moves (write payload on submission; read payload is accounted by
// IncCompleted's byte argument).
func (r *Registry) IncSubmitted(t proto.TenantID, bytesWritten int64) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.submitted.Add(1)
	if bytesWritten > 0 {
		s.bytesWritten.Add(bytesWritten)
	}
}

// IncCompleted records one application-visible completion: the request's
// wire priority (selecting the LS or TC latency histogram), its
// end-to-end latency (clock units; <0 skips the sample), and the bytes
// read. SLO accounting compares the latency against the tenant's declared
// objective (or the registry default).
func (r *Registry) IncCompleted(t proto.TenantID, prio proto.Priority, latency int64, bytesRead int64, ok bool) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.completed.Add(1)
	if !ok {
		s.errors.Add(1)
	}
	if bytesRead > 0 {
		s.bytesRead.Add(bytesRead)
	}
	if latency >= 0 {
		s.classHist(ClassOf(prio)).Record(latency)
		obj := s.sloObjective.Load()
		if obj == 0 {
			obj = r.defObjective.Load()
		}
		if obj > 0 {
			if latency > obj {
				s.sloBad.Add(1)
			} else {
				s.sloGood.Add(1)
			}
		}
	}
}

// LatencyHist returns the tenant's histogram for a class (nil when that
// class recorded nothing yet).
func (r *Registry) LatencyHist(t proto.TenantID, c Class) *Hist {
	if r == nil || c >= numClasses {
		return nil
	}
	s := r.peek(t)
	if s == nil {
		return nil
	}
	return s.hist[c].Load()
}

// IncLSBypass records one latency-sensitive request sent straight to
// execution past the TC queues.
func (r *Registry) IncLSBypass(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).lsBypassed.Add(1)
}

// IncTCQueued records one throughput-critical request absorbed into the
// tenant's queue.
func (r *Registry) IncTCQueued(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).tcQueued.Add(1)
}

// SetQueueDepth records the tenant queue's pending request count.
func (r *Registry) SetQueueDepth(t proto.TenantID, depth int) {
	if r == nil {
		return
	}
	r.slot(t).queueDepth.Store(int64(depth))
}

// IncScavQueued records one scavenger (best-effort) request absorbed
// into the tenant's scavenger queue.
func (r *Registry) IncScavQueued(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).scavQueued.Add(1)
}

// SetScavQueueDepth records the tenant's parked scavenger request count.
func (r *Registry) SetScavQueueDepth(t proto.TenantID, depth int) {
	if r == nil {
		return
	}
	r.slot(t).scavQueueDepth.Store(int64(depth))
}

// ObserveScavDrain records one scavenger window released for execution
// and whether the aging bound (rather than leftover capacity) forced it.
// The batch size is deliberately not stored in the drain-window gauge:
// that gauge tracks the foreground TC window, and scavenger batches are
// opportunistic, not tuned.
func (r *Registry) ObserveScavDrain(t proto.TenantID, aged bool) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.scavDrains.Add(1)
	if aged {
		s.scavAgedDrains.Add(1)
	}
}

// SetWindow records the tenant's drain window size (host side: the PM's
// current choice; target side: the batch size observed at drain).
func (r *Registry) SetWindow(t proto.TenantID, w int) {
	if r == nil {
		return
	}
	r.slot(t).window.Store(int64(w))
}

// ObserveDrain records one window released for execution at the target:
// its size (also stored in the window gauge) and whether the safety valve
// (forced) rather than a draining flag triggered it.
func (r *Registry) ObserveDrain(t proto.TenantID, window int, forced bool) {
	if r == nil {
		return
	}
	s := r.slot(t)
	if forced {
		s.forcedDrains.Add(1)
	} else {
		s.drains.Add(1)
	}
	s.window.Store(int64(window))
}

// IncSuppressed records one device completion absorbed by coalescing (no
// wire response of its own).
func (r *Registry) IncSuppressed(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).suppressed.Add(1)
}

// IncResponse records one wire response emitted for the tenant.
func (r *Registry) IncResponse(t proto.TenantID, coalesced bool) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.responses.Add(1)
	if coalesced {
		s.coalesced.Add(1)
	}
}

// IncBusyRejection records one request refused admission with StatusBusy
// (the tenant or the target globally was past its pending-request cap).
func (r *Registry) IncBusyRejection(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).busyRejections.Add(1)
}

// IncReplayed records one request a recovering host resubmitted after a
// connection died or a StatusBusy pushback.
func (r *Registry) IncReplayed(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).replayed.Add(1)
}

// IncConnection counts one accepted/established connection.
func (r *Registry) IncConnection() {
	if r == nil {
		return
	}
	r.connections.Add(1)
}

// IncReconnect counts one re-established connection (e.g. a dial retried
// through discovery after a transport failure).
func (r *Registry) IncReconnect() {
	if r == nil {
		return
	}
	r.reconnects.Add(1)
}

// IncTransportError counts one transport-level failure (broken socket,
// codec error, handshake failure).
func (r *Registry) IncTransportError() {
	if r == nil {
		return
	}
	r.transportErrors.Add(1)
}

// SetShards records how many reactor shards the attached target runs
// (exported as the nvmeopf_target_shards gauge; 0 — never set — omits
// it).
func (r *Registry) SetShards(n int) {
	if r == nil {
		return
	}
	r.shards.Store(int64(n))
}

// Shards returns the recorded reactor shard count (0 when unset).
func (r *Registry) Shards() int {
	if r == nil {
		return 0
	}
	return int(r.shards.Load())
}

// IncDisconnect counts one session teardown: an initiator connection that
// died (or closed) and had its target-side session reclaimed.
func (r *Registry) IncDisconnect() {
	if r == nil {
		return
	}
	r.disconnects.Add(1)
}

// AddTeardownDrops counts queued requests discarded because their
// tenant's session was torn down before they executed.
func (r *Registry) AddTeardownDrops(n int64) {
	if r == nil || n == 0 {
		return
	}
	r.teardownDrops.Add(n)
}

// IncFailover counts one primary re-target: a cluster client moved a
// shard's traffic to the promoted replica after the old primary died.
func (r *Registry) IncFailover() {
	if r == nil {
		return
	}
	r.failovers.Add(1)
}

// IncStaleEpoch counts one split-brain rejection: a cluster map or a
// discovery registration refused because its epoch was older than the
// newest one already seen.
func (r *Registry) IncStaleEpoch() {
	if r == nil {
		return
	}
	r.staleEpochs.Add(1)
}

// IncDiscoveryExpired counts one discovery registration whose TTL lapsed
// without a keep-alive (exported as nvmeopf_discovery_expired_total).
func (r *Registry) IncDiscoveryExpired() {
	if r == nil {
		return
	}
	r.discoveryExpire.Add(1)
}

// SetClusterEpoch records the newest cluster-map epoch observed.
func (r *Registry) SetClusterEpoch(epoch uint64) {
	if r == nil {
		return
	}
	r.clusterEpoch.Store(int64(epoch))
}

// SetClusterDegraded records whether the host is in read-only degraded
// mode (its shard has no live replica to mirror writes to).
func (r *Registry) SetClusterDegraded(degraded bool) {
	if r == nil {
		return
	}
	var v int64
	if degraded {
		v = 1
	}
	r.clusterDegraded.Store(v)
}

// SetSLO declares one tenant's latency objective: completions slower than
// objective count against an error budget of (1-target) of all requests
// (e.g. target 0.999 tolerates one violation per thousand). A zero
// objective clears the tenant's SLO.
func (r *Registry) SetSLO(t proto.TenantID, objective time.Duration, target float64) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.sloObjective.Store(int64(objective))
	s.sloBudgetPPM.Store(targetToBudgetPPM(target))
}

// SetDefaultSLO declares the objective applied to every tenant that has
// not declared its own (zero objective disables the default).
func (r *Registry) SetDefaultSLO(objective time.Duration, target float64) {
	if r == nil {
		return
	}
	r.defObjective.Store(int64(objective))
	r.defBudgetPPM.Store(targetToBudgetPPM(target))
}

// targetToBudgetPPM converts a compliance target (fraction of requests
// that must meet the objective) to an error budget in parts per million.
func targetToBudgetPPM(target float64) int64 {
	if target <= 0 || target >= 1 {
		return 1000 // default: 99.9%
	}
	ppm := int64((1 - target) * 1e6)
	if ppm < 1 {
		ppm = 1
	}
	return ppm
}

// TickSLO snapshots every SLO-tracked tenant's good/bad counters at the
// given wall (or virtual) time. The exporter calls it once per scrape;
// burn rates are computed from the retained checkpoints. Cold path.
func (r *Registry) TickSLO(now int64) {
	if r == nil {
		return
	}
	r.sloMu.Lock()
	defer r.sloMu.Unlock()
	if r.sloChecks == nil {
		r.sloChecks = make(map[uint16][]sloCheckpoint)
	}
	r.eachTouched(func(i int, s *tenantSlot) {
		if s.sloObjective.Load() == 0 && r.defObjective.Load() == 0 {
			return
		}
		cp := sloCheckpoint{ts: now, good: s.sloGood.Load(), bad: s.sloBad.Load()}
		ring := r.sloChecks[uint16(i)]
		if n := len(ring); n > 0 && ring[n-1].ts == now {
			ring[n-1] = cp
		} else if n >= sloCheckpointCap {
			copy(ring, ring[1:])
			ring[n-1] = cp
		} else {
			ring = append(ring, cp)
		}
		r.sloChecks[uint16(i)] = ring
	})
}

// SLOBurnWindows are the trailing windows burn rates are reported over,
// newest-first the way multi-window burn-rate alerting consumes them.
var SLOBurnWindows = []struct {
	Name string
	D    time.Duration
}{
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// SLOSnapshot is one tenant's SLO accounting at a point in time. A burn
// rate of 1.0 means the error budget is being consumed exactly as fast as
// it accrues; >1 means the SLO will be violated if sustained.
type SLOSnapshot struct {
	Tenant      uint16  `json:"tenant"`
	ObjectiveNS int64   `json:"objective_ns"`
	BudgetPPM   int64   `json:"budget_ppm"`
	Good        int64   `json:"good"`
	Violations  int64   `json:"violations"`
	Compliance  float64 `json:"compliance"` // lifetime fraction within objective
	// BurnRate per window in SLOBurnWindows order; -1 when the window has
	// no delta yet (no checkpoint old enough, or no traffic).
	BurnRate []float64 `json:"burn_rate"`
	// BurnTotal is the lifetime burn rate.
	BurnTotal float64 `json:"burn_total"`
}

// SLOs reports every SLO-tracked tenant's state as of now, using the
// checkpoints TickSLO retained for the windowed burn rates.
func (r *Registry) SLOs(now int64) []SLOSnapshot {
	if r == nil {
		return nil
	}
	var out []SLOSnapshot
	r.sloMu.Lock()
	defer r.sloMu.Unlock()
	r.eachTouched(func(i int, s *tenantSlot) {
		obj := s.sloObjective.Load()
		ppm := s.sloBudgetPPM.Load()
		if obj == 0 {
			obj = r.defObjective.Load()
			ppm = r.defBudgetPPM.Load()
		}
		if obj == 0 {
			return
		}
		good, bad := s.sloGood.Load(), s.sloBad.Load()
		snap := SLOSnapshot{
			Tenant:      uint16(i),
			ObjectiveNS: obj,
			BudgetPPM:   ppm,
			Good:        good,
			Violations:  bad,
			BurnRate:    make([]float64, len(SLOBurnWindows)),
			BurnTotal:   burnRate(good, bad, ppm),
		}
		if total := good + bad; total > 0 {
			snap.Compliance = float64(good) / float64(total)
		}
		ring := r.sloChecks[uint16(i)]
		for w, win := range SLOBurnWindows {
			snap.BurnRate[w] = -1
			edge := now - int64(win.D)
			// Oldest checkpoint not older than the window's left edge.
			for _, cp := range ring {
				if cp.ts < edge {
					continue
				}
				if cp.ts >= now {
					break
				}
				snap.BurnRate[w] = burnRate(good-cp.good, bad-cp.bad, ppm)
				break
			}
		}
		out = append(out, snap)
	})
	return out
}

// burnRate is the violation fraction over the error budget fraction.
func burnRate(good, bad, budgetPPM int64) float64 {
	total := good + bad
	if total <= 0 || budgetPPM <= 0 {
		return -1
	}
	violFrac := float64(bad) / float64(total)
	return violFrac / (float64(budgetPPM) / 1e6)
}

// WindowSource etc. live in telemetry.go; the decision log below.

// RecordWindowDecision appends one optimizer decision to the /debug/windows
// log. Cold path: once per drain epoch, never per request.
func (r *Registry) RecordWindowDecision(d WindowDecision) {
	if r == nil {
		return
	}
	r.winMu.Lock()
	r.winSeq++
	d.Seq = r.winSeq
	if len(r.winLog) < windowLogCap {
		r.winLog = append(r.winLog, d)
	} else {
		r.winLog[r.winPos] = d
		r.winPos = (r.winPos + 1) % windowLogCap
	}
	r.winMu.Unlock()
	r.SetWindow(d.Tenant, d.Window)
}

// WindowLog returns the retained decisions, oldest first.
func (r *Registry) WindowLog() []WindowDecision {
	if r == nil {
		return nil
	}
	r.winMu.Lock()
	defer r.winMu.Unlock()
	out := make([]WindowDecision, 0, len(r.winLog))
	out = append(out, r.winLog[r.winPos:]...)
	out = append(out, r.winLog[:r.winPos]...)
	return out
}

// TenantSnapshot is a point-in-time copy of one tenant's instruments.
type TenantSnapshot struct {
	Tenant       uint16 `json:"tenant"`
	Class        string `json:"class"`
	Submitted    int64  `json:"submitted"`
	Completed    int64  `json:"completed"`
	Errors       int64  `json:"errors"`
	BytesRead    int64  `json:"bytes_read"`
	BytesWritten int64  `json:"bytes_written"`
	LSBypassed   int64  `json:"ls_bypassed"`
	TCQueued     int64  `json:"tc_queued"`
	QueueDepth   int64  `json:"queue_depth"`
	Window       int64  `json:"window"`
	Drains       int64  `json:"drains"`
	ForcedDrains int64  `json:"forced_drains"`
	Suppressed   int64  `json:"suppressed"`
	Responses    int64  `json:"responses"`
	Coalesced    int64  `json:"coalesced"`
	// BusyRejections counts requests refused admission with StatusBusy;
	// Replayed counts requests the host's recovery layer resubmitted.
	BusyRejections int64 `json:"busy_rejections"`
	Replayed       int64 `json:"replayed"`
	// Scavenger (best-effort) class instruments; all zero for tenants
	// that never submitted scavenger traffic (omitted from JSON then).
	ScavQueued     int64 `json:"scav_queued,omitempty"`
	ScavQueueDepth int64 `json:"scav_queue_depth,omitempty"`
	ScavDrains     int64 `json:"scav_drains,omitempty"`
	ScavAgedDrains int64 `json:"scav_aged_drains,omitempty"`
	// CoalescingRatio is completions per wire response — the live form of
	// the paper's Fig. 6(c) metric; > 1 means coalescing is paying off.
	CoalescingRatio float64 `json:"coalescing_ratio"`
	// Latency quantiles merged across both class histograms (per-class
	// detail is on /metrics and in LatencyHist).
	LatencyP50     int64 `json:"latency_p50_ns"`
	LatencyP95     int64 `json:"latency_p95_ns"`
	LatencyP99     int64 `json:"latency_p99_ns"`
	LatencyP999    int64 `json:"latency_p999_ns"`
	LatencyMax     int64 `json:"latency_max_ns"`
	LatencySamples int64 `json:"latency_samples"`
}

// GlobalSnapshot is a point-in-time copy of the registry-wide instruments.
type GlobalSnapshot struct {
	Connections     int64 `json:"connections"`
	Reconnects      int64 `json:"reconnects"`
	TransportErrors int64 `json:"transport_errors"`
	Disconnects     int64 `json:"disconnects"`
	TeardownDrops   int64 `json:"teardown_drops"`
	// Cluster instruments; all zero outside cluster deployments.
	Failovers        int64 `json:"failovers"`
	StaleEpochs      int64 `json:"stale_epochs"`
	DiscoveryExpired int64 `json:"discovery_expired"`
	ClusterEpoch     int64 `json:"cluster_epoch"`
	ClusterDegraded  int64 `json:"cluster_degraded"`
}

// Global snapshots the registry-wide counters.
func (r *Registry) Global() GlobalSnapshot {
	if r == nil {
		return GlobalSnapshot{}
	}
	return GlobalSnapshot{
		Connections:      r.connections.Load(),
		Reconnects:       r.reconnects.Load(),
		TransportErrors:  r.transportErrors.Load(),
		Disconnects:      r.disconnects.Load(),
		TeardownDrops:    r.teardownDrops.Load(),
		Failovers:        r.failovers.Load(),
		StaleEpochs:      r.staleEpochs.Load(),
		DiscoveryExpired: r.discoveryExpire.Load(),
		ClusterEpoch:     r.clusterEpoch.Load(),
		ClusterDegraded:  r.clusterDegraded.Load(),
	}
}

// Tenants snapshots every tenant with recorded activity, in tenant order.
func (r *Registry) Tenants() []TenantSnapshot {
	if r == nil {
		return nil
	}
	var out []TenantSnapshot
	r.eachTouched(func(i int, s *tenantSlot) {
		snap := TenantSnapshot{
			Tenant:       uint16(i),
			Class:        proto.Priority(s.class.Load()).String(),
			Submitted:    s.submitted.Load(),
			Completed:    s.completed.Load(),
			Errors:       s.errors.Load(),
			BytesRead:    s.bytesRead.Load(),
			BytesWritten: s.bytesWritten.Load(),
			LSBypassed:   s.lsBypassed.Load(),
			TCQueued:     s.tcQueued.Load(),
			QueueDepth:   s.queueDepth.Load(),
			Window:       s.window.Load(),
			Drains:       s.drains.Load(),
			ForcedDrains: s.forcedDrains.Load(),
			Suppressed:   s.suppressed.Load(),
			Responses:    s.responses.Load(),
			Coalesced:    s.coalesced.Load(),

			BusyRejections: s.busyRejections.Load(),
			Replayed:       s.replayed.Load(),

			ScavQueued:     s.scavQueued.Load(),
			ScavQueueDepth: s.scavQueueDepth.Load(),
			ScavDrains:     s.scavDrains.Load(),
			ScavAgedDrains: s.scavAgedDrains.Load(),
		}
		if snap.Responses > 0 {
			snap.CoalescingRatio = float64(snap.Completed) / float64(snap.Responses)
		}
		merged := Hist{}
		for c := Class(0); c < numClasses; c++ {
			merged.Merge(s.hist[c].Load())
		}
		if hs := merged.Snapshot(); hs.Count > 0 {
			snap.LatencySamples = hs.Count
			snap.LatencyP50 = hs.Quantile(0.50)
			snap.LatencyP95 = hs.Quantile(0.95)
			snap.LatencyP99 = hs.Quantile(0.99)
			snap.LatencyP999 = hs.Quantile(0.999)
			snap.LatencyMax = hs.Max
		}
		out = append(out, snap)
	})
	return out
}
