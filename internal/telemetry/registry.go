package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"nvmeopf/internal/proto"
)

// MaxTenants is the tenant ID space (proto.TenantID is uint8). The
// registry pre-allocates one slot per possible tenant so the record path
// is a fixed-offset atomic add with no map lookup and no lock.
const MaxTenants = 256

// latRingSize is the per-tenant latency sample ring capacity. A power of
// two so the modulo is a mask. 512 samples bound the quantile error while
// keeping a full registry under 1.5 MiB.
const latRingSize = 512

// windowLogCap bounds the window-decision log (cold path, mutex-guarded).
const windowLogCap = 128

// latRing is a lock-free sampling ring: writers reserve a slot with an
// atomic increment and store the sample with an atomic write. Under
// concurrency a reader may observe a slot mid-update between two writers;
// each slot is itself atomic, so the worst case is a quantile computed
// over a mix of old and new samples — exactly what a sampling recorder
// promises, and race-free by construction.
type latRing struct {
	n       atomic.Uint64
	samples [latRingSize]atomic.Int64
}

func (r *latRing) record(v int64) {
	i := r.n.Add(1) - 1
	r.samples[i&(latRingSize-1)].Store(v)
}

// snapshot copies the valid samples.
func (r *latRing) snapshot() []int64 {
	n := r.n.Load()
	if n == 0 {
		return nil
	}
	filled := int(n)
	if filled > latRingSize {
		filled = latRingSize
	}
	out := make([]int64, filled)
	for i := 0; i < filled; i++ {
		out[i] = r.samples[i].Load()
	}
	return out
}

// tenantSlot holds one tenant's instruments. Counters only ever grow;
// gauges are last-value.
type tenantSlot struct {
	// touched is set on the first write so the exporter can skip the
	// never-used slots without comparing every field.
	touched atomic.Bool
	class   atomic.Int32 // proto.Priority of the connection (gauge)

	submitted    atomic.Int64
	completed    atomic.Int64
	errors       atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	lsBypassed   atomic.Int64
	tcQueued     atomic.Int64
	queueDepth   atomic.Int64 // gauge: pending TC requests at the target PM
	window       atomic.Int64 // gauge: drain window (host: chosen; target: observed)
	drains       atomic.Int64
	forcedDrains atomic.Int64
	suppressed   atomic.Int64 // completions absorbed by coalescing
	responses    atomic.Int64 // wire responses emitted for this tenant
	coalesced    atomic.Int64 // of which coalesced

	lat latRing
}

// Registry is the metrics store. The zero value is not used directly —
// create one with New — but a nil *Registry is a first-class value: every
// method checks the receiver and returns immediately, so components wired
// with a nil registry run un-instrumented at zero cost.
//
// Record methods are safe for concurrent use from any goroutine.
type Registry struct {
	tenants [MaxTenants]tenantSlot

	connections     atomic.Int64
	reconnects      atomic.Int64
	transportErrors atomic.Int64

	winMu  sync.Mutex
	winSeq uint64
	winLog []WindowDecision // ring of the last windowLogCap decisions
	winPos int
}

// New creates an enabled registry.
func New() *Registry { return &Registry{} }

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

func (r *Registry) slot(t proto.TenantID) *tenantSlot {
	s := &r.tenants[t]
	if !s.touched.Load() {
		s.touched.Store(true)
	}
	return s
}

// SetClass records the tenant's connection priority class (shown in the
// /debug/tenants table).
func (r *Registry) SetClass(t proto.TenantID, p proto.Priority) {
	if r == nil {
		return
	}
	r.slot(t).class.Store(int32(p))
}

// IncSubmitted records one submitted request and the payload bytes it
// moves (write payload on submission; read payload is accounted by
// IncCompleted's byte argument).
func (r *Registry) IncSubmitted(t proto.TenantID, bytesWritten int64) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.submitted.Add(1)
	if bytesWritten > 0 {
		s.bytesWritten.Add(bytesWritten)
	}
}

// IncCompleted records one application-visible completion with its
// end-to-end latency (clock units; <0 skips the sample) and the bytes
// read.
func (r *Registry) IncCompleted(t proto.TenantID, latency int64, bytesRead int64, ok bool) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.completed.Add(1)
	if !ok {
		s.errors.Add(1)
	}
	if bytesRead > 0 {
		s.bytesRead.Add(bytesRead)
	}
	if latency >= 0 {
		s.lat.record(latency)
	}
}

// IncLSBypass records one latency-sensitive request sent straight to
// execution past the TC queues.
func (r *Registry) IncLSBypass(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).lsBypassed.Add(1)
}

// IncTCQueued records one throughput-critical request absorbed into the
// tenant's queue.
func (r *Registry) IncTCQueued(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).tcQueued.Add(1)
}

// SetQueueDepth records the tenant queue's pending request count.
func (r *Registry) SetQueueDepth(t proto.TenantID, depth int) {
	if r == nil {
		return
	}
	r.slot(t).queueDepth.Store(int64(depth))
}

// SetWindow records the tenant's drain window size (host side: the PM's
// current choice; target side: the batch size observed at drain).
func (r *Registry) SetWindow(t proto.TenantID, w int) {
	if r == nil {
		return
	}
	r.slot(t).window.Store(int64(w))
}

// ObserveDrain records one window released for execution at the target:
// its size (also stored in the window gauge) and whether the safety valve
// (forced) rather than a draining flag triggered it.
func (r *Registry) ObserveDrain(t proto.TenantID, window int, forced bool) {
	if r == nil {
		return
	}
	s := r.slot(t)
	if forced {
		s.forcedDrains.Add(1)
	} else {
		s.drains.Add(1)
	}
	s.window.Store(int64(window))
}

// IncSuppressed records one device completion absorbed by coalescing (no
// wire response of its own).
func (r *Registry) IncSuppressed(t proto.TenantID) {
	if r == nil {
		return
	}
	r.slot(t).suppressed.Add(1)
}

// IncResponse records one wire response emitted for the tenant.
func (r *Registry) IncResponse(t proto.TenantID, coalesced bool) {
	if r == nil {
		return
	}
	s := r.slot(t)
	s.responses.Add(1)
	if coalesced {
		s.coalesced.Add(1)
	}
}

// IncConnection counts one accepted/established connection.
func (r *Registry) IncConnection() {
	if r == nil {
		return
	}
	r.connections.Add(1)
}

// IncReconnect counts one re-established connection (e.g. a dial retried
// through discovery after a transport failure).
func (r *Registry) IncReconnect() {
	if r == nil {
		return
	}
	r.reconnects.Add(1)
}

// IncTransportError counts one transport-level failure (broken socket,
// codec error, handshake failure).
func (r *Registry) IncTransportError() {
	if r == nil {
		return
	}
	r.transportErrors.Add(1)
}

// RecordWindowDecision appends one optimizer decision to the /debug/windows
// log. Cold path: once per drain epoch, never per request.
func (r *Registry) RecordWindowDecision(d WindowDecision) {
	if r == nil {
		return
	}
	r.winMu.Lock()
	r.winSeq++
	d.Seq = r.winSeq
	if len(r.winLog) < windowLogCap {
		r.winLog = append(r.winLog, d)
	} else {
		r.winLog[r.winPos] = d
		r.winPos = (r.winPos + 1) % windowLogCap
	}
	r.winMu.Unlock()
	r.SetWindow(d.Tenant, d.Window)
}

// WindowLog returns the retained decisions, oldest first.
func (r *Registry) WindowLog() []WindowDecision {
	if r == nil {
		return nil
	}
	r.winMu.Lock()
	defer r.winMu.Unlock()
	out := make([]WindowDecision, 0, len(r.winLog))
	out = append(out, r.winLog[r.winPos:]...)
	out = append(out, r.winLog[:r.winPos]...)
	return out
}

// TenantSnapshot is a point-in-time copy of one tenant's instruments.
type TenantSnapshot struct {
	Tenant       uint8  `json:"tenant"`
	Class        string `json:"class"`
	Submitted    int64  `json:"submitted"`
	Completed    int64  `json:"completed"`
	Errors       int64  `json:"errors"`
	BytesRead    int64  `json:"bytes_read"`
	BytesWritten int64  `json:"bytes_written"`
	LSBypassed   int64  `json:"ls_bypassed"`
	TCQueued     int64  `json:"tc_queued"`
	QueueDepth   int64  `json:"queue_depth"`
	Window       int64  `json:"window"`
	Drains       int64  `json:"drains"`
	ForcedDrains int64  `json:"forced_drains"`
	Suppressed   int64  `json:"suppressed"`
	Responses    int64  `json:"responses"`
	Coalesced    int64  `json:"coalesced"`
	// CoalescingRatio is completions per wire response — the live form of
	// the paper's Fig. 6(c) metric; > 1 means coalescing is paying off.
	CoalescingRatio float64 `json:"coalescing_ratio"`
	LatencyP50      int64   `json:"latency_p50_ns"`
	LatencyP99      int64   `json:"latency_p99_ns"`
	LatencyMax      int64   `json:"latency_max_ns"`
	LatencySamples  int     `json:"latency_samples"`
}

// GlobalSnapshot is a point-in-time copy of the registry-wide instruments.
type GlobalSnapshot struct {
	Connections     int64 `json:"connections"`
	Reconnects      int64 `json:"reconnects"`
	TransportErrors int64 `json:"transport_errors"`
}

// Global snapshots the registry-wide counters.
func (r *Registry) Global() GlobalSnapshot {
	if r == nil {
		return GlobalSnapshot{}
	}
	return GlobalSnapshot{
		Connections:     r.connections.Load(),
		Reconnects:      r.reconnects.Load(),
		TransportErrors: r.transportErrors.Load(),
	}
}

// Tenants snapshots every tenant with recorded activity, in tenant order.
func (r *Registry) Tenants() []TenantSnapshot {
	if r == nil {
		return nil
	}
	var out []TenantSnapshot
	for i := range r.tenants {
		s := &r.tenants[i]
		if !s.touched.Load() {
			continue
		}
		snap := TenantSnapshot{
			Tenant:       uint8(i),
			Class:        proto.Priority(s.class.Load()).String(),
			Submitted:    s.submitted.Load(),
			Completed:    s.completed.Load(),
			Errors:       s.errors.Load(),
			BytesRead:    s.bytesRead.Load(),
			BytesWritten: s.bytesWritten.Load(),
			LSBypassed:   s.lsBypassed.Load(),
			TCQueued:     s.tcQueued.Load(),
			QueueDepth:   s.queueDepth.Load(),
			Window:       s.window.Load(),
			Drains:       s.drains.Load(),
			ForcedDrains: s.forcedDrains.Load(),
			Suppressed:   s.suppressed.Load(),
			Responses:    s.responses.Load(),
			Coalesced:    s.coalesced.Load(),
		}
		if snap.Responses > 0 {
			snap.CoalescingRatio = float64(snap.Completed) / float64(snap.Responses)
		}
		if lats := s.lat.snapshot(); len(lats) > 0 {
			sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
			snap.LatencySamples = len(lats)
			snap.LatencyP50 = lats[len(lats)/2]
			snap.LatencyP99 = lats[(len(lats)*99)/100]
			snap.LatencyMax = lats[len(lats)-1]
		}
		out = append(out, snap)
	}
	return out
}
