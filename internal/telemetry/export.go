package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"nvmeopf/internal/proto"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics        Prometheus text exposition (counters, gauges,
//	                per-class latency histograms, SLO burn rates)
//	/debug/tenants  JSON: live per-tenant instrument table
//	/debug/windows  JSON: recent window-optimizer decisions
//	/debug/slo      JSON: per-tenant SLO state and burn rates
//	/debug/autotune JSON: adaptive-controller state and decision log
//	/debug/e2e      JSON: host-reported end-to-end view per tenant
//	/debug/trace    JSONL: flight-recorder dump (when one is attached)
//	/debug/pprof/   net/http/pprof profiles from the live process
//
// The handler only reads snapshots; it never blocks the record path.
// Each /metrics scrape also checkpoints the SLO counters (TickSLO), so
// the multi-window burn rates advance at scrape cadence. The /debug/*
// endpoints are read-only: non-GET requests are answered 405.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		r.TickSLO(r.now())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.PrometheusText())
	})
	mux.HandleFunc("/debug/tenants", getOnly(func(w http.ResponseWriter) {
		writeJSON(w, struct {
			Global  GlobalSnapshot   `json:"global"`
			Tenants []TenantSnapshot `json:"tenants"`
		}{r.Global(), r.Tenants()})
	}))
	mux.HandleFunc("/debug/windows", getOnly(func(w http.ResponseWriter) {
		writeJSON(w, struct {
			Windows []WindowDecision `json:"windows"`
		}{r.WindowLog()})
	}))
	mux.HandleFunc("/debug/slo", getOnly(func(w http.ResponseWriter) {
		writeJSON(w, struct {
			Windows []string      `json:"windows"`
			SLOs    []SLOSnapshot `json:"slos"`
		}{sloWindowNames(), r.SLOs(r.now())})
	}))
	mux.HandleFunc("/debug/autotune", getOnly(func(w http.ResponseWriter) {
		writeJSON(w, struct {
			Actions   []string              `json:"actions"`
			Tenants   []AutotuneTenantState `json:"tenants"`
			Decisions []AutotuneDecision    `json:"decisions"`
		}{AutotuneActions, r.AutotuneStates(), r.AutotuneLog()})
	}))
	mux.HandleFunc("/debug/e2e", getOnly(func(w http.ResponseWriter) {
		writeJSON(w, struct {
			Tenants []E2ESnapshot `json:"tenants"`
		}{r.E2E()})
	}))
	mux.HandleFunc("/debug/trace", getOnly(func(w http.ResponseWriter) {
		rec := r.Recorder()
		if rec == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = rec.WriteJSONL(w)
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func sloWindowNames() []string {
	names := make([]string, 0, len(SLOBurnWindows)+1)
	for _, w := range SLOBurnWindows {
		names = append(names, w.Name)
	}
	return append(names, "total")
}

// getOnly gates a read-only debug endpoint: anything but GET is answered
// 405 with an Allow header, so accidental POSTs can't be mistaken for
// accepted input.
func getOnly(h func(http.ResponseWriter)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // debug payloads, not HTML: keep "<" and ">" readable
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// histExportBounds are the bucket boundaries /metrics exposes: powers of
// two minus one from 1023ns (~1µs) to ~1.07s. Each is the exact upper
// bound of an internal bucket, so the cumulative counts are exact.
var histExportBounds = func() []int64 {
	var out []int64
	for k := 10; k <= 30; k++ {
		out = append(out, (int64(1)<<k)-1)
	}
	return out
}()

// metricDef maps one per-tenant instrument to a Prometheus series.
type metricDef struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(TenantSnapshot) int64
}

// tenantMetrics is emitted in this fixed order so the exposition is
// deterministic (golden-tested).
var tenantMetrics = []metricDef{
	{"nvmeopf_tenant_submitted_total", "counter", "Requests submitted.", func(t TenantSnapshot) int64 { return t.Submitted }},
	{"nvmeopf_tenant_completed_total", "counter", "Application-visible completions.", func(t TenantSnapshot) int64 { return t.Completed }},
	{"nvmeopf_tenant_errors_total", "counter", "Completions with a non-success status.", func(t TenantSnapshot) int64 { return t.Errors }},
	{"nvmeopf_tenant_bytes_read_total", "counter", "Payload bytes read.", func(t TenantSnapshot) int64 { return t.BytesRead }},
	{"nvmeopf_tenant_bytes_written_total", "counter", "Payload bytes written.", func(t TenantSnapshot) int64 { return t.BytesWritten }},
	{"nvmeopf_tenant_ls_bypass_total", "counter", "Latency-sensitive requests that bypassed the TC queues.", func(t TenantSnapshot) int64 { return t.LSBypassed }},
	{"nvmeopf_tenant_tc_queued_total", "counter", "Throughput-critical requests absorbed into the tenant queue.", func(t TenantSnapshot) int64 { return t.TCQueued }},
	{"nvmeopf_tenant_queue_depth", "gauge", "Pending TC requests in the tenant queue.", func(t TenantSnapshot) int64 { return t.QueueDepth }},
	{"nvmeopf_tenant_drain_window", "gauge", "Drain window size (chosen on the host, observed at the target).", func(t TenantSnapshot) int64 { return t.Window }},
	{"nvmeopf_tenant_drains_total", "counter", "Windows released by a draining flag.", func(t TenantSnapshot) int64 { return t.Drains }},
	{"nvmeopf_tenant_forced_drains_total", "counter", "Windows released by the safety valve.", func(t TenantSnapshot) int64 { return t.ForcedDrains }},
	{"nvmeopf_tenant_suppressed_total", "counter", "Device completions absorbed by coalescing.", func(t TenantSnapshot) int64 { return t.Suppressed }},
	{"nvmeopf_tenant_responses_total", "counter", "Wire responses emitted.", func(t TenantSnapshot) int64 { return t.Responses }},
	{"nvmeopf_tenant_coalesced_responses_total", "counter", "Wire responses covering a whole window.", func(t TenantSnapshot) int64 { return t.Coalesced }},
	{"nvmeopf_busy_rejections_total", "counter", "Requests refused admission with StatusBusy.", func(t TenantSnapshot) int64 { return t.BusyRejections }},
	{"nvmeopf_replayed_requests_total", "counter", "Requests resubmitted by host-side recovery.", func(t TenantSnapshot) int64 { return t.Replayed }},
}

// PrometheusText renders the registry in the Prometheus text exposition
// format, deterministically: fixed metric order, tenants in ID order.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	if r == nil {
		b.WriteString("# telemetry disabled\n")
		return b.String()
	}
	tenants := r.Tenants()
	for _, m := range tenantMetrics {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		for _, t := range tenants {
			fmt.Fprintf(&b, "%s{tenant=\"%d\"} %d\n", m.name, t.Tenant, m.value(t))
		}
	}
	// Scavenger instruments: emitted only for tenants that carried any
	// best-effort traffic, so scavenger-free deployments keep their
	// exposition byte-identical (the same gating the cluster instruments
	// use).
	emitScav := func(name, kind, help string, value func(TenantSnapshot) int64) {
		hdr := false
		for _, t := range tenants {
			if t.ScavQueued == 0 && t.ScavDrains == 0 {
				continue
			}
			if !hdr {
				fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
				hdr = true
			}
			fmt.Fprintf(&b, "%s{tenant=\"%d\"} %d\n", name, t.Tenant, value(t))
		}
	}
	emitScav("nvmeopf_scavenger_queued_total", "counter", "Scavenger (best-effort) requests absorbed into queues.", func(t TenantSnapshot) int64 { return t.ScavQueued })
	emitScav("nvmeopf_scavenger_queue_depth", "gauge", "Parked scavenger requests awaiting leftover capacity.", func(t TenantSnapshot) int64 { return t.ScavQueueDepth })
	emitScav("nvmeopf_scavenger_drains_total", "counter", "Scavenger windows released (leftover capacity or aging).", func(t TenantSnapshot) int64 { return t.ScavDrains })
	emitScav("nvmeopf_scavenger_aged_drains_total", "counter", "Scavenger windows force-drained by the aging bound.", func(t TenantSnapshot) int64 { return t.ScavAgedDrains })

	b.WriteString("# HELP nvmeopf_tenant_coalescing_ratio Completions per wire response (>1 means coalescing).\n" +
		"# TYPE nvmeopf_tenant_coalescing_ratio gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(&b, "nvmeopf_tenant_coalescing_ratio{tenant=\"%d\"} %.4f\n", t.Tenant, t.CoalescingRatio)
	}
	b.WriteString("# HELP nvmeopf_tenant_latency_ns End-to-end latency quantiles from the log-bucketed histograms.\n" +
		"# TYPE nvmeopf_tenant_latency_ns gauge\n")
	for _, t := range tenants {
		if t.LatencySamples == 0 {
			continue
		}
		fmt.Fprintf(&b, "nvmeopf_tenant_latency_ns{tenant=\"%d\",quantile=\"0.5\"} %d\n", t.Tenant, t.LatencyP50)
		fmt.Fprintf(&b, "nvmeopf_tenant_latency_ns{tenant=\"%d\",quantile=\"0.95\"} %d\n", t.Tenant, t.LatencyP95)
		fmt.Fprintf(&b, "nvmeopf_tenant_latency_ns{tenant=\"%d\",quantile=\"0.99\"} %d\n", t.Tenant, t.LatencyP99)
		fmt.Fprintf(&b, "nvmeopf_tenant_latency_ns{tenant=\"%d\",quantile=\"0.999\"} %d\n", t.Tenant, t.LatencyP999)
		fmt.Fprintf(&b, "nvmeopf_tenant_latency_ns{tenant=\"%d\",quantile=\"1\"} %d\n", t.Tenant, t.LatencyMax)
	}
	b.WriteString("# HELP nvmeopf_tenant_latency_hist_ns End-to-end latency histogram per class (log-bucketed, ~3% relative error).\n" +
		"# TYPE nvmeopf_tenant_latency_hist_ns histogram\n")
	for _, t := range tenants {
		for c := Class(0); c < numClasses; c++ {
			h := r.LatencyHist(proto.TenantID(t.Tenant), c)
			if h == nil {
				continue
			}
			hs := h.Snapshot()
			if hs.Count == 0 {
				continue
			}
			for _, le := range histExportBounds {
				fmt.Fprintf(&b, "nvmeopf_tenant_latency_hist_ns_bucket{tenant=\"%d\",class=\"%s\",le=\"%d\"} %d\n",
					t.Tenant, c, le, hs.CumulativeLE(le))
			}
			fmt.Fprintf(&b, "nvmeopf_tenant_latency_hist_ns_bucket{tenant=\"%d\",class=\"%s\",le=\"+Inf\"} %d\n",
				t.Tenant, c, hs.Count)
			fmt.Fprintf(&b, "nvmeopf_tenant_latency_hist_ns_sum{tenant=\"%d\",class=\"%s\"} %d\n", t.Tenant, c, hs.Sum)
			fmt.Fprintf(&b, "nvmeopf_tenant_latency_hist_ns_count{tenant=\"%d\",class=\"%s\"} %d\n", t.Tenant, c, hs.Count)
		}
	}
	if slos := r.SLOs(r.now()); len(slos) > 0 {
		b.WriteString("# HELP nvmeopf_tenant_slo_objective_ns Declared per-tenant latency objective.\n" +
			"# TYPE nvmeopf_tenant_slo_objective_ns gauge\n")
		for _, s := range slos {
			fmt.Fprintf(&b, "nvmeopf_tenant_slo_objective_ns{tenant=\"%d\"} %d\n", s.Tenant, s.ObjectiveNS)
		}
		b.WriteString("# HELP nvmeopf_tenant_slo_good_total Completions within the latency objective.\n" +
			"# TYPE nvmeopf_tenant_slo_good_total counter\n")
		for _, s := range slos {
			fmt.Fprintf(&b, "nvmeopf_tenant_slo_good_total{tenant=\"%d\"} %d\n", s.Tenant, s.Good)
		}
		b.WriteString("# HELP nvmeopf_tenant_slo_violations_total Completions slower than the objective.\n" +
			"# TYPE nvmeopf_tenant_slo_violations_total counter\n")
		for _, s := range slos {
			fmt.Fprintf(&b, "nvmeopf_tenant_slo_violations_total{tenant=\"%d\"} %d\n", s.Tenant, s.Violations)
		}
		b.WriteString("# HELP nvmeopf_tenant_slo_burn_rate Error-budget burn rate per trailing window (1 = consuming exactly the budget).\n" +
			"# TYPE nvmeopf_tenant_slo_burn_rate gauge\n")
		for _, s := range slos {
			for w, win := range SLOBurnWindows {
				if s.BurnRate[w] >= 0 {
					fmt.Fprintf(&b, "nvmeopf_tenant_slo_burn_rate{tenant=\"%d\",window=\"%s\"} %.4f\n", s.Tenant, win.Name, s.BurnRate[w])
				}
			}
			if s.BurnTotal >= 0 {
				fmt.Fprintf(&b, "nvmeopf_tenant_slo_burn_rate{tenant=\"%d\",window=\"total\"} %.4f\n", s.Tenant, s.BurnTotal)
			}
		}
	}
	if states := r.AutotuneStates(); len(states) > 0 {
		b.WriteString("# HELP nvmeopf_autotune_window Adaptive drain-window controller's current window per tenant.\n" +
			"# TYPE nvmeopf_autotune_window gauge\n")
		for _, s := range states {
			fmt.Fprintf(&b, "nvmeopf_autotune_window{tenant=\"%d\"} %d\n", s.Tenant, s.Window)
		}
		b.WriteString("# HELP nvmeopf_autotune_cap Admission cap set by the adaptive controller (0: cleared).\n" +
			"# TYPE nvmeopf_autotune_cap gauge\n")
		for _, s := range states {
			fmt.Fprintf(&b, "nvmeopf_autotune_cap{tenant=\"%d\"} %d\n", s.Tenant, s.Cap)
		}
		b.WriteString("# HELP nvmeopf_autotune_burn_rate Interval LS burn rate at the last controller decision.\n" +
			"# TYPE nvmeopf_autotune_burn_rate gauge\n")
		for _, s := range states {
			fmt.Fprintf(&b, "nvmeopf_autotune_burn_rate{tenant=\"%d\"} %.4f\n", s.Tenant, s.Last.BurnRate)
		}
		b.WriteString("# HELP nvmeopf_autotune_decisions_total Controller decisions by action.\n" +
			"# TYPE nvmeopf_autotune_decisions_total counter\n")
		for _, s := range states {
			for i, a := range AutotuneActions {
				fmt.Fprintf(&b, "nvmeopf_autotune_decisions_total{tenant=\"%d\",action=\"%s\"} %d\n", s.Tenant, a, s.Decisions[i])
			}
		}
	}
	if e2e := r.E2E(); len(e2e) > 0 {
		b.WriteString("# HELP nvmeopf_e2e_latency_hist_ns Host-observed end-to-end latency histogram per class, merged from TelemetryUpdate deltas.\n" +
			"# TYPE nvmeopf_e2e_latency_hist_ns histogram\n")
		for _, s := range e2e {
			for c := Class(0); c < numClasses; c++ {
				h := r.E2EHist(proto.TenantID(s.Tenant), c)
				if h == nil {
					continue
				}
				hs := h.Snapshot()
				if hs.Count == 0 {
					continue
				}
				for _, le := range histExportBounds {
					fmt.Fprintf(&b, "nvmeopf_e2e_latency_hist_ns_bucket{tenant=\"%d\",class=\"%s\",le=\"%d\"} %d\n",
						s.Tenant, c, le, hs.CumulativeLE(le))
				}
				fmt.Fprintf(&b, "nvmeopf_e2e_latency_hist_ns_bucket{tenant=\"%d\",class=\"%s\",le=\"+Inf\"} %d\n",
					s.Tenant, c, hs.Count)
				fmt.Fprintf(&b, "nvmeopf_e2e_latency_hist_ns_sum{tenant=\"%d\",class=\"%s\"} %d\n", s.Tenant, c, hs.Sum)
				fmt.Fprintf(&b, "nvmeopf_e2e_latency_hist_ns_count{tenant=\"%d\",class=\"%s\"} %d\n", s.Tenant, c, hs.Count)
			}
		}
		b.WriteString("# HELP nvmeopf_e2e_gap_ns Egress gap: host-observed e2e p99 minus target-side service p99.\n" +
			"# TYPE nvmeopf_e2e_gap_ns gauge\n")
		for _, s := range e2e {
			for _, cs := range s.Classes {
				fmt.Fprintf(&b, "nvmeopf_e2e_gap_ns{tenant=\"%d\",class=\"%s\"} %d\n", s.Tenant, cs.Class, cs.GapP99NS)
			}
		}
		b.WriteString("# HELP nvmeopf_e2e_updates_total TelemetryUpdate PDUs merged from hosts.\n" +
			"# TYPE nvmeopf_e2e_updates_total counter\n")
		for _, s := range e2e {
			fmt.Fprintf(&b, "nvmeopf_e2e_updates_total{tenant=\"%d\"} %d\n", s.Tenant, s.Updates)
		}
		b.WriteString("# HELP nvmeopf_e2e_host_queue_depth Host-side outstanding commands at the last update.\n" +
			"# TYPE nvmeopf_e2e_host_queue_depth gauge\n")
		for _, s := range e2e {
			fmt.Fprintf(&b, "nvmeopf_e2e_host_queue_depth{tenant=\"%d\"} %d\n", s.Tenant, s.QueueDepth)
		}
		b.WriteString("# HELP nvmeopf_e2e_busy_total Host-observed StatusBusy completions.\n" +
			"# TYPE nvmeopf_e2e_busy_total counter\n")
		for _, s := range e2e {
			fmt.Fprintf(&b, "nvmeopf_e2e_busy_total{tenant=\"%d\"} %d\n", s.Tenant, s.Busy)
		}
		b.WriteString("# HELP nvmeopf_e2e_retries_total Host-side resubmissions reported over the feedback channel.\n" +
			"# TYPE nvmeopf_e2e_retries_total counter\n")
		for _, s := range e2e {
			fmt.Fprintf(&b, "nvmeopf_e2e_retries_total{tenant=\"%d\"} %d\n", s.Tenant, s.Retries)
		}
	}
	var clockHdr bool
	r.eachTouched(func(i int, s *tenantSlot) {
		if s.clockReest.Load() == 0 {
			return
		}
		if !clockHdr {
			b.WriteString("# HELP nvmeopf_clock_reestimate_delta_ns Last periodic clock-offset re-estimate minus the previous estimate.\n" +
				"# TYPE nvmeopf_clock_reestimate_delta_ns gauge\n")
			clockHdr = true
		}
		fmt.Fprintf(&b, "nvmeopf_clock_reestimate_delta_ns{tenant=\"%d\"} %d\n", i, s.clockReestDelta.Load())
	})
	clockHdr = false
	r.eachTouched(func(i int, s *tenantSlot) {
		if s.clockReest.Load() == 0 {
			return
		}
		if !clockHdr {
			b.WriteString("# HELP nvmeopf_clock_reestimates_total Periodic clock-offset re-estimates performed.\n" +
				"# TYPE nvmeopf_clock_reestimates_total counter\n")
			clockHdr = true
		}
		fmt.Fprintf(&b, "nvmeopf_clock_reestimates_total{tenant=\"%d\"} %d\n", i, s.clockReest.Load())
	})
	g := r.Global()
	fmt.Fprintf(&b, "# HELP nvmeopf_connections_total Connections established.\n# TYPE nvmeopf_connections_total counter\nnvmeopf_connections_total %d\n", g.Connections)
	fmt.Fprintf(&b, "# HELP nvmeopf_reconnects_total Connections re-established after failure.\n# TYPE nvmeopf_reconnects_total counter\nnvmeopf_reconnects_total %d\n", g.Reconnects)
	fmt.Fprintf(&b, "# HELP nvmeopf_transport_errors_total Transport-level failures.\n# TYPE nvmeopf_transport_errors_total counter\nnvmeopf_transport_errors_total %d\n", g.TransportErrors)
	fmt.Fprintf(&b, "# HELP nvmeopf_disconnects_total Sessions torn down after their connection died.\n# TYPE nvmeopf_disconnects_total counter\nnvmeopf_disconnects_total %d\n", g.Disconnects)
	fmt.Fprintf(&b, "# HELP nvmeopf_teardown_dropped_total Queued requests discarded by session teardown.\n# TYPE nvmeopf_teardown_dropped_total counter\nnvmeopf_teardown_dropped_total %d\n", g.TeardownDrops)
	if n := r.Shards(); n > 0 {
		fmt.Fprintf(&b, "# HELP nvmeopf_target_shards Reactor shards the target datapath runs.\n# TYPE nvmeopf_target_shards gauge\nnvmeopf_target_shards %d\n", n)
	}
	// Cluster instruments: emitted only once any of them was touched, so
	// single-target deployments keep their exposition byte-identical.
	if g.Failovers != 0 || g.StaleEpochs != 0 || g.DiscoveryExpired != 0 || g.ClusterEpoch != 0 || g.ClusterDegraded != 0 {
		fmt.Fprintf(&b, "# HELP nvmeopf_failovers_total Shard primaries re-targeted after a target death.\n# TYPE nvmeopf_failovers_total counter\nnvmeopf_failovers_total %d\n", g.Failovers)
		fmt.Fprintf(&b, "# HELP nvmeopf_stale_epoch_rejections_total Cluster maps or registrations rejected for a stale epoch.\n# TYPE nvmeopf_stale_epoch_rejections_total counter\nnvmeopf_stale_epoch_rejections_total %d\n", g.StaleEpochs)
		fmt.Fprintf(&b, "# HELP nvmeopf_discovery_expired_total Discovery registrations expired by TTL without a keep-alive.\n# TYPE nvmeopf_discovery_expired_total counter\nnvmeopf_discovery_expired_total %d\n", g.DiscoveryExpired)
		fmt.Fprintf(&b, "# HELP nvmeopf_cluster_epoch Newest cluster-map epoch observed.\n# TYPE nvmeopf_cluster_epoch gauge\nnvmeopf_cluster_epoch %d\n", g.ClusterEpoch)
		fmt.Fprintf(&b, "# HELP nvmeopf_cluster_degraded 1 while writes are refused because the shard has no live replica.\n# TYPE nvmeopf_cluster_degraded gauge\nnvmeopf_cluster_degraded %d\n", g.ClusterDegraded)
	}
	return b.String()
}

// Exporter is a running HTTP endpoint serving a registry.
type Exporter struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once
}

// Serve binds addr (e.g. "127.0.0.1:9464", ":0") and serves the
// registry's Handler until Close. It returns once the listener is bound,
// so Addr is immediately valid.
func (r *Registry) Serve(addr string) (*Exporter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	e := &Exporter{ln: ln, srv: &http.Server{Handler: r.Handler()}}
	go func() { _ = e.srv.Serve(ln) }()
	return e, nil
}

// Addr returns the bound address.
func (e *Exporter) Addr() string { return e.ln.Addr().String() }

// Close shuts the endpoint down.
func (e *Exporter) Close() error {
	var err error
	e.once.Do(func() { err = e.srv.Close() })
	return err
}

// SnapshotTable renders the per-tenant table as fixed-width text for
// terminal reports (examples and CLI tools).
func (r *Registry) SnapshotTable() string {
	if r == nil {
		return "telemetry disabled\n"
	}
	tenants := r.Tenants()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Tenant < tenants[j].Tenant })
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-28s %10s %10s %6s %8s %7s %9s\n",
		"tenant", "class", "submitted", "completed", "depth", "window", "drains", "coalesce")
	for _, t := range tenants {
		fmt.Fprintf(&b, "%-7d %-28s %10d %10d %6d %8d %7d %8.2fx\n",
			t.Tenant, t.Class, t.Submitted, t.Completed, t.QueueDepth, t.Window,
			t.Drains+t.ForcedDrains, t.CoalescingRatio)
	}
	return b.String()
}
