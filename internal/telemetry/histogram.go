package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"

	"nvmeopf/internal/proto"
)

// Class buckets the latency instruments by tenant class: the paper's
// LS/TC split plus this dialect's scavenger (best-effort) class.
// Legacy/normal traffic accounts under ClassTC: it shares the
// FIFO/batched execution path, so its latency belongs with the
// throughput-critical population, not the bypass one.
type Class uint8

// Classes.
const (
	ClassLS Class = iota
	ClassTC
	ClassScav
	numClasses
)

// String implements fmt.Stringer (the Prometheus label value).
func (c Class) String() string {
	switch c {
	case ClassLS:
		return "ls"
	case ClassScav:
		return "scavenger"
	default:
		return "tc"
	}
}

// ClassOf maps a wire priority to its latency class.
func ClassOf(p proto.Priority) Class {
	switch {
	case p.LatencySensitive():
		return ClassLS
	case p.Scavenger():
		return ClassScav
	default:
		return ClassTC
	}
}

// Log-bucketed HDR-style histogram geometry. Values are bucketed by the
// position of their most significant bit (the octave) and histSubBuckets
// linear sub-buckets per octave, so the relative quantile error is bounded
// by 1/histSubBuckets ≈ 3.1% while the whole non-negative int64 range is
// covered by a fixed array — no allocation and no saturation on the record
// path, unlike the sample rings this replaces.
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	// Values below histSubBuckets get exact buckets (block 0); each MSB
	// position from histSubBits..62 gets one block of histSubBuckets.
	histBuckets = (64 - histSubBits) * histSubBuckets
)

// histBucketIndex maps a value to its bucket. Negative values clamp to 0.
func histBucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	hi := 63 - bits.LeadingZeros64(u|1)
	if hi < histSubBits {
		return int(u)
	}
	shift := uint(hi - histSubBits)
	return ((hi - histSubBits + 1) << histSubBits) | int((u>>shift)&(histSubBuckets-1))
}

// histBucketUpper returns the largest value a bucket admits (the
// conservative representative Quantile reports).
func histBucketUpper(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	block := idx >> histSubBits
	sub := idx & (histSubBuckets - 1)
	shift := uint(block - 1)
	return int64(uint64(histSubBuckets+sub+1)<<shift) - 1
}

// Hist is a lock-free log-bucketed latency histogram. Record is safe for
// concurrent use, allocation-free, and never saturates; readers take a
// Snapshot and compute quantiles from the copy. A nil *Hist ignores
// Record and reports zero everywhere.
type Hist struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// Record adds one sample (negative values clamp to 0).
func (h *Hist) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Merge adds o's counts into h (cold path; tests and aggregation).
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
	for {
		m, om := h.max.Load(), o.max.Load()
		if om <= m || h.max.CompareAndSwap(m, om) {
			return
		}
	}
}

// Snapshot copies the histogram for consistent read-side computation.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Counts = make([]int64, histBuckets)
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile is a convenience over Snapshot().Quantile for single queries.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// HistSnapshot is a point-in-time copy of a Hist.
type HistSnapshot struct {
	Counts []int64
	Count  int64
	Sum    int64
	Max    int64
}

// Quantile returns the value at quantile q in [0,1]: the upper bound of
// the bucket holding the sample of rank ceil(q*count), so the estimate is
// within one sub-bucket (a factor of 1+1/32) of the true sample. q >= 1
// returns the exact recorded maximum.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Counts {
		seen += n
		if seen >= rank {
			up := histBucketUpper(i)
			if up > s.Max {
				// The top occupied bucket's range can exceed the true
				// maximum; never report beyond it.
				up = s.Max
			}
			return up
		}
	}
	return s.Max
}

// CumulativeLE returns how many samples are <= bound (the Prometheus
// histogram bucket value for le=bound).
func (s HistSnapshot) CumulativeLE(bound int64) int64 {
	var n int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if histBucketUpper(i) <= bound {
			n += c
		}
	}
	return n
}
