package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// The flight recorder keeps the recent past of every tenant's PDU
// lifecycle in bounded memory, always on, so that when an anomaly
// surfaces — a drain stall, a tail-latency excursion — the events that
// led up to it are already captured instead of needing a reproduction
// with tracing enabled. It is the black box the NTSB pulls from the
// wreck, not a logging pipeline.
//
// Design constraints, in order:
//
//  1. The record path must match the registry's cost model: no locks, no
//     allocation, a handful of atomic stores. It runs inside the reactor
//     goroutine of a live session for every traced PDU.
//  2. Memory is bounded: one fixed-size ring per active tenant, lazily
//     installed, overwriting oldest-first.
//  3. A torn slot (reader overlapping a wrap-around writer) may yield one
//     inconsistent event; the recorder is a sampling instrument, and
//     readers quiesce the workload (or tolerate one bad event) when exact
//     dumps matter.

// recSlot is one recorded event. Three independent atomics rather than
// one guarded struct: the writer makes three ordered stores, a racing
// reader can at worst observe a mix of two events (accepted, see above).
type recSlot struct {
	// meta packs stage<<40 | prio<<32 | tenant<<16 | cid (tenant IDs are
	// 16 bits wide).
	meta atomic.Uint64
	aux  atomic.Int64
	ts   atomic.Int64
}

func packMeta(e Event) uint64 {
	return uint64(e.Stage)<<40 | uint64(e.Prio)<<32 | uint64(e.Tenant)<<16 | uint64(e.CID)
}

// recRing is one tenant's event ring.
type recRing struct {
	mask  uint64
	next  atomic.Uint64 // total events ever written (reservation counter)
	slots []recSlot
}

// RecorderConfig configures a flight recorder. The zero value is usable:
// wall clock, default ring size, no stall detection.
type RecorderConfig struct {
	// Clock returns the current time in nanoseconds. Defaults to the wall
	// clock; simulations pass their virtual clock.
	Clock func() int64
	// PerTenant is the per-tenant ring capacity in events (rounded up to a
	// power of two; default 4096 ≈ 96 KiB per active tenant).
	PerTenant int
	// StallThreshold, when > 0, arms the anomaly trigger: a drain-start
	// whose oldest queued request has waited longer than this snapshots
	// the tenant's ring for post-mortem inspection.
	StallThreshold time.Duration
	// MaxSnapshots bounds the retained anomaly snapshots (default 4; the
	// first ones after arming are kept — the interesting ones, since later
	// stalls are usually echoes of the first).
	MaxSnapshots int
	// Role labels dumps ("host" or "target") so the correlator knows which
	// side it is looking at.
	Role string
}

const defaultRecorderRing = 4096

// Recorder is the per-tenant flight recorder. A nil *Recorder is inert:
// Trace and every accessor are nil-receiver-safe, so wiring an optional
// recorder costs one branch when absent.
type Recorder struct {
	cfg   RecorderConfig
	stall int64 // cfg.StallThreshold in ns (0 = disarmed)

	rings [MaxTenants]atomic.Pointer[recRing]

	// oldestEnq[t] is 1 + the timestamp of the oldest event currently
	// queued (StageEnqueue seen, drain not yet started) for tenant t; 0
	// means the queue was empty at the last drain. Only ever written by
	// the tenant's emitting reactor, read by the same, so plain ordering
	// would do — atomics keep the race detector and cross-goroutine dump
	// readers happy.
	oldestEnq [MaxTenants]atomic.Int64

	// Clock correlation, set from the ICReq/ICResp handshake.
	clockOffset atomic.Int64
	rttEstimate atomic.Int64

	snapMu sync.Mutex
	snaps  []AnomalySnapshot
}

// NewRecorder creates a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.PerTenant <= 0 {
		cfg.PerTenant = defaultRecorderRing
	}
	// Round up to a power of two so the ring index is a mask.
	n := 1
	for n < cfg.PerTenant {
		n <<= 1
	}
	cfg.PerTenant = n
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = 4
	}
	return &Recorder{cfg: cfg, stall: int64(cfg.StallThreshold)}
}

// Role returns the configured dump label.
func (r *Recorder) Role() string {
	if r == nil {
		return ""
	}
	return r.cfg.Role
}

// SetClockOffset records the handshake-derived clock correlation: offset
// is target-clock minus host-clock (add it to host timestamps to land on
// the target's axis), rtt the handshake round trip that bounds its error.
func (r *Recorder) SetClockOffset(offset, rtt int64) {
	if r == nil {
		return
	}
	r.clockOffset.Store(offset)
	r.rttEstimate.Store(rtt)
}

// ClockOffset returns the recorded offset and rtt bound (zero until a
// handshake supplied them).
func (r *Recorder) ClockOffset() (offset, rtt int64) {
	if r == nil {
		return 0, 0
	}
	return r.clockOffset.Load(), r.rttEstimate.Load()
}

func (r *Recorder) ring(t proto.TenantID) *recRing {
	if g := r.rings[t].Load(); g != nil {
		return g
	}
	g := &recRing{
		mask:  uint64(r.cfg.PerTenant - 1),
		slots: make([]recSlot, r.cfg.PerTenant),
	}
	if r.rings[t].CompareAndSwap(nil, g) {
		return g
	}
	return r.rings[t].Load()
}

// Trace records one lifecycle event; it is the TraceFunc to hang on a
// session or PM (method values on a nil *Recorder are safe). Events are
// stamped with the recorder's clock at entry.
func (r *Recorder) Trace(e Event) {
	if r == nil {
		return
	}
	now := r.cfg.Clock()
	g := r.ring(e.Tenant)
	idx := g.next.Add(1) - 1
	s := &g.slots[idx&g.mask]
	s.ts.Store(now)
	s.aux.Store(e.Aux)
	s.meta.Store(packMeta(e))

	// Drain-stall bookkeeping: remember when the tenant's queue went
	// non-empty; a drain releasing a queue older than the threshold is the
	// anomaly this recorder exists to catch.
	switch e.Stage {
	case StageEnqueue:
		if r.oldestEnq[e.Tenant].Load() == 0 {
			r.oldestEnq[e.Tenant].Store(now + 1)
		}
	case StageDrainStart:
		if enq := r.oldestEnq[e.Tenant].Load(); enq != 0 {
			r.oldestEnq[e.Tenant].Store(0)
			if age := now - (enq - 1); r.stall > 0 && age > r.stall {
				r.snapshotStall(e.Tenant, now, age)
			}
		}
	}
}

// AnomalySnapshot is one auto-captured post-mortem: the triggering
// condition plus the tenant's ring contents at that instant.
type AnomalySnapshot struct {
	Kind   string          `json:"kind"` // "drain-stall"
	TS     int64           `json:"ts"`
	Tenant uint16          `json:"tenant"`
	AgeNS  int64           `json:"age_ns"` // queue age that tripped the trigger
	Events []RecordedEvent `json:"events"`
}

// snapshotStall captures the tenant's ring (cold path: at most
// MaxSnapshots times per process, under a mutex).
func (r *Recorder) snapshotStall(t proto.TenantID, now, age int64) {
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	if len(r.snaps) >= r.cfg.MaxSnapshots {
		return
	}
	r.snaps = append(r.snaps, AnomalySnapshot{
		Kind:   "drain-stall",
		TS:     now,
		Tenant: uint16(t),
		AgeNS:  age,
		Events: r.tenantEvents(t),
	})
}

// Snapshots returns the retained anomaly snapshots, oldest first.
func (r *Recorder) Snapshots() []AnomalySnapshot {
	if r == nil {
		return nil
	}
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	out := make([]AnomalySnapshot, len(r.snaps))
	copy(out, r.snaps)
	return out
}

// RecordedEvent is one dumped flight-recorder event. Stage and Prio are
// numeric for lossless round trips; the JSONL writer adds the stage name
// as a comment field for human readers.
type RecordedEvent struct {
	TS     int64  `json:"ts"`
	Seq    uint64 `json:"seq"` // per-tenant emission order
	Stage  uint8  `json:"stage"`
	Tenant uint16 `json:"tenant"`
	CID    uint16 `json:"cid"`
	Prio   uint8  `json:"prio"`
	Aux    int64  `json:"aux"`
	Name   string `json:"name,omitempty"` // Stage.String(), informational
}

// Event converts back to the live representation.
func (e RecordedEvent) Event() Event {
	return Event{
		Stage:  Stage(e.Stage),
		Tenant: proto.TenantID(e.Tenant),
		CID:    nvme.CID(e.CID),
		Prio:   proto.Priority(e.Prio),
		Aux:    e.Aux,
	}
}

// tenantEvents reads one tenant's ring, oldest first. Seq reconstructs
// the emission order from the reservation counter.
func (r *Recorder) tenantEvents(t proto.TenantID) []RecordedEvent {
	g := r.rings[t].Load()
	if g == nil {
		return nil
	}
	total := g.next.Load()
	n := total
	if n > uint64(len(g.slots)) {
		n = uint64(len(g.slots))
	}
	out := make([]RecordedEvent, 0, n)
	for i := uint64(0); i < n; i++ {
		seq := total - n + i
		s := &g.slots[seq&g.mask]
		meta := s.meta.Load()
		st := Stage(meta >> 40)
		out = append(out, RecordedEvent{
			TS:     s.ts.Load(),
			Seq:    seq,
			Stage:  uint8(st),
			Tenant: uint16(meta >> 16),
			CID:    uint16(meta),
			Prio:   uint8(meta >> 32),
			Aux:    s.aux.Load(),
			Name:   st.String(),
		})
	}
	return out
}

// Events returns every retained event across all tenants in a
// deterministic global order: timestamp, then tenant, then per-tenant
// sequence (the tiebreak keeps same-instant events — common under a
// virtual clock — in causal per-tenant order).
func (r *Recorder) Events() []RecordedEvent {
	if r == nil {
		return nil
	}
	var out []RecordedEvent
	for t := 0; t < MaxTenants; t++ {
		out = append(out, r.tenantEvents(proto.TenantID(t))...)
	}
	sortRecorded(out)
	return out
}

func sortRecorded(evs []RecordedEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Seq < b.Seq
	})
}

// DumpMeta is the header line of a JSONL recorder dump.
type DumpMeta struct {
	Format      string `json:"format"` // "opf-flight-recorder/1"
	Role        string `json:"role"`   // "host" | "target"
	ClockOffset int64  `json:"clock_offset_ns"`
	RTT         int64  `json:"rtt_ns"`
	Events      int    `json:"events"`
	Snapshots   int    `json:"snapshots"`
}

// DumpFormat identifies the JSONL schema this package writes.
const DumpFormat = "opf-flight-recorder/1"

// WriteJSONL dumps the recorder: one meta header object, then one object
// per event (globally ordered), then one object per anomaly snapshot
// wrapped as {"anomaly": ...}.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("telemetry: nil recorder")
	}
	evs := r.Events()
	snaps := r.Snapshots()
	off, rtt := r.ClockOffset()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(DumpMeta{
		Format:      DumpFormat,
		Role:        r.cfg.Role,
		ClockOffset: off,
		RTT:         rtt,
		Events:      len(evs),
		Snapshots:   len(snaps),
	}); err != nil {
		return err
	}
	for _, e := range evs {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	for _, s := range snaps {
		if err := enc.Encode(struct {
			Anomaly AnomalySnapshot `json:"anomaly"`
		}{s}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dump is a parsed recorder dump.
type Dump struct {
	Meta      DumpMeta
	Events    []RecordedEvent
	Anomalies []AnomalySnapshot
}

// ReadDump parses a JSONL dump produced by WriteJSONL. It tolerates a
// missing header (treating every line as an event) so hand-built fixtures
// stay cheap to write.
func ReadDump(rd io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	d := &Dump{}
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var m DumpMeta
			if err := json.Unmarshal(line, &m); err == nil && m.Format != "" {
				d.Meta = m
				continue
			}
		}
		var wrap struct {
			Anomaly *AnomalySnapshot `json:"anomaly"`
		}
		if err := json.Unmarshal(line, &wrap); err == nil && wrap.Anomaly != nil {
			d.Anomalies = append(d.Anomalies, *wrap.Anomaly)
			continue
		}
		var e RecordedEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("telemetry: bad dump line %q: %w", line, err)
		}
		d.Events = append(d.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sortRecorded(d.Events)
	return d, nil
}

// ChainTrace composes trace hooks: each non-nil hook sees every event.
// Useful to feed a recorder alongside an existing TraceFunc.
func ChainTrace(fns ...TraceFunc) TraceFunc {
	var live []TraceFunc
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, fn := range live {
			fn(e)
		}
	}
}
