package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced nanosecond clock for recorder tests.
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64 { return c.now }

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Trace(Event{Stage: StageSubmit, Tenant: 1, CID: 2})
	r.SetClockOffset(5, 10)
	if off, rtt := r.ClockOffset(); off != 0 || rtt != 0 {
		t.Fatalf("nil recorder ClockOffset = %d,%d", off, rtt)
	}
	if r.Role() != "" || r.Events() != nil || r.Snapshots() != nil {
		t.Fatal("nil recorder accessors not inert")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err == nil {
		t.Fatal("nil recorder WriteJSONL did not error")
	}
}

// TestRecorderRingWrap overfills one tenant's ring and checks the dump
// keeps exactly the newest capacity-many events in emission order.
func TestRecorderRingWrap(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(RecorderConfig{Clock: clk.Now, PerTenant: 8})
	for i := 0; i < 20; i++ {
		clk.now = int64(100 + i)
		r.Trace(Event{Stage: StageSubmit, Tenant: 3, CID: uint16(i), Prio: 2, Aux: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring capacity 8", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(12 + i) // 20 written, newest 8 kept
		if e.Seq != wantSeq || e.Aux != int64(12+i) || e.CID != uint16(12+i) {
			t.Fatalf("event %d = %+v, want seq/aux/cid %d", i, e, wantSeq)
		}
		if e.TS != int64(100+12+i) || e.Tenant != 3 || e.Prio != 2 || Stage(e.Stage) != StageSubmit {
			t.Fatalf("event %d fields wrong: %+v", i, e)
		}
	}
}

// TestRecorderDumpRoundTrip: WriteJSONL → ReadDump must be lossless for
// meta, events, and anomaly snapshots.
func TestRecorderDumpRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(RecorderConfig{
		Clock: clk.Now, PerTenant: 16, Role: "target",
		StallThreshold: 50 * time.Nanosecond,
	})
	r.SetClockOffset(12345, 678)
	clk.now = 1000
	r.Trace(Event{Stage: StageArrive, Tenant: 1, CID: 7, Prio: 2, Aux: 4096})
	r.Trace(Event{Stage: StageEnqueue, Tenant: 1, CID: 7, Prio: 2})
	clk.now = 2000
	r.Trace(Event{Stage: StageArrive, Tenant: 2, CID: 9, Prio: 1})
	clk.now = 5000 // 4000ns queue age > 50ns threshold: snapshot fires
	r.Trace(Event{Stage: StageDrainStart, Tenant: 1, Aux: 1})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"enqueue"`) {
		t.Fatal("dump lacks human-readable stage names")
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Format != DumpFormat || d.Meta.Role != "target" ||
		d.Meta.ClockOffset != 12345 || d.Meta.RTT != 678 {
		t.Fatalf("meta round-trip wrong: %+v", d.Meta)
	}
	if !reflect.DeepEqual(d.Events, r.Events()) {
		t.Fatalf("events differ after round trip:\n got %+v\nwant %+v", d.Events, r.Events())
	}
	if len(d.Anomalies) != 1 || d.Anomalies[0].Kind != "drain-stall" {
		t.Fatalf("anomalies = %+v, want one drain-stall", d.Anomalies)
	}
	if d.Anomalies[0].AgeNS != 4000 || d.Anomalies[0].Tenant != 1 {
		t.Fatalf("snapshot fields wrong: %+v", d.Anomalies[0])
	}
	if len(d.Anomalies[0].Events) == 0 {
		t.Fatal("snapshot captured no ring events")
	}
}

// TestRecorderStallTrigger covers the arming logic: below-threshold drains
// must not snapshot, an empty-queue drain must not trip on stale state,
// and MaxSnapshots bounds the retained post-mortems.
func TestRecorderStallTrigger(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(RecorderConfig{
		Clock: clk.Now, PerTenant: 16,
		StallThreshold: 100 * time.Nanosecond, MaxSnapshots: 2,
	})
	// Fast drain: no snapshot.
	clk.now = 0 // exercises the virtual-clock zero: enqueue at t=0 must still arm
	r.Trace(Event{Stage: StageEnqueue, Tenant: 5, CID: 1})
	clk.now = 50
	r.Trace(Event{Stage: StageDrainStart, Tenant: 5})
	if n := len(r.Snapshots()); n != 0 {
		t.Fatalf("fast drain produced %d snapshots", n)
	}
	// Drain with nothing enqueued: no snapshot however late.
	clk.now = 10_000
	r.Trace(Event{Stage: StageDrainStart, Tenant: 5})
	if n := len(r.Snapshots()); n != 0 {
		t.Fatalf("empty-queue drain produced %d snapshots", n)
	}
	// Repeated stalls: capped at MaxSnapshots.
	for i := 0; i < 5; i++ {
		clk.now += 10
		r.Trace(Event{Stage: StageEnqueue, Tenant: 5, CID: uint16(i)})
		clk.now += 500
		r.Trace(Event{Stage: StageDrainStart, Tenant: 5})
	}
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want MaxSnapshots=2", len(snaps))
	}
	for _, s := range snaps {
		if s.Kind != "drain-stall" || s.Tenant != 5 || s.AgeNS != 500 {
			t.Fatalf("snapshot wrong: %+v", s)
		}
	}
}

func TestReadDumpHeaderless(t *testing.T) {
	raw := `{"ts":200,"seq":1,"stage":0,"tenant":1,"cid":4,"prio":2,"aux":0}
{"ts":100,"seq":0,"stage":0,"tenant":1,"cid":3,"prio":2,"aux":0}
`
	d, err := ReadDump(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Format != "" || len(d.Events) != 2 {
		t.Fatalf("headerless parse wrong: meta=%+v events=%d", d.Meta, len(d.Events))
	}
	if d.Events[0].TS != 100 {
		t.Fatalf("events not re-sorted: %+v", d.Events)
	}
}

func TestChainTrace(t *testing.T) {
	if ChainTrace(nil, nil) != nil {
		t.Fatal("all-nil chain should be nil")
	}
	var a, b int
	fa := func(Event) { a++ }
	if got := ChainTrace(nil, fa); got == nil {
		t.Fatal("single-hook chain dropped the hook")
	} else {
		got(Event{})
	}
	if a != 1 {
		t.Fatalf("single-hook chain fired %d times", a)
	}
	chained := ChainTrace(fa, func(Event) { b++ }, nil)
	chained(Event{})
	chained(Event{})
	if a != 3 || b != 2 {
		t.Fatalf("chain fan-out wrong: a=%d b=%d", a, b)
	}
}
