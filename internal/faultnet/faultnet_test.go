package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"nvmeopf/internal/simnet"
)

// pipePair returns two ends of a TCP loopback connection, the left one
// wrapped under a fresh injector.
func pipePair(t *testing.T, inj *Injector) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cl.Close(); r.c.Close() })
	return Wrap(cl, inj), r.c
}

func TestTransparentByDefault(t *testing.T) {
	inj := NewInjector(1)
	a, b := pipePair(t, inj)
	msg := []byte("hello fabric")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload altered with zero faults: %q", got)
	}
}

func TestLatencyInjection(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(DirSend, Faults{Latency: 50 * time.Millisecond})
	a, b := pipePair(t, inj)
	start := time.Now()
	go func() { a.Write([]byte("x")) }()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("write arrived after %v; want >= ~50ms injected latency", d)
	}
}

func TestBandwidthCapPacesWrites(t *testing.T) {
	inj := NewInjector(1)
	// 64 KiB at 256 KiB/s should take ~250ms.
	inj.Set(DirSend, Faults{BandwidthBPS: 256 << 10})
	a, b := pipePair(t, inj)
	go io.Copy(io.Discard, b)
	start := time.Now()
	if _, err := a.Write(make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("64KiB at 256KiB/s took %v; want >= ~250ms", d)
	}
}

func TestPartialWritesChunked(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(DirSend, Faults{MaxChunk: 3})
	a, b := pipePair(t, inj)
	msg := bytes.Repeat([]byte{0xAB}, 32)
	go func() {
		if n, err := a.Write(msg); err != nil || n != len(msg) {
			t.Errorf("chunked write: n=%d err=%v", n, err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("chunked write corrupted payload")
	}
}

func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	inj := NewInjector(7)
	inj.Set(DirSend, Faults{CorruptProb: 1.0})
	a, b := pipePair(t, inj)
	msg := bytes.Repeat([]byte{0x00}, 64)
	go a.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes; want exactly 1", diff)
	}
	// The writer's own buffer must be untouched (corruption copies).
	for _, v := range msg {
		if v != 0 {
			t.Fatal("corruption mutated the caller's buffer")
		}
	}
}

func TestDroppedWriteReportsSuccess(t *testing.T) {
	inj := NewInjector(3)
	inj.Set(DirSend, Faults{DropProb: 1.0})
	a, b := pipePair(t, inj)
	if n, err := a.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("dropped write: n=%d err=%v; want full fake success", n, err)
	}
	b.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 8)
	if n, _ := b.Read(buf); n != 0 {
		t.Fatalf("dropped bytes reached the peer: %d", n)
	}
}

func TestResetAfterBytes(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(DirSend, Faults{ResetAfterBytes: 10})
	a, b := pipePair(t, inj)
	go io.Copy(io.Discard, b)
	if _, err := a.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	_, err := a.Write(make([]byte, 8))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset after byte budget, got %v", err)
	}
	// Both directions are dead now.
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read after reset: %v", err)
	}
}

func TestResetAllUnblocksReader(t *testing.T) {
	inj := NewInjector(1)
	a, _ := pipePair(t, inj)
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := a.Read(make([]byte, 1))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	inj.ResetAll()
	wg.Wait()
	if err := <-errCh; !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("blocked read after ResetAll: %v", err)
	}
}

func TestSchedulePhases(t *testing.T) {
	s := Schedule{
		{Start: 0, Duration: 100 * time.Millisecond, Faults: Faults{Latency: 1}},
		{Start: 100 * time.Millisecond, Duration: 100 * time.Millisecond, Faults: Faults{Latency: 2}},
		{Start: 300 * time.Millisecond, Faults: Faults{Latency: 3}},
	}
	cases := []struct {
		at   time.Duration
		want time.Duration
	}{
		{0, 1},
		{50 * time.Millisecond, 1},
		{150 * time.Millisecond, 2},
		{250 * time.Millisecond, 0}, // gap: transparent
		{500 * time.Millisecond, 3}, // open-ended tail phase
	}
	for _, c := range cases {
		if got := s.At(c.at).Latency; got != c.want {
			t.Errorf("At(%v).Latency = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(DirSend, Faults{Latency: 30 * time.Millisecond})
	ln, err := Listen("127.0.0.1:0", inj)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("pong"))
		c.Close()
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(cl, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("accepted conn not impaired: reply after %v", d)
	}
}

func TestLinkProfileOnSimnet(t *testing.T) {
	eng := simnet.NewEngine()
	link := simnet.NewLink(eng, "test", simnet.LinkConfig{
		BitsPerSec: 100e9, MTU: 9000, PacketOverhead: 78,
	})
	p := NewLinkProfile(42)
	p.Set(simnet.DirAtoB, Faults{Latency: time.Millisecond})
	link.SetFaults(p)

	var deliveredAt simnet.Time
	link.Send(simnet.DirAtoB, 4096, func() { deliveredAt = eng.Now() })
	eng.Run()
	if deliveredAt < simnet.Time(time.Millisecond) {
		t.Fatalf("fault latency not applied: delivered at %d", deliveredAt)
	}

	// Drops: message never delivers, stat counts it.
	p.Set(simnet.DirAtoB, Faults{DropProb: 1.0})
	delivered := false
	link.Send(simnet.DirAtoB, 4096, func() { delivered = true })
	eng.Run()
	if delivered {
		t.Fatal("dropped message was delivered")
	}
	if got := link.Stats(simnet.DirAtoB).Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

// TestLinkProfileDeterminism: same seed, same decisions.
func TestLinkProfileDeterminism(t *testing.T) {
	run := func() []bool {
		p := NewLinkProfile(99)
		p.Set(simnet.DirAtoB, Faults{DropProb: 0.5})
		out := make([]bool, 32)
		for i := range out {
			_, out[i] = p.Apply(simnet.DirAtoB, 0, 1024)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop decision %d diverged across identically seeded runs", i)
		}
	}
}
