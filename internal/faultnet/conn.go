package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is a net.Conn with faults injected on both directions. Wrap an
// existing connection with Wrap, or let a Listener wrap accepted ones.
//
// Conn applies, per operation and in order: chunking (MaxChunk), delay
// (Latency + Jitter + serialization at BandwidthBPS), the byte-count
// reset trigger, silent drops, and corruption. A reset — injected or
// triggered — closes the underlying connection so blocked peers unwedge,
// and every later operation returns ErrInjectedReset.
type Conn struct {
	inner  net.Conn
	inj    *Injector
	start  time.Time
	killed atomic.Bool

	// Per-direction serialization clocks for bandwidth pacing and byte
	// counters for ResetAfterBytes.
	mu        [2]sync.Mutex
	busyUntil [2]time.Time
	moved     [2]int64
}

// Wrap places c under the injector's fault policy.
func Wrap(c net.Conn, inj *Injector) *Conn {
	fc := &Conn{inner: c, inj: inj, start: time.Now()}
	inj.register(fc)
	return fc
}

// Reset forcibly kills the connection, as if the peer sent a RST: the
// underlying socket closes (unblocking any reader) and subsequent
// operations return ErrInjectedReset.
func (c *Conn) Reset() {
	if c.killed.CompareAndSwap(false, true) {
		c.inner.Close()
	}
}

// delay sleeps for the fault-induced latency of moving n bytes: the fixed
// Latency, a jitter draw, and serialization time against the direction's
// bandwidth clock.
func (c *Conn) delay(dir int, f Faults, n int) {
	d := f.Latency + c.inj.jitter(f.Jitter)
	if f.BandwidthBPS > 0 {
		tx := time.Duration(float64(n) / float64(f.BandwidthBPS) * float64(time.Second))
		c.mu[dir].Lock()
		now := time.Now()
		start := c.busyUntil[dir]
		if start.Before(now) {
			start = now
		}
		done := start.Add(tx)
		c.busyUntil[dir] = done
		c.mu[dir].Unlock()
		if wait := time.Until(done); wait > d {
			d = wait
		}
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// account adds n bytes to the direction counter and reports whether the
// ResetAfterBytes trigger fired.
func (c *Conn) account(dir int, f Faults, n int) bool {
	c.mu[dir].Lock()
	c.moved[dir] += int64(n)
	tripped := f.ResetAfterBytes > 0 && c.moved[dir] >= f.ResetAfterBytes
	c.mu[dir].Unlock()
	return tripped
}

// Write implements net.Conn. Chunks are paced, possibly dropped (reported
// as written without transmitting) or corrupted, and the reset trigger is
// honored mid-stream, so a PDU can be cut half-written — the torn-frame
// case the reader-side codec must survive.
func (c *Conn) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		if c.killed.Load() {
			return total, ErrInjectedReset
		}
		f := c.inj.faults(DirSend, time.Since(c.start))
		chunk := b
		if f.MaxChunk > 0 && len(chunk) > f.MaxChunk {
			chunk = chunk[:f.MaxChunk]
		}
		c.delay(DirSend, f, len(chunk))
		if c.account(DirSend, f, len(chunk)) {
			c.Reset()
			return total, ErrInjectedReset
		}
		if c.inj.roll(f.DropProb) {
			// Swallowed by the network: the writer believes it sent.
			total += len(chunk)
			b = b[len(chunk):]
			continue
		}
		out := chunk
		if len(chunk) > 0 && c.inj.roll(f.CorruptProb) {
			idx, mask := c.inj.corruptByte(len(chunk))
			out = make([]byte, len(chunk))
			copy(out, chunk)
			out[idx] ^= mask
		}
		n, err := c.inner.Write(out)
		total += n
		if err != nil {
			if c.killed.Load() {
				err = ErrInjectedReset
			}
			return total, err
		}
		b = b[len(chunk):]
	}
	return total, nil
}

// Read implements net.Conn. Received bytes are delayed, possibly
// corrupted, or dropped entirely (the read retries, so a dropped PDU
// looks like silence, not EOF).
func (c *Conn) Read(b []byte) (int, error) {
	for {
		if c.killed.Load() {
			return 0, ErrInjectedReset
		}
		f := c.inj.faults(DirRecv, time.Since(c.start))
		buf := b
		if f.MaxChunk > 0 && len(buf) > f.MaxChunk {
			buf = buf[:f.MaxChunk]
		}
		n, err := c.inner.Read(buf)
		if err != nil {
			if c.killed.Load() {
				err = ErrInjectedReset
			}
			return n, err
		}
		if n == 0 {
			continue
		}
		c.delay(DirRecv, f, n)
		if c.account(DirRecv, f, n) {
			c.Reset()
			return 0, ErrInjectedReset
		}
		if c.inj.roll(f.DropProb) {
			continue // bytes vanished in the fabric
		}
		if c.inj.roll(f.CorruptProb) {
			idx, mask := c.inj.corruptByte(n)
			buf[idx] ^= mask
		}
		return n, nil
	}
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.inj.unregister(c)
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// BytesMoved returns the cumulative payload bytes accounted in dir.
func (c *Conn) BytesMoved(dir int) int64 {
	c.mu[dir].Lock()
	defer c.mu[dir].Unlock()
	return c.moved[dir]
}

// Listener wraps a net.Listener so every accepted connection comes up
// under the injector's fault policy — the target-side counterpart of
// wrapping a dialer.
type Listener struct {
	inner net.Listener
	inj   *Injector
}

// WrapListener places ln under inj.
func WrapListener(ln net.Listener, inj *Injector) *Listener {
	return &Listener{inner: ln, inj: inj}
}

// Listen opens a TCP listener on addr with faults injected on every
// accepted connection.
func Listen(addr string, inj *Injector) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapListener(ln, inj), nil
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(c, l.inj), nil
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Injector returns the listener's injector.
func (l *Listener) Injector() *Injector { return l.inj }

// Dialer returns a dial function that wraps every outbound connection
// under inj — it plugs directly into tcptrans.DialConfig.Dialer.
func Dialer(inj *Injector) func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		c, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return Wrap(c, inj), nil
	}
}
