// Package faultnet injects transport faults — added latency, bandwidth
// caps, partial writes, connection resets, silent drops, and byte
// corruption — under any code that talks through a net.Conn, and exposes
// the same fault vocabulary to the discrete-event simulator's links.
//
// The package exists because the NVMe-oPF datapath's failure handling
// (request deadlines, session teardown, retry classification) is only
// trustworthy if it is exercised: NeVerMore-style protocol failures
// surface exclusively under adversarial transport conditions. Tests wrap
// a dialer or listener with an Injector and drive the real initiator and
// target state machines through the impaired pipe; the chaos harness in
// internal/tcptrans does exactly that under the race detector.
//
// Faults are described declaratively (Faults), optionally phased over the
// connection's lifetime (Schedule), and applied per direction: DirSend
// governs Writes, DirRecv governs Reads. All randomness is drawn from a
// seeded generator owned by the Injector, so a failing run can be
// reproduced from its seed.
package faultnet

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Directions of one wrapped connection, from the wrapping endpoint's
// point of view.
const (
	// DirSend impairs Write calls (bytes leaving this endpoint).
	DirSend = 0
	// DirRecv impairs Read calls (bytes arriving at this endpoint).
	DirRecv = 1
)

// ErrInjectedReset is returned by operations on a connection the injector
// has forcibly reset (Conn.Reset, Injector.ResetAll, or a
// Faults.ResetAfterBytes trigger). It deliberately mimics a peer RST: the
// datapath above must treat it exactly like a real connection failure.
var ErrInjectedReset = errors.New("faultnet: connection reset by injector")

// Faults describes the impairments applied to one direction of a
// connection. The zero value is a transparent pipe.
type Faults struct {
	// Latency is added to every operation before bytes move.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) on top of Latency.
	Jitter time.Duration
	// BandwidthBPS caps the direction's throughput in bytes per second by
	// pacing operations against a serialization clock (0 = unlimited).
	BandwidthBPS int64
	// MaxChunk caps how many bytes a single Read or Write moves,
	// forcing the short reads and partial writes real sockets produce
	// under memory pressure (0 = unlimited).
	MaxChunk int
	// DropProb silently discards an operation's payload with this
	// probability: writes report success without transmitting, reads
	// discard received bytes and keep reading. Dropped PDUs are how
	// half-written frames and lost completions are simulated.
	DropProb float64
	// CorruptProb flips one random byte of the payload with this
	// probability, exercising codec validation paths.
	CorruptProb float64
	// ResetAfterBytes forcibly resets the connection once this many
	// cumulative bytes have moved in this direction (0 = never). The
	// reset surfaces as ErrInjectedReset on both subsequent Reads and
	// Writes.
	ResetAfterBytes int64
}

// active reports whether any impairment is configured.
func (f Faults) active() bool { return f != Faults{} }

// Phase is one time window of a Schedule, relative to the moment the
// connection was wrapped.
type Phase struct {
	// Start is when the phase begins.
	Start time.Duration
	// Duration bounds the phase; 0 means it runs until a later phase
	// starts or forever.
	Duration time.Duration
	// Faults applied while the phase is active.
	Faults Faults
}

// Schedule is an ordered list of fault phases. At returns the faults of
// the last phase covering the elapsed time, so later phases override
// earlier ones; gaps fall back to a transparent pipe.
type Schedule []Phase

// At returns the faults in effect after elapsed time.
func (s Schedule) At(elapsed time.Duration) Faults {
	var out Faults
	for _, p := range s {
		if elapsed < p.Start {
			continue
		}
		if p.Duration > 0 && elapsed >= p.Start+p.Duration {
			continue
		}
		out = p.Faults
	}
	return out
}

// Injector owns the fault policy for a set of connections: static
// per-direction faults, optional per-direction schedules (which take
// precedence while a phase is active), a seeded random source, and the
// registry of live connections so tests can reset them all at once.
//
// All methods are safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	dirs   [2]Faults
	scheds [2]Schedule
	rng    *rand.Rand
	conns  map[*Conn]struct{}
}

// NewInjector creates an injector whose random decisions (drops,
// corruption, jitter) derive from seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[*Conn]struct{}),
	}
}

// Set installs static faults for one direction, replacing any schedule.
func (i *Injector) Set(dir int, f Faults) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.dirs[dir] = f
	i.scheds[dir] = nil
}

// SetSchedule installs a phased fault schedule for one direction; it
// overrides the static faults whenever a phase is active.
func (i *Injector) SetSchedule(dir int, s Schedule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.scheds[dir] = s
}

// Clear removes all faults and schedules in both directions.
func (i *Injector) Clear() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.dirs = [2]Faults{}
	i.scheds = [2]Schedule{}
}

// faults returns the impairments in effect for dir after elapsed time.
func (i *Injector) faults(dir int, elapsed time.Duration) Faults {
	i.mu.Lock()
	defer i.mu.Unlock()
	if s := i.scheds[dir]; len(s) > 0 {
		if f := s.At(elapsed); f.active() {
			return f
		}
	}
	return i.dirs[dir]
}

// roll returns true with probability p.
func (i *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64() < p
}

// jitter draws a uniform duration in [0, d).
func (i *Injector) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return time.Duration(i.rng.Int63n(int64(d)))
}

// corruptByte picks (index, xor-mask) for a payload of n bytes.
func (i *Injector) corruptByte(n int) (int, byte) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Intn(n), byte(1 + i.rng.Intn(255))
}

// register tracks a live connection.
func (i *Injector) register(c *Conn) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.conns[c] = struct{}{}
}

// unregister forgets a connection.
func (i *Injector) unregister(c *Conn) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.conns, c)
}

// Conns returns the live connections wrapped under this injector.
func (i *Injector) Conns() []*Conn {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]*Conn, 0, len(i.conns))
	for c := range i.conns {
		out = append(out, c)
	}
	return out
}

// ResetAll forcibly resets every live connection — the "pull the cable"
// event of a chaos run.
func (i *Injector) ResetAll() {
	for _, c := range i.Conns() {
		c.Reset()
	}
}
