package faultnet

import (
	"math/rand"
	"sync"
	"time"

	"nvmeopf/internal/simnet"
)

// LinkProfile adapts the faultnet fault vocabulary to the discrete-event
// simulator: attach one to a simnet.Link with SetFaults and the same
// Schedule that impairs a real TCP connection degrades a simulated one,
// on the virtual clock. Latency, Jitter, BandwidthBPS (as additional
// serialization delay on top of the link's own line rate), and DropProb
// are honored; MaxChunk, CorruptProb, and ResetAfterBytes have no
// simulator equivalent (the sim moves whole messages, not byte streams)
// and are ignored.
//
// LinkProfile is deterministic for a given seed, preserving the
// simulator's reproducibility guarantee.
type LinkProfile struct {
	mu     sync.Mutex
	dirs   [2]Faults
	scheds [2]Schedule
	rng    *rand.Rand
}

// NewLinkProfile creates a profile whose random decisions derive from
// seed.
func NewLinkProfile(seed int64) *LinkProfile {
	return &LinkProfile{rng: rand.New(rand.NewSource(seed))}
}

// Set installs static faults for one direction (simnet.DirAtoB or
// simnet.DirBtoA), replacing any schedule.
func (p *LinkProfile) Set(dir int, f Faults) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dirs[dir] = f
	p.scheds[dir] = nil
}

// SetSchedule installs a phased schedule for one direction; phases are
// evaluated against the virtual clock (Start/Duration in nanoseconds of
// simulated time).
func (p *LinkProfile) SetSchedule(dir int, s Schedule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.scheds[dir] = s
}

// Apply implements simnet.FaultProfile.
func (p *LinkProfile) Apply(dir int, now simnet.Time, size int) (simnet.Time, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.dirs[dir]
	if s := p.scheds[dir]; len(s) > 0 {
		if sf := s.At(time.Duration(now)); sf.active() {
			f = sf
		}
	}
	if !f.active() {
		return 0, false
	}
	if f.DropProb > 0 && p.rng.Float64() < f.DropProb {
		return 0, true
	}
	extra := simnet.Time(f.Latency)
	if f.Jitter > 0 {
		extra += simnet.Time(p.rng.Int63n(int64(f.Jitter)))
	}
	if f.BandwidthBPS > 0 {
		// Degraded-path serialization: the time the message would need at
		// the impaired rate, modeled as added one-way delay.
		extra += simnet.Time(float64(size) / float64(f.BandwidthBPS) * 1e9)
	}
	return extra, false
}
