package bdev

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemoryGeometryValidation(t *testing.T) {
	if _, err := NewMemory(0, 10); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewMemory(1000, 10); err == nil {
		t.Error("non-power-of-two block size accepted")
	}
	if _, err := NewMemory(512, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	m, err := NewMemory(512, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockSize() != 512 || m.NumBlocks() != 100 {
		t.Fatalf("geometry %d/%d", m.BlockSize(), m.NumBlocks())
	}
}

func TestMemoryReadUnwrittenIsZero(t *testing.T) {
	m, _ := NewMemory(512, 100)
	buf := bytes.Repeat([]byte{0xFF}, 1024)
	if err := m.ReadBlocks(buf, 10); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestMemoryReadAfterWrite(t *testing.T) {
	m, _ := NewMemory(512, 1000)
	w := make([]byte, 1536)
	for i := range w {
		w[i] = byte(i * 7)
	}
	if err := m.WriteBlocks(w, 42); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 1536)
	if err := m.ReadBlocks(r, 42); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("read-after-write mismatch")
	}
	// Partial overlap read.
	r2 := make([]byte, 512)
	if err := m.ReadBlocks(r2, 43); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r2, w[512:1024]) {
		t.Fatal("offset read mismatch")
	}
}

func TestMemoryRangeChecks(t *testing.T) {
	m, _ := NewMemory(512, 10)
	if err := m.ReadBlocks(make([]byte, 512), 10); err == nil {
		t.Error("read past end accepted")
	}
	if err := m.WriteBlocks(make([]byte, 1024), 9); err == nil {
		t.Error("write straddling end accepted")
	}
	if err := m.ReadBlocks(make([]byte, 100), 0); err == nil {
		t.Error("non-block-multiple buffer accepted")
	}
	if err := m.WriteBlocks(nil, 0); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestMemorySparse(t *testing.T) {
	m, _ := NewMemory(4096, 1<<30) // 4 TiB namespace
	if err := m.WriteBlocks(make([]byte, 4096), 1<<29); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBlocks(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if got := m.ExtentCount(); got != 2 {
		t.Fatalf("extent count = %d, want 2 (sparse)", got)
	}
}

func TestMemoryCrossExtentWrite(t *testing.T) {
	m, _ := NewMemory(512, 10_000)
	// Write spanning an extent boundary (extentBlocks = 256).
	w := make([]byte, 512*4)
	for i := range w {
		w[i] = byte(i)
	}
	if err := m.WriteBlocks(w, 254); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 512*4)
	if err := m.ReadBlocks(r, 254); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("cross-extent round trip mismatch")
	}
}

func TestMemoryConcurrent(t *testing.T) {
	m, _ := NewMemory(512, 4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := range buf {
				buf[i] = byte(g)
			}
			base := uint64(g * 512)
			for iter := 0; iter < 200; iter++ {
				lba := base + uint64(iter%512)
				if err := m.WriteBlocks(buf, lba); err != nil {
					t.Error(err)
					return
				}
				r := make([]byte, 512)
				if err := m.ReadBlocks(r, lba); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(r, buf) {
					t.Errorf("goroutine %d: corruption at lba %d", g, lba)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Property: a sequence of writes followed by reads behaves like a flat
// byte array (the model), for arbitrary small geometries and offsets.
func TestMemoryModelProperty(t *testing.T) {
	type op struct {
		LBA  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		const bs, nb = 512, 256
		m, _ := NewMemory(bs, nb)
		model := make([]byte, bs*nb)
		for _, o := range ops {
			lba := uint64(o.LBA) % nb
			nBlocks := len(o.Data)/bs + 1
			if uint64(nBlocks) > nb-lba {
				nBlocks = int(nb - lba)
			}
			if nBlocks == 0 {
				continue
			}
			buf := make([]byte, nBlocks*bs)
			copy(buf, o.Data)
			if err := m.WriteBlocks(buf, lba); err != nil {
				return false
			}
			copy(model[lba*bs:], buf)
		}
		got := make([]byte, bs*nb)
		if err := m.ReadBlocks(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := OpenFile(path, 512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.BlockSize() != 512 || d.NumBlocks() != 1024 {
		t.Fatal("geometry mismatch")
	}
	w := bytes.Repeat([]byte{0x5A}, 1024)
	if err := d.WriteBlocks(w, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 1024)
	if err := d.ReadBlocks(r, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("file round trip mismatch")
	}
	if err := d.ReadBlocks(make([]byte, 512), 1024); err == nil {
		t.Error("read past end accepted")
	}
}

func TestOpenFileValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "x"), 100, 10); err == nil {
		t.Error("bad block size accepted")
	}
	if _, err := OpenFile(filepath.Join(dir, "y"), 512, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := OpenFile(filepath.Join(dir, "nodir", "z"), 512, 10); err == nil {
		t.Error("unopenable path accepted")
	}
}
