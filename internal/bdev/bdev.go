// Package bdev provides the block-device abstraction the NVMe-oPF target
// exposes over fabrics, with an in-memory sparse implementation (the
// default backing store for simulations and tests) and a file-backed
// implementation (for the real-TCP target daemon).
package bdev

import (
	"fmt"
	"os"
	"sync"
)

// Device is a linear array of fixed-size logical blocks. Implementations
// must be safe for concurrent use: the TCP target serves multiple queue
// pairs from independent goroutines.
type Device interface {
	// BlockSize returns bytes per logical block.
	BlockSize() uint32
	// NumBlocks returns the device capacity in blocks.
	NumBlocks() uint64
	// ReadBlocks fills buf (len must be a multiple of BlockSize) from
	// blocks starting at lba. Unwritten blocks read as zeros.
	ReadBlocks(buf []byte, lba uint64) error
	// WriteBlocks stores buf (len must be a multiple of BlockSize) to
	// blocks starting at lba.
	WriteBlocks(buf []byte, lba uint64) error
	// Flush persists outstanding writes.
	Flush() error
}

// checkRange validates an access against device geometry.
func checkRange(d Device, buf []byte, lba uint64) (blocks uint64, err error) {
	bs := uint64(d.BlockSize())
	if uint64(len(buf))%bs != 0 || len(buf) == 0 {
		return 0, fmt.Errorf("bdev: buffer %d bytes is not a positive multiple of block size %d", len(buf), bs)
	}
	blocks = uint64(len(buf)) / bs
	if lba >= d.NumBlocks() || blocks > d.NumBlocks()-lba {
		return 0, fmt.Errorf("bdev: access [%d, %d) beyond capacity %d", lba, lba+blocks, d.NumBlocks())
	}
	return blocks, nil
}

// Memory is a sparse in-memory Device. Blocks are materialized in
// fixed-size extents on first write, so multi-terabyte namespaces cost
// memory proportional to the touched footprint only.
type Memory struct {
	blockSize uint32
	numBlocks uint64

	mu      sync.RWMutex
	extents map[uint64][]byte // extent index -> extentBlocks*blockSize bytes
}

// extentBlocks is the number of blocks per sparse extent.
const extentBlocks = 256

// NewMemory creates a sparse in-memory device.
func NewMemory(blockSize uint32, numBlocks uint64) (*Memory, error) {
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("bdev: block size %d is not a power of two", blockSize)
	}
	if numBlocks == 0 {
		return nil, fmt.Errorf("bdev: zero capacity")
	}
	return &Memory{
		blockSize: blockSize,
		numBlocks: numBlocks,
		extents:   make(map[uint64][]byte),
	}, nil
}

// BlockSize implements Device.
func (m *Memory) BlockSize() uint32 { return m.blockSize }

// NumBlocks implements Device.
func (m *Memory) NumBlocks() uint64 { return m.numBlocks }

// ReadBlocks implements Device.
func (m *Memory) ReadBlocks(buf []byte, lba uint64) error {
	blocks, err := checkRange(m, buf, lba)
	if err != nil {
		return err
	}
	bs := uint64(m.blockSize)
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := uint64(0); i < blocks; i++ {
		blk := lba + i
		ext, off := blk/extentBlocks, (blk%extentBlocks)*bs
		dst := buf[i*bs : (i+1)*bs]
		if e, ok := m.extents[ext]; ok {
			copy(dst, e[off:off+bs])
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	return nil
}

// WriteBlocks implements Device.
func (m *Memory) WriteBlocks(buf []byte, lba uint64) error {
	blocks, err := checkRange(m, buf, lba)
	if err != nil {
		return err
	}
	bs := uint64(m.blockSize)
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := uint64(0); i < blocks; i++ {
		blk := lba + i
		ext, off := blk/extentBlocks, (blk%extentBlocks)*bs
		e, ok := m.extents[ext]
		if !ok {
			e = make([]byte, extentBlocks*bs)
			m.extents[ext] = e
		}
		copy(e[off:off+bs], buf[i*bs:(i+1)*bs])
	}
	return nil
}

// Flush implements Device (no-op for memory).
func (m *Memory) Flush() error { return nil }

// ExtentCount returns the number of materialized extents (test hook for
// the sparseness property).
func (m *Memory) ExtentCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.extents)
}

// File is a Device backed by an *os.File (or any ReaderAt/WriterAt with
// the same geometry), used by the real-TCP target daemon.
type File struct {
	blockSize uint32
	numBlocks uint64
	f         *os.File
	mu        sync.Mutex // serialize WriteAt/ReadAt pairs for sparse files
}

// OpenFile creates or opens a file-backed device of the given geometry,
// truncating/extending the file to capacity.
func OpenFile(path string, blockSize uint32, numBlocks uint64) (*File, error) {
	if blockSize == 0 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("bdev: block size %d is not a power of two", blockSize)
	}
	if numBlocks == 0 {
		return nil, fmt.Errorf("bdev: zero capacity")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(blockSize) * int64(numBlocks)); err != nil {
		f.Close()
		return nil, err
	}
	return &File{blockSize: blockSize, numBlocks: numBlocks, f: f}, nil
}

// BlockSize implements Device.
func (d *File) BlockSize() uint32 { return d.blockSize }

// NumBlocks implements Device.
func (d *File) NumBlocks() uint64 { return d.numBlocks }

// ReadBlocks implements Device.
func (d *File) ReadBlocks(buf []byte, lba uint64) error {
	if _, err := checkRange(d, buf, lba); err != nil {
		return err
	}
	_, err := d.f.ReadAt(buf, int64(lba)*int64(d.blockSize))
	return err
}

// WriteBlocks implements Device.
func (d *File) WriteBlocks(buf []byte, lba uint64) error {
	if _, err := checkRange(d, buf, lba); err != nil {
		return err
	}
	_, err := d.f.WriteAt(buf, int64(lba)*int64(d.blockSize))
	return err
}

// Flush implements Device.
func (d *File) Flush() error { return d.f.Sync() }

// Close closes the underlying file.
func (d *File) Close() error { return d.f.Close() }
