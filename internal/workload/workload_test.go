package workload

import (
	"testing"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
)

// loopback wires a host session to an in-process oPF target with an
// immediate-completion backend and a manually advanced clock.
type loopback struct {
	host  *hostqp.Session
	clock int64
}

type instantBackend struct {
	ns    nvme.Namespace
	store *bdev.Memory
}

func (b *instantBackend) Namespace() nvme.Namespace { return b.ns }
func (b *instantBackend) Submit(cmd nvme.Command, data []byte, high bool, done func(nvme.Completion, []byte)) {
	cpl := nvme.Completion{CID: cmd.CID, Status: b.ns.CheckRange(cmd.SLBA, cmd.Blocks())}
	var out []byte
	if cpl.Status.OK() {
		switch cmd.Opcode {
		case nvme.OpRead:
			out = make([]byte, b.ns.Bytes(cmd.Blocks()))
			_ = b.store.ReadBlocks(out, cmd.SLBA)
		case nvme.OpWrite:
			_ = b.store.WriteBlocks(data, cmd.SLBA)
		}
	}
	done(cpl, out)
}

func newLoopback(t *testing.T, class proto.Priority, window, qd int) *loopback {
	t.Helper()
	ns := nvme.Namespace{ID: 1, BlockSize: 4096, Capacity: 1 << 20}
	store, err := bdev.NewMemory(ns.BlockSize, ns.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := targetqp.NewTarget(targetqp.Config{Mode: targetqp.ModeOPF, MaxPending: 1024},
		&instantBackend{ns: ns, store: store})
	if err != nil {
		t.Fatal(err)
	}
	lb := &loopback{}
	var tsess *targetqp.Session
	tsess, err = tgt.NewSession(func(p proto.PDU) {
		if herr := lb.host.HandlePDU(p); herr != nil {
			t.Fatalf("host: %v", herr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	lb.host, err = hostqp.New(hostqp.Config{Class: class, Window: window, QueueDepth: qd, NSID: 1},
		func(p proto.PDU) {
			lb.clock += 1000 // 1us per PDU hop: latency accrues
			if terr := tsess.HandlePDU(p); terr != nil {
				t.Fatalf("target: %v", terr)
			}
		},
		func() int64 { return lb.clock },
	)
	if err != nil {
		t.Fatal(err)
	}
	lb.host.Start()
	return lb
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Mix: ReadOnly, Blocks: 1, QueueDepth: 4, RegionBlocks: 100, StopAt: 10, WarmupUntil: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Blocks: 1, QueueDepth: 0, RegionBlocks: 10, StopAt: 10},
		{Blocks: 0, QueueDepth: 1, RegionBlocks: 10, StopAt: 10},
		{Blocks: 4, QueueDepth: 1, RegionBlocks: 2, StopAt: 10},
		{Blocks: 1, QueueDepth: 1, RegionBlocks: 10, StopAt: 0, WarmupUntil: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMixString(t *testing.T) {
	for _, m := range []Mix{ReadOnly, WriteOnly, Mixed5050, Mix(9)} {
		if m.String() == "" {
			t.Errorf("empty string for mix %d", int(m))
		}
	}
}

func TestClosedLoopCompletesAndRecords(t *testing.T) {
	lb := newLoopback(t, proto.PrioThroughputCritical, 4, 16)
	r, err := NewRunner(lb.host, func() int64 { return lb.clock }, Spec{
		Mix: WriteOnly, Pattern: Sequential, Blocks: 1, QueueDepth: 16,
		RegionStart: 0, RegionBlocks: 4096,
		WarmupUntil: 0, StopAt: 2_000_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	// The loopback is synchronous: Start drives the whole run to
	// completion because each completion immediately submits the next.
	res := r.Result()
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Submitted != res.Completed {
		t.Fatalf("submitted %d != completed %d after drain", res.Submitted, res.Completed)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// Tail-window requests complete after StopAt and are excluded from
	// the measurement window; everything else is recorded.
	if res.Recorded.Ops > res.Completed || res.Recorded.Ops < res.Completed-16 {
		t.Fatalf("recorded %d vs completed %d with zero warmup", res.Recorded.Ops, res.Completed)
	}
	if res.Recorded.Bytes != res.Recorded.Ops*4096 {
		t.Fatalf("bytes accounting wrong: %d", res.Recorded.Bytes)
	}
	if res.Latency.Count() != res.Recorded.Ops { // histogram matches recorded set
		t.Fatalf("latency samples %d != ops %d", res.Latency.Count(), res.Recorded.Ops)
	}
	if !r.Done() {
		t.Fatal("runner not done after StopAt")
	}
}

func TestWarmupExcludesEarlyCompletions(t *testing.T) {
	lb := newLoopback(t, proto.PrioThroughputCritical, 1, 4)
	r, err := NewRunner(lb.host, func() int64 { return lb.clock }, Spec{
		Mix: ReadOnly, Pattern: Sequential, Blocks: 1, QueueDepth: 4,
		RegionStart: 0, RegionBlocks: 4096,
		WarmupUntil: 500_000, StopAt: 1_000_000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	res := r.Result()
	if res.Completed <= res.Recorded.Ops {
		t.Fatalf("warmup excluded nothing: completed %d recorded %d", res.Completed, res.Recorded.Ops)
	}
}

func TestSequentialAddressesWrapWithinRegion(t *testing.T) {
	lb := newLoopback(t, proto.PrioThroughputCritical, 1, 1)
	spec := Spec{
		Mix: WriteOnly, Pattern: Sequential, Blocks: 1, QueueDepth: 1,
		RegionStart: 100, RegionBlocks: 8,
		WarmupUntil: 0, StopAt: 100_000, Seed: 1,
	}
	r, err := NewRunner(lb.host, func() int64 { return lb.clock }, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Drive pickLBA directly for determinism.
	seen := map[uint64]bool{}
	for i := 0; i < 32; i++ {
		lba := r.pickLBA()
		if lba < 100 || lba >= 108 {
			t.Fatalf("LBA %d outside region", lba)
		}
		seen[lba] = true
	}
	if len(seen) < 7 {
		t.Fatalf("sequential pattern covered only %d slots", len(seen))
	}
}

func TestRandomAddressesStayInRegion(t *testing.T) {
	lb := newLoopback(t, proto.PrioThroughputCritical, 1, 1)
	r, err := NewRunner(lb.host, func() int64 { return lb.clock }, Spec{
		Mix: ReadOnly, Pattern: Random, Blocks: 4, QueueDepth: 1,
		RegionStart: 64, RegionBlocks: 64,
		WarmupUntil: 0, StopAt: 100_000, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		lba := r.pickLBA()
		if lba < 64 || lba+4 > 128 {
			t.Fatalf("random LBA %d violates region", lba)
		}
		if (lba-64)%4 != 0 {
			t.Fatalf("random LBA %d not IO-aligned", lba)
		}
	}
}

func TestMixedProducesBothOps(t *testing.T) {
	lb := newLoopback(t, proto.PrioThroughputCritical, 1, 1)
	r, err := NewRunner(lb.host, func() int64 { return lb.clock }, Spec{
		Mix: Mixed5050, Pattern: Sequential, Blocks: 1, QueueDepth: 1,
		RegionStart: 0, RegionBlocks: 4096,
		WarmupUntil: 0, StopAt: 100_000, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := 0, 0
	for i := 0; i < 1000; i++ {
		if r.pickOp() == nvme.OpRead {
			reads++
		} else {
			writes++
		}
	}
	if reads < 400 || writes < 400 {
		t.Fatalf("mix skewed: %d reads, %d writes", reads, writes)
	}
}

func TestUniqueBuffersGiveDistinctData(t *testing.T) {
	lb := newLoopback(t, proto.PrioThroughputCritical, 1, 2)
	r, err := NewRunner(lb.host, func() int64 { return lb.clock }, Spec{
		Mix: WriteOnly, Pattern: Sequential, Blocks: 1, QueueDepth: 2,
		RegionStart: 0, RegionBlocks: 4096,
		WarmupUntil: 0, StopAt: 50_000, Seed: 5, UniqueBuffers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	if r.Result().Errors != 0 {
		t.Fatalf("errors: %d", r.Result().Errors)
	}
}
