// Package workload reimplements SPDK's perf benchmark methodology for this
// runtime: closed-loop generators that keep a fixed queue depth of 4 KiB
// (by default) requests outstanding per initiator, with sequential or
// random addressing and read/write/mixed operation mixes, measuring
// throughput and a latency histogram after a warmup period (§V:
// "SPDK's perf ... sending 4K sequential I/O requests for read, write,
// and mixed").
package workload

import (
	"fmt"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/simnet"
	"nvmeopf/internal/stats"
)

// Mix selects the operation mix.
type Mix int

// Mixes. Mixed5050 alternates via a seeded PRNG at 50% reads, matching the
// paper's "mixed 50:50 read/write".
const (
	ReadOnly Mix = iota
	WriteOnly
	Mixed5050
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	switch m {
	case ReadOnly:
		return "read"
	case WriteOnly:
		return "write"
	case Mixed5050:
		return "mixed50"
	default:
		return fmt.Sprintf("Mix(%d)", int(m))
	}
}

// Pattern selects the LBA pattern.
type Pattern int

// Patterns.
const (
	Sequential Pattern = iota
	Random
)

// Spec describes one initiator's workload.
type Spec struct {
	Mix     Mix
	Pattern Pattern
	// Blocks per I/O (1 block = 4 KiB on the default namespace).
	Blocks uint32
	// QueueDepth to hold open (TC initiators use 128, LS use 1 in §V-A).
	QueueDepth int
	// RegionStart/RegionBlocks delimit this initiator's LBA slice so
	// concurrent tenants do not overlap.
	RegionStart, RegionBlocks uint64
	// WarmupUntil / StopAt are virtual-clock bounds: completions inside
	// [WarmupUntil, StopAt] are recorded; submission stops at StopAt.
	WarmupUntil, StopAt int64
	// StartAt delays the first submission until the virtual clock reaches
	// it (0: submit as soon as the session connects). Phased experiments
	// use it to switch a tenant on mid-run; pair it with a scheduled
	// Kick, since a connected-but-idle session has no completion to
	// re-enter the loop from.
	StartAt int64
	// SLOObjectiveNS, when positive, counts every recorded completion
	// against a latency objective: Result.SLOGood/SLOBad accumulate
	// exact (unbucketed) within/over-objective counts for end-to-end
	// burn-rate math.
	SLOObjectiveNS int64
	// Defer, when set, schedules a callback d nanoseconds ahead on the
	// driving clock (experiments wire it to the sim engine). With Defer
	// set, a busy rejection from target admission control switches the
	// loop to slow-start probing: one command per BusyBackoffNS tick while
	// the valve stays shut, doubling per successful tick once admissions
	// resume. Blind closed-loop refills against an admission cap are a
	// reject storm — queue-depth-sized command bursts every backoff period
	// that occupy the target poller and pollute its latency telemetry.
	Defer func(d int64, fn func())
	// BusyBackoffNS is the probe interval after a busy rejection (default
	// 200µs). Only meaningful with Defer set.
	BusyBackoffNS int64
	// Seed for the op-mix / random-address stream.
	Seed uint64
	// UniqueBuffers allocates a fresh write payload per request (needed
	// when the target stores data); timing-only runs share one buffer.
	UniqueBuffers bool
	// BlockSize is the namespace block size in bytes (default 4096).
	BlockSize uint32
}

// Result accumulates a runner's measurements.
type Result struct {
	Recorded  stats.Counter   // ops/bytes completed inside the window
	Latency   stats.Histogram // per-request latency, recorded window only
	Submitted int64
	Completed int64
	Errors    int64
	// Busy counts target admission pushback (retried after backoff when
	// Spec.Defer is set; those retries are not errors).
	Busy int64
	// SLOGood/SLOBad count recorded completions within/over
	// Spec.SLOObjectiveNS (both zero when no objective is set). Exact
	// counts, not histogram-bucket approximations.
	SLOGood int64
	SLOBad  int64
}

// SLOBurn returns the end-to-end error-budget burn rate against a
// compliance target expressed as violations-per-million (e.g. 1000 for
// 99.9%): observed violation fraction over budget fraction. -1 when
// nothing was recorded against an objective.
func (r *Result) SLOBurn(budgetPPM int64) float64 {
	total := r.SLOGood + r.SLOBad
	if total <= 0 || budgetPPM <= 0 {
		return -1
	}
	return (float64(r.SLOBad) / float64(total)) / (float64(budgetPPM) / 1e6)
}

// MeasuredNanos returns the measurement window length.
func (s Spec) MeasuredNanos() int64 { return s.StopAt - s.WarmupUntil }

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.QueueDepth < 1 {
		return fmt.Errorf("workload: queue depth %d", s.QueueDepth)
	}
	if s.Blocks < 1 {
		return fmt.Errorf("workload: %d blocks per IO", s.Blocks)
	}
	if s.RegionBlocks < uint64(s.Blocks) {
		return fmt.Errorf("workload: region %d blocks < IO size %d", s.RegionBlocks, s.Blocks)
	}
	if s.StopAt <= s.WarmupUntil {
		return fmt.Errorf("workload: empty measurement window")
	}
	return nil
}

// Runner drives one initiator session closed-loop. All callbacks run on
// the session's event context (the simulator loop); Runner is therefore
// not synchronized.
type Runner struct {
	sess    *hostqp.Session
	clock   func() int64
	spec    Spec
	rng     *simnet.Rand
	nextLBA uint64
	buf     []byte
	res     Result
	done    bool
	flushed bool
	backoff bool // a probe tick is armed
	probe   int  // slow-start refill budget per tick
}

// NewRunner prepares a runner over a connected (or connecting) session.
func NewRunner(sess *hostqp.Session, clock func() int64, spec Spec) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.BlockSize == 0 {
		spec.BlockSize = 4096
	}
	r := &Runner{
		sess:    sess,
		clock:   clock,
		spec:    spec,
		rng:     simnet.NewRand(spec.Seed),
		nextLBA: spec.RegionStart,
	}
	if !spec.UniqueBuffers {
		r.buf = make([]byte, int(spec.Blocks)*int(spec.BlockSize))
	}
	return r, nil
}

// Start begins submitting once the session connects (and, with StartAt
// set, once the clock reaches it — schedule a Kick at StartAt).
func (r *Runner) Start() {
	r.sess.OnConnect(func() { r.fill() })
}

// Kick (re)fills the queue now. Phased experiments schedule it at
// Spec.StartAt; idempotent and harmless on an already-full runner.
func (r *Runner) Kick() { r.fill() }

// fill tops the closed loop up to the queue depth.
func (r *Runner) fill() {
	if r.clock() < r.spec.StartAt {
		return
	}
	for i := 0; i < r.spec.QueueDepth && r.sess.CanSubmit(); i++ {
		if !r.submitOne() {
			break
		}
	}
}

// Result returns the measurements so far.
func (r *Runner) Result() *Result { return &r.res }

// Done reports whether the runner has stopped submitting and drained.
func (r *Runner) Done() bool { return r.done && r.sess.Outstanding() == 0 }

// pickOp draws the next opcode from the mix.
func (r *Runner) pickOp() nvme.Opcode {
	switch r.spec.Mix {
	case ReadOnly:
		return nvme.OpRead
	case WriteOnly:
		return nvme.OpWrite
	default:
		if r.rng.Uint64()&1 == 0 {
			return nvme.OpRead
		}
		return nvme.OpWrite
	}
}

// pickLBA draws the next starting LBA.
func (r *Runner) pickLBA() uint64 {
	n := uint64(r.spec.Blocks)
	if r.spec.Pattern == Random {
		slots := r.spec.RegionBlocks / n
		return r.spec.RegionStart + uint64(r.rng.Int63n(int64(slots)))*n
	}
	lba := r.nextLBA
	r.nextLBA += n
	if r.nextLBA+n > r.spec.RegionStart+r.spec.RegionBlocks {
		r.nextLBA = r.spec.RegionStart
	}
	return lba
}

// submitOne issues the next request; returns false once past StopAt.
func (r *Runner) submitOne() bool {
	now := r.clock()
	if now >= r.spec.StopAt {
		r.done = true
		r.flushTail()
		return false
	}
	op := r.pickOp()
	var data []byte
	if op == nvme.OpWrite {
		if r.spec.UniqueBuffers {
			data = make([]byte, int(r.spec.Blocks)*int(r.spec.BlockSize))
			for i := range data {
				data[i] = byte(r.rng.Uint64())
			}
		} else {
			data = r.buf
		}
	}
	err := r.sess.Submit(hostqp.IO{
		Op:     op,
		LBA:    r.pickLBA(),
		Blocks: r.spec.Blocks,
		Data:   data,
		Done:   r.onDone,
	})
	if err != nil {
		// Queue full or disconnected; closed loop retries on the next
		// completion, so just account it.
		return false
	}
	r.res.Submitted++
	return true
}

// flushTail sends one final draining request so a partial TC window left
// at StopAt still completes (its requests would otherwise wait in the
// target queue forever). The flush command itself is not recorded.
func (r *Runner) flushTail() {
	if r.flushed || r.sess.Outstanding() == 0 || !r.sess.CanSubmit() {
		return
	}
	r.sess.Flush()
	err := r.sess.Submit(hostqp.IO{
		Op:   nvme.OpFlush,
		Done: func(hostqp.Result) {},
	})
	if err == nil {
		r.flushed = true
	}
}

// armProbe schedules one slow-start refill tick: submit `probe` commands,
// double the budget, and re-arm while the loop is below its depth. Busy
// completions reset the budget to one, so a shut valve costs a single
// probe command per tick while an opened one refills exponentially.
func (r *Runner) armProbe() {
	if r.backoff || r.done {
		return
	}
	r.backoff = true
	d := r.spec.BusyBackoffNS
	if d <= 0 {
		d = 200_000
	}
	r.spec.Defer(d, func() {
		r.backoff = false
		if r.done || r.clock() < r.spec.StartAt {
			return
		}
		for i := 0; i < r.probe && r.sess.CanSubmit(); i++ {
			if !r.submitOne() {
				return
			}
		}
		if r.probe < r.spec.QueueDepth {
			r.probe *= 2
		}
		if r.sess.CanSubmit() {
			r.armProbe()
		}
	})
}

// onDone records a completion and keeps the loop closed.
func (r *Runner) onDone(res hostqp.Result) {
	r.res.Completed++
	if res.Status == nvme.StatusBusy && r.spec.Defer != nil {
		// Admission pushback is flow control, not a failure: the command
		// never executed. Collapse to a single probe per tick and let the
		// probe timer rediscover the admissible depth.
		r.res.Busy++
		r.probe = 1
		r.armProbe()
		return
	}
	if !res.Status.OK() {
		r.res.Errors++
	}
	if res.CompletedAt >= r.spec.WarmupUntil && res.CompletedAt <= r.spec.StopAt && res.Status.OK() {
		bytes := int64(r.spec.Blocks) * int64(r.spec.BlockSize)
		r.res.Recorded.Add(1, bytes)
		r.res.Latency.Record(res.Latency())
		if obj := r.spec.SLOObjectiveNS; obj > 0 {
			if res.Latency() > obj {
				r.res.SLOBad++
			} else {
				r.res.SLOGood++
			}
		}
	}
	r.submitOne()
}
