// Package workload reimplements SPDK's perf benchmark methodology for this
// runtime: closed-loop generators that keep a fixed queue depth of 4 KiB
// (by default) requests outstanding per initiator, with sequential or
// random addressing and read/write/mixed operation mixes, measuring
// throughput and a latency histogram after a warmup period (§V:
// "SPDK's perf ... sending 4K sequential I/O requests for read, write,
// and mixed").
package workload

import (
	"fmt"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/simnet"
	"nvmeopf/internal/stats"
)

// Mix selects the operation mix.
type Mix int

// Mixes. Mixed5050 alternates via a seeded PRNG at 50% reads, matching the
// paper's "mixed 50:50 read/write".
const (
	ReadOnly Mix = iota
	WriteOnly
	Mixed5050
)

// String implements fmt.Stringer.
func (m Mix) String() string {
	switch m {
	case ReadOnly:
		return "read"
	case WriteOnly:
		return "write"
	case Mixed5050:
		return "mixed50"
	default:
		return fmt.Sprintf("Mix(%d)", int(m))
	}
}

// Pattern selects the LBA pattern.
type Pattern int

// Patterns.
const (
	Sequential Pattern = iota
	Random
)

// Spec describes one initiator's workload.
type Spec struct {
	Mix     Mix
	Pattern Pattern
	// Blocks per I/O (1 block = 4 KiB on the default namespace).
	Blocks uint32
	// QueueDepth to hold open (TC initiators use 128, LS use 1 in §V-A).
	QueueDepth int
	// RegionStart/RegionBlocks delimit this initiator's LBA slice so
	// concurrent tenants do not overlap.
	RegionStart, RegionBlocks uint64
	// WarmupUntil / StopAt are virtual-clock bounds: completions inside
	// [WarmupUntil, StopAt] are recorded; submission stops at StopAt.
	WarmupUntil, StopAt int64
	// Seed for the op-mix / random-address stream.
	Seed uint64
	// UniqueBuffers allocates a fresh write payload per request (needed
	// when the target stores data); timing-only runs share one buffer.
	UniqueBuffers bool
	// BlockSize is the namespace block size in bytes (default 4096).
	BlockSize uint32
}

// Result accumulates a runner's measurements.
type Result struct {
	Recorded  stats.Counter   // ops/bytes completed inside the window
	Latency   stats.Histogram // per-request latency, recorded window only
	Submitted int64
	Completed int64
	Errors    int64
}

// MeasuredNanos returns the measurement window length.
func (s Spec) MeasuredNanos() int64 { return s.StopAt - s.WarmupUntil }

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.QueueDepth < 1 {
		return fmt.Errorf("workload: queue depth %d", s.QueueDepth)
	}
	if s.Blocks < 1 {
		return fmt.Errorf("workload: %d blocks per IO", s.Blocks)
	}
	if s.RegionBlocks < uint64(s.Blocks) {
		return fmt.Errorf("workload: region %d blocks < IO size %d", s.RegionBlocks, s.Blocks)
	}
	if s.StopAt <= s.WarmupUntil {
		return fmt.Errorf("workload: empty measurement window")
	}
	return nil
}

// Runner drives one initiator session closed-loop. All callbacks run on
// the session's event context (the simulator loop); Runner is therefore
// not synchronized.
type Runner struct {
	sess    *hostqp.Session
	clock   func() int64
	spec    Spec
	rng     *simnet.Rand
	nextLBA uint64
	buf     []byte
	res     Result
	done    bool
	flushed bool
}

// NewRunner prepares a runner over a connected (or connecting) session.
func NewRunner(sess *hostqp.Session, clock func() int64, spec Spec) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.BlockSize == 0 {
		spec.BlockSize = 4096
	}
	r := &Runner{
		sess:    sess,
		clock:   clock,
		spec:    spec,
		rng:     simnet.NewRand(spec.Seed),
		nextLBA: spec.RegionStart,
	}
	if !spec.UniqueBuffers {
		r.buf = make([]byte, int(spec.Blocks)*int(spec.BlockSize))
	}
	return r, nil
}

// Start begins submitting once the session connects.
func (r *Runner) Start() {
	r.sess.OnConnect(func() {
		for i := 0; i < r.spec.QueueDepth && r.sess.CanSubmit(); i++ {
			if !r.submitOne() {
				break
			}
		}
	})
}

// Result returns the measurements so far.
func (r *Runner) Result() *Result { return &r.res }

// Done reports whether the runner has stopped submitting and drained.
func (r *Runner) Done() bool { return r.done && r.sess.Outstanding() == 0 }

// pickOp draws the next opcode from the mix.
func (r *Runner) pickOp() nvme.Opcode {
	switch r.spec.Mix {
	case ReadOnly:
		return nvme.OpRead
	case WriteOnly:
		return nvme.OpWrite
	default:
		if r.rng.Uint64()&1 == 0 {
			return nvme.OpRead
		}
		return nvme.OpWrite
	}
}

// pickLBA draws the next starting LBA.
func (r *Runner) pickLBA() uint64 {
	n := uint64(r.spec.Blocks)
	if r.spec.Pattern == Random {
		slots := r.spec.RegionBlocks / n
		return r.spec.RegionStart + uint64(r.rng.Int63n(int64(slots)))*n
	}
	lba := r.nextLBA
	r.nextLBA += n
	if r.nextLBA+n > r.spec.RegionStart+r.spec.RegionBlocks {
		r.nextLBA = r.spec.RegionStart
	}
	return lba
}

// submitOne issues the next request; returns false once past StopAt.
func (r *Runner) submitOne() bool {
	now := r.clock()
	if now >= r.spec.StopAt {
		r.done = true
		r.flushTail()
		return false
	}
	op := r.pickOp()
	var data []byte
	if op == nvme.OpWrite {
		if r.spec.UniqueBuffers {
			data = make([]byte, int(r.spec.Blocks)*int(r.spec.BlockSize))
			for i := range data {
				data[i] = byte(r.rng.Uint64())
			}
		} else {
			data = r.buf
		}
	}
	err := r.sess.Submit(hostqp.IO{
		Op:     op,
		LBA:    r.pickLBA(),
		Blocks: r.spec.Blocks,
		Data:   data,
		Done:   r.onDone,
	})
	if err != nil {
		// Queue full or disconnected; closed loop retries on the next
		// completion, so just account it.
		return false
	}
	r.res.Submitted++
	return true
}

// flushTail sends one final draining request so a partial TC window left
// at StopAt still completes (its requests would otherwise wait in the
// target queue forever). The flush command itself is not recorded.
func (r *Runner) flushTail() {
	if r.flushed || r.sess.Outstanding() == 0 || !r.sess.CanSubmit() {
		return
	}
	r.sess.Flush()
	err := r.sess.Submit(hostqp.IO{
		Op:   nvme.OpFlush,
		Done: func(hostqp.Result) {},
	})
	if err == nil {
		r.flushed = true
	}
}

// onDone records a completion and keeps the loop closed.
func (r *Runner) onDone(res hostqp.Result) {
	r.res.Completed++
	if !res.Status.OK() {
		r.res.Errors++
	}
	if res.CompletedAt >= r.spec.WarmupUntil && res.CompletedAt <= r.spec.StopAt && res.Status.OK() {
		bytes := int64(r.spec.Blocks) * int64(r.spec.BlockSize)
		r.res.Recorded.Add(1, bytes)
		r.res.Latency.Record(res.Latency())
	}
	r.submitOne()
}
