package autotune

import (
	"testing"

	"nvmeopf/internal/core"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// fakeClock is a hand-advanced nanosecond clock.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { return c.t }

// fakeAct records the controller's actuations per tenant.
type fakeAct struct {
	wins map[proto.TenantID]int
	caps map[proto.TenantID]int
}

func newFakeAct() *fakeAct {
	return &fakeAct{wins: map[proto.TenantID]int{}, caps: map[proto.TenantID]int{}}
}
func (a *fakeAct) SetTenantWindow(t proto.TenantID, w int) { a.wins[t] = w }
func (a *fakeAct) SetTenantCap(t proto.TenantID, c int)    { a.caps[t] = c }

// testController builds a controller with tight, test-friendly constants:
// objective 1µs, 10% error budget (burn = violFrac/0.1), window 1..16,
// grow +4, decide every drain, verdicts from 4 samples.
func testController(t *testing.T, mutate func(*Config)) (*Controller, *fakeAct, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	cfg := Config{
		ObjectiveNS:    1000,
		BudgetPPM:      100_000,
		MinWindow:      1,
		MaxWindow:      16,
		GrowStep:       4,
		CooldownDrains: 1,
		MinSamples:     4,
		Clock:          clk.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	act := newFakeAct()
	c.Bind(act)
	return c, act, clk
}

// observe feeds good samples at half the objective and bad at double it.
func observe(c *Controller, good, bad int) {
	for i := 0; i < good; i++ {
		c.ObserveLS(500)
	}
	for i := 0; i < bad; i++ {
		c.ObserveLS(2000)
	}
}

// drain feeds n drain completions of the given achieved batch size.
func drain(c *Controller, tenant proto.TenantID, n, window int) {
	for i := 0; i < n; i++ {
		c.OnDrainComplete(core.DrainCompletion{Tenant: tenant, Window: window})
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for zero objective")
	}
	if _, err := New(Config{ObjectiveNS: 1000, MinWindow: 8, MaxWindow: 4}); err == nil {
		t.Fatal("want error for min > max")
	}
	c, err := New(Config{ObjectiveNS: 1000})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Signal() == nil {
		t.Fatal("want a private signal by default")
	}
}

func TestColdStartHoldsStaticBounds(t *testing.T) {
	c, act, _ := testController(t, nil)
	// First drain primes; second decides with zero interval samples.
	drain(c, 7, 2, 16)
	if w := c.WindowFor(7); w != 16 {
		t.Fatalf("cold window = %d, want the static bound 16", w)
	}
	// Hands-off at the bound: overrides cleared, not set to 16.
	if act.wins[7] != 0 || act.caps[7] != 0 {
		t.Fatalf("cold overrides = (%d, %d), want cleared (0, 0)", act.wins[7], act.caps[7])
	}
}

func TestShrinkOnBurn(t *testing.T) {
	c, act, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	observe(c, 8, 8)   // violFrac 0.5 → burn 5.0
	drain(c, 3, 1, 16)
	if w := c.WindowFor(3); w != 8 {
		t.Fatalf("window after burn = %d, want 8 (halved)", w)
	}
	if act.wins[3] != 8 {
		t.Fatalf("actuated window = %d, want 8", act.wins[3])
	}
	if act.caps[3] != 8*8 { // default CapFactor 8
		t.Fatalf("actuated cap = %d, want %d", act.caps[3], 8*8)
	}
}

func TestConvergenceToFloorUnderSustainedBurn(t *testing.T) {
	c, act, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	for i := 0; i < 10; i++ {
		observe(c, 0, 8) // all bad, every interval
		drain(c, 3, 1, c.WindowFor(3))
	}
	if w := c.WindowFor(3); w != 1 {
		t.Fatalf("window = %d, want the floor 1", w)
	}
	if act.wins[3] != 1 {
		t.Fatalf("actuated window = %d, want 1", act.wins[3])
	}
	// Further burn holds at the floor, it does not oscillate.
	observe(c, 0, 8)
	drain(c, 3, 1, 1)
	if w := c.WindowFor(3); w != 1 {
		t.Fatalf("window after burn at floor = %d, want 1", w)
	}
}

func TestSparseIntervalHoldsActuation(t *testing.T) {
	c, act, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	observe(c, 0, 8)
	drain(c, 3, 1, 16) // shrink to 8
	// Sparse interval (1 sample < MinSamples 4): the signal is alive but
	// thin — back-off itself thinned it — so the shrunk window holds.
	observe(c, 1, 0)
	drain(c, 3, 1, 8)
	if w := c.WindowFor(3); w != 8 {
		t.Fatalf("window after sparse interval = %d, want 8 held", w)
	}
	if act.wins[3] != 8 || act.caps[3] != 64 {
		t.Fatalf("overrides after sparse interval = (%d, %d), want kept (8, 64)",
			act.wins[3], act.caps[3])
	}
}

func TestDryStreakReleasesToStaticBounds(t *testing.T) {
	c, act, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	observe(c, 0, 8)
	drain(c, 3, 1, 16) // shrink to 8
	// Two zero-sample intervals hold; the third (DryIntervals 3) proves
	// the LS signal is gone and releases to the static bound.
	drain(c, 3, 2, 8)
	if w := c.WindowFor(3); w != 8 {
		t.Fatalf("window after 2 dry intervals = %d, want 8 held", w)
	}
	if act.wins[3] != 8 {
		t.Fatalf("override after 2 dry intervals = %d, want kept", act.wins[3])
	}
	drain(c, 3, 1, 8)
	if w := c.WindowFor(3); w != 16 {
		t.Fatalf("window after dry streak = %d, want released to 16", w)
	}
	if act.wins[3] != 0 || act.caps[3] != 0 {
		t.Fatalf("overrides after release = (%d, %d), want cleared", act.wins[3], act.caps[3])
	}
}

func TestDryStreakResetBySparseSamples(t *testing.T) {
	c, _, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	observe(c, 0, 8)
	drain(c, 3, 1, 16) // shrink to 8
	drain(c, 3, 2, 8)  // dry 2/3
	observe(c, 1, 0)   // one live sample resets the streak …
	drain(c, 3, 1, 8)
	drain(c, 3, 2, 8) // … so two more dry intervals still hold
	if w := c.WindowFor(3); w != 8 {
		t.Fatalf("window = %d, want 8 (dry streak was reset)", w)
	}
}

func TestGrowBackWithHeadroomAndFill(t *testing.T) {
	c, act, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	observe(c, 0, 8)
	drain(c, 3, 1, 16) // 16 → 8
	observe(c, 0, 8)
	drain(c, 3, 1, 8) // 8 → 4
	if w := c.WindowFor(3); w != 4 {
		t.Fatalf("window = %d, want 4", w)
	}
	// Healthy intervals with full batches: additive regrowth 4 → 8 → 12
	// → 16, then overrides clear at the bound.
	for _, want := range []int{8, 12, 16} {
		observe(c, 8, 0) // burn 0
		drain(c, 3, 1, c.WindowFor(3))
		if w := c.WindowFor(3); w != want {
			t.Fatalf("window = %d, want %d", w, want)
		}
	}
	if act.wins[3] != 0 || act.caps[3] != 0 {
		t.Fatalf("overrides at the bound = (%d, %d), want cleared", act.wins[3], act.caps[3])
	}
}

func TestGrowPatienceRequiresHealthyStreak(t *testing.T) {
	c, _, _ := testController(t, func(cfg *Config) { cfg.GrowIntervals = 3 })
	drain(c, 3, 1, 16) // prime
	observe(c, 0, 8)
	drain(c, 3, 1, 16) // shrink to 8
	// Two healthy intervals: streak building, window held.
	for i := 0; i < 2; i++ {
		observe(c, 8, 0)
		drain(c, 3, 1, 8)
		if w := c.WindowFor(3); w != 8 {
			t.Fatalf("window after %d healthy intervals = %d, want 8 held (patience 3)", i+1, w)
		}
	}
	// A burn interval resets the streak …
	observe(c, 0, 8)
	drain(c, 3, 1, 8) // 8 → 4
	if w := c.WindowFor(3); w != 4 {
		t.Fatalf("window after burn = %d, want 4", w)
	}
	// … so two more healthy intervals still hold, and the third grows.
	for i := 0; i < 2; i++ {
		observe(c, 8, 0)
		drain(c, 3, 1, 4)
		if w := c.WindowFor(3); w != 4 {
			t.Fatalf("window after reset + %d healthy = %d, want 4 held", i+1, w)
		}
	}
	observe(c, 8, 0)
	drain(c, 3, 1, 4)
	if w := c.WindowFor(3); w != 8 {
		t.Fatalf("window after a full streak = %d, want 8 (grew)", w)
	}
}

func TestGrowQuietSerializesRelease(t *testing.T) {
	c, _, clk := testController(t, func(cfg *Config) { cfg.GrowQuietNS = 1000 })
	// Two tenants, both shrunk by shared pain.
	drain(c, 3, 1, 16) // prime
	drain(c, 9, 1, 16)
	observe(c, 0, 8)
	drain(c, 3, 1, 16)
	drain(c, 9, 1, 16)
	if w3, w9 := c.WindowFor(3), c.WindowFor(9); w3 != 8 || w9 != 8 {
		t.Fatalf("windows = (%d, %d), want both 8", w3, w9)
	}
	// Shared calm: the first tenant to decide grows; the second is inside
	// the quiet period and must hold.
	observe(c, 8, 0)
	drain(c, 3, 1, 8)
	drain(c, 9, 1, 8)
	if w := c.WindowFor(3); w != 12 {
		t.Fatalf("first tenant = %d, want 12 (grew)", w)
	}
	if w := c.WindowFor(9); w != 8 {
		t.Fatalf("second tenant = %d, want 8 held inside grow-quiet", w)
	}
	// Past the quiet period the held streak releases without re-earning.
	clk.t += 1000
	observe(c, 8, 0)
	drain(c, 9, 1, 8)
	if w := c.WindowFor(9); w != 12 {
		t.Fatalf("second tenant after quiet = %d, want 12 (grew)", w)
	}
}

func TestGrowGatedOnFill(t *testing.T) {
	c, _, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	observe(c, 0, 8)
	drain(c, 3, 1, 16) // shrink to 8
	// Healthy burn but batches only 2/8 full: no growth earned.
	observe(c, 8, 0)
	drain(c, 3, 1, 2)
	if w := c.WindowFor(3); w != 8 {
		t.Fatalf("window = %d, want 8 held (fill 0.25 < 0.5)", w)
	}
}

func TestHysteresisBandHolds(t *testing.T) {
	c, _, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime
	observe(c, 0, 8)
	drain(c, 3, 1, 16) // shrink to 8
	// violFrac 0.08 → burn 0.8: inside [0.5, 1.0], full batches — hold.
	observe(c, 92, 8)
	drain(c, 3, 1, 8)
	if w := c.WindowFor(3); w != 8 {
		t.Fatalf("window = %d, want 8 held inside the hysteresis band", w)
	}
}

func TestCooldownBatchesDecisions(t *testing.T) {
	reg := telemetry.New()
	c, _, _ := testController(t, func(cfg *Config) {
		cfg.CooldownDrains = 4
		cfg.Telemetry = reg
	})
	observe(c, 0, 8)
	drain(c, 3, 3, 16)
	if n := len(reg.AutotuneLog()); n != 0 {
		t.Fatalf("decisions after 3 drains = %d, want 0 (cooldown 4)", n)
	}
	drain(c, 3, 1, 16)
	if n := len(reg.AutotuneLog()); n != 1 {
		t.Fatalf("decisions after 4 drains = %d, want 1", n)
	}
	// The priming drain baselined the counters before the observations?
	// No: priming happens on the first drain, after observe — so the
	// samples are pre-baseline and the first verdict is cold.
	if d := reg.AutotuneLog()[0]; d.Action != "cold" {
		t.Fatalf("first verdict = %q, want cold (samples predate priming)", d.Action)
	}
}

func TestAntagonistSharedSignalFairness(t *testing.T) {
	// Two TC tenants share the signal. Under LS burn both back off (the
	// device and NIC are shared — per-tenant attribution is not
	// observable); in the healthy period only the full-batch tenant
	// regrows.
	c, _, _ := testController(t, nil)
	drain(c, 3, 1, 16) // prime heavy
	drain(c, 9, 1, 16) // prime light
	observe(c, 0, 8)   // one shared burst of LS pain …
	drain(c, 3, 1, 16) // … judged by both tenants' next decisions
	drain(c, 9, 1, 16)
	if w3, w9 := c.WindowFor(3), c.WindowFor(9); w3 != 8 || w9 != 8 {
		t.Fatalf("windows = (%d, %d), want both 8 after shared burn", w3, w9)
	}
	observe(c, 8, 0)  // one shared healthy interval
	drain(c, 3, 1, 8) // heavy: full batches → grows
	drain(c, 9, 1, 2) // light: 25% fill → holds
	if w := c.WindowFor(3); w != 12 {
		t.Fatalf("heavy tenant window = %d, want 12", w)
	}
	if w := c.WindowFor(9); w != 8 {
		t.Fatalf("light tenant window = %d, want 8 held", w)
	}
}

func TestForgetClearsStateAndOverrides(t *testing.T) {
	c, act, _ := testController(t, nil)
	drain(c, 3, 1, 16)
	observe(c, 0, 8)
	drain(c, 3, 1, 16)
	if act.wins[3] != 8 {
		t.Fatalf("precondition: actuated window = %d, want 8", act.wins[3])
	}
	c.Forget(3)
	if act.wins[3] != 0 || act.caps[3] != 0 {
		t.Fatalf("overrides after Forget = (%d, %d), want cleared", act.wins[3], act.caps[3])
	}
	if w := c.WindowFor(3); w != 16 {
		t.Fatalf("window after Forget = %d, want the static bound 16", w)
	}
}

func TestDecisionTelemetry(t *testing.T) {
	reg := telemetry.New()
	c, _, clk := testController(t, func(cfg *Config) { cfg.Telemetry = reg })
	clk.t = 42
	drain(c, 3, 1, 16) // prime + cold decision
	observe(c, 8, 8)
	drain(c, 3, 1, 16) // shrink decision
	states := reg.AutotuneStates()
	if len(states) != 1 {
		t.Fatalf("states = %d, want 1", len(states))
	}
	st := states[0]
	if st.Tenant != 3 || st.Window != 8 || st.Cap != 64 {
		t.Fatalf("state = %+v, want tenant 3 window 8 cap 64", st)
	}
	last := st.Last
	if last.Action != "shrink" || last.PrevWindow != 16 || last.At != 42 {
		t.Fatalf("last = %+v, want shrink 16→8 at t=42", last)
	}
	if last.BurnRate < 4.9 || last.BurnRate > 5.1 {
		t.Fatalf("burn = %v, want ≈5.0", last.BurnRate)
	}
	if last.Samples != 16 {
		t.Fatalf("samples = %d, want 16", last.Samples)
	}
	if last.LSP99NS <= 1000 {
		t.Fatalf("interval p99 = %d, want > objective (bad samples at 2000)", last.LSP99NS)
	}
	if got := reg.AutotuneLog(); len(got) != 2 || got[0].Action != "cold" {
		t.Fatalf("log = %+v, want [cold, shrink]", got)
	}
}

func TestIntervalQuantileUsesOnlyNewSamples(t *testing.T) {
	c, _, _ := testController(t, func(cfg *Config) { cfg.Telemetry = telemetry.New() })
	drain(c, 3, 1, 16) // prime
	// Interval 1: slow samples.
	observe(c, 0, 8)
	drain(c, 3, 1, 16)
	// Interval 2: all fast — p99 must reflect only these, not history.
	observe(c, 8, 0)
	drain(c, 3, 1, 8)
	log := c.cfg.Telemetry.AutotuneLog()
	last := log[len(log)-1]
	if last.LSP99NS > 1000 {
		t.Fatalf("interval p99 = %d, want ≤ objective (interval had only fast samples)", last.LSP99NS)
	}
}

func TestBudgetPPMForTarget(t *testing.T) {
	cases := []struct {
		target float64
		want   int64
	}{
		{0.999, 1000},
		{0.99, 10000},
		{0.9, 100000},
		{0, 1000},        // out of range → default
		{1, 1000},        // out of range → default
		{-0.5, 1000},     // out of range → default
		{0.9999999, 1},   // floors at 1 ppm
		{0.99999, 10},    // 1e-5 → 10 ppm (within integer truncation)
		{0.5, 500000},    //
		{1.000001, 1000}, // out of range → default
	}
	for _, tc := range cases {
		got := BudgetPPMForTarget(tc.target)
		// Floating-point truncation may land one off for awkward targets.
		if got != tc.want && got != tc.want-1 && got != tc.want+1 {
			t.Errorf("BudgetPPMForTarget(%v) = %d, want ≈%d", tc.target, got, tc.want)
		}
	}
}

func TestSharedSignalAcrossControllers(t *testing.T) {
	// Two per-shard controllers on one signal: LS pain observed via shard
	// A's controller shrinks a tenant decided by shard B's.
	sig := NewSignal(1000)
	mk := func() *Controller {
		c, err := New(Config{ObjectiveNS: 1000, BudgetPPM: 100_000, MaxWindow: 16,
			CooldownDrains: 1, MinSamples: 4, Signal: sig})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		c.Bind(newFakeAct())
		return c
	}
	a, b := mk(), mk()
	drain(b, 5, 1, 16) // prime b's tenant
	for i := 0; i < 8; i++ {
		a.ObserveLS(2000) // pain lands via shard A
	}
	drain(b, 5, 1, 16)
	if w := b.WindowFor(5); w != 8 {
		t.Fatalf("shard-B window = %d, want 8 (shrunk by shard-A pain)", w)
	}
}

// TestE2ETermIgnoredWhenDisabled pins the off-is-bit-identical contract:
// e2e pain fed into the signal must not move a controller built without
// Config.E2E.
func TestE2ETermIgnoredWhenDisabled(t *testing.T) {
	c, act, _ := testController(t, nil)
	drain(c, 5, 1, 16) // prime
	observe(c, 8, 0)   // healthy service signal
	c.ObserveE2E(0, 100)
	drain(c, 5, 1, 16)
	if w := c.WindowFor(5); w != 16 {
		t.Fatalf("window = %d after ignored e2e pain, want 16", w)
	}
	if act.wins[5] != 0 || act.caps[5] != 0 {
		t.Fatalf("overrides = (%d, %d), want cleared", act.wins[5], act.caps[5])
	}
}

// TestE2ETermTriggersBackoff is the egress-bottleneck shape: the service
// signal is healthy (the target finishes fast) while the host sees e2e
// violations — only the e2e term can justify back-off.
func TestE2ETermTriggersBackoff(t *testing.T) {
	c, act, _ := testController(t, func(cfg *Config) { cfg.E2E = true })
	drain(c, 5, 1, 16) // prime
	observe(c, 8, 0)   // service side: all good
	c.ObserveE2E(0, 100)
	drain(c, 5, 1, 16)
	if w := c.WindowFor(5); w != 8 {
		t.Fatalf("window = %d, want 8 (halved on e2e burn)", w)
	}
	if act.wins[5] != 8 {
		t.Fatalf("actuated window = %d, want 8", act.wins[5])
	}
}

// TestE2ETermCarriesSampleGate asserts e2e samples alone satisfy the
// cold-interval gate: a tenant whose service signal is empty still gets a
// verdict from host observations.
func TestE2ETermCarriesSampleGate(t *testing.T) {
	c, _, _ := testController(t, func(cfg *Config) { cfg.E2E = true })
	drain(c, 5, 1, 16) // prime
	c.ObserveE2E(0, 100)
	drain(c, 5, 1, 16)
	if w := c.WindowFor(5); w != 8 {
		t.Fatalf("window = %d, want 8 (e2e-only interval must decide)", w)
	}
}

// TestE2EHealthyDoesNotShrink: a healthy e2e stream must not override a
// healthy service stream into back-off.
func TestE2EHealthyDoesNotShrink(t *testing.T) {
	c, _, _ := testController(t, func(cfg *Config) { cfg.E2E = true })
	drain(c, 5, 1, 16)
	observe(c, 8, 0)
	c.ObserveE2E(100, 0)
	drain(c, 5, 1, 16)
	if w := c.WindowFor(5); w != 16 {
		t.Fatalf("window = %d, want 16 (both signals healthy)", w)
	}
}

func TestE2EObjectiveDefault(t *testing.T) {
	c, err := New(Config{ObjectiveNS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.E2EObjectiveNS(); got != 1000 {
		t.Fatalf("default e2e objective = %d, want the service objective", got)
	}
	c, err = New(Config{ObjectiveNS: 1000, E2EObjectiveNS: 5000, E2E: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.E2EEnabled() || c.E2EObjectiveNS() != 5000 {
		t.Fatalf("explicit e2e objective lost: enabled=%v obj=%d", c.E2EEnabled(), c.E2EObjectiveNS())
	}
}
