// Package autotune closes the control loop the paper's §IV-D window
// formula leaves open: a per-shard feedback controller that, on every
// drain completion, re-computes a tenant's TC drain window and admission
// cap from the observed latency-sensitive signal — SLO burn rate, interval
// p99, and drain occupancy. The law is QWin-style (PAPERS.md): multiplica-
// tive back-off of the window while the LS error budget burns faster than
// its target, additive growth while there is budget headroom and the
// windows are actually filling, clamped to the static formula's bounds so
// the controller degrades to today's behavior when telemetry is cold.
//
// Actuation is target-side only. The drain window proper is chosen by the
// host (HostPM stamps the draining flag), so the controller constrains it
// through the TargetPM's per-tenant force-drain valve: with the valve at
// w < hostWindow, the tenant's queue releases at depth w and the effective
// window becomes min(hostWindow, w). At the static bound the controller
// clears its overrides entirely — hands-off means bit-identical to the
// uncontrolled target.
//
// Threading mirrors the PM it drives: a Controller is owned by one reactor
// shard and is not synchronized; only the Signal (the LS observation
// stream, fed from every shard and from LS completions) is thread-safe.
package autotune

import (
	"fmt"
	"sync/atomic"

	"nvmeopf/internal/core"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// Actuator is what a controller drives: the per-tenant window valve and
// admission cap of a target-side priority manager. *core.TargetPM
// implements it.
type Actuator interface {
	SetTenantWindow(t proto.TenantID, w int)
	SetTenantCap(t proto.TenantID, c int)
}

// Signal is the shared LS observation stream: thread-safe counters and a
// histogram of latency-sensitive service latencies against one objective.
// On a sharded target every shard's controller reads the same Signal, so
// a TC tenant on shard 0 backs off for LS pain inflicted on shard 3 — the
// device and NIC they contend on are target-wide.
type Signal struct {
	objective atomic.Int64
	good      atomic.Int64
	bad       atomic.Int64
	e2eGood   atomic.Int64
	e2eBad    atomic.Int64
	hist      telemetry.Hist
}

// NewSignal creates a signal judging observations against objectiveNS.
func NewSignal(objectiveNS int64) *Signal {
	s := &Signal{}
	s.objective.Store(objectiveNS)
	return s
}

// Observe records one LS service latency (negative samples are ignored).
func (s *Signal) Observe(latNS int64) {
	if latNS < 0 {
		return
	}
	s.hist.Record(latNS)
	if latNS > s.objective.Load() {
		s.bad.Add(1)
	} else {
		s.good.Add(1)
	}
}

// Counts returns the cumulative within/over-objective sample counts.
func (s *Signal) Counts() (good, bad int64) { return s.good.Load(), s.bad.Load() }

// ObserveE2E adds host-observed end-to-end within/over-objective counts
// (from TelemetryUpdate deltas, judged against the e2e objective at the
// merge site). Thread-safe; inert unless a controller runs with Config.E2E.
func (s *Signal) ObserveE2E(good, bad int64) {
	if good > 0 {
		s.e2eGood.Add(good)
	}
	if bad > 0 {
		s.e2eBad.Add(bad)
	}
}

// E2ECounts returns the cumulative e2e within/over-objective counts.
func (s *Signal) E2ECounts() (good, bad int64) { return s.e2eGood.Load(), s.e2eBad.Load() }

// Snapshot copies the latency histogram for interval-quantile math.
func (s *Signal) Snapshot() telemetry.HistSnapshot { return s.hist.Snapshot() }

// Config parameterizes a controller. The zero values of everything but
// ObjectiveNS select the documented defaults.
type Config struct {
	// ObjectiveNS is the LS latency objective the signal is judged
	// against (required, > 0). Target-side controllers observe service
	// latency (arrival to completion at the target), which excludes the
	// fabric round trip — set it accordingly tighter than an end-to-end
	// SLO.
	ObjectiveNS int64
	// BudgetPPM is the error budget: LS observations per million allowed
	// over the objective (default 1000, i.e. a 99.9% target). The burn
	// rate is the observed violation fraction over this budget; burn 1
	// consumes the budget exactly as fast as it accrues.
	BudgetPPM int64
	// BurnShrink / BurnGrow bound the hysteresis band: interval burn
	// above BurnShrink halves the window (multiplicative back-off),
	// below BurnGrow allows additive growth, and the band between them
	// holds — the damping that keeps the loop from oscillating around
	// the threshold. Defaults 1.0 / 0.5.
	BurnShrink float64
	BurnGrow   float64
	// MinWindow / MaxWindow clamp the controlled window. MaxWindow is the
	// static formula's value for the deployment (core.OptimalWindow);
	// at MaxWindow the controller clears its overrides entirely, so cold
	// or healthy tenants run today's static behavior bit-identically.
	// Defaults 1 / 32.
	MinWindow int
	MaxWindow int
	// GrowStep is the additive increase per grow decision (default 2).
	GrowStep int
	// GrowFill gates growth on achieved drain occupancy: windows only
	// grow when the mean completed batch filled at least this fraction
	// of the current window (default 0.5) — a tenant whose batches run
	// small gains nothing from a larger valve.
	GrowFill float64
	// GrowIntervals is how many consecutive healthy intervals a tenant
	// must string together before each grow step (default 1: grow on
	// the first healthy verdict). Raising it discriminates transient
	// health inside an oscillating overload — where a back-off briefly
	// clears the burn it caused — from a genuinely lightened load:
	// only the latter sustains a streak.
	GrowIntervals int
	// GrowQuietNS is the controller-wide minimum spacing between grow
	// decisions across all tenants (default 0: none; requires Clock).
	// Constrained tenants sharing one bottleneck all see it clear at
	// once, and a synchronized release re-floods it in a single step —
	// the spacing serializes release so each probe's impact lands in
	// the signal before the next tenant may follow.
	GrowQuietNS int64
	// CapFactor sets the admission-cap override to CapFactor × window
	// while the controller is constraining a tenant (default 8; negative
	// leaves admission caps untouched). Shrinking the window without
	// capping pending lets a tenant hold the same backlog in more,
	// smaller windows; the cap converts back-off into real admission
	// push-back.
	CapFactor int
	// CooldownDrains is how many drain completions a tenant accumulates
	// between decisions (default 8): the decision interval, and the
	// second half of the oscillation damping (an actuation must be
	// observed before the next one).
	CooldownDrains int
	// MinSamples is the minimum LS observations an interval needs for a
	// verdict (default 32). Below it the tenant is cold: the controller
	// holds its current actuation rather than acting on noise. Holding —
	// not releasing — matters: back-off itself thins the tenant's decision
	// intervals (a constrained tenant drains less often), so a release on
	// sparseness would teleport every constrained tenant back to the
	// static bound and undo the back-off it just earned.
	MinSamples int64
	// DryIntervals is how many consecutive zero-sample intervals release
	// a tenant to the static bounds (default 3). A streak of truly empty
	// intervals means the LS signal is gone — no one is left to protect —
	// which is the one cold condition that should clear the overrides.
	DryIntervals int
	// E2E folds the host-observed end-to-end term into the control law:
	// within/over-objective counts fed through Signal.ObserveE2E join each
	// decision, and the effective burn is the worse of the service and e2e
	// burn rates. Off (the default) the law reads only the service signal
	// and is bit-identical to a build without the feedback channel — e2e
	// counts may still accumulate, they just never influence a decision.
	E2E bool
	// E2EObjectiveNS is the end-to-end latency objective host observations
	// are judged against at the merge site (default: ObjectiveNS). An e2e
	// objective normally sits above the service objective by the expected
	// fabric round trip.
	E2EObjectiveNS int64
	// Clock stamps decisions (nanoseconds; virtual clocks work). Nil
	// stamps zero.
	Clock func() int64
	// Telemetry receives per-decision records for /debug/autotune and
	// /metrics. Nil disables.
	Telemetry *telemetry.Registry
	// Signal is the LS observation stream. Nil creates a private one
	// with ObjectiveNS; a sharded deployment shares one Signal across
	// its per-shard controllers.
	Signal *Signal
}

// withDefaults fills the documented defaults.
func (cfg Config) withDefaults() Config {
	if cfg.BudgetPPM <= 0 {
		cfg.BudgetPPM = 1000
	}
	if cfg.BurnShrink <= 0 {
		cfg.BurnShrink = 1.0
	}
	if cfg.BurnGrow <= 0 {
		cfg.BurnGrow = 0.5
	}
	if cfg.MinWindow <= 0 {
		cfg.MinWindow = 1
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 32
	}
	if cfg.GrowStep <= 0 {
		cfg.GrowStep = 2
	}
	if cfg.GrowFill <= 0 {
		cfg.GrowFill = 0.5
	}
	if cfg.GrowIntervals <= 0 {
		cfg.GrowIntervals = 1
	}
	switch {
	case cfg.CapFactor == 0:
		cfg.CapFactor = 8
	case cfg.CapFactor < 0:
		cfg.CapFactor = 0 // caps disabled
	}
	if cfg.CooldownDrains <= 0 {
		cfg.CooldownDrains = 8
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 32
	}
	if cfg.DryIntervals <= 0 {
		cfg.DryIntervals = 3
	}
	if cfg.E2EObjectiveNS <= 0 {
		cfg.E2EObjectiveNS = cfg.ObjectiveNS
	}
	return cfg
}

// BudgetPPMForTarget converts a compliance target (the fraction of LS
// observations that must meet the objective, e.g. 0.999) to an error
// budget in parts per million, mirroring the telemetry registry's SLO
// accounting. Out-of-range targets select the 99.9% default.
func BudgetPPMForTarget(target float64) int64 {
	if target <= 0 || target >= 1 {
		return 1000
	}
	ppm := int64((1 - target) * 1e6)
	if ppm < 1 {
		ppm = 1
	}
	return ppm
}

// tenantState is one tenant's loop state between decisions.
type tenantState struct {
	window      int
	drains      int   // drain completions since the last decision
	fillSum     int   // sum of completed batch sizes since the last decision
	lastGood    int64 // signal counters at the last decision
	lastBad     int64
	lastE2EGood int64 // e2e signal counters at the last decision
	lastE2EBad  int64
	lastHist    telemetry.HistSnapshot
	primed      bool // baseline counters captured
	dry         int  // consecutive zero-sample decision intervals
	healthy     int  // consecutive healthy grow-eligible intervals
}

// Controller is one shard's feedback loop. Not synchronized: drive it from
// the reactor that owns the shard's TargetPM (OnDrainComplete arrives via
// the PM's drain hook, which already runs there). ObserveLS is the one
// exception — it only touches the thread-safe Signal, so completions on
// other execution contexts may feed it directly.
type Controller struct {
	cfg      Config
	sig      *Signal
	act      Actuator
	tenants  map[proto.TenantID]*tenantState
	lastGrow int64 // clock at the most recent grow decision, any tenant
	grown    bool  // a grow has happened (lastGrow is meaningful)
}

// New creates a controller. ObjectiveNS must be positive and the window
// bounds sane.
func New(cfg Config) (*Controller, error) {
	if cfg.ObjectiveNS <= 0 {
		return nil, fmt.Errorf("autotune: objective %dns, want > 0", cfg.ObjectiveNS)
	}
	cfg = cfg.withDefaults()
	if cfg.MinWindow > cfg.MaxWindow {
		return nil, fmt.Errorf("autotune: min window %d > max %d", cfg.MinWindow, cfg.MaxWindow)
	}
	sig := cfg.Signal
	if sig == nil {
		sig = NewSignal(cfg.ObjectiveNS)
	}
	return &Controller{cfg: cfg, sig: sig, tenants: make(map[proto.TenantID]*tenantState)}, nil
}

// Bind attaches the actuator the decisions drive (the shard's TargetPM).
func (c *Controller) Bind(act Actuator) { c.act = act }

// Signal returns the controller's LS observation stream (for sharing
// across shards, or feeding from tests).
func (c *Controller) Signal() *Signal { return c.sig }

// ObserveLS records one LS service latency into the signal. Thread-safe.
func (c *Controller) ObserveLS(latNS int64) { c.sig.Observe(latNS) }

// ObserveE2E feeds host-observed e2e within/over-objective counts into
// the signal. Thread-safe; the control law ignores them unless Config.E2E
// is set.
func (c *Controller) ObserveE2E(good, bad int64) { c.sig.ObserveE2E(good, bad) }

// E2EEnabled reports whether the e2e term participates in decisions.
func (c *Controller) E2EEnabled() bool { return c.cfg.E2E }

// E2EObjectiveNS returns the objective e2e observations are judged
// against (for the merge site that splits deltas into good/bad).
func (c *Controller) E2EObjectiveNS() int64 { return c.cfg.E2EObjectiveNS }

// WindowFor returns the controller's current window for a tenant
// (MaxWindow — the static bound — for tenants it has never decided on).
func (c *Controller) WindowFor(t proto.TenantID) int {
	if st, ok := c.tenants[t]; ok {
		return st.window
	}
	return c.cfg.MaxWindow
}

// Forget drops a tenant's loop state and clears its actuator overrides
// (session teardown: the tenant ID may be recycled).
func (c *Controller) Forget(t proto.TenantID) {
	delete(c.tenants, t)
	if c.act != nil {
		c.act.SetTenantWindow(t, 0)
		c.act.SetTenantCap(t, 0)
	}
}

// OnDrainComplete feeds one completed window into the loop; wire it to
// core.TargetPM.SetDrainHook. Every CooldownDrains completions per tenant
// it takes a decision over the interval since the tenant's last one.
func (c *Controller) OnDrainComplete(dc core.DrainCompletion) {
	if dc.Scavenger {
		// Scavenger windows drain from leftover capacity by design: their
		// occupancy is a free-capacity signal, never a burn or fill
		// signal. Feeding them into the loop would let background drains
		// prime baselines or trigger decisions for a foreground class
		// that never drained.
		return
	}
	st, ok := c.tenants[dc.Tenant]
	if !ok {
		st = &tenantState{window: c.cfg.MaxWindow}
		c.tenants[dc.Tenant] = st
	}
	if !st.primed {
		// Baseline the signal counters at first sight so the first
		// decision judges this tenant's own interval, not history from
		// before it connected.
		st.lastGood, st.lastBad = c.sig.Counts()
		st.lastE2EGood, st.lastE2EBad = c.sig.E2ECounts()
		st.lastHist = c.sig.Snapshot()
		st.primed = true
	}
	st.drains++
	st.fillSum += dc.Window
	if st.drains < c.cfg.CooldownDrains {
		return
	}
	c.decide(dc.Tenant, st)
	st.drains = 0
	st.fillSum = 0
}

// decide runs the control law over the interval since the tenant's last
// decision and actuates + records the outcome.
func (c *Controller) decide(t proto.TenantID, st *tenantState) {
	good, bad := c.sig.Counts()
	dGood, dBad := good-st.lastGood, bad-st.lastBad
	samples := dGood + dBad
	cur := c.sig.Snapshot()
	p99 := intervalQuantile(cur, st.lastHist, 0.99)
	fill := float64(st.fillSum) / float64(st.drains*st.window)
	burn := -1.0
	if samples > 0 {
		violFrac := float64(dBad) / float64(samples)
		burn = violFrac / (float64(c.cfg.BudgetPPM) / 1e6)
	}
	eGood, eBad := c.sig.E2ECounts()
	e2eTag := ""
	if c.cfg.E2E {
		// Fold the host-observed term in: the effective burn is the worse
		// of the two signals, so an egress-only bottleneck — invisible to
		// service latency by construction — still triggers back-off.
		dEGood, dEBad := eGood-st.lastE2EGood, eBad-st.lastE2EBad
		if eSamples := dEGood + dEBad; eSamples > 0 {
			eBurn := (float64(dEBad) / float64(eSamples)) / (float64(c.cfg.BudgetPPM) / 1e6)
			if eBurn > burn {
				burn = eBurn
				e2eTag = " [e2e]"
			}
			samples += eSamples
		}
	}

	prev := st.window
	if samples > 0 {
		st.dry = 0
	}
	var now int64
	if c.cfg.Clock != nil {
		now = c.cfg.Clock()
	}
	var action, reason string
	switch {
	case samples == 0:
		// Quiet interval: indistinguishable noise or a vanished signal.
		// Hold until a streak proves there is no LS traffic to protect,
		// then release to the static formula's behavior.
		st.dry++
		action = "cold"
		if st.dry >= c.cfg.DryIntervals {
			st.window = c.cfg.MaxWindow
			reason = fmt.Sprintf("no LS samples for %d intervals: static bounds apply", st.dry)
		} else {
			reason = fmt.Sprintf("no LS samples (dry %d/%d): holding %d", st.dry, c.cfg.DryIntervals, st.window)
		}
	case samples < c.cfg.MinSamples:
		// Sparse: too few samples for a verdict, but the signal is alive.
		// Hold the current actuation — back-off thins these very intervals.
		action = "cold"
		reason = fmt.Sprintf("%d LS samples < %d: holding %d", samples, c.cfg.MinSamples, st.window)
	case burn > c.cfg.BurnShrink:
		st.healthy = 0
		st.window = prev / 2
		if st.window < c.cfg.MinWindow {
			st.window = c.cfg.MinWindow
		}
		if st.window < prev {
			action = "shrink"
			reason = fmt.Sprintf("burn %.2f > %.2f: multiplicative back-off%s", burn, c.cfg.BurnShrink, e2eTag)
		} else {
			action = "hold"
			reason = fmt.Sprintf("burn %.2f > %.2f at floor %d%s", burn, c.cfg.BurnShrink, c.cfg.MinWindow, e2eTag)
		}
	case burn < c.cfg.BurnGrow && st.window < c.cfg.MaxWindow && fill >= c.cfg.GrowFill:
		st.healthy++
		switch {
		case st.healthy < c.cfg.GrowIntervals:
			action = "hold"
			reason = fmt.Sprintf("burn %.2f healthy %d/%d intervals: patience before growth", burn, st.healthy, c.cfg.GrowIntervals)
		case c.cfg.GrowQuietNS > 0 && c.grown && now-c.lastGrow < c.cfg.GrowQuietNS:
			// Streak complete but another tenant released recently; wait
			// for its impact to land in the signal. The streak carries
			// over, so this tenant grows at its first decision after the
			// quiet period.
			action = "hold"
			reason = fmt.Sprintf("healthy, %.1fms grow-quiet remaining after a release elsewhere", float64(c.cfg.GrowQuietNS-(now-c.lastGrow))/1e6)
		default:
			st.healthy = 0
			st.window = prev + c.cfg.GrowStep
			if st.window > c.cfg.MaxWindow {
				st.window = c.cfg.MaxWindow
			}
			c.lastGrow, c.grown = now, true
			action = "grow"
			reason = fmt.Sprintf("burn %.2f < %.2f, fill %.2f: additive grow", burn, c.cfg.BurnGrow, fill)
		}
	default:
		action = "hold"
		switch {
		case st.window >= c.cfg.MaxWindow:
			reason = fmt.Sprintf("burn %.2f healthy at static bound %d", burn, c.cfg.MaxWindow)
		case burn >= c.cfg.BurnGrow:
			st.healthy = 0
			reason = fmt.Sprintf("burn %.2f inside hysteresis band [%.2f, %.2f]", burn, c.cfg.BurnGrow, c.cfg.BurnShrink)
		default:
			reason = fmt.Sprintf("fill %.2f < %.2f: window not earning growth", fill, c.cfg.GrowFill)
		}
	}

	capv := c.apply(t, st.window)
	st.lastGood, st.lastBad = good, bad
	st.lastE2EGood, st.lastE2EBad = eGood, eBad
	st.lastHist = cur
	c.cfg.Telemetry.RecordAutotune(telemetry.AutotuneDecision{
		Tenant:     t,
		Action:     action,
		Window:     st.window,
		PrevWindow: prev,
		Cap:        capv,
		BurnRate:   burn,
		LSP99NS:    p99,
		Fill:       fill,
		Samples:    samples,
		Reason:     reason,
		At:         now,
	})
}

// apply actuates one tenant's window, returning the cap it set (0 when
// admission caps are untouched). At the static bound the overrides clear:
// a controller with nothing to say must leave no fingerprints.
func (c *Controller) apply(t proto.TenantID, w int) int {
	if c.act == nil {
		return 0
	}
	if w >= c.cfg.MaxWindow {
		c.act.SetTenantWindow(t, 0)
		c.act.SetTenantCap(t, 0)
		return 0
	}
	c.act.SetTenantWindow(t, w)
	capv := 0
	if c.cfg.CapFactor > 0 {
		capv = w * c.cfg.CapFactor
	}
	c.act.SetTenantCap(t, capv)
	return capv
}

// intervalQuantile computes a quantile over the samples recorded between
// two snapshots of the same histogram (-1 when the interval is empty).
func intervalQuantile(cur, prev telemetry.HistSnapshot, q float64) int64 {
	if cur.Count <= prev.Count || len(cur.Counts) == 0 {
		return -1
	}
	delta := telemetry.HistSnapshot{
		Counts: make([]int64, len(cur.Counts)),
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
		// Max is cumulative; the interval max is unknowable from two
		// snapshots, so the lifetime max conservatively caps the result.
		Max: cur.Max,
	}
	for i := range cur.Counts {
		delta.Counts[i] = cur.Counts[i]
		if i < len(prev.Counts) {
			delta.Counts[i] -= prev.Counts[i]
		}
	}
	return delta.Quantile(q)
}
