package targetqp

import (
	"testing"

	"nvmeopf/internal/autotune"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/telemetry"
)

// TestAutotuneWiring drives a real target with the adaptive controller
// attached and checks every wire: Bind + drain hook on NewTarget, LS
// completions feeding the signal, decisions actuating PM overrides, and
// Forget on session teardown.
func TestAutotuneWiring(t *testing.T) {
	be := newFakeBackend(t, true)
	now := int64(0)
	clock := func() int64 { now += 1000; return now }
	reg := telemetry.New()
	ctrl, err := autotune.New(autotune.Config{
		// A 1ns objective with the clock advancing 1000ns per reading
		// makes every LS completion a violation: pure pain on the signal.
		ObjectiveNS: 1, BudgetPPM: 100_000,
		MinWindow: 1, MaxWindow: 16,
		CooldownDrains: 1, MinSamples: 1,
		Clock: clock, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewTarget(Config{
		Mode: ModeOPF, MaxPending: 256,
		Clock: clock, Autotune: ctrl, Telemetry: reg,
	}, be)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Autotune() != ctrl {
		t.Fatal("Autotune() does not return the configured controller")
	}

	tc, tcSess := pair(t, tgt, tcCfg(4, 16))
	ls, _ := pair(t, tgt, lsCfg())
	tenant := tc.Tenant()

	drain := func() {
		t.Helper()
		for i := 0; i < 4; i++ {
			err := tc.Submit(hostqp.IO{
				Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
				Done: func(hostqp.Result) {},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// First drain primes the tenant; with CooldownDrains 1 its verdict is
	// always cold (the interval holds no samples) and leaves no overrides.
	drain()
	if w := tgt.pm.TenantWindow(tenant); w != 0 {
		t.Fatalf("override after cold verdict = %d, want none", w)
	}

	// LS traffic lands on the controller's signal — and only LS traffic:
	// the TC drain above completed 4 writes without touching it.
	for i := 0; i < 8; i++ {
		err := ls.Submit(hostqp.IO{
			Op: nvme.OpRead, LBA: 0, Blocks: 1,
			Done: func(hostqp.Result) {},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if good, bad := ctrl.Signal().Counts(); good != 0 || bad != 8 {
		t.Fatalf("LS signal = (%d good, %d bad), want (0, 8)", good, bad)
	}

	// The next drain sees burn 10x the budget: multiplicative back-off
	// from the static bound, actuated as PM valve + admission cap.
	drain()
	if w := ctrl.WindowFor(tenant); w != 8 {
		t.Fatalf("controller window = %d, want 8 (16 halved)", w)
	}
	if w := tgt.pm.TenantWindow(tenant); w != 8 {
		t.Fatalf("PM valve override = %d, want 8", w)
	}
	if limit := tgt.pm.TenantCap(tenant); limit != 64 {
		t.Fatalf("PM admission cap = %d, want 64 (window x factor 8)", limit)
	}
	if n := len(reg.AutotuneLog()); n != 2 {
		t.Fatalf("decision log has %d entries, want 2 (cold, shrink)", n)
	}

	// Teardown forgets the tenant: the recycled ID's next owner must not
	// inherit a window shrunk for this one's behavior.
	tgt.CloseSession(tcSess)
	if w := ctrl.WindowFor(tenant); w != 16 {
		t.Fatalf("controller window after Forget = %d, want MaxWindow 16", w)
	}
	if w, limit := tgt.pm.TenantWindow(tenant), tgt.pm.TenantCap(tenant); w != 0 || limit != 0 {
		t.Fatalf("PM overrides after Forget = (%d, %d), want cleared", w, limit)
	}
}
