// Package targetqp implements the NVMe-oPF target: a Target that owns the
// target-side priority manager, the backing device, and tenant-ID
// assignment, plus one sans-IO Session per initiator connection. Sessions
// consume inbound PDUs via HandlePDU and emit outbound PDUs through a
// caller-provided send function, so the same code serves the TCP transport
// and the simulator.
//
// Two modes are provided:
//
//   - ModeOPF: the paper's design. Latency-sensitive requests bypass all
//     queues (target-side and device-side), throughput-critical requests
//     batch per tenant until a draining flag, and batch completions
//     coalesce into one response (Fig. 5, Algorithms 3–4).
//   - ModeBaseline: the unmodified SPDK-equivalent. Priority flags are
//     ignored, every request executes FIFO, and every completion produces
//     its own response PDU.
package targetqp

import (
	"errors"
	"fmt"
	"time"

	"nvmeopf/internal/autotune"
	"nvmeopf/internal/core"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// ProtocolVersion is the PFV this runtime speaks.
const ProtocolVersion = 1

// Mode selects baseline (SPDK-equivalent) or NVMe-oPF behaviour.
type Mode int

// Modes.
const (
	ModeBaseline Mode = iota
	ModeOPF
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeOPF {
		return "nvme-opf"
	}
	return "spdk-baseline"
}

// Backend abstracts the device under the target: the simulator SSD or a
// bdev-backed executor. Submit hands over one command; done must be
// invoked exactly once with the completion (and read data when the command
// is a successful read). highPrio requests jump the device queue — the
// LS bypass; baseline mode never sets it.
type Backend interface {
	Submit(cmd nvme.Command, data []byte, highPrio bool, done func(cpl nvme.Completion, data []byte))
	Namespace() nvme.Namespace
}

// Config describes a target.
type Config struct {
	Mode Mode
	// MaxPending is the per-tenant safety valve passed to the PM.
	MaxPending int
	// SharedQueueAblation disables per-tenant queue isolation (for the
	// ablation benchmark only).
	SharedQueueAblation bool
	// MaxPendingPerTenant caps one tenant's admitted-but-uncompleted
	// requests; past the cap commands are answered with the retryable
	// proto.StatusBusy instead of buffered. Zero disables.
	MaxPendingPerTenant int
	// MaxPendingGlobal caps admitted-but-uncompleted requests across all
	// tenants. Zero disables.
	MaxPendingGlobal int
	// LSHeadroom reserves slots of MaxPendingGlobal for latency-sensitive
	// requests so a TC flood cannot starve LS admission.
	LSHeadroom int
	// ScavengerHeadroom reserves slots of MaxPendingGlobal (on top of
	// LSHeadroom) that scavenger requests may never occupy, so best-effort
	// floods always yield admission capacity to LS and TC. Zero means
	// scavengers compete for the same non-LS slots TC does.
	ScavengerHeadroom int
	// ScavengerAging bounds how long a parked scavenger queue can wait
	// while the target stays busy with LS/TC work: once the oldest parked
	// request has aged past it, the queue force-drains even though
	// capacity is not free. Requires Clock. Zero disables the bound
	// (scavengers drain only on idle capacity).
	ScavengerAging time.Duration
	// DrainWatchdog force-drains a TC queue whose oldest parked request
	// has waited this long with no draining flag (host crashed or went
	// silent mid-window). Requires Clock. Zero disables.
	DrainWatchdog time.Duration
	// MaxDataLen is the largest in-capsule data accepted (advertised in
	// ICResp). Zero means 1 MiB.
	MaxDataLen uint32
	// Telemetry optionally attaches a live metrics registry recording
	// target-side instruments per tenant (commands, queue depths, drains,
	// suppressions, responses, service latency). Nil disables at zero
	// cost.
	Telemetry *telemetry.Registry
	// Trace optionally receives PDU lifecycle events (arrive, enqueue,
	// drain-start, device-complete, coalesced-notify). Nil disables.
	Trace telemetry.TraceFunc
	// Recorder optionally attaches a target-side flight recorder: its
	// Trace hook is chained after Trace. Nil disables.
	Recorder *telemetry.Recorder
	// Clock provides timestamps for service-latency samples (virtual in
	// the simulator, wall clock on the TCP transport). It is also the
	// clock the ICResp shares with hosts for cross-runtime trace
	// correlation. Nil disables latency recording; counters are
	// unaffected.
	Clock func() int64
	// Autotune optionally attaches an adaptive drain-window controller
	// owned by this target's reactor shard: it is bound to the PM, fed
	// every drain completion, and fed LS service latencies (requires
	// Clock for the latter). Nil leaves the static window configuration
	// untouched — behavior is bit-identical to a target without the
	// field.
	Autotune *autotune.Controller
	// TenantBase and TenantStride carve the shared 0..65535 tenant-ID space
	// between shard-partitioned targets: this target assigns TenantBase,
	// TenantBase+TenantStride, TenantBase+2*TenantStride, … so sibling
	// shards never collide and shared telemetry stays per-tenant exact.
	// Zero values mean base 0, stride 1 (a single unsharded target).
	TenantBase   int
	TenantStride int
	// PooledPayloads opts the target into the proto buffer/struct pools:
	// inbound write payloads are treated as pool-owned (taken from the
	// CapsuleCmd and released once the device completes), and outbound
	// CapsuleResp/C2HData PDUs come from the struct pools with pooled read
	// buffers, to be released by the send function after marshal. Only a
	// transport whose send path honours that ownership contract (the TCP
	// server) may set it; the simulator passes PDUs by reference and must
	// leave it false.
	PooledPayloads bool
}

// Stats counts target-level PDU and request traffic. RespPDUs is the
// completion-notification count that Fig. 6(c) compares across designs.
type Stats struct {
	Connections int64
	CmdPDUs     int64
	RespPDUs    int64
	DataPDUs    int64
	Reads       int64
	Writes      int64
	Errors      int64
	// Disconnects counts sessions torn down by CloseSession;
	// TeardownDrops counts their queued requests that never executed.
	Disconnects   int64
	TeardownDrops int64
	// TelemetryUpdates counts host feedback PDUs merged — zero on any
	// deployment that never enabled the e2e channel.
	TelemetryUpdates int64
}

// Accumulate adds o's counters into s — the merge a sharded deployment
// uses to report target-wide stats across per-shard Targets.
func (s *Stats) Accumulate(o Stats) {
	s.Connections += o.Connections
	s.CmdPDUs += o.CmdPDUs
	s.RespPDUs += o.RespPDUs
	s.DataPDUs += o.DataPDUs
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Errors += o.Errors
	s.Disconnects += o.Disconnects
	s.TeardownDrops += o.TeardownDrops
	s.TelemetryUpdates += o.TelemetryUpdates
}

// Target is one NVMe-oPF target instance: one backing namespace served to
// many tenants. Create Sessions with NewSession as initiators connect.
//
// Target is not synchronized; in the simulator everything runs on the
// event loop, and the TCP transport serializes access through the reactor
// goroutine of the shard that owns this Target (one Target per shard,
// mirroring SPDK's reactor-per-core deployment).
type Target struct {
	cfg        Config
	backends   map[uint32]Backend // NSID -> device
	defaultNS  uint32
	pm         *core.TargetPM
	nextTenant int
	// freeTenants holds IDs recycled from torn-down sessions, reusable
	// once the dead session's last in-flight device callback lands — so a
	// stale completion can never be attributed to the ID's new owner.
	freeTenants []proto.TenantID
	// freeReqs recycles request-pool entries so a steady-state datapath
	// never allocates a tReq. Shard-local, like everything else here.
	freeReqs []*tReq
	stats    Stats
	sessions map[proto.TenantID]*Session
}

// NewTarget creates a target whose backend serves its namespace's own ID
// (commands are routed by NSID; AddNamespace attaches more devices).
func NewTarget(cfg Config, backend Backend) (*Target, error) {
	if backend == nil {
		return nil, errors.New("targetqp: nil backend")
	}
	if cfg.MaxDataLen == 0 {
		cfg.MaxDataLen = 1 << 20
	}
	if cfg.TenantStride <= 0 {
		cfg.TenantStride = 1
	}
	if cfg.TenantBase < 0 || cfg.TenantBase > 65535 {
		return nil, fmt.Errorf("targetqp: tenant base %d outside 0..65535", cfg.TenantBase)
	}
	ns := backend.Namespace()
	if err := ns.Validate(); err != nil {
		return nil, err
	}
	if cfg.Recorder != nil {
		cfg.Trace = telemetry.ChainTrace(cfg.Trace, cfg.Recorder.Trace)
	}
	pm := core.NewTargetPM(core.TargetPMConfig{
		Isolated:            !cfg.SharedQueueAblation,
		MaxPending:          cfg.MaxPending,
		MaxPendingPerTenant: cfg.MaxPendingPerTenant,
		MaxPendingGlobal:    cfg.MaxPendingGlobal,
		LSHeadroom:          cfg.LSHeadroom,
		ScavengerHeadroom:   cfg.ScavengerHeadroom,
		Clock:               cfg.Clock,
		WatchdogNS:          cfg.DrainWatchdog.Nanoseconds(),
		ScavengerAgingNS:    cfg.ScavengerAging.Nanoseconds(),
	})
	pm.SetTelemetry(cfg.Telemetry)
	pm.SetTrace(cfg.Trace)
	if cfg.Autotune != nil {
		cfg.Autotune.Bind(pm)
		pm.SetDrainHook(cfg.Autotune.OnDrainComplete)
	}
	return &Target{
		cfg:        cfg,
		backends:   map[uint32]Backend{ns.ID: backend},
		defaultNS:  ns.ID,
		pm:         pm,
		nextTenant: cfg.TenantBase,
		sessions:   make(map[proto.TenantID]*Session),
	}, nil
}

// AddNamespace attaches another device to the target, served under its
// namespace's ID ("multiple tenants accessing single or many NVMe SSDs").
func (t *Target) AddNamespace(backend Backend) error {
	if backend == nil {
		return errors.New("targetqp: nil backend")
	}
	ns := backend.Namespace()
	if err := ns.Validate(); err != nil {
		return err
	}
	if _, dup := t.backends[ns.ID]; dup {
		return fmt.Errorf("targetqp: namespace %d already attached", ns.ID)
	}
	t.backends[ns.ID] = backend
	return nil
}

// Namespaces returns the attached namespace IDs.
func (t *Target) Namespaces() []uint32 {
	out := make([]uint32, 0, len(t.backends))
	for id := range t.backends {
		out = append(out, id)
	}
	return out
}

// Stats returns a copy of the target counters.
func (t *Target) Stats() Stats { return t.stats }

// PMStats returns the priority manager's counters.
func (t *Target) PMStats() core.TargetPMStats { return t.pm.Stats() }

// Telemetry returns the live metrics registry the target was configured
// with (nil when telemetry is disabled).
func (t *Target) Telemetry() *telemetry.Registry { return t.cfg.Telemetry }

// Autotune returns the adaptive drain-window controller this target was
// configured with (nil when adaptation is off).
func (t *Target) Autotune() *autotune.Controller { return t.cfg.Autotune }

// Mode returns the target's operating mode.
func (t *Target) Mode() Mode { return t.cfg.Mode }

// ActiveSessions returns the number of handshaken sessions not yet torn
// down.
func (t *Target) ActiveSessions() int { return len(t.sessions) }

// CloseSession tears down one initiator session after its connection
// dies. Queued-but-unexecuted requests are dropped from the PM (they can
// never be answered), the session stops sending PDUs and recording
// per-tenant telemetry, and its tenant ID returns to the free list once
// the last in-flight device callback lands — never earlier, so a stale
// completion cannot be attributed to the ID's next owner. Idempotent;
// a session that never finished its handshake is a no-op.
func (t *Target) CloseSession(s *Session) {
	if s == nil || !s.connected || s.dead {
		return
	}
	s.dead = true
	delete(t.sessions, s.tenant)
	dropped := t.pm.DropTenant(s.tenant)
	for _, cid := range dropped {
		// Dropped CIDs are queued (TC or scavenger) requests, so their pool
		// entries exist; the priority feeds Release's class accounting.
		prio := proto.PrioNormal
		if req := s.reqs[cid]; req != nil {
			prio = req.prio
			if t.cfg.PooledPayloads {
				proto.PutBuf(req.data)
			}
			t.putReq(req)
		}
		delete(s.reqs, cid)
		t.pm.Release(s.tenant, prio)
	}
	t.stats.Disconnects++
	t.stats.TeardownDrops += int64(len(dropped))
	if t.cfg.Autotune != nil {
		// Drop the controller's loop state and clear its PM overrides: the
		// tenant ID recycles, and the next owner must not inherit a window
		// shrunk for this one's behavior.
		t.cfg.Autotune.Forget(s.tenant)
	}
	t.cfg.Telemetry.IncDisconnect()
	t.cfg.Telemetry.AddTeardownDrops(int64(len(dropped)))
	// Clear the dead host's last-reported gauges so the recycled tenant ID
	// does not inherit them.
	t.cfg.Telemetry.ResetE2EGauges(s.tenant)
	if t.cfg.Trace != nil {
		t.cfg.Trace(telemetry.Event{Stage: telemetry.StageTeardown, Tenant: s.tenant, Aux: int64(len(dropped))})
	}
	if len(s.reqs) == 0 {
		t.freeTenants = append(t.freeTenants, s.tenant)
	}
}

// NewSession creates the server side of one initiator connection. send
// emits PDUs back to that initiator.
func (t *Target) NewSession(send func(proto.PDU)) (*Session, error) {
	if send == nil {
		return nil, errors.New("targetqp: nil send")
	}
	if t.nextTenant > 65535 && len(t.freeTenants) == 0 {
		return nil, errors.New("targetqp: tenant ID space exhausted (65536 initiators)")
	}
	s := &Session{
		target: t,
		send:   send,
		reqs:   make(map[nvme.CID]*tReq),
	}
	return s, nil
}

// tReq is the target-side request pool entry: the single owner of the
// command and its in-capsule payload while the request waits in a PM
// queue (the PM itself stores only CIDs — the zero-copy property of
// §IV-B: this pool holds one reference per request, never copies).
type tReq struct {
	cmd  nvme.Command
	prio proto.Priority
	data []byte
	// arrivedAt is the Config.Clock value at command arrival, for
	// target-side service-latency samples (0 when no clock is wired).
	arrivedAt int64
}

// getReq draws a request-pool entry from the shard-local freelist.
func (t *Target) getReq() *tReq {
	if n := len(t.freeReqs); n > 0 {
		r := t.freeReqs[n-1]
		t.freeReqs = t.freeReqs[:n-1]
		return r
	}
	return new(tReq)
}

// putReq retires a request-pool entry. The caller releases req.data first
// when it is pool-owned; putReq only drops the reference.
func (t *Target) putReq(r *tReq) {
	*r = tReq{}
	t.freeReqs = append(t.freeReqs, r)
}

// Session is the target side of one initiator connection.
type Session struct {
	target    *Target
	send      func(proto.PDU)
	tenant    proto.TenantID
	connected bool
	// dead marks a session torn down by CloseSession: no PDU may be sent
	// and no per-tenant telemetry recorded, but in-flight device callbacks
	// still run PM completion accounting so sibling batches release.
	dead bool
	reqs map[nvme.CID]*tReq
}

// Tenant returns the tenant ID assigned to this connection.
func (s *Session) Tenant() proto.TenantID { return s.tenant }

// Dead reports whether the session has been torn down.
func (s *Session) Dead() bool { return s.dead }

// HandlePDU processes one inbound PDU from the initiator.
func (s *Session) HandlePDU(p proto.PDU) error {
	switch pdu := p.(type) {
	case *proto.ICReq:
		return s.handleICReq(pdu)
	case *proto.CapsuleCmd:
		return s.handleCmd(pdu)
	case *proto.TelemetryUpdate:
		return s.handleTelemetryUpdate(pdu)
	case *proto.TermReq:
		return fmt.Errorf("targetqp: connection terminated by host: FES=%d %s", pdu.FES, pdu.Reason)
	default:
		return fmt.Errorf("targetqp: unexpected PDU %v", p.PDUType())
	}
}

func (s *Session) handleICReq(pdu *proto.ICReq) error {
	if s.connected {
		return errors.New("targetqp: duplicate ICReq")
	}
	if pdu.PFV != ProtocolVersion {
		s.send(&proto.TermReq{Dir: proto.TypeC2HTermReq, FES: 1, Reason: "bad PFV"})
		return fmt.Errorf("targetqp: protocol version mismatch: %d", pdu.PFV)
	}
	t := s.target
	nsid := pdu.NSID
	if nsid == 0 {
		nsid = t.defaultNS
	}
	be, ok := t.backends[nsid]
	if !ok {
		s.send(&proto.TermReq{Dir: proto.TypeC2HTermReq, FES: 2,
			Reason: fmt.Sprintf("unknown namespace %d", nsid)})
		return fmt.Errorf("targetqp: connect to unknown namespace %d", nsid)
	}
	if n := len(t.freeTenants); n > 0 {
		// Reuse an ID released by a fully drained dead session.
		s.tenant = t.freeTenants[n-1]
		t.freeTenants = t.freeTenants[:n-1]
	} else {
		if t.nextTenant > 65535 {
			s.send(&proto.TermReq{Dir: proto.TypeC2HTermReq, FES: 2,
				Reason: "tenant ID space exhausted"})
			return errors.New("targetqp: tenant ID space exhausted (65536 initiators)")
		}
		s.tenant = proto.TenantID(t.nextTenant)
		t.nextTenant += t.cfg.TenantStride
	}
	t.sessions[s.tenant] = s
	t.stats.Connections++
	t.cfg.Telemetry.IncConnection()
	t.cfg.Telemetry.SetClass(s.tenant, pdu.Prio)
	s.connected = true
	ns := be.Namespace()
	resp := &proto.ICResp{
		PFV:        ProtocolVersion,
		Tenant:     s.tenant,
		MaxDataLen: t.cfg.MaxDataLen,
		BlockSize:  ns.BlockSize,
		Capacity:   ns.Capacity,
	}
	if t.cfg.Clock != nil {
		// Share the target clock so the host can estimate the offset
		// between the runtimes (flight-recorder correlation).
		resp.TargetClock = t.cfg.Clock()
	}
	s.send(resp)
	return nil
}

// handleTelemetryUpdate merges one host feedback PDU into the tenant's
// end-to-end view, feeds the autotune e2e term when it is enabled, and
// acks with the target clock so the host can re-estimate the clock offset
// on the same round trip. A geometry mismatch is a protocol error — the
// connection dies rather than silently corrupting per-tenant quantiles.
func (s *Session) handleTelemetryUpdate(pdu *proto.TelemetryUpdate) error {
	if !s.connected {
		return errors.New("targetqp: telemetry before handshake")
	}
	if s.dead {
		return nil
	}
	t := s.target
	if err := t.cfg.Telemetry.MergeE2E(s.tenant, pdu); err != nil {
		return fmt.Errorf("targetqp: %w", err)
	}
	t.stats.TelemetryUpdates++
	if at := t.cfg.Autotune; at != nil && at.E2EEnabled() {
		// Only the latency-sensitive classes join the signal: the e2e term
		// protects the same traffic the service term does.
		obj := at.E2EObjectiveNS()
		for i := range pdu.Classes {
			cd := &pdu.Classes[i]
			if !cd.Class.LatencySensitive() {
				continue
			}
			at.ObserveE2E(telemetry.ClassDeltaGoodBad(cd, obj))
		}
	}
	ack := &proto.TelemetryAck{EchoHostClock: pdu.HostClock}
	if t.cfg.Clock != nil {
		ack.TargetClock = t.cfg.Clock()
	}
	s.send(ack)
	return nil
}

func (s *Session) handleCmd(pdu *proto.CapsuleCmd) error {
	if !s.connected {
		return errors.New("targetqp: command before handshake")
	}
	t := s.target
	t.stats.CmdPDUs++
	cid := pdu.Cmd.CID
	if _, dup := s.reqs[cid]; dup {
		s.respond(cid, nvme.StatusIDConflict, false)
		return nil
	}
	if len(pdu.Data) > int(t.cfg.MaxDataLen) {
		s.respond(cid, nvme.StatusInvalidField, false)
		return nil
	}

	prio := pdu.Prio
	if t.cfg.Mode == ModeBaseline {
		// Unmodified SPDK: the flag bits are reserved and ignored; all
		// requests take the FIFO path with per-request completions.
		prio = proto.PrioNormal
	}
	if !t.pm.Admit(s.tenant, prio) {
		// Admission control: past the pending cap the target pushes back
		// with a retryable busy status instead of buffering unboundedly.
		// The command never executes, so a verbatim resubmit is safe.
		s.respond(cid, nvme.StatusBusy, false)
		return nil
	}
	req := t.getReq()
	req.cmd, req.prio, req.data = pdu.Cmd, prio, pdu.Data
	if t.cfg.PooledPayloads {
		// Take ownership of the pooled payload: the transport's
		// ReleaseInbound must not free data parked in the request pool.
		pdu.Data = nil
	}
	if t.cfg.Clock != nil {
		req.arrivedAt = t.cfg.Clock()
	}
	s.reqs[cid] = req
	t.cfg.Telemetry.IncSubmitted(s.tenant, int64(len(req.data)))
	if t.cfg.Trace != nil {
		t.cfg.Trace(telemetry.Event{Stage: telemetry.StageArrive, Tenant: s.tenant, CID: cid, Prio: prio, Aux: int64(len(req.data))})
	}

	disposition, batch := t.pm.OnCommand(s.tenant, cid, prio)
	switch disposition {
	case core.DispositionExecute:
		s.execute(req)
	case core.DispositionQueued:
		// Absorbed; the drain will release it.
	case core.DispositionDrainBatch:
		// Alg. 3: transition the whole window to the execution state.
		if err := t.executeBatch(batch); err != nil {
			return err
		}
	}
	// A scavenger command parked on an idle target, or a drained TC window,
	// may have made leftover capacity available — drain it now.
	if _, err := t.CheckScavenger(); err != nil {
		return err
	}
	return nil
}

// executeBatch transitions one released window (drain-, valve-, or
// watchdog-triggered) to the execution state, in FIFO order.
func (t *Target) executeBatch(batch []core.TaggedCID) error {
	for _, m := range batch {
		owner := t.sessions[m.Tenant]
		if owner == nil {
			return fmt.Errorf("targetqp: batch member for unknown tenant %d", m.Tenant)
		}
		r, ok := owner.reqs[m.CID]
		if !ok {
			return fmt.Errorf("targetqp: batch member CID %d missing from pool", m.CID)
		}
		owner.execute(r)
	}
	return nil
}

// CheckWatchdog runs the PM's drain watchdog: every TC queue stale past
// Config.DrainWatchdog is force-drained and executed now. Returns the
// number of queues expired. The caller must invoke it from the same
// context that delivers PDUs (the reactor/event loop); the transport runs
// it on a timer. No-op unless both Clock and DrainWatchdog are set.
func (t *Target) CheckWatchdog() (int, error) {
	if t.cfg.Clock == nil || t.cfg.DrainWatchdog <= 0 {
		return 0, nil
	}
	batches := t.pm.ExpireStale(t.cfg.Clock())
	for _, batch := range batches {
		if err := t.executeBatch(batch); err != nil {
			return len(batches), err
		}
	}
	return len(batches), nil
}

// CheckScavenger runs the PM's scavenger poll: parked best-effort queues
// drain when the target holds no LS request and no un-drained TC window
// (leftover capacity only), and force-drain once aged past
// Config.ScavengerAging so continuous foreground traffic cannot starve
// them forever. Returns the number of queues drained. Same caller
// contract as CheckWatchdog: invoke from the context that delivers PDUs;
// the TCP transport also runs it on a timer so a parked window ages out
// on an otherwise idle connection. The target calls it opportunistically
// after every command dispatch and device completion — the two points
// where leftover capacity appears.
func (t *Target) CheckScavenger() (int, error) {
	var now int64
	if t.cfg.Clock != nil {
		now = t.cfg.Clock()
	}
	batches := t.pm.PollScavenger(now)
	for _, batch := range batches {
		if err := t.executeBatch(batch); err != nil {
			return len(batches), err
		}
	}
	return len(batches), nil
}

// execute hands one request to its namespace's backend, routed by the
// command's NSID. LS requests jump the device queue in oPF mode.
func (s *Session) execute(req *tReq) {
	t := s.target
	tenant := s.tenant
	cid := req.cmd.CID
	be, ok := t.backends[req.cmd.NSID]
	if !ok {
		// Unknown namespace: complete with an error through the normal
		// completion path so PM window accounting stays exact.
		s.onDeviceCompletion(tenant, cid, nvme.StatusInvalidNSID, nil)
		return
	}
	high := t.cfg.Mode == ModeOPF && req.prio.LatencySensitive()
	switch req.cmd.Opcode {
	case nvme.OpRead:
		t.stats.Reads++
	case nvme.OpWrite:
		t.stats.Writes++
	}
	be.Submit(req.cmd, req.data, high, func(cpl nvme.Completion, data []byte) {
		s.onDeviceCompletion(tenant, cid, cpl.Status, data)
	})
}

// onDeviceCompletion runs Alg. 4: ship read data, then ask the PM whether
// a response PDU goes on the wire.
func (s *Session) onDeviceCompletion(tenant proto.TenantID, cid nvme.CID, st nvme.Status, data []byte) {
	t := s.target
	req := s.reqs[cid]
	if req == nil {
		// Completion for a request we no longer track — a backend bug.
		return
	}
	// Retire the pool entry before any PDU goes out: the host is entitled
	// to reuse the CID the moment it sees the response, and with an
	// in-process transport the reused command can arrive re-entrantly,
	// before this function returns.
	delete(s.reqs, cid)
	t.pm.Release(tenant, req.prio)
	if !st.OK() {
		t.stats.Errors++
	}
	if !s.dead {
		var svcLat int64 = -1 // <0 skips the latency sample
		if t.cfg.Clock != nil && req.arrivedAt != 0 {
			svcLat = t.cfg.Clock() - req.arrivedAt
		}
		if t.cfg.Autotune != nil && svcLat >= 0 && req.prio.LatencySensitive() {
			// Feed the controller's LS signal with the target-side service
			// latency — the quantity its objective is declared against.
			t.cfg.Autotune.ObserveLS(svcLat)
		}
		t.cfg.Telemetry.IncCompleted(tenant, req.prio, svcLat, int64(len(data)), st.OK())
		if t.cfg.Trace != nil {
			t.cfg.Trace(telemetry.Event{Stage: telemetry.StageDeviceComplete, Tenant: tenant, CID: cid, Prio: req.prio, Aux: svcLat})
		}
		if req.cmd.Opcode == nvme.OpRead && st.OK() && len(data) > 0 {
			// Read data always flows per request; only the completion
			// notification is coalesced (§III-B). Reads larger than
			// MaxDataLen are segmented into fragments with ascending
			// offsets, honouring the transfer bound the ICResp advertised
			// (and the protocol's 16 MiB PDU cap).
			maxSeg := int(t.cfg.MaxDataLen)
			if len(data) <= maxSeg {
				t.stats.DataPDUs++
				if t.cfg.PooledPayloads {
					d := proto.GetC2HData()
					d.CCCID = cid
					d.Data = data
					data = nil // the send path releases payload and struct
					s.send(d)
				} else {
					s.send(&proto.C2HData{CCCID: cid, Offset: 0, Data: data})
				}
			} else {
				for off := 0; off < len(data); off += maxSeg {
					end := off + maxSeg
					if end > len(data) {
						end = len(data)
					}
					t.stats.DataPDUs++
					if t.cfg.PooledPayloads {
						// Fragments must not alias one pooled buffer: the
						// send path returns each payload to the pool
						// independently, so every fragment gets its own.
						d := proto.GetC2HData()
						d.CCCID = cid
						d.Offset = uint32(off)
						d.Data = proto.GetBuf(end - off)
						copy(d.Data, data[off:end])
						s.send(d)
					} else {
						s.send(&proto.C2HData{CCCID: cid, Offset: uint32(off), Data: data[off:end]})
					}
				}
				if t.cfg.PooledPayloads {
					proto.PutBuf(data)
					data = nil
				}
			}
		}
	}
	if t.cfg.PooledPayloads {
		proto.PutBuf(data)     // read data that never went on the wire
		proto.PutBuf(req.data) // write payload, durably applied by now
		req.data = nil
	}
	t.putReq(req)
	// PM completion accounting runs even for tombstoned sessions: the dead
	// tenant's in-flight commands may be members of a shared drain window,
	// and siblings' coalesced responses must still release in order. The
	// dead tenant's own responses find no session and are discarded.
	for _, rd := range t.pm.OnDeviceCompletion(tenant, cid, st) {
		if !rd.Send {
			continue
		}
		dest := t.sessions[rd.Tenant]
		if dest == nil {
			continue
		}
		dest.respond(rd.CID, rd.Status, rd.Coalesced)
	}
	// The completion may have retired the last LS request or released a TC
	// window, freeing leftover capacity for parked scavenger queues. An
	// executeBatch failure here mirrors CheckWatchdog's (a batch member
	// whose tenant vanished — impossible while DropTenant purges dead
	// tenants' queues) and has no caller to surface to on this path.
	_, _ = t.CheckScavenger()
	if s.dead && len(s.reqs) == 0 {
		// Last in-flight callback has landed: the tenant ID is now safe to
		// hand to a new connection.
		t.freeTenants = append(t.freeTenants, s.tenant)
	}
}

// respond emits one CapsuleResp. For coalesced responses, every pool
// entry the response covers is retired.
func (s *Session) respond(cid nvme.CID, st nvme.Status, coalesced bool) {
	t := s.target
	t.stats.RespPDUs++
	if t.cfg.PooledPayloads {
		r := proto.GetCapsuleResp()
		r.Cpl = nvme.Completion{CID: cid, Status: st}
		r.Coalesced = coalesced
		s.send(r)
		return
	}
	s.send(&proto.CapsuleResp{
		Cpl:       nvme.Completion{CID: cid, Status: st},
		Coalesced: coalesced,
	})
}
