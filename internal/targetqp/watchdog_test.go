package targetqp

// Drain-watchdog tests at the target level: a parked TC window whose host
// went silent is force-drained once the configured deadline passes, and a
// session torn down while its force-drained window is still on the device
// must absorb the late completions exactly once (no PDU to the dead
// connection, no double-release, tenant ID recycled exactly once).

import (
	"testing"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// watchdogTarget builds an oPF target with a settable fake clock and a
// 1ms drain watchdog.
func watchdogTarget(t *testing.T, be Backend, now *int64) *Target {
	t.Helper()
	tgt, err := NewTarget(Config{
		Mode:          ModeOPF,
		MaxPending:    256,
		DrainWatchdog: time.Millisecond,
		Clock:         func() int64 { return *now },
	}, be)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestWatchdogForceDrainsParkedWindow(t *testing.T) {
	now := new(int64)
	*now = 100
	be := newFakeBackend(t, true)
	tgt := watchdogTarget(t, be, now)
	host, _ := pair(t, tgt, tcCfg(8, 16)) // window 8: nothing drains on its own

	done := 0
	for i := 0; i < 3; i++ {
		err := host.Submit(hostqp.IO{
			Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(r hostqp.Result) {
				if !r.Status.OK() {
					t.Errorf("force-drained write status %v", r.Status)
				}
				done++
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if done != 0 {
		t.Fatalf("window completed with no drain flag: done=%d", done)
	}
	// Below the deadline the watchdog must not fire.
	*now += time.Millisecond.Nanoseconds() - 1
	if n, err := tgt.CheckWatchdog(); n != 0 || err != nil {
		t.Fatalf("watchdog fired early: n=%d err=%v", n, err)
	}
	*now += 1
	n, err := tgt.CheckWatchdog()
	if n != 1 || err != nil {
		t.Fatalf("CheckWatchdog = %d, %v; want 1 expired queue", n, err)
	}
	// The fake backend is auto-completing, so the whole window executed and
	// the coalesced response reached the host.
	if done != 3 {
		t.Fatalf("done = %d, want 3 (parked window force-drained)", done)
	}
	st := tgt.PMStats()
	if st.ForcedDrains != 1 || st.WatchdogDrains != 1 {
		t.Fatalf("ForcedDrains=%d WatchdogDrains=%d, want 1/1", st.ForcedDrains, st.WatchdogDrains)
	}
	if tgt.pm.PendingTotal() != 0 || tgt.pm.OutstandingBatchCIDs() != 0 {
		t.Fatalf("leaked accounting: pending=%d batchCIDs=%d",
			tgt.pm.PendingTotal(), tgt.pm.OutstandingBatchCIDs())
	}
}

func TestCloseSessionDuringForceDrainNoDoubleComplete(t *testing.T) {
	now := new(int64)
	*now = 100
	be := newFakeBackend(t, false) // hold device completions
	tgt := watchdogTarget(t, be, now)

	// Manual wiring (instead of pair) so target→host PDUs can be counted.
	clock := int64(0)
	sent := 0
	var host *hostqp.Session
	var tsess *Session
	var err error
	tsess, err = tgt.NewSession(func(p proto.PDU) {
		sent++
		decoded, derr := proto.Unmarshal(proto.Marshal(p))
		if derr != nil {
			t.Fatalf("target pdu codec: %v", derr)
		}
		if herr := host.HandlePDU(decoded); herr != nil {
			t.Fatalf("host handle: %v", herr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err = hostqp.New(tcCfg(8, 16), func(p proto.PDU) {
		decoded, derr := proto.Unmarshal(proto.Marshal(p))
		if derr != nil {
			t.Fatalf("host pdu codec: %v", derr)
		}
		if terr := tsess.HandlePDU(decoded); terr != nil {
			t.Fatalf("target handle: %v", terr)
		}
	}, func() int64 { clock++; return clock })
	if err != nil {
		t.Fatal(err)
	}
	host.Start()
	if !host.Connected() {
		t.Fatal("handshake did not complete")
	}

	hostDone := 0
	for i := 0; i < 3; i++ {
		err := host.Submit(hostqp.IO{
			Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(hostqp.Result) { hostDone++ },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Force-drain the parked window; the device holds all 3 completions.
	*now += 2 * time.Millisecond.Nanoseconds()
	if n, _ := tgt.CheckWatchdog(); n != 1 {
		t.Fatalf("CheckWatchdog = %d, want 1", n)
	}
	if len(be.queue) != 3 {
		t.Fatalf("device holds %d commands, want 3", len(be.queue))
	}

	// The connection dies mid-window: tear the session down while its
	// force-drained batch is still in flight.
	oldTenant := tsess.Tenant()
	tgt.CloseSession(tsess)
	if tgt.ActiveSessions() != 0 || !tsess.Dead() {
		t.Fatal("session not torn down")
	}
	if d := tgt.Stats().Disconnects; d != 1 {
		t.Fatalf("Disconnects = %d, want 1", d)
	}
	sentBefore := sent

	// Late completions land in the tombstone: no PDU may reach the dead
	// connection and no host callback may fire — but PM accounting must
	// still release the batch exactly once.
	be.releaseAll()
	if sent != sentBefore {
		t.Fatalf("%d PDUs sent to a dead session", sent-sentBefore)
	}
	if hostDone != 0 {
		t.Fatalf("%d host completions after teardown", hostDone)
	}
	if tgt.pm.PendingTotal() != 0 || tgt.pm.OutstandingBatchCIDs() != 0 {
		t.Fatalf("leaked accounting: pending=%d batchCIDs=%d",
			tgt.pm.PendingTotal(), tgt.pm.OutstandingBatchCIDs())
	}
	// Closing again is a no-op (no double tenant free, no double stats).
	tgt.CloseSession(tsess)
	if d := tgt.Stats().Disconnects; d != 1 {
		t.Fatalf("idempotent CloseSession bumped Disconnects to %d", d)
	}

	// The tenant ID recycles exactly once: the next session reuses it, the
	// one after gets a fresh ID.
	s2, err := tgt.NewSession(func(proto.PDU) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.HandlePDU(&proto.ICReq{PFV: ProtocolVersion, Prio: proto.PrioThroughputCritical}); err != nil {
		t.Fatal(err)
	}
	if s2.Tenant() != oldTenant {
		t.Fatalf("tenant %d not recycled: new session got %d", oldTenant, s2.Tenant())
	}
	s3, err := tgt.NewSession(func(proto.PDU) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.HandlePDU(&proto.ICReq{PFV: ProtocolVersion, Prio: proto.PrioThroughputCritical}); err != nil {
		t.Fatal(err)
	}
	if s3.Tenant() == oldTenant {
		t.Fatalf("tenant %d recycled twice", oldTenant)
	}
}
