package targetqp

import (
	"bytes"
	"math/rand"
	"testing"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// fakeBackend executes commands against an in-memory store, holding
// completions until the test releases them (in any order).
type fakeBackend struct {
	ns    nvme.Namespace
	store *bdev.Memory
	queue []func()
	auto  bool // complete immediately on Submit
	highs int  // count of high-priority submissions
}

func newFakeBackend(t *testing.T, auto bool) *fakeBackend {
	t.Helper()
	ns := nvme.Namespace{ID: 1, BlockSize: 512, Capacity: 4096}
	store, err := bdev.NewMemory(ns.BlockSize, ns.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeBackend{ns: ns, store: store, auto: auto}
}

func (f *fakeBackend) Namespace() nvme.Namespace { return f.ns }

func (f *fakeBackend) Submit(cmd nvme.Command, data []byte, highPrio bool, done func(nvme.Completion, []byte)) {
	if highPrio {
		f.highs++
	}
	run := func() {
		cpl := nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess}
		var out []byte
		if st := f.ns.CheckRange(cmd.SLBA, cmd.Blocks()); !st.OK() {
			cpl.Status = st
		} else {
			switch cmd.Opcode {
			case nvme.OpRead:
				out = make([]byte, f.ns.Bytes(cmd.Blocks()))
				if err := f.store.ReadBlocks(out, cmd.SLBA); err != nil {
					cpl.Status, out = nvme.StatusInternalError, nil
				}
			case nvme.OpWrite:
				if len(data) != f.ns.Bytes(cmd.Blocks()) {
					cpl.Status = nvme.StatusDataXferError
				} else if err := f.store.WriteBlocks(data, cmd.SLBA); err != nil {
					cpl.Status = nvme.StatusInternalError
				}
			case nvme.OpFlush:
			default:
				cpl.Status = nvme.StatusInvalidOpcode
			}
		}
		done(cpl, out)
	}
	if f.auto {
		run()
	} else {
		f.queue = append(f.queue, run)
	}
}

// releaseAll completes pending device commands in FIFO order.
func (f *fakeBackend) releaseAll() {
	for len(f.queue) > 0 {
		run := f.queue[0]
		f.queue = f.queue[1:]
		run()
	}
}

// releaseShuffled completes pending device commands in random order.
func (f *fakeBackend) releaseShuffled(rng *rand.Rand) {
	rng.Shuffle(len(f.queue), func(i, j int) { f.queue[i], f.queue[j] = f.queue[j], f.queue[i] })
	f.releaseAll()
}

// pair wires one host session to one target session with synchronous PDU
// delivery (round-tripping through the wire codec to exercise it).
func pair(t *testing.T, tgt *Target, hostCfg hostqp.Config) (*hostqp.Session, *Session) {
	t.Helper()
	clock := int64(0)
	var host *hostqp.Session
	var tsess *Session
	var err error
	tsess, err = tgt.NewSession(func(p proto.PDU) {
		// target -> host
		decoded, derr := proto.Unmarshal(proto.Marshal(p))
		if derr != nil {
			t.Fatalf("target pdu codec: %v", derr)
		}
		if herr := host.HandlePDU(decoded); herr != nil {
			t.Fatalf("host handle: %v", herr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err = hostqp.New(hostCfg, func(p proto.PDU) {
		// host -> target
		decoded, derr := proto.Unmarshal(proto.Marshal(p))
		if derr != nil {
			t.Fatalf("host pdu codec: %v", derr)
		}
		if terr := tsess.HandlePDU(decoded); terr != nil {
			t.Fatalf("target handle: %v", terr)
		}
	}, func() int64 { clock++; return clock })
	if err != nil {
		t.Fatal(err)
	}
	host.Start()
	if !host.Connected() {
		t.Fatal("handshake did not complete")
	}
	return host, tsess
}

func opfTarget(t *testing.T, be Backend) *Target {
	t.Helper()
	tgt, err := NewTarget(Config{Mode: ModeOPF, MaxPending: 256}, be)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func tcCfg(window, qd int) hostqp.Config {
	return hostqp.Config{Class: proto.PrioThroughputCritical, Window: window, QueueDepth: qd, NSID: 1}
}

func lsCfg() hostqp.Config {
	return hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1}
}

func TestHandshakeAssignsTenants(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	h1, _ := pair(t, tgt, lsCfg())
	h2, _ := pair(t, tgt, tcCfg(4, 16))
	if h1.Tenant() == h2.Tenant() {
		t.Fatalf("tenants collide: %d", h1.Tenant())
	}
	if tgt.Stats().Connections != 2 {
		t.Fatalf("connections = %d", tgt.Stats().Connections)
	}
}

func TestWriteReadBackIntegrity(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	host, _ := pair(t, tgt, tcCfg(1, 8))             // window 1: every request drains
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 512) // 2 blocks
	var wrote, read bool
	err := host.Submit(hostqp.IO{
		Op: nvme.OpWrite, LBA: 100, Blocks: 2, Data: payload,
		Done: func(r hostqp.Result) {
			if !r.Status.OK() {
				t.Errorf("write status %v", r.Status)
			}
			wrote = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = host.Submit(hostqp.IO{
		Op: nvme.OpRead, LBA: 100, Blocks: 2,
		Done: func(r hostqp.Result) {
			if !r.Status.OK() {
				t.Errorf("read status %v", r.Status)
			}
			if !bytes.Equal(r.Data, payload) {
				t.Error("read-back mismatch")
			}
			read = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wrote || !read {
		t.Fatalf("wrote=%v read=%v", wrote, read)
	}
}

func TestCoalescingReducesResponses(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	const window, n = 8, 64
	host, _ := pair(t, tgt, tcCfg(window, n))
	completed := 0
	for i := 0; i < n; i++ {
		err := host.Submit(hostqp.IO{
			Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(r hostqp.Result) { completed++ },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if completed != n {
		t.Fatalf("completed %d/%d", completed, n)
	}
	// One response PDU per window instead of per request.
	if got := tgt.Stats().RespPDUs; got != n/window {
		t.Fatalf("response PDUs = %d, want %d", got, n/window)
	}
	if got := host.Stats().RespPDUs; got != n/window {
		t.Fatalf("host-observed response PDUs = %d", got)
	}
}

func TestBaselineSendsOneResponsePerRequest(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt, err := NewTarget(Config{Mode: ModeBaseline}, be)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := pair(t, tgt, tcCfg(8, 64))
	const n = 32
	completed := 0
	for i := 0; i < n; i++ {
		if err := host.Submit(hostqp.IO{
			Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(hostqp.Result) { completed++ },
		}); err != nil {
			t.Fatal(err)
		}
	}
	if completed != n {
		t.Fatalf("completed %d/%d", completed, n)
	}
	if got := tgt.Stats().RespPDUs; got != n {
		t.Fatalf("baseline response PDUs = %d, want %d", got, n)
	}
	if be.highs != 0 {
		t.Fatalf("baseline submitted %d high-priority commands", be.highs)
	}
}

func TestLSBypassSubmitsHighPriority(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	host, _ := pair(t, tgt, lsCfg())
	done := false
	if err := host.Submit(hostqp.IO{
		Op: nvme.OpRead, LBA: 0, Blocks: 1,
		Done: func(r hostqp.Result) { done = r.Status.OK() },
	}); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("LS request did not complete")
	}
	if be.highs != 1 {
		t.Fatalf("high-priority submissions = %d, want 1", be.highs)
	}
	if tgt.PMStats().LSBypassed != 1 {
		t.Fatalf("LSBypassed = %d", tgt.PMStats().LSBypassed)
	}
}

func TestReadDataFlowsPerRequestEvenWhenCoalesced(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	const window = 4
	host, _ := pair(t, tgt, tcCfg(window, window))
	// Seed data.
	seed := make([]byte, 512*window)
	for i := range seed {
		seed[i] = byte(i)
	}
	if err := be.store.WriteBlocks(seed, 0); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	for i := 0; i < window; i++ {
		i := i
		if err := host.Submit(hostqp.IO{
			Op: nvme.OpRead, LBA: uint64(i), Blocks: 1,
			Done: func(r hostqp.Result) {
				if !r.Status.OK() {
					t.Errorf("read %d status %v", i, r.Status)
				}
				got = append(got, r.Data)
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != window {
		t.Fatalf("completed %d/%d", len(got), window)
	}
	for i, data := range got {
		if !bytes.Equal(data, seed[i*512:(i+1)*512]) {
			t.Fatalf("read %d data mismatch", i)
		}
	}
	// window data PDUs but only 1 response PDU.
	st := tgt.Stats()
	if st.DataPDUs != window || st.RespPDUs != 1 {
		t.Fatalf("data=%d resp=%d", st.DataPDUs, st.RespPDUs)
	}
}

func TestOutOfOrderDeviceCompletionsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		be := newFakeBackend(t, false) // manual completion release
		tgt := opfTarget(t, be)
		const window, n = 4, 32
		host, _ := pair(t, tgt, tcCfg(window, n))
		completions := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			lba := uint64(i)
			if err := host.Submit(hostqp.IO{
				Op: nvme.OpWrite, LBA: lba, Blocks: 1, Data: make([]byte, 512),
				Done: func(r hostqp.Result) {
					if completions[lba] {
						t.Fatalf("double completion for %d", lba)
					}
					completions[lba] = true
				},
			}); err != nil {
				t.Fatal(err)
			}
		}
		be.releaseShuffled(rng)
		if len(completions) != n {
			t.Fatalf("trial %d: completed %d/%d", trial, len(completions), n)
		}
		if host.Outstanding() != 0 {
			t.Fatalf("trial %d: %d CIDs leaked", trial, host.Outstanding())
		}
	}
}

func TestErrorInsideWindowPropagates(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	host, _ := pair(t, tgt, tcCfg(2, 4))
	var statuses []nvme.Status
	// First request out of range, second valid; both in one window.
	if err := host.Submit(hostqp.IO{
		Op: nvme.OpWrite, LBA: 1 << 20, Blocks: 1, Data: make([]byte, 512),
		Done: func(r hostqp.Result) { statuses = append(statuses, r.Status) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := host.Submit(hostqp.IO{
		Op: nvme.OpWrite, LBA: 0, Blocks: 1, Data: make([]byte, 512),
		Done: func(r hostqp.Result) { statuses = append(statuses, r.Status) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Fatalf("completed %d", len(statuses))
	}
	// The coalesced response carries the window's error status: both
	// callbacks observe it (documented coalescing semantics).
	for _, st := range statuses {
		if st != nvme.StatusLBAOutOfRange {
			t.Fatalf("status = %v, want LBAOutOfRange", st)
		}
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	be := newFakeBackend(t, false) // hold completions
	tgt := opfTarget(t, be)
	host, _ := pair(t, tgt, tcCfg(4, 4))
	for i := 0; i < 4; i++ {
		if err := host.Submit(hostqp.IO{
			Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(hostqp.Result) {},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if host.CanSubmit() {
		t.Fatal("CanSubmit true at full QD")
	}
	if err := host.Submit(hostqp.IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(hostqp.Result) {}}); err == nil {
		t.Fatal("submit beyond QD accepted")
	}
	be.releaseAll()
	if !host.CanSubmit() {
		t.Fatal("CanSubmit false after drain")
	}
}

func TestFlushTailWindow(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	host, _ := pair(t, tgt, tcCfg(8, 16))
	done := 0
	for i := 0; i < 3; i++ { // partial window
		if err := host.Submit(hostqp.IO{
			Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(hostqp.Result) { done++ },
		}); err != nil {
			t.Fatal(err)
		}
	}
	if done != 0 {
		t.Fatalf("tail window completed early: %d", done)
	}
	// Flush: the next request drains the tail.
	host.Flush()
	if err := host.Submit(hostqp.IO{
		Op: nvme.OpWrite, LBA: 3, Blocks: 1, Data: make([]byte, 512),
		Done: func(hostqp.Result) { done++ },
	}); err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("flush completed %d/4", done)
	}
}

func TestPerIOPriorityOverride(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	host, _ := pair(t, tgt, tcCfg(8, 16))
	// An LS-tagged metadata read on a TC connection completes immediately
	// without waiting for the window.
	done := false
	if err := host.Submit(hostqp.IO{
		Op: nvme.OpRead, LBA: 0, Blocks: 1, Prio: proto.PrioLatencySensitive,
		Done: func(r hostqp.Result) { done = r.Status.OK() },
	}); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("LS override request did not complete immediately")
	}
	if be.highs != 1 {
		t.Fatalf("high submissions = %d", be.highs)
	}
}

func TestSharedQueueAblationStillCompletesEverything(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt, err := NewTarget(Config{Mode: ModeOPF, MaxPending: 256, SharedQueueAblation: true}, be)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := pair(t, tgt, tcCfg(4, 16))
	h2, _ := pair(t, tgt, tcCfg(4, 16))
	done1, done2 := 0, 0
	// Interleave submissions from two tenants into the shared queue.
	for i := 0; i < 8; i++ {
		if err := h1.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(hostqp.Result) { done1++ }}); err != nil {
			t.Fatal(err)
		}
		if err := h2.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: uint64(64 + i), Blocks: 1, Data: make([]byte, 512),
			Done: func(hostqp.Result) { done2++ }}); err != nil {
			t.Fatal(err)
		}
	}
	if done1 != 8 || done2 != 8 {
		t.Fatalf("done1=%d done2=%d", done1, done2)
	}
	if tgt.PMStats().PrematureFlush == 0 {
		t.Fatal("shared queue produced no premature flushes; ablation not exercised")
	}
	// The hazard shows up as lost coalescing: more responses than the
	// isolated design's one-per-window.
	if tgt.Stats().RespPDUs <= 4 {
		t.Fatalf("resp PDUs = %d; expected coalescing loss", tgt.Stats().RespPDUs)
	}
}

func TestDuplicateCIDRejected(t *testing.T) {
	be := newFakeBackend(t, false)
	tgt := opfTarget(t, be)
	var tsess *Session
	var got []proto.PDU
	tsess, err := tgt.NewSession(func(p proto.PDU) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	if err := tsess.HandlePDU(&proto.ICReq{PFV: ProtocolVersion, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	cmd := &proto.CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 5, NSID: 1}, Prio: proto.PrioNormal}
	if err := tsess.HandlePDU(cmd); err != nil {
		t.Fatal(err)
	}
	if err := tsess.HandlePDU(cmd); err != nil {
		t.Fatal(err)
	}
	// Second submission with same CID answered with IDConflict.
	found := false
	for _, p := range got {
		if r, ok := p.(*proto.CapsuleResp); ok && r.Cpl.Status == nvme.StatusIDConflict {
			found = true
		}
	}
	if !found {
		t.Fatalf("no IDConflict response in %d PDUs", len(got))
	}
}

func TestProtocolVersionMismatch(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	var got []proto.PDU
	tsess, _ := tgt.NewSession(func(p proto.PDU) { got = append(got, p) })
	if err := tsess.HandlePDU(&proto.ICReq{PFV: 99}); err == nil {
		t.Fatal("bad PFV accepted")
	}
	if len(got) != 1 {
		t.Fatalf("pdus = %d", len(got))
	}
	if _, ok := got[0].(*proto.TermReq); !ok {
		t.Fatalf("want TermReq, got %v", got[0].PDUType())
	}
}

func TestCommandBeforeHandshakeRejected(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	tsess, _ := tgt.NewSession(func(proto.PDU) {})
	err := tsess.HandlePDU(&proto.CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1}})
	if err == nil {
		t.Fatal("command before handshake accepted")
	}
}

func TestOversizedInCapsuleDataRejected(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt, _ := NewTarget(Config{Mode: ModeOPF, MaxDataLen: 1024}, be)
	var got []proto.PDU
	tsess, _ := tgt.NewSession(func(p proto.PDU) { got = append(got, p) })
	if err := tsess.HandlePDU(&proto.ICReq{PFV: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if err := tsess.HandlePDU(&proto.CapsuleCmd{
		Cmd:  nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1, NLB: 7},
		Data: make([]byte, 4096),
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range got {
		if r, ok := p.(*proto.CapsuleResp); ok && r.Cpl.Status == nvme.StatusInvalidField {
			found = true
		}
	}
	if !found {
		t.Fatal("oversized capsule not rejected")
	}
}

func TestTenantSpaceExhaustion(t *testing.T) {
	be := newFakeBackend(t, true)
	// Start the allocator two IDs below the 16-bit ceiling so exhaustion
	// is reached after two handshakes instead of 65536.
	tgt, err := NewTarget(Config{Mode: ModeOPF, MaxPending: 256, TenantBase: 65534}, be)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		s, err := tgt.NewSession(func(proto.PDU) {})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if err := s.HandlePDU(&proto.ICReq{PFV: ProtocolVersion}); err != nil {
			t.Fatalf("handshake %d: %v", i, err)
		}
	}
	if _, err := tgt.NewSession(func(proto.PDU) {}); err == nil {
		t.Fatal("session past the 65536-ID space accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeBaseline.String() == "" || ModeOPF.String() == "" {
		t.Fatal("empty mode strings")
	}
}

func TestCloseSessionDropsQueueAndRecyclesTenantID(t *testing.T) {
	be := newFakeBackend(t, false)
	tgt := opfTarget(t, be)
	host, tsess := pair(t, tgt, tcCfg(8, 16)) // window 8: nothing drains
	for i := 0; i < 3; i++ {
		err := host.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1,
			Data: make([]byte, 512), Done: func(hostqp.Result) {}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := tgt.ActiveSessions(); n != 1 {
		t.Fatalf("active sessions = %d", n)
	}
	tgt.CloseSession(tsess)
	if !tsess.Dead() {
		t.Fatal("session not marked dead")
	}
	if n := tgt.ActiveSessions(); n != 0 {
		t.Fatalf("active sessions after close = %d", n)
	}
	st := tgt.Stats()
	if st.Disconnects != 1 || st.TeardownDrops != 3 {
		t.Fatalf("disconnects=%d teardownDrops=%d", st.Disconnects, st.TeardownDrops)
	}
	if pm := tgt.PMStats(); pm.TeardownDrops != 3 {
		t.Fatalf("PM TeardownDrops = %d", pm.TeardownDrops)
	}
	// Idempotent.
	tgt.CloseSession(tsess)
	if tgt.Stats().Disconnects != 1 {
		t.Fatal("CloseSession not idempotent")
	}
	// No in-flight requests remained, so the tenant ID recycles at once.
	h2, _ := pair(t, tgt, lsCfg())
	if h2.Tenant() != host.Tenant() {
		t.Fatalf("tenant not recycled: old=%d new=%d", host.Tenant(), h2.Tenant())
	}
}

func TestCloseSessionDefersTenantReuseUntilInFlightDrains(t *testing.T) {
	be := newFakeBackend(t, false)
	tgt := opfTarget(t, be)
	host, tsess := pair(t, tgt, tcCfg(2, 16)) // window 2: 2nd submit drains
	for i := 0; i < 2; i++ {
		err := host.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1,
			Data: make([]byte, 512), Done: func(hostqp.Result) {}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(be.queue) != 2 {
		t.Fatalf("in-flight = %d, want the drained window of 2", len(be.queue))
	}
	// One more sits queued (window half full) when the connection dies.
	err := host.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: 9, Blocks: 1,
		Data: make([]byte, 512), Done: func(hostqp.Result) {}})
	if err != nil {
		t.Fatal(err)
	}
	tgt.CloseSession(tsess)
	if st := tgt.Stats(); st.TeardownDrops != 1 {
		t.Fatalf("TeardownDrops = %d, want only the queued request", st.TeardownDrops)
	}
	// Two device callbacks are still in flight: the tenant ID must NOT be
	// reusable yet, or their completions could be attributed to a new owner.
	h2, _ := pair(t, tgt, lsCfg())
	if h2.Tenant() == host.Tenant() {
		t.Fatalf("tenant %d recycled while callbacks in flight", host.Tenant())
	}
	// Completions land in the tombstoned session: no response PDU goes out.
	be.releaseAll()
	if st := tgt.Stats(); st.RespPDUs != 0 {
		t.Fatalf("dead session sent %d responses", st.RespPDUs)
	}
	// Now the pool is drained and the ID is safe to reuse.
	h3, _ := pair(t, tgt, lsCfg())
	if h3.Tenant() != host.Tenant() {
		t.Fatalf("tenant not recycled after drain: old=%d new=%d", host.Tenant(), h3.Tenant())
	}
}

func TestCloseSessionSurvivorsKeepCompleting(t *testing.T) {
	be := newFakeBackend(t, false)
	tgt := opfTarget(t, be)
	victim, vsess := pair(t, tgt, tcCfg(4, 16))
	survivor, _ := pair(t, tgt, tcCfg(2, 16))
	for i := 0; i < 2; i++ {
		if err := victim.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1,
			Data: make([]byte, 512), Done: func(hostqp.Result) {}}); err != nil {
			t.Fatal(err)
		}
	}
	tgt.CloseSession(vsess)
	// The survivor's window drains and completes normally.
	completed := 0
	for i := 0; i < 2; i++ {
		err := survivor.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: uint64(100 + i), Blocks: 1,
			Data: make([]byte, 512), Done: func(r hostqp.Result) {
				if !r.Status.OK() {
					t.Errorf("survivor status %v", r.Status)
				}
				completed++
			}})
		if err != nil {
			t.Fatal(err)
		}
	}
	be.releaseAll()
	if completed != 2 {
		t.Fatalf("survivor completed %d of 2 after neighbour teardown", completed)
	}
}

func TestCloseSessionBeforeHandshakeIsNoop(t *testing.T) {
	be := newFakeBackend(t, true)
	tgt := opfTarget(t, be)
	tsess, err := tgt.NewSession(func(proto.PDU) {})
	if err != nil {
		t.Fatal(err)
	}
	tgt.CloseSession(tsess)
	tgt.CloseSession(nil)
	if st := tgt.Stats(); st.Disconnects != 0 {
		t.Fatalf("Disconnects = %d for unconnected session", st.Disconnects)
	}
}
