package targetqp

import (
	"bytes"
	"testing"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// nsBackend is a fakeBackend with a configurable namespace ID.
type nsBackend struct {
	fakeBackend
}

func newNSBackend(t *testing.T, nsid uint32) *nsBackend {
	t.Helper()
	b := &nsBackend{}
	b.ns = nvme.Namespace{ID: nsid, BlockSize: 512, Capacity: 2048}
	store, err := bdev.NewMemory(512, 2048)
	if err != nil {
		t.Fatal(err)
	}
	b.store = store
	b.auto = true
	return b
}

func TestAddNamespaceValidation(t *testing.T) {
	be1 := newNSBackend(t, 1)
	tgt, err := NewTarget(Config{Mode: ModeOPF}, be1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.AddNamespace(nil); err == nil {
		t.Error("nil backend accepted")
	}
	if err := tgt.AddNamespace(newNSBackend(t, 1)); err == nil {
		t.Error("duplicate NSID accepted")
	}
	if err := tgt.AddNamespace(newNSBackend(t, 2)); err != nil {
		t.Fatal(err)
	}
	if got := len(tgt.Namespaces()); got != 2 {
		t.Fatalf("namespaces = %d", got)
	}
}

func TestNewTargetRejectsInvalidNamespace(t *testing.T) {
	b := &nsBackend{}
	b.ns = nvme.Namespace{ID: 0, BlockSize: 512, Capacity: 10}
	if _, err := NewTarget(Config{}, b); err == nil {
		t.Fatal("NSID 0 backend accepted")
	}
}

func TestCommandsRouteByNSID(t *testing.T) {
	be1 := newNSBackend(t, 1)
	be2 := newNSBackend(t, 2)
	tgt, err := NewTarget(Config{Mode: ModeOPF, MaxPending: 64}, be1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.AddNamespace(be2); err != nil {
		t.Fatal(err)
	}

	// Two hosts, one per namespace, writing distinct data to LBA 0.
	h1, _ := pair(t, tgt, hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 2, NSID: 1})
	h2, _ := pair(t, tgt, hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 2, NSID: 2})
	d1 := bytes.Repeat([]byte{0x11}, 512)
	d2 := bytes.Repeat([]byte{0x22}, 512)
	for _, w := range []struct {
		h *hostqp.Session
		d []byte
	}{{h1, d1}, {h2, d2}} {
		ok := false
		if err := w.h.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: 0, Blocks: 1, Data: w.d,
			Done: func(r hostqp.Result) { ok = r.Status.OK() }}); err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("write failed")
		}
	}
	// Each namespace holds only its own data.
	got1 := make([]byte, 512)
	got2 := make([]byte, 512)
	if err := be1.store.ReadBlocks(got1, 0); err != nil {
		t.Fatal(err)
	}
	if err := be2.store.ReadBlocks(got2, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, d1) || !bytes.Equal(got2, d2) {
		t.Fatal("namespace data interleaved")
	}
}

func TestConnectToUnknownNamespaceTerminated(t *testing.T) {
	tgt, err := NewTarget(Config{Mode: ModeOPF}, newNSBackend(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	var got []proto.PDU
	tsess, _ := tgt.NewSession(func(p proto.PDU) { got = append(got, p) })
	if err := tsess.HandlePDU(&proto.ICReq{PFV: ProtocolVersion, NSID: 9}); err == nil {
		t.Fatal("connect to unknown namespace accepted")
	}
	if len(got) != 1 {
		t.Fatalf("pdus = %d", len(got))
	}
	if _, ok := got[0].(*proto.TermReq); !ok {
		t.Fatalf("want TermReq, got %v", got[0].PDUType())
	}
}

func TestCommandToUnknownNamespaceErrors(t *testing.T) {
	tgt, err := NewTarget(Config{Mode: ModeOPF, MaxPending: 64}, newNSBackend(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Connect against NS 1, then craft a command naming NS 7 directly on
	// the target session (the host helper always uses its config NSID).
	var got []proto.PDU
	tsess, _ := tgt.NewSession(func(p proto.PDU) { got = append(got, p) })
	if err := tsess.HandlePDU(&proto.ICReq{PFV: ProtocolVersion, NSID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tsess.HandlePDU(&proto.CapsuleCmd{
		Cmd:  nvme.Command{Opcode: nvme.OpRead, CID: 3, NSID: 7},
		Prio: proto.PrioLatencySensitive,
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range got {
		if r, ok := p.(*proto.CapsuleResp); ok && r.Cpl.Status == nvme.StatusInvalidNSID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no InvalidNSID response among %d PDUs", len(got))
	}
}

// Geometry in ICResp must describe the requested namespace.
func TestICRespDescribesRequestedNamespace(t *testing.T) {
	big := &nsBackend{}
	big.ns = nvme.Namespace{ID: 2, BlockSize: 4096, Capacity: 1 << 20}
	store, _ := bdev.NewMemory(4096, 1<<20)
	big.store, big.auto = store, true

	tgt, err := NewTarget(Config{Mode: ModeOPF}, newNSBackend(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.AddNamespace(big); err != nil {
		t.Fatal(err)
	}
	h, _ := pair(t, tgt, hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 2})
	if h.BlockSize() != 4096 || h.Capacity() != 1<<20 {
		t.Fatalf("geometry %d/%d, want namespace 2's", h.BlockSize(), h.Capacity())
	}
}
