// Package cluster is the host-side view of a replicated NVMe-oPF
// deployment: a Client that routes each I/O by namespace shard to the
// shard's primary target, mirrors writes to the replica, and fails over
// through the transport's reconnect-and-replay machinery when a target
// dies — re-pointed at the promoted replica by a resolver backed by the
// discovery control plane's shard map.
//
// Consistency contract: a write is acknowledged only after both the
// primary and the replica persisted it (or after the primary alone when
// the shard is knowingly unreplicated and the caller opted in), so an
// acknowledged write survives the loss of either copy. A shard whose
// replica died degrades to read-only by default — refusing new writes is
// what keeps the "acked ⇒ replicated" invariant honest while the control
// plane finds a standby.
//
// Split-brain fencing: the discovery map carries a monotonic epoch. The
// client never adopts a map older than the one it holds (a partitioned
// discovery endpoint cannot roll the cluster backwards), and targets echo
// their last-seen epoch on re-registration so an expired ex-primary
// cannot rejoin acting on a stale map.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/tcptrans"
	"nvmeopf/internal/telemetry"
)

// ErrReadOnly is returned for writes to a shard that currently has no
// live replica (and the client did not opt into unreplicated writes).
var ErrReadOnly = errors.New("cluster: shard degraded to read-only (no live replica)")

// ErrNoPrimary is returned when a shard has no live primary at all.
var ErrNoPrimary = errors.New("cluster: shard has no live primary")

// Config configures a cluster Client.
type Config struct {
	// DiscoveryAddr is the control plane endpoint.
	DiscoveryAddr string
	// Conn is the per-target session configuration (class, window, queue
	// depth, telemetry); every primary and replica session uses it.
	Conn tcptrans.ConnConfig
	// Dial is the per-target dial/recovery template. Recovery may be nil:
	// the client then enables replay for both wire classes (failover is
	// the point). A caller-provided Recovery keeps its gates; only the
	// Resolver is overwritten — it belongs to the client.
	Dial tcptrans.DialConfig
	// DiscoveryDialer optionally replaces net.Dial for control-plane
	// traffic only (fault injection partitions host↔discovery here).
	DiscoveryDialer tcptrans.Dialer
	// RefreshInterval is the background map-refresh cadence (default
	// 100ms; 0 keeps the default, negative disables the loop).
	RefreshInterval time.Duration
	// AllowUnreplicated permits writes to a shard with no live replica.
	// Off by default: acknowledged writes are replicated writes.
	AllowUnreplicated bool
	// Telemetry optionally receives failover/stale-epoch counters and the
	// cluster epoch/degraded gauges.
	Telemetry *telemetry.Registry
}

// shardConn holds one shard's transport clients. The primary client is
// permanent — failover re-points it through its resolver so its replay
// queue survives the promotion — while the replica client is rebuilt
// whenever the map hands the role to a different target.
type shardConn struct {
	mu         sync.Mutex
	primary    *tcptrans.ResilientClient
	replica    *tcptrans.ResilientClient
	replicaNQN string // NQN the current replica client was built for
}

// Client routes I/O across a replicated multi-target cluster.
type Client struct {
	cfg Config

	mu      sync.Mutex
	epoch   uint64
	addrs   map[string]string // NQN -> dial address
	assign  []proto.ShardAssignment
	nshards int
	closed  bool

	shards []*shardConn

	quit chan struct{}
	wg   sync.WaitGroup
}

// Dial discovers the cluster map and returns a routing client. The
// initial discovery must succeed and describe at least one shard;
// per-target connections are established lazily on first use.
func Dial(cfg Config) (*Client, error) {
	if cfg.RefreshInterval == 0 {
		cfg.RefreshInterval = 100 * time.Millisecond
	}
	c := &Client{cfg: cfg, quit: make(chan struct{})}
	resp, err := tcptrans.DiscoverCluster(cfg.DiscoveryAddr, cfg.DiscoveryDialer)
	if err != nil {
		return nil, fmt.Errorf("cluster: initial discovery: %w", err)
	}
	if len(resp.Assignments) == 0 {
		return nil, errors.New("cluster: discovery map has no shards")
	}
	c.nshards = len(resp.Assignments)
	c.shards = make([]*shardConn, c.nshards)
	for i := range c.shards {
		c.shards[i] = &shardConn{}
	}
	c.adopt(resp)
	if cfg.RefreshInterval > 0 {
		c.wg.Add(1)
		go c.refreshLoop()
	}
	return c, nil
}

// NumShards returns the cluster width the client routes over.
func (c *Client) NumShards() int { return c.nshards }

// Shard maps a namespace ID to its shard index (namespaces stripe over
// shards round-robin; NSID 0 is treated as 1).
func (c *Client) Shard(nsid uint32) int {
	if nsid == 0 {
		nsid = 1
	}
	return int((nsid - 1) % uint32(c.nshards))
}

// Epoch returns the cluster-map epoch the client currently holds.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Degraded reports whether the namespace's shard is currently running
// without a live replica (writes refused unless AllowUnreplicated).
func (c *Client) Degraded(nsid uint32) bool {
	s := c.Shard(nsid)
	c.mu.Lock()
	defer c.mu.Unlock()
	return s >= len(c.assign) || c.assign[s].Replica == ""
}

// refreshLoop keeps the map fresh in the background.
func (c *Client) refreshLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			_ = c.Refresh() // transient discovery outages are tolerated
		}
	}
}

// Refresh pulls the current map from discovery and adopts it if it is
// not older than the one held.
func (c *Client) Refresh() error {
	resp, err := tcptrans.DiscoverCluster(c.cfg.DiscoveryAddr, c.cfg.DiscoveryDialer)
	if err != nil {
		return err
	}
	return c.adopt(resp)
}

// adopt installs a discovery map. Maps older than the held epoch are
// rejected (split-brain protection); equal epochs refresh addresses only.
func (c *Client) adopt(resp *proto.DiscResp) error {
	c.mu.Lock()
	if resp.Epoch < c.epoch {
		held := c.epoch
		c.mu.Unlock()
		c.cfg.Telemetry.IncStaleEpoch()
		return fmt.Errorf("cluster: rejecting stale map epoch %d < held %d", resp.Epoch, held)
	}
	addrs := make(map[string]string, len(resp.Entries))
	for _, e := range resp.Entries {
		addrs[e.NQN] = e.Addr
	}
	failovers := 0
	if resp.Epoch > c.epoch || c.addrs == nil {
		for i, a := range resp.Assignments {
			if i < len(c.assign) && c.assign[i].Primary != "" && a.Primary != "" &&
				a.Primary != c.assign[i].Primary {
				failovers++
			}
		}
		c.assign = append(c.assign[:0], resp.Assignments...)
		c.epoch = resp.Epoch
	}
	c.addrs = addrs
	degraded := false
	type replicaWant struct {
		sc  *shardConn
		nqn string
	}
	wants := make([]replicaWant, 0, len(c.shards))
	for i, sc := range c.shards {
		want := ""
		if i < len(c.assign) {
			want = c.assign[i].Replica
			if want == "" || c.assign[i].Primary == "" {
				degraded = true
			}
		} else {
			degraded = true
		}
		wants = append(wants, replicaWant{sc, want})
	}
	epoch := c.epoch
	c.mu.Unlock()

	// Reconcile replica clients outside c.mu (shardConn locks nest under
	// nothing). A replica whose role moved is torn down; the next write
	// dials the new holder lazily.
	for _, w := range wants {
		w.sc.mu.Lock()
		if w.sc.replicaNQN != w.nqn {
			if w.sc.replica != nil {
				go w.sc.replica.Close()
				w.sc.replica = nil
			}
			w.sc.replicaNQN = w.nqn
		}
		w.sc.mu.Unlock()
	}
	c.cfg.Telemetry.SetClusterEpoch(epoch)
	c.cfg.Telemetry.SetClusterDegraded(degraded)
	for i := 0; i < failovers; i++ {
		c.cfg.Telemetry.IncFailover()
	}
	return nil
}

// roleAddr resolves the shard's current holder of a role from the held
// map (primary when replica=false).
func (c *Client) roleAddr(shard int, replica bool) (nqn, addr string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard >= len(c.assign) {
		return "", "", fmt.Errorf("cluster: shard %d not in map", shard)
	}
	a := c.assign[shard]
	nqn = a.Primary
	if replica {
		nqn = a.Replica
		if nqn == "" {
			return "", "", fmt.Errorf("cluster: shard %d has no live replica", shard)
		}
	} else if nqn == "" {
		return "", "", fmt.Errorf("%w: shard %d", ErrNoPrimary, shard)
	}
	addr = c.addrs[nqn]
	if addr == "" {
		return "", "", fmt.Errorf("cluster: no address for %q", nqn)
	}
	return nqn, addr, nil
}

// dialCfg builds the per-target DialConfig with the role resolver wired
// into recovery: every reconnect attempt refreshes the map and re-points
// at the role's current holder — on failover, the promoted replica.
func (c *Client) dialCfg(shard int, replica bool) tcptrans.DialConfig {
	dcfg := c.cfg.Dial
	var rcfg tcptrans.RecoveryConfig
	if dcfg.Recovery != nil {
		rcfg = *dcfg.Recovery
	} else {
		rcfg = tcptrans.RecoveryConfig{RequeueLS: true, RequeueTC: true}
	}
	rcfg.Resolver = func() (string, error) {
		_ = c.Refresh() // best effort: prefer the freshest map before re-dialing
		_, addr, err := c.roleAddr(shard, replica)
		return addr, err
	}
	dcfg.Recovery = &rcfg
	return dcfg
}

// ensurePrimary returns the shard's primary client, dialing on first use.
func (c *Client) ensurePrimary(shard int) (*tcptrans.ResilientClient, error) {
	sc := c.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.primary != nil {
		return sc.primary, nil
	}
	_, addr, err := c.roleAddr(shard, false)
	if err != nil {
		return nil, err
	}
	rc, err := tcptrans.DialResilient(addr, c.cfg.Conn, c.dialCfg(shard, false))
	if err != nil {
		return nil, fmt.Errorf("cluster: dial shard %d primary: %w", shard, err)
	}
	sc.primary = rc
	return rc, nil
}

// ensureReplica returns the shard's replica client, dialing on first use.
// (nil, nil) means the shard is knowingly unreplicated in the held map.
func (c *Client) ensureReplica(shard int) (*tcptrans.ResilientClient, error) {
	sc := c.shards[shard]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.replicaNQN == "" {
		return nil, nil
	}
	if sc.replica != nil {
		return sc.replica, nil
	}
	nqn, addr, err := c.roleAddr(shard, true)
	if err != nil {
		return nil, nil // role vanished since reconciliation: unreplicated
	}
	rc, err := tcptrans.DialResilient(addr, c.cfg.Conn, c.dialCfg(shard, true))
	if err != nil {
		return nil, fmt.Errorf("cluster: dial shard %d replica: %w", shard, err)
	}
	sc.replica = rc
	sc.replicaNQN = nqn
	return rc, nil
}

// submit issues one asynchronous I/O on a resilient client, folding a
// non-OK device status into the error and delivering exactly one value.
func submit(rc *tcptrans.ResilientClient, io hostqp.IO, errs chan<- error) {
	err := rc.Submit(io, func(r hostqp.Result, err error) {
		if err == nil && !r.Status.OK() {
			err = fmt.Errorf("cluster: I/O failed: %v", r.Status)
		}
		errs <- err
	})
	if err != nil {
		errs <- err
	}
}

// Write stores data on the namespace's shard: mirrored to primary and
// replica, acknowledged only after both persisted it. With no live
// replica it fails with ErrReadOnly unless AllowUnreplicated. idempotent
// declares that replaying the write verbatim is safe across a connection
// loss — without it, a mid-flight target death surfaces the original
// transport error instead of replaying.
func (c *Client) Write(nsid uint32, lba uint64, data []byte, prio proto.Priority, idempotent bool) error {
	s := c.Shard(nsid)
	p, err := c.ensurePrimary(s)
	if err != nil {
		_ = c.Refresh()
		return err
	}
	bs := p.BlockSize()
	if bs == 0 {
		bs = 4096
	}
	if len(data) == 0 || len(data)%int(bs) != 0 {
		return fmt.Errorf("cluster: %d bytes is not a multiple of the %dB block size", len(data), bs)
	}
	io := hostqp.IO{
		Op: nvme.OpWrite, LBA: lba, Blocks: uint32(len(data) / int(bs)),
		Data: data, Prio: prio, Idempotent: idempotent,
	}
	r, err := c.ensureReplica(s)
	if err != nil {
		return err
	}
	if r == nil {
		if !c.cfg.AllowUnreplicated {
			return fmt.Errorf("%w: shard %d", ErrReadOnly, s)
		}
		errs := make(chan error, 1)
		submit(p, io, errs)
		if werr := <-errs; werr != nil {
			_ = c.Refresh()
			return werr
		}
		return nil
	}
	errs := make(chan error, 2)
	submit(p, io, errs)
	submit(r, io, errs)
	var werr error
	for i := 0; i < 2; i++ {
		if e := <-errs; e != nil && werr == nil {
			werr = e
		}
	}
	if werr != nil {
		// Not acknowledged: at most one copy has it. Refresh so the next
		// attempt routes on the post-failure map.
		_ = c.Refresh()
		return werr
	}
	return nil
}

// Read fetches blocks from the namespace's shard primary, falling back
// to the replica when the primary path is exhausted (reads are always
// idempotent, so the fallback is safe).
func (c *Client) Read(nsid uint32, lba uint64, blocks uint32, prio proto.Priority) ([]byte, error) {
	s := c.Shard(nsid)
	p, perr := c.ensurePrimary(s)
	if perr == nil {
		data, err := p.Read(lba, blocks, prio)
		if err == nil {
			return data, nil
		}
		perr = err
	}
	if r, _ := c.ensureReplica(s); r != nil {
		if data, err := r.Read(lba, blocks, prio); err == nil {
			return data, nil
		}
	}
	_ = c.Refresh()
	return nil, perr
}

// Flush issues a durability barrier on the namespace's shard — both
// copies, mirroring Write's acknowledgement rule (a degraded shard
// flushes the primary alone: flush never creates new divergence).
func (c *Client) Flush(nsid uint32) error {
	s := c.Shard(nsid)
	p, err := c.ensurePrimary(s)
	if err != nil {
		return err
	}
	io := hostqp.IO{Op: nvme.OpFlush}
	r, _ := c.ensureReplica(s)
	if r == nil {
		errs := make(chan error, 1)
		submit(p, io, errs)
		return <-errs
	}
	errs := make(chan error, 2)
	submit(p, io, errs)
	submit(r, io, errs)
	var ferr error
	for i := 0; i < 2; i++ {
		if e := <-errs; e != nil && ferr == nil {
			ferr = e
		}
	}
	return ferr
}

// Close tears down the refresh loop and every per-target client.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.quit)
	c.wg.Wait()
	var first error
	for _, sc := range c.shards {
		sc.mu.Lock()
		p, r := sc.primary, sc.replica
		sc.primary, sc.replica = nil, nil
		sc.mu.Unlock()
		if p != nil {
			if err := p.Close(); err != nil && first == nil {
				first = err
			}
		}
		if r != nil {
			if err := r.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
