package cluster

import (
	"strings"
	"sync"
	"time"

	"nvmeopf/internal/proto"
	"nvmeopf/internal/tcptrans"
)

// RegistrarConfig configures a target's keep-alive registration loop.
type RegistrarConfig struct {
	// DiscoveryAddr is the control plane endpoint.
	DiscoveryAddr string
	// Entry describes this target in the discovery log.
	Entry proto.DiscEntry
	// Shards are the namespace shards this target volunteers to serve.
	Shards []uint32
	// Interval is the re-registration cadence (default 500ms).
	Interval time.Duration
	// TTL is the liveness deadline the target promises to refresh within
	// (default 3×Interval — two missed heartbeats before expiry).
	TTL time.Duration
	// Dialer optionally replaces net.Dial for registration traffic
	// (fault injection partitions target↔discovery here).
	Dialer tcptrans.Dialer
}

// Registrar keeps one target registered with the control plane: it
// re-registers every Interval carrying the last map epoch the plane
// returned, so the plane can tell a heartbeat from a stale rejoin. If a
// registration is rejected for a stale epoch (this target expired and
// the map moved on), the registrar re-discovers the current map first
// and rejoins with the fresh epoch — it may come back only as a standby,
// never silently resuming its old role.
type Registrar struct {
	cfg  RegistrarConfig
	quit chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	epoch   uint64
	lastErr error
}

// StartRegistrar performs one synchronous registration (failing fast if
// the control plane is unreachable or rejects the entry) and then keeps
// it alive in the background until Stop.
func StartRegistrar(cfg RegistrarConfig) (*Registrar, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * cfg.Interval
	}
	r := &Registrar{cfg: cfg, quit: make(chan struct{})}
	if err := r.registerOnce(); err != nil {
		return nil, err
	}
	r.wg.Add(1)
	go r.loop()
	return r, nil
}

// Epoch returns the last map epoch the control plane returned.
func (r *Registrar) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Err returns the most recent keep-alive error (nil after a success).
func (r *Registrar) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Stop ends the keep-alive loop. The registration is left to expire via
// its TTL (a dying target cannot be relied on to say goodbye anyway).
func (r *Registrar) Stop() {
	r.mu.Lock()
	select {
	case <-r.quit:
		r.mu.Unlock()
		return
	default:
	}
	close(r.quit)
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *Registrar) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-t.C:
			err := r.registerOnce()
			if err != nil && isStaleEpoch(err) {
				// Expired while partitioned: adopt the current map's
				// epoch, then rejoin acting on fresh state.
				if resp, derr := tcptrans.DiscoverCluster(r.cfg.DiscoveryAddr, r.cfg.Dialer); derr == nil {
					r.mu.Lock()
					r.epoch = resp.Epoch
					r.mu.Unlock()
					err = r.registerOnce()
				}
			}
			r.mu.Lock()
			r.lastErr = err
			r.mu.Unlock()
		}
	}
}

func (r *Registrar) registerOnce() error {
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	resp, err := tcptrans.RegisterCluster(r.cfg.DiscoveryAddr, proto.DiscRegister{
		Entry:  r.cfg.Entry,
		TTLMs:  uint32(r.cfg.TTL.Milliseconds()),
		Epoch:  epoch,
		Shards: r.cfg.Shards,
	}, r.cfg.Dialer)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.epoch = resp.Epoch
	r.lastErr = nil
	r.mu.Unlock()
	return nil
}

// isStaleEpoch matches the control plane's stale-epoch rejection (which
// arrives as a formatted TermReq reason, not a typed error).
func isStaleEpoch(err error) bool {
	return err != nil && strings.Contains(err.Error(), "stale epoch")
}
