package cluster

// Cluster chaos harness: replicated namespaces over real TCP targets with
// a live discovery control plane, run under -race. The invariants:
//
//   - zero lost acknowledged writes: every write the cluster client acked
//     before, during, or after a primary kill reads back byte-exact after
//     failover to the promoted replica;
//   - survivors keep meeting drain windows: a throughput-critical
//     workload on the untouched shard makes steady synchronous progress
//     (each write needs a full drain round trip) throughout the kill;
//   - split-brain protection: a discovery map older than the held epoch
//     is rejected by the host, and counted;
//   - graceful degradation: a shard with no live replica refuses writes
//     with ErrReadOnly and keeps serving reads;
//   - a host↔discovery partition degrades nothing that is already
//     connected: I/O continues on the held map until the partition heals.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/faultnet"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/tcptrans"
	"nvmeopf/internal/telemetry"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > %d+%d\n%s", runtime.NumGoroutine(), base, slack, buf[:n])
}

// target is one live cluster member: an OPF target server plus the
// keep-alive registrar that keeps it in the discovery map.
type target struct {
	nqn string
	srv *tcptrans.Server
	reg *Registrar
}

// startTarget boots a target and registers it with a fast heartbeat
// (50ms interval, 150ms TTL) claiming the given shards.
func startTarget(t *testing.T, discAddr, nqn string, shards []uint32) *target {
	t.Helper()
	dev, err := bdev.NewMemory(4096, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := tcptrans.Listen("127.0.0.1:0", tcptrans.ServerConfig{
		Mode: targetqp.ModeOPF, Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := StartRegistrar(RegistrarConfig{
		DiscoveryAddr: discAddr,
		Entry:         proto.DiscEntry{NQN: nqn, Addr: srv.Addr(), Mode: uint8(targetqp.ModeOPF)},
		Shards:        shards,
		Interval:      50 * time.Millisecond,
		TTL:           150 * time.Millisecond,
	})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return &target{nqn: nqn, srv: srv, reg: reg}
}

// kill is an abrupt target death: heartbeat stops, live sockets die.
func (tg *target) kill() {
	tg.reg.Stop()
	tg.srv.Close()
}

func (tg *target) stop() { tg.kill() }

// stamp builds one 4 KiB block whose content encodes its sequence number
// in every 8-byte word, so a torn or lost write cannot read back clean.
func stamp(seq uint64) []byte {
	buf := make([]byte, 4096)
	for off := 0; off+8 <= len(buf); off += 8 {
		binary.LittleEndian.PutUint64(buf[off:], seq)
	}
	return buf
}

func checkStamp(data []byte, seq uint64) error {
	for off := 0; off+8 <= len(data); off += 8 {
		if got := binary.LittleEndian.Uint64(data[off:]); got != seq {
			return fmt.Errorf("word at %d = %d, want %d", off, got, seq)
		}
	}
	return nil
}

// TestClusterFailoverMidWindowNoLostAcks is the acceptance chaos test:
// two shards across three targets, closed-loop writers on both shards,
// and the shard-0 primary killed mid-drain-window (its sockets cut by
// the fault injector with writes in flight). Afterward every acknowledged
// shard-0 write must read back from the promoted replica, and the
// survivor shard's throughput-critical writer must have kept completing
// drain windows throughout.
func TestClusterFailoverMidWindowNoLostAcks(t *testing.T) {
	base := runtime.NumGoroutine()
	hostReg := telemetry.New()
	discReg := telemetry.New()
	disc, err := tcptrans.ListenDiscoveryCluster("127.0.0.1:0", tcptrans.DiscoveryConfig{
		Telemetry: discReg, SweepInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Shard 0: primary t1, replica t2 (t3 claims it too — the standby
	// that backfills the replica role after the failover).
	// Shard 1: primary t2, replica t3 — untouched by the kill.
	t1 := startTarget(t, disc.Addr(), "nqn.cluster.a", []uint32{0})
	t2 := startTarget(t, disc.Addr(), "nqn.cluster.b", []uint32{0, 1})
	t3 := startTarget(t, disc.Addr(), "nqn.cluster.c", []uint32{0, 1})
	waitFor(t, "initial map", func() bool {
		as := disc.Assignments()
		return len(as) == 2 && as[0].Primary == t1.nqn && as[0].Replica == t2.nqn &&
			as[1].Primary == t2.nqn && as[1].Replica == t3.nqn
	})

	// Victim sockets (host → t1) run through the fault injector so the
	// kill severs them mid-flight; every other dial is clean.
	inj := faultnet.NewInjector(7)
	victimAddr := t1.srv.Addr()
	victimDial := faultnet.Dialer(inj)
	dial := func(network, addr string) (net.Conn, error) {
		if addr == victimAddr {
			return victimDial(network, addr)
		}
		return net.Dial(network, addr)
	}

	cc, err := Dial(Config{
		DiscoveryAddr: disc.Addr(),
		Conn:          hostqp.Config{Class: proto.PrioThroughputCritical, Window: 8, QueueDepth: 16, NSID: 1},
		Dial: tcptrans.DialConfig{
			HandshakeTimeout: 5 * time.Second,
			RequestTimeout:   2 * time.Second,
			Dialer:           dial,
			Recovery: &tcptrans.RecoveryConfig{
				MaxAttempts: 30, Backoff: 10 * time.Millisecond,
				RequeueLS: true, RequeueTC: true,
			},
		},
		RefreshInterval: 20 * time.Millisecond,
		Telemetry:       hostReg,
	})
	if err != nil {
		t.Fatal(err)
	}

	type ack struct{ lba, seq uint64 }
	var ackMu sync.Mutex
	var acked []ack

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var survivorOps atomic.Int64

	// Shard-0 writer: fresh LBA per write, record every acknowledgement.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var seq uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			lba := seq % (1 << 13)
			if err := cc.Write(1, lba, stamp(seq), 0, true); err == nil {
				ackMu.Lock()
				acked = append(acked, ack{lba, seq})
				ackMu.Unlock()
			}
			// Unacked writes are allowed during the failover window —
			// the invariant is acked ⇒ durable, not all-succeed.
		}
	}()

	// Shard-1 survivor: synchronous TC writes, each completing only once
	// its drain window closes. Its LBA lives outside the shard-0 writer's
	// range: shards sharing a target share that target's device, so the
	// workloads must not overlap block addresses.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := stamp(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := cc.Write(2, 12000, buf, 0, true); err != nil {
				t.Errorf("survivor shard write failed: %v", err)
				return
			}
			survivorOps.Add(1)
		}
	}()

	// Let both shards make real progress first.
	waitFor(t, "pre-kill progress on both shards", func() bool {
		ackMu.Lock()
		n := len(acked)
		ackMu.Unlock()
		return n >= 20 && survivorOps.Load() >= 20
	})

	// Kill the shard-0 primary mid-drain-window: cut its live sockets
	// (writes in flight die with them), stop its heartbeat, close it.
	preKillSurvivor := survivorOps.Load()
	inj.ResetAll()
	t1.kill()

	waitFor(t, "replica promoted", func() bool {
		as := disc.Assignments()
		return len(as) == 2 && as[0].Primary == t2.nqn && as[0].Replica == t3.nqn
	})
	// The writers must make post-failover progress on both shards.
	var postFailoverAcks int
	waitFor(t, "post-failover progress", func() bool {
		ackMu.Lock()
		n := len(acked)
		ackMu.Unlock()
		if postFailoverAcks == 0 {
			postFailoverAcks = n // first observation after promotion
			return false
		}
		return n > postFailoverAcks+20 && survivorOps.Load() > preKillSurvivor+20
	})
	close(stop)
	wg.Wait()

	if err := cc.Flush(1); err != nil {
		t.Fatalf("post-failover flush: %v", err)
	}

	// Zero lost acknowledged writes: every acked (lba, seq) — the last
	// ack per LBA — reads back byte-exact from the promoted topology.
	last := make(map[uint64]uint64)
	ackMu.Lock()
	for _, a := range acked {
		last[a.lba] = a.seq
	}
	total := len(acked)
	ackMu.Unlock()
	checked := 0
	for lba, seq := range last {
		data, err := cc.Read(1, lba, 1, 0)
		if err != nil {
			t.Fatalf("read back lba %d: %v", lba, err)
		}
		if err := checkStamp(data, seq); err != nil {
			t.Fatalf("acked write lost at lba %d (seq %d): %v", lba, seq, err)
		}
		checked++
	}
	if checked == 0 || total < 40 {
		t.Fatalf("workload too small to mean anything: %d acks, %d lbas", total, checked)
	}

	if hostReg.Global().Failovers == 0 {
		t.Error("host recorded no failover despite the promotion")
	}
	if discReg.Global().DiscoveryExpired == 0 {
		t.Error("control plane recorded no expiry despite the kill")
	}
	if cc.Epoch() == 0 {
		t.Error("client holds no epoch")
	}

	cc.Close()
	t2.stop()
	t3.stop()
	disc.Close()
	waitGoroutines(t, base)
}

// TestClusterStaleEpochMapRejected pins host-side split-brain protection:
// a discovery response carrying an epoch older than the held map is
// rejected, counted, and changes nothing.
func TestClusterStaleEpochMapRejected(t *testing.T) {
	hostReg := telemetry.New()
	disc, err := tcptrans.ListenDiscoveryCluster("127.0.0.1:0", tcptrans.DiscoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	t1 := startTarget(t, disc.Addr(), "nqn.stale.a", []uint32{0})
	defer t1.stop()
	t2 := startTarget(t, disc.Addr(), "nqn.stale.b", []uint32{0})
	defer t2.stop()

	cc, err := Dial(Config{
		DiscoveryAddr:   disc.Addr(),
		Conn:            hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 4, NSID: 1},
		RefreshInterval: -1, // no background refresh: the test drives adoption
		Telemetry:       hostReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	held := cc.Epoch()
	if held < 2 {
		t.Fatalf("expected two joins to have bumped the epoch, held %d", held)
	}
	// A partitioned discovery replica serves yesterday's map.
	staleMap := &proto.DiscResp{
		Epoch:       held - 1,
		Entries:     []proto.DiscEntry{{NQN: "nqn.ghost", Addr: "10.9.9.9:1", Mode: 1}},
		Assignments: []proto.ShardAssignment{{Shard: 0, Primary: "nqn.ghost"}},
	}
	if err := cc.adopt(staleMap); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("stale map not rejected: %v", err)
	}
	if got := cc.Epoch(); got != held {
		t.Fatalf("epoch moved on rejection: %d -> %d", held, got)
	}
	if n := hostReg.Global().StaleEpochs; n != 1 {
		t.Fatalf("stale-epoch counter = %d, want 1", n)
	}
	// The held (sane) map still routes I/O.
	if err := cc.Write(1, 0, stamp(1), 0, true); err != nil {
		t.Fatalf("write on held map: %v", err)
	}
}

// TestClusterDegradedReadOnly pins graceful degradation: when a shard's
// replica dies with no standby, writes fail with ErrReadOnly (an acked
// write must always be replicated) while reads keep being served.
func TestClusterDegradedReadOnly(t *testing.T) {
	disc, err := tcptrans.ListenDiscoveryCluster("127.0.0.1:0", tcptrans.DiscoveryConfig{
		SweepInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	t1 := startTarget(t, disc.Addr(), "nqn.deg.a", []uint32{0})
	defer t1.stop()
	t2 := startTarget(t, disc.Addr(), "nqn.deg.b", []uint32{0})
	waitFor(t, "replicated map", func() bool {
		as := disc.Assignments()
		return len(as) == 1 && as[0].Primary == t1.nqn && as[0].Replica == t2.nqn
	})

	hostReg := telemetry.New()
	cc, err := Dial(Config{
		DiscoveryAddr:   disc.Addr(),
		Conn:            hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 4, NSID: 1},
		RefreshInterval: 20 * time.Millisecond,
		Telemetry:       hostReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	if err := cc.Write(1, 7, stamp(99), 0, true); err != nil {
		t.Fatalf("replicated write: %v", err)
	}
	if cc.Degraded(1) {
		t.Fatal("healthy shard reports degraded")
	}

	t2.kill()
	waitFor(t, "degraded map adopted", func() bool { return cc.Degraded(1) })

	err = cc.Write(1, 8, stamp(100), 0, true)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on degraded shard: %v, want ErrReadOnly", err)
	}
	data, err := cc.Read(1, 7, 1, 0)
	if err != nil {
		t.Fatalf("read on degraded shard: %v", err)
	}
	if err := checkStamp(data, 99); err != nil {
		t.Fatalf("degraded read corrupt: %v", err)
	}
	if hostReg.Global().ClusterDegraded != 1 {
		t.Error("degraded gauge not raised")
	}
}

// TestClusterDiscoveryPartitionTolerated pins that losing the control
// plane degrades nothing already established: with the host↔discovery
// path cut, I/O keeps flowing on the held map, and the client recovers
// its refresh loop when the partition heals.
func TestClusterDiscoveryPartitionTolerated(t *testing.T) {
	disc, err := tcptrans.ListenDiscoveryCluster("127.0.0.1:0", tcptrans.DiscoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	t1 := startTarget(t, disc.Addr(), "nqn.part.a", []uint32{0})
	defer t1.stop()
	t2 := startTarget(t, disc.Addr(), "nqn.part.b", []uint32{0})
	defer t2.stop()

	inj := faultnet.NewInjector(11)
	var cut atomic.Bool
	fd := faultnet.Dialer(inj)
	discDial := func(network, addr string) (net.Conn, error) {
		if cut.Load() {
			return nil, errors.New("cluster_test: injected host<->discovery partition")
		}
		return fd(network, addr)
	}

	cc, err := Dial(Config{
		DiscoveryAddr:   disc.Addr(),
		Conn:            hostqp.Config{Class: proto.PrioThroughputCritical, Window: 4, QueueDepth: 8, NSID: 1},
		DiscoveryDialer: discDial,
		RefreshInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Write(1, 1, stamp(1), 0, true); err != nil {
		t.Fatal(err)
	}

	cut.Store(true)
	if err := cc.Refresh(); err == nil {
		t.Fatal("refresh succeeded across the partition")
	}
	// I/O rides the held map: the data path does not touch discovery.
	for seq := uint64(2); seq < 30; seq++ {
		if err := cc.Write(1, seq, stamp(seq), 0, true); err != nil {
			t.Fatalf("write during partition: %v", err)
		}
	}
	data, err := cc.Read(1, 5, 1, 0)
	if err != nil {
		t.Fatalf("read during partition: %v", err)
	}
	if err := checkStamp(data, 5); err != nil {
		t.Fatal(err)
	}

	cut.Store(false)
	if err := cc.Refresh(); err != nil {
		t.Fatalf("refresh after heal: %v", err)
	}
}

// TestClusterNonReplayableWriteSurfacesTransportError pins the replay
// gate end to end: when the only target dies mid-flight, a write that
// was NOT declared idempotent must fail with the original transport
// error rather than being silently replayed on reconnect.
func TestClusterNonReplayableWriteSurfacesTransportError(t *testing.T) {
	disc, err := tcptrans.ListenDiscoveryCluster("127.0.0.1:0", tcptrans.DiscoveryConfig{
		SweepInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	t1 := startTarget(t, disc.Addr(), "nqn.nr.a", []uint32{0})

	cc, err := Dial(Config{
		DiscoveryAddr:     disc.Addr(),
		Conn:              hostqp.Config{Class: proto.PrioThroughputCritical, Window: 4, QueueDepth: 8, NSID: 1},
		RefreshInterval:   20 * time.Millisecond,
		AllowUnreplicated: true, // single target: the point is the replay gate
		Dial: tcptrans.DialConfig{
			RequestTimeout: time.Second,
			Recovery: &tcptrans.RecoveryConfig{
				MaxAttempts: 2, Backoff: 5 * time.Millisecond,
				RequeueLS: true, RequeueTC: true,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Write(1, 0, stamp(1), 0, true); err != nil {
		t.Fatal(err)
	}

	// Saturate the queue with non-idempotent writes and kill the target:
	// at least one must be in flight when the socket dies.
	var wg sync.WaitGroup
	errsCh := make(chan error, 64)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := uint64(2); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := cc.Write(1, seq%64, stamp(seq), 0, false); err != nil {
				errsCh <- err
				return
			}
		}
	}()
	time.Sleep(30 * time.Millisecond)
	t1.kill()
	select {
	case err := <-errsCh:
		if err == nil {
			t.Fatal("nil error surfaced")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("non-replayable write neither failed nor completed")
	}
	close(stop)
	wg.Wait()
}

// TestClusterShardRouting pins the NSID→shard mapping and the no-shard
// dial failure.
func TestClusterShardRouting(t *testing.T) {
	disc, err := tcptrans.ListenDiscoveryCluster("127.0.0.1:0", tcptrans.DiscoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	// No members yet: no shards, Dial must refuse.
	if _, err := Dial(Config{DiscoveryAddr: disc.Addr()}); err == nil {
		t.Fatal("dial succeeded against an empty map")
	}
	t1 := startTarget(t, disc.Addr(), "nqn.route.a", []uint32{0, 1, 2})
	defer t1.stop()
	t2 := startTarget(t, disc.Addr(), "nqn.route.b", []uint32{0, 1, 2})
	defer t2.stop()
	cc, err := Dial(Config{
		DiscoveryAddr:   disc.Addr(),
		Conn:            hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 2, NSID: 1},
		RefreshInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if n := cc.NumShards(); n != 3 {
		t.Fatalf("NumShards = %d, want 3", n)
	}
	for _, tc := range []struct {
		nsid uint32
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 0}, {0, 0}} {
		if got := cc.Shard(tc.nsid); got != tc.want {
			t.Errorf("Shard(%d) = %d, want %d", tc.nsid, got, tc.want)
		}
	}
}
