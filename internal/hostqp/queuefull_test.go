package hostqp

// Regression test for the ErrQueueFull contract: a rejected Submit must
// leave no state behind — no CID consumed, no pending-queue entry, no PDU
// emitted — so callers can hold the IO and resubmit verbatim after any
// completion frees a slot.

import (
	"errors"
	"testing"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

func TestErrQueueFullLeavesNoState(t *testing.T) {
	const qd = 4
	h := newHarness(t, Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: qd, NSID: 1})
	h.connect(t, 7)

	var rejectedDone, completions int
	for i := 0; i < qd; i++ {
		err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1,
			Done: func(Result) { completions++ }})
		if err != nil {
			t.Fatalf("submit %d below queue depth: %v", i, err)
		}
	}
	if h.sess.Outstanding() != qd || len(h.out) != qd {
		t.Fatalf("outstanding=%d wire=%d, want %d/%d", h.sess.Outstanding(), len(h.out), qd, qd)
	}
	if h.sess.CanSubmit() {
		t.Fatal("CanSubmit true with a full queue")
	}

	// The over-depth submission is refused with exactly ErrQueueFull and
	// exactly zero side effects.
	reject := IO{Op: nvme.OpRead, LBA: 99, Blocks: 1, Done: func(Result) { rejectedDone++ }}
	if err := h.sess.Submit(reject); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submit: %v, want ErrQueueFull", err)
	}
	if h.sess.Outstanding() != qd {
		t.Fatalf("rejection leaked a CID: outstanding=%d", h.sess.Outstanding())
	}
	if len(h.out) != qd {
		t.Fatalf("rejection emitted a PDU: wire=%d", len(h.out))
	}
	if rejectedDone != 0 {
		t.Fatal("rejected IO's Done callback ran")
	}

	// Drain exactly one completion: exactly one slot opens.
	first := h.out[0].(*proto.CapsuleCmd).Cmd.CID
	if err := h.sess.HandlePDU(&proto.CapsuleResp{
		Cpl: nvme.Completion{CID: first, Status: nvme.StatusSuccess},
	}); err != nil {
		t.Fatal(err)
	}
	if completions != 1 || h.sess.Outstanding() != qd-1 || !h.sess.CanSubmit() {
		t.Fatalf("after one completion: completions=%d outstanding=%d canSubmit=%v",
			completions, h.sess.Outstanding(), h.sess.CanSubmit())
	}

	// The previously rejected IO now resubmits verbatim and is admitted;
	// the depth accounting is exact, so the very next submit is refused.
	if err := h.sess.Submit(reject); err != nil {
		t.Fatalf("resubmit after drain: %v", err)
	}
	if h.sess.Outstanding() != qd || len(h.out) != qd+1 {
		t.Fatalf("after resubmit: outstanding=%d wire=%d, want %d/%d",
			h.sess.Outstanding(), len(h.out), qd, qd+1)
	}
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 5, Blocks: 1, Done: func(Result) {}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue-full not re-enforced: %v", err)
	}
}
