package hostqp

import (
	"errors"
	"testing"

	"nvmeopf/internal/core"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// harness captures outbound PDUs and drives the session directly.
type harness struct {
	sess *Session
	out  []proto.PDU
	now  int64
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{}
	sess, err := New(cfg, func(p proto.PDU) { h.out = append(h.out, p) }, func() int64 { h.now++; return h.now })
	if err != nil {
		t.Fatal(err)
	}
	h.sess = sess
	return h
}

// connect completes the handshake.
func (h *harness) connect(t *testing.T, tenant proto.TenantID) {
	t.Helper()
	h.sess.Start()
	if len(h.out) != 1 {
		t.Fatalf("Start sent %d PDUs", len(h.out))
	}
	if _, ok := h.out[0].(*proto.ICReq); !ok {
		t.Fatalf("Start sent %v", h.out[0].PDUType())
	}
	h.out = nil
	if err := h.sess.HandlePDU(&proto.ICResp{PFV: ProtocolVersion, Tenant: tenant, MaxDataLen: 1 << 20}); err != nil {
		t.Fatal(err)
	}
}

// lastCmd returns the most recent CapsuleCmd sent.
func (h *harness) lastCmd(t *testing.T) *proto.CapsuleCmd {
	t.Helper()
	for i := len(h.out) - 1; i >= 0; i-- {
		if c, ok := h.out[i].(*proto.CapsuleCmd); ok {
			return c
		}
	}
	t.Fatal("no CapsuleCmd sent")
	return nil
}

func tcConfig(window, qd int) Config {
	return Config{Class: proto.PrioThroughputCritical, Window: window, QueueDepth: qd, NSID: 1}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 0, NSID: 1},
		{Class: proto.PrioLatencySensitive, Window: 0, QueueDepth: 1, NSID: 1},
		{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 0},
		{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1 << 17, NSID: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, func(proto.PDU) {}, func() int64 { return 0 }); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(tcConfig(1, 1), nil, nil); err == nil {
		t.Error("nil send/clock accepted")
	}
}

func TestWindowClampedToQueueDepth(t *testing.T) {
	h := newHarness(t, tcConfig(64, 8))
	if h.sess.Window() != 8 {
		t.Fatalf("window = %d, want clamped to QD 8", h.sess.Window())
	}
}

func TestSubmitBeforeHandshakeRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(Result) {}})
	if err == nil {
		t.Fatal("submit before handshake accepted")
	}
}

func TestTenantStampedIntoCapsules(t *testing.T) {
	h := newHarness(t, tcConfig(4, 8))
	h.connect(t, 42)
	if h.sess.Tenant() != 42 {
		t.Fatalf("tenant = %d", h.sess.Tenant())
	}
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 1, Blocks: 1, Done: func(Result) {}}); err != nil {
		t.Fatal(err)
	}
	cmd := h.lastCmd(t)
	if cmd.Tenant != 42 {
		t.Fatalf("capsule tenant = %d", cmd.Tenant)
	}
	if cmd.Cmd.NSID != 1 || cmd.Cmd.SLBA != 1 {
		t.Fatalf("capsule command wrong: %+v", cmd.Cmd)
	}
}

func TestDuplicateICRespRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	h.connect(t, 1)
	if err := h.sess.HandlePDU(&proto.ICResp{PFV: ProtocolVersion}); err == nil {
		t.Fatal("duplicate ICResp accepted")
	}
}

func TestBadPFVRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	h.sess.Start()
	if err := h.sess.HandlePDU(&proto.ICResp{PFV: 99}); err == nil {
		t.Fatal("bad PFV accepted")
	}
}

func TestDrainFlagEveryWindow(t *testing.T) {
	h := newHarness(t, tcConfig(3, 16))
	h.connect(t, 1)
	var prios []proto.Priority
	for i := 0; i < 6; i++ {
		if err := h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 4096), Done: func(Result) {}}); err != nil {
			t.Fatal(err)
		}
		prios = append(prios, h.lastCmd(t).Prio)
	}
	want := []proto.Priority{
		proto.PrioThroughputCritical, proto.PrioThroughputCritical, proto.PrioTCDraining,
		proto.PrioThroughputCritical, proto.PrioThroughputCritical, proto.PrioTCDraining,
	}
	for i := range want {
		if prios[i] != want[i] {
			t.Fatalf("prios = %v", prios)
		}
	}
}

func TestCoalescedResponseReplaysWindow(t *testing.T) {
	h := newHarness(t, tcConfig(3, 16))
	h.connect(t, 1)
	var cids []nvme.CID
	completions := 0
	for i := 0; i < 3; i++ {
		if err := h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 4096),
			Done: func(Result) { completions++ }}); err != nil {
			t.Fatal(err)
		}
		cids = append(cids, h.lastCmd(t).Cmd.CID)
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{
		Cpl:       nvme.Completion{CID: cids[2], Status: nvme.StatusSuccess},
		Coalesced: true,
	}); err != nil {
		t.Fatal(err)
	}
	if completions != 3 {
		t.Fatalf("completions = %d, want 3 (replay)", completions)
	}
	if h.sess.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", h.sess.Outstanding())
	}
	if h.sess.PendingTC() != 0 {
		t.Fatalf("pendingTC = %d", h.sess.PendingTC())
	}
}

func TestPartialWindowTracking(t *testing.T) {
	h := newHarness(t, tcConfig(4, 16))
	h.connect(t, 1)
	for i := 0; i < 2; i++ {
		_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1, Done: func(Result) {}})
	}
	if h.sess.PartialWindow() != 2 {
		t.Fatalf("partial window = %d", h.sess.PartialWindow())
	}
	for i := 2; i < 4; i++ {
		_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1, Done: func(Result) {}})
	}
	if h.sess.PartialWindow() != 0 {
		t.Fatalf("partial window after drain = %d", h.sess.PartialWindow())
	}
}

func TestReadDataAssembly(t *testing.T) {
	h := newHarness(t, Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 2, NSID: 1})
	h.connect(t, 1)
	var got []byte
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 2, Done: func(r Result) { got = r.Data }}); err != nil {
		t.Fatal(err)
	}
	cid := h.lastCmd(t).Cmd.CID
	// Data arrives in two out-of-order segments before the response.
	seg2 := make([]byte, 4096)
	for i := range seg2 {
		seg2[i] = 2
	}
	seg1 := make([]byte, 4096)
	for i := range seg1 {
		seg1[i] = 1
	}
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 4096, Data: seg2}); err != nil {
		t.Fatal(err)
	}
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 0, Data: seg1}); err != nil {
		t.Fatal(err)
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 8192 || got[0] != 1 || got[4096] != 2 {
		t.Fatalf("assembled %d bytes, got[0]=%d got[4096]=%d", len(got), got[0], got[4096])
	}
}

func TestProtocolViolationsSurface(t *testing.T) {
	h := newHarness(t, tcConfig(2, 4))
	h.connect(t, 1)
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: 99, Data: []byte{1}}); err == nil {
		t.Error("data for unknown CID accepted")
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: 99}}); err == nil {
		t.Error("response for unknown CID accepted")
	}
	if err := h.sess.HandlePDU(&proto.ICReq{}); err == nil {
		t.Error("unexpected PDU type accepted")
	}
	if err := h.sess.HandlePDU(&proto.TermReq{Dir: proto.TypeC2HTermReq, FES: 1, Reason: "x"}); err == nil {
		t.Error("TermReq not surfaced as error")
	}
}

func TestC2HDataForWriteRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connect(t, 1)
	_ = h.sess.Submit(IO{Op: nvme.OpWrite, LBA: 0, Blocks: 1, Data: make([]byte, 4096), Done: func(Result) {}})
	cid := h.lastCmd(t).Cmd.CID
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Data: []byte{1}}); err == nil {
		t.Error("C2HData for a write accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connect(t, 1)
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1}); err == nil {
		t.Error("IO without Done accepted")
	}
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 0, Done: func(Result) {}}); err == nil {
		t.Error("zero-length read accepted")
	}
}

func TestErrorStatusCountsAsError(t *testing.T) {
	h := newHarness(t, Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	h.connect(t, 1)
	var st nvme.Status
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(r Result) { st = r.Status }})
	cid := h.lastCmd(t).Cmd.CID
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid, Status: nvme.StatusLBAOutOfRange}}); err != nil {
		t.Fatal(err)
	}
	if st != nvme.StatusLBAOutOfRange {
		t.Fatalf("status = %v", st)
	}
	if h.sess.Stats().Errors != 1 {
		t.Fatalf("errors = %d", h.sess.Stats().Errors)
	}
}

func TestLatencyMeasuredWithClock(t *testing.T) {
	h := newHarness(t, Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	h.connect(t, 1)
	var res Result
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(r Result) { res = r }})
	cid := h.lastCmd(t).Cmd.CID
	_ = h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid}})
	if res.Latency() <= 0 {
		t.Fatalf("latency = %d", res.Latency())
	}
}

func TestDynamicWindowWiring(t *testing.T) {
	cfg := tcConfig(4, 64)
	cfg.Dynamic = core.NewDynamicWindow(4, 64, 1)
	h := newHarness(t, cfg)
	h.connect(t, 1)
	before := h.sess.Window()
	// Complete a few windows; the tuner should move the window.
	for w := 0; w < 4; w++ {
		var drainCID nvme.CID
		n := h.sess.Window()
		for i := 0; i < n; i++ {
			_ = h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 4096), Done: func(Result) {}})
			c := h.lastCmd(t)
			if c.Prio.Draining() {
				drainCID = c.Cmd.CID
			}
		}
		if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: drainCID}, Coalesced: true}); err != nil {
			t.Fatal(err)
		}
	}
	if h.sess.Window() == before {
		t.Fatal("dynamic window never moved")
	}
}

// TestQueueDepth65536Rejected: the ICReq carries QueueDepth in a uint16,
// so 65536 used to be accepted by Validate and then silently truncated to
// a zero-depth connection on the wire. Validate must cap at 65535.
func TestQueueDepth65536Rejected(t *testing.T) {
	cfg := tcConfig(1, 65536)
	if err := cfg.Validate(); err == nil {
		t.Fatal("QueueDepth 65536 accepted; it truncates to 0 on the wire")
	}
}

// TestQueueDepth65535OnWire: the maximum representable depth must survive
// the uint16 conversion exactly.
func TestQueueDepth65535OnWire(t *testing.T) {
	h := newHarness(t, tcConfig(1, 65535))
	h.sess.Start()
	req, ok := h.out[0].(*proto.ICReq)
	if !ok {
		t.Fatalf("Start sent %v", h.out[0].PDUType())
	}
	if req.QueueDepth != 65535 {
		t.Fatalf("wire QueueDepth = %d, want 65535", req.QueueDepth)
	}
}

// TestFailAllReleasesEverything: FailAll must complete every in-flight
// request with the given status, release all CIDs, empty the PM pending
// queue, and leave the session refusing new submissions.
func TestFailAllReleasesEverything(t *testing.T) {
	h := newHarness(t, tcConfig(4, 8))
	h.connect(t, 3)
	var results []Result
	for i := 0; i < 3; i++ {
		err := h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(r Result) { results = append(results, r) }})
		if err != nil {
			t.Fatal(err)
		}
	}
	if h.sess.Outstanding() != 3 || h.sess.PendingTC() != 3 {
		t.Fatalf("outstanding=%d pendingTC=%d before FailAll", h.sess.Outstanding(), h.sess.PendingTC())
	}
	n := h.sess.FailAll(nvme.StatusAborted)
	if n != 3 || len(results) != 3 {
		t.Fatalf("FailAll failed %d requests, %d callbacks ran; want 3", n, len(results))
	}
	for _, r := range results {
		if r.Status != nvme.StatusAborted {
			t.Fatalf("failed request status %v, want aborted", r.Status)
		}
	}
	if h.sess.Outstanding() != 0 {
		t.Fatalf("CIDs leaked: outstanding = %d", h.sess.Outstanding())
	}
	if h.sess.PendingTC() != 0 {
		t.Fatalf("PM pending queue leaked: %d", h.sess.PendingTC())
	}
	if err := h.sess.Submit(IO{Op: nvme.OpRead, Blocks: 1, Done: func(Result) {}}); err == nil {
		t.Fatal("session accepted a submission after FailAll")
	}
	st := h.sess.Stats()
	if st.Completed != 3 || st.Errors != 3 {
		t.Fatalf("stats after FailAll: completed=%d errors=%d", st.Completed, st.Errors)
	}
}

// TestFailAllIdleSession: failing an idle session is a no-op beyond
// disconnecting it.
func TestFailAllIdleSession(t *testing.T) {
	h := newHarness(t, tcConfig(4, 8))
	h.connect(t, 1)
	if n := h.sess.FailAll(nvme.StatusAborted); n != 0 {
		t.Fatalf("idle FailAll failed %d requests", n)
	}
	if h.sess.Connected() {
		t.Fatal("session still connected after FailAll")
	}
}

// TestOldestSubmittedAt tracks the oldest in-flight request for transport
// deadline sweeps.
func TestOldestSubmittedAt(t *testing.T) {
	h := newHarness(t, tcConfig(8, 8))
	h.connect(t, 1)
	if _, ok := h.sess.OldestSubmittedAt(); ok {
		t.Fatal("idle session reports an oldest request")
	}
	for i := 0; i < 3; i++ {
		if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1, Done: func(Result) {}}); err != nil {
			t.Fatal(err)
		}
	}
	first, ok := h.sess.OldestSubmittedAt()
	if !ok {
		t.Fatal("no oldest request with 3 in flight")
	}
	// The first submission has the lowest clock value in this harness.
	later, _ := h.sess.OldestSubmittedAt()
	if later != first {
		t.Fatal("oldest timestamp unstable without completions")
	}
}

// TestTermReqIsProtocolError: a TermReq from the target must classify as
// permanent so dial retry loops stop immediately.
func TestTermReqIsProtocolError(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	err := h.sess.HandlePDU(&proto.TermReq{Dir: proto.TypeC2HTermReq, FES: 2, Reason: "unknown namespace 9"})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("TermReq surfaced as %T (%v), want *ProtocolError", err, err)
	}
	if pe.FES != 2 {
		t.Fatalf("FES = %d, want 2", pe.FES)
	}
}

// TestBadPFVIsProtocolError: an ICResp version mismatch is permanent too.
func TestBadPFVIsProtocolError(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	h.sess.Start()
	err := h.sess.HandlePDU(&proto.ICResp{PFV: ProtocolVersion + 9})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("PFV mismatch surfaced as %T (%v), want *ProtocolError", err, err)
	}
}
