package hostqp

import (
	"errors"
	"testing"

	"nvmeopf/internal/core"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// harness captures outbound PDUs and drives the session directly.
type harness struct {
	sess *Session
	out  []proto.PDU
	now  int64
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{}
	sess, err := New(cfg, func(p proto.PDU) { h.out = append(h.out, p) }, func() int64 { h.now++; return h.now })
	if err != nil {
		t.Fatal(err)
	}
	h.sess = sess
	return h
}

// connect completes the handshake.
func (h *harness) connect(t *testing.T, tenant proto.TenantID) {
	t.Helper()
	h.sess.Start()
	if len(h.out) != 1 {
		t.Fatalf("Start sent %d PDUs", len(h.out))
	}
	if _, ok := h.out[0].(*proto.ICReq); !ok {
		t.Fatalf("Start sent %v", h.out[0].PDUType())
	}
	h.out = nil
	if err := h.sess.HandlePDU(&proto.ICResp{PFV: ProtocolVersion, Tenant: tenant, MaxDataLen: 1 << 20}); err != nil {
		t.Fatal(err)
	}
}

// lastCmd returns the most recent CapsuleCmd sent.
func (h *harness) lastCmd(t *testing.T) *proto.CapsuleCmd {
	t.Helper()
	for i := len(h.out) - 1; i >= 0; i-- {
		if c, ok := h.out[i].(*proto.CapsuleCmd); ok {
			return c
		}
	}
	t.Fatal("no CapsuleCmd sent")
	return nil
}

func tcConfig(window, qd int) Config {
	return Config{Class: proto.PrioThroughputCritical, Window: window, QueueDepth: qd, NSID: 1}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 0, NSID: 1},
		{Class: proto.PrioLatencySensitive, Window: 0, QueueDepth: 1, NSID: 1},
		{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 0},
		{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1 << 17, NSID: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, func(proto.PDU) {}, func() int64 { return 0 }); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(tcConfig(1, 1), nil, nil); err == nil {
		t.Error("nil send/clock accepted")
	}
}

func TestWindowClampedToQueueDepth(t *testing.T) {
	h := newHarness(t, tcConfig(64, 8))
	if h.sess.Window() != 8 {
		t.Fatalf("window = %d, want clamped to QD 8", h.sess.Window())
	}
}

func TestSubmitBeforeHandshakeRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(Result) {}})
	if err == nil {
		t.Fatal("submit before handshake accepted")
	}
}

func TestTenantStampedIntoCapsules(t *testing.T) {
	h := newHarness(t, tcConfig(4, 8))
	h.connect(t, 42)
	if h.sess.Tenant() != 42 {
		t.Fatalf("tenant = %d", h.sess.Tenant())
	}
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 1, Blocks: 1, Done: func(Result) {}}); err != nil {
		t.Fatal(err)
	}
	cmd := h.lastCmd(t)
	if cmd.Tenant != 42 {
		t.Fatalf("capsule tenant = %d", cmd.Tenant)
	}
	if cmd.Cmd.NSID != 1 || cmd.Cmd.SLBA != 1 {
		t.Fatalf("capsule command wrong: %+v", cmd.Cmd)
	}
}

func TestDuplicateICRespRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	h.connect(t, 1)
	if err := h.sess.HandlePDU(&proto.ICResp{PFV: ProtocolVersion}); err == nil {
		t.Fatal("duplicate ICResp accepted")
	}
}

func TestBadPFVRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	h.sess.Start()
	if err := h.sess.HandlePDU(&proto.ICResp{PFV: 99}); err == nil {
		t.Fatal("bad PFV accepted")
	}
}

func TestDrainFlagEveryWindow(t *testing.T) {
	h := newHarness(t, tcConfig(3, 16))
	h.connect(t, 1)
	var prios []proto.Priority
	for i := 0; i < 6; i++ {
		if err := h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 4096), Done: func(Result) {}}); err != nil {
			t.Fatal(err)
		}
		prios = append(prios, h.lastCmd(t).Prio)
	}
	want := []proto.Priority{
		proto.PrioThroughputCritical, proto.PrioThroughputCritical, proto.PrioTCDraining,
		proto.PrioThroughputCritical, proto.PrioThroughputCritical, proto.PrioTCDraining,
	}
	for i := range want {
		if prios[i] != want[i] {
			t.Fatalf("prios = %v", prios)
		}
	}
}

func TestCoalescedResponseReplaysWindow(t *testing.T) {
	h := newHarness(t, tcConfig(3, 16))
	h.connect(t, 1)
	var cids []nvme.CID
	completions := 0
	for i := 0; i < 3; i++ {
		if err := h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 4096),
			Done: func(Result) { completions++ }}); err != nil {
			t.Fatal(err)
		}
		cids = append(cids, h.lastCmd(t).Cmd.CID)
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{
		Cpl:       nvme.Completion{CID: cids[2], Status: nvme.StatusSuccess},
		Coalesced: true,
	}); err != nil {
		t.Fatal(err)
	}
	if completions != 3 {
		t.Fatalf("completions = %d, want 3 (replay)", completions)
	}
	if h.sess.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", h.sess.Outstanding())
	}
	if h.sess.PendingTC() != 0 {
		t.Fatalf("pendingTC = %d", h.sess.PendingTC())
	}
}

func TestPartialWindowTracking(t *testing.T) {
	h := newHarness(t, tcConfig(4, 16))
	h.connect(t, 1)
	for i := 0; i < 2; i++ {
		_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1, Done: func(Result) {}})
	}
	if h.sess.PartialWindow() != 2 {
		t.Fatalf("partial window = %d", h.sess.PartialWindow())
	}
	for i := 2; i < 4; i++ {
		_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1, Done: func(Result) {}})
	}
	if h.sess.PartialWindow() != 0 {
		t.Fatalf("partial window after drain = %d", h.sess.PartialWindow())
	}
}

func TestReadDataAssembly(t *testing.T) {
	h := newHarness(t, Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 2, NSID: 1})
	h.connect(t, 1)
	var got []byte
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 2, Done: func(r Result) { got = r.Data }}); err != nil {
		t.Fatal(err)
	}
	cid := h.lastCmd(t).Cmd.CID
	// Data arrives in two out-of-order segments before the response.
	seg2 := make([]byte, 4096)
	for i := range seg2 {
		seg2[i] = 2
	}
	seg1 := make([]byte, 4096)
	for i := range seg1 {
		seg1[i] = 1
	}
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 4096, Data: seg2}); err != nil {
		t.Fatal(err)
	}
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 0, Data: seg1}); err != nil {
		t.Fatal(err)
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 8192 || got[0] != 1 || got[4096] != 2 {
		t.Fatalf("assembled %d bytes, got[0]=%d got[4096]=%d", len(got), got[0], got[4096])
	}
}

func TestProtocolViolationsSurface(t *testing.T) {
	h := newHarness(t, tcConfig(2, 4))
	h.connect(t, 1)
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: 99, Data: []byte{1}}); err == nil {
		t.Error("data for unknown CID accepted")
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: 99}}); err == nil {
		t.Error("response for unknown CID accepted")
	}
	if err := h.sess.HandlePDU(&proto.ICReq{}); err == nil {
		t.Error("unexpected PDU type accepted")
	}
	if err := h.sess.HandlePDU(&proto.TermReq{Dir: proto.TypeC2HTermReq, FES: 1, Reason: "x"}); err == nil {
		t.Error("TermReq not surfaced as error")
	}
}

func TestC2HDataForWriteRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connect(t, 1)
	_ = h.sess.Submit(IO{Op: nvme.OpWrite, LBA: 0, Blocks: 1, Data: make([]byte, 4096), Done: func(Result) {}})
	cid := h.lastCmd(t).Cmd.CID
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Data: []byte{1}}); err == nil {
		t.Error("C2HData for a write accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connect(t, 1)
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1}); err == nil {
		t.Error("IO without Done accepted")
	}
	if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 0, Done: func(Result) {}}); err == nil {
		t.Error("zero-length read accepted")
	}
}

func TestErrorStatusCountsAsError(t *testing.T) {
	h := newHarness(t, Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	h.connect(t, 1)
	var st nvme.Status
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(r Result) { st = r.Status }})
	cid := h.lastCmd(t).Cmd.CID
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid, Status: nvme.StatusLBAOutOfRange}}); err != nil {
		t.Fatal(err)
	}
	if st != nvme.StatusLBAOutOfRange {
		t.Fatalf("status = %v", st)
	}
	if h.sess.Stats().Errors != 1 {
		t.Fatalf("errors = %d", h.sess.Stats().Errors)
	}
}

func TestLatencyMeasuredWithClock(t *testing.T) {
	h := newHarness(t, Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	h.connect(t, 1)
	var res Result
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(r Result) { res = r }})
	cid := h.lastCmd(t).Cmd.CID
	_ = h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid}})
	if res.Latency() <= 0 {
		t.Fatalf("latency = %d", res.Latency())
	}
}

func TestDynamicWindowWiring(t *testing.T) {
	cfg := tcConfig(4, 64)
	cfg.Dynamic = core.NewDynamicWindow(4, 64, 1)
	h := newHarness(t, cfg)
	h.connect(t, 1)
	before := h.sess.Window()
	// Complete a few windows; the tuner should move the window.
	for w := 0; w < 4; w++ {
		var drainCID nvme.CID
		n := h.sess.Window()
		for i := 0; i < n; i++ {
			_ = h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 4096), Done: func(Result) {}})
			c := h.lastCmd(t)
			if c.Prio.Draining() {
				drainCID = c.Cmd.CID
			}
		}
		if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: drainCID}, Coalesced: true}); err != nil {
			t.Fatal(err)
		}
	}
	if h.sess.Window() == before {
		t.Fatal("dynamic window never moved")
	}
}

// TestQueueDepth65536Rejected: the ICReq carries QueueDepth in a uint16,
// so 65536 used to be accepted by Validate and then silently truncated to
// a zero-depth connection on the wire. Validate must cap at 65535.
func TestQueueDepth65536Rejected(t *testing.T) {
	cfg := tcConfig(1, 65536)
	if err := cfg.Validate(); err == nil {
		t.Fatal("QueueDepth 65536 accepted; it truncates to 0 on the wire")
	}
}

// TestQueueDepth65535OnWire: the maximum representable depth must survive
// the uint16 conversion exactly.
func TestQueueDepth65535OnWire(t *testing.T) {
	h := newHarness(t, tcConfig(1, 65535))
	h.sess.Start()
	req, ok := h.out[0].(*proto.ICReq)
	if !ok {
		t.Fatalf("Start sent %v", h.out[0].PDUType())
	}
	if req.QueueDepth != 65535 {
		t.Fatalf("wire QueueDepth = %d, want 65535", req.QueueDepth)
	}
}

// TestFailAllReleasesEverything: FailAll must complete every in-flight
// request with the given status, release all CIDs, empty the PM pending
// queue, and leave the session refusing new submissions.
func TestFailAllReleasesEverything(t *testing.T) {
	h := newHarness(t, tcConfig(4, 8))
	h.connect(t, 3)
	var results []Result
	for i := 0; i < 3; i++ {
		err := h.sess.Submit(IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 512),
			Done: func(r Result) { results = append(results, r) }})
		if err != nil {
			t.Fatal(err)
		}
	}
	if h.sess.Outstanding() != 3 || h.sess.PendingTC() != 3 {
		t.Fatalf("outstanding=%d pendingTC=%d before FailAll", h.sess.Outstanding(), h.sess.PendingTC())
	}
	n := h.sess.FailAll(nvme.StatusAborted)
	if n != 3 || len(results) != 3 {
		t.Fatalf("FailAll failed %d requests, %d callbacks ran; want 3", n, len(results))
	}
	for _, r := range results {
		if r.Status != nvme.StatusAborted {
			t.Fatalf("failed request status %v, want aborted", r.Status)
		}
	}
	if h.sess.Outstanding() != 0 {
		t.Fatalf("CIDs leaked: outstanding = %d", h.sess.Outstanding())
	}
	if h.sess.PendingTC() != 0 {
		t.Fatalf("PM pending queue leaked: %d", h.sess.PendingTC())
	}
	if err := h.sess.Submit(IO{Op: nvme.OpRead, Blocks: 1, Done: func(Result) {}}); err == nil {
		t.Fatal("session accepted a submission after FailAll")
	}
	st := h.sess.Stats()
	if st.Completed != 3 || st.Errors != 3 {
		t.Fatalf("stats after FailAll: completed=%d errors=%d", st.Completed, st.Errors)
	}
}

// TestFailAllIdleSession: failing an idle session is a no-op beyond
// disconnecting it.
func TestFailAllIdleSession(t *testing.T) {
	h := newHarness(t, tcConfig(4, 8))
	h.connect(t, 1)
	if n := h.sess.FailAll(nvme.StatusAborted); n != 0 {
		t.Fatalf("idle FailAll failed %d requests", n)
	}
	if h.sess.Connected() {
		t.Fatal("session still connected after FailAll")
	}
}

// TestOldestSubmittedAt tracks the oldest in-flight request for transport
// deadline sweeps.
func TestOldestSubmittedAt(t *testing.T) {
	h := newHarness(t, tcConfig(8, 8))
	h.connect(t, 1)
	if _, ok := h.sess.OldestSubmittedAt(); ok {
		t.Fatal("idle session reports an oldest request")
	}
	for i := 0; i < 3; i++ {
		if err := h.sess.Submit(IO{Op: nvme.OpRead, LBA: uint64(i), Blocks: 1, Done: func(Result) {}}); err != nil {
			t.Fatal(err)
		}
	}
	first, ok := h.sess.OldestSubmittedAt()
	if !ok {
		t.Fatal("no oldest request with 3 in flight")
	}
	// The first submission has the lowest clock value in this harness.
	later, _ := h.sess.OldestSubmittedAt()
	if later != first {
		t.Fatal("oldest timestamp unstable without completions")
	}
}

// TestTermReqIsProtocolError: a TermReq from the target must classify as
// permanent so dial retry loops stop immediately.
func TestTermReqIsProtocolError(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	err := h.sess.HandlePDU(&proto.TermReq{Dir: proto.TypeC2HTermReq, FES: 2, Reason: "unknown namespace 9"})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("TermReq surfaced as %T (%v), want *ProtocolError", err, err)
	}
	if pe.FES != 2 {
		t.Fatalf("FES = %d, want 2", pe.FES)
	}
}

// TestBadPFVIsProtocolError: an ICResp version mismatch is permanent too.
func TestBadPFVIsProtocolError(t *testing.T) {
	h := newHarness(t, tcConfig(1, 1))
	h.sess.Start()
	err := h.sess.HandlePDU(&proto.ICResp{PFV: ProtocolVersion + 9})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("PFV mismatch surfaced as %T (%v), want *ProtocolError", err, err)
	}
}

// connectGeom completes the handshake with a namespace geometry, so reads
// preallocate their full destination buffer at submit time.
func (h *harness) connectGeom(t *testing.T, tenant proto.TenantID, blockSize uint32) {
	t.Helper()
	h.sess.Start()
	h.out = nil
	if err := h.sess.HandlePDU(&proto.ICResp{
		PFV: ProtocolVersion, Tenant: tenant, MaxDataLen: 1 << 20,
		BlockSize: blockSize, Capacity: 1 << 20,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHostileOffsetRejected: a C2HData whose wire offset points past the
// read's expected length used to size the reassembly buffer — a hostile
// target could force a ~4 GiB allocation with a single 16-byte fragment.
// The offset must be clamped against the expected read length (or the
// handshake MaxDataLen when geometry is unknown), rejected as a typed
// *ProtocolError, and must not grow the buffer.
func TestHostileOffsetRejected(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connect(t, 1)
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(Result) {}})
	cid := h.lastCmd(t).Cmd.CID
	err := h.sess.HandlePDU(&proto.C2HData{
		CCCID: cid, Offset: 0xFFFF_F000, Data: make([]byte, 16),
	})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("hostile offset surfaced as %T (%v), want *ProtocolError", err, err)
	}
	if req := h.sess.reqs[cid]; len(req.readBuf) != 0 {
		t.Fatalf("hostile offset grew the read buffer to %d bytes", len(req.readBuf))
	}
}

// TestHostileOffsetRejectedGeometryKnown: with geometry known the clamp is
// the exact expected read length, not MaxDataLen.
func TestHostileOffsetRejectedGeometryKnown(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connectGeom(t, 1, 4096)
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(Result) {}})
	cid := h.lastCmd(t).Cmd.CID
	// One byte past the 4096-byte read: rejected even though well under
	// MaxDataLen.
	err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 1, Data: make([]byte, 4096)})
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("out-of-bounds fragment surfaced as %T (%v), want *ProtocolError", err, err)
	}
	if req := h.sess.reqs[cid]; len(req.readBuf) != 4096 {
		t.Fatalf("read buffer resized to %d bytes, want the preallocated 4096", len(req.readBuf))
	}
}

// TestOverlappingFragmentsRejected: duplicate and partially-overlapping
// C2HData fragments used to double-count readBytes, marking a read
// complete with holes in the data. Both must be rejected.
func TestOverlappingFragmentsRejected(t *testing.T) {
	cases := []struct {
		name string
		off2 uint32
		len2 int
	}{
		{"duplicate", 0, 4096},
		{"tail-overlap", 2048, 4096},
		{"contained", 1024, 512},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(t, tcConfig(1, 2))
			h.connectGeom(t, 1, 4096)
			var done bool
			_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 2, Done: func(Result) { done = true }})
			cid := h.lastCmd(t).Cmd.CID
			if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 0, Data: make([]byte, 4096)}); err != nil {
				t.Fatal(err)
			}
			err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: tc.off2, Data: make([]byte, tc.len2)})
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("overlapping fragment surfaced as %T (%v), want *ProtocolError", err, err)
			}
			if done {
				t.Fatal("request completed despite the protocol error")
			}
		})
	}
}

// TestNonOverlappingFragmentsStillAssemble: adjacent fragments (touching
// at a boundary) are not overlaps.
func TestNonOverlappingFragmentsStillAssemble(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connectGeom(t, 1, 4096)
	var got []byte
	var st nvme.Status
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 2, Done: func(r Result) { got, st = r.Data, r.Status }})
	cid := h.lastCmd(t).Cmd.CID
	for _, frag := range []struct {
		off uint32
		n   int
	}{{4096, 4096}, {0, 2048}, {2048, 2048}} {
		seg := make([]byte, frag.n)
		for i := range seg {
			seg[i] = byte(frag.off >> 8)
		}
		if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: frag.off, Data: seg}); err != nil {
			t.Fatalf("fragment at %d rejected: %v", frag.off, err)
		}
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid}}); err != nil {
		t.Fatal(err)
	}
	if !st.OK() || len(got) != 8192 || got[0] != 0 || got[4096] != 16 {
		t.Fatalf("assembly wrong: status=%v len=%d", st, len(got))
	}
}

// TestShortReadEscalatesToDataXferError: a target claiming success while
// having delivered fewer data bytes than the read requested must not
// surface as a clean read — the coverage gap becomes StatusDataXferError.
func TestShortReadEscalatesToDataXferError(t *testing.T) {
	h := newHarness(t, tcConfig(1, 2))
	h.connectGeom(t, 1, 4096)
	var st nvme.Status
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 2, Done: func(r Result) { st = r.Status }})
	cid := h.lastCmd(t).Cmd.CID
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 0, Data: make([]byte, 4096)}); err != nil {
		t.Fatal(err)
	}
	// 4096 of 8192 bytes delivered, yet the target claims success.
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid, Status: nvme.StatusSuccess}}); err != nil {
		t.Fatal(err)
	}
	if st != nvme.StatusDataXferError {
		t.Fatalf("short read completed with %v, want StatusDataXferError", st)
	}
}

// TestReadBufferHooksLifecycle: with geometry known, Submit preallocates
// the full destination and announces it via OnReadBuffer; completion (and
// FailAll) retire the registration via OnReadRetire — the window in which
// a transport zero-copy sink may land payload bytes directly.
func TestReadBufferHooksLifecycle(t *testing.T) {
	bufs := make(map[nvme.CID][]byte)
	retired := make(map[nvme.CID]int)
	cfg := tcConfig(1, 4)
	cfg.OnReadBuffer = func(cid nvme.CID, buf []byte) { bufs[cid] = buf }
	cfg.OnReadRetire = func(cid nvme.CID) { retired[cid]++ }
	h := newHarness(t, cfg)
	h.connectGeom(t, 1, 4096)

	var got []byte
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 2, Done: func(r Result) { got = r.Data }})
	cid := h.lastCmd(t).Cmd.CID
	buf, ok := bufs[cid]
	if !ok || len(buf) != 8192 {
		t.Fatalf("OnReadBuffer: got %d bytes registered, want 8192", len(buf))
	}
	// Simulate the transport sink: land bytes directly in the registered
	// buffer and hand the session an aliasing fragment (Borrowed).
	copy(buf[:4096], bytes47(4096))
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 0, Data: buf[:4096], Borrowed: true}); err != nil {
		t.Fatal(err)
	}
	copy(buf[4096:], bytes47(4096))
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 4096, Data: buf[4096:], Borrowed: true}); err != nil {
		t.Fatal(err)
	}
	if retired[cid] != 0 {
		t.Fatal("read retired before its response")
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid}}); err != nil {
		t.Fatal(err)
	}
	if retired[cid] != 1 {
		t.Fatalf("OnReadRetire ran %d times, want 1", retired[cid])
	}
	if len(got) != 8192 || got[0] != 47 || got[8191] != 47 {
		t.Fatalf("zero-copy landed data wrong: len=%d", len(got))
	}

	// Writes never register buffers.
	_ = h.sess.Submit(IO{Op: nvme.OpWrite, LBA: 0, Blocks: 1, Data: make([]byte, 4096), Done: func(Result) {}})
	if len(bufs) != 1 {
		t.Fatalf("write registered a read buffer: %d registrations", len(bufs))
	}

	// FailAll retires the write's CID-adjacent reads too: submit another
	// read, then kill the session.
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 8, Blocks: 1, Done: func(Result) {}})
	readCID := h.lastCmd(t).Cmd.CID
	h.sess.FailAll(nvme.StatusAborted)
	if retired[readCID] != 1 {
		t.Fatalf("FailAll did not retire the in-flight read (retired=%d)", retired[readCID])
	}
}

func bytes47(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 47
	}
	return b
}

// TestGeometryUnknownReadsStillGrow: sessions whose handshake carried no
// BlockSize (older targets) keep the lazy-grow assembly path, capped at
// the advertised MaxDataLen.
func TestGeometryUnknownReadsStillGrow(t *testing.T) {
	called := false
	cfg := tcConfig(1, 2)
	cfg.OnReadBuffer = func(nvme.CID, []byte) { called = true }
	h := newHarness(t, cfg)
	h.connect(t, 1) // BlockSize 0: geometry unknown
	var got []byte
	_ = h.sess.Submit(IO{Op: nvme.OpRead, LBA: 0, Blocks: 1, Done: func(r Result) { got = r.Data }})
	if called {
		t.Fatal("geometry-unknown read registered a zero-copy buffer")
	}
	cid := h.lastCmd(t).Cmd.CID
	if err := h.sess.HandlePDU(&proto.C2HData{CCCID: cid, Offset: 0, Data: bytes47(4096)}); err != nil {
		t.Fatal(err)
	}
	if err := h.sess.HandlePDU(&proto.CapsuleResp{Cpl: nvme.Completion{CID: cid}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4096 || got[0] != 47 {
		t.Fatalf("lazy-grow assembly wrong: len=%d", len(got))
	}
}
