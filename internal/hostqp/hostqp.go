// Package hostqp implements the NVMe-oPF initiator queue-pair state
// machine. It is sans-IO: the session consumes inbound PDUs through
// HandlePDU and emits outbound PDUs through a caller-provided send
// function, so the same state machine drives both the real TCP transport
// and the discrete-event simulator.
//
// The session implements the host half of the paper's design: it opens the
// connection with a priority class, stamps every command capsule with the
// class's flags and the target-assigned tenant ID, lets the host priority
// manager insert draining flags each window (Alg. 1), and replays
// coalesced completions over the submission-ordered pending queue
// (Alg. 2), which also reconciles out-of-order device completions (§IV-C).
package hostqp

import (
	"errors"
	"fmt"
	"sort"

	"nvmeopf/internal/core"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// ProtocolVersion is the PFV this runtime speaks.
const ProtocolVersion = 1

// ErrQueueFull is returned by Submit when QueueDepth commands are already
// outstanding; callers doing their own flow control retry after the next
// completion. The rejection has no side effects: no CID is consumed, no
// PDU is emitted, and nothing is left in the pending queue — submit,
// complete, and retry cycles keep depth accounting exact (regression-
// tested by TestErrQueueFullLeavesNoState).
var ErrQueueFull = errors.New("hostqp: queue depth exceeded")

// ProtocolError is a handshake- or protocol-level rejection by the peer:
// a TermReq (bad PFV, unknown NSID) or an incompatible ICResp. It marks
// failures where retrying the same dial against the same target cannot
// succeed, so transports abort their retry loops instead of burning
// attempts against a healthy-but-incompatible target.
type ProtocolError struct {
	// FES is the fatal error status from a TermReq (0 when the error was
	// detected locally, e.g. an ICResp version mismatch).
	FES uint16
	// Reason is the peer's diagnostic string or the local detection.
	Reason string
}

// Error implements error.
func (e *ProtocolError) Error() string {
	if e.FES != 0 {
		return fmt.Sprintf("hostqp: connection rejected: FES=%d %s", e.FES, e.Reason)
	}
	return "hostqp: " + e.Reason
}

// Config describes one initiator connection.
type Config struct {
	// Class is the connection's priority class: PrioLatencySensitive,
	// PrioThroughputCritical, PrioScavenger (best-effort), or PrioNormal
	// (legacy NVMe-oF). Individual IOs may override it, except across the
	// TC/scavenger boundary — both classes replay the same
	// submission-ordered pending queue, so they must not share a session
	// (Submit rejects such overrides).
	Class proto.Priority
	// Window is the drain window size for throughput-critical traffic.
	Window int
	// QueueDepth bounds outstanding commands (TC initiators use 128 and
	// LS initiators 1 in the paper's evaluation).
	QueueDepth int
	// Dynamic optionally attaches the §IV-D runtime window tuner.
	Dynamic *core.DynamicWindow
	// NSID is the namespace addressed by Read/Write helpers.
	NSID uint32
	// Telemetry optionally attaches a live metrics registry recording
	// host-side instruments (submitted/completed/bytes/latency, window
	// decisions) keyed by the target-assigned tenant ID. Nil disables at
	// zero cost.
	Telemetry *telemetry.Registry
	// Trace optionally receives PDU lifecycle events (submit, drain-mark,
	// replay, complete). Nil disables.
	Trace telemetry.TraceFunc
	// Recorder optionally attaches a host-side flight recorder: its Trace
	// hook is chained after Trace, and the ICReq/ICResp handshake feeds it
	// the clock-offset estimate that lets opf-trace merge host and target
	// dumps onto one time axis. Nil disables.
	Recorder *telemetry.Recorder
	// OnReadBuffer and OnReadRetire are transport-owned hooks for the
	// zero-copy read path. When the namespace geometry is known, Submit
	// preallocates each read's destination buffer and announces it via
	// OnReadBuffer(cid, buf) before the command reaches the wire; the
	// transport registers it so its reader can land C2HData payloads
	// directly at the right offset (proto.Reader.SetC2HSink).
	// OnReadRetire(cid) runs when the read leaves the pending set —
	// completion, replay, or FailAll — so the registration never outlives
	// the request. Nil hooks disable the path at zero cost.
	OnReadBuffer func(cid nvme.CID, buf []byte)
	OnReadRetire func(cid nvme.CID)
}

// Validate checks the configuration. QueueDepth is capped at 65535: the
// ICReq carries it in a uint16, so 65536 would silently truncate to a
// zero-depth connection on the wire.
func (c Config) Validate() error {
	if c.QueueDepth < 1 || c.QueueDepth > 65535 {
		return fmt.Errorf("hostqp: queue depth %d out of range [1, 65535]", c.QueueDepth)
	}
	if c.Window < 1 {
		return fmt.Errorf("hostqp: window %d < 1", c.Window)
	}
	if c.NSID == 0 {
		return fmt.Errorf("hostqp: NSID 0 is reserved")
	}
	return nil
}

// Result is delivered to the IO callback on completion.
type Result struct {
	Status      nvme.Status
	Data        []byte // read payload (nil for writes/flush)
	SubmittedAt int64  // clock value at submission
	CompletedAt int64  // clock value at application-visible completion
}

// Latency returns the request's end-to-end latency in clock units.
func (r Result) Latency() int64 { return r.CompletedAt - r.SubmittedAt }

// IO describes one I/O request.
type IO struct {
	Op     nvme.Opcode
	LBA    uint64
	Blocks uint32
	Data   []byte // write payload; must be Blocks * blocksize bytes
	// Prio optionally overrides the connection class for this request
	// (zero value means "use the connection class").
	Prio proto.Priority
	// Idempotent declares that resubmitting this request verbatim is safe
	// even if the original may have executed (e.g. a whole-block write of
	// self-contained content). Reads and flushes are always idempotent;
	// writes are replayed after a connection loss only when the caller
	// sets this. Only the recovery layer (tcptrans.ResilientClient)
	// consults it.
	Idempotent bool
	// Done receives the completion. It runs on the session's event
	// context (the simulator loop or the transport reader goroutine).
	Done func(Result)
}

// pendingReq is the host-side request state.
type pendingReq struct {
	io           IO
	prio         proto.Priority // wire priority (selects the LS/TC histogram)
	coalescable  bool           // routed through the host PM's pending queue
	submittedAt  int64
	readBuf      []byte
	readBytes    int    // bytes covered by accepted (non-overlapping) fragments
	expectedRead int    // Blocks × block size; 0 when geometry is unknown
	spans        []span // accepted C2HData fragments, kept sorted by start
	bytesMoved   int64  // accounted on completion for the dynamic tuner
}

// span is one accepted C2HData fragment, [start, end) in buffer bytes.
type span struct{ start, end int }

// addSpan records fragment [start, end) in the request's coverage map,
// rejecting any overlap with an already-accepted fragment — a duplicate
// or overlapping retransmission would otherwise double-count readBytes
// and let a read complete "fully covered" with holes in the data.
// Fragments per read are few (usually one), so the sorted insert is
// cheap.
func (r *pendingReq) addSpan(start, end int) bool {
	i := sort.Search(len(r.spans), func(i int) bool { return r.spans[i].end > start })
	if i < len(r.spans) && r.spans[i].start < end {
		return false // overlaps spans[i]
	}
	r.spans = append(r.spans, span{})
	copy(r.spans[i+1:], r.spans[i:])
	r.spans[i] = span{start, end}
	return true
}

// Stats counts host-session events.
type Stats struct {
	Submitted   int64
	Completed   int64
	Errors      int64
	CmdPDUs     int64
	RespPDUs    int64 // completion notifications received (Fig. 6(c) metric)
	DataPDUs    int64
	BytesRead   int64
	BytesWrited int64
}

// Session is an initiator queue pair. It is not safe for concurrent use;
// the transport layer serializes calls (event loop or a per-connection
// goroutine).
type Session struct {
	cfg    Config
	send   func(proto.PDU)
	clock  func() int64
	pm     *core.HostPM
	cids   *nvme.CIDAllocator
	reqs   map[nvme.CID]*pendingReq
	tenant proto.TenantID

	connected    bool
	onConnect    []func()
	drainedBytes int64 // bytes completed since last drain (tuner input)
	nsBlockSize  uint32
	nsCapacity   uint64
	maxDataLen   uint32 // from ICResp; caps geometry-unknown read assembly

	// Clock correlation from the handshake (see handleICResp), refreshed
	// by every TelemetryAck when the feedback channel runs.
	icReqSentAt  int64
	clockOffset  int64 // target clock minus host clock
	handshakeRTT int64 // RTT of the most recent estimate (its error bound)

	// e2e accumulates host-observed end-to-end telemetry between
	// TelemetryUpdates. Nil until EnableE2E: sessions on transports that
	// never emit updates pay nothing.
	e2e *telemetry.E2EAccum

	stats Stats
}

// New creates a session. send emits outbound PDUs; clock provides
// timestamps (virtual in simulation, wall elsewhere).
func New(cfg Config, send func(proto.PDU), clock func() int64) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if send == nil || clock == nil {
		return nil, errors.New("hostqp: nil send or clock")
	}
	if cfg.Window > cfg.QueueDepth {
		// A window deeper than the queue depth could never fill, so the
		// drain flag would never be sent and the window would wait at the
		// target forever — the lockup analysed in §IV-A. Clamp.
		cfg.Window = cfg.QueueDepth
	}
	pm := core.NewHostPM(proto.PrioThroughputCritical, cfg.Window)
	if cfg.Dynamic != nil {
		pm.EnableDynamicWindow(cfg.Dynamic)
	}
	if cfg.Recorder != nil {
		// One chained hook feeds both the caller's trace and the flight
		// recorder; the PM inherits the chain through SetTelemetry.
		cfg.Trace = telemetry.ChainTrace(cfg.Trace, cfg.Recorder.Trace)
	}
	return &Session{
		cfg:   cfg,
		send:  send,
		clock: clock,
		pm:    pm,
		cids:  nvme.NewCIDAllocator(cfg.QueueDepth),
		reqs:  make(map[nvme.CID]*pendingReq, cfg.QueueDepth),
	}, nil
}

// Start sends the connection request. The session accepts submissions only
// after the ICResp arrives (use OnConnect to sequence).
func (s *Session) Start() {
	s.icReqSentAt = s.clock()
	// Validate caps QueueDepth at 65535, so this conversion is exact — no
	// silent masking that could advertise a zero-depth queue.
	s.send(&proto.ICReq{
		PFV:        ProtocolVersion,
		QueueDepth: uint16(s.cfg.QueueDepth),
		Prio:       s.cfg.Class,
		NSID:       s.cfg.NSID,
	})
}

// OnConnect registers fn to run once the handshake completes (immediately
// if already connected).
func (s *Session) OnConnect(fn func()) {
	if s.connected {
		fn()
		return
	}
	s.onConnect = append(s.onConnect, fn)
}

// Connected reports whether the handshake completed.
func (s *Session) Connected() bool { return s.connected }

// Tenant returns the target-assigned tenant ID (valid after connect).
func (s *Session) Tenant() proto.TenantID { return s.tenant }

// BlockSize returns the namespace logical block size learned during the
// handshake (0 before connect, or when talking to a pre-geometry target).
func (s *Session) BlockSize() uint32 { return s.nsBlockSize }

// Capacity returns the namespace capacity in logical blocks learned during
// the handshake.
func (s *Session) Capacity() uint64 { return s.nsCapacity }

// Window returns the current drain window size.
func (s *Session) Window() int { return s.pm.Window() }

// ClockOffset returns the handshake-estimated target-minus-host clock
// offset and the round-trip time bounding its error (both zero before
// connect, or when the target did not share a clock).
func (s *Session) ClockOffset() (offset, rtt int64) {
	return s.clockOffset, s.handshakeRTT
}

// Stats returns a copy of the session counters.
func (s *Session) Stats() Stats { return s.stats }

// EnableE2E attaches the end-to-end accumulator: from here on every
// completion's host-observed latency (and busy push-back) is folded into
// the deltas BuildTelemetryUpdate ships. Transports call it when their
// telemetry cadence is configured; idempotent.
func (s *Session) EnableE2E() {
	if s.e2e == nil {
		s.e2e = telemetry.NewE2EAccum()
	}
}

// E2E returns the session's end-to-end accumulator (nil unless EnableE2E
// ran). Transports use it to count resubmissions and busy retries that
// happen above the session — all methods are nil-safe.
func (s *Session) E2E() *telemetry.E2EAccum { return s.e2e }

// BuildTelemetryUpdate assembles the next TelemetryUpdate PDU: the e2e
// histogram deltas accumulated since the previous call, the current
// outstanding depth, and the host clock for the ack's offset re-estimate.
// Returns nil when the feedback channel is off or the handshake has not
// completed — callers send whatever non-nil update they get, since even an
// empty one refreshes the clock estimate and queue-depth gauge.
func (s *Session) BuildTelemetryUpdate() *proto.TelemetryUpdate {
	if s.e2e == nil || !s.connected {
		return nil
	}
	u := &proto.TelemetryUpdate{
		HostClock:  s.clock(),
		QueueDepth: uint32(s.cids.Outstanding()),
	}
	s.e2e.FillUpdate(u)
	return u
}

// Outstanding returns the number of commands in flight.
func (s *Session) Outstanding() int { return s.cids.Outstanding() }

// CanSubmit reports whether another Submit would be admitted by the queue
// depth bound.
func (s *Session) CanSubmit() bool {
	return s.connected && s.cids.Outstanding() < s.cfg.QueueDepth
}

// Submit issues one I/O. It returns an error if the session is not
// connected, the queue is full, or the request is malformed. A rejected
// Submit leaves no state behind — in particular an ErrQueueFull rejection
// happens before the TC pending queue or the wire is touched, so depth
// accounting stays exact across retry cycles.
func (s *Session) Submit(io IO) error {
	if !s.connected {
		return errors.New("hostqp: submit before handshake")
	}
	if io.Done == nil {
		return errors.New("hostqp: IO without Done callback")
	}
	if io.Blocks == 0 && io.Op != nvme.OpFlush {
		return errors.New("hostqp: zero-length IO")
	}
	// Zero priority means "inherit the connection class" (PrioNormal is
	// the zero value; a connection classed normal stays normal).
	eff := io.Prio
	if eff == 0 {
		eff = s.cfg.Class
	}
	// TC and scavenger requests replay the same submission-ordered
	// pending queue, so mixing them on one session would let a coalesced
	// response of one class prematurely complete the other's parked CIDs.
	// Checked before the CID allocation so the rejection leaves no state.
	if eff.Scavenger() && !s.cfg.Class.Scavenger() {
		return errors.New("hostqp: scavenger override on a non-scavenger connection; open a scavenger-class connection instead")
	}
	if eff.ThroughputCritical() && s.cfg.Class.Scavenger() {
		return errors.New("hostqp: throughput-critical override on a scavenger connection; open a TC-class connection instead")
	}
	cid, ok := s.cids.Alloc()
	if !ok {
		return ErrQueueFull
	}

	req := &pendingReq{io: io, submittedAt: s.clock()}
	var wire proto.Priority
	switch {
	case eff.ThroughputCritical():
		// Alg. 1: queue the CID and let the PM decide when to drain.
		wire = s.pm.Stamp(cid)
		req.coalescable = true
	case eff.Scavenger():
		// Scavenger requests ride the same pending queue (the target's
		// coalesced drain response replays them) but carry no draining
		// flags: the target decides when leftover capacity or aging
		// releases the window.
		wire = s.pm.Track(cid)
		req.coalescable = true
	default:
		wire = eff
	}
	req.prio = wire

	cmd := nvme.Command{Opcode: io.Op, CID: cid, NSID: s.cfg.NSID, SLBA: io.LBA}
	if io.Op != nvme.OpFlush {
		cmd.NLB = uint16(io.Blocks - 1)
	}
	var data []byte
	switch io.Op {
	case nvme.OpWrite:
		data = io.Data
		req.bytesMoved = int64(len(data))
		s.stats.BytesWrited += int64(len(data))
	case nvme.OpRead:
		if s.nsBlockSize > 0 {
			// Geometry known: preallocate the full destination so inbound
			// C2HData can land directly at Offset (the transport's reader
			// sinks payload bytes straight into this buffer) and so wire
			// offsets are validated against the expected length, not
			// trusted.
			req.expectedRead = int(io.Blocks) * int(s.nsBlockSize)
			req.readBuf = make([]byte, req.expectedRead)
			if s.cfg.OnReadBuffer != nil {
				s.cfg.OnReadBuffer(cid, req.readBuf)
			}
		} else {
			req.readBuf = nil // grown as data arrives, capped at maxDataLen
		}
	}
	s.reqs[cid] = req
	s.stats.Submitted++
	s.stats.CmdPDUs++
	s.cfg.Telemetry.IncSubmitted(s.tenant, int64(len(data)))
	if s.cfg.Trace != nil {
		s.cfg.Trace(telemetry.Event{Stage: telemetry.StageSubmit, Tenant: s.tenant, CID: cid, Prio: wire})
	}
	s.send(&proto.CapsuleCmd{Cmd: cmd, Prio: wire, Tenant: s.tenant, Data: data})
	return nil
}

// Flush forces the next TC request to carry a draining flag, so a tail
// window does not linger unfinished at the target. It affects only future
// submissions.
func (s *Session) Flush() { s.pm.ForceDrainNext() }

// HandlePDU processes one inbound PDU.
func (s *Session) HandlePDU(p proto.PDU) error {
	switch pdu := p.(type) {
	case *proto.ICResp:
		return s.handleICResp(pdu)
	case *proto.C2HData:
		return s.handleData(pdu)
	case *proto.CapsuleResp:
		return s.handleResp(pdu)
	case *proto.TelemetryAck:
		return s.handleTelemetryAck(pdu)
	case *proto.TermReq:
		return &ProtocolError{FES: pdu.FES, Reason: "terminated by target: " + pdu.Reason}
	default:
		return fmt.Errorf("hostqp: unexpected PDU %v", p.PDUType())
	}
}

func (s *Session) handleICResp(pdu *proto.ICResp) error {
	if s.connected {
		return errors.New("hostqp: duplicate ICResp")
	}
	if pdu.PFV != ProtocolVersion {
		return &ProtocolError{Reason: fmt.Sprintf("protocol version mismatch: target speaks PFV %d, host speaks %d", pdu.PFV, ProtocolVersion)}
	}
	s.tenant = pdu.Tenant
	s.nsBlockSize = pdu.BlockSize
	s.nsCapacity = pdu.Capacity
	s.maxDataLen = pdu.MaxDataLen
	if s.maxDataLen == 0 {
		s.maxDataLen = 1 << 20 // pre-geometry target: assume the default
	}
	if pdu.TargetClock != 0 {
		// NTP-style one-shot estimate: the target sampled its clock midway
		// through our round trip, so offset = T - (t0 + rtt/2), with the
		// error bounded by the (asymmetric part of the) RTT.
		t1 := s.clock()
		s.handshakeRTT = t1 - s.icReqSentAt
		s.clockOffset = pdu.TargetClock - (s.icReqSentAt + s.handshakeRTT/2)
		s.cfg.Recorder.SetClockOffset(s.clockOffset, s.handshakeRTT)
	}
	s.connected = true
	// The tenant ID is only known now, so the observability hooks attach
	// here rather than in New.
	s.pm.SetTelemetry(s.tenant, s.cfg.Telemetry, s.cfg.Trace)
	s.cfg.Telemetry.SetClass(s.tenant, s.cfg.Class)
	s.cfg.Telemetry.IncConnection()
	for _, fn := range s.onConnect {
		fn()
	}
	s.onConnect = nil
	return nil
}

// handleTelemetryAck re-estimates the host↔target clock offset from the
// keep-alive round trip — the same NTP-style midpoint math as the
// handshake, repeated on the telemetry cadence so the merged-trace time
// axis tracks drift instead of freezing the handshake's one-shot estimate.
func (s *Session) handleTelemetryAck(pdu *proto.TelemetryAck) error {
	if pdu.TargetClock == 0 {
		return nil // target does not share a clock
	}
	now := s.clock()
	rtt := now - pdu.EchoHostClock
	if rtt < 0 {
		// An echo from our future means a stale or corrupt ack; drop the
		// estimate, keep the session.
		return nil
	}
	off := pdu.TargetClock - (pdu.EchoHostClock + rtt/2)
	delta := off - s.clockOffset
	s.clockOffset = off
	s.handshakeRTT = rtt
	s.cfg.Recorder.SetClockOffset(off, rtt)
	s.cfg.Telemetry.RecordClockReestimate(s.tenant, delta)
	return nil
}

// handleData assembles one C2HData fragment into the read's destination
// buffer. Wire offsets are never trusted: a fragment must fit inside the
// request's expected read length (or, on geometry-unknown sessions, the
// handshake-advertised MaxDataLen), so a corrupt or hostile target cannot
// force a ~4 GiB allocation with an attacker-chosen uint32 offset, and
// overlapping or duplicate fragments are rejected rather than
// double-counted. Every rejection is a typed *ProtocolError, which
// transports escalate to a connection reset.
func (s *Session) handleData(pdu *proto.C2HData) error {
	s.stats.DataPDUs++
	req, ok := s.reqs[pdu.CCCID]
	if !ok {
		return &ProtocolError{Reason: fmt.Sprintf("C2HData for unknown CID %d", pdu.CCCID)}
	}
	if req.io.Op != nvme.OpRead {
		return &ProtocolError{Reason: fmt.Sprintf("C2HData for non-read CID %d", pdu.CCCID)}
	}
	off := int(pdu.Offset)
	end := off + len(pdu.Data)
	limit := req.expectedRead
	if limit == 0 {
		limit = int(s.maxDataLen)
	}
	if end > limit {
		return &ProtocolError{Reason: fmt.Sprintf(
			"C2HData [%d, %d) for CID %d exceeds the %d-byte read", off, end, pdu.CCCID, limit)}
	}
	if len(pdu.Data) == 0 {
		return nil // carries no coverage; nothing to assemble
	}
	if !req.addSpan(off, end) {
		return &ProtocolError{Reason: fmt.Sprintf(
			"overlapping C2HData [%d, %d) for CID %d", off, end, pdu.CCCID)}
	}
	if end > len(req.readBuf) {
		grown := make([]byte, end)
		copy(grown, req.readBuf)
		req.readBuf = grown
	}
	if &req.readBuf[off] != &pdu.Data[0] {
		// Not already landed in place by the transport's zero-copy sink.
		copy(req.readBuf[off:], pdu.Data)
	}
	req.readBytes += len(pdu.Data)
	req.bytesMoved = int64(req.readBytes)
	s.stats.BytesRead += int64(len(pdu.Data))
	return nil
}

func (s *Session) handleResp(pdu *proto.CapsuleResp) error {
	s.stats.RespPDUs++
	cid := pdu.Cpl.CID
	req, ok := s.reqs[cid]
	if !ok {
		return fmt.Errorf("hostqp: response for unknown CID %d", cid)
	}
	var done []nvme.CID
	var err error
	if pdu.Coalesced || req.coalescable {
		// TC path: the PM replays the pending prefix (coalesced) or
		// removes the one CID (individual response to a TC request).
		done, err = s.pm.OnResponse(cid, pdu.Coalesced)
		if err != nil {
			return err
		}
	} else {
		done = []nvme.CID{cid}
	}
	now := s.clock()
	var windowBytes int64
	for _, c := range done {
		r, ok := s.reqs[c]
		if !ok {
			return fmt.Errorf("hostqp: completion replay names unknown CID %d", c)
		}
		delete(s.reqs, c)
		if err := s.cids.Release(c); err != nil {
			return err
		}
		if r.io.Op == nvme.OpRead && s.cfg.OnReadRetire != nil {
			s.cfg.OnReadRetire(c)
		}
		st := pdu.Cpl.Status
		if st.OK() && r.expectedRead > 0 && r.readBytes < r.expectedRead {
			// The target claims success but the accepted fragments do not
			// cover the read (dropped or rejected-duplicate data): surface
			// a transfer error instead of returning a buffer with holes.
			st = nvme.StatusDataXferError
		}
		if !st.OK() {
			s.stats.Errors++
		}
		s.stats.Completed++
		windowBytes += r.bytesMoved
		if st == nvme.StatusBusy {
			s.e2e.AddBusy()
		} else if st.OK() {
			s.e2e.Record(r.prio, now-r.submittedAt)
		}
		s.cfg.Telemetry.IncCompleted(s.tenant, r.prio, now-r.submittedAt, int64(r.readBytes), st.OK())
		if s.cfg.Trace != nil {
			if pdu.Coalesced {
				s.cfg.Trace(telemetry.Event{Stage: telemetry.StageReplay, Tenant: s.tenant, CID: c, Prio: r.prio, Aux: now - r.submittedAt})
			}
			s.cfg.Trace(telemetry.Event{Stage: telemetry.StageComplete, Tenant: s.tenant, CID: c, Prio: r.prio, Aux: now - r.submittedAt})
		}
		r.io.Done(Result{
			Status:      st,
			Data:        r.readBuf,
			SubmittedAt: r.submittedAt,
			CompletedAt: now,
		})
	}
	if pdu.Coalesced {
		s.drainedBytes += windowBytes
		s.pm.OnDrainCompleted(s.drainedBytes, now)
		s.drainedBytes = 0
	}
	return nil
}

// OldestSubmittedAt returns the submission timestamp of the oldest
// in-flight request (ok is false when nothing is outstanding). Transports
// sweep it against their request deadline: if the oldest request has been
// waiting longer than the deadline, the connection is declared dead.
func (s *Session) OldestSubmittedAt() (ts int64, ok bool) {
	for _, req := range s.reqs {
		if !ok || req.submittedAt < ts {
			ts = req.submittedAt
			ok = true
		}
	}
	return ts, ok
}

// FailAll completes every in-flight request with status st, releases all
// CIDs, clears the PM pending queue, and marks the session disconnected
// so no further submissions are accepted. Transports call it when the
// connection dies (read error, request deadline, teardown) so no Done
// callback is stranded and no queue depth leaks. It returns the number of
// requests failed. Completions are delivered in CID order for
// determinism.
func (s *Session) FailAll(st nvme.Status) int {
	s.connected = false
	s.pm.DropPending()
	cids := make([]nvme.CID, 0, len(s.reqs))
	for cid := range s.reqs {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	now := s.clock()
	for _, cid := range cids {
		req := s.reqs[cid]
		delete(s.reqs, cid)
		_ = s.cids.Release(cid)
		if req.io.Op == nvme.OpRead && s.cfg.OnReadRetire != nil {
			s.cfg.OnReadRetire(cid)
		}
		s.stats.Completed++
		s.stats.Errors++
		s.cfg.Telemetry.IncCompleted(s.tenant, req.prio, now-req.submittedAt, int64(req.readBytes), false)
		if s.cfg.Trace != nil {
			s.cfg.Trace(telemetry.Event{Stage: telemetry.StageComplete, Tenant: s.tenant, CID: cid, Prio: req.prio, Aux: now - req.submittedAt})
		}
		req.io.Done(Result{
			Status:      st,
			SubmittedAt: req.submittedAt,
			CompletedAt: now,
		})
	}
	return len(cids)
}

// PMStats exposes the host priority manager counters.
func (s *Session) PMStats() core.HostPMStats { return s.pm.Stats() }

// PendingTC returns the number of throughput-critical requests whose
// completion notifications are still owed (queued or executing at the
// target). Transports use it to decide whether an idle-drain is needed.
func (s *Session) PendingTC() int { return s.pm.Pending() }

// PartialWindow returns the number of TC requests submitted since the last
// draining flag: the requests sitting in the target's tenant queue with no
// drain scheduled to release them.
func (s *Session) PartialWindow() int { return s.pm.SinceDrain() }

// Scavenger reports whether this connection runs in the best-effort
// class. Transports consult it to skip the idle-drain machinery: a
// parked scavenger window is released by the target (leftover capacity
// or aging), never by a host drain flag, so flushing it from the host
// would be a no-op loop.
func (s *Session) Scavenger() bool { return s.cfg.Class.Scavenger() }
