package proto

// Fuzz entry for the PDU decode surface: the Reader (pooled and plain,
// with and without a zero-copy sink) and one-shot Unmarshal must never
// panic, over-allocate beyond MaxPDUSize, or mis-handle a truncated or
// hostile stream. CI runs this as a short -fuzztime smoke; longer local
// runs explore deeper.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"nvmeopf/internal/nvme"
)

func FuzzPDUDecode(f *testing.F) {
	// One well-formed seed per PDU type.
	for _, p := range []PDU{
		&ICReq{PFV: 1, QueueDepth: 64, Prio: PrioThroughputCritical, NSID: 1},
		&ICResp{PFV: 1, Tenant: 3, MaxDataLen: 1 << 20, BlockSize: 4096, Capacity: 1 << 18},
		&CapsuleCmd{
			Cmd:  nvme.Command{Opcode: nvme.OpWrite, CID: 3, NSID: 1, SLBA: 8, NLB: 1},
			Data: bytes.Repeat([]byte{0x5C}, 512),
		},
		&CapsuleResp{Cpl: nvme.Completion{CID: 3}, Coalesced: true},
		&C2HData{CCCID: 3, Offset: 512, Data: bytes.Repeat([]byte{0x77}, 256)},
		&C2HData{CCCID: 9, Offset: 0},
		&H2CData{CCCID: 4, Offset: 0, Data: []byte{1, 2, 3}},
		&TermReq{Dir: TypeC2HTermReq, FES: 2, Reason: "bad offset"},
	} {
		f.Add(Marshal(p))
	}
	// Adversarial seeds: truncated common header, PLen lies (oversized,
	// undersized, max), hostile C2HData offset, unknown type.
	f.Add([]byte{byte(TypeCapsuleCmd), 0, 8})
	big := make([]byte, chSize)
	big[0] = byte(TypeC2HData)
	binary.LittleEndian.PutUint32(big[4:], MaxPDUSize)
	f.Add(big)
	tiny := make([]byte, chSize)
	tiny[0] = byte(TypeCapsuleResp)
	binary.LittleEndian.PutUint32(tiny[4:], 1)
	f.Add(tiny)
	hostile := Marshal(&C2HData{CCCID: 1, Offset: 0, Data: make([]byte, 64)})
	binary.LittleEndian.PutUint32(hostile[chSize+4:], 0xFFFF_FFF0)
	f.Add(hostile)
	f.Add([]byte{0xEE, 0, 8, 8, 12, 0, 0, 0, 1, 2, 3, 4})

	dst := make([]byte, 4096)
	f.Fuzz(func(t *testing.T, data []byte) {
		// One-shot decode.
		if p, err := Unmarshal(data); err == nil && p == nil {
			t.Fatal("Unmarshal returned nil PDU with nil error")
		}
		// Streaming decode under each reader mode: every PDU the stream
		// yields must re-marshal without panicking, and pooled PDUs must
		// survive a full release cycle.
		sink := func(_ nvme.CID, _, length uint32) []byte {
			if int(length) <= len(dst) {
				return dst[:length]
			}
			return nil
		}
		for _, mode := range []struct {
			pooled  bool
			useSink bool
		}{{false, false}, {true, false}, {true, true}} {
			rd := NewReader(bytes.NewReader(data), mode.pooled)
			if mode.useSink {
				rd.SetC2HSink(sink)
			}
			for i := 0; i < 16; i++ {
				p, err := rd.Next()
				if err != nil {
					break
				}
				Marshal(p)
				if mode.pooled {
					ReleaseInbound(p)
				}
			}
		}
	})
}
