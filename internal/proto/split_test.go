package proto

// Tests for the scatter-gather split encoding (AppendPDUHeader +
// PayloadRef) and the zero-copy C2HData sink. The load-bearing property:
// header-then-payload must be byte-identical to AppendPDU for every PDU
// type, and both the staging path and the sink read path must stay
// allocation-free in steady state.

import (
	"bytes"
	"testing"

	"nvmeopf/internal/nvme"
)

// splitTestPDUs covers every PDU type, with and without payloads.
func splitTestPDUs() []PDU {
	return []PDU{
		&ICReq{PFV: 1, QueueDepth: 64, Prio: PrioThroughputCritical, NSID: 1},
		&ICResp{PFV: 1, Tenant: 3, MaxDataLen: 1 << 20, BlockSize: 4096, Capacity: 1 << 18},
		&CapsuleCmd{
			Cmd:    nvme.Command{Opcode: nvme.OpWrite, CID: 3, NSID: 1, SLBA: 8, NLB: 1},
			Prio:   PrioTCDraining,
			Tenant: 5,
			Data:   bytes.Repeat([]byte{0x5C}, 8192),
		},
		&CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 4, NSID: 1, SLBA: 16, NLB: 1}},
		&CapsuleResp{Cpl: nvme.Completion{CID: 3, Status: nvme.StatusSuccess}, Coalesced: true},
		&C2HData{CCCID: 3, Offset: 512, Data: bytes.Repeat([]byte{0x77}, 4096)},
		&C2HData{CCCID: 9, Offset: 0},
		&H2CData{CCCID: 4, Offset: 0, Data: []byte{1, 2, 3}},
		&TermReq{Dir: TypeC2HTermReq, FES: 2, Reason: "bad offset"},
	}
}

// TestAppendPDUHeaderWireIdentity: AppendPDUHeader followed by the
// referenced payload must reproduce AppendPDU exactly — the invariant the
// vectored writer's byte stream rests on.
func TestAppendPDUHeaderWireIdentity(t *testing.T) {
	for _, p := range splitTestPDUs() {
		want := AppendPDU(nil, p)
		got := AppendPDUHeader(nil, p)
		got = append(got, PayloadRef(p)...)
		if !bytes.Equal(got, want) {
			t.Errorf("%v: split encoding differs (%d bytes vs %d)", p.PDUType(), len(got), len(want))
		}
	}
}

// TestPayloadRefAliases: for data-bearing PDUs the reference must be the
// caller's slice itself (no copy), so the writer's iovec points at the
// owner's memory.
func TestPayloadRefAliases(t *testing.T) {
	data := bytes.Repeat([]byte{9}, 2048)
	for _, p := range []PDU{
		&CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1}, Data: data},
		&C2HData{CCCID: 1, Data: data},
		&H2CData{CCCID: 1, Data: data},
	} {
		ref := PayloadRef(p)
		if len(ref) != len(data) || &ref[0] != &data[0] {
			t.Errorf("%v: PayloadRef does not alias the payload", p.PDUType())
		}
	}
	if PayloadRef(&CapsuleResp{}) != nil {
		t.Error("CapsuleResp has no payload; PayloadRef must be nil")
	}
}

// TestAppendPDUHeaderZeroAlloc pins the staging path at zero allocations:
// headers append into a reused buffer, payloads ride by reference.
func TestAppendPDUHeaderZeroAlloc(t *testing.T) {
	skipIfRace(t)
	cmd := &CapsuleCmd{
		Cmd:  nvme.Command{Opcode: nvme.OpWrite, CID: 7, NSID: 1, SLBA: 42},
		Data: make([]byte, 4096),
	}
	d := &C2HData{CCCID: 7, Offset: 0, Data: make([]byte, 8192)}
	buf := make([]byte, 0, 64<<10)
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		buf = AppendPDUHeader(buf, cmd)
		buf = AppendPDUHeader(buf, d)
	})
	if allocs != 0 {
		t.Errorf("AppendPDUHeader into reused buffer: %v allocs/op, want 0", allocs)
	}
}

// TestSinkLandsPayloadInPlace: an accepting sink receives the wire bytes
// directly in the destination buffer and the PDU comes back Borrowed, so
// release paths leave the caller's memory alone.
func TestSinkLandsPayloadInPlace(t *testing.T) {
	payload := bytes.Repeat([]byte{0xC4}, 4096)
	wire := Marshal(&C2HData{CCCID: 11, Offset: 512, Data: payload})
	dst := make([]byte, 4096)
	var gotCID nvme.CID
	var gotOff, gotLen uint32
	rd := NewReader(bytes.NewReader(wire), true)
	rd.SetC2HSink(func(cccid nvme.CID, offset, length uint32) []byte {
		gotCID, gotOff, gotLen = cccid, offset, length
		return dst
	})
	p, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := p.(*C2HData)
	if !ok {
		t.Fatalf("decoded %T", p)
	}
	if gotCID != 11 || gotOff != 512 || gotLen != 4096 {
		t.Fatalf("sink saw cccid=%d off=%d len=%d", gotCID, gotOff, gotLen)
	}
	if !d.Borrowed {
		t.Fatal("sink-landed PDU not marked Borrowed")
	}
	if len(d.Data) != 4096 || &d.Data[0] != &dst[0] {
		t.Fatal("payload did not land in the sink's destination")
	}
	if !bytes.Equal(dst, payload) {
		t.Fatal("payload bytes wrong in destination")
	}
	ReleaseInbound(p)
}

// TestSinkDeclineFallsBackToWireSizedBuffer: a declining sink (or one
// returning a wrong-length slice) falls back to a pooled buffer sized by
// the actual wire payload — never by the untrusted offset field.
func TestSinkDeclineFallsBackToWireSizedBuffer(t *testing.T) {
	payload := bytes.Repeat([]byte{0x3A}, 1024)
	// Hostile offset near 4 GiB: the fallback must still allocate 1 KiB.
	wire := Marshal(&C2HData{CCCID: 2, Offset: 0xFFFF_F000, Data: payload})
	for name, sink := range map[string]C2HSink{
		"decline":      func(nvme.CID, uint32, uint32) []byte { return nil },
		"wrong-length": func(nvme.CID, uint32, uint32) []byte { return make([]byte, 8) },
	} {
		rd := NewReader(bytes.NewReader(wire), true)
		rd.SetC2HSink(sink)
		p, err := rd.Next()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := p.(*C2HData)
		if d.Borrowed {
			t.Fatalf("%s: fallback PDU marked Borrowed", name)
		}
		if len(d.Data) != 1024 || !bytes.Equal(d.Data, payload) {
			t.Fatalf("%s: fallback payload wrong (len %d)", name, len(d.Data))
		}
		if d.Offset != 0xFFFF_F000 {
			t.Fatalf("%s: offset not preserved for the consumer to reject", name)
		}
		ReleaseInbound(p)
	}
}

// TestSinkZeroLengthData: zero-payload C2HData PDUs skip the sink
// entirely and decode with nil Data.
func TestSinkZeroLengthData(t *testing.T) {
	wire := Marshal(&C2HData{CCCID: 5, Offset: 64})
	rd := NewReader(bytes.NewReader(wire), true)
	rd.SetC2HSink(func(nvme.CID, uint32, uint32) []byte {
		t.Error("sink consulted for a zero-length payload")
		return nil
	})
	p, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*C2HData)
	if d.Data != nil || d.Borrowed || d.CCCID != 5 || d.Offset != 64 {
		t.Fatalf("zero-length decode wrong: %+v", d)
	}
	ReleaseInbound(p)
}

// TestReleaseInboundSkipsBorrowed: releasing a Borrowed C2HData must NOT
// return the caller-owned destination to the buffer pool — if it did, the
// very next GetBuf of the same class would hand the caller's live memory
// to another owner.
func TestReleaseInboundSkipsBorrowed(t *testing.T) {
	for i := 0; i < 100; i++ {
		caller := make([]byte, 4096) // cap is an exact pool class
		d := GetC2HData()
		d.Data = caller
		d.Borrowed = true
		ReleaseInbound(d)
		got := GetBuf(4096)
		if &got[0] == &caller[0] {
			t.Fatal("Borrowed payload leaked into the buffer pool")
		}
		PutBuf(got)
	}
}

// TestReaderZeroAllocC2HDataSink pins the zero-copy read path: with a
// sink accepting every payload, Next + ReleaseInbound is allocation-free.
func TestReaderZeroAllocC2HDataSink(t *testing.T) {
	skipIfRace(t)
	wire := Marshal(&C2HData{CCCID: 1, Offset: 0, Data: bytes.Repeat([]byte{0xEE}, 4096)})
	dst := make([]byte, 4096)
	rd := NewReader(&loopReader{data: wire}, true)
	rd.SetC2HSink(func(_ nvme.CID, _, length uint32) []byte {
		if length != 4096 {
			return nil
		}
		return dst
	})
	for i := 0; i < 16; i++ {
		p, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		ReleaseInbound(p)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		ReleaseInbound(p)
	})
	if allocs != 0 {
		t.Errorf("Reader.Next(C2HData via sink): %v allocs/op, want 0", allocs)
	}
}

// TestSinkPooledMatchesPlainDecode: a stream mixing C2HData with other
// PDU types decodes identically with and without a sink installed.
func TestSinkPooledMatchesPlainDecode(t *testing.T) {
	pdus := splitTestPDUs()
	var wire []byte
	for _, p := range pdus {
		wire = AppendPDU(wire, p)
	}
	dst := make([]byte, 1<<16)
	rd := NewReader(bytes.NewReader(wire), true)
	rd.SetC2HSink(func(_ nvme.CID, _, length uint32) []byte { return dst[:length] })
	for i, want := range pdus {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("pdu %d: %v", i, err)
		}
		checkPDUEqual(t, got, want)
	}
}
