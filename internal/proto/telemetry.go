package proto

import (
	"encoding/binary"
	"fmt"
)

// Telemetry PDU types. These extend the dialect past the discovery range
// (0x08–0x0A): an in-band host→target feedback channel that closes the
// egress-queue blind spot — the target's own service-latency telemetry
// cannot see queueing that happens after its completions leave the NIC,
// so each host periodically reports what it actually observed.
const (
	// TypeTelemetryUpdate carries one host's per-class end-to-end latency
	// histogram deltas, outstanding queue depth, and busy/retry counters
	// since its previous update (host → target).
	TypeTelemetryUpdate Type = 0x0B
	// TypeTelemetryAck acknowledges a TelemetryUpdate, echoing the host's
	// clock sample next to the target's so the host can re-estimate the
	// clock offset NTP-style on every keep-alive round trip
	// (target → host).
	TypeTelemetryAck Type = 0x0C
)

// TelemetryBucket is one sparse histogram bucket delta: the count added to
// bucket Index since the previous update. Indices address the telemetry
// package's HDR bucket grid, so the target merges host deltas into its own
// per-tenant histograms exactly (bucket-wise addition, no re-sampling).
type TelemetryBucket struct {
	Index uint16
	Count uint32
}

// TelemetryClassDelta is one priority class's end-to-end latency histogram
// delta since the host's previous update.
type TelemetryClassDelta struct {
	Class Priority
	// Sum is the sum of end-to-end latencies (ns) recorded in this delta.
	Sum uint64
	// Max is the largest end-to-end latency (ns) seen since the previous
	// update (not a running max: each delta reports its own window).
	Max uint64
	// Buckets holds the sparse bucket-count deltas, ascending by Index.
	Buckets []TelemetryBucket
}

// TelemetryUpdate is the host→target end-to-end feedback PDU, emitted on
// the transport's keep-alive cadence. The connection's tenant identity is
// implicit (the target learned it at ICReq), so the body carries only the
// measurements.
type TelemetryUpdate struct {
	// HostClock is the host's clock (ns) sampled while building the
	// update; the target echoes it in the TelemetryAck.
	HostClock int64
	// SubBits tags the histogram geometry (sub-bucket resolution bits) the
	// bucket indices assume. The target rejects a mismatched geometry
	// rather than merge garbage.
	SubBits uint8
	// QueueDepth is the host's outstanding command count at build time.
	QueueDepth uint32
	// Busy counts StatusBusy completions since the previous update.
	Busy uint32
	// Retries counts commands resubmitted (replayed after a connection
	// loss or re-sent after busy push-back) since the previous update.
	Retries uint32
	// Classes holds one delta per priority class with new samples.
	Classes []TelemetryClassDelta
}

// Fixed body sizes: update header, per-class header, per-bucket pair.
const (
	tuHdrSize    = 8 + 1 + 1 + 4 + 4 + 4 // HostClock SubBits NumClasses QD Busy Retries
	tuClassSize  = 1 + 2 + 8 + 8         // Class NumBuckets Sum Max
	tuBucketSize = 2 + 4                 // Index Count
)

// PDUType implements PDU.
func (*TelemetryUpdate) PDUType() Type { return TypeTelemetryUpdate }

// WireSize implements PDU.
func (p *TelemetryUpdate) WireSize() int {
	size := chSize + tuHdrSize
	for i := range p.Classes {
		size += tuClassSize + tuBucketSize*len(p.Classes[i].Buckets)
	}
	return size
}

func (p *TelemetryUpdate) encodeBody(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(p.HostClock))
	dst[8] = p.SubBits
	dst[9] = uint8(len(p.Classes))
	binary.LittleEndian.PutUint32(dst[10:], p.QueueDepth)
	binary.LittleEndian.PutUint32(dst[14:], p.Busy)
	binary.LittleEndian.PutUint32(dst[18:], p.Retries)
	off := tuHdrSize
	for i := range p.Classes {
		c := &p.Classes[i]
		dst[off] = encodePriority(c.Class)
		binary.LittleEndian.PutUint16(dst[off+1:], uint16(len(c.Buckets)))
		binary.LittleEndian.PutUint64(dst[off+3:], c.Sum)
		binary.LittleEndian.PutUint64(dst[off+11:], c.Max)
		off += tuClassSize
		for _, b := range c.Buckets {
			binary.LittleEndian.PutUint16(dst[off:], b.Index)
			binary.LittleEndian.PutUint32(dst[off+2:], b.Count)
			off += tuBucketSize
		}
	}
}

func (p *TelemetryUpdate) decodeBody(src []byte) error {
	if len(src) < tuHdrSize {
		return fmt.Errorf("proto: short TelemetryUpdate body: %d", len(src))
	}
	p.HostClock = int64(binary.LittleEndian.Uint64(src[0:]))
	p.SubBits = src[8]
	nClasses := int(src[9])
	p.QueueDepth = binary.LittleEndian.Uint32(src[10:])
	p.Busy = binary.LittleEndian.Uint32(src[14:])
	p.Retries = binary.LittleEndian.Uint32(src[18:])
	p.Classes = nil
	off := tuHdrSize
	for i := 0; i < nClasses; i++ {
		if len(src) < off+tuClassSize {
			return fmt.Errorf("proto: TelemetryUpdate truncated at class %d", i)
		}
		c := TelemetryClassDelta{
			Class: decodePriority(src[off]),
			Sum:   binary.LittleEndian.Uint64(src[off+3:]),
			Max:   binary.LittleEndian.Uint64(src[off+11:]),
		}
		nBuckets := int(binary.LittleEndian.Uint16(src[off+1:]))
		off += tuClassSize
		if len(src) < off+nBuckets*tuBucketSize {
			return fmt.Errorf("proto: TelemetryUpdate truncated in class %d buckets", i)
		}
		if nBuckets > 0 {
			c.Buckets = make([]TelemetryBucket, nBuckets)
			for j := range c.Buckets {
				c.Buckets[j].Index = binary.LittleEndian.Uint16(src[off:])
				c.Buckets[j].Count = binary.LittleEndian.Uint32(src[off+2:])
				off += tuBucketSize
			}
		}
		p.Classes = append(p.Classes, c)
	}
	if off != len(src) {
		return fmt.Errorf("proto: TelemetryUpdate trailing %d bytes", len(src)-off)
	}
	return nil
}

func (p *TelemetryUpdate) headerFlags() uint8     { return 0 }
func (p *TelemetryUpdate) setHeaderFlags(f uint8) {}

// TelemetryAck answers a TelemetryUpdate. The echoed host clock plus the
// target clock give the host both ends of an NTP-style sample: on receipt,
// rtt = now − EchoHostClock and offset = TargetClock − (EchoHostClock +
// rtt/2), refreshing the one-shot ICReq/ICResp estimate that drifts over
// long sessions.
type TelemetryAck struct {
	EchoHostClock int64
	TargetClock   int64
}

// TelemetryAckSize is the wire size of a TelemetryAck.
const TelemetryAckSize = chSize + 16

// PDUType implements PDU.
func (*TelemetryAck) PDUType() Type { return TypeTelemetryAck }

// WireSize implements PDU.
func (*TelemetryAck) WireSize() int { return TelemetryAckSize }

func (p *TelemetryAck) encodeBody(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(p.EchoHostClock))
	binary.LittleEndian.PutUint64(dst[8:], uint64(p.TargetClock))
}

func (p *TelemetryAck) decodeBody(src []byte) error {
	if len(src) < TelemetryAckSize-chSize {
		return fmt.Errorf("proto: short TelemetryAck body: %d", len(src))
	}
	p.EchoHostClock = int64(binary.LittleEndian.Uint64(src[0:]))
	p.TargetClock = int64(binary.LittleEndian.Uint64(src[8:]))
	return nil
}

func (p *TelemetryAck) headerFlags() uint8     { return 0 }
func (p *TelemetryAck) setHeaderFlags(f uint8) {}
