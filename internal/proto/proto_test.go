package proto

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"nvmeopf/internal/nvme"
)

func roundTrip(t *testing.T, p PDU) PDU {
	t.Helper()
	buf := Marshal(p)
	if len(buf) != p.WireSize() {
		t.Fatalf("%v: Marshal len %d != WireSize %d", p.PDUType(), len(buf), p.WireSize())
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("%v: Unmarshal: %v", p.PDUType(), err)
	}
	return out
}

func TestICReqRoundTrip(t *testing.T) {
	in := &ICReq{PFV: 1, QueueDepth: 128, Prio: PrioThroughputCritical}
	out := roundTrip(t, in).(*ICReq)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestICRespRoundTrip(t *testing.T) {
	in := &ICResp{PFV: 1, Tenant: 42, MaxDataLen: 1 << 20}
	out := roundTrip(t, in).(*ICResp)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestCapsuleCmdRoundTrip(t *testing.T) {
	in := &CapsuleCmd{
		Cmd:    nvme.Command{Opcode: nvme.OpWrite, CID: 7, NSID: 1, SLBA: 100, NLB: 7},
		Prio:   PrioTCDraining,
		Tenant: 200,
		Data:   []byte("hello, in-capsule world"),
	}
	out := roundTrip(t, in).(*CapsuleCmd)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestCapsuleCmdNoData(t *testing.T) {
	in := &CapsuleCmd{
		Cmd:  nvme.Command{Opcode: nvme.OpRead, CID: 9, NSID: 1, SLBA: 5, NLB: 0},
		Prio: PrioLatencySensitive,
	}
	out := roundTrip(t, in).(*CapsuleCmd)
	if out.Data != nil {
		t.Fatalf("read capsule grew data: %v", out.Data)
	}
	if out.Prio != PrioLatencySensitive || out.Cmd != in.Cmd {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

// TestWideTenantIDRoundTrip pins the 16-bit tenant field: IDs above 255
// survive the CapsuleCmd and ICResp wire encodings bit-exactly (they ride
// little-endian in SQE bytes 9..10 and ICResp body bytes 2..3), and the
// widening still costs zero extra wire bytes.
func TestWideTenantIDRoundTrip(t *testing.T) {
	for _, tenant := range []TenantID{0, 1, 255, 256, 0x1234, 65535} {
		cc := &CapsuleCmd{
			Cmd:    nvme.Command{Opcode: nvme.OpWrite, CID: 3, NSID: 1, SLBA: 8, NLB: 0},
			Prio:   PrioThroughputCritical,
			Tenant: tenant,
			Data:   []byte("0123456789abcdef"),
		}
		got := roundTrip(t, cc).(*CapsuleCmd)
		if got.Tenant != tenant {
			t.Fatalf("CapsuleCmd tenant %d round-tripped to %d", tenant, got.Tenant)
		}
		if got.Prio != PrioThroughputCritical {
			t.Fatalf("tenant %d clobbered priority: %v", tenant, got.Prio)
		}
		ic := &ICResp{PFV: 1, Tenant: tenant, MaxDataLen: 4096, BlockSize: 512, Capacity: 1 << 20}
		if out := roundTrip(t, ic).(*ICResp); out.Tenant != tenant {
			t.Fatalf("ICResp tenant %d round-tripped to %d", tenant, out.Tenant)
		}
	}
	narrow := &CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1}, Tenant: 7}
	wide := &CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1}, Tenant: 65535}
	if len(Marshal(narrow)) != len(Marshal(wide)) {
		t.Fatal("wide tenant IDs changed the wire size")
	}
}

// The priority extension must not change PDU sizes (§IV-A): a flagged
// capsule is byte-for-byte the same length as an unflagged one.
func TestPriorityExtensionAddsNoBytes(t *testing.T) {
	cmd := nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1, SLBA: 0, NLB: 7}
	plain := &CapsuleCmd{Cmd: cmd, Prio: PrioNormal, Tenant: 0}
	flagged := &CapsuleCmd{Cmd: cmd, Prio: PrioTCDraining, Tenant: 255}
	if plain.WireSize() != flagged.WireSize() {
		t.Fatalf("priority flags changed wire size: %d vs %d", plain.WireSize(), flagged.WireSize())
	}
	if len(Marshal(plain)) != len(Marshal(flagged)) {
		t.Fatal("encoded sizes differ")
	}
}

func TestCapsuleRespCoalescedFlag(t *testing.T) {
	in := &CapsuleResp{
		Cpl:       nvme.Completion{CID: 11, Status: nvme.StatusSuccess, SQHead: 4},
		Coalesced: true,
	}
	out := roundTrip(t, in).(*CapsuleResp)
	if !out.Coalesced {
		t.Fatal("coalesced flag lost")
	}
	if out.Cpl != in.Cpl {
		t.Fatalf("completion mismatch: %+v vs %+v", out.Cpl, in.Cpl)
	}
	in.Coalesced = false
	out = roundTrip(t, in).(*CapsuleResp)
	if out.Coalesced {
		t.Fatal("coalesced flag appeared from nowhere")
	}
}

func TestC2HDataRoundTrip(t *testing.T) {
	in := &C2HData{CCCID: 5, Offset: 4096, Data: bytes.Repeat([]byte{0xAB}, 4096)}
	out := roundTrip(t, in).(*C2HData)
	if !reflect.DeepEqual(out, in) {
		t.Fatal("C2HData round trip mismatch")
	}
}

func TestH2CDataRoundTrip(t *testing.T) {
	in := &H2CData{CCCID: 6, Offset: 0, Data: []byte{1, 2, 3}}
	out := roundTrip(t, in).(*H2CData)
	if !reflect.DeepEqual(out, in) {
		t.Fatal("H2CData round trip mismatch")
	}
}

func TestTermReqRoundTrip(t *testing.T) {
	for _, dir := range []Type{TypeH2CTermReq, TypeC2HTermReq} {
		in := &TermReq{Dir: dir, FES: 2, Reason: "bad tenant id"}
		out := roundTrip(t, in).(*TermReq)
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("TermReq round trip mismatch: %+v vs %+v", out, in)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil buffer accepted")
	}
	if _, err := Unmarshal(make([]byte, 4)); err == nil {
		t.Error("short buffer accepted")
	}
	// Unknown type.
	buf := Marshal(&ICReq{})
	buf[0] = 0xEE
	if _, err := Unmarshal(buf); err == nil {
		t.Error("unknown type accepted")
	}
	// PLen mismatch.
	buf = Marshal(&ICReq{})
	buf[4] = 0xFF
	if _, err := Unmarshal(buf); err == nil {
		t.Error("PLen mismatch accepted")
	}
	// Truncated capsule body.
	buf = Marshal(&CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead}})
	short := buf[:20]
	// Fix PLen to claim the short length so the body decoder sees it.
	short[4] = 20
	short[5], short[6], short[7] = 0, 0, 0
	if _, err := Unmarshal(short); err == nil {
		t.Error("truncated capsule accepted")
	}
	// C2HData with lying length field.
	c2h := Marshal(&C2HData{CCCID: 1, Data: []byte{1, 2, 3}})
	c2h[16] = 99 // corrupt DATAL
	if _, err := Unmarshal(c2h); err == nil {
		t.Error("corrupt C2HData length accepted")
	}
}

func TestReadWritePDUStream(t *testing.T) {
	var buf bytes.Buffer
	pdus := []PDU{
		&ICReq{PFV: 1, QueueDepth: 128, Prio: PrioLatencySensitive},
		&ICResp{PFV: 1, Tenant: 3, MaxDataLen: 65536},
		&CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1, NLB: 7}, Prio: PrioThroughputCritical, Tenant: 3, Data: []byte("abc")},
		&CapsuleResp{Cpl: nvme.Completion{CID: 1}, Coalesced: true},
		&C2HData{CCCID: 2, Data: []byte("xyz")},
	}
	for _, p := range pdus {
		if err := WritePDU(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range pdus {
		got, err := ReadPDU(&buf)
		if err != nil {
			t.Fatalf("pdu %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pdu %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadPDU(&buf); err != io.EOF {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestReadPDUBadPLen(t *testing.T) {
	// PLen below header size.
	raw := []byte{byte(TypeICReq), 0, 8, 8, 2, 0, 0, 0}
	if _, err := ReadPDU(bytes.NewReader(raw)); err == nil {
		t.Error("PLen < header accepted")
	}
	// PLen over the cap.
	raw = []byte{byte(TypeICReq), 0, 8, 8, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := ReadPDU(bytes.NewReader(raw)); err == nil {
		t.Error("giant PLen accepted")
	}
	// Truncated body.
	buf := Marshal(&ICResp{})
	if _, err := ReadPDU(bytes.NewReader(buf[:10])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestPriorityPredicates(t *testing.T) {
	cases := []struct {
		p Priority
		ls, tc,
		drain bool
	}{
		{PrioNormal, false, false, false},
		{PrioLatencySensitive, true, false, false},
		{PrioThroughputCritical, false, true, false},
		{PrioTCDraining, false, true, true},
	}
	for _, c := range cases {
		if c.p.LatencySensitive() != c.ls || c.p.ThroughputCritical() != c.tc || c.p.Draining() != c.drain {
			t.Errorf("%v predicates wrong", c.p)
		}
		if c.p.String() == "" {
			t.Errorf("%v has empty string", uint8(c.p))
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := Type(0); ty < 8; ty++ {
		if ty.String() == "" {
			t.Errorf("empty string for type %d", ty)
		}
	}
	if Type(0xAA).String() != "Type(0xaa)" {
		t.Errorf("unknown type string = %q", Type(0xAA).String())
	}
}

// Property: any CapsuleCmd round-trips, preserving flags and tenant ID for
// arbitrary command fields and payloads.
func TestCapsuleCmdProperty(t *testing.T) {
	f := func(op uint8, cid uint16, nsid uint32, slba uint64, nlb uint16, prio uint8, tenant uint8, data []byte) bool {
		in := &CapsuleCmd{
			Cmd:    nvme.Command{Opcode: nvme.Opcode(op), CID: cid, NSID: nsid, SLBA: slba, NLB: nlb},
			Prio:   Priority(prio % 4),
			Tenant: TenantID(tenant),
			Data:   data,
		}
		if len(data) == 0 {
			in.Data = nil
		}
		out, err := Unmarshal(Marshal(in))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary bytes with a consistent
// PLen header (fuzz-style robustness).
func TestUnmarshalRobustness(t *testing.T) {
	f := func(body []byte, typ uint8) bool {
		buf := make([]byte, chSize+len(body))
		buf[0] = typ % 10
		buf[2] = chSize
		buf[3] = chSize
		buf[4] = byte(len(buf))
		buf[5] = byte(len(buf) >> 8)
		buf[6] = byte(len(buf) >> 16)
		buf[7] = byte(len(buf) >> 24)
		copy(buf[chSize:], body)
		_, _ = Unmarshal(buf) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoveryPDURoundTrip(t *testing.T) {
	in := &DiscResp{Entries: []DiscEntry{
		{NQN: "nqn.2024-01.io.nvmeopf:sub1", Addr: "10.0.0.1:4420", Mode: 1},
		{NQN: "nqn.2024-01.io.nvmeopf:sub2", Addr: "[::1]:4421", Mode: 0},
	}}
	out := roundTrip(t, in).(*DiscResp)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	req := roundTrip(t, &DiscReq{}).(*DiscReq)
	_ = req
	// Empty log round-trips to zero entries.
	empty := roundTrip(t, &DiscResp{}).(*DiscResp)
	if len(empty.Entries) != 0 {
		t.Fatalf("empty log decoded to %+v", empty.Entries)
	}
}

// TestDiscoveryClusterExtensionRoundTrip pins the cluster fields layered
// onto the discovery PDUs: TTL/epoch/shard claims on DiscRegister, map
// epoch and shard assignments on DiscResp — and that a legacy body (no
// trailing extension) still decodes with the extension zeroed.
func TestDiscoveryClusterExtensionRoundTrip(t *testing.T) {
	reg := &DiscRegister{
		Entry:  DiscEntry{NQN: "nqn.2024-01.io.nvmeopf:t0", Addr: "10.0.0.1:4420", Mode: 1},
		TTLMs:  1500,
		Epoch:  42,
		Shards: []uint32{0, 2, 5},
	}
	gotReg := roundTrip(t, reg).(*DiscRegister)
	if !reflect.DeepEqual(gotReg, reg) {
		t.Fatalf("DiscRegister got %+v, want %+v", gotReg, reg)
	}
	resp := &DiscResp{
		Entries: []DiscEntry{
			{NQN: "nqn.a", Addr: "h:1", Mode: 1},
			{NQN: "nqn.b", Addr: "h:2", Mode: 1},
		},
		Epoch: 7,
		Assignments: []ShardAssignment{
			{Shard: 0, Primary: "nqn.a", Replica: "nqn.b"},
			{Shard: 1, Primary: "nqn.b", Replica: ""},
		},
	}
	gotResp := roundTrip(t, resp).(*DiscResp)
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("DiscResp got %+v, want %+v", gotResp, resp)
	}

	// A legacy register body — everything up to and including the mode
	// byte, no extension — must decode with TTL/epoch/shards zeroed.
	full := Marshal(reg)
	legacyLen := chSize + 2 + len(reg.Entry.NQN) + 2 + len(reg.Entry.Addr) + 1
	legacy := make([]byte, legacyLen)
	copy(legacy, full[:legacyLen])
	legacy[4] = byte(legacyLen)
	legacy[5], legacy[6], legacy[7] = byte(legacyLen>>8), 0, 0
	dec, err := Unmarshal(legacy)
	if err != nil {
		t.Fatalf("legacy DiscRegister rejected: %v", err)
	}
	lr := dec.(*DiscRegister)
	if lr.TTLMs != 0 || lr.Epoch != 0 || lr.Shards != nil {
		t.Fatalf("legacy body decoded nonzero extension: %+v", lr)
	}
	if lr.Entry != reg.Entry {
		t.Fatalf("legacy entry mismatch: %+v", lr.Entry)
	}
}

func TestDiscRespTruncationDetected(t *testing.T) {
	buf := Marshal(&DiscResp{Entries: []DiscEntry{{NQN: "nqn.a", Addr: "x:1", Mode: 1}}})
	short := buf[:len(buf)-2]
	short[4] = byte(len(short))
	short[5], short[6], short[7] = byte(len(short)>>8), 0, 0
	if _, err := Unmarshal(short); err == nil {
		t.Fatal("truncated DiscResp accepted")
	}
}

func TestDiscEntryValidate(t *testing.T) {
	good := DiscEntry{NQN: "nqn.x", Addr: "h:1"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DiscEntry{
		{NQN: "", Addr: "h:1"},
		{NQN: string(make([]byte, 300)), Addr: "h:1"},
		{NQN: "nqn.x", Addr: ""},
		{NQN: "nqn.x", Addr: string(make([]byte, 300))},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad entry %d accepted", i)
		}
	}
}

// FuzzUnmarshal ensures the PDU decoder never panics on arbitrary framed
// bytes (run with `go test -fuzz=FuzzUnmarshal ./internal/proto/` to
// explore; the seed corpus runs in every normal `go test`).
func FuzzUnmarshal(f *testing.F) {
	f.Add(Marshal(&ICReq{PFV: 1, QueueDepth: 8}))
	f.Add(Marshal(&ICResp{PFV: 1, Tenant: 2, BlockSize: 4096, Capacity: 100}))
	f.Add(Marshal(&CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpWrite, CID: 1}, Data: []byte("abc")}))
	f.Add(Marshal(&CapsuleResp{Cpl: nvme.Completion{CID: 5}, Coalesced: true}))
	f.Add(Marshal(&C2HData{CCCID: 3, Data: []byte{1, 2, 3, 4}}))
	f.Add(Marshal(&DiscResp{Entries: []DiscEntry{{NQN: "nqn.x", Addr: "a:1", Mode: 1}}}))
	f.Add(Marshal(&DiscRegister{Entry: DiscEntry{NQN: "nqn.y", Addr: "b:2"}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Unmarshal(raw)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking, at its own
		// declared size.
		buf := Marshal(p)
		if len(buf) != p.WireSize() {
			t.Fatalf("re-encode size %d != WireSize %d for %v", len(buf), p.WireSize(), p.PDUType())
		}
	})
}
