package proto

// Allocation-free hot path for the real transport. Three pools cooperate:
//
//   - payload buffers (GetBuf/PutBuf): size-classed sync.Pools backing
//     in-capsule write data, device read buffers, and the Reader's pooled
//     payload decode. Amortized zero allocations per PDU.
//   - PDU structs (Recycle): the three hot capsule types cycle through
//     sync.Pools so a steady-state datapath never allocates a PDU header
//     object. Cold types (ICReq, ICResp, TermReq, discovery) are not
//     pooled — they appear once per connection, not once per request.
//   - the Reader's scratch buffer: one per connection, grown to the
//     largest PDU seen and reused for every wire read.
//
// Ownership rules (the transports enforce them; the simulator never
// pools):
//
//   - A buffer obtained from GetBuf has exactly one owner at a time; the
//     owner either hands it off (send path) or returns it with PutBuf.
//   - Recycle never touches the payload: callers that retained or pooled
//     a PDU's Data release it separately, *before* recycling the struct.
//   - PutBuf ignores slices whose capacity is not an exact pool class, so
//     a user-owned buffer that leaks into a release path is dropped to the
//     GC instead of poisoning the pool.

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"nvmeopf/internal/nvme"
)

// Payload-buffer size classes: powers of two from 512 B to 1 MiB (the
// default MaxDataLen). Requests larger than the top class fall back to a
// plain allocation.
const (
	minBufClass   = 512
	maxBufClass   = 1 << 20
	numBufClasses = 12 // 512 << 11 == 1 MiB
)

// bufPools[i] holds buffers of exactly minBufClass<<i bytes. The pooled
// object is a *wrapped slice; wrappers themselves cycle through
// wrapperPool so neither Get nor Put allocates in steady state.
var bufPools [numBufClasses]sync.Pool

// wrapper boxes a slice for sync.Pool (pooling a bare []byte would box it
// into an interface and allocate on every Put).
type wrapper struct{ b []byte }

var wrapperPool = sync.Pool{New: func() any { return new(wrapper) }}

// classFor returns the pool index for a requested size, or -1 when the
// size is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > maxBufClass {
		return -1
	}
	c, size := 0, minBufClass
	for size < n {
		size <<= 1
		c++
	}
	return c
}

// GetBuf returns a buffer with len == n from the pool (capacity is the
// size class). Sizes above the pooled range are plainly allocated.
func GetBuf(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	if w, _ := bufPools[c].Get().(*wrapper); w != nil {
		b := w.b
		w.b = nil
		wrapperPool.Put(w)
		return b[:n]
	}
	return make([]byte, n, minBufClass<<c)
}

// PutBuf returns a GetBuf buffer to its pool. Nil slices and slices whose
// capacity does not match a pool class exactly (user-owned or oversized
// buffers) are ignored.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	c := classFor(cap(b))
	if c < 0 || cap(b) != minBufClass<<c {
		return
	}
	w := wrapperPool.Get().(*wrapper)
	w.b = b[:0]
	bufPools[c].Put(w)
}

// Struct pools for the per-request PDU types.
var (
	capsuleCmdPool  = sync.Pool{New: func() any { return new(CapsuleCmd) }}
	capsuleRespPool = sync.Pool{New: func() any { return new(CapsuleResp) }}
	c2hDataPool     = sync.Pool{New: func() any { return new(C2HData) }}
)

// GetCapsuleCmd returns a zeroed CapsuleCmd from the pool.
func GetCapsuleCmd() *CapsuleCmd { return capsuleCmdPool.Get().(*CapsuleCmd) }

// GetCapsuleResp returns a zeroed CapsuleResp from the pool.
func GetCapsuleResp() *CapsuleResp { return capsuleRespPool.Get().(*CapsuleResp) }

// GetC2HData returns a zeroed C2HData from the pool.
func GetC2HData() *C2HData { return c2hDataPool.Get().(*C2HData) }

// Recycle returns a per-request PDU struct to its pool; other PDU types
// are ignored. It never releases the payload: a caller that owns p.Data
// must PutBuf (or keep) it first — Recycle only drops the reference.
func Recycle(p PDU) {
	switch v := p.(type) {
	case *CapsuleCmd:
		*v = CapsuleCmd{}
		capsuleCmdPool.Put(v)
	case *CapsuleResp:
		*v = CapsuleResp{}
		capsuleRespPool.Put(v)
	case *C2HData:
		*v = C2HData{}
		c2hDataPool.Put(v)
	}
}

// ReleaseInbound retires a PDU obtained from a pooling Reader once the
// state machines are done with it: any payload still attached goes back
// to the buffer pool, then the struct is recycled. A handler that took
// ownership of the payload (the target parking write data in its request
// pool) must have cleared the Data field first.
func ReleaseInbound(p PDU) {
	switch v := p.(type) {
	case *CapsuleCmd:
		PutBuf(v.Data)
		v.Data = nil
	case *C2HData:
		// A Borrowed payload lives in a caller-owned destination buffer
		// (landed there by a C2HSink); returning it to the pool would
		// poison the pool with memory the caller keeps using.
		if !v.Borrowed {
			PutBuf(v.Data)
		}
		v.Data = nil
	case *H2CData:
		PutBuf(v.Data)
		v.Data = nil
	}
	Recycle(p)
}

// pooledDecoder is implemented by the data-bearing PDU types: decode with
// the payload drawn from the buffer pool instead of a fresh allocation.
type pooledDecoder interface {
	decodeBodyPooled(src []byte) error
}

// Reader decodes a PDU stream with a reusable scratch buffer. With
// pooling enabled, per-request PDU structs come from the struct pools and
// payloads from the buffer pool, making Next allocation-free in steady
// state; the consumer retires each PDU with ReleaseInbound when done.
// Without pooling, Next behaves like ReadPDU (fresh structs, fresh
// payloads) while still reusing the scratch buffer for the wire read.
//
// A Reader is not safe for concurrent use; each connection's read loop
// owns one. The PDU returned by Next is independent of the scratch
// buffer, so the caller may pipeline it (hand it to another goroutine)
// and call Next again immediately.
type Reader struct {
	r       io.Reader
	scratch []byte
	pooled  bool
	sink    C2HSink
}

// NewReader wraps r. pooled selects pooled structs and payloads (the
// transport datapath); pass false when PDU payloads escape to callers
// that never release them.
func NewReader(r io.Reader, pooled bool) *Reader {
	return &Reader{r: r, scratch: make([]byte, 4096), pooled: pooled}
}

// C2HSink resolves the destination buffer for an inbound C2HData
// payload: given the PDU-specific header fields (command ID, byte offset,
// payload length), it returns the caller-owned slice the payload bytes
// should land in, or nil to decline. A non-nil return must have length
// exactly length; anything else falls back to a pooled read.
//
// The sink runs on the Reader's goroutine while the rest of the PDU is
// still on the wire, so it must not block on the consumer of the PDU.
type C2HSink func(cccid nvme.CID, offset, length uint32) []byte

// SetC2HSink installs the zero-copy destination resolver for C2HData
// payloads. When the sink accepts a payload, Next reads the bytes from
// the wire directly into the returned buffer — no pool staging, no copy —
// and marks the returned PDU Borrowed so release paths leave the caller's
// memory alone. A nil sink (the default) restores pooled decoding.
func (rd *Reader) SetC2HSink(s C2HSink) { rd.sink = s }

// Next reads and decodes one PDU. The returned PDU does not alias the
// reader's internal buffer.
func (rd *Reader) Next() (PDU, error) {
	if _, err := io.ReadFull(rd.r, rd.scratch[:chSize]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(rd.scratch[4:])
	if plen < chSize || plen > MaxPDUSize {
		return nil, fmt.Errorf("proto: bad PLen %d", plen)
	}
	if rd.sink != nil && Type(rd.scratch[0]) == TypeC2HData && plen >= chSize+c2hPSHSize {
		return rd.nextC2HDataSink(int(plen), rd.scratch[1])
	}
	if int(plen) > len(rd.scratch) {
		grown := make([]byte, 1<<bitsFor(int(plen)))
		copy(grown, rd.scratch[:chSize])
		rd.scratch = grown
	}
	buf := rd.scratch[:plen]
	if _, err := io.ReadFull(rd.r, buf[chSize:]); err != nil {
		return nil, err
	}
	typ := Type(buf[0])
	flags := buf[1]
	var p PDU
	if rd.pooled {
		switch typ {
		case TypeCapsuleCmd:
			p = GetCapsuleCmd()
		case TypeCapsuleResp:
			p = GetCapsuleResp()
		case TypeC2HData:
			p = GetC2HData()
		}
	}
	if p == nil {
		var err error
		if p, err = newPDU(typ); err != nil {
			return nil, err
		}
	}
	body := buf[chSize:]
	var err error
	if pd, ok := p.(pooledDecoder); ok && rd.pooled {
		err = pd.decodeBodyPooled(body)
	} else {
		err = p.decodeBody(body)
	}
	if err != nil {
		if rd.pooled {
			ReleaseInbound(p)
		}
		return nil, err
	}
	p.setHeaderFlags(flags)
	return p, nil
}

// nextC2HDataSink is the zero-copy read path: the 16-byte PDU-specific
// header is decoded from scratch, then the payload bytes are read from
// the wire directly into the destination the sink resolves — the pooled
// staging copy the plain path pays disappears. When the sink declines
// (unknown CID, out-of-range offset), the payload falls back to a pooled
// buffer sized by the actual wire length — never by the untrusted offset
// — and the consumer decides whether to reject the PDU.
func (rd *Reader) nextC2HDataSink(plen int, flags uint8) (PDU, error) {
	psh := rd.scratch[chSize : chSize+c2hPSHSize]
	if _, err := io.ReadFull(rd.r, psh); err != nil {
		return nil, err
	}
	payload := plen - chSize - c2hPSHSize
	n := binary.LittleEndian.Uint32(psh[8:])
	if int(n) != payload {
		return nil, fmt.Errorf("proto: C2HData length field %d != payload %d", n, payload)
	}
	var p *C2HData
	if rd.pooled {
		p = GetC2HData()
	} else {
		p = &C2HData{}
	}
	p.CCCID = binary.LittleEndian.Uint16(psh[0:])
	p.Offset = binary.LittleEndian.Uint32(psh[4:])
	p.Borrowed = false
	if payload == 0 {
		p.Data = nil
		p.setHeaderFlags(flags)
		return p, nil
	}
	if dst := rd.sink(p.CCCID, p.Offset, n); len(dst) == payload {
		if _, err := io.ReadFull(rd.r, dst); err != nil {
			if rd.pooled {
				Recycle(p)
			}
			return nil, err
		}
		p.Data = dst
		p.Borrowed = true
		p.setHeaderFlags(flags)
		return p, nil
	}
	var buf []byte
	if rd.pooled {
		buf = GetBuf(payload)
	} else {
		buf = make([]byte, payload)
	}
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		if rd.pooled {
			PutBuf(buf)
			Recycle(p)
		}
		return nil, err
	}
	p.Data = buf
	p.setHeaderFlags(flags)
	return p, nil
}

// bitsFor returns ceil(log2(n)) for n >= 1.
func bitsFor(n int) uint {
	var b uint
	for (1 << b) < n {
		b++
	}
	return b
}

// clonePayload copies src into a pooled buffer (nil for empty payloads).
func clonePayload(src []byte) []byte {
	if len(src) == 0 {
		return nil
	}
	dst := GetBuf(len(src))
	copy(dst, src)
	return dst
}

// decodeBodyPooled implements pooledDecoder for CapsuleCmd.
func (p *CapsuleCmd) decodeBodyPooled(src []byte) error {
	if len(src) < nvme.CommandSize {
		return fmt.Errorf("proto: short CapsuleCmd body: %d", len(src))
	}
	if err := p.Cmd.Unmarshal(src); err != nil {
		return err
	}
	p.Prio = decodePriority(src[sqePrioOffset])
	p.Tenant = TenantID(binary.LittleEndian.Uint16(src[sqeTenantOffset:]))
	p.Data = clonePayload(src[nvme.CommandSize:])
	return nil
}

// decodeBodyPooled implements pooledDecoder for C2HData.
func (p *C2HData) decodeBodyPooled(src []byte) error {
	if len(src) < c2hPSHSize {
		return fmt.Errorf("proto: short C2HData body: %d", len(src))
	}
	p.CCCID = binary.LittleEndian.Uint16(src[0:])
	p.Offset = binary.LittleEndian.Uint32(src[4:])
	n := binary.LittleEndian.Uint32(src[8:])
	if int(n) != len(src)-c2hPSHSize {
		return fmt.Errorf("proto: C2HData length field %d != payload %d", n, len(src)-c2hPSHSize)
	}
	p.Data = clonePayload(src[c2hPSHSize:])
	return nil
}

// decodeBodyPooled implements pooledDecoder for H2CData.
func (p *H2CData) decodeBodyPooled(src []byte) error {
	if len(src) < c2hPSHSize {
		return fmt.Errorf("proto: short H2CData body: %d", len(src))
	}
	p.CCCID = binary.LittleEndian.Uint16(src[0:])
	p.Offset = binary.LittleEndian.Uint32(src[4:])
	n := binary.LittleEndian.Uint32(src[8:])
	if int(n) != len(src)-c2hPSHSize {
		return fmt.Errorf("proto: H2CData length field %d != payload %d", n, len(src)-c2hPSHSize)
	}
	p.Data = clonePayload(src[c2hPSHSize:])
	return nil
}
