// Package proto implements the NVMe/TCP-like PDU layer that NVMe-oPF
// initiators and targets exchange, including the paper's protocol
// extension: two reserved bits of each command capsule carry the
// latency-sensitive / throughput-critical / draining priority flags (a
// third reserved bit carries this dialect's scavenger/best-effort
// class), and reserved bits carry the per-initiator tenant ID (§IV-A).
//
// The layout follows the NVMe/TCP transport specification's structure
// (8-byte common header, capsule/data PDUs) but is a simplified dialect,
// not byte-compatible with the spec: digests, R2T and PDU data alignment
// are omitted because the runtime always sends command data in-capsule
// (as SPDK's target does for small I/O). Field semantics — and crucially
// the placement of the priority flags and tenant IDs in bytes that the
// base protocol reserves — are preserved, so PDU sizes on the wire match
// what the paper's modified SPDK would transmit: the priority extension
// adds zero bytes to any PDU (§IV-A, "the size of the PDUs remains
// unchanged").
package proto

import (
	"encoding/binary"
	"fmt"
	"io"

	"nvmeopf/internal/nvme"
)

// StatusBusy is the retryable admission-control status a target returns
// when a tenant (or the target globally) is past its pending-request cap.
// The command was never executed; hosts should back off and resubmit.
// Re-exported here because it is part of the wire contract between
// initiator and target, not a device-level status.
const StatusBusy = nvme.StatusBusy

// Type identifies a PDU type (values follow the NVMe/TCP spec).
type Type uint8

// PDU types.
const (
	TypeICReq       Type = 0x00
	TypeICResp      Type = 0x01
	TypeH2CTermReq  Type = 0x02
	TypeC2HTermReq  Type = 0x03
	TypeCapsuleCmd  Type = 0x04
	TypeCapsuleResp Type = 0x05
	TypeH2CData     Type = 0x06
	TypeC2HData     Type = 0x07
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeICReq:
		return "ICReq"
	case TypeICResp:
		return "ICResp"
	case TypeH2CTermReq:
		return "H2CTermReq"
	case TypeC2HTermReq:
		return "C2HTermReq"
	case TypeCapsuleCmd:
		return "CapsuleCmd"
	case TypeCapsuleResp:
		return "CapsuleResp"
	case TypeH2CData:
		return "H2CData"
	case TypeC2HData:
		return "C2HData"
	case TypeTelemetryUpdate:
		return "TelemetryUpdate"
	case TypeTelemetryAck:
		return "TelemetryAck"
	default:
		return fmt.Sprintf("Type(0x%02x)", uint8(t))
	}
}

// Priority is the priority field the paper adds to command capsules: the
// paper's 2-bit LS/TC/draining flags, plus one more reserved bit this
// dialect claims for the scavenger (best-effort) class. Draining implies
// throughput-critical: a draining request is the last request of a TC
// window and instructs the target to execute and complete the whole
// pending batch (§III-C).
type Priority uint8

// Priority values. The paper's three flags pack into the low two bits;
// the scavenger class occupies bit 2 alone, so a legacy peer masking the
// low two bits reads a scavenger request as PrioNormal (FIFO path) — a
// safe downgrade, never an accidental LS/TC/draining escalation. There
// is deliberately no scavenger+draining combination: scavenger drains
// are target-driven (leftover capacity or aging), never host-flagged,
// and value 5 would alias to latency-sensitive under a legacy mask.
const (
	PrioNormal             Priority = 0 // legacy NVMe-oF request, FIFO path
	PrioLatencySensitive   Priority = 1
	PrioThroughputCritical Priority = 2
	PrioTCDraining         Priority = 3
	PrioScavenger          Priority = 4 // best-effort: leftover capacity only
)

// LatencySensitive reports whether the request asked for the LS bypass.
func (p Priority) LatencySensitive() bool { return p == PrioLatencySensitive }

// ThroughputCritical reports whether the request joins a TC queue
// (draining requests are TC requests too).
func (p Priority) ThroughputCritical() bool {
	return p == PrioThroughputCritical || p == PrioTCDraining
}

// Draining reports whether the request carries the draining flag.
func (p Priority) Draining() bool { return p == PrioTCDraining }

// Scavenger reports whether the request runs in the best-effort class
// (drained only from leftover capacity, aged so it cannot starve).
func (p Priority) Scavenger() bool { return p == PrioScavenger }

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PrioNormal:
		return "normal"
	case PrioLatencySensitive:
		return "latency-sensitive"
	case PrioThroughputCritical:
		return "throughput-critical"
	case PrioTCDraining:
		return "throughput-critical+draining"
	case PrioScavenger:
		return "scavenger"
	default:
		return fmt.Sprintf("Priority(%d)", uint8(p))
	}
}

// encodePriority canonicalizes a priority for the wire: scavenger emits
// bit 2 alone (so legacy peers masking two bits read PrioNormal); every
// other value is masked to the paper's two bits.
func encodePriority(p Priority) uint8 {
	if p.Scavenger() {
		return uint8(PrioScavenger)
	}
	return uint8(p) & 0x3
}

// decodePriority inverts encodePriority. Any byte with the scavenger bit
// set decodes as PrioScavenger regardless of the low bits — a peer
// cannot smuggle an LS or draining flag alongside the scavenger bit.
func decodePriority(b uint8) Priority {
	if b&uint8(PrioScavenger) != 0 {
		return PrioScavenger
	}
	return Priority(b & 0x3)
}

// TenantID identifies an initiator within a target. The paper used 8
// reserved bits in the command capsule (§IV-A); this dialect widens the
// field to 16 bits — little-endian in SQE bytes 9..10, still inside the
// reserved region, still zero extra wire bytes — so one cluster can
// address thousands of tenants.
type TenantID uint16

// Offsets of the priority extension inside the 64-byte SQE: bytes 8..10
// sit in the region the base NVMe spec reserves for command dwords the I/O
// command set does not use over fabrics, which is where the paper stashes
// its bits (byte 8: priority; bytes 9..10: tenant ID, little-endian).
const (
	sqePrioOffset   = 8
	sqeTenantOffset = 9
)

// chSize is the PDU common header size: Type(1) Flags(1) HLen(1) PDO(1)
// PLen(4).
const chSize = 8

// Common-header flag bits.
const (
	// FlagCoalesced marks a CapsuleResp that completes a drained window:
	// it implicitly completes every TC request of the same tenant queued
	// before the CID it names (§III-B).
	FlagCoalesced uint8 = 1 << 0
)

// PDU is implemented by every protocol data unit. WireSize is the exact
// encoded size and is what the network model charges for transmission.
type PDU interface {
	PDUType() Type
	WireSize() int
	encodeBody(dst []byte) // dst has WireSize()-chSize bytes
	decodeBody(src []byte) error
	headerFlags() uint8
	setHeaderFlags(uint8)
}

// ICReq opens a queue pair: the host proposes protocol version, its queue
// depth, the priority class it wants this connection to run under, and the
// namespace whose geometry the ICResp should describe (0 selects the
// target's default namespace).
type ICReq struct {
	PFV        uint16 // protocol format version
	QueueDepth uint16
	Prio       Priority
	NSID       uint32
}

// ICReqSize is the wire size of an ICReq.
const ICReqSize = chSize + 16

// PDUType implements PDU.
func (*ICReq) PDUType() Type { return TypeICReq }

// WireSize implements PDU.
func (*ICReq) WireSize() int { return ICReqSize }

func (p *ICReq) encodeBody(dst []byte) {
	binary.LittleEndian.PutUint16(dst[0:], p.PFV)
	binary.LittleEndian.PutUint16(dst[2:], p.QueueDepth)
	dst[4] = encodePriority(p.Prio)
	binary.LittleEndian.PutUint32(dst[8:], p.NSID)
}

func (p *ICReq) decodeBody(src []byte) error {
	if len(src) < ICReqSize-chSize {
		return fmt.Errorf("proto: short ICReq body: %d", len(src))
	}
	p.PFV = binary.LittleEndian.Uint16(src[0:])
	p.QueueDepth = binary.LittleEndian.Uint16(src[2:])
	p.Prio = decodePriority(src[4])
	p.NSID = binary.LittleEndian.Uint32(src[8:])
	return nil
}

func (p *ICReq) headerFlags() uint8     { return 0 }
func (p *ICReq) setHeaderFlags(f uint8) {}

// ICResp accepts a queue pair, assigns the tenant ID the host must stamp
// into every subsequent command capsule, and describes the namespace so
// the host learns the device geometry during the handshake (the fabrics
// analogue of Identify Namespace).
type ICResp struct {
	PFV        uint16
	Tenant     TenantID
	MaxDataLen uint32 // largest in-capsule data the target accepts
	BlockSize  uint32 // namespace logical block size in bytes
	Capacity   uint64 // namespace capacity in logical blocks
	// TargetClock is the target's clock (nanoseconds) sampled while
	// building this response. The host combines it with its own send and
	// receive times to estimate the clock offset between the runtimes, so
	// flight-recorder dumps from both sides land on one time axis. Zero
	// means the target declined to share a clock.
	TargetClock int64
}

// ICRespSize is the wire size of an ICResp.
const ICRespSize = chSize + 32

// PDUType implements PDU.
func (*ICResp) PDUType() Type { return TypeICResp }

// WireSize implements PDU.
func (*ICResp) WireSize() int { return ICRespSize }

func (p *ICResp) encodeBody(dst []byte) {
	binary.LittleEndian.PutUint16(dst[0:], p.PFV)
	binary.LittleEndian.PutUint16(dst[2:], uint16(p.Tenant))
	binary.LittleEndian.PutUint32(dst[4:], p.MaxDataLen)
	binary.LittleEndian.PutUint32(dst[8:], p.BlockSize)
	binary.LittleEndian.PutUint64(dst[12:], p.Capacity)
	binary.LittleEndian.PutUint64(dst[24:], uint64(p.TargetClock))
}

func (p *ICResp) decodeBody(src []byte) error {
	if len(src) < ICRespSize-chSize {
		return fmt.Errorf("proto: short ICResp body: %d", len(src))
	}
	p.PFV = binary.LittleEndian.Uint16(src[0:])
	p.Tenant = TenantID(binary.LittleEndian.Uint16(src[2:]))
	p.MaxDataLen = binary.LittleEndian.Uint32(src[4:])
	p.BlockSize = binary.LittleEndian.Uint32(src[8:])
	p.Capacity = binary.LittleEndian.Uint64(src[12:])
	p.TargetClock = int64(binary.LittleEndian.Uint64(src[24:]))
	return nil
}

func (p *ICResp) headerFlags() uint8     { return 0 }
func (p *ICResp) setHeaderFlags(f uint8) {}

// CapsuleCmd carries one NVMe command, the priority extension, and (for
// writes) the in-capsule data.
type CapsuleCmd struct {
	Cmd    nvme.Command
	Prio   Priority
	Tenant TenantID
	Data   []byte // in-capsule write payload; nil for reads/flush
}

// PDUType implements PDU.
func (*CapsuleCmd) PDUType() Type { return TypeCapsuleCmd }

// WireSize implements PDU.
func (p *CapsuleCmd) WireSize() int { return chSize + nvme.CommandSize + len(p.Data) }

func (p *CapsuleCmd) encodeBody(dst []byte) {
	p.encodeFixed(dst)
	copy(dst[nvme.CommandSize:], p.Data)
}

func (p *CapsuleCmd) encodeFixed(dst []byte) {
	p.Cmd.Marshal(dst)
	// The priority extension lives in reserved SQE bytes, so it costs no
	// extra wire bytes (§IV-A).
	dst[sqePrioOffset] = encodePriority(p.Prio)
	binary.LittleEndian.PutUint16(dst[sqeTenantOffset:], uint16(p.Tenant))
}

func (p *CapsuleCmd) payloadRef() []byte { return p.Data }

func (p *CapsuleCmd) decodeBody(src []byte) error {
	if len(src) < nvme.CommandSize {
		return fmt.Errorf("proto: short CapsuleCmd body: %d", len(src))
	}
	if err := p.Cmd.Unmarshal(src); err != nil {
		return err
	}
	p.Prio = decodePriority(src[sqePrioOffset])
	p.Tenant = TenantID(binary.LittleEndian.Uint16(src[sqeTenantOffset:]))
	if len(src) > nvme.CommandSize {
		p.Data = append([]byte(nil), src[nvme.CommandSize:]...)
	} else {
		p.Data = nil
	}
	return nil
}

func (p *CapsuleCmd) headerFlags() uint8     { return 0 }
func (p *CapsuleCmd) setHeaderFlags(f uint8) {}

// CapsuleResp carries one NVMe completion. When Coalesced is set, this is
// the single completion notification for a drained TC window: the host must
// treat every TC request of the same tenant submitted before the named CID
// as completed with the same status (§III-B, Alg. 2).
type CapsuleResp struct {
	Cpl       nvme.Completion
	Coalesced bool
}

// CapsuleRespSize is the wire size of a CapsuleResp: this is the
// "completion notification packet" whose count the coalescing strategy
// minimizes (Fig. 6(c)).
const CapsuleRespSize = chSize + nvme.CompletionSize

// PDUType implements PDU.
func (*CapsuleResp) PDUType() Type { return TypeCapsuleResp }

// WireSize implements PDU.
func (*CapsuleResp) WireSize() int { return CapsuleRespSize }

func (p *CapsuleResp) encodeBody(dst []byte) {
	p.Cpl.Marshal(dst)
}

func (p *CapsuleResp) decodeBody(src []byte) error {
	if len(src) < nvme.CompletionSize {
		return fmt.Errorf("proto: short CapsuleResp body: %d", len(src))
	}
	return p.Cpl.Unmarshal(src)
}

func (p *CapsuleResp) headerFlags() uint8 {
	if p.Coalesced {
		return FlagCoalesced
	}
	return 0
}

func (p *CapsuleResp) setHeaderFlags(f uint8) { p.Coalesced = f&FlagCoalesced != 0 }

// C2HData carries read data from the target to the host.
type C2HData struct {
	CCCID  nvme.CID // CID of the command this data answers
	Offset uint32   // byte offset within the command's buffer
	Data   []byte
	// Borrowed marks Data as caller-owned rather than pool-owned: a
	// Reader with a C2HSink landed the payload directly in the
	// destination buffer the sink returned, so ReleaseInbound must drop
	// the reference without returning it to the buffer pool. Never set
	// on the send path; not a wire field.
	Borrowed bool
}

// c2hPSHSize is the size of the C2HData PDU-specific header.
const c2hPSHSize = 16

// PDUType implements PDU.
func (*C2HData) PDUType() Type { return TypeC2HData }

// WireSize implements PDU.
func (p *C2HData) WireSize() int { return chSize + c2hPSHSize + len(p.Data) }

func (p *C2HData) encodeBody(dst []byte) {
	p.encodeFixed(dst)
	copy(dst[c2hPSHSize:], p.Data)
}

func (p *C2HData) encodeFixed(dst []byte) {
	binary.LittleEndian.PutUint16(dst[0:], p.CCCID)
	binary.LittleEndian.PutUint32(dst[4:], p.Offset)
	binary.LittleEndian.PutUint32(dst[8:], uint32(len(p.Data)))
}

func (p *C2HData) payloadRef() []byte { return p.Data }

func (p *C2HData) decodeBody(src []byte) error {
	if len(src) < c2hPSHSize {
		return fmt.Errorf("proto: short C2HData body: %d", len(src))
	}
	p.CCCID = binary.LittleEndian.Uint16(src[0:])
	p.Offset = binary.LittleEndian.Uint32(src[4:])
	n := binary.LittleEndian.Uint32(src[8:])
	if int(n) != len(src)-c2hPSHSize {
		return fmt.Errorf("proto: C2HData length field %d != payload %d", n, len(src)-c2hPSHSize)
	}
	p.Data = append([]byte(nil), src[c2hPSHSize:]...)
	return nil
}

func (p *C2HData) headerFlags() uint8     { return 0 }
func (p *C2HData) setHeaderFlags(f uint8) {}

// H2CData carries write data from host to target when it does not fit
// in-capsule. The runtime prefers in-capsule data; this PDU exists for
// completeness and large-I/O tests.
type H2CData struct {
	CCCID  nvme.CID
	Offset uint32
	Data   []byte
}

// PDUType implements PDU.
func (*H2CData) PDUType() Type { return TypeH2CData }

// WireSize implements PDU.
func (p *H2CData) WireSize() int { return chSize + c2hPSHSize + len(p.Data) }

func (p *H2CData) encodeBody(dst []byte) {
	p.encodeFixed(dst)
	copy(dst[c2hPSHSize:], p.Data)
}

func (p *H2CData) encodeFixed(dst []byte) {
	binary.LittleEndian.PutUint16(dst[0:], p.CCCID)
	binary.LittleEndian.PutUint32(dst[4:], p.Offset)
	binary.LittleEndian.PutUint32(dst[8:], uint32(len(p.Data)))
}

func (p *H2CData) payloadRef() []byte { return p.Data }

func (p *H2CData) decodeBody(src []byte) error {
	if len(src) < c2hPSHSize {
		return fmt.Errorf("proto: short H2CData body: %d", len(src))
	}
	p.CCCID = binary.LittleEndian.Uint16(src[0:])
	p.Offset = binary.LittleEndian.Uint32(src[4:])
	n := binary.LittleEndian.Uint32(src[8:])
	if int(n) != len(src)-c2hPSHSize {
		return fmt.Errorf("proto: H2CData length field %d != payload %d", n, len(src)-c2hPSHSize)
	}
	p.Data = append([]byte(nil), src[c2hPSHSize:]...)
	return nil
}

func (p *H2CData) headerFlags() uint8     { return 0 }
func (p *H2CData) setHeaderFlags(f uint8) {}

// TermReq aborts a connection with a fatal error status (both directions
// use the same body).
type TermReq struct {
	Dir    Type // TypeH2CTermReq or TypeC2HTermReq
	FES    uint16
	Reason string
}

// PDUType implements PDU.
func (p *TermReq) PDUType() Type { return p.Dir }

// WireSize implements PDU.
func (p *TermReq) WireSize() int { return chSize + 4 + len(p.Reason) }

func (p *TermReq) encodeBody(dst []byte) {
	binary.LittleEndian.PutUint16(dst[0:], p.FES)
	copy(dst[4:], p.Reason)
}

func (p *TermReq) decodeBody(src []byte) error {
	if len(src) < 4 {
		return fmt.Errorf("proto: short TermReq body: %d", len(src))
	}
	p.FES = binary.LittleEndian.Uint16(src[0:])
	p.Reason = string(src[4:])
	return nil
}

func (p *TermReq) headerFlags() uint8     { return 0 }
func (p *TermReq) setHeaderFlags(f uint8) {}

// MaxPDUSize bounds the accepted PLen to prevent hostile or corrupt
// headers from triggering huge allocations.
const MaxPDUSize = 16 << 20

// AppendPDU appends the encoding of p to dst and returns the extended
// slice. When dst has capacity for the PDU this performs no allocation,
// so a transport writer batching a drain window of PDUs into one reused
// buffer marshals the whole burst allocation-free.
func AppendPDU(dst []byte, p PDU) []byte {
	size := p.WireSize()
	off := len(dst)
	dst = append(dst, make([]byte, size)...)
	buf := dst[off:]
	buf[0] = uint8(p.PDUType())
	buf[1] = p.headerFlags()
	buf[2] = chSize
	buf[3] = chSize // data begins after PSH; informational in this dialect
	binary.LittleEndian.PutUint32(buf[4:], uint32(size))
	p.encodeBody(buf[chSize:])
	return dst
}

// Marshal encodes a PDU into a fresh byte slice.
func Marshal(p PDU) []byte {
	return AppendPDU(make([]byte, 0, p.WireSize()), p)
}

// splitPDU is implemented by the data-bearing PDU types whose encoding
// ends in a verbatim payload: the fixed prefix (common header + command
// or PDU-specific header) can be marshalled separately from the payload
// bytes, which a scatter-gather writer then sends straight from the
// owner's buffer.
type splitPDU interface {
	encodeFixed(dst []byte) // dst has WireSize()-chSize-len(payloadRef()) bytes
	payloadRef() []byte
}

// AppendPDUHeader appends the encoding of p minus its trailing payload
// bytes and returns the extended slice. The PLen field still covers the
// payload: the wire stream is only valid once the caller transmits
// PayloadRef(p)'s bytes immediately after the appended prefix. PDU types
// without a detachable payload are appended whole (equivalent to
// AppendPDU), and PayloadRef returns nil for them, so
//
//	dst = AppendPDUHeader(dst, p); send(dst); send(PayloadRef(p))
//
// produces bytes identical to AppendPDU for every PDU type.
func AppendPDUHeader(dst []byte, p PDU) []byte {
	sp, ok := p.(splitPDU)
	if !ok {
		return AppendPDU(dst, p)
	}
	size := p.WireSize()
	prefix := size - len(sp.payloadRef())
	off := len(dst)
	dst = append(dst, make([]byte, prefix)...)
	buf := dst[off:]
	buf[0] = uint8(p.PDUType())
	buf[1] = p.headerFlags()
	buf[2] = chSize
	buf[3] = chSize
	binary.LittleEndian.PutUint32(buf[4:], uint32(size))
	sp.encodeFixed(buf[chSize:])
	return dst
}

// PayloadRef returns the payload slice AppendPDUHeader leaves for the
// caller to transmit (nil when p has no detachable payload). The returned
// slice aliases the PDU's buffer: the caller owns its lifetime until the
// bytes are on the wire.
func PayloadRef(p PDU) []byte {
	if sp, ok := p.(splitPDU); ok {
		return sp.payloadRef()
	}
	return nil
}

// newPDU returns an empty PDU of the given wire type.
func newPDU(typ Type) (PDU, error) {
	switch typ {
	case TypeICReq:
		return &ICReq{}, nil
	case TypeICResp:
		return &ICResp{}, nil
	case TypeCapsuleCmd:
		return &CapsuleCmd{}, nil
	case TypeCapsuleResp:
		return &CapsuleResp{}, nil
	case TypeC2HData:
		return &C2HData{}, nil
	case TypeH2CData:
		return &H2CData{}, nil
	case TypeH2CTermReq, TypeC2HTermReq:
		return &TermReq{Dir: typ}, nil
	case TypeDiscReq:
		return &DiscReq{}, nil
	case TypeDiscResp:
		return &DiscResp{}, nil
	case TypeDiscRegister:
		return &DiscRegister{}, nil
	case TypeTelemetryUpdate:
		return &TelemetryUpdate{}, nil
	case TypeTelemetryAck:
		return &TelemetryAck{}, nil
	default:
		return nil, fmt.Errorf("proto: unknown PDU type 0x%02x", uint8(typ))
	}
}

// Unmarshal decodes one full PDU from buf.
func Unmarshal(buf []byte) (PDU, error) {
	if len(buf) < chSize {
		return nil, fmt.Errorf("proto: short PDU: %d bytes", len(buf))
	}
	flags := buf[1]
	plen := binary.LittleEndian.Uint32(buf[4:])
	if int(plen) != len(buf) {
		return nil, fmt.Errorf("proto: PLen %d != buffer %d", plen, len(buf))
	}
	p, err := newPDU(Type(buf[0]))
	if err != nil {
		return nil, err
	}
	if err := p.decodeBody(buf[chSize:]); err != nil {
		return nil, err
	}
	p.setHeaderFlags(flags)
	return p, nil
}

// WritePDU encodes p and writes it to w.
func WritePDU(w io.Writer, p PDU) error {
	_, err := w.Write(Marshal(p))
	return err
}

// ReadPDU reads exactly one PDU from r.
func ReadPDU(r io.Reader) (PDU, error) {
	var ch [chSize]byte
	if _, err := io.ReadFull(r, ch[:]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(ch[4:])
	if plen < chSize || plen > MaxPDUSize {
		return nil, fmt.Errorf("proto: bad PLen %d", plen)
	}
	buf := make([]byte, plen)
	copy(buf, ch[:])
	if _, err := io.ReadFull(r, buf[chSize:]); err != nil {
		return nil, err
	}
	return Unmarshal(buf)
}
