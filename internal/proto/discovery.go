package proto

import (
	"encoding/binary"
	"fmt"
)

// Discovery PDU types (this dialect's analogue of the NVMe-oF discovery
// controller: a host asks one well-known endpoint which subsystems exist
// and where).
const (
	TypeDiscReq      Type = 0x08
	TypeDiscResp     Type = 0x09
	TypeDiscRegister Type = 0x0A
)

// DiscReq asks a discovery endpoint for its log of subsystems.
type DiscReq struct{}

// discReqSize is the wire size of a DiscReq.
const discReqSize = chSize + 8

// PDUType implements PDU.
func (*DiscReq) PDUType() Type { return TypeDiscReq }

// WireSize implements PDU.
func (*DiscReq) WireSize() int { return discReqSize }

func (*DiscReq) encodeBody(dst []byte) {}
func (*DiscReq) decodeBody(src []byte) error {
	if len(src) < discReqSize-chSize {
		return fmt.Errorf("proto: short DiscReq body: %d", len(src))
	}
	return nil
}
func (*DiscReq) headerFlags() uint8     { return 0 }
func (*DiscReq) setHeaderFlags(f uint8) {}

// DiscEntry is one discovery log entry: a subsystem name (an NQN-style
// string), the address it serves, and the target mode byte (0 baseline,
// 1 NVMe-oPF).
type DiscEntry struct {
	NQN  string
	Addr string
	Mode uint8
}

// Validate bounds entry fields.
func (e DiscEntry) Validate() error {
	if e.NQN == "" || len(e.NQN) > 223 { // NVMe NQN length bound
		return fmt.Errorf("proto: NQN length %d out of range", len(e.NQN))
	}
	if e.Addr == "" || len(e.Addr) > 255 {
		return fmt.Errorf("proto: address length %d out of range", len(e.Addr))
	}
	return nil
}

// DiscRegister adds (or updates) one subsystem in a discovery endpoint's
// log; the endpoint acknowledges with its updated DiscResp. Beyond the
// base entry it carries the cluster keep-alive contract: a TTL the
// registrant promises to refresh within (0 = never expires, the legacy
// behaviour), the last cluster-map epoch the registrant observed (split-
// brain fencing: an expired target re-registering with a stale epoch is
// rejected), and the namespace shards the target volunteers to serve.
type DiscRegister struct {
	Entry  DiscEntry
	TTLMs  uint32   // keep-alive deadline in ms; 0 = no expiry
	Epoch  uint64   // last observed cluster-map epoch (0 = none)
	Shards []uint32 // namespace shards this target can serve
}

// PDUType implements PDU.
func (*DiscRegister) PDUType() Type { return TypeDiscRegister }

// WireSize implements PDU.
func (p *DiscRegister) WireSize() int {
	return chSize + 2 + len(p.Entry.NQN) + 2 + len(p.Entry.Addr) + 1 +
		4 + 8 + 2 + 4*len(p.Shards)
}

func (p *DiscRegister) encodeBody(dst []byte) {
	e := p.Entry
	binary.LittleEndian.PutUint16(dst[0:], uint16(len(e.NQN)))
	off := 2
	copy(dst[off:], e.NQN)
	off += len(e.NQN)
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(e.Addr)))
	off += 2
	copy(dst[off:], e.Addr)
	off += len(e.Addr)
	dst[off] = e.Mode
	off++
	binary.LittleEndian.PutUint32(dst[off:], p.TTLMs)
	off += 4
	binary.LittleEndian.PutUint64(dst[off:], p.Epoch)
	off += 8
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(p.Shards)))
	off += 2
	for _, sh := range p.Shards {
		binary.LittleEndian.PutUint32(dst[off:], sh)
		off += 4
	}
}

func (p *DiscRegister) decodeBody(src []byte) error {
	if len(src) < 2 {
		return fmt.Errorf("proto: short DiscRegister body: %d", len(src))
	}
	nl := int(binary.LittleEndian.Uint16(src[0:]))
	off := 2
	if off+nl+2 > len(src) {
		return fmt.Errorf("proto: truncated DiscRegister NQN")
	}
	p.Entry.NQN = string(src[off : off+nl])
	off += nl
	al := int(binary.LittleEndian.Uint16(src[off:]))
	off += 2
	if off+al+1 > len(src) {
		return fmt.Errorf("proto: truncated DiscRegister address")
	}
	p.Entry.Addr = string(src[off : off+al])
	off += al
	p.Entry.Mode = src[off]
	off++
	// Cluster extension: absent on legacy registrations.
	p.TTLMs, p.Epoch, p.Shards = 0, 0, nil
	if off == len(src) {
		return p.Entry.Validate()
	}
	if off+4+8+2 > len(src) {
		return fmt.Errorf("proto: truncated DiscRegister cluster extension")
	}
	p.TTLMs = binary.LittleEndian.Uint32(src[off:])
	off += 4
	p.Epoch = binary.LittleEndian.Uint64(src[off:])
	off += 8
	sc := int(binary.LittleEndian.Uint16(src[off:]))
	off += 2
	if off+4*sc > len(src) {
		return fmt.Errorf("proto: truncated DiscRegister shard claims")
	}
	if sc > 0 {
		p.Shards = make([]uint32, sc)
		for i := range p.Shards {
			p.Shards[i] = binary.LittleEndian.Uint32(src[off:])
			off += 4
		}
	}
	return p.Entry.Validate()
}

func (p *DiscRegister) headerFlags() uint8     { return 0 }
func (p *DiscRegister) setHeaderFlags(f uint8) {}

// ShardAssignment names the targets serving one namespace shard. NQNs
// reference entries in the same DiscResp; an empty string means the role
// is unfilled (a shard with no Replica is running unreplicated, one with
// no Primary is down).
type ShardAssignment struct {
	Shard   uint32
	Primary string // NQN of the primary ("" = none alive)
	Replica string // NQN of the replica ("" = unreplicated)
}

// DiscResp carries the discovery log plus the cluster map: the monotonic
// map epoch (bumped on every membership or role change) and the shard →
// primary/replica assignments in effect at that epoch.
type DiscResp struct {
	Entries     []DiscEntry
	Epoch       uint64
	Assignments []ShardAssignment
}

// PDUType implements PDU.
func (*DiscResp) PDUType() Type { return TypeDiscResp }

// WireSize implements PDU.
func (p *DiscResp) WireSize() int {
	n := chSize + 2
	for _, e := range p.Entries {
		n += 2 + len(e.NQN) + 2 + len(e.Addr) + 1
	}
	n += 8 + 2
	for _, a := range p.Assignments {
		n += 4 + 2 + len(a.Primary) + 2 + len(a.Replica)
	}
	return n
}

func (p *DiscResp) encodeBody(dst []byte) {
	binary.LittleEndian.PutUint16(dst[0:], uint16(len(p.Entries)))
	off := 2
	for _, e := range p.Entries {
		binary.LittleEndian.PutUint16(dst[off:], uint16(len(e.NQN)))
		off += 2
		copy(dst[off:], e.NQN)
		off += len(e.NQN)
		binary.LittleEndian.PutUint16(dst[off:], uint16(len(e.Addr)))
		off += 2
		copy(dst[off:], e.Addr)
		off += len(e.Addr)
		dst[off] = e.Mode
		off++
	}
	binary.LittleEndian.PutUint64(dst[off:], p.Epoch)
	off += 8
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(p.Assignments)))
	off += 2
	for _, a := range p.Assignments {
		binary.LittleEndian.PutUint32(dst[off:], a.Shard)
		off += 4
		binary.LittleEndian.PutUint16(dst[off:], uint16(len(a.Primary)))
		off += 2
		copy(dst[off:], a.Primary)
		off += len(a.Primary)
		binary.LittleEndian.PutUint16(dst[off:], uint16(len(a.Replica)))
		off += 2
		copy(dst[off:], a.Replica)
		off += len(a.Replica)
	}
}

func (p *DiscResp) decodeBody(src []byte) error {
	if len(src) < 2 {
		return fmt.Errorf("proto: short DiscResp body: %d", len(src))
	}
	count := int(binary.LittleEndian.Uint16(src[0:]))
	off := 2
	entries := make([]DiscEntry, 0, count)
	for i := 0; i < count; i++ {
		if off+2 > len(src) {
			return fmt.Errorf("proto: truncated DiscResp entry %d", i)
		}
		nl := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if off+nl+2 > len(src) {
			return fmt.Errorf("proto: truncated NQN in entry %d", i)
		}
		nqn := string(src[off : off+nl])
		off += nl
		al := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if off+al+1 > len(src) {
			return fmt.Errorf("proto: truncated address in entry %d", i)
		}
		addr := string(src[off : off+al])
		off += al
		mode := src[off]
		off++
		entries = append(entries, DiscEntry{NQN: nqn, Addr: addr, Mode: mode})
	}
	p.Entries = entries
	// Cluster extension: absent on legacy responses.
	p.Epoch, p.Assignments = 0, nil
	if off == len(src) {
		return nil
	}
	if off+8+2 > len(src) {
		return fmt.Errorf("proto: truncated DiscResp cluster extension")
	}
	p.Epoch = binary.LittleEndian.Uint64(src[off:])
	off += 8
	ac := int(binary.LittleEndian.Uint16(src[off:]))
	off += 2
	assigns := make([]ShardAssignment, 0, ac)
	for i := 0; i < ac; i++ {
		if off+4+2 > len(src) {
			return fmt.Errorf("proto: truncated DiscResp assignment %d", i)
		}
		var a ShardAssignment
		a.Shard = binary.LittleEndian.Uint32(src[off:])
		off += 4
		pl := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if off+pl+2 > len(src) {
			return fmt.Errorf("proto: truncated primary NQN in assignment %d", i)
		}
		a.Primary = string(src[off : off+pl])
		off += pl
		rl := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if off+rl > len(src) {
			return fmt.Errorf("proto: truncated replica NQN in assignment %d", i)
		}
		a.Replica = string(src[off : off+rl])
		off += rl
		assigns = append(assigns, a)
	}
	if ac > 0 {
		p.Assignments = assigns
	}
	return nil
}

func (p *DiscResp) headerFlags() uint8     { return 0 }
func (p *DiscResp) setHeaderFlags(f uint8) {}
