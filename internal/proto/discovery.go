package proto

import (
	"encoding/binary"
	"fmt"
)

// Discovery PDU types (this dialect's analogue of the NVMe-oF discovery
// controller: a host asks one well-known endpoint which subsystems exist
// and where).
const (
	TypeDiscReq      Type = 0x08
	TypeDiscResp     Type = 0x09
	TypeDiscRegister Type = 0x0A
)

// DiscReq asks a discovery endpoint for its log of subsystems.
type DiscReq struct{}

// discReqSize is the wire size of a DiscReq.
const discReqSize = chSize + 8

// PDUType implements PDU.
func (*DiscReq) PDUType() Type { return TypeDiscReq }

// WireSize implements PDU.
func (*DiscReq) WireSize() int { return discReqSize }

func (*DiscReq) encodeBody(dst []byte) {}
func (*DiscReq) decodeBody(src []byte) error {
	if len(src) < discReqSize-chSize {
		return fmt.Errorf("proto: short DiscReq body: %d", len(src))
	}
	return nil
}
func (*DiscReq) headerFlags() uint8     { return 0 }
func (*DiscReq) setHeaderFlags(f uint8) {}

// DiscEntry is one discovery log entry: a subsystem name (an NQN-style
// string), the address it serves, and the target mode byte (0 baseline,
// 1 NVMe-oPF).
type DiscEntry struct {
	NQN  string
	Addr string
	Mode uint8
}

// Validate bounds entry fields.
func (e DiscEntry) Validate() error {
	if e.NQN == "" || len(e.NQN) > 223 { // NVMe NQN length bound
		return fmt.Errorf("proto: NQN length %d out of range", len(e.NQN))
	}
	if e.Addr == "" || len(e.Addr) > 255 {
		return fmt.Errorf("proto: address length %d out of range", len(e.Addr))
	}
	return nil
}

// DiscRegister adds (or updates) one subsystem in a discovery endpoint's
// log; the endpoint acknowledges with its updated DiscResp.
type DiscRegister struct {
	Entry DiscEntry
}

// PDUType implements PDU.
func (*DiscRegister) PDUType() Type { return TypeDiscRegister }

// WireSize implements PDU.
func (p *DiscRegister) WireSize() int {
	return chSize + 2 + len(p.Entry.NQN) + 2 + len(p.Entry.Addr) + 1
}

func (p *DiscRegister) encodeBody(dst []byte) {
	e := p.Entry
	binary.LittleEndian.PutUint16(dst[0:], uint16(len(e.NQN)))
	off := 2
	copy(dst[off:], e.NQN)
	off += len(e.NQN)
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(e.Addr)))
	off += 2
	copy(dst[off:], e.Addr)
	off += len(e.Addr)
	dst[off] = e.Mode
}

func (p *DiscRegister) decodeBody(src []byte) error {
	if len(src) < 2 {
		return fmt.Errorf("proto: short DiscRegister body: %d", len(src))
	}
	nl := int(binary.LittleEndian.Uint16(src[0:]))
	off := 2
	if off+nl+2 > len(src) {
		return fmt.Errorf("proto: truncated DiscRegister NQN")
	}
	p.Entry.NQN = string(src[off : off+nl])
	off += nl
	al := int(binary.LittleEndian.Uint16(src[off:]))
	off += 2
	if off+al+1 > len(src) {
		return fmt.Errorf("proto: truncated DiscRegister address")
	}
	p.Entry.Addr = string(src[off : off+al])
	off += al
	p.Entry.Mode = src[off]
	return p.Entry.Validate()
}

func (p *DiscRegister) headerFlags() uint8     { return 0 }
func (p *DiscRegister) setHeaderFlags(f uint8) {}

// DiscResp carries the discovery log.
type DiscResp struct {
	Entries []DiscEntry
}

// PDUType implements PDU.
func (*DiscResp) PDUType() Type { return TypeDiscResp }

// WireSize implements PDU.
func (p *DiscResp) WireSize() int {
	n := chSize + 2
	for _, e := range p.Entries {
		n += 2 + len(e.NQN) + 2 + len(e.Addr) + 1
	}
	return n
}

func (p *DiscResp) encodeBody(dst []byte) {
	binary.LittleEndian.PutUint16(dst[0:], uint16(len(p.Entries)))
	off := 2
	for _, e := range p.Entries {
		binary.LittleEndian.PutUint16(dst[off:], uint16(len(e.NQN)))
		off += 2
		copy(dst[off:], e.NQN)
		off += len(e.NQN)
		binary.LittleEndian.PutUint16(dst[off:], uint16(len(e.Addr)))
		off += 2
		copy(dst[off:], e.Addr)
		off += len(e.Addr)
		dst[off] = e.Mode
		off++
	}
}

func (p *DiscResp) decodeBody(src []byte) error {
	if len(src) < 2 {
		return fmt.Errorf("proto: short DiscResp body: %d", len(src))
	}
	count := int(binary.LittleEndian.Uint16(src[0:]))
	off := 2
	entries := make([]DiscEntry, 0, count)
	for i := 0; i < count; i++ {
		if off+2 > len(src) {
			return fmt.Errorf("proto: truncated DiscResp entry %d", i)
		}
		nl := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if off+nl+2 > len(src) {
			return fmt.Errorf("proto: truncated NQN in entry %d", i)
		}
		nqn := string(src[off : off+nl])
		off += nl
		al := int(binary.LittleEndian.Uint16(src[off:]))
		off += 2
		if off+al+1 > len(src) {
			return fmt.Errorf("proto: truncated address in entry %d", i)
		}
		addr := string(src[off : off+al])
		off += al
		mode := src[off]
		off++
		entries = append(entries, DiscEntry{NQN: nqn, Addr: addr, Mode: mode})
	}
	p.Entries = entries
	return nil
}

func (p *DiscResp) headerFlags() uint8     { return 0 }
func (p *DiscResp) setHeaderFlags(f uint8) {}
