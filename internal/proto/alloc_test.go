package proto

// Allocation regressions for the transport hot path: marshal via
// AppendPDU into a reused buffer and decode via a pooling Reader must be
// allocation-free in steady state — this is the property the sharded TCP
// datapath's throughput rests on.

import (
	"bytes"
	"io"
	"testing"

	"nvmeopf/internal/nvme"
)

// loopReader replays a fixed byte stream forever without allocating.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

func TestAppendPDUZeroAlloc(t *testing.T) {
	skipIfRace(t)
	cmd := &CapsuleCmd{
		Cmd:    nvme.Command{Opcode: nvme.OpWrite, CID: 7, NSID: 1, SLBA: 42},
		Prio:   PrioTCDraining,
		Tenant: 3,
		Data:   make([]byte, 4096),
	}
	resp := &CapsuleResp{Cpl: nvme.Completion{CID: 7}, Coalesced: true}
	buf := make([]byte, 0, 64<<10)
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		buf = AppendPDU(buf, cmd)
		buf = AppendPDU(buf, resp)
	})
	if allocs != 0 {
		t.Errorf("AppendPDU into reused buffer: %v allocs/op, want 0", allocs)
	}
}

func TestReaderZeroAllocCapsuleResp(t *testing.T) {
	skipIfRace(t)
	wire := Marshal(&CapsuleResp{Cpl: nvme.Completion{CID: 9}, Coalesced: true})
	rd := NewReader(&loopReader{data: wire}, true)
	// Warm the pools and grow the scratch before measuring.
	for i := 0; i < 16; i++ {
		p, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		ReleaseInbound(p)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		ReleaseInbound(p)
	})
	if allocs != 0 {
		t.Errorf("Reader.Next(CapsuleResp): %v allocs/op, want 0", allocs)
	}
}

func TestReaderZeroAllocCapsuleCmdWithPayload(t *testing.T) {
	skipIfRace(t)
	wire := Marshal(&CapsuleCmd{
		Cmd:  nvme.Command{Opcode: nvme.OpWrite, CID: 7, NSID: 1},
		Data: bytes.Repeat([]byte{0xAB}, 4096),
	})
	rd := NewReader(&loopReader{data: wire}, true)
	for i := 0; i < 16; i++ {
		p, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		ReleaseInbound(p)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		ReleaseInbound(p)
	})
	if allocs != 0 {
		t.Errorf("Reader.Next(CapsuleCmd+4KiB): %v allocs/op, want 0", allocs)
	}
}

func TestReaderPooledMatchesPlainDecode(t *testing.T) {
	pdus := []PDU{
		&ICReq{PFV: 1, QueueDepth: 64, Prio: PrioThroughputCritical, NSID: 1},
		&CapsuleCmd{
			Cmd:    nvme.Command{Opcode: nvme.OpWrite, CID: 3, NSID: 1, SLBA: 8, NLB: 1},
			Prio:   PrioTCDraining,
			Tenant: 5,
			Data:   bytes.Repeat([]byte{0x5C}, 8192),
		},
		&CapsuleResp{Cpl: nvme.Completion{CID: 3, Status: nvme.StatusSuccess}, Coalesced: true},
		&C2HData{CCCID: 3, Offset: 512, Data: bytes.Repeat([]byte{0x77}, 1024)},
		&H2CData{CCCID: 4, Offset: 0, Data: []byte{1, 2, 3}},
	}
	var wire []byte
	for _, p := range pdus {
		wire = AppendPDU(wire, p)
	}
	for _, pooled := range []bool{false, true} {
		rd := NewReader(bytes.NewReader(wire), pooled)
		for i, want := range pdus {
			got, err := rd.Next()
			if err != nil {
				t.Fatalf("pooled=%v pdu %d: %v", pooled, i, err)
			}
			checkPDUEqual(t, got, want)
		}
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("pooled=%v: want EOF at stream end, got %v", pooled, err)
		}
	}
}

func checkPDUEqual(t *testing.T, got, want PDU) {
	t.Helper()
	if got.PDUType() != want.PDUType() {
		t.Fatalf("type %v != %v", got.PDUType(), want.PDUType())
	}
	// Re-marshal both: equal wire bytes means equal decoded state.
	if !bytes.Equal(Marshal(got), Marshal(want)) {
		t.Fatalf("%v decoded state differs from original", want.PDUType())
	}
}

func TestBufPool(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 512}, {512, 512}, {513, 1024}, {4096, 4096}, {4097, 8192}, {1 << 20, 1 << 20},
	}
	for _, c := range cases {
		b := GetBuf(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("GetBuf(%d): len=%d cap=%d, want len=%d cap=%d", c.n, len(b), cap(b), c.n, c.wantCap)
		}
		PutBuf(b)
	}
	// Oversized requests fall back to exact allocations and are never
	// pooled.
	big := GetBuf(maxBufClass + 1)
	if len(big) != maxBufClass+1 {
		t.Errorf("oversize GetBuf: len=%d", len(big))
	}
	PutBuf(big) // must not panic or poison the pool
	// A buffer whose capacity is not an exact class is dropped, not pooled.
	PutBuf(make([]byte, 100, 777))
	PutBuf(nil)
}

func TestRecycleClearsState(t *testing.T) {
	c := GetCapsuleCmd()
	c.Data = []byte{1}
	c.Tenant = 9
	Recycle(c)
	c2 := GetCapsuleCmd()
	if c2.Data != nil || c2.Tenant != 0 {
		t.Errorf("recycled CapsuleCmd not zeroed: %+v", c2)
	}
	Recycle(c2)
}

// skipIfRace skips allocation assertions under the race detector, whose
// instrumentation allocates on paths that are clean in normal builds.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}
