package proto

import (
	"reflect"
	"strings"
	"testing"
)

func TestTelemetryUpdateRoundTrip(t *testing.T) {
	in := &TelemetryUpdate{
		HostClock:  123_456_789,
		SubBits:    5,
		QueueDepth: 31,
		Busy:       4,
		Retries:    2,
		Classes: []TelemetryClassDelta{
			{
				Class: PrioLatencySensitive,
				Sum:   1_000_000,
				Max:   90_000,
				Buckets: []TelemetryBucket{
					{Index: 100, Count: 3},
					{Index: 317, Count: 1},
				},
			},
			{
				Class:   PrioThroughputCritical,
				Sum:     5_500_000,
				Max:     2_000_000,
				Buckets: []TelemetryBucket{{Index: 512, Count: 40}},
			},
		},
	}
	out := roundTrip(t, in).(*TelemetryUpdate)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestTelemetryUpdateEmpty(t *testing.T) {
	in := &TelemetryUpdate{HostClock: 42, SubBits: 5, QueueDepth: 0}
	out := roundTrip(t, in).(*TelemetryUpdate)
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestTelemetryUpdateTruncationDetected(t *testing.T) {
	in := &TelemetryUpdate{
		HostClock: 1, SubBits: 5,
		Classes: []TelemetryClassDelta{{
			Class:   PrioLatencySensitive,
			Buckets: []TelemetryBucket{{Index: 1, Count: 1}, {Index: 2, Count: 2}},
		}},
	}
	buf := Marshal(in)
	// Chop off the last bucket but keep the header honest about length.
	short := buf[:len(buf)-tuBucketSize]
	var p TelemetryUpdate
	if err := p.decodeBody(short[chSize:]); err == nil {
		t.Fatal("decodeBody accepted a truncated bucket list")
	}
	// Trailing garbage is rejected too.
	long := append(append([]byte(nil), buf...), 0xff, 0xff)
	if err := p.decodeBody(long[chSize:]); err == nil {
		t.Fatal("decodeBody accepted trailing bytes")
	}
}

func TestTelemetryAckRoundTrip(t *testing.T) {
	in := &TelemetryAck{EchoHostClock: -5, TargetClock: 987_654_321}
	out := roundTrip(t, in).(*TelemetryAck)
	if *out != *in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

// TestTelemetryTypesPastDiscovery pins the type-code allocation: telemetry
// PDUs must not collide with the core (0x00–0x07) or discovery
// (0x08–0x0A) ranges.
func TestTelemetryTypesPastDiscovery(t *testing.T) {
	if TypeTelemetryUpdate != 0x0B || TypeTelemetryAck != 0x0C {
		t.Fatalf("telemetry PDU types moved: update=0x%02x ack=0x%02x",
			uint8(TypeTelemetryUpdate), uint8(TypeTelemetryAck))
	}
	for _, typ := range []Type{TypeTelemetryUpdate, TypeTelemetryAck} {
		if strings.HasPrefix(typ.String(), "Type(") {
			t.Fatalf("type 0x%02x has no String case", uint8(typ))
		}
	}
}
