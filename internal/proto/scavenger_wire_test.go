package proto

// Wire pins for the scavenger (best-effort) class: the third reserved SQE
// bit, zero extra wire bytes, and — critically — the legacy decode: a peer
// built before the class existed masks the priority byte with 0x3 and must
// read a scavenger command as PrioNormal (a safe downgrade to FIFO), never
// as LS or TC.

import (
	"bytes"
	"testing"

	"nvmeopf/internal/nvme"
)

func TestScavengerWireByte(t *testing.T) {
	in := &CapsuleCmd{
		Cmd:    nvme.Command{Opcode: nvme.OpWrite, CID: 3, NSID: 1, SLBA: 8, NLB: 0},
		Prio:   PrioScavenger,
		Tenant: 300,
		Data:   []byte("0123456789abcdef"),
	}
	buf := Marshal(in)
	// Bit 2 alone: the two legacy priority bits stay clear so a legacy
	// mask-0x3 decode reads PrioNormal.
	if got := buf[chSize+sqePrioOffset]; got != 4 {
		t.Fatalf("scavenger priority byte = %#x, want 0x4", got)
	}
	if got := Priority(buf[chSize+sqePrioOffset] & 0x3); got != PrioNormal {
		t.Fatalf("legacy decode of scavenger byte = %v, want PrioNormal", got)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	cc := out.(*CapsuleCmd)
	if cc.Prio != PrioScavenger || cc.Tenant != 300 {
		t.Fatalf("round trip = prio %v tenant %d", cc.Prio, cc.Tenant)
	}
}

func TestScavengerAddsNoWireBytes(t *testing.T) {
	cmd := nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1, SLBA: 0, NLB: 7}
	plain := &CapsuleCmd{Cmd: cmd, Prio: PrioNormal}
	scav := &CapsuleCmd{Cmd: cmd, Prio: PrioScavenger, Tenant: 65535}
	if len(Marshal(plain)) != len(Marshal(scav)) {
		t.Fatal("scavenger bit changed the wire size")
	}
}

func TestScavengerICReqRoundTrip(t *testing.T) {
	in := &ICReq{PFV: 1, QueueDepth: 64, Prio: PrioScavenger, NSID: 1}
	buf := Marshal(in)
	if got := buf[chSize+4]; got != 4 {
		t.Fatalf("ICReq scavenger class byte = %#x, want 0x4", got)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*ICReq).Prio; got != PrioScavenger {
		t.Fatalf("ICReq class round-tripped to %v", got)
	}
}

// TestLegacyPriorityDecodeUnchanged pins that the four pre-scavenger wire
// values still decode exactly as before the bit existed, and that every
// priority round-trips through encode/decode.
func TestLegacyPriorityDecodeUnchanged(t *testing.T) {
	legacy := map[uint8]Priority{
		0: PrioNormal,
		1: PrioLatencySensitive,
		2: PrioThroughputCritical,
		3: PrioTCDraining,
	}
	for b, want := range legacy {
		if got := decodePriority(b); got != want {
			t.Fatalf("decodePriority(%d) = %v, want %v", b, got, want)
		}
		if got := encodePriority(want); got != b {
			t.Fatalf("encodePriority(%v) = %d, want %d", want, got, b)
		}
	}
	for _, p := range []Priority{PrioNormal, PrioLatencySensitive, PrioThroughputCritical, PrioTCDraining, PrioScavenger} {
		if got := decodePriority(encodePriority(p)); got != p {
			t.Fatalf("priority %v round-tripped to %v", p, got)
		}
	}
	// Defensive decode: a peer that (incorrectly) sets the scavenger bit
	// alongside legacy bits still lands on scavenger — the bit always
	// means best-effort, so garbage low bits can never escalate a request
	// into the LS bypass.
	for b := uint8(4); b <= 7; b++ {
		if got := decodePriority(b); got != PrioScavenger {
			t.Fatalf("decodePriority(%d) = %v, want PrioScavenger", b, got)
		}
	}
}

// TestScavengerPooledDecodeKeepsBit pins the pooled (zero-alloc) reader's
// CapsuleCmd decode against the plain one for the scavenger bit. The
// pooled path once carried its own mask-0x3 decode — the legacy downgrade
// meant for *peers* — silently demoting every scavenger command to the
// FIFO path on the real TCP server while the simulator (plain decode)
// kept the class. Any byte the two decoders disagree on is a bug.
func TestScavengerPooledDecodeKeepsBit(t *testing.T) {
	in := &CapsuleCmd{
		Cmd:    nvme.Command{Opcode: nvme.OpWrite, CID: 9, NSID: 1, SLBA: 4, NLB: 0},
		Prio:   PrioScavenger,
		Tenant: 300,
		Data:   bytes.Repeat([]byte{0xE7}, 4096),
	}
	wire := Marshal(in)
	for _, pooled := range []bool{false, true} {
		rd := NewReader(bytes.NewReader(wire), pooled)
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("pooled=%v: %v", pooled, err)
		}
		cc, ok := got.(*CapsuleCmd)
		if !ok {
			t.Fatalf("pooled=%v: decoded %T", pooled, got)
		}
		if cc.Prio != PrioScavenger || cc.Tenant != 300 {
			t.Fatalf("pooled=%v: prio %v tenant %d, want scavenger/300", pooled, cc.Prio, cc.Tenant)
		}
		if !bytes.Equal(cc.Data, in.Data) {
			t.Fatalf("pooled=%v: payload mismatch", pooled)
		}
	}
}
