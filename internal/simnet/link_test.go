package simnet

import (
	"testing"
	"testing/quick"
)

func testLinkCfg() LinkConfig {
	return LinkConfig{
		BitsPerSec:       10e9,
		MTU:              1500,
		PacketOverhead:   78,
		PropagationDelay: 20_000,
	}
}

func TestLinkConfigValidate(t *testing.T) {
	good := testLinkCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LinkConfig{
		{BitsPerSec: 0, MTU: 1500},
		{BitsPerSec: 1e9, MTU: 0},
		{BitsPerSec: 1e9, MTU: 1500, PacketOverhead: -1},
		{BitsPerSec: 1e9, MTU: 1500, PropagationDelay: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPacketsFor(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "t", testLinkCfg())
	cases := map[int]int{0: 1, 1: 1, 1500: 1, 1501: 2, 4096: 3, 4500: 3, 4501: 4}
	for size, want := range cases {
		if got := l.PacketsFor(size); got != want {
			t.Errorf("PacketsFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestLinkSingleSendTiming(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "t", testLinkCfg())
	// 1000-byte message: 1 packet, wire = 1078 bytes = 8624 bits at
	// 10Gbps -> 862.4ns tx, +20us propagation.
	var deliveredAt Time = -1
	l.Send(DirAtoB, 1000, func() { deliveredAt = e.Now() })
	e.Run()
	want := Time(862) + 20_000 // float truncation of 862.4
	if deliveredAt != want {
		t.Fatalf("delivered at %d, want %d", deliveredAt, want)
	}
}

func TestLinkSerialization(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "t", testLinkCfg())
	var times []Time
	// Two same-size messages sent back-to-back must arrive one tx-time
	// apart: the second queues behind the first.
	for i := 0; i < 2; i++ {
		l.Send(DirAtoB, 1000, func() { times = append(times, e.Now()) })
	}
	e.Run()
	if len(times) != 2 {
		t.Fatal("missing deliveries")
	}
	gap := times[1] - times[0]
	if gap != 862 {
		t.Fatalf("gap = %d, want 862 (serialization)", gap)
	}
}

func TestLinkDirectionsIndependent(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "t", testLinkCfg())
	var aTob, bToa Time
	l.Send(DirAtoB, 1000, func() { aTob = e.Now() })
	l.Send(DirBtoA, 1000, func() { bToa = e.Now() })
	e.Run()
	if aTob != bToa {
		t.Fatalf("full duplex broken: %d vs %d", aTob, bToa)
	}
}

func TestLinkStats(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "t", testLinkCfg())
	l.Send(DirAtoB, 4096, nil)
	l.Send(DirAtoB, 0, nil)
	st := l.Stats(DirAtoB)
	if st.Messages != 2 {
		t.Errorf("messages = %d", st.Messages)
	}
	if st.Packets != 4 { // 3 for 4096B + 1 for the empty PDU
		t.Errorf("packets = %d", st.Packets)
	}
	wantBytes := int64(4096+3*78) + int64(0+78)
	if st.Bytes != wantBytes {
		t.Errorf("bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if l.Stats(DirBtoA).Messages != 0 {
		t.Error("wrong-direction stats")
	}
}

func TestLinkUtilization(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "t", testLinkCfg())
	// Saturate A->B for ~1ms.
	var send func()
	sent := 0
	send = func() {
		if sent >= 100 {
			return
		}
		sent++
		l.Send(DirAtoB, 1500, send)
	}
	send()
	e.Run()
	if u := l.Utilization(DirAtoB); u < 0.01 {
		t.Errorf("utilization = %v, want > 0", u)
	}
	if u := l.Utilization(DirBtoA); u != 0 {
		t.Errorf("idle direction utilization = %v", u)
	}
}

func TestLinkBadDirectionPanics(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "t", testLinkCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	l.Send(2, 100, nil)
}

// Property: N back-to-back sends of the same size arrive exactly N*txTime
// after the first tx begins (conservation: the link never creates or
// destroys bandwidth).
func TestLinkConservationProperty(t *testing.T) {
	f := func(nRaw uint8, sizeRaw uint16) bool {
		n := int(nRaw%20) + 1
		size := int(sizeRaw%8192) + 1
		e := NewEngine()
		l := NewLink(e, "t", testLinkCfg())
		var last Time
		for i := 0; i < n; i++ {
			l.Send(DirAtoB, size, func() { last = e.Now() })
		}
		e.Run()
		tx := l.txTime(size)
		want := Time(n)*tx + l.cfg.PropagationDelay
		// Integer truncation of per-message tx can accumulate at most
		// n nanoseconds of slack.
		diff := last - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= Time(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
