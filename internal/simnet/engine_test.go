package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end = %d", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestEngineFIFOSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEnginePastClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		e.At(50, func() { // in the past; must run "now"
			if e.Now() != 100 {
				t.Errorf("past event ran at %d", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	end := e.RunUntil(20)
	if end != 20 {
		t.Fatalf("end = %d", end)
	}
	if len(got) != 2 {
		t.Fatalf("got = %v", got)
	}
	e.RunUntil(30)
	if len(got) != 3 {
		t.Fatalf("second RunUntil missed events: %v", got)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("idle clock = %d", e.Now())
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewEngine().Schedule(1, nil)
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine visits every event exactly once.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, d := range delays {
			d := Time(d)
			e.At(d, func() { seen = append(seen, d) })
		}
		e.Run()
		if len(seen) != len(delays) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(12345), NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(54321)
	same := 0
	a2 := NewRand(12345)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical values", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 10000; i++ {
		if v := r.Int63n(7); v < 0 || v >= 7 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandInt63nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRand(1).Int63n(0)
}

func TestRandJitter(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Jitter(100, 30)
		if v < 70 || v > 130 {
			t.Fatalf("jitter out of range: %d", v)
		}
	}
	if r.Jitter(100, 0) != 100 {
		t.Fatal("zero spread should return base")
	}
	// Clamping keeps service times positive.
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(1, 10); v < 1 {
			t.Fatalf("jitter went nonpositive: %d", v)
		}
	}
}
