package simnet

import "testing"

func testCPUCfg() CPUConfig {
	return CPUConfig{
		RxPDU:        400,
		TxPDU:        500,
		SmallTxExtra: 2000,
		RxSmallExtra: 1500,
		PerByte:      0.05,
		SubmitOp:     300,
	}
}

func TestCPUConfigValidate(t *testing.T) {
	if err := testCPUCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (CPUConfig{RxPDU: -1}).Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestCPUExecSerializes(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "t", testCPUCfg())
	var done []Time
	c.Exec(100, func() { done = append(done, e.Now()) })
	c.Exec(100, func() { done = append(done, e.Now()) })
	e.Run()
	if len(done) != 2 || done[0] != 100 || done[1] != 200 {
		t.Fatalf("done = %v", done)
	}
	if c.BusyTotal() != 200 || c.Events() != 2 {
		t.Fatalf("busy=%d events=%d", c.BusyTotal(), c.Events())
	}
}

func TestCPUIdleGap(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "t", testCPUCfg())
	var second Time
	c.Exec(100, nil)
	e.Schedule(1000, func() {
		c.Exec(50, func() { second = e.Now() })
	})
	e.Run()
	if second != 1050 {
		t.Fatalf("second = %d, want 1050 (no carryover of idle time)", second)
	}
}

func TestCPUNegativeCostClamped(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "t", testCPUCfg())
	at := c.Exec(-5, nil)
	if at != 0 {
		t.Fatalf("negative cost not clamped: %d", at)
	}
}

func TestCPUCostModel(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "t", testCPUCfg())
	if got := c.RxCost(0, false); got != 400 {
		t.Errorf("RxCost(0) = %d", got)
	}
	if got := c.RxCost(4096, false); got != 400+204 {
		t.Errorf("RxCost(4096) = %d", got)
	}
	if got := c.RxCost(0, true); got != 400+1500 {
		t.Errorf("RxCost(0, standalone) = %d", got)
	}
	// Standalone tx pays the surcharge; batched submission-path tx does
	// not.
	if got := c.TxCost(0, true); got != 500+2000 {
		t.Errorf("TxCost(0, standalone) = %d", got)
	}
	if got := c.TxCost(0, false); got != 500 {
		t.Errorf("TxCost(0, batched) = %d", got)
	}
	if got := c.TxCost(4096, false); got != 500+204 {
		t.Errorf("TxCost(4096, batched) = %d", got)
	}
	if got := c.TxCost(4096, true); got != 500+204+2000 {
		t.Errorf("TxCost(4096, standalone) = %d", got)
	}
	if c.SubmitCost() != 300 {
		t.Errorf("SubmitCost = %d", c.SubmitCost())
	}
}

func TestCPUUtilization(t *testing.T) {
	e := NewEngine()
	c := NewCPU(e, "t", testCPUCfg())
	c.Exec(500, nil)
	e.At(1000, func() {})
	e.Run()
	if u := c.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}
