package simnet

import "fmt"

// LinkConfig describes one full-duplex point-to-point Ethernet link.
type LinkConfig struct {
	// BitsPerSec is the line rate (10e9, 25e9, 100e9 in the paper).
	BitsPerSec int64
	// MTU is the maximum transmission unit; payload bytes per packet.
	MTU int
	// PacketOverhead is added to every packet on the wire: Ethernet
	// preamble+header+FCS+IFG plus IP and TCP headers (~78 bytes for the
	// paper's TCP transport).
	PacketOverhead int
	// PropagationDelay is the one-way latency added after serialization.
	PropagationDelay Time
}

// Validate checks the configuration.
func (c LinkConfig) Validate() error {
	if c.BitsPerSec <= 0 {
		return fmt.Errorf("simnet: link rate %d <= 0", c.BitsPerSec)
	}
	if c.MTU <= 0 {
		return fmt.Errorf("simnet: MTU %d <= 0", c.MTU)
	}
	if c.PacketOverhead < 0 {
		return fmt.Errorf("simnet: negative packet overhead")
	}
	if c.PropagationDelay < 0 {
		return fmt.Errorf("simnet: negative propagation delay")
	}
	return nil
}

// Link models one direction pair of a full-duplex link. Each direction
// serializes messages FIFO at the line rate; concurrent messages queue
// behind each other, which is how the model expresses congestion from
// per-request completion packets (§V-A3).
type Link struct {
	eng  *Engine
	cfg  LinkConfig
	name string

	// busyUntil per direction (0 = A->B, 1 = B->A).
	busyUntil [2]Time

	// lastAt per direction: the latest delivery scheduled so far. The
	// link models an ordered byte stream (TCP), so deliveries must stay
	// FIFO even when an attached FaultProfile assigns size-dependent
	// extra delays that would otherwise let a small message overtake a
	// large one sent before it.
	lastAt [2]Time

	// Stats per direction.
	stats [2]LinkStats

	// faults optionally degrades the link (see SetFaults).
	faults FaultProfile
}

// FaultProfile degrades a link for fault-injection experiments. Apply is
// consulted once per message: extraDelay is added to the propagation
// delay, and drop discards the message entirely (its deliver callback
// never runs — callers opting into drops must have timeout recovery, as
// the real transport does). internal/faultnet provides an implementation
// sharing the chaos harness's fault vocabulary.
type FaultProfile interface {
	Apply(dir int, now Time, size int) (extraDelay Time, drop bool)
}

// SetFaults attaches a fault profile to the link (nil detaches).
func (l *Link) SetFaults(p FaultProfile) { l.faults = p }

// LinkStats accumulates per-direction transmission counters.
type LinkStats struct {
	Messages int64 // PDUs sent
	Packets  int64 // MTU-sized packets on the wire
	Bytes    int64 // wire bytes including per-packet overhead
	BusyTime Time  // total serialization time
	Dropped  int64 // messages discarded by an attached FaultProfile
}

// DirAtoB and DirBtoA select a link direction.
const (
	DirAtoB = 0
	DirBtoA = 1
)

// NewLink creates a link on the engine.
func NewLink(eng *Engine, name string, cfg LinkConfig) *Link {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Link{eng: eng, cfg: cfg, name: name}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Packets returns how many wire packets a message of size bytes needs.
func (l *Link) PacketsFor(size int) int {
	if size <= 0 {
		return 1 // a header-only PDU still occupies one packet
	}
	return (size + l.cfg.MTU - 1) / l.cfg.MTU
}

// wireBytes returns the on-the-wire byte count for a message of size bytes.
func (l *Link) wireBytes(size int) int64 {
	return int64(size) + int64(l.PacketsFor(size))*int64(l.cfg.PacketOverhead)
}

// txTime returns serialization time for a message of size bytes.
func (l *Link) txTime(size int) Time {
	bits := l.wireBytes(size) * 8
	// ns = bits / (bits/sec) * 1e9, computed to avoid overflow for any
	// realistic size (bits < 2^40, 1e9 multiplier fits in int64 via
	// float64 intermediate kept exact for these magnitudes).
	return Time(float64(bits) / float64(l.cfg.BitsPerSec) * 1e9)
}

// Send transmits a message of size bytes in direction dir and runs deliver
// when the last bit arrives at the far end. It returns the scheduled
// delivery time.
func (l *Link) Send(dir int, size int, deliver func()) Time {
	if dir != DirAtoB && dir != DirBtoA {
		panic(fmt.Sprintf("simnet: bad link direction %d", dir))
	}
	now := l.eng.Now()
	var extra Time
	if l.faults != nil {
		var drop bool
		extra, drop = l.faults.Apply(dir, now, size)
		if drop {
			// The message still occupied the wire (it was transmitted and
			// lost), so serialization accounting proceeds; only delivery
			// is suppressed.
			l.stats[dir].Dropped++
			deliver = nil
		}
	}
	start := l.busyUntil[dir]
	if start < now {
		start = now
	}
	tx := l.txTime(size)
	done := start + tx
	l.busyUntil[dir] = done
	st := &l.stats[dir]
	st.Messages++
	st.Packets += int64(l.PacketsFor(size))
	st.Bytes += l.wireBytes(size)
	st.BusyTime += tx
	at := done + l.cfg.PropagationDelay + extra
	// An ordered stream never reorders: a message cannot arrive before
	// one serialized ahead of it, whatever per-message delay the fault
	// profile added.
	if at < l.lastAt[dir] {
		at = l.lastAt[dir]
	}
	l.lastAt[dir] = at
	if deliver != nil {
		l.eng.At(at, deliver)
	}
	return at
}

// Stats returns the accumulated counters for a direction.
func (l *Link) Stats(dir int) LinkStats { return l.stats[dir] }

// Utilization returns the fraction of the interval [0, now] a direction
// spent serializing.
func (l *Link) Utilization(dir int) float64 {
	now := l.eng.Now()
	if now <= 0 {
		return 0
	}
	busy := l.stats[dir].BusyTime
	if busy > now {
		busy = now
	}
	return float64(busy) / float64(now)
}
