// Package simnet is a deterministic discrete-event simulation engine with
// the two resource models the NVMe-oPF experiments need: network links
// (bandwidth, MTU packetization, per-packet overhead, propagation delay)
// and poller CPUs (serialized per-PDU processing costs).
//
// Everything runs single-threaded on a virtual clock, so experiment results
// are bit-reproducible across runs and machines — a property the paper's
// real testbed cannot offer, and the reason figure regeneration is stable.
package simnet

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time = int64

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-timestamp events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
// Engine is not safe for concurrent use: all simulation code runs inside
// event callbacks on the caller's goroutine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// NewEngine returns a fresh engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay d (clamped to now for negative d). Events
// scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	e.At(e.now+int64(d), fn)
}

// At runs fn at absolute virtual time t (clamped to now if in the past).
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("simnet: nil event function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Run processes events until none remain or Stop is called. It returns the
// final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline (or until Stop).
// Events beyond the deadline stay queued; the clock is advanced to the
// deadline so a subsequent RunUntil continues seamlessly.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop halts Run/RunUntil after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Rand is a small deterministic xorshift64* PRNG. The simulator cannot use
// math/rand's global state because experiment reproducibility requires each
// component to own an explicitly-seeded stream.
type Rand struct{ s uint64 }

// NewRand seeds a generator; seed 0 is remapped to a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Int63n returns a value uniform in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: Int63n(%d)", n))
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a value uniform in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Jitter returns base +/- spread, uniform. Negative results clamp to 1ns so
// service times remain positive.
func (r *Rand) Jitter(base, spread int64) int64 {
	if spread <= 0 {
		return base
	}
	v := base - spread + r.Int63n(2*spread+1)
	if v < 1 {
		v = 1
	}
	return v
}
