package simnet

import "fmt"

// CPUConfig models a node's poller core: the userspace NVMe-oF runtime is a
// run-to-completion poll loop (SPDK reactor), so PDU processing serializes
// on one core. Costs are per-event nanoseconds.
type CPUConfig struct {
	// RxPDU is charged for receiving and parsing one PDU (any type).
	RxPDU Time
	// TxPDU is charged for staging one PDU for transmission.
	TxPDU Time
	// SmallTxExtra is the additional cost of flushing a standalone small
	// PDU (a completion notification): socket flush, segmentation of a
	// tiny segment, ACK handling. Completions are generated one at a time
	// as the device finishes requests, so unlike deep-queue submissions
	// they cannot batch into larger sends; this is the dominant
	// per-request cost the paper's coalescing amortizes (§V-A3:
	// completion notifications "consume CPU processing at both the
	// NVMe-oF target and initiator").
	SmallTxExtra Time
	// RxSmallExtra is the receive-side analogue of SmallTxExtra: the cost
	// of taking delivery of an isolated small PDU (a completion
	// notification) that arrives on its own tiny segment and cannot ride
	// a coalesced receive the way bulk data segments do. The paper:
	// completion notifications "consume CPU processing at both the
	// NVMe-oF target and initiator" (§V-A3).
	RxSmallExtra Time
	// PerByte is the per-byte staging/copy cost (applied to payload bytes).
	PerByte float64
	// SubmitOp is charged on the target for handing one command to the
	// SSD (or on the host for building one command).
	SubmitOp Time
}

// Validate checks the configuration.
func (c CPUConfig) Validate() error {
	if c.RxPDU < 0 || c.TxPDU < 0 || c.SmallTxExtra < 0 || c.RxSmallExtra < 0 || c.PerByte < 0 || c.SubmitOp < 0 {
		return fmt.Errorf("simnet: negative CPU cost")
	}
	return nil
}

// CPU is a serialized compute resource on the engine.
type CPU struct {
	eng       *Engine
	cfg       CPUConfig
	name      string
	busyUntil Time
	busyTotal Time
	events    int64
}

// NewCPU creates a poller CPU.
func NewCPU(eng *Engine, name string, cfg CPUConfig) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &CPU{eng: eng, cfg: cfg, name: name}
}

// Config returns the CPU's cost model.
func (c *CPU) Config() CPUConfig { return c.cfg }

// Exec occupies the CPU for cost nanoseconds (FIFO after already-queued
// work) and then runs fn. It returns the completion time.
func (c *CPU) Exec(cost Time, fn func()) Time {
	if cost < 0 {
		cost = 0
	}
	now := c.eng.Now()
	start := c.busyUntil
	if start < now {
		start = now
	}
	done := start + cost
	c.busyUntil = done
	c.busyTotal += cost
	c.events++
	if fn != nil {
		c.eng.At(done, fn)
	}
	return done
}

// RxCost returns the cost of receiving a PDU with payloadBytes of data.
// standalone marks an isolated small PDU (a completion notification),
// which pays the RxSmallExtra surcharge.
func (c *CPU) RxCost(payloadBytes int, standalone bool) Time {
	cost := c.cfg.RxPDU + Time(c.cfg.PerByte*float64(payloadBytes))
	if standalone {
		cost += c.cfg.RxSmallExtra
	}
	return cost
}

// TxCost returns the cost of sending a PDU with payloadBytes of data.
// standalone marks a send that cannot batch with neighbours (a completion
// notification emitted by a device-completion event); it pays the
// SmallTxExtra surcharge. Submission-path sends from a deep queue batch
// into large segments and pass standalone=false.
func (c *CPU) TxCost(payloadBytes int, standalone bool) Time {
	cost := c.cfg.TxPDU + Time(c.cfg.PerByte*float64(payloadBytes))
	if standalone {
		cost += c.cfg.SmallTxExtra
	}
	return cost
}

// SubmitCost returns the per-command submission cost.
func (c *CPU) SubmitCost() Time { return c.cfg.SubmitOp }

// BusyTotal returns cumulative busy nanoseconds.
func (c *CPU) BusyTotal() Time { return c.busyTotal }

// Events returns the number of Exec calls.
func (c *CPU) Events() int64 { return c.events }

// Utilization returns busy fraction of [0, now].
func (c *CPU) Utilization() float64 {
	now := c.eng.Now()
	if now <= 0 {
		return 0
	}
	busy := c.busyTotal
	if busy > now {
		busy = now
	}
	return float64(busy) / float64(now)
}
