package core

import (
	"testing"

	"nvmeopf/internal/proto"
)

func TestOptimalWindowPaperFindings(t *testing.T) {
	// Fig. 6(a): 32 is the peak at 25/100 Gbps reads.
	if w := OptimalWindow(WorkloadRead, 100, 1, 128); w != 32 {
		t.Errorf("read@100G window = %d, want 32", w)
	}
	if w := OptimalWindow(WorkloadRead, 25, 1, 128); w != 32 {
		t.Errorf("read@25G window = %d, want 32", w)
	}
	// Fig. 6(b): big windows hurt on a saturated 10G link for writes.
	if w := OptimalWindow(WorkloadWrite, 10, 1, 128); w >= 32 {
		t.Errorf("write@10G window = %d, want < 32", w)
	}
	// Writes use smaller windows than reads at any speed.
	if rw, ww := OptimalWindow(WorkloadRead, 100, 1, 128), OptimalWindow(WorkloadWrite, 100, 1, 128); ww >= rw {
		t.Errorf("write window %d >= read window %d", ww, rw)
	}
}

func TestOptimalWindowNeverExceedsQD(t *testing.T) {
	for _, qd := range []int{1, 4, 16, 128} {
		for _, kind := range []WorkloadKind{WorkloadRead, WorkloadWrite, WorkloadMixed} {
			for _, gbps := range []float64{10, 25, 100} {
				w := OptimalWindow(kind, gbps, 2, qd)
				if w > qd {
					t.Errorf("window %d > QD %d (%v, %vG)", w, qd, kind, gbps)
				}
				if w < 1 {
					t.Errorf("window %d < 1", w)
				}
			}
		}
	}
}

func TestOptimalWindowShrinksUnderHeavyTenancy(t *testing.T) {
	few := OptimalWindow(WorkloadRead, 100, 2, 128)
	many := OptimalWindow(WorkloadRead, 100, 8, 128)
	if many >= few {
		t.Errorf("heavy tenancy window %d >= light %d", many, few)
	}
}

func TestWorkloadKindString(t *testing.T) {
	for _, k := range []WorkloadKind{WorkloadRead, WorkloadWrite, WorkloadMixed, WorkloadKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for %d", int(k))
		}
	}
}

func TestDynamicWindowClimbsTowardBetterThroughput(t *testing.T) {
	// Simulated environment: throughput grows with window up to 32, then
	// degrades (the Fig. 6(a) shape). The tuner should settle near 32.
	reward := func(w int) float64 {
		if w <= 32 {
			return float64(w)
		}
		return 64.0 - float64(w)
	}
	d := NewDynamicWindow(2, 64, 4)
	now := int64(0)
	for epoch := 0; epoch < 60; epoch++ {
		w := d.Window()
		// Simulate an epoch of 4 drains at this window's throughput:
		// bytes per drain proportional to reward, fixed epoch duration.
		for i := 0; i < 4; i++ {
			now += 1_000_000
			d.Observe(int64(reward(w)*1000), now)
		}
	}
	got := d.Window()
	if got < 16 || got > 64 {
		t.Fatalf("dynamic window settled at %d, want near 32", got)
	}
}

func TestDynamicWindowBounds(t *testing.T) {
	d := NewDynamicWindow(0, 0, 0) // degenerate inputs all clamp
	if d.Window() != 1 {
		t.Fatalf("window = %d", d.Window())
	}
	// Never exceeds max or drops below 1 over arbitrary observations.
	d = NewDynamicWindow(4, 16, 1)
	now := int64(0)
	for i := 0; i < 200; i++ {
		now += 1_000
		w := d.Observe(int64(i%7)*100, now)
		if w < 1 || w > 16 {
			t.Fatalf("window %d out of bounds", w)
		}
	}
}

func TestHostPMDynamicIntegration(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 8)
	d := NewDynamicWindow(8, 64, 1)
	h.EnableDynamicWindow(d)
	if h.Window() != 8 {
		t.Fatalf("window = %d", h.Window())
	}
	now := int64(0)
	prev := h.Window()
	changed := false
	for i := 0; i < 10; i++ {
		now += 1_000_000
		w := h.OnDrainCompleted(1<<20, now)
		if w != h.Window() {
			t.Fatal("OnDrainCompleted out of sync with Window()")
		}
		if w != prev {
			changed = true
		}
		prev = w
	}
	if !changed {
		t.Fatal("dynamic tuner never adjusted the window")
	}
	// Disabled tuner keeps the window fixed.
	h2 := NewHostPM(proto.PrioThroughputCritical, 8)
	if w := h2.OnDrainCompleted(1<<20, 5); w != 8 {
		t.Fatalf("static window moved to %d", w)
	}
}

// TestOptimalWindowEdgeTable pins the static formula across the edge
// cases a feedback controller's clamp bounds must survive: degenerate
// queue depths, zero/negative line rates, tenancy boundaries, and
// LS-only / TC-only extremes. The adaptive controller (internal/autotune)
// uses OptimalWindow as its MaxWindow; these values changing silently
// would move its bounds.
func TestOptimalWindowEdgeTable(t *testing.T) {
	cases := []struct {
		name         string
		kind         WorkloadKind
		gbps         float64
		tcInitiators int
		qd           int
		want         int
	}{
		// Degenerate queue depths: qd <= 0 means "unknown", no clamp.
		{"qd zero means unknown", WorkloadRead, 100, 1, 0, 32},
		{"qd negative means unknown", WorkloadRead, 100, 1, -7, 32},
		{"qd one clamps to one", WorkloadRead, 100, 1, 1, 1},
		// Zero/negative line rate falls into the congested (<=10G) branch
		// rather than dividing by or comparing garbage.
		{"zero rate read", WorkloadRead, 0, 1, 128, 32},
		{"zero rate write", WorkloadWrite, 0, 1, 128, 16},
		{"negative rate mixed", WorkloadMixed, -25, 1, 128, 16},
		// Tenancy boundary: the halving starts strictly above 4.
		{"four tenants keep full window", WorkloadRead, 100, 4, 128, 32},
		{"five tenants halve", WorkloadRead, 100, 5, 128, 16},
		{"zero tenants (LS-only target)", WorkloadRead, 100, 0, 128, 32},
		{"negative tenants", WorkloadRead, 100, -3, 128, 32},
		// Extreme ratio: many TC tenants at a small QD — both shrink
		// paths compose and the floor holds.
		{"heavy tenancy small qd", WorkloadWrite, 10, 100, 2, 2},
		{"heavy tenancy qd one", WorkloadWrite, 10, 100, 1, 1},
		// Unknown workload kind behaves like the default (read-ish) case.
		{"unknown kind", WorkloadKind(42), 100, 1, 128, 32},
	}
	for _, tc := range cases {
		if got := OptimalWindow(tc.kind, tc.gbps, tc.tcInitiators, tc.qd); got != tc.want {
			t.Errorf("%s: OptimalWindow(%v, %v, %d, %d) = %d, want %d",
				tc.name, tc.kind, tc.gbps, tc.tcInitiators, tc.qd, got, tc.want)
		}
	}
}

// TestOptimalWindowSizedBoundaries pins the exact I/O-size thresholds.
func TestOptimalWindowSizedBoundaries(t *testing.T) {
	cases := []struct {
		ioBytes int
		want    int
	}{
		{0, 32},            // degenerate size: no cap
		{-4096, 32},        // negative size: no cap
		{16<<10 - 1, 32},   // just under 16K
		{16 << 10, 16},     // at 16K
		{64<<10 - 1, 16},   // just under 64K
		{64 << 10, 8},      // at 64K
		{256<<10 - 1, 8},   // just under 256K
		{256 << 10, 4},     // at 256K
		{1 << 30, 4},       // huge I/O still floors at 4
		{1<<62 + 1<<61, 4}, // near-overflow sizes do not wrap
	}
	for _, tc := range cases {
		if got := OptimalWindowSized(WorkloadRead, 100, 1, 128, tc.ioBytes); got != tc.want {
			t.Errorf("OptimalWindowSized(ioBytes=%d) = %d, want %d", tc.ioBytes, got, tc.want)
		}
	}
	// The size cap composes with the QD clamp: the tighter bound wins.
	if got := OptimalWindowSized(WorkloadRead, 100, 1, 2, 256<<10); got != 2 {
		t.Errorf("sized window with qd 2 = %d, want 2", got)
	}
}

// TestDynamicWindowZeroRate drives the tuner through intervals with no
// bytes moved and no elapsed time — the zero-rate/zero-elapsed edge cases
// of the rate division — and checks it stays on the ladder.
func TestDynamicWindowZeroRate(t *testing.T) {
	d := NewDynamicWindow(4, 64, 2)
	// Epoch with zero elapsed time: two observations at the same instant.
	d.Observe(1000, 5)
	d.Observe(1000, 5)
	if w := d.Window(); w < 1 || w > 64 {
		t.Fatalf("window %d off the ladder after zero-elapsed epoch", w)
	}
	// Epochs with zero bytes: rate 0 forever must not wedge or escape.
	now := int64(5)
	for i := 0; i < 50; i++ {
		now += 1000
		if w := d.Observe(0, now); w < 1 || w > 64 {
			t.Fatalf("window %d off the ladder on zero-byte epoch %d", w, i)
		}
	}
}

// TestDynamicWindowRateOverflow feeds byte counts near int64 max; the
// float64 rate math must not produce NaN/negative windows.
func TestDynamicWindowRateOverflow(t *testing.T) {
	d := NewDynamicWindow(8, 64, 1)
	now := int64(0)
	for i := 0; i < 20; i++ {
		now += 1 // tiny elapsed: enormous rate
		if w := d.Observe(int64(1)<<62, now); w < 1 || w > 64 {
			t.Fatalf("window %d out of bounds under overflow-scale rates", w)
		}
	}
}

// TestDynamicWindowConstructorClamps pins the documented input clamps.
func TestDynamicWindowConstructorClamps(t *testing.T) {
	cases := []struct {
		start, max, epoch int
		wantStart         int
	}{
		{0, 0, 0, 1},    // everything degenerate
		{-5, -5, -5, 1}, // negative everything
		{8, 4, 1, 8},    // max below start: raised to start
		{3, 64, 1, 3},   // off-ladder start is accepted as-is
	}
	for _, tc := range cases {
		d := NewDynamicWindow(tc.start, tc.max, tc.epoch)
		if d.Window() != tc.wantStart {
			t.Errorf("NewDynamicWindow(%d, %d, %d).Window() = %d, want %d",
				tc.start, tc.max, tc.epoch, d.Window(), tc.wantStart)
		}
	}
}

func TestOptimalWindowSized(t *testing.T) {
	base := OptimalWindow(WorkloadRead, 100, 1, 128)
	if w := OptimalWindowSized(WorkloadRead, 100, 1, 128, 4096); w != base {
		t.Errorf("4K window = %d, want base %d", w, base)
	}
	w16 := OptimalWindowSized(WorkloadRead, 100, 1, 128, 16<<10)
	w64 := OptimalWindowSized(WorkloadRead, 100, 1, 128, 64<<10)
	w256 := OptimalWindowSized(WorkloadRead, 100, 1, 128, 256<<10)
	if !(w256 <= w64 && w64 <= w16 && w16 <= base) {
		t.Errorf("windows not monotone in size: %d %d %d %d", base, w16, w64, w256)
	}
	if w256 < 1 {
		t.Errorf("window below 1")
	}
}
