package core

import (
	"testing"

	"nvmeopf/internal/proto"
)

func TestOptimalWindowPaperFindings(t *testing.T) {
	// Fig. 6(a): 32 is the peak at 25/100 Gbps reads.
	if w := OptimalWindow(WorkloadRead, 100, 1, 128); w != 32 {
		t.Errorf("read@100G window = %d, want 32", w)
	}
	if w := OptimalWindow(WorkloadRead, 25, 1, 128); w != 32 {
		t.Errorf("read@25G window = %d, want 32", w)
	}
	// Fig. 6(b): big windows hurt on a saturated 10G link for writes.
	if w := OptimalWindow(WorkloadWrite, 10, 1, 128); w >= 32 {
		t.Errorf("write@10G window = %d, want < 32", w)
	}
	// Writes use smaller windows than reads at any speed.
	if rw, ww := OptimalWindow(WorkloadRead, 100, 1, 128), OptimalWindow(WorkloadWrite, 100, 1, 128); ww >= rw {
		t.Errorf("write window %d >= read window %d", ww, rw)
	}
}

func TestOptimalWindowNeverExceedsQD(t *testing.T) {
	for _, qd := range []int{1, 4, 16, 128} {
		for _, kind := range []WorkloadKind{WorkloadRead, WorkloadWrite, WorkloadMixed} {
			for _, gbps := range []float64{10, 25, 100} {
				w := OptimalWindow(kind, gbps, 2, qd)
				if w > qd {
					t.Errorf("window %d > QD %d (%v, %vG)", w, qd, kind, gbps)
				}
				if w < 1 {
					t.Errorf("window %d < 1", w)
				}
			}
		}
	}
}

func TestOptimalWindowShrinksUnderHeavyTenancy(t *testing.T) {
	few := OptimalWindow(WorkloadRead, 100, 2, 128)
	many := OptimalWindow(WorkloadRead, 100, 8, 128)
	if many >= few {
		t.Errorf("heavy tenancy window %d >= light %d", many, few)
	}
}

func TestWorkloadKindString(t *testing.T) {
	for _, k := range []WorkloadKind{WorkloadRead, WorkloadWrite, WorkloadMixed, WorkloadKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for %d", int(k))
		}
	}
}

func TestDynamicWindowClimbsTowardBetterThroughput(t *testing.T) {
	// Simulated environment: throughput grows with window up to 32, then
	// degrades (the Fig. 6(a) shape). The tuner should settle near 32.
	reward := func(w int) float64 {
		if w <= 32 {
			return float64(w)
		}
		return 64.0 - float64(w)
	}
	d := NewDynamicWindow(2, 64, 4)
	now := int64(0)
	for epoch := 0; epoch < 60; epoch++ {
		w := d.Window()
		// Simulate an epoch of 4 drains at this window's throughput:
		// bytes per drain proportional to reward, fixed epoch duration.
		for i := 0; i < 4; i++ {
			now += 1_000_000
			d.Observe(int64(reward(w)*1000), now)
		}
	}
	got := d.Window()
	if got < 16 || got > 64 {
		t.Fatalf("dynamic window settled at %d, want near 32", got)
	}
}

func TestDynamicWindowBounds(t *testing.T) {
	d := NewDynamicWindow(0, 0, 0) // degenerate inputs all clamp
	if d.Window() != 1 {
		t.Fatalf("window = %d", d.Window())
	}
	// Never exceeds max or drops below 1 over arbitrary observations.
	d = NewDynamicWindow(4, 16, 1)
	now := int64(0)
	for i := 0; i < 200; i++ {
		now += 1_000
		w := d.Observe(int64(i%7)*100, now)
		if w < 1 || w > 16 {
			t.Fatalf("window %d out of bounds", w)
		}
	}
}

func TestHostPMDynamicIntegration(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 8)
	d := NewDynamicWindow(8, 64, 1)
	h.EnableDynamicWindow(d)
	if h.Window() != 8 {
		t.Fatalf("window = %d", h.Window())
	}
	now := int64(0)
	prev := h.Window()
	changed := false
	for i := 0; i < 10; i++ {
		now += 1_000_000
		w := h.OnDrainCompleted(1<<20, now)
		if w != h.Window() {
			t.Fatal("OnDrainCompleted out of sync with Window()")
		}
		if w != prev {
			changed = true
		}
		prev = w
	}
	if !changed {
		t.Fatal("dynamic tuner never adjusted the window")
	}
	// Disabled tuner keeps the window fixed.
	h2 := NewHostPM(proto.PrioThroughputCritical, 8)
	if w := h2.OnDrainCompleted(1<<20, 5); w != 8 {
		t.Fatalf("static window moved to %d", w)
	}
}

func TestOptimalWindowSized(t *testing.T) {
	base := OptimalWindow(WorkloadRead, 100, 1, 128)
	if w := OptimalWindowSized(WorkloadRead, 100, 1, 128, 4096); w != base {
		t.Errorf("4K window = %d, want base %d", w, base)
	}
	w16 := OptimalWindowSized(WorkloadRead, 100, 1, 128, 16<<10)
	w64 := OptimalWindowSized(WorkloadRead, 100, 1, 128, 64<<10)
	w256 := OptimalWindowSized(WorkloadRead, 100, 1, 128, 256<<10)
	if !(w256 <= w64 && w64 <= w16 && w16 <= base) {
		t.Errorf("windows not monotone in size: %d %d %d %d", base, w16, w64, w256)
	}
	if w256 < 1 {
		t.Errorf("window below 1")
	}
}
