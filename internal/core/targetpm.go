package core

import (
	"fmt"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// Disposition tells the target qpair what to do with an arriving command
// (Alg. 3, "NVMe target algorithm: ready to execute request").
type Disposition int

// Disposition values.
const (
	// DispositionExecute: hand the command to the device now. Used for
	// normal/legacy requests and for latency-sensitive requests, which
	// bypass every TC queue regardless of backlog.
	DispositionExecute Disposition = iota
	// DispositionQueued: the command was absorbed into a TC queue;
	// nothing reaches the device yet.
	DispositionQueued
	// DispositionDrainBatch: the command carried the draining flag (or
	// tripped the safety valve); the caller must execute the whole
	// returned batch now.
	DispositionDrainBatch
)

// String implements fmt.Stringer.
func (d Disposition) String() string {
	switch d {
	case DispositionExecute:
		return "execute"
	case DispositionQueued:
		return "queued"
	case DispositionDrainBatch:
		return "drain-batch"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// TaggedCID is a CID qualified by its owner tenant. CIDs are only unique
// per queue pair, so any structure that can mix tenants (the shared-queue
// ablation) must carry the owner alongside.
type TaggedCID struct {
	Tenant proto.TenantID
	CID    nvme.CID
}

// RespDecision tells the target qpair whether a device completion produces
// a wire response (Alg. 4, "NVMe target algorithm: ready to complete
// request").
type RespDecision struct {
	// Send is false for suppressed completions (TC batch members whose
	// notification the drain response will cover).
	Send bool
	// Tenant that must receive the response.
	Tenant proto.TenantID
	// CID of the response (the drain request's CID for coalesced ones).
	CID nvme.CID
	// Coalesced marks the response as covering every earlier TC request
	// of the tenant (sets proto.FlagCoalesced on the wire).
	Coalesced bool
	// Status of the response. A coalesced response carries the batch's
	// first non-success status, or success.
	Status nvme.Status
}

// TargetPMConfig configures a target-side priority manager.
type TargetPMConfig struct {
	// Isolated selects one TC queue per tenant (the paper's lock-free
	// design, §IV-A). When false, a single queue is shared by every
	// tenant — the hazardous layout the paper rejects: a drain from one
	// tenant prematurely flushes the others' windows. Kept for the
	// ablation benchmark.
	Isolated bool
	// MaxPending is the per-queue safety valve: if a queue accumulates
	// this many TC requests with no drain (e.g. a lost drain flag), the
	// PM force-drains to avoid the lockup described in §IV-A. Zero
	// disables the valve.
	MaxPending int
}

// drainBatch tracks one executing TC window awaiting coalesced completion.
type drainBatch struct {
	owner     proto.TenantID // tenant whose drain (or overflow) formed the batch
	drainCID  nvme.CID
	hasDrain  bool
	size      int // window size at formation (remaining counts down)
	remaining int
	status    nvme.Status
	done      bool
	// noCoalesce disables the coalesced response for this batch. Set in
	// shared-queue mode: a drain there may flush other tenants' requests,
	// and a coalesced response can only be ordered safely against the
	// owner's own stream — with cross-tenant batches no global order
	// exists, so correctness demands per-request responses. This is the
	// §IV-A argument for isolated per-tenant queues, made executable.
	noCoalesce bool
}

// pendingQueue is one TC queue: FIFO of tagged CIDs. In isolated mode all
// entries share one tenant; in shared mode they interleave.
type pendingQueue struct {
	entries []TaggedCID
}

func (q *pendingQueue) push(e TaggedCID) { q.entries = append(q.entries, e) }
func (q *pendingQueue) depth() int       { return len(q.entries) }
func (q *pendingQueue) popAll() []TaggedCID {
	out := q.entries
	q.entries = nil
	return out
}

// TargetPM is the target-side priority manager: it decides execution order
// (computation order) and completion-notification policy for every tenant
// connected to this target (§III-A Goals 1–2).
//
// TargetPM is not synchronized. The lock-free property of the paper's
// design is structural: with Isolated=true no queue is ever shared between
// tenants, so there is nothing to contend on; the runtime drives the PM
// from its single poller loop, exactly as SPDK reactors drive per-core
// state.
type TargetPM struct {
	cfg     TargetPMConfig
	queues  map[proto.TenantID]*pendingQueue
	batches map[TaggedCID]*drainBatch
	// inflight holds each tenant's executing batches in window order.
	// Coalesced responses are released strictly in this order: a later
	// window that the out-of-order device finishes first must not be
	// announced before an earlier window, because the host replays its
	// pending queue prefix on every coalesced response (Alg. 2) and would
	// otherwise report the earlier window complete prematurely.
	inflight map[proto.TenantID][]*drainBatch
	stats    TargetPMStats
	// tel/trace are the live observability hooks. Both are optional: a
	// nil registry records nothing (its methods are nil-receiver no-ops)
	// and a nil trace skips event construction entirely.
	tel   *telemetry.Registry
	trace telemetry.TraceFunc
}

// TargetPMStats counts PM-level events for the experiments.
type TargetPMStats struct {
	LSBypassed      int64 // LS requests sent straight to execution
	TCQueued        int64 // TC requests absorbed into queues
	Drains          int64 // drain-triggered batch executions
	ForcedDrains    int64 // safety-valve executions (no drain flag)
	PrematureFlush  int64 // foreign CIDs flushed by another tenant's drain
	RespsSent       int64 // wire responses emitted
	RespsSuppressed int64 // completions absorbed by coalescing
	TeardownDrops   int64 // queued requests discarded by session teardown
}

// NewTargetPM creates a priority manager.
func NewTargetPM(cfg TargetPMConfig) *TargetPM {
	return &TargetPM{
		cfg:      cfg,
		queues:   make(map[proto.TenantID]*pendingQueue),
		batches:  make(map[TaggedCID]*drainBatch),
		inflight: make(map[proto.TenantID][]*drainBatch),
	}
}

// Stats returns a copy of the PM counters.
func (pm *TargetPM) Stats() TargetPMStats { return pm.stats }

// SetTelemetry attaches a live metrics registry (nil disables).
func (pm *TargetPM) SetTelemetry(r *telemetry.Registry) { pm.tel = r }

// SetTrace attaches a lifecycle trace hook (nil disables).
func (pm *TargetPM) SetTrace(fn telemetry.TraceFunc) { pm.trace = fn }

// key maps a tenant to its queue owner: per-tenant when isolated, one
// shared slot otherwise.
func (pm *TargetPM) key(t proto.TenantID) proto.TenantID {
	if pm.cfg.Isolated {
		return t
	}
	return 0
}

func (pm *TargetPM) queue(t proto.TenantID) *pendingQueue {
	k := pm.key(t)
	q, ok := pm.queues[k]
	if !ok {
		q = &pendingQueue{}
		pm.queues[k] = q
	}
	return q
}

// QueueDepth returns the number of pending (unexecuted) TC requests in the
// queue serving tenant t.
func (pm *TargetPM) QueueDepth(t proto.TenantID) int {
	if q, ok := pm.queues[pm.key(t)]; ok {
		return q.depth()
	}
	return 0
}

// OnCommand classifies one arriving command (Alg. 3). For
// DispositionDrainBatch, batch lists every request to execute now, in FIFO
// order, ending with the triggering command.
func (pm *TargetPM) OnCommand(t proto.TenantID, cid nvme.CID, prio proto.Priority) (d Disposition, batch []TaggedCID) {
	self := TaggedCID{Tenant: t, CID: cid}
	switch {
	case prio.Draining():
		q := pm.queue(t)
		batch = append(q.popAll(), self)
		pm.beginBatch(t, cid, true, batch)
		pm.stats.Drains++
		pm.tel.ObserveDrain(t, len(batch), false)
		pm.tel.SetQueueDepth(t, 0)
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageDrainStart, Tenant: t, CID: cid, Prio: prio, Aux: int64(len(batch))})
		}
		return DispositionDrainBatch, batch

	case prio.ThroughputCritical():
		q := pm.queue(t)
		q.push(self)
		pm.stats.TCQueued++
		pm.tel.IncTCQueued(t)
		pm.tel.SetQueueDepth(t, q.depth())
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageEnqueue, Tenant: t, CID: cid, Prio: prio, Aux: int64(q.depth())})
		}
		if pm.cfg.MaxPending > 0 && q.depth() >= pm.cfg.MaxPending {
			batch = q.popAll()
			last := batch[len(batch)-1]
			pm.beginBatch(last.Tenant, last.CID, false, batch)
			pm.stats.ForcedDrains++
			pm.tel.ObserveDrain(last.Tenant, len(batch), true)
			pm.tel.SetQueueDepth(t, 0)
			if pm.trace != nil {
				pm.trace(telemetry.Event{Stage: telemetry.StageDrainStart, Tenant: last.Tenant, CID: last.CID, Prio: prio, Aux: int64(len(batch))})
			}
			return DispositionDrainBatch, batch
		}
		return DispositionQueued, nil

	default:
		if prio.LatencySensitive() {
			pm.stats.LSBypassed++
			pm.tel.IncLSBypass(t)
		}
		return DispositionExecute, nil
	}
}

// beginBatch registers an executing window so completions can be counted.
func (pm *TargetPM) beginBatch(owner proto.TenantID, drainCID nvme.CID, hasDrain bool, members []TaggedCID) {
	b := &drainBatch{
		owner:      owner,
		drainCID:   drainCID,
		hasDrain:   hasDrain,
		size:       len(members),
		remaining:  len(members),
		status:     nvme.StatusSuccess,
		noCoalesce: !pm.cfg.Isolated,
	}
	for _, m := range members {
		pm.batches[m] = b
		if m.Tenant != owner {
			pm.stats.PrematureFlush++
		}
	}
	pm.inflight[owner] = append(pm.inflight[owner], b)
}

// OnDeviceCompletion processes one device completion (Alg. 4) and decides
// the wire response(s). LS/normal completions always respond. TC batch
// members of the batch owner are suppressed until the batch empties, then
// one coalesced response carries the drain CID. Foreign batch members
// (shared-queue mode only: another tenant's requests prematurely flushed
// by this drain) receive individual responses, because a coalesced
// response can only cover the owner's connection.
func (pm *TargetPM) OnDeviceCompletion(t proto.TenantID, cid nvme.CID, st nvme.Status) []RespDecision {
	key := TaggedCID{Tenant: t, CID: cid}
	b, ok := pm.batches[key]
	if !ok {
		// Not part of any TC batch: LS or legacy request.
		pm.stats.RespsSent++
		pm.tel.IncResponse(t, false)
		return []RespDecision{{Send: true, Tenant: t, CID: cid, Status: st}}
	}
	delete(pm.batches, key)
	b.remaining--

	if b.noCoalesce {
		// Shared-queue mode: every member answers individually; the
		// batch still gates releaseInOrder so pure batches of other
		// owners behind it stay ordered.
		pm.stats.RespsSent++
		pm.tel.IncResponse(t, false)
		out := []RespDecision{{Send: true, Tenant: t, CID: cid, Status: st}}
		if b.remaining == 0 {
			b.done = true
			out = append(out, pm.releaseInOrder(b.owner)...)
		}
		return out
	}

	var out []RespDecision
	if t != b.owner {
		// Premature flush victim: respond individually so the victim's
		// initiator does not hang; its coalescing benefit is lost.
		pm.stats.RespsSent++
		pm.tel.IncResponse(t, false)
		out = append(out, RespDecision{Send: true, Tenant: t, CID: cid, Status: st})
	} else {
		if !st.OK() && b.status.OK() {
			b.status = st
		}
		if b.remaining > 0 {
			// Suppressed member — which may be the drain request itself
			// when the device finished it early (out-of-order): the
			// coalesced response waits for the whole window regardless.
			pm.stats.RespsSuppressed++
			pm.tel.IncSuppressed(t)
			return []RespDecision{{Send: false}}
		}
	}
	if b.remaining == 0 {
		b.done = true
		out = append(out, pm.releaseInOrder(b.owner)...)
	}
	if len(out) == 0 {
		out = append(out, RespDecision{Send: false})
	}
	return out
}

// releaseInOrder emits coalesced responses for the tenant's completed
// windows, strictly in window order; a finished window parked behind an
// unfinished earlier one stays unannounced until its turn.
func (pm *TargetPM) releaseInOrder(owner proto.TenantID) []RespDecision {
	var out []RespDecision
	q := pm.inflight[owner]
	for len(q) > 0 && q[0].done {
		b := q[0]
		q = q[1:]
		if b.noCoalesce {
			// Members already answered individually.
			continue
		}
		// Batch complete: one response for the whole window (§III-B:
		// "instead of sending four completion requests, only one will
		// be sent").
		pm.stats.RespsSent++
		pm.tel.IncResponse(b.owner, true)
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageCoalescedNotify, Tenant: b.owner, CID: b.drainCID, Aux: int64(b.size)})
		}
		out = append(out, RespDecision{
			Send:      true,
			Tenant:    b.owner,
			CID:       b.drainCID,
			Coalesced: true,
			Status:    b.status,
		})
	}
	if len(q) == 0 {
		delete(pm.inflight, owner)
	} else {
		pm.inflight[owner] = q
	}
	return out
}

// DropTenant discards every queued (not yet executing) request owned by
// tenant t and returns their CIDs. The target calls it when the tenant's
// connection dies: a dead initiator's parked window must never reach the
// device — its drain flag will never arrive, its completions have nowhere
// to go, and in shared-queue mode its entries would sit in front of live
// tenants' requests forever. Requests already executing (members of an
// in-flight batch) are untouched; their device callbacks complete into
// the tombstoned session and keep sibling batch ordering exact.
func (pm *TargetPM) DropTenant(t proto.TenantID) []nvme.CID {
	k := pm.key(t)
	q, ok := pm.queues[k]
	if !ok || q.depth() == 0 {
		return nil
	}
	var dropped []nvme.CID
	if pm.cfg.Isolated {
		// The whole queue belongs to t.
		for _, e := range q.popAll() {
			dropped = append(dropped, e.CID)
		}
		delete(pm.queues, k)
	} else {
		// Shared-queue ablation: filter t's entries, keep the others in
		// FIFO order.
		kept := q.entries[:0]
		for _, e := range q.entries {
			if e.Tenant == t {
				dropped = append(dropped, e.CID)
			} else {
				kept = append(kept, e)
			}
		}
		q.entries = kept
	}
	pm.stats.TeardownDrops += int64(len(dropped))
	pm.tel.SetQueueDepth(t, 0)
	return dropped
}

// OutstandingBatchCIDs returns how many executing TC requests have not yet
// completed (diagnostic/test hook).
func (pm *TargetPM) OutstandingBatchCIDs() int { return len(pm.batches) }
