package core

import (
	"fmt"
	"sort"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// Disposition tells the target qpair what to do with an arriving command
// (Alg. 3, "NVMe target algorithm: ready to execute request").
type Disposition int

// Disposition values.
const (
	// DispositionExecute: hand the command to the device now. Used for
	// normal/legacy requests and for latency-sensitive requests, which
	// bypass every TC queue regardless of backlog.
	DispositionExecute Disposition = iota
	// DispositionQueued: the command was absorbed into a TC queue;
	// nothing reaches the device yet.
	DispositionQueued
	// DispositionDrainBatch: the command carried the draining flag (or
	// tripped the safety valve); the caller must execute the whole
	// returned batch now.
	DispositionDrainBatch
)

// String implements fmt.Stringer.
func (d Disposition) String() string {
	switch d {
	case DispositionExecute:
		return "execute"
	case DispositionQueued:
		return "queued"
	case DispositionDrainBatch:
		return "drain-batch"
	default:
		return fmt.Sprintf("Disposition(%d)", int(d))
	}
}

// TaggedCID is a CID qualified by its owner tenant. CIDs are only unique
// per queue pair, so any structure that can mix tenants (the shared-queue
// ablation) must carry the owner alongside.
type TaggedCID struct {
	Tenant proto.TenantID
	CID    nvme.CID
}

// RespDecision tells the target qpair whether a device completion produces
// a wire response (Alg. 4, "NVMe target algorithm: ready to complete
// request").
type RespDecision struct {
	// Send is false for suppressed completions (TC batch members whose
	// notification the drain response will cover).
	Send bool
	// Tenant that must receive the response.
	Tenant proto.TenantID
	// CID of the response (the drain request's CID for coalesced ones).
	CID nvme.CID
	// Coalesced marks the response as covering every earlier TC request
	// of the tenant (sets proto.FlagCoalesced on the wire).
	Coalesced bool
	// Status of the response. A coalesced response carries the batch's
	// first non-success status, or success.
	Status nvme.Status
}

// TargetPMConfig configures a target-side priority manager.
type TargetPMConfig struct {
	// Isolated selects one TC queue per tenant (the paper's lock-free
	// design, §IV-A). When false, a single queue is shared by every
	// tenant — the hazardous layout the paper rejects: a drain from one
	// tenant prematurely flushes the others' windows. Kept for the
	// ablation benchmark.
	Isolated bool
	// MaxPending is the per-queue safety valve: if a queue accumulates
	// this many TC requests with no drain (e.g. a lost drain flag), the
	// PM force-drains to avoid the lockup described in §IV-A. Zero
	// disables the valve.
	MaxPending int

	// MaxPendingPerTenant caps how many requests one tenant may have
	// pending (admitted but not yet completed) at the target, any class.
	// Past the cap Admit refuses and the target answers StatusBusy
	// instead of buffering unboundedly. Zero disables the per-tenant cap.
	MaxPendingPerTenant int
	// MaxPendingGlobal caps pending requests across all tenants. Zero
	// disables the global cap.
	MaxPendingGlobal int
	// LSHeadroom reserves this many of the global cap's slots for
	// latency-sensitive requests: non-LS admission stops at
	// MaxPendingGlobal-LSHeadroom, so a TC flood cannot starve LS
	// admission. Ignored when MaxPendingGlobal is zero.
	LSHeadroom int
	// ScavengerHeadroom reserves additional global slots that scavenger
	// requests may never take: scavenger admission stops at
	// MaxPendingGlobal-LSHeadroom-ScavengerHeadroom, so background floods
	// yield global capacity to LS and TC before the LSHeadroom check even
	// applies. Ignored when MaxPendingGlobal is zero.
	ScavengerHeadroom int

	// Clock supplies monotonic time for the drain watchdog (nanoseconds;
	// virtual clocks work too — only differences matter). Nil disables
	// the watchdog regardless of WatchdogNS.
	Clock func() int64
	// WatchdogNS is the drain watchdog deadline: a TC queue whose oldest
	// parked request has waited this long with no draining flag is
	// force-drained by ExpireStale (host crashed or went silent
	// mid-window). Zero disables the watchdog.
	WatchdogNS int64
	// ScavengerAgingNS bounds scavenger starvation: a parked scavenger
	// queue whose oldest request has waited this long is force-drained by
	// PollScavenger even while LS/TC traffic is still pending, so
	// continuous foreground load can delay background work but never
	// park it forever. Needs Clock; zero disables aging (scavenger then
	// drains only on leftover capacity).
	ScavengerAgingNS int64
	// ScavengerChunk caps how many requests one scavenger drain releases
	// to the device at once (zero: DefaultScavengerChunk). Leftover
	// capacity is momentary — an instant with no LS request pending — so
	// dumping a deep best-effort backlog into the device in one batch
	// would make the next LS arrival queue behind it inside the device,
	// defeating the class's whole point. Small chunks keep device-level
	// interference bounded; the remainder drains on subsequent polls
	// (every dispatch and completion re-polls, so an idle target still
	// clears a backlog quickly).
	ScavengerChunk int
}

// DefaultScavengerChunk is the scavenger drain batch bound when
// TargetPMConfig.ScavengerChunk is zero.
const DefaultScavengerChunk = 4

// DrainCompletion describes one TC window whose device work has fully
// completed and released (in window order). The drain hook receives it so a
// feedback controller (internal/autotune) can re-evaluate the tenant's
// window and caps once per drain epoch — the cadence QWin-style tuners
// decide at, and the only point where a whole window's occupancy is known.
type DrainCompletion struct {
	// Tenant owning the completed window.
	Tenant proto.TenantID
	// Window is the batch size at formation (the achieved occupancy).
	Window int
	// Forced marks a window released by the safety valve or watchdog
	// rather than a draining flag.
	Forced bool
	// Queued is the tenant's parked (unexecuted) request count at release.
	Queued int
	// Pending is the tenant's admitted-but-uncompleted request count.
	Pending int
	// Scavenger marks a best-effort window. Controllers must treat it as
	// a free-capacity signal, never a burn/fill signal: scavenger windows
	// drain from leftover capacity by design, so their occupancy says
	// nothing about foreground pressure.
	Scavenger bool
}

// drainBatch tracks one executing TC window awaiting coalesced completion.
type drainBatch struct {
	owner     proto.TenantID // tenant whose drain (or overflow) formed the batch
	drainCID  nvme.CID
	hasDrain  bool
	size      int // window size at formation (remaining counts down)
	remaining int
	status    nvme.Status
	done      bool
	// noCoalesce disables the coalesced response for this batch. Set in
	// shared-queue mode: a drain there may flush other tenants' requests,
	// and a coalesced response can only be ordered safely against the
	// owner's own stream — with cross-tenant batches no global order
	// exists, so correctness demands per-request responses. This is the
	// §IV-A argument for isolated per-tenant queues, made executable.
	noCoalesce bool
	// scavenger marks a best-effort window (propagated to the drain hook).
	scavenger bool
}

// pendingQueue is one TC queue: FIFO of tagged CIDs. In isolated mode all
// entries share one tenant; in shared mode they interleave. firstAt is the
// clock reading when the queue went non-empty — the drain watchdog's
// deadline anchors there.
type pendingQueue struct {
	entries []TaggedCID
	firstAt int64
}

func (q *pendingQueue) push(e TaggedCID) { q.entries = append(q.entries, e) }
func (q *pendingQueue) depth() int       { return len(q.entries) }
func (q *pendingQueue) popAll() []TaggedCID {
	out := q.entries
	q.entries = nil
	q.firstAt = 0
	return out
}

// popN removes and returns the first n entries (all of them when n covers
// the queue). When entries remain, their aging anchor restarts at now: the
// drained chunk consumed this deadline, and the remainder earns its own.
func (q *pendingQueue) popN(n int, now int64) []TaggedCID {
	if n >= len(q.entries) {
		return q.popAll()
	}
	out := q.entries[:n:n]
	q.entries = q.entries[n:]
	q.firstAt = now
	return out
}

// TargetPM is the target-side priority manager: it decides execution order
// (computation order) and completion-notification policy for every tenant
// connected to this target (§III-A Goals 1–2).
//
// TargetPM is not synchronized. The lock-free property of the paper's
// design is structural: with Isolated=true no queue is ever shared between
// tenants, so there is nothing to contend on; the runtime drives the PM
// from its single poller loop, exactly as SPDK reactors drive per-core
// state.
type TargetPM struct {
	cfg     TargetPMConfig
	queues  map[proto.TenantID]*pendingQueue
	batches map[TaggedCID]*drainBatch
	// scavQueues holds the per-tenant scavenger (best-effort) queues.
	// Always keyed per tenant — even in the shared-queue ablation — so a
	// scavenger drain can never flush foreign requests and its coalesced
	// response stays safely ordered against the owner's own stream.
	scavQueues map[proto.TenantID]*pendingQueue
	// inflight holds each tenant's executing batches in window order.
	// Coalesced responses are released strictly in this order: a later
	// window that the out-of-order device finishes first must not be
	// announced before an earlier window, because the host replays its
	// pending queue prefix on every coalesced response (Alg. 2) and would
	// otherwise report the earlier window complete prematurely.
	inflight map[proto.TenantID][]*drainBatch
	// pending counts admitted-but-uncompleted requests per tenant (all
	// classes) for admission control; pendingTotal is their sum.
	pending      map[proto.TenantID]int
	pendingTotal int
	// lsPending counts admitted-but-uncompleted latency-sensitive
	// requests and tcParked counts parked (queued, unexecuted) TC
	// requests across all queues: scavenger queues drain leftover
	// capacity only while both are zero. scavInFlight counts scavenger
	// batch members handed to the device and not yet completed — the
	// idle path releases a new chunk only when it is zero, so background
	// work in service never stacks deeper than one chunk and an LS
	// arrival always finds device capacity free.
	lsPending    int
	tcParked     int
	scavInFlight int
	stats        TargetPMStats
	// tel/trace are the live observability hooks. Both are optional: a
	// nil registry records nothing (its methods are nil-receiver no-ops)
	// and a nil trace skips event construction entirely.
	tel   *telemetry.Registry
	trace telemetry.TraceFunc

	// drainHook fires once per completed window (see SetDrainHook).
	drainHook func(DrainCompletion)
	// winOv/capOv are per-tenant overrides a controller may set at run
	// time, tightening (never loosening) the configured MaxPending valve
	// and MaxPendingPerTenant cap. Zero means "no override" — paged
	// fixed-size arrays covering the full uint16 TenantID space, so the
	// hot-path lookups cost two indexes (no map probe) and an idle
	// controller leaves behavior bit-identical to the static
	// configuration.
	winOv tenantVals
	capOv tenantVals
}

// tenantVals is a sparse per-tenant int32 table covering all 65536
// possible TenantIDs as lazily allocated 256-entry pages. The PM runs
// single-threaded on its reactor, so plain (non-atomic) pointers and
// loads suffice; an untouched page reads as zero without allocating.
// This replaces the former [256]int32 arrays whose direct indexing by a
// uint16 TenantID panicked the reactor for tenant IDs >= 256.
type tenantVals struct {
	pages [256]*[256]int32
}

func (v *tenantVals) get(t proto.TenantID) int32 {
	pg := v.pages[t>>8]
	if pg == nil {
		return 0
	}
	return pg[t&0xff]
}

func (v *tenantVals) set(t proto.TenantID, x int32) {
	pg := v.pages[t>>8]
	if pg == nil {
		if x == 0 {
			return
		}
		pg = new([256]int32)
		v.pages[t>>8] = pg
	}
	pg[t&0xff] = x
}

// TargetPMStats counts PM-level events for the experiments.
type TargetPMStats struct {
	LSBypassed      int64 // LS requests sent straight to execution
	TCQueued        int64 // TC requests absorbed into queues
	Drains          int64 // drain-triggered batch executions
	ForcedDrains    int64 // safety-valve executions (no drain flag)
	PrematureFlush  int64 // foreign CIDs flushed by another tenant's drain
	RespsSent       int64 // wire responses emitted
	RespsSuppressed int64 // completions absorbed by coalescing
	TeardownDrops   int64 // queued requests discarded by session teardown
	BusyRejections  int64 // requests refused admission with StatusBusy
	WatchdogDrains  int64 // of ForcedDrains, those fired by the drain watchdog
	ScavQueued      int64 // scavenger requests absorbed into best-effort queues
	ScavDrains      int64 // scavenger windows released (leftover capacity or aging)
	ScavAgedDrains  int64 // of ScavDrains, those forced by the aging bound
}

// Accumulate adds o's counters into s. A sharded target runs one PM per
// reactor shard; the serving layer merges the per-shard counters through
// this when reporting target-wide stats.
func (s *TargetPMStats) Accumulate(o TargetPMStats) {
	s.LSBypassed += o.LSBypassed
	s.TCQueued += o.TCQueued
	s.Drains += o.Drains
	s.ForcedDrains += o.ForcedDrains
	s.PrematureFlush += o.PrematureFlush
	s.RespsSent += o.RespsSent
	s.RespsSuppressed += o.RespsSuppressed
	s.TeardownDrops += o.TeardownDrops
	s.BusyRejections += o.BusyRejections
	s.WatchdogDrains += o.WatchdogDrains
	s.ScavQueued += o.ScavQueued
	s.ScavDrains += o.ScavDrains
	s.ScavAgedDrains += o.ScavAgedDrains
}

// NewTargetPM creates a priority manager.
func NewTargetPM(cfg TargetPMConfig) *TargetPM {
	return &TargetPM{
		cfg:        cfg,
		queues:     make(map[proto.TenantID]*pendingQueue),
		batches:    make(map[TaggedCID]*drainBatch),
		scavQueues: make(map[proto.TenantID]*pendingQueue),
		inflight:   make(map[proto.TenantID][]*drainBatch),
		pending:    make(map[proto.TenantID]int),
	}
}

// Stats returns a copy of the PM counters.
func (pm *TargetPM) Stats() TargetPMStats { return pm.stats }

// SetTelemetry attaches a live metrics registry (nil disables).
func (pm *TargetPM) SetTelemetry(r *telemetry.Registry) { pm.tel = r }

// SetTrace attaches a lifecycle trace hook (nil disables).
func (pm *TargetPM) SetTrace(fn telemetry.TraceFunc) { pm.trace = fn }

// SetDrainHook attaches a function invoked once per TC window whose device
// work has fully completed, at in-order release (nil disables). The hook
// runs on the PM's own execution context (the reactor) and may call the
// Set*/Reset* control methods re-entrantly.
func (pm *TargetPM) SetDrainHook(fn func(DrainCompletion)) { pm.drainHook = fn }

// SetTenantWindow sets (w > 0) or clears (w <= 0) tenant t's drain-window
// valve override: the tenant's queue force-drains at depth w even when the
// host keeps stamping a larger window, so the effective window becomes
// min(host window, w). The override can only tighten the configured
// MaxPending valve, never loosen it.
func (pm *TargetPM) SetTenantWindow(t proto.TenantID, w int) {
	if w < 0 {
		w = 0
	}
	pm.winOv.set(t, int32(w))
}

// TenantWindow returns tenant t's valve override (0 when none).
func (pm *TargetPM) TenantWindow(t proto.TenantID) int { return int(pm.winOv.get(t)) }

// SetTenantCap sets (c > 0) or clears (c <= 0) tenant t's admission-cap
// override, tightening (never loosening) MaxPendingPerTenant for this
// tenant only.
func (pm *TargetPM) SetTenantCap(t proto.TenantID, c int) {
	if c < 0 {
		c = 0
	}
	pm.capOv.set(t, int32(c))
}

// TenantCap returns tenant t's admission-cap override (0 when none).
func (pm *TargetPM) TenantCap(t proto.TenantID) int { return int(pm.capOv.get(t)) }

// ResetTenantControls clears both of tenant t's overrides (session
// teardown: the ID may be recycled to an unrelated initiator).
func (pm *TargetPM) ResetTenantControls(t proto.TenantID) {
	pm.winOv.set(t, 0)
	pm.capOv.set(t, 0)
}

// valveFor returns the effective force-drain valve for a request arriving
// from tenant t: the tighter of the configured MaxPending and the tenant's
// override (0 disables).
func (pm *TargetPM) valveFor(t proto.TenantID) int {
	v := pm.cfg.MaxPending
	if o := int(pm.winOv.get(t)); o > 0 && (v == 0 || o < v) {
		return o
	}
	return v
}

// capFor returns tenant t's effective pending-request cap: the tighter of
// MaxPendingPerTenant and the tenant's override (0 disables).
func (pm *TargetPM) capFor(t proto.TenantID) int {
	c := pm.cfg.MaxPendingPerTenant
	if o := int(pm.capOv.get(t)); o > 0 && (c == 0 || o < c) {
		return o
	}
	return c
}

// key maps a tenant to its queue owner: per-tenant when isolated, one
// shared slot otherwise.
func (pm *TargetPM) key(t proto.TenantID) proto.TenantID {
	if pm.cfg.Isolated {
		return t
	}
	return 0
}

func (pm *TargetPM) queue(t proto.TenantID) *pendingQueue {
	k := pm.key(t)
	q, ok := pm.queues[k]
	if !ok {
		q = &pendingQueue{}
		pm.queues[k] = q
	}
	return q
}

// QueueDepth returns the number of pending (unexecuted) TC requests in the
// queue serving tenant t.
func (pm *TargetPM) QueueDepth(t proto.TenantID) int {
	if q, ok := pm.queues[pm.key(t)]; ok {
		return q.depth()
	}
	return 0
}

// scavQueue returns tenant t's scavenger queue, creating it on first use.
// Scavenger queues are always per-tenant (never shared), see scavQueues.
func (pm *TargetPM) scavQueue(t proto.TenantID) *pendingQueue {
	q, ok := pm.scavQueues[t]
	if !ok {
		q = &pendingQueue{}
		pm.scavQueues[t] = q
	}
	return q
}

// ScavQueueDepth returns the number of parked scavenger requests tenant t
// has at this PM.
func (pm *TargetPM) ScavQueueDepth(t proto.TenantID) int {
	if q, ok := pm.scavQueues[t]; ok {
		return q.depth()
	}
	return 0
}

// LSPending returns the admitted-but-uncompleted latency-sensitive
// request count (diagnostic/test hook; part of the leftover-capacity
// condition).
func (pm *TargetPM) LSPending() int { return pm.lsPending }

// TCParked returns the parked (queued, unexecuted) TC request count
// across all queues (diagnostic/test hook; part of the leftover-capacity
// condition).
func (pm *TargetPM) TCParked() int { return pm.tcParked }

// Admit decides whether one arriving command may enter the target, and on
// success charges it against the tenant's and the global pending caps
// (undone by Release when the device completion lands or teardown drops
// the request). Rules:
//
//   - Draining requests are always admitted: rejecting a drain would wedge
//     the tenant's already-admitted parked window forever.
//   - The per-tenant cap applies to every class — one tenant must not
//     monopolize the target no matter how it labels its traffic.
//   - The global cap reserves LSHeadroom slots for latency-sensitive
//     requests: non-LS admission stops LSHeadroom slots early, so a TC
//     flood saturating the target still leaves LS tenants room to admit.
//   - Scavenger admission stops ScavengerHeadroom slots earlier still:
//     the best-effort class yields its global slots to LS and TC before
//     the LSHeadroom check, so a background flood cannot crowd either
//     foreground class out of admission.
//
// A false return means the caller must answer StatusBusy — the command was
// never executed, so the host may resubmit verbatim.
func (pm *TargetPM) Admit(t proto.TenantID, prio proto.Priority) bool {
	if !prio.Draining() {
		if limit := pm.capFor(t); limit > 0 && pm.pending[t] >= limit {
			pm.reject(t)
			return false
		}
		if g := pm.cfg.MaxPendingGlobal; g > 0 {
			limit := g
			if prio.Scavenger() {
				limit = g - pm.cfg.LSHeadroom - pm.cfg.ScavengerHeadroom
			} else if !prio.LatencySensitive() {
				limit = g - pm.cfg.LSHeadroom
			}
			if pm.pendingTotal >= limit {
				pm.reject(t)
				return false
			}
		}
	}
	pm.pending[t]++
	pm.pendingTotal++
	if prio.LatencySensitive() {
		pm.lsPending++
	}
	return true
}

func (pm *TargetPM) reject(t proto.TenantID) {
	pm.stats.BusyRejections++
	pm.tel.IncBusyRejection(t)
}

// Release returns one admitted request's slot (completion, or teardown of
// a request that never reached the device), given the wire priority the
// request was admitted with. The global decrement is tied to the
// per-tenant one, so a spurious double release cannot desynchronize
// sum(pending) from pendingTotal.
func (pm *TargetPM) Release(t proto.TenantID, prio proto.Priority) {
	if pm.pending[t] > 0 {
		pm.pending[t]--
		pm.pendingTotal--
		if pm.pending[t] == 0 {
			delete(pm.pending, t)
		}
		if prio.LatencySensitive() && pm.lsPending > 0 {
			pm.lsPending--
		}
	}
}

// PendingRequests returns tenant t's admitted-but-uncompleted request
// count.
func (pm *TargetPM) PendingRequests(t proto.TenantID) int { return pm.pending[t] }

// PendingTotal returns the admitted-but-uncompleted request count across
// all tenants.
func (pm *TargetPM) PendingTotal() int { return pm.pendingTotal }

// OnCommand classifies one arriving command (Alg. 3). For
// DispositionDrainBatch, batch lists every request to execute now, in FIFO
// order, ending with the triggering command.
func (pm *TargetPM) OnCommand(t proto.TenantID, cid nvme.CID, prio proto.Priority) (d Disposition, batch []TaggedCID) {
	self := TaggedCID{Tenant: t, CID: cid}
	switch {
	case prio.Scavenger():
		q := pm.scavQueue(t)
		if q.depth() == 0 && pm.cfg.Clock != nil {
			q.firstAt = pm.cfg.Clock()
		}
		q.push(self)
		pm.stats.ScavQueued++
		pm.tel.IncScavQueued(t)
		pm.tel.SetScavQueueDepth(t, q.depth())
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageEnqueue, Tenant: t, CID: cid, Prio: prio, Aux: int64(q.depth())})
		}
		return DispositionQueued, nil

	case prio.Draining():
		q := pm.queue(t)
		popped := q.popAll()
		pm.tcParked -= len(popped)
		batch = append(popped, self)
		pm.beginBatch(t, cid, true, false, batch)
		pm.stats.Drains++
		pm.tel.ObserveDrain(t, len(batch), false)
		pm.tel.SetQueueDepth(t, 0)
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageDrainStart, Tenant: t, CID: cid, Prio: prio, Aux: int64(len(batch))})
		}
		return DispositionDrainBatch, batch

	case prio.ThroughputCritical():
		q := pm.queue(t)
		if q.depth() == 0 && pm.cfg.Clock != nil {
			q.firstAt = pm.cfg.Clock()
		}
		q.push(self)
		pm.tcParked++
		pm.stats.TCQueued++
		pm.tel.IncTCQueued(t)
		pm.tel.SetQueueDepth(t, q.depth())
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageEnqueue, Tenant: t, CID: cid, Prio: prio, Aux: int64(q.depth())})
		}
		if valve := pm.valveFor(t); valve > 0 && q.depth() >= valve {
			batch = q.popAll()
			pm.tcParked -= len(batch)
			last := batch[len(batch)-1]
			pm.beginBatch(last.Tenant, last.CID, false, false, batch)
			pm.stats.ForcedDrains++
			pm.tel.ObserveDrain(last.Tenant, len(batch), true)
			pm.tel.SetQueueDepth(t, 0)
			if pm.trace != nil {
				pm.trace(telemetry.Event{Stage: telemetry.StageDrainStart, Tenant: last.Tenant, CID: last.CID, Prio: prio, Aux: int64(len(batch))})
			}
			return DispositionDrainBatch, batch
		}
		return DispositionQueued, nil

	default:
		if prio.LatencySensitive() {
			pm.stats.LSBypassed++
			pm.tel.IncLSBypass(t)
		}
		return DispositionExecute, nil
	}
}

// ExpireStale is the drain watchdog (needs both Clock and WatchdogNS
// configured): every TC queue whose oldest parked request has waited at
// least WatchdogNS with no draining flag is force-drained, and its batch
// returned for the caller to execute — exactly as a DispositionDrainBatch
// would be, except no triggering command exists (the batch owner is the
// last parked request). Parked requests must never wedge forever just
// because their host crashed mid-window. The runtime calls this from the
// same reactor that calls OnCommand; like the rest of the PM it is not
// synchronized.
func (pm *TargetPM) ExpireStale(now int64) [][]TaggedCID {
	if pm.cfg.Clock == nil || pm.cfg.WatchdogNS <= 0 {
		return nil
	}
	var out [][]TaggedCID
	for _, q := range pm.queues {
		if q.depth() == 0 || now-q.firstAt < pm.cfg.WatchdogNS {
			continue
		}
		batch := q.popAll()
		pm.tcParked -= len(batch)
		last := batch[len(batch)-1]
		pm.beginBatch(last.Tenant, last.CID, false, false, batch)
		pm.stats.ForcedDrains++
		pm.stats.WatchdogDrains++
		pm.tel.ObserveDrain(last.Tenant, len(batch), true)
		pm.tel.SetQueueDepth(last.Tenant, 0)
		if pm.trace != nil {
			// DrainStart keeps window correlation working; ForcedDrain
			// marks why the window released.
			pm.trace(telemetry.Event{Stage: telemetry.StageDrainStart, Tenant: last.Tenant, CID: last.CID, Aux: int64(len(batch))})
			pm.trace(telemetry.Event{Stage: telemetry.StageForcedDrain, Tenant: last.Tenant, CID: last.CID, Aux: int64(len(batch))})
		}
		out = append(out, batch)
	}
	return out
}

// PollScavenger releases parked scavenger queues, returning the batches
// to execute now (same contract as a DispositionDrainBatch). Two release
// conditions, checked per queue:
//
//   - Leftover capacity: no latency-sensitive request is pending and no
//     TC window is parked un-drained. Scavenger work then consumes only
//     capacity the foreground classes are not using.
//   - Aging: the queue's oldest request has waited ScavengerAgingNS
//     (needs Clock). Continuous foreground load can delay background
//     work, but a parked scavenger window always eventually drains.
//
// Each release is capped at ScavengerChunk requests so a deep backlog
// cannot flood the device ahead of the next foreground arrival; the
// remainder stays parked for later polls.
//
// The runtime calls this from the reactor after command dispatch and
// after device completions (the points where leftover capacity can
// appear), and from a ticker for the aging bound.
func (pm *TargetPM) PollScavenger(now int64) [][]TaggedCID {
	if len(pm.scavQueues) == 0 {
		return nil
	}
	chunk := pm.cfg.ScavengerChunk
	if chunk <= 0 {
		chunk = DefaultScavengerChunk
	}
	// Deterministic release order: oldest queue first, tenant ID as the
	// tie-break. Map iteration order would vary run to run and leak into
	// the device's jitter stream, breaking same-seed reproducibility.
	order := make([]proto.TenantID, 0, len(pm.scavQueues))
	for t, q := range pm.scavQueues {
		if q.depth() > 0 {
			order = append(order, t)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		qi, qj := pm.scavQueues[order[i]], pm.scavQueues[order[j]]
		if qi.firstAt != qj.firstAt {
			return qi.firstAt < qj.firstAt
		}
		return order[i] < order[j]
	})
	var out [][]TaggedCID
	for _, t := range order {
		q := pm.scavQueues[t]
		aged := pm.cfg.ScavengerAgingNS > 0 && pm.cfg.Clock != nil &&
			now-q.firstAt >= pm.cfg.ScavengerAgingNS
		// The idle path additionally waits for the previous chunk's device
		// work to finish (scavInFlight, charged by the beginBatch below),
		// so repeated polls during one foreground gap cannot stack chunks
		// into the device — at most one chunk is ever in service, and an
		// LS arrival always finds free device capacity. The aging path
		// skips that gate: the starvation bound outranks it.
		foregroundIdle := pm.lsPending == 0 && pm.tcParked == 0
		if !aged && !(foregroundIdle && pm.scavInFlight == 0) {
			continue
		}
		// Never more than a chunk at once: even on a fully idle target, the
		// next command could be an LS arrival, and it must not find a
		// device-deep backlog ahead of it. The remainder's aging anchor
		// restarts now (inside popN), so under continuous foreground load a
		// deep backlog drains one chunk per aging period — slow, but
		// bounded, which is all best-effort promises.
		batch := q.popN(chunk, now)
		last := batch[len(batch)-1]
		pm.beginBatch(t, last.CID, false, true, batch)
		pm.stats.ScavDrains++
		forced := aged && !foregroundIdle
		if forced {
			pm.stats.ScavAgedDrains++
		}
		pm.tel.ObserveScavDrain(t, forced)
		pm.tel.SetScavQueueDepth(t, q.depth())
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageDrainStart, Tenant: t, CID: last.CID, Prio: proto.PrioScavenger, Aux: int64(len(batch))})
			if forced {
				pm.trace(telemetry.Event{Stage: telemetry.StageForcedDrain, Tenant: t, CID: last.CID, Prio: proto.PrioScavenger, Aux: int64(len(batch))})
			}
		}
		out = append(out, batch)
	}
	return out
}

// beginBatch registers an executing window so completions can be counted.
func (pm *TargetPM) beginBatch(owner proto.TenantID, drainCID nvme.CID, hasDrain, scavenger bool, members []TaggedCID) {
	b := &drainBatch{
		owner:     owner,
		drainCID:  drainCID,
		hasDrain:  hasDrain,
		size:      len(members),
		remaining: len(members),
		status:    nvme.StatusSuccess,
		// Scavenger batches always coalesce: their queues are per-tenant
		// even in the shared-queue ablation, so the ordering hazard that
		// forces per-request responses there cannot arise.
		noCoalesce: !pm.cfg.Isolated && !scavenger,
		scavenger:  scavenger,
	}
	if scavenger {
		pm.scavInFlight += len(members)
	}
	for _, m := range members {
		pm.batches[m] = b
		if m.Tenant != owner {
			pm.stats.PrematureFlush++
		}
	}
	pm.inflight[owner] = append(pm.inflight[owner], b)
}

// OnDeviceCompletion processes one device completion (Alg. 4) and decides
// the wire response(s). LS/normal completions always respond. TC batch
// members of the batch owner are suppressed until the batch empties, then
// one coalesced response carries the drain CID. Foreign batch members
// (shared-queue mode only: another tenant's requests prematurely flushed
// by this drain) receive individual responses, because a coalesced
// response can only cover the owner's connection.
func (pm *TargetPM) OnDeviceCompletion(t proto.TenantID, cid nvme.CID, st nvme.Status) []RespDecision {
	key := TaggedCID{Tenant: t, CID: cid}
	b, ok := pm.batches[key]
	if !ok {
		// Not part of any TC batch: LS or legacy request.
		pm.stats.RespsSent++
		pm.tel.IncResponse(t, false)
		return []RespDecision{{Send: true, Tenant: t, CID: cid, Status: st}}
	}
	delete(pm.batches, key)
	b.remaining--
	if b.scavenger && pm.scavInFlight > 0 {
		pm.scavInFlight--
	}

	if b.noCoalesce {
		// Shared-queue mode: every member answers individually; the
		// batch still gates releaseInOrder so pure batches of other
		// owners behind it stay ordered.
		pm.stats.RespsSent++
		pm.tel.IncResponse(t, false)
		out := []RespDecision{{Send: true, Tenant: t, CID: cid, Status: st}}
		if b.remaining == 0 {
			b.done = true
			out = append(out, pm.releaseInOrder(b.owner)...)
		}
		return out
	}

	var out []RespDecision
	if t != b.owner {
		// Premature flush victim: respond individually so the victim's
		// initiator does not hang; its coalescing benefit is lost.
		pm.stats.RespsSent++
		pm.tel.IncResponse(t, false)
		out = append(out, RespDecision{Send: true, Tenant: t, CID: cid, Status: st})
	} else {
		if !st.OK() && b.status.OK() {
			b.status = st
		}
		if b.remaining > 0 {
			// Suppressed member — which may be the drain request itself
			// when the device finished it early (out-of-order): the
			// coalesced response waits for the whole window regardless.
			pm.stats.RespsSuppressed++
			pm.tel.IncSuppressed(t)
			return []RespDecision{{Send: false}}
		}
	}
	if b.remaining == 0 {
		b.done = true
		out = append(out, pm.releaseInOrder(b.owner)...)
	}
	if len(out) == 0 {
		out = append(out, RespDecision{Send: false})
	}
	return out
}

// releaseInOrder emits coalesced responses for the tenant's completed
// windows, strictly in window order; a finished window parked behind an
// unfinished earlier one stays unannounced until its turn.
func (pm *TargetPM) releaseInOrder(owner proto.TenantID) []RespDecision {
	var out []RespDecision
	q := pm.inflight[owner]
	for len(q) > 0 && q[0].done {
		b := q[0]
		q = q[1:]
		if pm.drainHook != nil {
			pm.drainHook(DrainCompletion{
				Tenant:    b.owner,
				Window:    b.size,
				Forced:    !b.hasDrain,
				Queued:    pm.QueueDepth(b.owner),
				Pending:   pm.pending[b.owner],
				Scavenger: b.scavenger,
			})
		}
		if b.noCoalesce {
			// Members already answered individually.
			continue
		}
		// Batch complete: one response for the whole window (§III-B:
		// "instead of sending four completion requests, only one will
		// be sent").
		pm.stats.RespsSent++
		pm.tel.IncResponse(b.owner, true)
		if pm.trace != nil {
			pm.trace(telemetry.Event{Stage: telemetry.StageCoalescedNotify, Tenant: b.owner, CID: b.drainCID, Aux: int64(b.size)})
		}
		out = append(out, RespDecision{
			Send:      true,
			Tenant:    b.owner,
			CID:       b.drainCID,
			Coalesced: true,
			Status:    b.status,
		})
	}
	if len(q) == 0 {
		delete(pm.inflight, owner)
	} else {
		pm.inflight[owner] = q
	}
	return out
}

// DropTenant discards every queued (not yet executing) request owned by
// tenant t and returns their CIDs. The target calls it when the tenant's
// connection dies: a dead initiator's parked window must never reach the
// device — its drain flag will never arrive, its completions have nowhere
// to go, and in shared-queue mode its entries would sit in front of live
// tenants' requests forever. Requests already executing (members of an
// in-flight batch) are untouched; their device callbacks complete into
// the tombstoned session and keep sibling batch ordering exact.
func (pm *TargetPM) DropTenant(t proto.TenantID) []nvme.CID {
	var dropped []nvme.CID
	k := pm.key(t)
	if q, ok := pm.queues[k]; ok && q.depth() > 0 {
		if pm.cfg.Isolated {
			// The whole queue belongs to t.
			for _, e := range q.popAll() {
				dropped = append(dropped, e.CID)
			}
			delete(pm.queues, k)
		} else {
			// Shared-queue ablation: filter t's entries, keep the others
			// in FIFO order.
			kept := q.entries[:0]
			for _, e := range q.entries {
				if e.Tenant == t {
					dropped = append(dropped, e.CID)
				} else {
					kept = append(kept, e)
				}
			}
			q.entries = kept
		}
		pm.tcParked -= len(dropped)
	}
	// A dead tenant's parked scavenger window must not linger either: its
	// drain would complete into a torn-down session. Scavenger queues are
	// always per-tenant, so the whole queue goes.
	if q, ok := pm.scavQueues[t]; ok {
		for _, e := range q.popAll() {
			dropped = append(dropped, e.CID)
		}
		delete(pm.scavQueues, t)
		pm.tel.SetScavQueueDepth(t, 0)
	}
	if len(dropped) == 0 {
		return nil
	}
	pm.stats.TeardownDrops += int64(len(dropped))
	pm.tel.SetQueueDepth(t, 0)
	return dropped
}

// OutstandingBatchCIDs returns how many executing TC requests have not yet
// completed (diagnostic/test hook).
func (pm *TargetPM) OutstandingBatchCIDs() int { return len(pm.batches) }
