package core

// WorkloadKind classifies a workload for window-size selection (§IV-D:
// "workload type, initiator concurrency, TC/LS ratio").
type WorkloadKind int

// Workload kinds.
const (
	WorkloadRead WorkloadKind = iota
	WorkloadWrite
	WorkloadMixed
)

// String implements fmt.Stringer.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadRead:
		return "read"
	case WorkloadWrite:
		return "write"
	case WorkloadMixed:
		return "mixed"
	default:
		return "unknown"
	}
}

// OptimalWindow returns the static window-size selection of §IV-D,
// encoding the experimental findings of §V-A:
//
//   - 32 is the sweet spot for 25/100 Gbps (Fig. 6(a): "NVMe-oPF achieves
//     a peak throughput at a window size of 32 over 25/100 Gbps").
//   - Very large windows (64) hurt on a saturated 10 Gbps fabric because
//     the deferred completion sits behind a congested link (Fig. 6(b)).
//   - Write-heavy windows are kept smaller: write service times are long
//     and variable, so large windows inflate drain-response waiting
//     (§V-B discussion of mixed workloads).
//   - The window never exceeds the queue depth, or the initiator could
//     never have a full window outstanding (§IV-A lockup analysis).
//
// gbps is the fabric line rate in Gbit/s, tcInitiators the number of
// concurrent TC tenants per target, and qd the per-initiator queue depth.
func OptimalWindow(kind WorkloadKind, gbps float64, tcInitiators, qd int) int {
	w := 32
	if gbps <= 10 {
		// Congested fabric: smaller windows keep the drain response
		// flowing; reads still coalesce well, writes gain nothing from
		// deep windows because the inbound direction is the bottleneck.
		if kind == WorkloadRead {
			w = 32
		} else {
			w = 16
		}
	} else if kind == WorkloadWrite {
		w = 16
	}
	if tcInitiators > 4 {
		// Heavy multi-tenancy: shrink per-tenant windows so the device
		// interleaves tenants at a finer grain.
		w /= 2
	}
	if qd > 0 && w > qd {
		w = qd
	}
	if w < 1 {
		w = 1
	}
	return w
}

// OptimalWindowSized refines OptimalWindow with the I/O size (the third
// §IV-D input): completion-notification overhead is per request, so the
// coalescing benefit — and therefore the window worth paying drain
// latency for — shrinks as per-request payloads grow. Large I/O also
// saturates the fabric with fewer requests, making deep windows pure
// added latency.
func OptimalWindowSized(kind WorkloadKind, gbps float64, tcInitiators, qd, ioBytes int) int {
	w := OptimalWindow(kind, gbps, tcInitiators, qd)
	switch {
	case ioBytes >= 256<<10:
		w = minInt(w, 4)
	case ioBytes >= 64<<10:
		w = minInt(w, 8)
	case ioBytes >= 16<<10:
		w = minInt(w, 16)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DynamicWindow is the runtime tuner of §IV-D: after each drain
// completion the initiator may adjust its window. The tuner is a simple
// hill climber over the discrete ladder {1,2,4,...,maxWindow}: it measures
// throughput per epoch (a fixed number of drains), and moves the window up
// or down a rung depending on whether the last move helped.
type DynamicWindow struct {
	window     int
	maxWindow  int
	drainsPer  int // drains per measurement epoch
	drains     int
	bytes      int64
	epochStart int64
	lastRate   float64
	direction  int // +1 growing, -1 shrinking
}

// NewDynamicWindow creates a tuner starting at startWindow, bounded by
// maxWindow, measuring every epochDrains drain completions.
func NewDynamicWindow(startWindow, maxWindow, epochDrains int) *DynamicWindow {
	if startWindow < 1 {
		startWindow = 1
	}
	if maxWindow < startWindow {
		maxWindow = startWindow
	}
	if epochDrains < 1 {
		epochDrains = 1
	}
	return &DynamicWindow{
		window:    startWindow,
		maxWindow: maxWindow,
		drainsPer: epochDrains,
		direction: +1,
	}
}

// Window returns the current window size.
func (d *DynamicWindow) Window() int { return d.window }

// Observe records one drain completion that moved bytesMoved bytes, at
// timestamp now (nanoseconds, any monotonic base). Every epoch it compares
// achieved throughput with the previous epoch and climbs accordingly,
// returning the window to use next.
func (d *DynamicWindow) Observe(bytesMoved int64, now int64) int {
	if d.drains == 0 && d.epochStart == 0 {
		d.epochStart = now
	}
	d.drains++
	d.bytes += bytesMoved
	if d.drains < d.drainsPer {
		return d.window
	}
	elapsed := now - d.epochStart
	var rate float64
	if elapsed > 0 {
		rate = float64(d.bytes) / float64(elapsed)
	}
	if d.lastRate > 0 {
		if rate < d.lastRate*0.98 {
			// The last move hurt (or load shifted): reverse.
			d.direction = -d.direction
		}
		// else: keep climbing in the same direction.
	}
	d.step()
	d.lastRate = rate
	d.drains = 0
	d.bytes = 0
	d.epochStart = now
	return d.window
}

// step moves one rung on the power-of-two ladder in the current direction.
func (d *DynamicWindow) step() {
	if d.direction > 0 {
		if d.window*2 <= d.maxWindow {
			d.window *= 2
		} else {
			d.direction = -1
		}
	} else {
		if d.window/2 >= 1 {
			d.window /= 2
		} else {
			d.direction = +1
		}
	}
}
