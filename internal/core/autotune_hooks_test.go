package core

import (
	"testing"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// The tests below pin the controller-facing PM surface added for
// internal/autotune: per-tenant valve/cap overrides and the drain hook.

func TestTenantWindowValveForcesDrain(t *testing.T) {
	pm := isolatedPM() // MaxPending 256
	pm.SetTenantWindow(1, 4)
	if pm.TenantWindow(1) != 4 {
		t.Fatalf("TenantWindow = %d, want 4", pm.TenantWindow(1))
	}
	for i := 0; i < 3; i++ {
		d, _ := pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
		if d != DispositionQueued {
			t.Fatalf("request %d disposition = %v, want queued", i, d)
		}
	}
	d, batch := pm.OnCommand(1, 3, proto.PrioThroughputCritical)
	if d != DispositionDrainBatch || len(batch) != 4 {
		t.Fatalf("valve drain: disposition = %v, batch = %v", d, batch)
	}
	if pm.Stats().ForcedDrains != 1 {
		t.Fatalf("ForcedDrains = %d, want 1", pm.Stats().ForcedDrains)
	}
	// Other tenants are untouched by tenant 1's override.
	for i := 0; i < 10; i++ {
		if d, _ := pm.OnCommand(2, nvme.CID(100+i), proto.PrioThroughputCritical); d != DispositionQueued {
			t.Fatalf("tenant 2 request %d disposition = %v", i, d)
		}
	}
}

func TestTenantWindowOverrideOnlyTightens(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 4})
	// An override looser than the configured valve must not loosen it.
	pm.SetTenantWindow(1, 1000)
	for i := 0; i < 3; i++ {
		pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
	}
	d, batch := pm.OnCommand(1, 3, proto.PrioThroughputCritical)
	if d != DispositionDrainBatch || len(batch) != 4 {
		t.Fatalf("configured valve ignored: disposition = %v, batch = %v", d, batch)
	}
}

func TestTenantWindowOverrideClears(t *testing.T) {
	pm := isolatedPM()
	pm.SetTenantWindow(1, 2)
	pm.SetTenantWindow(1, 0)
	for i := 0; i < 8; i++ {
		if d, _ := pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical); d != DispositionQueued {
			t.Fatalf("request %d disposition = %v after clear, want queued", i, d)
		}
	}
	// Negative is normalized to "no override".
	pm.SetTenantWindow(1, -5)
	if pm.TenantWindow(1) != 0 {
		t.Fatalf("TenantWindow after negative set = %d, want 0", pm.TenantWindow(1))
	}
}

func TestTenantCapOverrideAdmission(t *testing.T) {
	pm := isolatedPM() // MaxPendingPerTenant 0 (off)
	pm.SetTenantCap(1, 2)
	if !pm.Admit(1, proto.PrioThroughputCritical) || !pm.Admit(1, proto.PrioThroughputCritical) {
		t.Fatal("first two admissions refused")
	}
	if pm.Admit(1, proto.PrioThroughputCritical) {
		t.Fatal("third admission allowed past the cap override")
	}
	// Draining requests are always admitted — rejecting one would wedge
	// the parked window.
	if !pm.Admit(1, proto.PrioTCDraining) {
		t.Fatal("draining admission refused")
	}
	// Other tenants are not capped.
	if !pm.Admit(2, proto.PrioThroughputCritical) {
		t.Fatal("tenant 2 admission refused")
	}
	// Release frees the slot.
	pm.Release(1, proto.PrioThroughputCritical)
	pm.Release(1, proto.PrioTCDraining) // the drain's slot
	if !pm.Admit(1, proto.PrioThroughputCritical) {
		t.Fatal("admission refused after release")
	}
}

func TestTenantCapOverrideOnlyTightens(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 256, MaxPendingPerTenant: 2})
	pm.SetTenantCap(1, 50) // looser than configured: configured wins
	pm.Admit(1, proto.PrioThroughputCritical)
	pm.Admit(1, proto.PrioThroughputCritical)
	if pm.Admit(1, proto.PrioThroughputCritical) {
		t.Fatal("configured per-tenant cap ignored")
	}
}

func TestResetTenantControls(t *testing.T) {
	pm := isolatedPM()
	pm.SetTenantWindow(1, 4)
	pm.SetTenantCap(1, 8)
	pm.ResetTenantControls(1)
	if pm.TenantWindow(1) != 0 || pm.TenantCap(1) != 0 {
		t.Fatalf("controls after reset = (%d, %d), want cleared",
			pm.TenantWindow(1), pm.TenantCap(1))
	}
}

func TestDrainHookFiresOnCoalescedRelease(t *testing.T) {
	pm := isolatedPM()
	var got []DrainCompletion
	pm.SetDrainHook(func(dc DrainCompletion) { got = append(got, dc) })
	for i := 0; i < 3; i++ {
		pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
	}
	pm.OnCommand(1, 3, proto.PrioTCDraining)
	if len(got) != 0 {
		t.Fatalf("hook fired at drain start: %+v", got)
	}
	for cid := 0; cid < 4; cid++ {
		pm.OnDeviceCompletion(1, nvme.CID(cid), nvme.StatusSuccess)
	}
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	dc := got[0]
	if dc.Tenant != 1 || dc.Window != 4 || dc.Forced || dc.Queued != 0 {
		t.Fatalf("completion = %+v, want tenant 1 window 4 unforced", dc)
	}
}

func TestDrainHookForcedWindow(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 2})
	var got []DrainCompletion
	pm.SetDrainHook(func(dc DrainCompletion) { got = append(got, dc) })
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	d, batch := pm.OnCommand(1, 1, proto.PrioThroughputCritical) // valve at 2
	if d != DispositionDrainBatch {
		t.Fatalf("disposition = %v, want valve drain", d)
	}
	for _, m := range batch {
		pm.OnDeviceCompletion(m.Tenant, m.CID, nvme.StatusSuccess)
	}
	if len(got) != 1 || !got[0].Forced || got[0].Window != 2 {
		t.Fatalf("completions = %+v, want one forced window of 2", got)
	}
}

func TestDrainHookWindowOrderAcrossBatches(t *testing.T) {
	pm := isolatedPM()
	var got []DrainCompletion
	pm.SetDrainHook(func(dc DrainCompletion) { got = append(got, dc) })
	// Window A: CIDs 0,1 — window B: CIDs 2,3.
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	pm.OnCommand(1, 1, proto.PrioTCDraining)
	pm.OnCommand(1, 2, proto.PrioThroughputCritical)
	pm.OnCommand(1, 3, proto.PrioTCDraining)
	// Window B finishes first: its hook must wait for A's release.
	pm.OnDeviceCompletion(1, 2, nvme.StatusSuccess)
	pm.OnDeviceCompletion(1, 3, nvme.StatusSuccess)
	if len(got) != 0 {
		t.Fatalf("hook fired out of window order: %+v", got)
	}
	pm.OnDeviceCompletion(1, 0, nvme.StatusSuccess)
	pm.OnDeviceCompletion(1, 1, nvme.StatusSuccess)
	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(got))
	}
	if got[0].Window != 2 || got[1].Window != 2 {
		t.Fatalf("windows = %+v, want both 2", got)
	}
}

func TestDrainHookReentrantControl(t *testing.T) {
	// The hook is documented to allow re-entrant Set* calls — the
	// controller actuates from inside it.
	pm := isolatedPM()
	pm.SetDrainHook(func(dc DrainCompletion) {
		pm.SetTenantWindow(dc.Tenant, 2)
		pm.SetTenantCap(dc.Tenant, 16)
	})
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	pm.OnCommand(1, 1, proto.PrioTCDraining)
	pm.OnDeviceCompletion(1, 0, nvme.StatusSuccess)
	pm.OnDeviceCompletion(1, 1, nvme.StatusSuccess)
	if pm.TenantWindow(1) != 2 || pm.TenantCap(1) != 16 {
		t.Fatalf("re-entrant controls = (%d, %d), want (2, 16)",
			pm.TenantWindow(1), pm.TenantCap(1))
	}
	// And the override takes effect on the very next window.
	pm.OnCommand(1, 10, proto.PrioThroughputCritical)
	d, batch := pm.OnCommand(1, 11, proto.PrioThroughputCritical)
	if d != DispositionDrainBatch || len(batch) != 2 {
		t.Fatalf("post-hook valve: disposition = %v, batch = %v", d, batch)
	}
}
