package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

func TestStampDrainEveryWindow(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 4)
	var drains []int
	for i := 0; i < 12; i++ {
		p := h.Stamp(nvme.CID(i))
		if p.Draining() {
			drains = append(drains, i)
		} else if p != proto.PrioThroughputCritical {
			t.Fatalf("request %d priority = %v", i, p)
		}
	}
	want := []int{3, 7, 11}
	if len(drains) != len(want) {
		t.Fatalf("drains at %v, want %v", drains, want)
	}
	for i := range want {
		if drains[i] != want[i] {
			t.Fatalf("drains at %v, want %v", drains, want)
		}
	}
	if h.Stats().DrainsInserted != 3 {
		t.Fatalf("DrainsInserted = %d", h.Stats().DrainsInserted)
	}
}

func TestStampLSNeverQueues(t *testing.T) {
	h := NewHostPM(proto.PrioLatencySensitive, 8)
	for i := 0; i < 10; i++ {
		if p := h.Stamp(nvme.CID(i)); p != proto.PrioLatencySensitive {
			t.Fatalf("LS stamp = %v", p)
		}
	}
	if h.Pending() != 0 {
		t.Fatalf("LS connection queued CIDs: %d", h.Pending())
	}
	done, err := h.OnResponse(3, false)
	if err != nil || len(done) != 1 || done[0] != 3 {
		t.Fatalf("LS response handling: %v, %v", done, err)
	}
}

func TestWindowOneMeansNoCoalescing(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 1)
	for i := 0; i < 5; i++ {
		if p := h.Stamp(nvme.CID(i)); !p.Draining() {
			t.Fatalf("window-1 request %d not draining: %v", i, p)
		}
	}
}

func TestWindowClamp(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 0)
	if h.Window() != 1 {
		t.Fatalf("window = %d", h.Window())
	}
	h.SetWindow(-3)
	if h.Window() != 1 {
		t.Fatalf("window = %d after negative SetWindow", h.Window())
	}
	h.SetWindow(64)
	if h.Window() != 64 {
		t.Fatalf("window = %d", h.Window())
	}
}

func TestCoalescedReplayCompletesInOrder(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 4)
	for i := 0; i < 4; i++ {
		h.Stamp(nvme.CID(i))
	}
	done, err := h.OnResponse(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 {
		t.Fatalf("done = %v", done)
	}
	for i, cid := range done {
		if cid != nvme.CID(i) {
			t.Fatalf("replay out of order: %v", done)
		}
	}
	if h.Pending() != 0 {
		t.Fatalf("pending = %d", h.Pending())
	}
	st := h.Stats()
	if st.CoalescedResps != 1 || st.ReplayCompleted != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoalescedReplayPartial(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 2)
	for i := 0; i < 6; i++ {
		h.Stamp(nvme.CID(i))
	}
	// First window's drain (CID 1) completes; CIDs 2..5 remain.
	done, err := h.OnResponse(1, true)
	if err != nil || len(done) != 2 {
		t.Fatalf("done = %v, err = %v", done, err)
	}
	if h.Pending() != 4 {
		t.Fatalf("pending = %d", h.Pending())
	}
}

func TestUnknownCIDResponseIsError(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 4)
	h.Stamp(0)
	if _, err := h.OnResponse(99, true); err == nil {
		t.Fatal("unknown coalesced CID accepted")
	}
	if _, err := h.OnResponse(99, false); err == nil {
		t.Fatal("unknown individual CID accepted")
	}
	// The failed responses must not perturb the pending queue.
	if h.Pending() != 1 {
		t.Fatalf("pending = %d", h.Pending())
	}
}

func TestIndividualTCResponseRemoves(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 8)
	for i := 0; i < 4; i++ {
		h.Stamp(nvme.CID(i))
	}
	// Premature-flush victim response for CID 2 (mid-queue).
	done, err := h.OnResponse(2, false)
	if err != nil || len(done) != 1 || done[0] != 2 {
		t.Fatalf("done = %v, err = %v", done, err)
	}
	// Later coalesced response for CID 3 completes 0, 1, 3.
	done, err = h.OnResponse(3, true)
	if err != nil || len(done) != 3 {
		t.Fatalf("done = %v, err = %v", done, err)
	}
}

func TestForceDrainNext(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 100)
	h.Stamp(0)
	h.ForceDrainNext()
	if p := h.Stamp(1); !p.Draining() {
		t.Fatalf("forced drain not applied: %v", p)
	}
	// Counter resets after the forced drain.
	if p := h.Stamp(2); p.Draining() {
		t.Fatal("window counter not reset after forced drain")
	}
}

func TestForceDrainNextNoopOnLS(t *testing.T) {
	h := NewHostPM(proto.PrioLatencySensitive, 4)
	h.ForceDrainNext()
	if p := h.Stamp(0); p != proto.PrioLatencySensitive {
		t.Fatalf("LS stamp = %v", p)
	}
}

// Property: for any window size and request count, pairing HostPM with
// TargetPM over a device that completes in random order delivers exactly
// one application-level completion per submitted request, in submission
// order per window.
func TestHostTargetPMEndToEndProperty(t *testing.T) {
	f := func(windowRaw, nRaw uint8, seed int64) bool {
		window := int(windowRaw%16) + 1
		n := int(nRaw%120) + 1
		rng := rand.New(rand.NewSource(seed))

		host := NewHostPM(proto.PrioThroughputCritical, window)
		pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 0})

		// Host submits n requests; target classifies them; executing
		// requests accumulate in a pool that "completes" in random order.
		var executing []TaggedCID
		for i := 0; i < n; i++ {
			cid := nvme.CID(i)
			prio := host.Stamp(cid)
			d, batch := pm.OnCommand(1, cid, prio)
			switch d {
			case DispositionExecute:
				executing = append(executing, TaggedCID{1, cid})
			case DispositionDrainBatch:
				executing = append(executing, batch...)
			}
		}
		// Flush the tail window so every request eventually executes.
		if pm.QueueDepth(1) > 0 {
			host.ForceDrainNext()
			cid := nvme.CID(n)
			prio := host.Stamp(cid)
			if !prio.Draining() {
				return false
			}
			_, batch := pm.OnCommand(1, cid, prio)
			executing = append(executing, batch...)
			n++
		}
		// Random device completion order.
		rng.Shuffle(len(executing), func(i, j int) {
			executing[i], executing[j] = executing[j], executing[i]
		})
		completed := make(map[nvme.CID]int)
		for _, m := range executing {
			for _, rd := range pm.OnDeviceCompletion(m.Tenant, m.CID, nvme.StatusSuccess) {
				if !rd.Send {
					continue
				}
				done, err := host.OnResponse(rd.CID, rd.Coalesced)
				if err != nil {
					return false
				}
				for _, c := range done {
					completed[c]++
				}
			}
		}
		// Exactly-once completion for every request.
		if len(completed) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if completed[nvme.CID(i)] != 1 {
				return false
			}
		}
		return host.Pending() == 0 && pm.OutstandingBatchCIDs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
