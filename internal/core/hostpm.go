package core

import (
	"fmt"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// HostPM is the initiator-side priority manager. It stamps outgoing
// requests with the connection's priority class, automatically inserts the
// draining flag on every window-th throughput-critical request (§III-C:
// "the NVMe-oPF initiator sends it automatically according to the desired
// window size"), tracks pending TC CIDs in submission order in a zero-copy
// queue, and replays coalesced completions (Alg. 1 and Alg. 2).
//
// The same submission-ordered pending queue is what reconciles the
// device's out-of-order completions (§IV-C): the initiator marks local
// completions in queue order, so callers observe a consistent stream even
// though the SSD finished the window in any order.
type HostPM struct {
	prio    proto.Priority // class for this connection: LS, TC, or normal
	window  int
	sinceDr int // TC requests sent since the last drain
	pending CIDQueue
	dyn     *DynamicWindow
	stats   HostPMStats
	// Observability hooks (optional; see SetTelemetry). tenant is the
	// target-assigned ID the instruments are keyed by.
	tel    *telemetry.Registry
	trace  telemetry.TraceFunc
	tenant proto.TenantID
}

// HostPMStats counts host-side PM events.
type HostPMStats struct {
	Sent            int64 // requests stamped
	DrainsInserted  int64 // draining flags auto-inserted
	CoalescedResps  int64 // coalesced responses received
	ReplayCompleted int64 // requests completed by coalesced replay
	IndividualResps int64 // per-request responses received
}

// NewHostPM creates a host PM for a connection of the given priority
// class. window is the drain window size for TC connections; it is
// ignored for LS/normal classes. window < 1 is clamped to 1 (every TC
// request drains, i.e. no coalescing).
func NewHostPM(class proto.Priority, window int) *HostPM {
	if window < 1 {
		window = 1
	}
	return &HostPM{prio: class, window: window}
}

// Class returns the connection's priority class.
func (h *HostPM) Class() proto.Priority { return h.prio }

// Window returns the current drain window size.
func (h *HostPM) Window() int { return h.window }

// SetWindow changes the drain window size at run time (§IV-D: "the window
// size can be dynamically changed during runtime after a draining request
// completion notification is received"). Values < 1 clamp to 1. The
// telemetry window gauge follows the live value, so /debug/windows stays
// current across runtime resizes, not just the SetTelemetry snapshot and
// dynamic-tuner decisions.
func (h *HostPM) SetWindow(w int) {
	if w < 1 {
		w = 1
	}
	h.window = w
	if h.tel != nil {
		h.tel.SetWindow(h.tenant, h.window)
	}
}

// EnableDynamicWindow attaches a runtime tuner that adjusts the window
// after each drain completion based on observed throughput.
func (h *HostPM) EnableDynamicWindow(d *DynamicWindow) {
	h.dyn = d
	if d != nil {
		h.window = d.Window()
	}
}

// SetTelemetry attaches the live observability hooks, keyed by the
// target-assigned tenant ID (known only after the handshake, which is why
// this is not a constructor argument). Either hook may be nil.
func (h *HostPM) SetTelemetry(tenant proto.TenantID, tel *telemetry.Registry, trace telemetry.TraceFunc) {
	h.tenant = tenant
	h.tel = tel
	h.trace = trace
	// Only the window gauge: the PM always runs in TC mode (the session
	// routes non-TC requests around it), so h.prio is not the connection
	// class — the session records that itself.
	h.tel.SetWindow(tenant, h.window)
}

// Stats returns a copy of the PM counters.
func (h *HostPM) Stats() HostPMStats { return h.stats }

// Pending returns the number of TC requests awaiting completion.
func (h *HostPM) Pending() int { return h.pending.Len() }

// SinceDrain returns the number of TC requests sent since the last
// draining flag — the size of the partial window currently parked in the
// target's queue.
func (h *HostPM) SinceDrain() int { return h.sinceDr }

// Stamp assigns the wire priority for the next request with the given CID
// (Alg. 1: set the TC flag, queue the CID, and set the draining flag on
// the window's last request). It returns the priority to put on the wire.
func (h *HostPM) Stamp(cid nvme.CID) proto.Priority {
	h.stats.Sent++
	if !h.prio.ThroughputCritical() {
		return h.prio
	}
	h.pending.Push(cid)
	h.sinceDr++
	if h.sinceDr >= h.window {
		h.sinceDr = 0
		h.stats.DrainsInserted++
		if h.trace != nil {
			h.trace(telemetry.Event{Stage: telemetry.StageDrainMark, Tenant: h.tenant, CID: cid, Prio: proto.PrioTCDraining, Aux: int64(h.window)})
		}
		return proto.PrioTCDraining
	}
	return proto.PrioThroughputCritical
}

// Track enqueues one scavenger request with the given CID and returns
// the wire priority to stamp. Scavenger requests share the TC pending
// queue (submission-ordered, replayed on coalesced responses) but never
// count toward the drain window: the host stamps no draining flag —
// scavenger drains are target-driven (leftover capacity or aging) — so
// SinceDrain stays zero and the transport's idle-drain machinery sees no
// partial window to flush.
func (h *HostPM) Track(cid nvme.CID) proto.Priority {
	h.stats.Sent++
	h.pending.Push(cid)
	return proto.PrioScavenger
}

// ForceDrainNext makes the next TC request carry the draining flag
// regardless of the window counter; callers use it to flush a tail window
// before going idle.
func (h *HostPM) ForceDrainNext() {
	if h.prio.ThroughputCritical() {
		h.sinceDr = h.window // next Stamp triggers a drain
	}
}

// DropPending empties the pending TC queue and resets the window counter,
// returning the dropped CIDs in submission order. The host session uses it
// when its transport dies: the target will never answer these CIDs, so
// keeping them queued would strand the replay logic and leak queue depth.
func (h *HostPM) DropPending() []nvme.CID {
	h.sinceDr = 0
	return h.pending.PopAll()
}

// OnResponse processes one wire response (Alg. 2). It returns the CIDs
// the application must observe as completed, in submission order. For a
// coalesced response naming CID c, that is every pending CID up to and
// including c; for individual responses it is just the named CID. An
// unknown CID is a protocol violation and returns an error.
func (h *HostPM) OnResponse(cid nvme.CID, coalesced bool) ([]nvme.CID, error) {
	if !h.prio.ThroughputCritical() {
		// LS/normal connections get one response per request and keep no
		// pending queue.
		h.stats.IndividualResps++
		return []nvme.CID{cid}, nil
	}
	if coalesced {
		done, ok := h.pending.DrainThrough(cid)
		if !ok {
			return nil, fmt.Errorf("core: coalesced response names unknown CID %d", cid)
		}
		h.stats.CoalescedResps++
		h.stats.ReplayCompleted += int64(len(done))
		return done, nil
	}
	// Individual response on a TC connection: a premature-flush victim's
	// completion (shared-queue ablation) or an error response. Remove it
	// from the pending queue wherever it sits.
	if !h.pending.Remove(cid) {
		return nil, fmt.Errorf("core: response names unknown CID %d", cid)
	}
	h.stats.IndividualResps++
	return []nvme.CID{cid}, nil
}

// OnDrainCompleted notifies the dynamic tuner (if enabled) that a window
// finished, carrying the bytes moved since the previous drain. It returns
// the window size to use next.
func (h *HostPM) OnDrainCompleted(bytesMoved int64, now int64) int {
	if h.dyn == nil {
		return h.window
	}
	prev := h.window
	h.window = h.dyn.Observe(bytesMoved, now)
	if h.window != prev {
		// The optimizer moved a rung: log the decision for
		// /debug/windows. Happens at most once per epoch — cold path.
		h.tel.RecordWindowDecision(telemetry.WindowDecision{
			Tenant:     h.tenant,
			Window:     h.window,
			PrevWindow: prev,
			Bytes:      bytesMoved,
			Source:     telemetry.SourceDynamic,
		})
	}
	return h.window
}
