package core

import (
	"testing"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

func isolatedPM() *TargetPM {
	return NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 256})
}

func TestLSBypassesQueue(t *testing.T) {
	pm := isolatedPM()
	// Deep TC backlog for tenant 1.
	for i := 0; i < 20; i++ {
		d, _ := pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
		if d != DispositionQueued {
			t.Fatalf("TC request %d disposition = %v", i, d)
		}
	}
	// LS request from tenant 2 executes immediately.
	d, batch := pm.OnCommand(2, 100, proto.PrioLatencySensitive)
	if d != DispositionExecute || batch != nil {
		t.Fatalf("LS disposition = %v, batch = %v", d, batch)
	}
	// And so does an LS request from tenant 1 itself, despite its own queue.
	d, _ = pm.OnCommand(1, 101, proto.PrioLatencySensitive)
	if d != DispositionExecute {
		t.Fatalf("same-tenant LS disposition = %v", d)
	}
	if pm.QueueDepth(1) != 20 {
		t.Fatalf("LS perturbed TC queue: %d", pm.QueueDepth(1))
	}
	if pm.Stats().LSBypassed != 2 {
		t.Fatalf("LSBypassed = %d", pm.Stats().LSBypassed)
	}
}

func TestNormalExecutesImmediately(t *testing.T) {
	pm := isolatedPM()
	d, _ := pm.OnCommand(1, 5, proto.PrioNormal)
	if d != DispositionExecute {
		t.Fatalf("normal disposition = %v", d)
	}
}

func TestDrainFlushesWholeWindow(t *testing.T) {
	pm := isolatedPM()
	for i := 0; i < 3; i++ {
		pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
	}
	d, batch := pm.OnCommand(1, 3, proto.PrioTCDraining)
	if d != DispositionDrainBatch {
		t.Fatalf("disposition = %v", d)
	}
	if len(batch) != 4 {
		t.Fatalf("batch = %v", batch)
	}
	for i, m := range batch {
		if m.CID != nvme.CID(i) || m.Tenant != 1 {
			t.Fatalf("batch order/owner broken: %v", batch)
		}
	}
	if pm.QueueDepth(1) != 0 {
		t.Fatal("queue not flushed")
	}
}

func TestCoalescedCompletionOnlyAfterWholeBatch(t *testing.T) {
	pm := isolatedPM()
	for i := 0; i < 3; i++ {
		pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
	}
	_, batch := pm.OnCommand(1, 3, proto.PrioTCDraining)
	if len(batch) != 4 {
		t.Fatal("bad batch")
	}
	// Complete out of order: 2, 0, 3 (drain), 1.
	order := []nvme.CID{2, 0, 3, 1}
	var sent []RespDecision
	for _, cid := range order {
		for _, rd := range pm.OnDeviceCompletion(1, cid, nvme.StatusSuccess) {
			if rd.Send {
				sent = append(sent, rd)
			}
		}
	}
	if len(sent) != 1 {
		t.Fatalf("responses = %+v, want exactly 1", sent)
	}
	rd := sent[0]
	if !rd.Coalesced || rd.CID != 3 || rd.Tenant != 1 || !rd.Status.OK() {
		t.Fatalf("coalesced response wrong: %+v", rd)
	}
	if pm.OutstandingBatchCIDs() != 0 {
		t.Fatal("batch tracking leaked")
	}
	st := pm.Stats()
	if st.RespsSuppressed != 3 || st.RespsSent != 1 {
		t.Fatalf("suppressed=%d sent=%d", st.RespsSuppressed, st.RespsSent)
	}
}

func TestDrainCompletingEarlyStillWaits(t *testing.T) {
	pm := isolatedPM()
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	pm.OnCommand(1, 1, proto.PrioTCDraining)
	// Device finishes the drain request first (out of order).
	rds := pm.OnDeviceCompletion(1, 1, nvme.StatusSuccess)
	if len(rds) != 1 || rds[0].Send {
		t.Fatalf("early drain completion should be suppressed: %+v", rds)
	}
	rds = pm.OnDeviceCompletion(1, 0, nvme.StatusSuccess)
	if len(rds) != 1 || !rds[0].Send || !rds[0].Coalesced || rds[0].CID != 1 {
		t.Fatalf("final completion wrong: %+v", rds)
	}
}

func TestBatchErrorStatusPropagates(t *testing.T) {
	pm := isolatedPM()
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	pm.OnCommand(1, 1, proto.PrioTCDraining)
	pm.OnDeviceCompletion(1, 0, nvme.StatusLBAOutOfRange)
	rds := pm.OnDeviceCompletion(1, 1, nvme.StatusSuccess)
	if len(rds) != 1 || !rds[0].Send {
		t.Fatal("no final response")
	}
	if rds[0].Status != nvme.StatusLBAOutOfRange {
		t.Fatalf("batch status = %v, want first member error", rds[0].Status)
	}
}

func TestLSCompletionAlwaysResponds(t *testing.T) {
	pm := isolatedPM()
	pm.OnCommand(1, 7, proto.PrioLatencySensitive)
	rds := pm.OnDeviceCompletion(1, 7, nvme.StatusSuccess)
	if len(rds) != 1 || !rds[0].Send || rds[0].Coalesced || rds[0].CID != 7 {
		t.Fatalf("LS response wrong: %+v", rds)
	}
}

func TestTenantIsolation(t *testing.T) {
	pm := isolatedPM()
	// Tenant 1 and tenant 2 queue TC requests; tenant 2's drain must not
	// flush tenant 1's queue (§IV-A: isolated queues).
	for i := 0; i < 5; i++ {
		pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
		pm.OnCommand(2, nvme.CID(i), proto.PrioThroughputCritical)
	}
	_, batch := pm.OnCommand(2, 5, proto.PrioTCDraining)
	if len(batch) != 6 {
		t.Fatalf("tenant 2 batch = %d, want its own 6", len(batch))
	}
	for _, m := range batch {
		if m.Tenant != 2 {
			t.Fatalf("foreign CID in isolated batch: %+v", m)
		}
	}
	if pm.QueueDepth(1) != 5 {
		t.Fatalf("tenant 1 queue flushed by tenant 2's drain: depth %d", pm.QueueDepth(1))
	}
	if pm.Stats().PrematureFlush != 0 {
		t.Fatal("premature flush counted in isolated mode")
	}
}

func TestSameCIDDifferentTenants(t *testing.T) {
	pm := isolatedPM()
	// CIDs are per-connection; both tenants use CID 0 concurrently.
	pm.OnCommand(1, 0, proto.PrioTCDraining)
	pm.OnCommand(2, 0, proto.PrioTCDraining)
	rd1 := pm.OnDeviceCompletion(1, 0, nvme.StatusSuccess)
	rd2 := pm.OnDeviceCompletion(2, 0, nvme.StatusSuccess)
	if !rd1[0].Send || rd1[0].Tenant != 1 {
		t.Fatalf("tenant 1 response: %+v", rd1)
	}
	if !rd2[0].Send || rd2[0].Tenant != 2 {
		t.Fatalf("tenant 2 response: %+v", rd2)
	}
}

func TestSharedQueuePrematureFlush(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: false, MaxPending: 256})
	// Tenant 1 queues 3 TC requests; tenant 2's drain flushes them too.
	for i := 0; i < 3; i++ {
		pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
	}
	_, batch := pm.OnCommand(2, 50, proto.PrioTCDraining)
	if len(batch) != 4 {
		t.Fatalf("shared batch = %d", len(batch))
	}
	if pm.Stats().PrematureFlush != 3 {
		t.Fatalf("premature flush = %d, want 3", pm.Stats().PrematureFlush)
	}
	// Shared-queue batches mix tenants, so no coalesced response can be
	// ordered safely: every member answers individually (§IV-A made
	// executable) — the hazard costs the design its coalescing benefit.
	var toT1, toT2, coalesced int
	for _, m := range batch {
		for _, rd := range pm.OnDeviceCompletion(m.Tenant, m.CID, nvme.StatusSuccess) {
			if !rd.Send {
				continue
			}
			if rd.Coalesced {
				coalesced++
			}
			switch rd.Tenant {
			case 1:
				toT1++
			case 2:
				toT2++
			}
			if rd.CID != m.CID {
				t.Fatalf("response renamed: %+v for member %+v", rd, m)
			}
		}
	}
	if coalesced != 0 {
		t.Fatalf("coalesced responses in shared mode: %d", coalesced)
	}
	if toT1 != 3 || toT2 != 1 {
		t.Fatalf("responses: tenant1=%d tenant2=%d", toT1, toT2)
	}
}

func TestForcedDrainSafetyValve(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 4})
	var batch []TaggedCID
	for i := 0; i < 4; i++ {
		d, b := pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
		if i < 3 && d != DispositionQueued {
			t.Fatalf("request %d disposition = %v", i, d)
		}
		if i == 3 {
			if d != DispositionDrainBatch {
				t.Fatalf("valve did not trip: %v", d)
			}
			batch = b
		}
	}
	if len(batch) != 4 {
		t.Fatalf("forced batch = %d", len(batch))
	}
	if pm.Stats().ForcedDrains != 1 {
		t.Fatalf("forced drains = %d", pm.Stats().ForcedDrains)
	}
	// The forced batch still coalesces into one response named after its
	// last member.
	var sent int
	for _, m := range batch {
		for _, rd := range pm.OnDeviceCompletion(1, m.CID, nvme.StatusSuccess) {
			if rd.Send {
				sent++
				if !rd.Coalesced || rd.CID != 3 {
					t.Fatalf("forced drain response wrong: %+v", rd)
				}
			}
		}
	}
	if sent != 1 {
		t.Fatalf("sent = %d", sent)
	}
}

func TestValveDisabled(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 0})
	for i := 0; i < 1000; i++ {
		d, _ := pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
		if d != DispositionQueued {
			t.Fatalf("request %d disposition = %v with valve off", i, d)
		}
	}
	if pm.QueueDepth(1) != 1000 {
		t.Fatalf("depth = %d", pm.QueueDepth(1))
	}
}

func TestDispositionStrings(t *testing.T) {
	for _, d := range []Disposition{DispositionExecute, DispositionQueued, DispositionDrainBatch, Disposition(9)} {
		if d.String() == "" {
			t.Errorf("empty string for %d", int(d))
		}
	}
}

func TestMultipleConcurrentBatchesPerTenant(t *testing.T) {
	pm := isolatedPM()
	// Window 1: CIDs 0,1 (drain 1). Window 2: CIDs 2,3 (drain 3). Both
	// execute before either completes (QD > window).
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	pm.OnCommand(1, 1, proto.PrioTCDraining)
	pm.OnCommand(1, 2, proto.PrioThroughputCritical)
	pm.OnCommand(1, 3, proto.PrioTCDraining)
	// Complete window 2 first (device reordering across batches).
	var sent []RespDecision
	for _, cid := range []nvme.CID{3, 2, 1, 0} {
		for _, rd := range pm.OnDeviceCompletion(1, cid, nvme.StatusSuccess) {
			if rd.Send {
				sent = append(sent, rd)
			}
		}
	}
	if len(sent) != 2 {
		t.Fatalf("responses = %+v", sent)
	}
	// Window 2 finished first at the device, but responses must be
	// released in window order (1 before 3): the host replays its pending
	// queue prefix per coalesced response.
	if sent[0].CID != 1 || sent[1].CID != 3 {
		t.Fatalf("batch responses out of window order: %+v", sent)
	}
}

func TestCrossWindowResponseOrdering(t *testing.T) {
	pm := isolatedPM()
	// Three windows of 2; the device completes them in reverse.
	for w := 0; w < 3; w++ {
		pm.OnCommand(1, nvme.CID(2*w), proto.PrioThroughputCritical)
		pm.OnCommand(1, nvme.CID(2*w+1), proto.PrioTCDraining)
	}
	var sent []nvme.CID
	complete := func(cid nvme.CID) {
		for _, rd := range pm.OnDeviceCompletion(1, cid, nvme.StatusSuccess) {
			if rd.Send {
				sent = append(sent, rd.CID)
			}
		}
	}
	// Finish window 3, then 2: nothing may be announced yet.
	complete(5)
	complete(4)
	complete(3)
	complete(2)
	if len(sent) != 0 {
		t.Fatalf("later windows announced before window 1: %v", sent)
	}
	// Window 1 completes: all three drain responses release, in order.
	complete(1)
	complete(0)
	want := []nvme.CID{1, 3, 5}
	if len(sent) != 3 || sent[0] != want[0] || sent[1] != want[1] || sent[2] != want[2] {
		t.Fatalf("release order = %v, want %v", sent, want)
	}
}

func TestDropTenantIsolatedDropsOnlyThatTenant(t *testing.T) {
	pm := isolatedPM()
	for i := 0; i < 3; i++ {
		pm.OnCommand(1, nvme.CID(i), proto.PrioThroughputCritical)
	}
	pm.OnCommand(2, 100, proto.PrioThroughputCritical)
	dropped := pm.DropTenant(1)
	if len(dropped) != 3 {
		t.Fatalf("dropped = %v, want 3 CIDs", dropped)
	}
	for i, cid := range dropped {
		if cid != nvme.CID(i) {
			t.Fatalf("dropped order broken: %v", dropped)
		}
	}
	if pm.QueueDepth(1) != 0 {
		t.Fatalf("tenant 1 queue depth = %d after drop", pm.QueueDepth(1))
	}
	if pm.QueueDepth(2) != 1 {
		t.Fatalf("tenant 2 queue perturbed: depth = %d", pm.QueueDepth(2))
	}
	if pm.Stats().TeardownDrops != 3 {
		t.Fatalf("TeardownDrops = %d", pm.Stats().TeardownDrops)
	}
	// Survivor still drains normally.
	d, batch := pm.OnCommand(2, 101, proto.PrioTCDraining)
	if d != DispositionDrainBatch || len(batch) != 2 {
		t.Fatalf("survivor drain broken: %v %v", d, batch)
	}
}

func TestDropTenantSharedKeepsOthersFIFO(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: false, MaxPending: 256})
	// Interleave two tenants in the shared queue.
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	pm.OnCommand(2, 10, proto.PrioThroughputCritical)
	pm.OnCommand(1, 1, proto.PrioThroughputCritical)
	pm.OnCommand(2, 11, proto.PrioThroughputCritical)
	dropped := pm.DropTenant(1)
	if len(dropped) != 2 || dropped[0] != 0 || dropped[1] != 1 {
		t.Fatalf("dropped = %v, want [0 1]", dropped)
	}
	// A draining request flushes the shared queue; only tenant 2's
	// survivors should be in the batch, in arrival order.
	_, batch := pm.OnCommand(2, 12, proto.PrioTCDraining)
	if len(batch) != 3 {
		t.Fatalf("batch = %v", batch)
	}
	want := []nvme.CID{10, 11, 12}
	for i, m := range batch {
		if m.Tenant != 2 || m.CID != want[i] {
			t.Fatalf("survivor FIFO broken: %v", batch)
		}
	}
}

func TestDropTenantEmptyAndExecutingUntouched(t *testing.T) {
	pm := isolatedPM()
	if dropped := pm.DropTenant(7); dropped != nil {
		t.Fatalf("drop of idle tenant = %v", dropped)
	}
	// An executing batch is not queued: DropTenant must leave it alone so
	// its completions still account.
	pm.OnCommand(1, 0, proto.PrioThroughputCritical)
	pm.OnCommand(1, 1, proto.PrioTCDraining)
	if dropped := pm.DropTenant(1); dropped != nil {
		t.Fatalf("drop reached executing batch: %v", dropped)
	}
	pm.OnDeviceCompletion(1, 0, nvme.StatusSuccess)
	rds := pm.OnDeviceCompletion(1, 1, nvme.StatusSuccess)
	if len(rds) != 1 || !rds[0].Send || !rds[0].Coalesced {
		t.Fatalf("batch completion broken after drop: %+v", rds)
	}
	if pm.OutstandingBatchCIDs() != 0 {
		t.Fatal("batch tracking leaked")
	}
}
