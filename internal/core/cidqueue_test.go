package core

import (
	"testing"
	"testing/quick"

	"nvmeopf/internal/nvme"
)

func TestCIDQueueFIFO(t *testing.T) {
	var q CIDQueue
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(nvme.CID(i))
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d", q.Len())
	}
	if f, ok := q.Front(); !ok || f != 0 {
		t.Fatalf("front = %d, %v", f, ok)
	}
	for i := 0; i < 100; i++ {
		cid, ok := q.PopFront()
		if !ok || cid != nvme.CID(i) {
			t.Fatalf("pop %d: %d, %v", i, cid, ok)
		}
	}
	if _, ok := q.PopFront(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := q.Front(); ok {
		t.Fatal("front of empty succeeded")
	}
}

func TestCIDQueueWrapGrow(t *testing.T) {
	var q CIDQueue
	// Interleave pushes and pops to exercise wrap-around, then force
	// growth mid-wrap.
	next, expect := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(nvme.CID(next))
			next++
		}
		for i := 0; i < 3; i++ {
			cid, ok := q.PopFront()
			if !ok || cid != nvme.CID(expect) {
				t.Fatalf("round %d: got %d want %d", round, cid, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		cid, _ := q.PopFront()
		if cid != nvme.CID(expect) {
			t.Fatalf("drain: got %d want %d", cid, expect)
		}
		expect++
	}
	if next != expect {
		t.Fatalf("pushed %d popped %d", next, expect)
	}
}

func TestCIDQueuePopAll(t *testing.T) {
	var q CIDQueue
	if q.PopAll() != nil {
		t.Fatal("PopAll on empty should be nil")
	}
	for i := 0; i < 5; i++ {
		q.Push(nvme.CID(i * 10))
	}
	all := q.PopAll()
	if len(all) != 5 || !q.Empty() {
		t.Fatalf("PopAll = %v, empty=%v", all, q.Empty())
	}
	for i, cid := range all {
		if cid != nvme.CID(i*10) {
			t.Fatalf("order broken: %v", all)
		}
	}
}

func TestCIDQueueDrainThrough(t *testing.T) {
	var q CIDQueue
	for i := 0; i < 10; i++ {
		q.Push(nvme.CID(i))
	}
	drained, ok := q.DrainThrough(4)
	if !ok || len(drained) != 5 {
		t.Fatalf("drained = %v, ok=%v", drained, ok)
	}
	for i, cid := range drained {
		if cid != nvme.CID(i) {
			t.Fatalf("drain order broken: %v", drained)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("remaining = %d", q.Len())
	}
	if f, _ := q.Front(); f != 5 {
		t.Fatalf("front after drain = %d", f)
	}
	// Unknown CID must not mutate.
	if _, ok := q.DrainThrough(99); ok {
		t.Fatal("unknown CID drained")
	}
	if q.Len() != 5 {
		t.Fatal("failed drain mutated queue")
	}
}

func TestCIDQueueDrainThroughFirstOccurrence(t *testing.T) {
	var q CIDQueue
	for _, cid := range []nvme.CID{7, 3, 7, 9} {
		q.Push(cid)
	}
	drained, ok := q.DrainThrough(7)
	if !ok || len(drained) != 1 || drained[0] != 7 {
		t.Fatalf("drained = %v", drained)
	}
	if q.Len() != 3 {
		t.Fatalf("remaining = %d", q.Len())
	}
}

func TestCIDQueueRemove(t *testing.T) {
	var q CIDQueue
	for i := 0; i < 6; i++ {
		q.Push(nvme.CID(i))
	}
	if !q.Remove(3) {
		t.Fatal("remove failed")
	}
	if q.Remove(3) {
		t.Fatal("double remove succeeded")
	}
	want := []nvme.CID{0, 1, 2, 4, 5}
	got := q.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after remove = %v, want %v", got, want)
		}
	}
	if !q.Remove(0) || !q.Remove(5) {
		t.Fatal("remove at ends failed")
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestCIDQueueContains(t *testing.T) {
	var q CIDQueue
	q.Push(5)
	if !q.Contains(5) || q.Contains(6) {
		t.Fatal("contains wrong")
	}
}

// Property: the queue behaves like a slice model under arbitrary
// push/pop/drain/remove sequences.
func TestCIDQueueModelProperty(t *testing.T) {
	type op struct {
		Kind byte
		Arg  nvme.CID
	}
	f := func(ops []op) bool {
		var q CIDQueue
		var model []nvme.CID
		next := nvme.CID(0)
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0: // push
				q.Push(next)
				model = append(model, next)
				next++
			case 1: // pop
				cid, ok := q.PopFront()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if cid != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2: // drain through a (maybe present) cid
				target := o.Arg % (next + 1)
				drained, ok := q.DrainThrough(target)
				idx := -1
				for i, m := range model {
					if m == target {
						idx = i
						break
					}
				}
				if ok != (idx >= 0) {
					return false
				}
				if ok {
					if len(drained) != idx+1 {
						return false
					}
					for i := 0; i <= idx; i++ {
						if drained[i] != model[i] {
							return false
						}
					}
					model = model[idx+1:]
				}
			case 3: // remove
				target := o.Arg % (next + 1)
				ok := q.Remove(target)
				idx := -1
				for i, m := range model {
					if m == target {
						idx = i
						break
					}
				}
				if ok != (idx >= 0) {
					return false
				}
				if ok {
					model = append(model[:idx], model[idx+1:]...)
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		// Final order check.
		snap := q.Snapshot()
		for i := range model {
			if snap[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
