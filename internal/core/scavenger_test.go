package core

// Scavenger (best-effort) class unit tests for the target PM — the
// leftover-capacity drain condition, the aging bound, admission yielding
// its global slots before the LSHeadroom check — plus the two bugfix
// regressions that shipped with the class: tenant IDs >= 256 through the
// paged override storage, and Release's pinned
// sum(pending) == pendingTotal invariant.

import (
	"testing"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

func TestScavengerParksWhileLSPending(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true})
	if !pm.Admit(1, proto.PrioLatencySensitive) {
		t.Fatal("LS refused")
	}
	if d, _ := pm.OnCommand(1, 1, proto.PrioLatencySensitive); d != DispositionExecute {
		t.Fatalf("LS disposition %v", d)
	}
	if !pm.Admit(2, proto.PrioScavenger) {
		t.Fatal("scavenger refused")
	}
	if d, _ := pm.OnCommand(2, 10, proto.PrioScavenger); d != DispositionQueued {
		t.Fatalf("scavenger disposition %v", d)
	}
	if pm.ScavQueueDepth(2) != 1 {
		t.Fatalf("scavenger queue depth %d", pm.ScavQueueDepth(2))
	}
	// The LS request is still pending: no leftover capacity, no drain.
	if got := pm.PollScavenger(0); got != nil {
		t.Fatalf("scavenger drained with an LS request pending: %v", got)
	}
	// The LS completion frees the capacity.
	pm.Release(1, proto.PrioLatencySensitive)
	batches := pm.PollScavenger(0)
	if len(batches) != 1 || len(batches[0]) != 1 || batches[0][0].CID != 10 {
		t.Fatalf("PollScavenger = %v, want one batch [CID 10]", batches)
	}
	if pm.ScavQueueDepth(2) != 0 {
		t.Fatalf("queue depth %d after drain", pm.ScavQueueDepth(2))
	}
	st := pm.Stats()
	if st.ScavQueued != 1 || st.ScavDrains != 1 || st.ScavAgedDrains != 0 {
		t.Fatalf("ScavQueued=%d ScavDrains=%d ScavAgedDrains=%d, want 1/1/0",
			st.ScavQueued, st.ScavDrains, st.ScavAgedDrains)
	}
	// The batch completes like any drain window: one coalesced response.
	rds := pm.OnDeviceCompletion(2, 10, nvme.StatusSuccess)
	if len(rds) != 1 || !rds[0].Send || !rds[0].Coalesced || rds[0].CID != 10 {
		t.Fatalf("scavenger completion = %v, want coalesced CID 10", rds)
	}
}

func TestScavengerParksBehindUndrainedTCWindow(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true})
	pm.OnCommand(2, 10, proto.PrioScavenger)
	pm.OnCommand(1, 1, proto.PrioThroughputCritical)
	if pm.TCParked() != 1 {
		t.Fatalf("TCParked = %d, want 1", pm.TCParked())
	}
	// A parked (un-drained) TC window blocks the scavenger drain.
	if got := pm.PollScavenger(0); got != nil {
		t.Fatalf("scavenger drained behind a parked TC window: %v", got)
	}
	// The drain releases the TC window; an *executing* window does not
	// block — scavengers only wait for parked foreground work.
	if d, _ := pm.OnCommand(1, 2, proto.PrioTCDraining); d != DispositionDrainBatch {
		t.Fatal("TC drain did not release")
	}
	if pm.TCParked() != 0 {
		t.Fatalf("TCParked = %d after drain, want 0", pm.TCParked())
	}
	if got := pm.PollScavenger(0); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("PollScavenger = %v after TC drained, want one batch of 1", got)
	}
}

func TestScavengerAgingForceDrains(t *testing.T) {
	now := new(int64)
	pm := NewTargetPM(TargetPMConfig{
		Isolated:         true,
		Clock:            func() int64 { return *now },
		ScavengerAgingNS: 100,
	})
	var forced []telemetry.Event
	pm.SetTrace(func(e telemetry.Event) {
		if e.Stage == telemetry.StageForcedDrain {
			forced = append(forced, e)
		}
	})
	// Continuous foreground load: an LS request stays pending throughout.
	pm.Admit(1, proto.PrioLatencySensitive)
	*now = 10
	pm.OnCommand(2, 10, proto.PrioScavenger)
	pm.OnCommand(2, 11, proto.PrioScavenger)
	if got := pm.PollScavenger(109); got != nil {
		t.Fatalf("scavenger force-drained before the aging bound: %v", got)
	}
	// firstAt=10, bound 100: at now=110 the window has aged out.
	batches := pm.PollScavenger(110)
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("PollScavenger = %v, want one batch of 2", batches)
	}
	st := pm.Stats()
	if st.ScavDrains != 1 || st.ScavAgedDrains != 1 {
		t.Fatalf("ScavDrains=%d ScavAgedDrains=%d, want 1/1", st.ScavDrains, st.ScavAgedDrains)
	}
	if len(forced) != 1 || forced[0].Prio != proto.PrioScavenger || forced[0].Aux != 2 {
		t.Fatalf("forced-drain trace = %+v, want one scavenger event of batch size 2", forced)
	}
}

func TestScavengerIdleDrainNotCountedAsAged(t *testing.T) {
	now := new(int64)
	pm := NewTargetPM(TargetPMConfig{
		Isolated:         true,
		Clock:            func() int64 { return *now },
		ScavengerAgingNS: 1 << 40,
	})
	pm.OnCommand(2, 10, proto.PrioScavenger)
	// No foreground work at all: the idle path drains immediately, and it
	// is a normal drain, not an aged one.
	if got := pm.PollScavenger(0); len(got) != 1 {
		t.Fatalf("idle scavenger drain missing: %v", got)
	}
	st := pm.Stats()
	if st.ScavDrains != 1 || st.ScavAgedDrains != 0 {
		t.Fatalf("ScavDrains=%d ScavAgedDrains=%d, want 1/0", st.ScavDrains, st.ScavAgedDrains)
	}
}

func TestScavengerAgingAnchorResetsPerWindow(t *testing.T) {
	now := new(int64)
	pm := NewTargetPM(TargetPMConfig{
		Isolated:         true,
		Clock:            func() int64 { return *now },
		ScavengerAgingNS: 100,
	})
	pm.Admit(1, proto.PrioLatencySensitive) // keep the target busy
	*now = 10
	pm.OnCommand(2, 10, proto.PrioScavenger)
	if got := pm.PollScavenger(110); len(got) != 1 {
		t.Fatalf("first window did not age out: %v", got)
	}
	// The next window's deadline anchors at its own first enqueue.
	*now = 400
	pm.OnCommand(2, 11, proto.PrioScavenger)
	if got := pm.PollScavenger(499); got != nil {
		t.Fatalf("second window aged out early: %v", got)
	}
	if got := pm.PollScavenger(500); len(got) != 1 {
		t.Fatal("second window missed its own deadline")
	}
}

// TestScavengerDrainsInChunks pins the drain batch bound: leftover capacity
// is consumed in ScavengerChunk-sized nibbles, never as one deep backlog
// dump that the next LS arrival would queue behind inside the device. Under
// continuous foreground load, each aged chunk restarts the remainder's
// aging anchor.
func TestScavengerDrainsInChunks(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true})
	for cid := nvme.CID(1); cid <= 10; cid++ {
		pm.OnCommand(7, cid, proto.PrioScavenger)
	}
	for want := 10; want > 0; want -= DefaultScavengerChunk {
		n := DefaultScavengerChunk
		if want < n {
			n = want
		}
		got := pm.PollScavenger(0)
		if len(got) != 1 || len(got[0]) != n {
			t.Fatalf("with %d parked: PollScavenger = %v, want one chunk of %d", want, got, n)
		}
		if d := pm.ScavQueueDepth(7); d != want-n {
			t.Fatalf("depth after chunk = %d, want %d", d, want-n)
		}
		// While the chunk is in service at the device, re-polls release
		// nothing more — background work never stacks past one chunk.
		if extra := pm.PollScavenger(0); extra != nil {
			t.Fatalf("second chunk released with one already in service: %v", extra)
		}
		for _, m := range got[0] {
			pm.OnDeviceCompletion(m.Tenant, m.CID, nvme.StatusSuccess)
		}
	}

	// Aged path: the remainder's deadline restarts at the chunk drain.
	now := new(int64)
	pm = NewTargetPM(TargetPMConfig{
		Isolated:         true,
		Clock:            func() int64 { return *now },
		ScavengerAgingNS: 100,
		ScavengerChunk:   2,
	})
	pm.Admit(1, proto.PrioLatencySensitive) // foreground stays busy
	*now = 10
	for cid := nvme.CID(1); cid <= 5; cid++ {
		pm.OnCommand(7, cid, proto.PrioScavenger)
	}
	if got := pm.PollScavenger(110); len(got) != 1 || len(got[0]) != 2 || got[0][0].CID != 1 {
		t.Fatalf("first aged chunk = %v, want CIDs 1-2", got)
	}
	if got := pm.PollScavenger(209); got != nil {
		t.Fatalf("remainder aged out before its restarted deadline: %v", got)
	}
	if got := pm.PollScavenger(210); len(got) != 1 || len(got[0]) != 2 || got[0][0].CID != 3 {
		t.Fatalf("second aged chunk = %v, want CIDs 3-4", got)
	}
	if st := pm.Stats(); st.ScavDrains != 2 || st.ScavAgedDrains != 2 {
		t.Fatalf("ScavDrains=%d ScavAgedDrains=%d, want 2/2", st.ScavDrains, st.ScavAgedDrains)
	}
}

func TestScavengerAdmissionYieldsBeforeLSHeadroom(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{
		Isolated:          true,
		MaxPendingGlobal:  6,
		LSHeadroom:        2,
		ScavengerHeadroom: 2,
	})
	// Scavenger stops LSHeadroom+ScavengerHeadroom slots early: 2 of 6.
	if !pm.Admit(1, proto.PrioScavenger) || !pm.Admit(1, proto.PrioScavenger) {
		t.Fatal("scavenger refused below its limit")
	}
	if pm.Admit(1, proto.PrioScavenger) {
		t.Fatal("scavenger admitted into the TC/LS reserve")
	}
	// TC still admits up to the LSHeadroom boundary: 4 of 6.
	if !pm.Admit(2, proto.PrioThroughputCritical) || !pm.Admit(2, proto.PrioThroughputCritical) {
		t.Fatal("TC refused inside the slots scavengers yielded")
	}
	if pm.Admit(2, proto.PrioThroughputCritical) {
		t.Fatal("TC admitted into the LS headroom")
	}
	// LS admits to the full global cap.
	if !pm.Admit(3, proto.PrioLatencySensitive) || !pm.Admit(3, proto.PrioLatencySensitive) {
		t.Fatal("LS refused inside its reserved headroom")
	}
	if pm.Admit(3, proto.PrioLatencySensitive) {
		t.Fatal("LS admitted past the global cap")
	}
}

// TestTenantIDOver256FullCycle is the regression for the reactor panic:
// the per-tenant window/cap overrides were stored in [256]int32 arrays
// indexed by the uint16 tenant ID, so the 257th initiator (tenant 256)
// crashed the shard on its first SetTenantWindow/valveFor touch. The
// paged tenantVals storage must carry the full admit/queue/drain/release
// cycle for any ID in 0..65535.
func TestTenantIDOver256FullCycle(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPending: 8})
	for _, tenant := range []proto.TenantID{256, 300, 4096, 65535} {
		pm.SetTenantWindow(tenant, 4)
		if got := pm.TenantWindow(tenant); got != 4 {
			t.Fatalf("tenant %d: TenantWindow = %d, want 4", tenant, got)
		}
		pm.SetTenantCap(tenant, 6)
		if got := pm.TenantCap(tenant); got != 6 {
			t.Fatalf("tenant %d: TenantCap = %d, want 6", tenant, got)
		}
		// Full TC cycle: admit, park, drain, complete, release.
		for cid := nvme.CID(1); cid <= 2; cid++ {
			if !pm.Admit(tenant, proto.PrioThroughputCritical) {
				t.Fatalf("tenant %d: TC admit refused", tenant)
			}
			if d, _ := pm.OnCommand(tenant, cid, proto.PrioThroughputCritical); d != DispositionQueued {
				t.Fatalf("tenant %d: disposition %v", tenant, d)
			}
		}
		pm.Admit(tenant, proto.PrioTCDraining)
		d, batch := pm.OnCommand(tenant, 3, proto.PrioTCDraining)
		if d != DispositionDrainBatch || len(batch) != 3 {
			t.Fatalf("tenant %d: drain = %v/%d members", tenant, d, len(batch))
		}
		for cid := nvme.CID(1); cid <= 3; cid++ {
			pm.OnDeviceCompletion(tenant, cid, nvme.StatusSuccess)
			pm.Release(tenant, proto.PrioThroughputCritical)
		}
		// Scavenger cycle on the same ID.
		pm.Admit(tenant, proto.PrioScavenger)
		pm.OnCommand(tenant, 9, proto.PrioScavenger)
		if got := pm.PollScavenger(0); len(got) != 1 {
			t.Fatalf("tenant %d: scavenger drain = %v", tenant, got)
		}
		pm.OnDeviceCompletion(tenant, 9, nvme.StatusSuccess)
		pm.Release(tenant, proto.PrioScavenger)
		if pm.PendingRequests(tenant) != 0 {
			t.Fatalf("tenant %d: %d pending after full cycle", tenant, pm.PendingRequests(tenant))
		}
		pm.ResetTenantControls(tenant)
		if pm.TenantWindow(tenant) != 0 || pm.TenantCap(tenant) != 0 {
			t.Fatalf("tenant %d: overrides survive reset", tenant)
		}
	}
	// Reading an ID whose page was never allocated is a zero, not a panic,
	// and writing zero to it must not allocate the page.
	if pm.TenantWindow(50000) != 0 {
		t.Fatal("unset override not zero")
	}
	pm.SetTenantWindow(50000, 0)
	if pm.TenantWindow(50000) != 0 {
		t.Fatal("zero write changed an unset override")
	}
}

// TestReleasePinsSumInvariant is the regression for the double-release
// accounting bug: Release used to decrement pendingTotal even when the
// tenant's own count was already zero, so sum(pending) drifted away from
// pendingTotal and the global admission limit silently loosened.
func TestReleasePinsSumInvariant(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true})
	pm.Admit(1, proto.PrioNormal)
	pm.Admit(1, proto.PrioNormal)
	pm.Admit(2, proto.PrioNormal)
	sum := func() int {
		return pm.PendingRequests(1) + pm.PendingRequests(2) + pm.PendingRequests(3)
	}
	// Two legitimate releases and two spurious ones for tenant 1, plus one
	// for a tenant that never admitted anything.
	for i := 0; i < 4; i++ {
		pm.Release(1, proto.PrioNormal)
		if sum() != pm.PendingTotal() {
			t.Fatalf("release %d: sum(pending)=%d != pendingTotal=%d", i, sum(), pm.PendingTotal())
		}
	}
	pm.Release(3, proto.PrioNormal)
	if pm.PendingRequests(1) != 0 || pm.PendingRequests(2) != 1 || pm.PendingTotal() != 1 {
		t.Fatalf("after spurious releases: t1=%d t2=%d total=%d, want 0/1/1",
			pm.PendingRequests(1), pm.PendingRequests(2), pm.PendingTotal())
	}
	// LS accounting floors the same way.
	pm.Admit(4, proto.PrioLatencySensitive)
	pm.Release(4, proto.PrioLatencySensitive)
	pm.Release(4, proto.PrioLatencySensitive)
	if pm.LSPending() != 0 {
		t.Fatalf("LSPending = %d after double LS release", pm.LSPending())
	}
}

func TestDropTenantDropsScavengerQueue(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true})
	pm.OnCommand(1, 1, proto.PrioThroughputCritical)
	pm.OnCommand(1, 10, proto.PrioScavenger)
	pm.OnCommand(1, 11, proto.PrioScavenger)
	pm.OnCommand(2, 20, proto.PrioScavenger)
	dropped := pm.DropTenant(1)
	if len(dropped) != 3 {
		t.Fatalf("DropTenant dropped %v, want 3 CIDs", dropped)
	}
	if pm.QueueDepth(1) != 0 || pm.ScavQueueDepth(1) != 0 {
		t.Fatalf("queues not empty after drop: tc=%d scav=%d", pm.QueueDepth(1), pm.ScavQueueDepth(1))
	}
	if pm.TCParked() != 0 {
		t.Fatalf("TCParked = %d after drop", pm.TCParked())
	}
	// The other tenant's parked scavenger work is untouched and still
	// drains.
	if pm.ScavQueueDepth(2) != 1 {
		t.Fatalf("tenant 2 scavenger depth %d", pm.ScavQueueDepth(2))
	}
	if got := pm.PollScavenger(0); len(got) != 1 || got[0][0].CID != 20 {
		t.Fatalf("tenant 2 drain = %v", got)
	}
	if got := pm.Stats().TeardownDrops; got != 3 {
		t.Fatalf("TeardownDrops = %d, want 3", got)
	}
}

func TestHostPMTrackKeepsWindowUntouched(t *testing.T) {
	h := NewHostPM(proto.PrioThroughputCritical, 4)
	for i := 0; i < 10; i++ {
		if p := h.Track(nvme.CID(i)); p != proto.PrioScavenger {
			t.Fatalf("Track stamp = %v, want scavenger", p)
		}
	}
	if h.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", h.Pending())
	}
	// No draining flags, no partial window: the idle-drain machinery must
	// see nothing to flush.
	if h.SinceDrain() != 0 {
		t.Fatalf("SinceDrain = %d, want 0", h.SinceDrain())
	}
	st := h.Stats()
	if st.Sent != 10 || st.DrainsInserted != 0 {
		t.Fatalf("Sent=%d DrainsInserted=%d, want 10/0", st.Sent, st.DrainsInserted)
	}
	// A target-driven coalesced drain replays the queue in order.
	done, err := h.OnResponse(9, true)
	if err != nil || len(done) != 10 {
		t.Fatalf("coalesced replay = %v, %v", done, err)
	}
	for i, cid := range done {
		if cid != nvme.CID(i) {
			t.Fatalf("replay out of order: %v", done)
		}
	}
}

// TestSetWindowUpdatesTelemetryGauge is the regression for the stale
// /debug/windows gauge: SetWindow changed the live window but the gauge
// kept the SetTelemetry-time value until the next dynamic-tuner decision.
func TestSetWindowUpdatesTelemetryGauge(t *testing.T) {
	tel := telemetry.New()
	h := NewHostPM(proto.PrioThroughputCritical, 4)
	h.SetTelemetry(5, tel, nil)
	window := func() int64 {
		for _, s := range tel.Tenants() {
			if s.Tenant == 5 {
				return s.Window
			}
		}
		return -1
	}
	if got := window(); got != 4 {
		t.Fatalf("gauge after SetTelemetry = %d, want 4", got)
	}
	h.SetWindow(16)
	if got := window(); got != 16 {
		t.Fatalf("gauge after SetWindow = %d, want 16", got)
	}
	// Clamped values report the clamped window, and a detached PM does not
	// panic.
	h.SetWindow(-1)
	if got := window(); got != 1 {
		t.Fatalf("gauge after clamped SetWindow = %d, want 1", got)
	}
	NewHostPM(proto.PrioThroughputCritical, 2).SetWindow(8)
}
