// Package core implements the paper's primary contribution: the NVMe-oPF
// Priority Managers. A target-side PM keeps one isolated, zero-copy
// (CID-only) queue per tenant, executes latency-sensitive requests
// immediately, batches throughput-critical requests until a draining
// request arrives, and coalesces the batch's completion notifications into
// a single response (§III, Fig. 5 Algorithms 1–4). A host-side PM stamps
// priority flags, auto-inserts draining flags every window, and replays
// coalesced completions over its local pending queue, which also
// reconciles out-of-order device completions (§IV-C). The window-size
// optimizer (§IV-D) provides both the static selection table and the
// dynamic runtime tuner.
package core

import "nvmeopf/internal/nvme"

// CIDQueue is a growable FIFO ring of 16-bit command identifiers. It is
// the "zero-copy queue" of §IV-B: the priority managers never store
// request payloads or request structs, only CIDs, so PM memory does not
// grow with I/O size and stays tiny per tenant.
//
// The zero value is ready to use.
type CIDQueue struct {
	buf  []nvme.CID
	head int
	n    int
}

// Len returns the number of queued CIDs.
func (q *CIDQueue) Len() int { return q.n }

// Empty reports whether the queue is empty.
func (q *CIDQueue) Empty() bool { return q.n == 0 }

// Push appends a CID.
func (q *CIDQueue) Push(cid nvme.CID) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = cid
	q.n++
}

func (q *CIDQueue) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	nb := make([]nvme.CID, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Front returns the oldest CID without removing it.
func (q *CIDQueue) Front() (nvme.CID, bool) {
	if q.n == 0 {
		return 0, false
	}
	return q.buf[q.head], true
}

// PopFront removes and returns the oldest CID.
func (q *CIDQueue) PopFront() (nvme.CID, bool) {
	if q.n == 0 {
		return 0, false
	}
	cid := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return cid, true
}

// PopAll removes and returns every queued CID in FIFO order (the target
// PM's drain execution).
func (q *CIDQueue) PopAll() []nvme.CID {
	if q.n == 0 {
		return nil
	}
	out := make([]nvme.CID, q.n)
	for i := range out {
		out[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.head = 0
	q.n = 0
	return out
}

// DrainThrough removes and returns, in FIFO order, every CID up to and
// including the first occurrence of cid (Alg. 2: "loop through the queue
// of pending requests until the ID of the request matches with the
// received response"). If cid is not present the queue is left untouched
// and ok is false — a coalesced completion naming an unknown CID is a
// protocol violation the caller must surface, not silently absorb.
func (q *CIDQueue) DrainThrough(cid nvme.CID) (drained []nvme.CID, ok bool) {
	idx := -1
	for i := 0; i < q.n; i++ {
		if q.buf[(q.head+i)%len(q.buf)] == cid {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	drained = make([]nvme.CID, idx+1)
	for i := 0; i <= idx; i++ {
		drained[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.head = (q.head + idx + 1) % len(q.buf)
	q.n -= idx + 1
	return drained, true
}

// Remove deletes the first occurrence of cid, preserving order of the
// rest. It is used for non-coalesced (per-request) completions of TC
// requests, e.g. individual error responses.
func (q *CIDQueue) Remove(cid nvme.CID) bool {
	idx := -1
	for i := 0; i < q.n; i++ {
		if q.buf[(q.head+i)%len(q.buf)] == cid {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	// Shift the tail segment left by one.
	for i := idx; i < q.n-1; i++ {
		q.buf[(q.head+i)%len(q.buf)] = q.buf[(q.head+i+1)%len(q.buf)]
	}
	q.n--
	return true
}

// Contains reports whether cid is queued.
func (q *CIDQueue) Contains(cid nvme.CID) bool {
	for i := 0; i < q.n; i++ {
		if q.buf[(q.head+i)%len(q.buf)] == cid {
			return true
		}
	}
	return false
}

// Snapshot returns the queued CIDs in FIFO order without mutating the
// queue (diagnostics/tests).
func (q *CIDQueue) Snapshot() []nvme.CID {
	out := make([]nvme.CID, q.n)
	for i := range out {
		out[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	return out
}
