package core

// Admission-control and drain-watchdog unit tests for the target PM:
// per-tenant and global pending caps with LS headroom (StatusBusy
// push-back), and ExpireStale force-draining parked TC queues on a fake
// clock.

import (
	"testing"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

func TestAdmitPerTenantCap(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPendingPerTenant: 2})
	for i := 0; i < 2; i++ {
		if !pm.Admit(1, proto.PrioNormal) {
			t.Fatalf("request %d refused below the cap", i)
		}
	}
	if pm.Admit(1, proto.PrioNormal) {
		t.Fatal("request admitted past the per-tenant cap")
	}
	if got := pm.Stats().BusyRejections; got != 1 {
		t.Fatalf("BusyRejections = %d, want 1", got)
	}
	// Another tenant is unaffected by tenant 1's saturation.
	if !pm.Admit(2, proto.PrioNormal) {
		t.Fatal("independent tenant refused")
	}
	if pm.PendingRequests(1) != 2 || pm.PendingRequests(2) != 1 || pm.PendingTotal() != 3 {
		t.Fatalf("pending accounting: t1=%d t2=%d total=%d",
			pm.PendingRequests(1), pm.PendingRequests(2), pm.PendingTotal())
	}
	// Release opens exactly one slot.
	pm.Release(1, proto.PrioNormal)
	if !pm.Admit(1, proto.PrioNormal) {
		t.Fatal("request refused after Release opened a slot")
	}
	if pm.Admit(1, proto.PrioNormal) {
		t.Fatal("cap not re-enforced after refill")
	}
}

func TestAdmitGlobalCapReservesLSHeadroom(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPendingGlobal: 4, LSHeadroom: 2})
	// Non-LS admission stops LSHeadroom slots early.
	if !pm.Admit(1, proto.PrioThroughputCritical) || !pm.Admit(2, proto.PrioThroughputCritical) {
		t.Fatal("TC refused below the non-LS limit")
	}
	if pm.Admit(3, proto.PrioThroughputCritical) {
		t.Fatal("TC admitted into the LS headroom")
	}
	if pm.Admit(3, proto.PrioNormal) {
		t.Fatal("normal-class admitted into the LS headroom")
	}
	// LS still admits, up to the full global cap.
	if !pm.Admit(3, proto.PrioLatencySensitive) || !pm.Admit(4, proto.PrioLatencySensitive) {
		t.Fatal("LS refused inside its reserved headroom")
	}
	if pm.Admit(5, proto.PrioLatencySensitive) {
		t.Fatal("LS admitted past the global cap")
	}
	if got := pm.Stats().BusyRejections; got != 3 {
		t.Fatalf("BusyRejections = %d, want 3", got)
	}
	// A completion frees a slot for LS but the non-LS limit still binds.
	pm.Release(1, proto.PrioNormal)
	if pm.Admit(1, proto.PrioThroughputCritical) {
		t.Fatal("TC admitted while at the non-LS limit")
	}
	if !pm.Admit(1, proto.PrioLatencySensitive) {
		t.Fatal("LS refused with a free slot")
	}
}

func TestAdmitDrainingAlwaysAdmitted(t *testing.T) {
	// Rejecting a drain would wedge the tenant's already-parked window
	// forever, so draining requests bypass every cap.
	pm := NewTargetPM(TargetPMConfig{Isolated: true, MaxPendingPerTenant: 1, MaxPendingGlobal: 2, LSHeadroom: 1})
	if !pm.Admit(1, proto.PrioThroughputCritical) {
		t.Fatal("first TC refused")
	}
	if pm.Admit(1, proto.PrioThroughputCritical) {
		t.Fatal("second TC admitted past both caps")
	}
	if !pm.Admit(1, proto.PrioTCDraining) {
		t.Fatal("draining request refused: parked window wedged")
	}
	if pm.PendingRequests(1) != 2 {
		t.Fatalf("pending = %d, want 2 (drain still charged)", pm.PendingRequests(1))
	}
}

func TestReleaseFloorsAtZero(t *testing.T) {
	pm := NewTargetPM(TargetPMConfig{Isolated: true})
	pm.Release(9, proto.PrioNormal) // never admitted: must not underflow
	if pm.PendingRequests(9) != 0 || pm.PendingTotal() != 0 {
		t.Fatalf("pending went negative: t=%d total=%d", pm.PendingRequests(9), pm.PendingTotal())
	}
}

// watchdogPM builds a PM with a settable fake clock.
func watchdogPM(deadline int64) (*TargetPM, *int64) {
	now := new(int64)
	pm := NewTargetPM(TargetPMConfig{
		Isolated:   true,
		MaxPending: 256,
		Clock:      func() int64 { return *now },
		WatchdogNS: deadline,
	})
	return pm, now
}

func TestExpireStaleForceDrainsParkedQueue(t *testing.T) {
	pm, now := watchdogPM(100)
	var events []telemetry.Event
	pm.SetTrace(func(e telemetry.Event) { events = append(events, e) })

	*now = 10
	for cid := nvme.CID(1); cid <= 3; cid++ {
		if d, _ := pm.OnCommand(1, cid, proto.PrioThroughputCritical); d != DispositionQueued {
			t.Fatalf("CID %d: disposition %v, want queued", cid, d)
		}
	}
	// Before the deadline (anchored at first enqueue, clock=10): no-op.
	if got := pm.ExpireStale(109); got != nil {
		t.Fatalf("ExpireStale fired %d batches before the deadline", len(got))
	}
	batches := pm.ExpireStale(110)
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("ExpireStale = %v, want one batch of 3", batches)
	}
	if pm.QueueDepth(1) != 0 {
		t.Fatalf("queue depth %d after force-drain", pm.QueueDepth(1))
	}
	st := pm.Stats()
	if st.ForcedDrains != 1 || st.WatchdogDrains != 1 {
		t.Fatalf("ForcedDrains=%d WatchdogDrains=%d, want 1/1", st.ForcedDrains, st.WatchdogDrains)
	}
	var sawForced bool
	for _, e := range events {
		if e.Stage == telemetry.StageForcedDrain {
			sawForced = true
			if e.Aux != 3 {
				t.Fatalf("StageForcedDrain Aux = %d, want batch size 3", e.Aux)
			}
		}
	}
	if !sawForced {
		t.Fatal("no StageForcedDrain event traced")
	}
	// The batch behaves exactly like a drain-triggered one: suppressed
	// members, then one coalesced response carried by the last parked CID.
	for cid := nvme.CID(1); cid <= 2; cid++ {
		rds := pm.OnDeviceCompletion(1, cid, nvme.StatusSuccess)
		if len(rds) != 1 || rds[0].Send {
			t.Fatalf("CID %d: member not suppressed: %v", cid, rds)
		}
	}
	rds := pm.OnDeviceCompletion(1, 3, nvme.StatusSuccess)
	if len(rds) != 1 || !rds[0].Send || !rds[0].Coalesced || rds[0].CID != 3 {
		t.Fatalf("coalesced release = %v, want coalesced CID 3", rds)
	}
}

func TestExpireStaleDeadlineRestartsPerWindow(t *testing.T) {
	pm, now := watchdogPM(100)
	*now = 10
	pm.OnCommand(1, 1, proto.PrioThroughputCritical)
	// A real drain arrives in time: the parked window flushes and the
	// watchdog anchor resets.
	if d, _ := pm.OnCommand(1, 2, proto.PrioTCDraining); d != DispositionDrainBatch {
		t.Fatalf("drain disposition %v", d)
	}
	if got := pm.ExpireStale(500); got != nil {
		t.Fatalf("watchdog fired on an empty queue: %v", got)
	}
	// The next window's deadline anchors at its own first enqueue.
	*now = 400
	pm.OnCommand(1, 3, proto.PrioThroughputCritical)
	if got := pm.ExpireStale(499); got != nil {
		t.Fatal("watchdog fired before the new window's deadline")
	}
	if got := pm.ExpireStale(500); len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("watchdog missed the new window: %v", got)
	}
}

func TestExpireStaleDisabledWithoutClockOrDeadline(t *testing.T) {
	noClock := NewTargetPM(TargetPMConfig{Isolated: true, WatchdogNS: 1})
	noClock.OnCommand(1, 1, proto.PrioThroughputCritical)
	if got := noClock.ExpireStale(1 << 60); got != nil {
		t.Fatal("watchdog ran without a clock")
	}
	pm, now := watchdogPM(0)
	*now = 10
	pm.OnCommand(1, 1, proto.PrioThroughputCritical)
	if got := pm.ExpireStale(1 << 60); got != nil {
		t.Fatal("watchdog ran with a zero deadline")
	}
}
