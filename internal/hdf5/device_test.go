package hdf5

import (
	"testing"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
)

// sessionHarness wires a real host session to an in-process oPF target
// with an instant backend, plus a manual deferred-callback queue standing
// in for the simulation engine.
type sessionHarness struct {
	sess     *hostqp.Session
	deferred []func()
	captured []proto.Priority // priorities of capsules seen by the target
}

// runDeferred drains the deferred queue (one "event cascade" boundary).
func (h *sessionHarness) runDeferred() {
	for len(h.deferred) > 0 {
		fn := h.deferred[0]
		h.deferred = h.deferred[1:]
		fn()
	}
}

type harnessBackend struct {
	ns    nvme.Namespace
	store *bdev.Memory
}

func (b *harnessBackend) Namespace() nvme.Namespace { return b.ns }
func (b *harnessBackend) Submit(cmd nvme.Command, data []byte, high bool, done func(nvme.Completion, []byte)) {
	cpl := nvme.Completion{CID: cmd.CID, Status: b.ns.CheckRange(cmd.SLBA, cmd.Blocks())}
	var out []byte
	if cpl.Status.OK() {
		switch cmd.Opcode {
		case nvme.OpRead:
			out = make([]byte, b.ns.Bytes(cmd.Blocks()))
			_ = b.store.ReadBlocks(out, cmd.SLBA)
		case nvme.OpWrite:
			if err := b.store.WriteBlocks(data, cmd.SLBA); err != nil {
				cpl.Status = nvme.StatusInternalError
			}
		}
	}
	done(cpl, out)
}

func newSessionHarness(t *testing.T, window, qd int) *sessionHarness {
	t.Helper()
	ns := nvme.Namespace{ID: 1, BlockSize: 4096, Capacity: 1 << 16}
	store, err := bdev.NewMemory(ns.BlockSize, ns.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := targetqp.NewTarget(targetqp.Config{Mode: targetqp.ModeOPF, MaxPending: 1024},
		&harnessBackend{ns: ns, store: store})
	if err != nil {
		t.Fatal(err)
	}
	h := &sessionHarness{}
	var tsess *targetqp.Session
	tsess, err = tgt.NewSession(func(p proto.PDU) {
		if herr := h.sess.HandlePDU(p); herr != nil {
			t.Fatalf("host: %v", herr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := int64(0)
	h.sess, err = hostqp.New(hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: window, QueueDepth: qd, NSID: 1,
	}, func(p proto.PDU) {
		if c, ok := p.(*proto.CapsuleCmd); ok {
			h.captured = append(h.captured, c.Prio)
		}
		clock++
		if terr := tsess.HandlePDU(p); terr != nil {
			t.Fatalf("target: %v", terr)
		}
	}, func() int64 { return clock })
	if err != nil {
		t.Fatal(err)
	}
	h.sess.Start()
	return h
}

func (h *sessionHarness) device(t *testing.T, blocks uint64) *SessionDevice {
	t.Helper()
	dev, err := NewSessionDevice(h.sess, 4096, 0, blocks,
		func(fn func()) { h.deferred = append(h.deferred, fn) })
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestSessionDeviceValidation(t *testing.T) {
	h := newSessionHarness(t, 4, 8)
	if _, err := NewSessionDevice(nil, 4096, 0, 10, nil); err == nil {
		t.Error("nil session accepted")
	}
	if _, err := NewSessionDevice(h.sess, 4096, 0, 0, nil); err == nil {
		t.Error("empty partition accepted")
	}
	dev := h.device(t, 100)
	if dev.BlockSize() != 4096 || dev.NumBlocks() != 100 {
		t.Fatal("geometry wrong")
	}
	dev.ReadAsync(100, 1, false, func(_ []byte, err error) {
		if err == nil {
			t.Error("out-of-partition read accepted")
		}
	})
	dev.WriteAsync(0, make([]byte, 100), false, func(err error) {
		if err == nil {
			t.Error("unaligned write accepted")
		}
	})
	dev.WriteAsync(99, make([]byte, 8192), false, func(err error) {
		if err == nil {
			t.Error("straddling write accepted")
		}
	})
}

func TestSessionDeviceMetaUsesLSPriority(t *testing.T) {
	h := newSessionHarness(t, 8, 16)
	dev := h.device(t, 1024)
	okData, okMeta := false, false
	dev.WriteAsync(0, make([]byte, 4096), true, func(err error) { okMeta = err == nil })
	if len(h.captured) == 0 || !h.captured[len(h.captured)-1].LatencySensitive() {
		t.Fatalf("meta write priority = %v", h.captured)
	}
	dev.WriteAsync(1, make([]byte, 4096), false, func(err error) { okData = err == nil })
	if !h.captured[len(h.captured)-1].ThroughputCritical() {
		t.Fatalf("data write priority = %v", h.captured[len(h.captured)-1])
	}
	// Data write is in a window-8 queue; drain it via the quiesce check.
	h.runDeferred()
	if !okMeta || !okData {
		t.Fatalf("okMeta=%v okData=%v", okMeta, okData)
	}
}

func TestSessionDeviceQuiesceDrainsPartialWindow(t *testing.T) {
	h := newSessionHarness(t, 16, 32)
	dev := h.device(t, 1024)
	done := 0
	for i := 0; i < 3; i++ { // 3 < window 16: parked at the target
		dev.WriteAsync(uint64(i), make([]byte, 4096), false, func(err error) {
			if err != nil {
				t.Error(err)
			}
			done++
		})
	}
	if done != 0 {
		t.Fatalf("writes completed without a drain: %d", done)
	}
	h.runDeferred() // quiesce check fires, flushes the window
	if done != 3 {
		t.Fatalf("quiesce drain completed %d/3", done)
	}
}

func TestSessionDeviceFlowControlQueues(t *testing.T) {
	// QD 2 with 6 concurrent ops: 4 must wait internally, all complete.
	h := newSessionHarness(t, 1, 2) // window 1: each op drains itself
	dev := h.device(t, 1024)
	done := 0
	for i := 0; i < 6; i++ {
		dev.WriteAsync(uint64(i), make([]byte, 4096), false, func(err error) {
			if err != nil {
				t.Error(err)
			}
			done++
		})
	}
	// The loopback is synchronous, so everything resolves inline.
	if done != 6 {
		t.Fatalf("done = %d", done)
	}
	if dev.Waiting() != 0 {
		t.Fatalf("waiting = %d", dev.Waiting())
	}
}

func TestSessionDeviceReadBackOverProtocol(t *testing.T) {
	h := newSessionHarness(t, 1, 8)
	dev := h.device(t, 1024)
	want := make([]byte, 8192)
	for i := range want {
		want[i] = byte(i * 11)
	}
	dev.WriteAsync(7, want, false, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	dev.ReadAsync(7, 2, false, func(got []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("byte %d mismatch", i)
			}
		}
	})
}

func TestSessionDeviceNilDeferDisablesQuiesce(t *testing.T) {
	h := newSessionHarness(t, 16, 32)
	dev, err := NewSessionDevice(h.sess, 4096, 0, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	dev.WriteAsync(0, make([]byte, 4096), false, func(error) { done = true })
	if done {
		t.Fatal("window-16 write completed without drain and without quiesce")
	}
	// Caller-managed drain via a meta (LS) op is unaffected.
	metaDone := false
	dev.WriteAsync(1, make([]byte, 4096), true, func(error) { metaDone = true })
	if !metaDone {
		t.Fatal("LS op should complete immediately")
	}
}
