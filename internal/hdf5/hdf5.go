// Package hdf5 implements a miniature hierarchical data format library —
// the application-level substrate for the paper's §V-E study. It provides
// what h5bench exercises in HDF5: a file with a superblock, a flat group
// namespace, and typed one-dimensional datasets with contiguous storage,
// stored on a block device. The format is this repo's own (it is not
// HDF5-binary-compatible); what matters for the reproduction is the I/O
// shape: many small data accesses plus occasional metadata updates,
// routed through the NVMe-oPF initiator with data tagged
// throughput-critical and metadata tagged latency-sensitive — the VOL-style
// co-design the paper describes ("achieved with the HDF5 Virtual Object
// Layer (VOL) to intercept HDF5 APIs and utilize NVMe-oPF priority
// managers").
//
// The API is continuation-passing (every operation takes a done callback)
// because the simulator is event-driven and must never block; over a
// synchronous device the callbacks simply run inline.
package hdf5

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Device is the asynchronous block device files live on. meta marks
// metadata accesses, which adapters may map to the latency-sensitive
// priority class.
type Device interface {
	BlockSize() uint32
	NumBlocks() uint64
	ReadAsync(lba uint64, blocks uint32, meta bool, done func(data []byte, err error))
	WriteAsync(lba uint64, data []byte, meta bool, done func(err error))
}

// Datatype enumerates element types.
type Datatype uint8

// Datatypes.
const (
	Float32 Datatype = iota + 1
	Float64
	Int32
	Int64
	UInt8
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	case UInt8:
		return 1
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (d Datatype) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case UInt8:
		return "uint8"
	default:
		return fmt.Sprintf("Datatype(%d)", uint8(d))
	}
}

// ObjectKind distinguishes groups from datasets.
type ObjectKind uint8

// Kinds.
const (
	KindGroup ObjectKind = iota + 1
	KindDataset
)

// object is one namespace entry.
type object struct {
	name      string
	kind      ObjectKind
	dtype     Datatype
	length    uint64 // elements
	dataLBA   uint64
	capBlocks uint64
}

// Format constants.
const (
	magic          = "MINIHDF5"
	formatVersion  = 1
	superblockLBA  = 0
	objTableLBA    = 1
	objTableBlocks = 64 // metadata region capacity
	maxIOBlocks    = 128
)

// Errors.
var (
	ErrNotFormatted = errors.New("hdf5: device is not a mini-hdf5 file")
	ErrExists       = errors.New("hdf5: object already exists")
	ErrNotFound     = errors.New("hdf5: object not found")
	ErrOutOfSpace   = errors.New("hdf5: device full")
	ErrBadRange     = errors.New("hdf5: access beyond dataset extent")
	ErrMetaFull     = errors.New("hdf5: object table full")
)

// File is an open mini-hdf5 file. It is not synchronized: callers drive it
// from one event context (the simulator loop or a single goroutine).
type File struct {
	dev      Device
	bs       uint64
	objects  []*object
	index    map[string]*object
	nextFree uint64 // bump allocator (LBA)
}

// Create formats the device and returns the fresh file.
func Create(dev Device, done func(*File, error)) {
	f := &File{
		dev:      dev,
		bs:       uint64(dev.BlockSize()),
		index:    make(map[string]*object),
		nextFree: objTableLBA + objTableBlocks,
	}
	if dev.NumBlocks() <= f.nextFree {
		done(nil, ErrOutOfSpace)
		return
	}
	f.writeMeta(func(err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(f, nil)
	})
}

// Open reads an existing file's metadata.
func Open(dev Device, done func(*File, error)) {
	f := &File{dev: dev, bs: uint64(dev.BlockSize()), index: make(map[string]*object)}
	dev.ReadAsync(superblockLBA, 1, true, func(sb []byte, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if err := f.decodeSuperblock(sb); err != nil {
			done(nil, err)
			return
		}
		dev.ReadAsync(objTableLBA, objTableBlocks, true, func(ot []byte, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			if err := f.decodeObjectTable(ot); err != nil {
				done(nil, err)
				return
			}
			done(f, nil)
		})
	})
}

// encodeSuperblock builds block 0.
func (f *File) encodeSuperblock() []byte {
	buf := make([]byte, f.bs)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:], formatVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(f.bs))
	binary.LittleEndian.PutUint64(buf[16:], f.nextFree)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(f.objects)))
	binary.LittleEndian.PutUint32(buf[28:], crc32.ChecksumIEEE(buf[:28]))
	return buf
}

func (f *File) decodeSuperblock(buf []byte) error {
	if len(buf) < 32 || string(buf[:8]) != magic {
		return ErrNotFormatted
	}
	if crc32.ChecksumIEEE(buf[:28]) != binary.LittleEndian.Uint32(buf[28:]) {
		return fmt.Errorf("hdf5: superblock checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != formatVersion {
		return fmt.Errorf("hdf5: unsupported format version %d", v)
	}
	if bs := binary.LittleEndian.Uint32(buf[12:]); uint64(bs) != f.bs {
		return fmt.Errorf("hdf5: file block size %d != device %d", bs, f.bs)
	}
	f.nextFree = binary.LittleEndian.Uint64(buf[16:])
	return nil
}

// encodeObjectTable serializes the namespace.
func (f *File) encodeObjectTable() ([]byte, error) {
	capBytes := objTableBlocks * f.bs
	buf := make([]byte, capBytes)
	off := 0
	put16 := func(v uint16) { binary.LittleEndian.PutUint16(buf[off:], v); off += 2 }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[off:], v); off += 8 }
	// count, then entries, then trailing crc32.
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(f.objects)))
	off = 8
	for _, o := range f.objects {
		need := 2 + len(o.name) + 2 + 8*3
		if off+need+4 > int(capBytes) {
			return nil, ErrMetaFull
		}
		put16(uint16(len(o.name)))
		copy(buf[off:], o.name)
		off += len(o.name)
		buf[off] = byte(o.kind)
		buf[off+1] = byte(o.dtype)
		off += 2
		put64(o.length)
		put64(o.dataLBA)
		put64(o.capBlocks)
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[8:off]))
	return buf, nil
}

func (f *File) decodeObjectTable(buf []byte) error {
	if len(buf) < 8 {
		return fmt.Errorf("hdf5: short object table")
	}
	count := binary.LittleEndian.Uint32(buf[0:])
	want := binary.LittleEndian.Uint32(buf[4:])
	off := 8
	objs := make([]*object, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+2 > len(buf) {
			return fmt.Errorf("hdf5: truncated object table")
		}
		nameLen := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		if off+nameLen+2+24 > len(buf) {
			return fmt.Errorf("hdf5: truncated object entry")
		}
		o := &object{name: string(buf[off : off+nameLen])}
		off += nameLen
		o.kind = ObjectKind(buf[off])
		o.dtype = Datatype(buf[off+1])
		off += 2
		o.length = binary.LittleEndian.Uint64(buf[off:])
		o.dataLBA = binary.LittleEndian.Uint64(buf[off+8:])
		o.capBlocks = binary.LittleEndian.Uint64(buf[off+16:])
		off += 24
		objs = append(objs, o)
	}
	if crc32.ChecksumIEEE(buf[8:off]) != want {
		return fmt.Errorf("hdf5: object table checksum mismatch")
	}
	f.objects = objs
	f.index = make(map[string]*object, len(objs))
	for _, o := range objs {
		f.index[o.name] = o
	}
	return nil
}

// writeMeta persists the object table and superblock (metadata-class
// writes, which the session adapter maps to latency-sensitive requests).
func (f *File) writeMeta(done func(error)) {
	ot, err := f.encodeObjectTable()
	if err != nil {
		done(err)
		return
	}
	f.dev.WriteAsync(objTableLBA, ot, true, func(err error) {
		if err != nil {
			done(err)
			return
		}
		f.dev.WriteAsync(superblockLBA, f.encodeSuperblock(), true, done)
	})
}

// validName rejects empty and non-rooted paths.
func validName(path string) error {
	if len(path) == 0 || path[0] != '/' || len(path) > 4096 {
		return fmt.Errorf("hdf5: invalid object path %q", path)
	}
	return nil
}

// CreateGroup registers a group name (groups are pure namespace in this
// format).
func (f *File) CreateGroup(path string, done func(error)) {
	if err := validName(path); err != nil {
		done(err)
		return
	}
	if _, ok := f.index[path]; ok {
		done(ErrExists)
		return
	}
	o := &object{name: path, kind: KindGroup}
	f.objects = append(f.objects, o)
	f.index[path] = o
	f.writeMeta(done)
}

// Dataset is an open 1-D typed dataset.
type Dataset struct {
	f   *File
	obj *object
}

// CreateDataset allocates a contiguous 1-D dataset of length elements.
func (f *File) CreateDataset(path string, dtype Datatype, length uint64, done func(*Dataset, error)) {
	if err := validName(path); err != nil {
		done(nil, err)
		return
	}
	if dtype.Size() == 0 || length == 0 {
		done(nil, fmt.Errorf("hdf5: invalid dataset shape %v x %d", dtype, length))
		return
	}
	if _, ok := f.index[path]; ok {
		done(nil, ErrExists)
		return
	}
	bytes := length * uint64(dtype.Size())
	blocks := (bytes + f.bs - 1) / f.bs
	if f.nextFree+blocks > f.dev.NumBlocks() {
		done(nil, ErrOutOfSpace)
		return
	}
	o := &object{
		name: path, kind: KindDataset, dtype: dtype, length: length,
		dataLBA: f.nextFree, capBlocks: blocks,
	}
	f.nextFree += blocks
	f.objects = append(f.objects, o)
	f.index[path] = o
	f.writeMeta(func(err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(&Dataset{f: f, obj: o}, nil)
	})
}

// OpenDataset looks up an existing dataset.
func (f *File) OpenDataset(path string) (*Dataset, error) {
	o, ok := f.index[path]
	if !ok {
		return nil, ErrNotFound
	}
	if o.kind != KindDataset {
		return nil, fmt.Errorf("hdf5: %s is a group", path)
	}
	return &Dataset{f: f, obj: o}, nil
}

// Objects returns all object names (groups and datasets), in creation
// order.
func (f *File) Objects() []string {
	out := make([]string, len(f.objects))
	for i, o := range f.objects {
		out[i] = o.name
	}
	return out
}

// HasGroup reports whether path names a group.
func (f *File) HasGroup(path string) bool {
	o, ok := f.index[path]
	return ok && o.kind == KindGroup
}

// Close flushes metadata.
func (f *File) Close(done func(error)) { f.writeMeta(done) }

// Name returns the dataset path.
func (d *Dataset) Name() string { return d.obj.name }

// Len returns the dataset length in elements.
func (d *Dataset) Len() uint64 { return d.obj.length }

// Type returns the element datatype.
func (d *Dataset) Type() Datatype { return d.obj.dtype }

// byteExtent converts an element range into a byte range, validating it.
func (d *Dataset) byteExtent(elemOff, elems uint64) (byteOff, byteLen uint64, err error) {
	es := uint64(d.obj.dtype.Size())
	if elems == 0 || elemOff+elems < elemOff || elemOff+elems > d.obj.length {
		return 0, 0, ErrBadRange
	}
	return elemOff * es, elems * es, nil
}

// Write stores raw element bytes at element offset elemOff. len(data)
// must be a multiple of the element size.
func (d *Dataset) Write(elemOff uint64, data []byte, done func(error)) {
	es := uint64(d.obj.dtype.Size())
	if uint64(len(data))%es != 0 {
		done(fmt.Errorf("hdf5: write of %d bytes is not element-aligned", len(data)))
		return
	}
	byteOff, byteLen, err := d.byteExtent(elemOff, uint64(len(data))/es)
	if err != nil {
		done(err)
		return
	}
	d.f.rmw(d.obj, byteOff, byteLen, data, done)
}

// Read fetches elems elements starting at elemOff.
func (d *Dataset) Read(elemOff, elems uint64, done func([]byte, error)) {
	byteOff, byteLen, err := d.byteExtent(elemOff, elems)
	if err != nil {
		done(nil, err)
		return
	}
	bs := d.f.bs
	b0 := d.obj.dataLBA + byteOff/bs
	b1 := d.obj.dataLBA + (byteOff+byteLen+bs-1)/bs
	head := byteOff % bs
	d.f.readSpan(b0, b1-b0, func(span []byte, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		done(span[head:head+byteLen], nil)
	})
}

// rmw writes [byteOff, byteOff+byteLen) within an object's extent,
// performing a read-modify-write when the range is not block-aligned.
func (f *File) rmw(o *object, byteOff, byteLen uint64, data []byte, done func(error)) {
	bs := f.bs
	b0 := o.dataLBA + byteOff/bs
	b1 := o.dataLBA + (byteOff+byteLen+bs-1)/bs
	head := byteOff % bs
	tail := (byteOff + byteLen) % bs
	aligned := head == 0 && tail == 0
	if aligned {
		f.writeSpan(b0, data, done)
		return
	}
	// Unaligned: fetch the span, overlay, write back.
	f.readSpan(b0, b1-b0, func(span []byte, err error) {
		if err != nil {
			done(err)
			return
		}
		copy(span[head:], data)
		f.writeSpan(b0, span, done)
	})
}

// readSpan reads blocks [lba, lba+n) in chunks of maxIOBlocks issued
// concurrently.
func (f *File) readSpan(lba, n uint64, done func([]byte, error)) {
	if n == 0 {
		done(nil, nil)
		return
	}
	buf := make([]byte, n*f.bs)
	remaining := 0
	var firstErr error
	finishOne := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			done(buf, firstErr)
		}
	}
	type chunk struct {
		lba    uint64
		blocks uint32
		off    uint64
	}
	var chunks []chunk
	for at := uint64(0); at < n; at += maxIOBlocks {
		c := uint32(maxIOBlocks)
		if n-at < maxIOBlocks {
			c = uint32(n - at)
		}
		chunks = append(chunks, chunk{lba + at, c, at * f.bs})
	}
	remaining = len(chunks)
	for _, c := range chunks {
		c := c
		f.dev.ReadAsync(c.lba, c.blocks, false, func(data []byte, err error) {
			if err == nil {
				copy(buf[c.off:], data)
			}
			finishOne(err)
		})
	}
}

// writeSpan writes len(data)/bs blocks starting at lba, chunked.
func (f *File) writeSpan(lba uint64, data []byte, done func(error)) {
	n := uint64(len(data)) / f.bs
	if n == 0 || uint64(len(data))%f.bs != 0 {
		done(fmt.Errorf("hdf5: internal: span of %d bytes", len(data)))
		return
	}
	remaining := 0
	var firstErr error
	finishOne := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			done(firstErr)
		}
	}
	type chunk struct {
		lba  uint64
		data []byte
	}
	var chunks []chunk
	for at := uint64(0); at < n; at += maxIOBlocks {
		c := uint64(maxIOBlocks)
		if n-at < maxIOBlocks {
			c = n - at
		}
		chunks = append(chunks, chunk{lba + at, data[at*f.bs : (at+c)*f.bs]})
	}
	remaining = len(chunks)
	for _, c := range chunks {
		f.dev.WriteAsync(c.lba, c.data, false, finishOne)
	}
}
