package hdf5

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"nvmeopf/internal/bdev"
)

// newFile creates a file over a fresh in-memory device; all callbacks run
// inline via SyncDevice so tests read synchronously.
func newFile(t *testing.T, blocks uint64) (*File, *SyncDevice) {
	t.Helper()
	mem, err := bdev.NewMemory(4096, blocks)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewSyncDevice(mem)
	var f *File
	Create(dev, func(file *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		f = file
	})
	return f, dev
}

func TestDatatypeSizes(t *testing.T) {
	cases := map[Datatype]int{Float32: 4, Float64: 8, Int32: 4, Int64: 8, UInt8: 1, Datatype(99): 0}
	for dt, want := range cases {
		if got := dt.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", dt, got, want)
		}
		if dt.String() == "" {
			t.Errorf("empty string for %d", uint8(dt))
		}
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	f, dev := newFile(t, 10000)
	done := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	f.CreateGroup("/particles", done)
	f.CreateDataset("/particles/x", Float32, 1000, func(ds *Dataset, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if ds.Len() != 1000 || ds.Type() != Float32 {
			t.Fatalf("dataset shape %d/%v", ds.Len(), ds.Type())
		}
	})
	f.Close(done)

	// Reopen from the same device.
	Open(dev, func(g *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasGroup("/particles") {
			t.Error("group lost")
		}
		ds, err := g.OpenDataset("/particles/x")
		if err != nil {
			t.Fatal(err)
		}
		if ds.Len() != 1000 || ds.Type() != Float32 {
			t.Fatalf("reopened shape %d/%v", ds.Len(), ds.Type())
		}
		if len(g.Objects()) != 2 {
			t.Fatalf("objects = %v", g.Objects())
		}
	})
}

func TestOpenUnformattedFails(t *testing.T) {
	mem, _ := bdev.NewMemory(4096, 100)
	Open(NewSyncDevice(mem), func(f *File, err error) {
		if err == nil {
			t.Fatal("unformatted device opened")
		}
	})
}

func TestDatasetWriteReadExact(t *testing.T) {
	f, _ := newFile(t, 10000)
	var ds *Dataset
	f.CreateDataset("/d", Float64, 4096, func(d *Dataset, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ds = d
	})
	// Write 512 float64s (4096 bytes, exactly one block) at offset 512.
	data := make([]byte, 4096)
	for i := 0; i < 512; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], uint64(i)*3)
	}
	ds.Write(512, data, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	ds.Read(512, 512, func(got []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
	// Unwritten region reads as zeros.
	ds.Read(0, 10, func(got []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != 0 {
				t.Fatal("unwritten dataset region nonzero")
			}
		}
	})
}

func TestUnalignedRMW(t *testing.T) {
	f, _ := newFile(t, 10000)
	var ds *Dataset
	f.CreateDataset("/d", UInt8, 3*4096, func(d *Dataset, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ds = d
	})
	// Background pattern across all three blocks.
	bg := make([]byte, 3*4096)
	for i := range bg {
		bg[i] = 0xEE
	}
	ds.Write(0, bg, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	// Unaligned overlay straddling blocks 0-1.
	overlay := bytes.Repeat([]byte{0x11}, 1000)
	ds.Write(4000, overlay, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	ds.Read(0, 3*4096, func(got []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range got {
			want := byte(0xEE)
			if i >= 4000 && i < 5000 {
				want = 0x11
			}
			if b != want {
				t.Fatalf("byte %d = %#x, want %#x", i, b, want)
			}
		}
	})
}

func TestDatasetBoundsChecks(t *testing.T) {
	f, _ := newFile(t, 10000)
	var ds *Dataset
	f.CreateDataset("/d", Int32, 100, func(d *Dataset, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ds = d
	})
	ds.Write(99, make([]byte, 8), func(err error) {
		if err == nil {
			t.Error("write past end accepted")
		}
	})
	ds.Read(0, 101, func(_ []byte, err error) {
		if err == nil {
			t.Error("read past end accepted")
		}
	})
	ds.Write(0, make([]byte, 3), func(err error) {
		if err == nil {
			t.Error("non-element-aligned write accepted")
		}
	})
	ds.Read(0, 0, func(_ []byte, err error) {
		if err == nil {
			t.Error("zero-length read accepted")
		}
	})
}

func TestNamespaceRules(t *testing.T) {
	f, _ := newFile(t, 10000)
	f.CreateGroup("bad", func(err error) {
		if err == nil {
			t.Error("non-rooted name accepted")
		}
	})
	f.CreateGroup("/g", func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	f.CreateGroup("/g", func(err error) {
		if err != ErrExists {
			t.Errorf("duplicate group: %v", err)
		}
	})
	f.CreateDataset("/g", Float32, 10, func(_ *Dataset, err error) {
		if err != ErrExists {
			t.Errorf("dataset over group: %v", err)
		}
	})
	if _, err := f.OpenDataset("/missing"); err != ErrNotFound {
		t.Errorf("missing dataset: %v", err)
	}
	if _, err := f.OpenDataset("/g"); err == nil {
		t.Error("opened group as dataset")
	}
	f.CreateDataset("/zero", Float32, 0, func(_ *Dataset, err error) {
		if err == nil {
			t.Error("zero-length dataset accepted")
		}
	})
}

func TestOutOfSpace(t *testing.T) {
	f, _ := newFile(t, objTableBlocks+10)
	f.CreateDataset("/big", UInt8, 100*4096, func(_ *Dataset, err error) {
		if err != ErrOutOfSpace {
			t.Errorf("want ErrOutOfSpace, got %v", err)
		}
	})
}

func TestCreateOnTinyDeviceFails(t *testing.T) {
	mem, _ := bdev.NewMemory(4096, 4)
	Create(NewSyncDevice(mem), func(_ *File, err error) {
		if err != ErrOutOfSpace {
			t.Errorf("want ErrOutOfSpace, got %v", err)
		}
	})
}

func TestManyObjectsPersist(t *testing.T) {
	f, dev := newFile(t, 1<<20)
	for i := 0; i < 200; i++ {
		name := "/ds" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		f.CreateDataset(name, Float32, 100, func(_ *Dataset, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
	Open(dev, func(g *File, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Objects()) != 200 {
			t.Fatalf("objects = %d", len(g.Objects()))
		}
	})
}

func TestCorruptSuperblockDetected(t *testing.T) {
	f, dev := newFile(t, 10000)
	f.Close(func(error) {})
	// Flip a byte in block 0.
	buf := make([]byte, 4096)
	if err := dev.D.ReadBlocks(buf, 0); err != nil {
		t.Fatal(err)
	}
	buf[20] ^= 0xFF
	if err := dev.D.WriteBlocks(buf, 0); err != nil {
		t.Fatal(err)
	}
	Open(dev, func(_ *File, err error) {
		if err == nil {
			t.Fatal("corrupt superblock accepted")
		}
	})
}

// Property: any sequence of element-aligned writes followed by reads
// matches a flat byte-array model, regardless of alignment with blocks.
func TestDatasetModelProperty(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		file, _ := newFile(t, 1<<16)
		const n = 8192
		var ds *Dataset
		ok := true
		file.CreateDataset("/p", UInt8, n, func(d *Dataset, err error) {
			if err != nil {
				ok = false
				return
			}
			ds = d
		})
		if !ok {
			return false
		}
		model := make([]byte, n)
		for _, o := range ops {
			off := uint64(o.Off) % n
			data := o.Data
			if uint64(len(data)) > n-off {
				data = data[:n-off]
			}
			if len(data) == 0 {
				continue
			}
			ds.Write(off, data, func(err error) {
				if err != nil {
					ok = false
				}
			})
			copy(model[off:], data)
		}
		if !ok {
			return false
		}
		ds.Read(0, n, func(got []byte, err error) {
			if err != nil || !bytes.Equal(got, model) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSpanChunking(t *testing.T) {
	f, _ := newFile(t, 1<<16)
	var ds *Dataset
	// 2 MiB dataset: spans > maxIOBlocks blocks, forcing chunked IO.
	f.CreateDataset("/big", UInt8, 2<<20, func(d *Dataset, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ds = d
	})
	data := make([]byte, 2<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	ds.Write(0, data, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	ds.Read(0, 2<<20, func(got []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("chunked span mismatch")
		}
	})
}

// FuzzDecodeObjectTable ensures the metadata decoder never panics on
// corrupt object tables.
func FuzzDecodeObjectTable(f *testing.F) {
	file, _ := newFileForFuzz()
	file.CreateGroup("/g", func(error) {})
	file.CreateDataset("/d", Float32, 100, func(*Dataset, error) {})
	if ot, err := file.encodeObjectTable(); err == nil {
		f.Add(ot)
		// A few corruptions as extra seeds.
		for _, i := range []int{0, 4, 9, 20} {
			c := append([]byte(nil), ot...)
			if i < len(c) {
				c[i] ^= 0xFF
			}
			f.Add(c)
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		g := &File{bs: 4096, index: map[string]*object{}}
		_ = g.decodeObjectTable(raw) // must not panic
	})
}

// newFileForFuzz builds a file without *testing.T plumbing.
func newFileForFuzz() (*File, *SyncDevice) {
	mem, _ := bdev.NewMemory(4096, 10000)
	dev := NewSyncDevice(mem)
	var f *File
	Create(dev, func(file *File, err error) { f = file })
	return f, dev
}
