package hdf5

import (
	"errors"
	"fmt"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// SyncDevice adapts a synchronous bdev.Device to the async Device
// interface; callbacks run inline. Used by unit tests and local tools.
type SyncDevice struct {
	D bdev.Device
}

// NewSyncDevice wraps a bdev.
func NewSyncDevice(d bdev.Device) *SyncDevice { return &SyncDevice{D: d} }

// BlockSize implements Device.
func (s *SyncDevice) BlockSize() uint32 { return s.D.BlockSize() }

// NumBlocks implements Device.
func (s *SyncDevice) NumBlocks() uint64 { return s.D.NumBlocks() }

// ReadAsync implements Device.
func (s *SyncDevice) ReadAsync(lba uint64, blocks uint32, meta bool, done func([]byte, error)) {
	buf := make([]byte, uint64(blocks)*uint64(s.D.BlockSize()))
	err := s.D.ReadBlocks(buf, lba)
	if err != nil {
		done(nil, err)
		return
	}
	done(buf, nil)
}

// WriteAsync implements Device.
func (s *SyncDevice) WriteAsync(lba uint64, data []byte, meta bool, done func(error)) {
	done(s.D.WriteBlocks(data, lba))
}

// SessionDevice exposes a window of an NVMe-oPF namespace (a partition
// starting at Base, NumBlocks long) as a Device, over one initiator
// session. Data accesses inherit the session's class (throughput-critical
// for h5bench ranks); metadata accesses are tagged latency-sensitive —
// the paper's recommended flag use ("if an application necessitates
// exchanging metadata or control information ... users can set requests
// as latency-sensitive", §III-C).
//
// The adapter performs its own flow control: operations that exceed the
// session queue depth wait in an internal FIFO and are resubmitted as
// completions free slots.
type SessionDevice struct {
	sess    *hostqp.Session
	base    uint64
	blocks  uint64
	bs      uint32
	waiting []func() error
	// MetaPriority is the class for metadata ops (default LS).
	MetaPriority proto.Priority

	// deferFn schedules a function to run after the current event cascade
	// (engine.Schedule(0, fn) in simulation). It powers the quiesce
	// check: a partial throughput-critical window whose owner has gone
	// quiet must be force-drained or it waits at the target forever.
	deferFn    func(func())
	checkArmed bool
	activity   int64
}

// NewSessionDevice creates a partition view [base, base+blocks) over a
// session. blockSize must match the target namespace's block size.
// deferFn schedules a callback after the current event cascade (pass the
// simulation engine's zero-delay Schedule; nil disables the quiesce check,
// in which case the caller must size its in-flight window to a multiple of
// the session's drain window or flush manually).
func NewSessionDevice(sess *hostqp.Session, blockSize uint32, base, blocks uint64, deferFn func(func())) (*SessionDevice, error) {
	if sess == nil {
		return nil, errors.New("hdf5: nil session")
	}
	if blocks == 0 {
		return nil, errors.New("hdf5: empty partition")
	}
	return &SessionDevice{
		sess: sess, base: base, blocks: blocks, bs: blockSize,
		MetaPriority: proto.PrioLatencySensitive,
		deferFn:      deferFn,
	}, nil
}

// BlockSize implements Device.
func (d *SessionDevice) BlockSize() uint32 { return d.bs }

// NumBlocks implements Device.
func (d *SessionDevice) NumBlocks() uint64 { return d.blocks }

// check validates a partition-relative access.
func (d *SessionDevice) check(lba uint64, blocks uint32) error {
	if blocks == 0 || lba+uint64(blocks) > d.blocks {
		return fmt.Errorf("hdf5: partition access [%d,+%d) beyond %d blocks", lba, blocks, d.blocks)
	}
	return nil
}

// submit tries an op now or queues it behind earlier waiters.
func (d *SessionDevice) submit(try func() error) {
	d.activity++
	defer d.armQuiesceCheck()
	if len(d.waiting) == 0 {
		err := try()
		if err == nil {
			return
		}
		if !errors.Is(err, hostqp.ErrQueueFull) {
			// Hard failure surfaces through the op's own done callback
			// (try is built to report non-queue errors itself), so an
			// error here is always queue-full by construction.
			return
		}
	}
	d.waiting = append(d.waiting, try)
}

// armQuiesceCheck schedules (at most one) end-of-cascade check that
// force-drains a partial TC window once the caller has gone quiet: the
// coalescing design defers completions until a draining request (§III-C),
// so a tail window with no successor submissions would otherwise wait at
// the target forever.
func (d *SessionDevice) armQuiesceCheck() {
	if d.deferFn == nil || d.checkArmed {
		return
	}
	d.checkArmed = true
	snapshot := d.activity
	d.deferFn(func() {
		d.checkArmed = false
		if d.activity != snapshot {
			// Progress since the check was armed: look again after the
			// next cascade.
			d.armQuiesceCheck()
			return
		}
		if len(d.waiting) == 0 && d.sess.PartialWindow() > 0 && d.sess.CanSubmit() {
			d.sess.Flush()
			_ = d.sess.Submit(hostqp.IO{Op: nvme.OpFlush, Done: func(hostqp.Result) { d.pump() }})
		}
	})
}

// pump retries waiting ops after a completion freed a slot.
func (d *SessionDevice) pump() {
	d.activity++
	d.armQuiesceCheck()
	for len(d.waiting) > 0 {
		if err := d.waiting[0](); errors.Is(err, hostqp.ErrQueueFull) {
			return
		}
		d.waiting = d.waiting[1:]
	}
}

// Waiting returns the number of queued (not yet submitted) ops.
func (d *SessionDevice) Waiting() int { return len(d.waiting) }

// prioFor maps the meta flag to a wire priority override.
func (d *SessionDevice) prioFor(meta bool) proto.Priority {
	if meta {
		return d.MetaPriority
	}
	return 0 // inherit session class
}

// ReadAsync implements Device.
func (d *SessionDevice) ReadAsync(lba uint64, blocks uint32, meta bool, done func([]byte, error)) {
	if err := d.check(lba, blocks); err != nil {
		done(nil, err)
		return
	}
	d.submit(func() error {
		err := d.sess.Submit(hostqp.IO{
			Op:     nvme.OpRead,
			LBA:    d.base + lba,
			Blocks: blocks,
			Prio:   d.prioFor(meta),
			Done: func(r hostqp.Result) {
				if !r.Status.OK() {
					done(nil, fmt.Errorf("hdf5: read failed: %v", r.Status))
				} else {
					done(r.Data, nil)
				}
				d.pump()
			},
		})
		if err != nil && !errors.Is(err, hostqp.ErrQueueFull) {
			done(nil, err)
			return nil // consumed: reported via done
		}
		return err
	})
}

// WriteAsync implements Device.
func (d *SessionDevice) WriteAsync(lba uint64, data []byte, meta bool, done func(error)) {
	blocks := uint32(uint64(len(data)) / uint64(d.bs))
	if uint64(len(data))%uint64(d.bs) != 0 {
		done(fmt.Errorf("hdf5: write of %d bytes not block-aligned", len(data)))
		return
	}
	if err := d.check(lba, blocks); err != nil {
		done(err)
		return
	}
	d.submit(func() error {
		err := d.sess.Submit(hostqp.IO{
			Op:     nvme.OpWrite,
			LBA:    d.base + lba,
			Blocks: blocks,
			Data:   data,
			Prio:   d.prioFor(meta),
			Done: func(r hostqp.Result) {
				if !r.Status.OK() {
					done(fmt.Errorf("hdf5: write failed: %v", r.Status))
				} else {
					done(nil)
				}
				d.pump()
			},
		})
		if err != nil && !errors.Is(err, hostqp.ErrQueueFull) {
			done(err)
			return nil
		}
		return err
	})
}
