package tcptrans

// Unit tests for the vectored drainWriter: the byte stream must be
// identical to concatenated proto.Marshal output under every knob
// combination (the zero-copy and coalescing acceptance criterion), every
// staged PDU must be released exactly once on every exit path (success,
// write error, sentinel, teardown), and the coalescing window must merge
// back-to-back submissions into a single flush.

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// writerTestPDUs builds a mixed batch exercising every staging path:
// large payloads (scatter-gather referenced), small payloads (copied into
// the header buffer), and fixed-size PDUs with no payload at all.
func writerTestPDUs() []proto.PDU {
	large := make([]byte, 8192)
	for i := range large {
		large[i] = byte(i * 7)
	}
	small := make([]byte, 512)
	for i := range small {
		small[i] = byte(i * 3)
	}
	return []proto.PDU{
		&proto.ICReq{PFV: 1, QueueDepth: 8, Prio: proto.PrioThroughputCritical, NSID: 1},
		&proto.CapsuleCmd{
			Cmd:  nvme.Command{Opcode: nvme.OpWrite, CID: 1, NSID: 1, SLBA: 8, NLB: 1},
			Prio: proto.PrioThroughputCritical, Data: large,
		},
		&proto.C2HData{CCCID: 2, Offset: 0, Data: append([]byte(nil), large...)},
		&proto.C2HData{CCCID: 3, Offset: 4096, Data: small},
		&proto.CapsuleCmd{
			Cmd:  nvme.Command{Opcode: nvme.OpWrite, CID: 4, NSID: 1, SLBA: 16, NLB: 0},
			Prio: proto.PrioLatencySensitive, Data: small,
		},
		&proto.CapsuleResp{Cpl: nvme.Completion{CID: 1}},
		&proto.C2HData{CCCID: 5, Offset: 0, Data: nil},
	}
}

func marshalAll(pdus []proto.PDU) []byte {
	var want []byte
	for _, p := range pdus {
		want = proto.AppendPDU(want, p)
	}
	return want
}

// runWriterCollect feeds pdus (then the close sentinel) through a
// drainWriter over the given connection pair and returns the bytes that
// arrived, after the writer closed the socket.
func runWriterCollect(t *testing.T, wc, rc net.Conn, cfg writerConfig, pdus []proto.PDU, feed func(chan<- proto.PDU)) []byte {
	t.Helper()
	out := make(chan proto.PDU, len(pdus)+1)
	done := make(chan struct{})
	quit := make(chan struct{})
	defer close(done)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		drainWriter(wc, out, done, quit, cfg)
	}()
	go func() {
		if feed != nil {
			feed(out)
		} else {
			for _, p := range pdus {
				out <- p
			}
		}
		out <- nil // flush-then-close sentinel
	}()
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	// The sentinel closed the socket; unblock and join the writer.
	return got
}

// tcpPair returns a connected loopback TCP pair so net.Buffers.WriteTo
// takes the real writev path.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		c.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { c.Close(); r.c.Close() })
	return c, r.c
}

// TestWriterWireIdentity pins the acceptance criterion: with coalescing
// off (and on), at every batch size, over both a real TCP socket (writev)
// and a non-TCP pipe (sequential fallback), the vectored writer emits a
// byte stream identical to concatenating proto.Marshal for each PDU.
func TestWriterWireIdentity(t *testing.T) {
	cases := []struct {
		name string
		cfg  writerConfig
		tcp  bool
	}{
		{"default-tcp", writerConfig{}, true},
		{"default-pipe", writerConfig{}, false},
		{"batch1-tcp", writerConfig{batch: 1}, true},
		{"coalesced-tcp", writerConfig{coalesceBytes: 64 << 10, coalesceDelay: 200 * time.Microsecond}, true},
		{"coalesced-pipe", writerConfig{coalesceBytes: 64 << 10, coalesceDelay: 200 * time.Microsecond}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pdus := writerTestPDUs()
			want := marshalAll(pdus)
			var wc, rc net.Conn
			if tc.tcp {
				wc, rc = tcpPair(t)
			} else {
				wc, rc = net.Pipe()
				t.Cleanup(func() { wc.Close(); rc.Close() })
			}
			got := runWriterCollect(t, wc, rc, tc.cfg, pdus, nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("wire stream differs: got %d bytes, want %d", len(got), len(want))
			}
		})
	}
}

// TestWriterWireIdentityStaggered feeds PDUs one at a time with gaps so
// the coalescing window opens and closes repeatedly — the stream must
// still be byte-identical.
func TestWriterWireIdentityStaggered(t *testing.T) {
	pdus := writerTestPDUs()
	want := marshalAll(pdus)
	wc, rc := tcpPair(t)
	cfg := writerConfig{coalesceBytes: 4 << 10, coalesceDelay: 100 * time.Microsecond}
	got := runWriterCollect(t, wc, rc, cfg, pdus, func(out chan<- proto.PDU) {
		for i, p := range pdus {
			if i%2 == 1 {
				time.Sleep(300 * time.Microsecond) // outlast the window
			}
			out <- p
		}
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("wire stream differs: got %d bytes, want %d", len(got), len(want))
	}
}

// countReleases wraps a release hook counting per-PDU retirements.
type countReleases struct {
	mu     sync.Mutex
	counts map[proto.PDU]int
}

func newCountReleases() *countReleases {
	return &countReleases{counts: make(map[proto.PDU]int)}
}

func (c *countReleases) release(p proto.PDU) {
	c.mu.Lock()
	c.counts[p]++
	c.mu.Unlock()
}

func (c *countReleases) verify(t *testing.T, pdus []proto.PDU) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range pdus {
		if n := c.counts[p]; n != 1 {
			t.Errorf("pdu %d (%T) released %d times, want exactly 1", i, p, n)
		}
	}
	if len(c.counts) != len(pdus) {
		t.Errorf("released %d distinct PDUs, want %d", len(c.counts), len(pdus))
	}
}

// TestWriterReleaseExactlyOnceSuccess: every flushed PDU retires once.
func TestWriterReleaseExactlyOnceSuccess(t *testing.T) {
	pdus := writerTestPDUs()
	wc, rc := tcpPair(t)
	cr := newCountReleases()
	runWriterCollect(t, wc, rc, writerConfig{release: cr.release}, pdus, nil)
	cr.verify(t, pdus)
}

// errConn fails every write after failAfter bytes and counts closes.
type errConn struct {
	net.Conn
	wrote     atomic.Int64
	failAfter int64
	closed    atomic.Int32
}

var errInjectedWrite = errors.New("injected write failure")

func (c *errConn) Write(b []byte) (int, error) {
	if c.wrote.Load() >= c.failAfter {
		return 0, errInjectedWrite
	}
	c.wrote.Add(int64(len(b)))
	return len(b), nil
}

func (c *errConn) Close() error {
	c.closed.Add(1)
	if c.Conn != nil {
		return c.Conn.Close()
	}
	return nil
}

// TestWriterReleaseExactlyOnceWriteError: a failing flush must release
// the staged batch once, close the connection, and keep draining (and
// releasing) queued PDUs until teardown — never a double release.
func TestWriterReleaseExactlyOnceWriteError(t *testing.T) {
	pdus := writerTestPDUs()
	conn := &errConn{failAfter: 0} // first write fails
	cr := newCountReleases()
	out := make(chan proto.PDU, len(pdus))
	done := make(chan struct{})
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		drainWriter(conn, out, done, quit, writerConfig{batch: 1, release: cr.release})
	}()
	for _, p := range pdus {
		out <- p
	}
	// The writer is now in its post-error consume loop; every queued PDU
	// must have been (or will be) freed. Give it a moment, then tear down.
	waitFor(t, "all PDUs consumed", func() bool {
		cr.mu.Lock()
		defer cr.mu.Unlock()
		return len(cr.counts) == len(pdus)
	})
	close(done)
	wg.Wait()
	cr.verify(t, pdus)
	if conn.closed.Load() == 0 {
		t.Error("write error did not close the connection")
	}
}

// TestWriterReleaseExactlyOnceTeardown: PDUs still queued when the read
// loop tears the connection down are drained and released exactly once.
func TestWriterReleaseExactlyOnceTeardown(t *testing.T) {
	pdus := writerTestPDUs()
	cr := newCountReleases()
	out := make(chan proto.PDU, len(pdus))
	for _, p := range pdus {
		out <- p
	}
	done := make(chan struct{})
	close(done) // teardown already signalled: writer must drain-and-free
	quit := make(chan struct{})
	drainWriter(&errConn{failAfter: 1 << 30}, out, done, quit, writerConfig{release: cr.release})
	cr.verify(t, pdus)
}

// TestWriterSentinelFlushesBeforeClose: everything queued ahead of the
// nil sentinel reaches the wire before the socket closes.
func TestWriterSentinelFlushesBeforeClose(t *testing.T) {
	pdus := writerTestPDUs()
	want := marshalAll(pdus)
	wc, rc := tcpPair(t)
	out := make(chan proto.PDU, len(pdus)+1)
	for _, p := range pdus {
		out <- p
	}
	out <- nil
	done := make(chan struct{})
	defer close(done)
	go drainWriter(wc, out, done, make(chan struct{}), writerConfig{})
	got, err := io.ReadAll(rc) // EOF only after the writer closes wc
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sentinel close lost bytes: got %d, want %d", len(got), len(want))
	}
}

// countWriteConn counts flushes (Write calls) while discarding bytes.
type countWriteConn struct {
	net.Conn
	writes atomic.Int32
	bytes  atomic.Int64
	closed chan struct{}
	once   sync.Once
}

func (c *countWriteConn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	c.bytes.Add(int64(len(b)))
	return len(b), nil
}

func (c *countWriteConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// TestWriterCoalescingMergesFlushes: two small submissions arriving
// within one coalescing window share a single flush. Small payloads stay
// below zcPayloadThreshold, so the whole batch is one contiguous span and
// one flush means exactly one Write call.
func TestWriterCoalescingMergesFlushes(t *testing.T) {
	p1 := &proto.CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1}}
	p2 := &proto.CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 2, NSID: 1}}
	conn := &countWriteConn{closed: make(chan struct{})}
	out := make(chan proto.PDU, 4)
	done := make(chan struct{})
	defer close(done)
	go drainWriter(conn, out, done, make(chan struct{}), writerConfig{
		coalesceBytes: 64 << 10,
		coalesceDelay: 500 * time.Millisecond, // far longer than the gap below
	})
	out <- p1
	time.Sleep(2 * time.Millisecond) // writer is now waiting in the window
	out <- p2
	out <- nil // closes the window and flushes
	<-conn.closed
	if n := conn.writes.Load(); n != 1 {
		t.Errorf("coalescing produced %d flushes, want 1", n)
	}
	if want := int64(p1.WireSize() + p2.WireSize()); conn.bytes.Load() != want {
		t.Errorf("flushed %d bytes, want %d", conn.bytes.Load(), want)
	}
}
