package tcptrans

import (
	"net"
	"time"

	"nvmeopf/internal/proto"
)

// maxWriteBatch caps how many marshalled bytes one drain of the outbound
// channel may accumulate before flushing — a full coalesced drain window
// of data PDUs goes out in one syscall, but a slow peer cannot force
// unbounded buffering.
const maxWriteBatch = 256 << 10

// zcPayloadThreshold selects which payloads ride the scatter-gather path:
// a payload at least this large is sent by reference (its slice becomes
// its own iovec entry) instead of being copied into the staging buffer.
// Below the threshold the copy is cheaper than an extra iovec entry.
const zcPayloadThreshold = 1024

// Coalescing defaults: when exactly one of DialConfig.CoalesceBytes /
// CoalesceDelay is set, the other takes these values.
const (
	DefaultCoalesceBytes = 16 << 10
	DefaultCoalesceDelay = 40 * time.Microsecond
)

// joinThreshold: a staged batch at or below this many wire bytes is
// copied into one contiguous buffer and sent with a plain Write instead
// of a vectored write. For a batch carrying a single small payload the
// memcpy (~hundreds of ns) is cheaper than the iovec setup and kernel
// gather path; writev earns its keep on large multi-PDU batches, where
// the copies it avoids dominate.
const joinThreshold = 16 << 10

// writerConfig parameterizes one connection's drainWriter.
type writerConfig struct {
	// batch caps how many wire bytes one drain may stage before flushing
	// (<=0 means maxWriteBatch; 1 degenerates to one flush per PDU).
	batch int
	// coalesceBytes/coalesceDelay, both >0, open a submission-coalescing
	// window: after draining everything already queued, the writer holds
	// the staged batch up to coalesceDelay waiting for more PDUs, flushing
	// early once coalesceBytes are staged. Zero values (the default)
	// disable the window — the writer never waits, and the byte stream is
	// identical to the uncoalesced writer's.
	coalesceBytes int
	coalesceDelay time.Duration
	// release retires each staged PDU after its bytes are flushed (or
	// dropped on error/teardown) — never earlier, because the payload
	// slice is referenced by the write vector until the syscall lands.
	release func(proto.PDU)
	// closeConn overrides how the writer tears the socket down (nil means
	// conn.Close). The client passes its once-only netClose here while
	// writing to the raw *net.TCPConn, so the writev fast path is not
	// defeated by a wrapper type.
	closeConn func()
}

// wbatch stages one flush worth of PDUs: fixed prefixes (headers, and the
// payloads small enough to copy) accumulate in hdr, while large payloads
// are referenced, not copied — cuts[i] records the hdr offset where
// payloads[i] interleaves. flushVec assembles the net.Buffers vector at
// flush time (indices stay valid across hdr reallocation), merging the
// contiguous header spans between payloads into single iovec entries.
// pending holds every staged PDU until the flush outcome is known:
// ownership of a referenced payload transfers only when the bytes are on
// the wire (or the connection is abandoned), exactly once.
type wbatch struct {
	hdr      []byte
	cuts     []int
	payloads [][]byte
	vec      net.Buffers
	join     []byte
	pending  []proto.PDU
	bytes    int
}

// add stages one PDU.
func (b *wbatch) add(p proto.PDU) {
	b.bytes += p.WireSize()
	if pl := proto.PayloadRef(p); len(pl) >= zcPayloadThreshold {
		b.hdr = proto.AppendPDUHeader(b.hdr, p)
		b.cuts = append(b.cuts, len(b.hdr))
		b.payloads = append(b.payloads, pl)
	} else {
		b.hdr = proto.AppendPDU(b.hdr, p)
	}
	b.pending = append(b.pending, p)
}

// flushVec assembles the scatter-gather vector for the staged batch.
func (b *wbatch) flushVec() net.Buffers {
	vec := b.vec[:0]
	prev := 0
	for i, cut := range b.cuts {
		if cut > prev {
			vec = append(vec, b.hdr[prev:cut])
		}
		vec = append(vec, b.payloads[i])
		prev = cut
	}
	if len(b.hdr) > prev {
		vec = append(vec, b.hdr[prev:])
	}
	return vec
}

// write flushes the staged bytes to conn: one plain Write when the batch
// is a single contiguous span (no referenced payloads) or small enough
// that joining beats the iovec setup, one vectored write — writev on a
// *net.TCPConn — otherwise.
func (b *wbatch) write(conn net.Conn) error {
	vec := b.flushVec()
	b.vec = vec // keep the (possibly grown) backing array for reuse
	var err error
	switch {
	case len(vec) == 0:
	case len(vec) == 1:
		_, err = conn.Write(vec[0])
	case b.bytes <= joinThreshold:
		b.join = b.join[:0]
		for _, s := range vec {
			b.join = append(b.join, s...)
		}
		_, err = conn.Write(b.join)
	default:
		_, err = vec.WriteTo(conn) // consumes the local header only
	}
	// Clear the saved entries so retired payloads are not pinned by the
	// reused backing array until the next flush overwrites them.
	for i := range b.vec {
		b.vec[i] = nil
	}
	b.vec = b.vec[:0]
	return err
}

// retire releases every staged PDU exactly once and resets the batch.
func (b *wbatch) retire(release func(proto.PDU)) {
	for i, p := range b.pending {
		if p != nil && release != nil {
			release(p)
		}
		b.pending[i] = nil
	}
	b.pending = b.pending[:0]
	for i := range b.payloads {
		b.payloads[i] = nil
	}
	b.payloads = b.payloads[:0]
	b.cuts = b.cuts[:0]
	b.hdr = b.hdr[:0]
	b.bytes = 0
}

// drainWriter is the outbound half of one connection, shared by the
// server and the client: it pulls PDUs off out, stages them — headers
// marshalled allocation-free into one reused buffer, large payloads
// referenced in place — greedily draining whatever else is already
// queued, up to cfg.batch bytes, then flushes the whole batch with a
// single (vectored) write. Payload bytes travel from the owner's buffer
// to the socket without an intermediate copy, and a burst of N coalesced
// responses costs one syscall instead of N.
//
// A nil PDU on out is the flush-then-close sentinel: everything queued
// before it is written, then the socket is closed — how a reactor-side
// protocol error tears the connection down without racing a final
// TermReq off the wire.
//
// cfg.release retires each PDU after its flush resolves (success, write
// error, or teardown drop) — exactly once, never at stage time, because
// the write vector references pooled payload bytes until the syscall
// lands. done is closed by the connection's read loop at teardown; quit
// is the server/client-wide shutdown signal.
func drainWriter(conn net.Conn, out <-chan proto.PDU, done, quit <-chan struct{}, cfg writerConfig) {
	if cfg.batch <= 0 {
		cfg.batch = maxWriteBatch
	}
	closeConn := cfg.closeConn
	if closeConn == nil {
		closeConn = func() { conn.Close() }
	}
	free := func(p proto.PDU) {
		if p != nil && cfg.release != nil {
			cfg.release(p)
		}
	}
	b := &wbatch{hdr: make([]byte, 0, 64<<10)}
	coalescing := cfg.coalesceBytes > 0 && cfg.coalesceDelay > 0
	var coalesceTimer *time.Timer
	for {
		var p proto.PDU
		select {
		case p = <-out:
		case <-done:
			// Best-effort: retire anything still queued so pooled buffers
			// return instead of waiting for GC.
			for {
				select {
				case p := <-out:
					free(p)
				default:
					return
				}
			}
		case <-quit:
			return
		}
		closeAfter := p == nil
		if p != nil {
			b.add(p)
		}
	drain:
		for !closeAfter && b.bytes < cfg.batch {
			select {
			case p = <-out:
				if p == nil {
					closeAfter = true
					break drain
				}
				b.add(p)
			default:
				break drain
			}
		}
		if coalescing && !closeAfter && b.bytes < cfg.batch && b.bytes < cfg.coalesceBytes {
			// Aggregation window: the queue ran dry below the coalescing
			// threshold, so hold the batch briefly — small submissions
			// arriving within the window share one vectored flush instead
			// of paying a syscall each.
			if coalesceTimer == nil {
				coalesceTimer = time.NewTimer(cfg.coalesceDelay)
			} else {
				coalesceTimer.Reset(cfg.coalesceDelay)
			}
			expired := false
		wait:
			for !closeAfter && b.bytes < cfg.batch && b.bytes < cfg.coalesceBytes {
				select {
				case p = <-out:
					if p == nil {
						closeAfter = true
						break wait
					}
					b.add(p)
				case <-coalesceTimer.C:
					expired = true
					break wait
				case <-done:
					// Teardown mid-window: the connection is gone, so the
					// staged batch is dropped (released once), like every
					// queued-but-unwritten PDU.
					b.retire(cfg.release)
					for {
						select {
						case p := <-out:
							free(p)
						default:
							return
						}
					}
				case <-quit:
					b.retire(cfg.release)
					return
				}
			}
			if !expired && !coalesceTimer.Stop() {
				<-coalesceTimer.C
			}
		}
		if b.bytes > 0 {
			err := b.write(conn)
			b.retire(cfg.release)
			if err != nil {
				closeConn() // unblocks the read loop
				// Keep consuming (and releasing) until teardown so
				// senders blocked on the channel make progress.
				for {
					select {
					case p := <-out:
						free(p)
					case <-done:
						return
					case <-quit:
						return
					}
				}
			}
		}
		if closeAfter {
			closeConn() // unblocks the read loop; queued PDUs flushed
		}
	}
}

// releaseServerPDU retires an outbound PDU after the server writer has
// flushed (or dropped) it: pooled read payloads go back to the buffer
// pool, per-request structs to the struct pools. Cold PDUs (ICResp,
// TermReq) pass through Recycle as no-ops.
func releaseServerPDU(p proto.PDU) {
	if d, ok := p.(*proto.C2HData); ok {
		proto.PutBuf(d.Data)
		d.Data = nil
	}
	proto.Recycle(p)
}

// releaseClientPDU retires an outbound PDU after the client writer has
// flushed (or dropped) it. CapsuleCmd write payloads are user-owned
// (hostqp passes the caller's slice through), so only the reference is
// dropped — never the buffer.
func releaseClientPDU(p proto.PDU) {
	if c, ok := p.(*proto.CapsuleCmd); ok {
		c.Data = nil
	}
	proto.Recycle(p)
}
