package tcptrans

import (
	"net"

	"nvmeopf/internal/proto"
)

// maxWriteBatch caps how many marshalled bytes one drain of the outbound
// channel may accumulate before flushing — a full coalesced drain window
// of data PDUs goes out in one syscall, but a slow peer cannot force
// unbounded buffering.
const maxWriteBatch = 256 << 10

// drainWriter is the outbound half of one connection, shared by the
// server and the client: it pulls PDUs off out, marshals them with
// AppendPDU into one reused buffer — greedily draining whatever else is
// already queued, up to batch bytes (callers pass maxWriteBatch unless
// configured otherwise; 1 degenerates to one syscall per PDU, the
// pre-shard writer) — and flushes the batch with a single Write.
// Marshalling is allocation-free in steady state, and a burst of N
// coalesced responses costs one syscall instead of N.
//
// A nil PDU on out is the flush-then-close sentinel: everything queued
// before it is written, then the socket is closed — how a reactor-side
// protocol error tears the connection down without racing a final
// TermReq off the wire.
//
// release, if non-nil, retires each PDU right after it is marshalled
// (returning pooled payloads and structs); it also runs for PDUs consumed
// after a write error, so the sender's pool accounting stays balanced.
// done is closed by the connection's read loop at teardown; quit is the
// server/client-wide shutdown signal.
func drainWriter(conn net.Conn, out <-chan proto.PDU, done, quit <-chan struct{}, release func(proto.PDU), batch int) {
	buf := make([]byte, 0, 64<<10)
	free := func(p proto.PDU) {
		if p != nil && release != nil {
			release(p)
		}
	}
	for {
		var p proto.PDU
		select {
		case p = <-out:
		case <-done:
			// Best-effort: retire anything still queued so pooled buffers
			// return instead of waiting for GC.
			for {
				select {
				case p := <-out:
					free(p)
				default:
					return
				}
			}
		case <-quit:
			return
		}
		buf = buf[:0]
		closeAfter := p == nil
		if p != nil {
			buf = proto.AppendPDU(buf, p)
			free(p)
		}
	drain:
		for !closeAfter && len(buf) < batch {
			select {
			case p = <-out:
				if p == nil {
					closeAfter = true
					break drain
				}
				buf = proto.AppendPDU(buf, p)
				free(p)
			default:
				break drain
			}
		}
		if len(buf) > 0 {
			if _, err := conn.Write(buf); err != nil {
				conn.Close() // unblocks the read loop
				// Keep consuming (and releasing) until teardown so
				// senders blocked on the channel make progress.
				for {
					select {
					case p := <-out:
						free(p)
					case <-done:
						return
					case <-quit:
						return
					}
				}
			}
		}
		if closeAfter {
			conn.Close() // unblocks the read loop; queued PDUs flushed
		}
	}
}

// releaseServerPDU retires an outbound PDU after the server writer has
// marshalled (or dropped) it: pooled read payloads go back to the buffer
// pool, per-request structs to the struct pools. Cold PDUs (ICResp,
// TermReq) pass through Recycle as no-ops.
func releaseServerPDU(p proto.PDU) {
	if d, ok := p.(*proto.C2HData); ok {
		proto.PutBuf(d.Data)
		d.Data = nil
	}
	proto.Recycle(p)
}

// releaseClientPDU retires an outbound PDU after the client writer has
// marshalled (or dropped) it. CapsuleCmd write payloads are user-owned
// (hostqp passes the caller's slice through), so only the reference is
// dropped — never the buffer.
func releaseClientPDU(p proto.PDU) {
	if c, ok := p.(*proto.CapsuleCmd); ok {
		c.Data = nil
	}
	proto.Recycle(p)
}
