package tcptrans

// Chaos variant for the adaptive drain-window controller: an LS prober
// keeps the shared signal under constant pressure (an unmeetable 1ns
// objective makes every completion a violation) while a resilient TC
// victim is killed mid-flight and replays. Run with -race. Invariants:
//
//   - the controller takes decisions before, and keeps taking them after,
//     the victim's connection dies (the loop survives session churn);
//   - the sustained burn produces multiplicative back-off (a "shrink"
//     verdict lands in the decision log);
//   - every idempotent victim write still completes exactly once at the
//     application level — adaptation never costs correctness;
//   - teardown is clean: zero live sessions, no goroutine leaks.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvmeopf/internal/autotune"
	"nvmeopf/internal/faultnet"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

func TestAutotuneChaosAdaptsAcrossReplay(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := telemetry.New()
	dev := newMemoryDevice(4096, 1<<14)
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Mode: targetqp.ModeOPF, Device: dev, Telemetry: reg,
		WriteLatency: 300 * time.Microsecond,
		Autotune: &autotune.Config{
			ObjectiveNS: 1, BudgetPPM: 100_000,
			MinWindow: 1, MaxWindow: 32,
			CooldownDrains: 1, MinSamples: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// LS prober: synchronous reads in a tight loop. Each lands a violation
	// on the shared LS signal, so every controller interval sees burn far
	// past the budget.
	ls, err := Dial(srv.Addr(), hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 4, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ls.Read(0, 1, 0); err != nil {
				t.Errorf("LS prober read failed: %v", err)
				return
			}
		}
	}()

	// Victim: a resilient TC connection through faultnet, killed mid-flight.
	inj := faultnet.NewInjector(7)
	rc, err := DialResilient(srv.Addr(), hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: 4, QueueDepth: 8, NSID: 1,
	}, DialConfig{
		RequestTimeout: 2 * time.Second,
		Dialer:         faultnet.Dialer(inj),
		Recovery: &RecoveryConfig{
			MaxAttempts: 64, Backoff: 500 * time.Microsecond,
			Budget: 4096, RequeueLS: true, RequeueTC: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 48
	var completed atomic.Int64
	counts := make([]atomic.Int32, n)
	var mu sync.Mutex
	var failures []string
	submit := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			i := i
			err := rc.Submit(hostqp.IO{
				Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1,
				Data: chaosPayload(i, 4096), Idempotent: true,
			}, func(r hostqp.Result, err error) {
				counts[i].Add(1)
				if err != nil || !r.Status.OK() {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("op %d: status=%v err=%v", i, r.Status, err))
					mu.Unlock()
				}
				completed.Add(1)
			})
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
	}

	// Two waves around a deterministic kill: wave 1 completes on the
	// original connection (and produces pre-kill decisions); the reset
	// then severs that connection, and wave 2 — parked by Submit during
	// the outage — must ride the replay path onto a replacement session,
	// whose drains the controller must keep deciding on.
	submit(0, n/2)
	waitFor(t, "wave 1 completed", func() bool { return completed.Load() >= n/2 })
	preKill := len(reg.AutotuneLog())
	if preKill == 0 {
		t.Error("no controller decisions before the kill")
	}
	inj.ResetAll()
	submit(n/2, n)
	waitFor(t, "all ops completed", func() bool { return completed.Load() == n })
	close(stop)
	wg.Wait()

	mu.Lock()
	if len(failures) > 0 {
		t.Fatalf("%d ops failed despite replay eligibility: %v", len(failures), failures)
	}
	mu.Unlock()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("op %d completed %d times, want exactly once", i, c)
		}
	}
	if r := rc.Reconnects(); r < 1 {
		t.Errorf("reconnects = %d, want >= 1", r)
	}

	log := reg.AutotuneLog()
	if len(log) <= preKill {
		t.Errorf("decision log stalled at %d entries across the kill", len(log))
	}
	shrinks := 0
	for _, d := range log {
		if d.Action == "shrink" {
			shrinks++
		}
	}
	if shrinks == 0 {
		t.Errorf("no shrink verdict in %d decisions despite sustained burn", len(log))
	}

	ls.Close()
	rc.Close()
	waitFor(t, "all sessions torn down", func() bool { return srv.ActiveSessions() == 0 })
	srv.Close()
	waitGoroutines(t, base)
}
