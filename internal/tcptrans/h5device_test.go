package tcptrans

import (
	"testing"
	"time"

	"nvmeopf/internal/h5bench"
	"nvmeopf/internal/hdf5"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
)

func TestH5DeviceGeometry(t *testing.T) {
	srv := startServer(t, targetqp.ModeOPF)
	c := dial(t, srv, proto.PrioThroughputCritical, 8, 32)
	if c.BlockSize() != 4096 || c.Capacity() != 1<<16 {
		t.Fatalf("discovered geometry %d/%d", c.BlockSize(), c.Capacity())
	}
	if _, err := c.H5Device(1<<16, 0); err == nil {
		t.Error("partition beyond capacity accepted")
	}
	if _, err := c.H5Device(0, 1<<17); err == nil {
		t.Error("oversized partition accepted")
	}
	dev, err := c.H5Device(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dev.NumBlocks() != 1<<16-1024 {
		t.Fatalf("open-ended partition = %d blocks", dev.NumBlocks())
	}
}

func TestH5FileOverTCP(t *testing.T) {
	srv := startServer(t, targetqp.ModeOPF)
	c := dial(t, srv, proto.PrioThroughputCritical, 8, 64)
	dev, err := c.H5Device(0, 0)
	if err != nil {
		t.Fatal(err)
	}

	type writeResult struct {
		data []byte
		err  error
	}
	done := make(chan writeResult, 1)
	want := make([]byte, 8192)
	for i := range want {
		want[i] = byte(i * 7)
	}
	hdf5.Create(dev, func(f *hdf5.File, err error) {
		if err != nil {
			done <- writeResult{err: err}
			return
		}
		f.CreateDataset("/d", hdf5.UInt8, 1<<16, func(ds *hdf5.Dataset, err error) {
			if err != nil {
				done <- writeResult{err: err}
				return
			}
			ds.Write(100, want, func(err error) {
				if err != nil {
					done <- writeResult{err: err}
					return
				}
				ds.Read(100, uint64(len(want)), func(got []byte, err error) {
					done <- writeResult{data: got, err: err}
				})
			})
		})
	})
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		for i := range want {
			if res.data[i] != want[i] {
				t.Fatalf("byte %d mismatch", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mini-HDF5 over TCP hung")
	}

	// Reopen from a second connection: metadata persisted on the target.
	c2 := dial(t, srv, proto.PrioLatencySensitive, 1, 4)
	dev2, err := c2.H5Device(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	open := make(chan error, 1)
	hdf5.Open(dev2, func(f *hdf5.File, err error) {
		if err != nil {
			open <- err
			return
		}
		if _, derr := f.OpenDataset("/d"); derr != nil {
			open <- derr
			return
		}
		open <- nil
	})
	select {
	case err := <-open:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reopen hung")
	}
}

func TestH5BenchKernelOverTCP(t *testing.T) {
	srv := startServer(t, targetqp.ModeOPF)
	c := dial(t, srv, proto.PrioThroughputCritical, 16, 64)
	dev, err := c.H5Device(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := h5bench.Config{
		Particles:   64 * 1024,
		Timesteps:   2,
		AccessBytes: 4096,
		QD:          16,
		Clock:       func() int64 { return time.Now().UnixNano() },
		// Kernel state must stay on the connection reactor: sleeps hop
		// back via Defer.
		Sleep: func(d int64, fn func()) {
			time.AfterFunc(time.Duration(d), func() { c.Defer(fn) })
		},
	}
	wdone := make(chan *h5bench.Result, 1)
	werr := make(chan error, 1)
	c.Defer(func() {
		h5bench.RunWrite(dev, cfg, func(res *h5bench.Result, err error) {
			if err != nil {
				werr <- err
				return
			}
			wdone <- res
		})
	})
	select {
	case err := <-werr:
		t.Fatal(err)
	case res := <-wdone:
		if res.Bytes != int64(cfg.Particles)*4*int64(cfg.Timesteps) {
			t.Fatalf("bytes = %d", res.Bytes)
		}
		if res.Bandwidth() <= 0 {
			t.Fatal("no bandwidth")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("write kernel hung over TCP")
	}

	// Read kernel with dataset-load sleeps.
	rcfg := cfg
	rcfg.DatasetLoadNs = 1_000_000
	rdone := make(chan *h5bench.Result, 1)
	c.Defer(func() {
		h5bench.RunRead(dev, rcfg, func(res *h5bench.Result, err error) {
			if err != nil {
				werr <- err
				return
			}
			rdone <- res
		})
	})
	select {
	case err := <-werr:
		t.Fatal(err)
	case res := <-rdone:
		if res.Bytes != int64(cfg.Particles)*4*int64(cfg.Timesteps) {
			t.Fatalf("read bytes = %d", res.Bytes)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("read kernel hung over TCP")
	}
}
