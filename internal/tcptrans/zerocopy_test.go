package tcptrans

// Integration tests for the zero-copy scatter-gather datapath: reads
// larger than the target's MaxDataLen arrive as multiple C2HData
// fragments and reassemble exactly; a hostile target pushing an
// out-of-range C2HData offset gets its connection reset instead of
// forcing a multi-gigabyte allocation.

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
)

// TestSegmentedReadReassembles: with the target's MaxDataLen squeezed to
// one block, an 8-block read comes back as 8 C2HData fragments with
// ascending offsets — landed by the client's zero-copy sink directly into
// the preallocated destination — and must reassemble byte-exact.
func TestSegmentedReadReassembles(t *testing.T) {
	dev := newMemoryDevice(4096, 1<<12)
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Mode: targetqp.ModeOPF, Device: dev, MaxDataLen: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 4, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := make([]byte, 8*4096)
	for i := range want {
		want[i] = byte(i/4096 + 1)
	}
	// MaxDataLen also caps in-capsule write data, so write block-by-block.
	for i := 0; i < 8; i++ {
		if err := c.Write(uint64(i), want[i*4096:(i+1)*4096], 0); err != nil {
			t.Fatalf("write block %d: %v", i, err)
		}
	}
	got, err := c.Read(0, 8, 0)
	if err != nil {
		t.Fatalf("segmented read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("segmented read reassembled wrong (%d bytes)", len(got))
	}
	// And again with a deliberately unaligned fragment boundary: 3 blocks.
	got, err = c.Read(2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[2*4096:5*4096]) {
		t.Fatal("3-block segmented read wrong")
	}
}

// fakeTarget accepts one connection, answers the handshake with the given
// geometry, then lets the test script the rest of the exchange.
func fakeTarget(t *testing.T, script func(conn net.Conn, rd *proto.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		rd := proto.NewReader(conn, false)
		p, err := rd.Next()
		if err != nil {
			return
		}
		if _, ok := p.(*proto.ICReq); !ok {
			return
		}
		conn.Write(proto.Marshal(&proto.ICResp{
			PFV: hostqp.ProtocolVersion, Tenant: 1, MaxDataLen: 1 << 20,
			BlockSize: 4096, Capacity: 1 << 16,
		}))
		script(conn, rd)
	}()
	return ln.Addr().String()
}

// TestHostileC2HDataOffsetResetsConnection: a target replying to a
// 4 KiB read with a C2HData whose offset field points near 4 GiB must
// not coerce a giant reassembly buffer — the client rejects it as a
// permanent protocol error and resets the connection.
func TestHostileC2HDataOffsetResetsConnection(t *testing.T) {
	hungUp := make(chan struct{})
	addr := fakeTarget(t, func(conn net.Conn, rd *proto.Reader) {
		p, err := rd.Next()
		if err != nil {
			return
		}
		cmd, ok := p.(*proto.CapsuleCmd)
		if !ok {
			return
		}
		conn.Write(proto.Marshal(&proto.C2HData{
			CCCID:  cmd.Cmd.CID,
			Offset: 0xFFFF_F000,
			Data:   make([]byte, 16),
		}))
		// The client must hang up on us: wait for EOF.
		io.Copy(io.Discard, conn)
		close(hungUp)
	})
	c, err := Dial(addr, hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 2, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Read(0, 1, 0); err == nil {
		t.Fatal("read against a hostile target succeeded")
	}
	waitFor(t, "connection marked permanently failed", func() bool {
		return c.Err() != nil && IsPermanent(c.Err())
	})
	select {
	case <-hungUp:
	case <-time.After(5 * time.Second):
		t.Fatal("client never reset the hostile connection")
	}
}

// TestOverlappingC2HDataResetsConnection: duplicate fragments for the
// same read byte range are a protocol violation end to end, not a silent
// double count.
func TestOverlappingC2HDataResetsConnection(t *testing.T) {
	addr := fakeTarget(t, func(conn net.Conn, rd *proto.Reader) {
		p, err := rd.Next()
		if err != nil {
			return
		}
		cmd, ok := p.(*proto.CapsuleCmd)
		if !ok {
			return
		}
		frag := proto.Marshal(&proto.C2HData{
			CCCID: cmd.Cmd.CID, Offset: 0, Data: make([]byte, 2048),
		})
		conn.Write(frag)
		conn.Write(frag) // the duplicate
		io.Copy(io.Discard, conn)
	})
	c, err := Dial(addr, hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 2, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Read(0, 1, 0); err == nil {
		t.Fatal("read with duplicated fragments succeeded")
	}
	waitFor(t, "connection marked permanently failed", func() bool {
		return c.Err() != nil && IsPermanent(c.Err())
	})
}
