// Package tcptrans carries the NVMe-oPF protocol over real TCP sockets:
// a Server exposes a block device as an NVMe-oPF (or baseline NVMe-oF)
// target, and Dial opens initiator connections. The same sans-IO state
// machines as the simulator (internal/hostqp, internal/targetqp) run the
// protocol; this package only moves PDUs and provides the threading
// model.
//
// The target datapath is sharded, mirroring SPDK's reactor-per-core
// deployment: the server runs ServerConfig.Shards reactor goroutines
// (default GOMAXPROCS), each the sole owner of one targetqp.Target
// holding the sessions assigned to it round-robin at accept time. A
// shard's sessions, PM queues, and request pool are touched only by its
// reactor, so — exactly as in the paper's per-initiator isolation
// argument (§IV) — the priority-manager state needs no locks even with
// every core busy. Tenant IDs are strided across shards (shard i hands
// out i, i+N, i+2N, …), so shared per-tenant telemetry stays exact.
// Device completions are posted back to the owning shard; the device
// executor pool and the backing bdev (which has its own synchronization)
// are server-wide.
//
// Per connection, a reader goroutine decodes PDUs with a pooling
// proto.Reader and pipelines them onto the shard's event queue under an
// InflightPerConn bound — no per-PDU blocking round trip — and a writer
// goroutine drains its outbound channel into batched vectored writes
// (one syscall per drain window) marshalled allocation-free into a
// reused buffer. Payload buffers and hot-path PDU structs cycle through
// internal/proto's pools on both sides of the socket.
package tcptrans

import (
	"bufio"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nvmeopf/internal/autotune"
	"nvmeopf/internal/bdev"
	"nvmeopf/internal/core"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// ServerConfig describes a TCP target.
type ServerConfig struct {
	// Mode selects oPF or baseline behaviour.
	Mode targetqp.Mode
	// Device is the backing store.
	Device bdev.Device
	// Shards is the number of reactor shards, each owning the sessions
	// assigned to it (round-robin) with its own target state and event
	// queue. Default GOMAXPROCS, capped at 256 reactor lanes (the 16-bit
	// tenant-ID space leaves each lane 256 stride slots).
	// 1 reproduces the old single-reactor deployment.
	Shards int
	// InflightPerConn bounds how many inbound PDUs one connection may
	// have posted to its shard and not yet handled (default 64). 1
	// degenerates to the old serialized read→handle→read round trip.
	InflightPerConn int
	// WriteBatchBytes caps how many marshalled bytes one outbound drain
	// may coalesce into a single write syscall (default 256 KiB). 1
	// degenerates to one syscall per PDU, the pre-shard writer.
	WriteBatchBytes int
	// MaxDataLen is the largest single data transfer the target puts in
	// one PDU (advertised in the ICResp; default 1 MiB). Reads larger
	// than this are segmented into multiple C2HData fragments with
	// ascending offsets.
	MaxDataLen uint32
	// MaxPending is the PM safety valve (default 4096).
	MaxPending int
	// MaxPendingPerTenant / MaxPendingGlobal / LSHeadroom configure
	// admission control: past a cap the target answers the retryable
	// proto.StatusBusy instead of buffering unboundedly, with LSHeadroom
	// slots of the global cap reserved for latency-sensitive requests.
	// Zero caps disable admission control. The global cap and headroom
	// are divided evenly (ceiling) across shards.
	MaxPendingPerTenant int
	MaxPendingGlobal    int
	LSHeadroom          int
	// ScavengerHeadroom reserves slots of MaxPendingGlobal (beyond
	// LSHeadroom) that scavenger requests may never occupy, so a
	// best-effort flood always yields admission capacity to LS and TC.
	// Divided (ceiling) across shards like the other global budgets.
	ScavengerHeadroom int
	// DrainWatchdog force-drains any TC queue whose oldest parked request
	// has waited this long with no draining flag (host crashed or went
	// silent mid-window). Zero disables the watchdog.
	DrainWatchdog time.Duration
	// ScavengerAging bounds how long a parked scavenger queue can starve
	// behind continuous LS/TC traffic before it force-drains anyway. A
	// ticker fans the check out to every shard (like the drain watchdog)
	// so parked windows age out even on an otherwise idle connection.
	// Zero disables the bound.
	ScavengerAging time.Duration
	// Workers is the device executor pool size (default 8), shared by all
	// shards.
	Workers int
	// ReadLatency/WriteLatency optionally inject device service time, so
	// a RAM-backed target behaves like flash.
	ReadLatency, WriteLatency time.Duration
	// ExtraNamespaces attaches additional devices under explicit NSIDs
	// (Device itself serves NSID 1).
	ExtraNamespaces map[uint32]bdev.Device
	// Telemetry optionally attaches a live metrics registry to the
	// target (served over HTTP with telemetry.Registry.Serve). The
	// registry is lock-free and shared by all shards. Nil disables at
	// zero cost.
	Telemetry *telemetry.Registry
	// Trace optionally receives PDU lifecycle events from the target
	// state machines. It runs on the reactor goroutines — possibly
	// several concurrently — so it must be fast and thread-safe.
	Trace telemetry.TraceFunc
	// Recorder optionally attaches a target-side flight recorder (chained
	// after Trace; attach it to Telemetry with SetRecorder to serve
	// /debug/trace). Nil disables.
	Recorder *telemetry.Recorder
	// Autotune enables the closed-loop adaptive drain-window controller:
	// each reactor shard owns one autotune.Controller (fed by its own
	// target's drain completions and LS service latencies), and all shards
	// share one LS signal so a TC tenant backs off for LS pain anywhere on
	// the target. The config's Clock/Telemetry/Signal fields are filled in
	// from the server's when unset. Nil runs the static windows
	// bit-identically to a server without the field.
	Autotune *autotune.Config
}

// shard is one reactor: a goroutine that solely owns one targetqp.Target
// and the sessions assigned to it.
type shard struct {
	srv    *Server
	target *targetqp.Target
	events chan func()
}

// post schedules fn on this shard's reactor; false if the server is
// closed.
func (sh *shard) post(fn func()) bool {
	select {
	case sh.events <- fn:
		return true
	case <-sh.srv.quit:
		return false
	}
}

// Server is a TCP NVMe-oPF target bound to a listener.
type Server struct {
	cfg       ServerConfig
	ln        net.Listener
	shards    []*shard
	nextShard atomic.Uint32 // round-robin accept-time assignment
	jobs      chan func()
	quit      chan struct{}
	wg        sync.WaitGroup
	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closed    bool
}

// Listen starts a target on addr (e.g. "127.0.0.1:0").
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Device == nil {
		return nil, errors.New("tcptrans: nil device")
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards > 256 {
		cfg.Shards = 256 // one stride lane per shard, 256 tenants each
	}
	if cfg.InflightPerConn <= 0 {
		cfg.InflightPerConn = 64
	}
	if cfg.WriteBatchBytes <= 0 {
		cfg.WriteBatchBytes = maxWriteBatch
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		jobs:  make(chan func(), 1024),
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	clock := func() int64 { return time.Now().UnixNano() }
	// Adaptive windows: one controller per shard (owned by its reactor,
	// like the PM it drives), all reading one shared LS signal.
	var atCfg autotune.Config
	if cfg.Autotune != nil {
		atCfg = *cfg.Autotune
		if atCfg.Clock == nil {
			atCfg.Clock = clock
		}
		if atCfg.Telemetry == nil {
			atCfg.Telemetry = cfg.Telemetry
		}
		if atCfg.Signal == nil {
			atCfg.Signal = autotune.NewSignal(atCfg.ObjectiveNS)
		}
	}
	// The global admission cap and LS headroom are target-wide budgets;
	// each shard polices an even (ceiling) slice of them.
	perShard := func(total int) int {
		if total <= 0 {
			return total
		}
		return (total + cfg.Shards - 1) / cfg.Shards
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{srv: s, events: make(chan func(), 1024)}
		var ctrl *autotune.Controller
		if cfg.Autotune != nil {
			ctrl, err = autotune.New(atCfg)
			if err != nil {
				ln.Close()
				return nil, err
			}
		}
		tgt, err := targetqp.NewTarget(targetqp.Config{
			Mode:                cfg.Mode,
			MaxPending:          cfg.MaxPending,
			MaxPendingPerTenant: cfg.MaxPendingPerTenant,
			MaxPendingGlobal:    perShard(cfg.MaxPendingGlobal),
			LSHeadroom:          perShard(cfg.LSHeadroom),
			ScavengerHeadroom:   perShard(cfg.ScavengerHeadroom),
			DrainWatchdog:       cfg.DrainWatchdog,
			ScavengerAging:      cfg.ScavengerAging,
			MaxDataLen:          cfg.MaxDataLen,
			Telemetry:           cfg.Telemetry,
			Trace:               cfg.Trace,
			Recorder:            cfg.Recorder,
			Clock:               clock,
			Autotune:            ctrl,
			TenantBase:          i,
			TenantStride:        cfg.Shards,
			PooledPayloads:      true,
		}, &execBackend{sh: sh, nsid: 1, dev: cfg.Device})
		if err != nil {
			ln.Close()
			return nil, err
		}
		for nsid, dev := range cfg.ExtraNamespaces {
			if err := tgt.AddNamespace(&execBackend{sh: sh, nsid: nsid, dev: dev}); err != nil {
				ln.Close()
				return nil, err
			}
		}
		sh.target = tgt
		s.shards = append(s.shards, sh)
	}
	cfg.Telemetry.SetShards(cfg.Shards)

	// Reactors: each the sole owner of its shard's target state machine.
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case fn := <-sh.events:
					fn()
				case <-s.quit:
					return
				}
			}
		}()
	}
	// Drain watchdog: one ticker fanning the check out to every shard's
	// reactor, each of which solely owns its target state. Ticking at a
	// quarter of the deadline bounds how late past the deadline a
	// force-drain can fire.
	if cfg.DrainWatchdog > 0 {
		tick := cfg.DrainWatchdog / 4
		if tick <= 0 {
			tick = cfg.DrainWatchdog
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					for _, sh := range s.shards {
						sh.post(func() { _, _ = sh.target.CheckWatchdog() })
					}
				case <-s.quit:
					return
				}
			}
		}()
	}
	// Scavenger aging: same fan-out shape as the watchdog. The target also
	// polls opportunistically on every command and completion; this ticker
	// only covers the quiet case where no foreground event ever fires to
	// notice that a parked window aged past the bound.
	if cfg.ScavengerAging > 0 {
		tick := cfg.ScavengerAging / 4
		if tick <= 0 {
			tick = cfg.ScavengerAging
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					for _, sh := range s.shards {
						sh.post(func() { _, _ = sh.target.CheckScavenger() })
					}
				case <-s.quit:
					return
				}
			}
		}()
	}
	// Device executor pool, shared across shards (the bdev has its own
	// synchronization; completions route back to the owning shard).
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case job := <-s.jobs:
					job()
				case <-s.quit:
					return
				}
			}
		}()
	}
	// Acceptor.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Telemetry returns the server's live metrics registry (nil when
// telemetry is disabled). Safe to read from any goroutine — the registry
// is lock-free.
func (s *Server) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// Shards returns the number of reactor shards the server runs.
func (s *Server) Shards() int { return len(s.shards) }

// Stats returns the target's counters, merged across shards (each
// shard's slice snapshotted on its own reactor).
func (s *Server) Stats() targetqp.Stats {
	var agg targetqp.Stats
	for _, sh := range s.shards {
		ch := make(chan targetqp.Stats, 1)
		if !sh.post(func() { ch <- sh.target.Stats() }) {
			continue
		}
		select {
		case st := <-ch:
			agg.Accumulate(st)
		case <-s.quit:
		}
	}
	return agg
}

// PMStats returns the priority managers' counters, merged across shards.
func (s *Server) PMStats() core.TargetPMStats {
	var agg core.TargetPMStats
	for _, sh := range s.shards {
		ch := make(chan core.TargetPMStats, 1)
		if !sh.post(func() { ch <- sh.target.PMStats() }) {
			continue
		}
		select {
		case st := <-ch:
			agg.Accumulate(st)
		case <-s.quit:
		}
	}
	return agg
}

// ActiveSessions returns the number of live sessions across all shards.
func (s *Server) ActiveSessions() int {
	total := 0
	for _, sh := range s.shards {
		ch := make(chan int, 1)
		if !sh.post(func() { ch <- sh.target.ActiveSessions() }) {
			continue
		}
		select {
		case n := <-ch:
			total += n
		case <-s.quit:
		}
	}
	return total
}

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	close(s.quit)
	s.wg.Wait()
	return err
}

// serveConn runs one initiator connection on the shard it is assigned
// to: a writer goroutine batches outbound PDUs into single writes, and
// the read loop pipelines inbound PDUs onto the shard's reactor under
// the per-connection inflight bound — the reader does not wait for one
// PDU to be handled before decoding the next.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sh := s.shards[int(s.nextShard.Add(1)-1)%len(s.shards)]

	out := make(chan proto.PDU, 256)
	connDone := make(chan struct{}) // closed when this connection ends
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		drainWriter(conn, out, connDone, s.quit, writerConfig{
			batch:   s.cfg.WriteBatchBytes,
			release: releaseServerPDU,
		})
	}()

	// Session creation must run on the shard's reactor. The send closure
	// may be invoked (by late device completions) long after the
	// connection is gone, so it must never block or touch a closed
	// channel: it selects against connDone and releases PDUs it drops for
	// dead connections.
	sessCh := make(chan *targetqp.Session, 1)
	posted := sh.post(func() {
		sess, err := sh.target.NewSession(func(p proto.PDU) {
			select {
			case out <- p:
			case <-connDone:
				releaseServerPDU(p)
			case <-s.quit:
				releaseServerPDU(p)
			}
		})
		if err != nil {
			sessCh <- nil
			return
		}
		sessCh <- sess
	})
	var sess *targetqp.Session
	if posted {
		sess = <-sessCh
	}
	if sess == nil {
		close(connDone)
		writerWG.Wait()
		return
	}

	// Pipelined inbound: decode with a pooling reader, acquire an
	// inflight slot, post the PDU to the reactor, decode the next —
	// handler outcomes come back asynchronously. A protocol violation
	// closes the socket from the reactor, which surfaces here as a read
	// error on the next decode.
	// Buffered socket reads: a burst of pipelined capsules arrives in
	// one syscall instead of two reads (header, body) per PDU.
	rd := proto.NewReader(bufio.NewReaderSize(conn, 64<<10), true)
	inflight := make(chan struct{}, s.cfg.InflightPerConn)
	for {
		p, err := rd.Next()
		if err != nil {
			break
		}
		select {
		case inflight <- struct{}{}:
		case <-s.quit:
			proto.ReleaseInbound(p)
			p = nil
		}
		if p == nil {
			break
		}
		if !sh.post(func() {
			herr := sess.HandlePDU(p)
			proto.ReleaseInbound(p)
			<-inflight
			if herr != nil {
				// A protocol violation, not a normal disconnect (those
				// surface as read errors in the read loop). The nil
				// sentinel makes the writer flush anything queued ahead
				// of it — a TermReq explaining the rejection — before
				// closing the socket.
				s.cfg.Telemetry.IncTransportError()
				select {
				case out <- nil:
				case <-connDone:
				case <-s.quit:
				}
			}
		}) {
			<-inflight
			proto.ReleaseInbound(p)
			break
		}
	}
	// The connection is dead: tear the session down on its reactor so its
	// queued requests are dropped, its tenant ID eventually recycles, and
	// in-flight completions stop trying to send. The reactor queue is
	// FIFO, so teardown runs after every pipelined PDU above. Late device
	// completions for this session still land on the reactor after this,
	// where the tombstoned session absorbs them.
	sh.post(func() { sh.target.CloseSession(sess) })
	close(connDone)
	writerWG.Wait()
}

// execBackend runs device commands on the worker pool with optional
// injected latency, delivering completions back on the owning shard's
// reactor. One instance serves one (shard, namespace) pair.
type execBackend struct {
	sh   *shard
	nsid uint32
	dev  bdev.Device
}

// Namespace implements targetqp.Backend.
func (b *execBackend) Namespace() nvme.Namespace {
	return nvme.Namespace{ID: b.nsid, BlockSize: b.dev.BlockSize(), Capacity: b.dev.NumBlocks()}
}

// Submit implements targetqp.Backend. highPrio maps to executor priority:
// high-priority jobs run on a dedicated fast path (direct goroutine) so a
// deep TC backlog in the job queue cannot delay them — the real-transport
// analogue of the simulator's device-queue bypass.
func (b *execBackend) Submit(cmd nvme.Command, data []byte, highPrio bool, done func(nvme.Completion, []byte)) {
	srv := b.sh.srv
	run := func() {
		cpl, out := b.execute(cmd, data)
		b.sh.post(func() { done(cpl, out) })
	}
	if highPrio {
		go run()
		return
	}
	select {
	case srv.jobs <- run:
	case <-srv.quit:
	default:
		// Job queue saturated: spill to a goroutine rather than dropping
		// or blocking the reactor.
		go run()
	}
}

// execute performs the device operation. Read buffers come from the
// proto buffer pool; the completion path (or the drop path, for dead
// sessions) returns them.
func (b *execBackend) execute(cmd nvme.Command, data []byte) (nvme.Completion, []byte) {
	dev := b.dev
	ns := b.Namespace()
	cfg := &b.sh.srv.cfg
	cpl := nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess}
	if cmd.Opcode != nvme.OpFlush {
		if st := ns.CheckRange(cmd.SLBA, cmd.Blocks()); !st.OK() {
			cpl.Status = st
			return cpl, nil
		}
	}
	switch cmd.Opcode {
	case nvme.OpRead:
		if cfg.ReadLatency > 0 {
			time.Sleep(cfg.ReadLatency)
		}
		out := proto.GetBuf(ns.Bytes(cmd.Blocks()))
		if err := dev.ReadBlocks(out, cmd.SLBA); err != nil {
			proto.PutBuf(out)
			cpl.Status = nvme.StatusInternalError
			return cpl, nil
		}
		return cpl, out
	case nvme.OpWrite:
		if cfg.WriteLatency > 0 {
			time.Sleep(cfg.WriteLatency)
		}
		if len(data) != ns.Bytes(cmd.Blocks()) {
			cpl.Status = nvme.StatusDataXferError
			return cpl, nil
		}
		if err := dev.WriteBlocks(data, cmd.SLBA); err != nil {
			cpl.Status = nvme.StatusInternalError
		}
		return cpl, nil
	case nvme.OpFlush:
		if err := dev.Flush(); err != nil {
			cpl.Status = nvme.StatusInternalError
		}
		return cpl, nil
	default:
		cpl.Status = nvme.StatusInvalidOpcode
		return cpl, nil
	}
}

// NewMemoryServer is a convenience: an in-memory target of the given
// geometry, for tests and examples.
func NewMemoryServer(addr string, mode targetqp.Mode, blockSize uint32, blocks uint64) (*Server, error) {
	dev, err := bdev.NewMemory(blockSize, blocks)
	if err != nil {
		return nil, err
	}
	return Listen(addr, ServerConfig{Mode: mode, Device: dev})
}
