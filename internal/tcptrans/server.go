// Package tcptrans carries the NVMe-oPF protocol over real TCP sockets:
// a Server exposes a block device as an NVMe-oPF (or baseline NVMe-oF)
// target, and Dial opens initiator connections. The same sans-IO state
// machines as the simulator (internal/hostqp, internal/targetqp) run the
// protocol; this package only moves PDUs and provides the threading
// model: one reactor goroutine owns each target's (or connection's)
// state, mirroring SPDK's single-reactor deployment, with reader/writer
// goroutines per socket and a worker pool executing device I/O.
package tcptrans

import (
	"errors"
	"net"
	"sync"
	"time"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/core"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// ServerConfig describes a TCP target.
type ServerConfig struct {
	// Mode selects oPF or baseline behaviour.
	Mode targetqp.Mode
	// Device is the backing store.
	Device bdev.Device
	// MaxPending is the PM safety valve (default 4096).
	MaxPending int
	// MaxPendingPerTenant / MaxPendingGlobal / LSHeadroom configure
	// admission control: past a cap the target answers the retryable
	// proto.StatusBusy instead of buffering unboundedly, with LSHeadroom
	// slots of the global cap reserved for latency-sensitive requests.
	// Zero caps disable admission control.
	MaxPendingPerTenant int
	MaxPendingGlobal    int
	LSHeadroom          int
	// DrainWatchdog force-drains any TC queue whose oldest parked request
	// has waited this long with no draining flag (host crashed or went
	// silent mid-window). Zero disables the watchdog.
	DrainWatchdog time.Duration
	// Workers is the device executor pool size (default 8).
	Workers int
	// ReadLatency/WriteLatency optionally inject device service time, so
	// a RAM-backed target behaves like flash.
	ReadLatency, WriteLatency time.Duration
	// ExtraNamespaces attaches additional devices under explicit NSIDs
	// (Device itself serves NSID 1).
	ExtraNamespaces map[uint32]bdev.Device
	// Telemetry optionally attaches a live metrics registry to the
	// target (served over HTTP with telemetry.Registry.Serve). Nil
	// disables at zero cost.
	Telemetry *telemetry.Registry
	// Trace optionally receives PDU lifecycle events from the target
	// state machines. It runs on the reactor goroutine: keep it fast.
	Trace telemetry.TraceFunc
	// Recorder optionally attaches a target-side flight recorder (chained
	// after Trace; attach it to Telemetry with SetRecorder to serve
	// /debug/trace). Nil disables.
	Recorder *telemetry.Recorder
}

// Server is a TCP NVMe-oPF target bound to a listener.
type Server struct {
	cfg    ServerConfig
	ln     net.Listener
	target *targetqp.Target
	events chan func()
	jobs   chan func()
	quit   chan struct{}
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Listen starts a target on addr (e.g. "127.0.0.1:0").
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Device == nil {
		return nil, errors.New("tcptrans: nil device")
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		events: make(chan func(), 1024),
		jobs:   make(chan func(), 1024),
		quit:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	tgt, err := targetqp.NewTarget(targetqp.Config{
		Mode:                cfg.Mode,
		MaxPending:          cfg.MaxPending,
		MaxPendingPerTenant: cfg.MaxPendingPerTenant,
		MaxPendingGlobal:    cfg.MaxPendingGlobal,
		LSHeadroom:          cfg.LSHeadroom,
		DrainWatchdog:       cfg.DrainWatchdog,
		Telemetry:           cfg.Telemetry,
		Trace:               cfg.Trace,
		Recorder:            cfg.Recorder,
		Clock:               func() int64 { return time.Now().UnixNano() },
	}, &execBackend{s: s, nsid: 1, dev: cfg.Device})
	if err != nil {
		ln.Close()
		return nil, err
	}
	for nsid, dev := range cfg.ExtraNamespaces {
		if err := tgt.AddNamespace(&execBackend{s: s, nsid: nsid, dev: dev}); err != nil {
			ln.Close()
			return nil, err
		}
	}
	s.target = tgt

	// Reactor: sole owner of the target state machine.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case fn := <-s.events:
				fn()
			case <-s.quit:
				return
			}
		}
	}()
	// Drain watchdog: a ticker posting the check to the reactor, which
	// solely owns the target state. Ticking at a quarter of the deadline
	// bounds how late past the deadline a force-drain can fire.
	if cfg.DrainWatchdog > 0 {
		tick := cfg.DrainWatchdog / 4
		if tick <= 0 {
			tick = cfg.DrainWatchdog
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.post(func() { _, _ = s.target.CheckWatchdog() })
				case <-s.quit:
					return
				}
			}
		}()
	}
	// Device executor pool.
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case job := <-s.jobs:
					job()
				case <-s.quit:
					return
				}
			}
		}()
	}
	// Acceptor.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Telemetry returns the server's live metrics registry (nil when
// telemetry is disabled). Safe to read from any goroutine — the registry
// is lock-free.
func (s *Server) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// Stats returns the target's counters (snapshotted on the reactor).
func (s *Server) Stats() targetqp.Stats {
	ch := make(chan targetqp.Stats, 1)
	if !s.post(func() { ch <- s.target.Stats() }) {
		return targetqp.Stats{}
	}
	select {
	case st := <-ch:
		return st
	case <-s.quit:
		return targetqp.Stats{}
	}
}

// PMStats returns the priority manager's counters (snapshotted on the
// reactor).
func (s *Server) PMStats() core.TargetPMStats {
	ch := make(chan core.TargetPMStats, 1)
	if !s.post(func() { ch <- s.target.PMStats() }) {
		return core.TargetPMStats{}
	}
	select {
	case st := <-ch:
		return st
	case <-s.quit:
		return core.TargetPMStats{}
	}
}

// ActiveSessions returns the number of live sessions (snapshotted on the
// reactor).
func (s *Server) ActiveSessions() int {
	ch := make(chan int, 1)
	if !s.post(func() { ch <- s.target.ActiveSessions() }) {
		return 0
	}
	select {
	case n := <-ch:
		return n
	case <-s.quit:
		return 0
	}
}

// Close shuts the server down and waits for its goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	close(s.quit)
	s.wg.Wait()
	return err
}

// serveConn runs one initiator connection: a writer goroutine serializes
// outbound PDUs; the read loop forwards inbound PDUs to the reactor.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	out := make(chan proto.PDU, 256)
	connDone := make(chan struct{}) // closed when this connection ends
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case p := <-out:
				if err := proto.WritePDU(conn, p); err != nil {
					conn.Close() // unblocks the read loop
					return
				}
			case <-connDone:
				return
			}
		}
	}()

	// Session creation must run on the reactor. The send closure may be
	// invoked (by late device completions) long after the connection is
	// gone, so it must never block or touch a closed channel: it selects
	// against connDone and drops PDUs for dead connections.
	sessCh := make(chan *targetqp.Session, 1)
	posted := s.post(func() {
		sess, err := s.target.NewSession(func(p proto.PDU) {
			select {
			case out <- p:
			case <-connDone:
			case <-s.quit:
			}
		})
		if err != nil {
			sessCh <- nil
			return
		}
		sessCh <- sess
	})
	var sess *targetqp.Session
	if posted {
		sess = <-sessCh
	}
	if sess == nil {
		close(connDone)
		writerWG.Wait()
		return
	}

	for {
		p, err := proto.ReadPDU(conn)
		if err != nil {
			break
		}
		done := make(chan error, 1)
		if !s.post(func() { done <- sess.HandlePDU(p) }) {
			break
		}
		var herr error
		select {
		case herr = <-done:
		case <-s.quit:
			herr = errors.New("server closed")
		}
		if herr != nil {
			// A protocol violation, not a normal disconnect (those
			// surface as read errors above).
			s.cfg.Telemetry.IncTransportError()
			break
		}
	}
	// The connection is dead: tear the session down on the reactor so its
	// queued requests are dropped, its tenant ID eventually recycles, and
	// in-flight completions stop trying to send. Late device completions
	// for this session still land on the reactor after this, where the
	// tombstoned session absorbs them.
	s.post(func() { s.target.CloseSession(sess) })
	close(connDone)
	writerWG.Wait()
}

// post schedules fn on the reactor; false if the server is closed.
func (s *Server) post(fn func()) bool {
	select {
	case s.events <- fn:
		return true
	case <-s.quit:
		return false
	}
}

// execBackend runs device commands on the worker pool with optional
// injected latency, delivering completions back on the reactor. One
// instance serves one namespace.
type execBackend struct {
	s    *Server
	nsid uint32
	dev  bdev.Device
}

// Namespace implements targetqp.Backend.
func (b *execBackend) Namespace() nvme.Namespace {
	return nvme.Namespace{ID: b.nsid, BlockSize: b.dev.BlockSize(), Capacity: b.dev.NumBlocks()}
}

// Submit implements targetqp.Backend. highPrio maps to executor priority:
// high-priority jobs run on a dedicated fast path (direct goroutine) so a
// deep TC backlog in the job queue cannot delay them — the real-transport
// analogue of the simulator's device-queue bypass.
func (b *execBackend) Submit(cmd nvme.Command, data []byte, highPrio bool, done func(nvme.Completion, []byte)) {
	run := func() {
		cpl, out := b.execute(cmd, data)
		b.s.post(func() { done(cpl, out) })
	}
	if highPrio {
		go run()
		return
	}
	select {
	case b.s.jobs <- run:
	case <-b.s.quit:
	default:
		// Job queue saturated: spill to a goroutine rather than dropping
		// or blocking the reactor.
		go run()
	}
}

// execute performs the device operation.
func (b *execBackend) execute(cmd nvme.Command, data []byte) (nvme.Completion, []byte) {
	dev := b.dev
	ns := b.Namespace()
	cpl := nvme.Completion{CID: cmd.CID, Status: nvme.StatusSuccess}
	if cmd.Opcode != nvme.OpFlush {
		if st := ns.CheckRange(cmd.SLBA, cmd.Blocks()); !st.OK() {
			cpl.Status = st
			return cpl, nil
		}
	}
	switch cmd.Opcode {
	case nvme.OpRead:
		if b.s.cfg.ReadLatency > 0 {
			time.Sleep(b.s.cfg.ReadLatency)
		}
		out := make([]byte, ns.Bytes(cmd.Blocks()))
		if err := dev.ReadBlocks(out, cmd.SLBA); err != nil {
			cpl.Status = nvme.StatusInternalError
			return cpl, nil
		}
		return cpl, out
	case nvme.OpWrite:
		if b.s.cfg.WriteLatency > 0 {
			time.Sleep(b.s.cfg.WriteLatency)
		}
		if len(data) != ns.Bytes(cmd.Blocks()) {
			cpl.Status = nvme.StatusDataXferError
			return cpl, nil
		}
		if err := dev.WriteBlocks(data, cmd.SLBA); err != nil {
			cpl.Status = nvme.StatusInternalError
		}
		return cpl, nil
	case nvme.OpFlush:
		if err := dev.Flush(); err != nil {
			cpl.Status = nvme.StatusInternalError
		}
		return cpl, nil
	default:
		cpl.Status = nvme.StatusInvalidOpcode
		return cpl, nil
	}
}

// NewMemoryServer is a convenience: an in-memory target of the given
// geometry, for tests and examples.
func NewMemoryServer(addr string, mode targetqp.Mode, blockSize uint32, blocks uint64) (*Server, error) {
	dev, err := bdev.NewMemory(blockSize, blocks)
	if err != nil {
		return nil, err
	}
	return Listen(addr, ServerConfig{Mode: mode, Device: dev})
}
