package tcptrans

import (
	"fmt"

	"nvmeopf/internal/hdf5"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
)

// connDevice exposes a partition of a TCP target's namespace as an
// hdf5.Device: dataset I/O inherits the connection class, metadata is
// tagged latency-sensitive. Conn performs its own queue-depth flow
// control and idle-draining, so no quiesce hook is needed here.
type connDevice struct {
	c      *Conn
	base   uint64
	blocks uint64
	bs     uint32
}

// H5Device exposes the partition [base, base+blocks) of the connection's
// namespace as a device for the mini-HDF5 library. blocks == 0 means
// "through the end of the namespace".
func (c *Conn) H5Device(base, blocks uint64) (hdf5.Device, error) {
	bs := c.BlockSize()
	cap := c.Capacity()
	if bs == 0 || cap == 0 {
		return nil, fmt.Errorf("tcptrans: namespace geometry unknown (not connected?)")
	}
	if base >= cap {
		return nil, fmt.Errorf("tcptrans: partition base %d beyond capacity %d", base, cap)
	}
	if blocks == 0 {
		blocks = cap - base
	}
	if base+blocks > cap {
		return nil, fmt.Errorf("tcptrans: partition [%d,+%d) beyond capacity %d", base, blocks, cap)
	}
	return &connDevice{c: c, base: base, blocks: blocks, bs: bs}, nil
}

// BlockSize implements hdf5.Device.
func (d *connDevice) BlockSize() uint32 { return d.bs }

// NumBlocks implements hdf5.Device.
func (d *connDevice) NumBlocks() uint64 { return d.blocks }

func (d *connDevice) prioFor(meta bool) proto.Priority {
	if meta {
		return proto.PrioLatencySensitive
	}
	return 0 // inherit connection class
}

// ReadAsync implements hdf5.Device.
func (d *connDevice) ReadAsync(lba uint64, blocks uint32, meta bool, done func([]byte, error)) {
	if blocks == 0 || lba+uint64(blocks) > d.blocks {
		done(nil, fmt.Errorf("tcptrans: partition read [%d,+%d) out of range", lba, blocks))
		return
	}
	err := d.c.Submit(hostqp.IO{
		Op: nvme.OpRead, LBA: d.base + lba, Blocks: blocks, Prio: d.prioFor(meta),
		Done: func(r hostqp.Result) {
			if !r.Status.OK() {
				done(nil, fmt.Errorf("tcptrans: read failed: %v", r.Status))
				return
			}
			done(r.Data, nil)
		},
	})
	if err != nil {
		done(nil, err)
	}
}

// WriteAsync implements hdf5.Device.
func (d *connDevice) WriteAsync(lba uint64, data []byte, meta bool, done func(error)) {
	blocks := uint32(uint64(len(data)) / uint64(d.bs))
	if len(data) == 0 || uint64(len(data))%uint64(d.bs) != 0 || lba+uint64(blocks) > d.blocks {
		done(fmt.Errorf("tcptrans: partition write (%dB at %d) invalid", len(data), lba))
		return
	}
	err := d.c.Submit(hostqp.IO{
		Op: nvme.OpWrite, LBA: d.base + lba, Blocks: blocks, Data: data, Prio: d.prioFor(meta),
		Done: func(r hostqp.Result) {
			if !r.Status.OK() {
				done(fmt.Errorf("tcptrans: write failed: %v", r.Status))
				return
			}
			done(nil)
		},
	})
	if err != nil {
		done(err)
	}
}
