package tcptrans

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("tcptrans: connection closed")

// ConnConfig configures one initiator connection (class, window, queue
// depth, namespace).
type ConnConfig = hostqp.Config

// Conn is one initiator connection to a TCP target. Submissions from any
// goroutine are serialized onto the connection's reactor, which owns the
// hostqp session. Synchronous helpers (Read/Write/Flush) block the caller
// until the request completes; Submit is the asynchronous primitive.
type Conn struct {
	conn    net.Conn
	sess    *hostqp.Session
	tel     *telemetry.Registry
	events  chan func()
	quit    chan struct{}
	dead    chan struct{} // closed when the transport breaks
	idle    *time.Timer
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	waiting []hostqp.IO
	connErr error
}

// idleDrainDelay bounds how long a partial throughput-critical window may
// sit undrained while the application goes quiet. Coalescing defers
// completions until a draining request arrives (§III-C); an application
// that stops submitting mid-window would otherwise wait forever, so — like
// the timeout fallback every interrupt-coalescing scheme carries — the
// connection flushes the tail after this delay.
const idleDrainDelay = 2 * time.Millisecond

// Dial connects to a target and completes the handshake. cfg.Window and
// cfg.QueueDepth govern the connection exactly as in the simulator.
func Dial(addr string, cfg hostqp.Config) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn:   nc,
		tel:    cfg.Telemetry,
		events: make(chan func(), 1024),
		quit:   make(chan struct{}),
		dead:   make(chan struct{}),
	}
	out := make(chan proto.PDU, 256)
	sess, err := hostqp.New(cfg, func(p proto.PDU) {
		select {
		case out <- p:
		case <-c.quit:
		}
	}, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.sess = sess

	// Writer.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case p := <-out:
				if err := proto.WritePDU(nc, p); err != nil {
					nc.Close()
					return
				}
			case <-c.quit:
				return
			}
		}
	}()
	// Reactor: owns the session.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case fn := <-c.events:
				fn()
			case <-c.quit:
				return
			}
		}
	}()
	// Reader.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			p, err := proto.ReadPDU(nc)
			if err != nil {
				c.post(func() { c.failAll(fmt.Errorf("tcptrans: read: %w", err)) })
				return
			}
			ok := c.post(func() {
				if herr := sess.HandlePDU(p); herr != nil {
					c.failAll(herr)
					return
				}
				c.pump()
			})
			if !ok {
				return
			}
		}
	}()

	// Handshake.
	connected := make(chan error, 1)
	c.post(func() {
		sess.OnConnect(func() { connected <- nil })
		sess.Start()
	})
	select {
	case <-connected:
	case <-time.After(10 * time.Second):
		c.Close()
		c.tel.IncTransportError()
		return nil, errors.New("tcptrans: handshake timeout")
	}
	return c, nil
}

// DialRetry dials with up to attempts tries, waiting backoff between
// failures. Every successful dial after the first failed attempt counts
// as a reconnect in cfg.Telemetry.
func DialRetry(addr string, cfg hostqp.Config, attempts int, backoff time.Duration) (*Conn, error) {
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
		}
		c, err := Dial(addr, cfg)
		if err == nil {
			if i > 0 {
				cfg.Telemetry.IncReconnect()
			}
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// post schedules fn on the reactor.
func (c *Conn) post(fn func()) bool {
	select {
	case c.events <- fn:
		return true
	case <-c.quit:
		return false
	}
}

// failAll marks the connection broken and fails queued ops; runs on the
// reactor.
func (c *Conn) failAll(err error) {
	if c.connErr == nil {
		c.connErr = err
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if !closed {
			// Count only real failures, not the reader unblocking
			// during a deliberate Close.
			c.tel.IncTransportError()
		}
		close(c.dead)
	}
	for _, io := range c.waiting {
		io.Done(hostqp.Result{Status: nvme.StatusInternalError})
	}
	c.waiting = nil
}

// pump submits queued ops while the session has queue-depth headroom.
// Runs on the reactor.
func (c *Conn) pump() {
	for len(c.waiting) > 0 {
		io := c.waiting[0]
		if io.Op == nvme.OpFlush {
			// A flush is a durability barrier: make it drain the current
			// TC window so everything before it completes with it.
			c.sess.Flush()
		}
		if err := c.sess.Submit(io); err != nil {
			if errors.Is(err, hostqp.ErrQueueFull) {
				return
			}
			c.waiting = c.waiting[1:]
			io.Done(hostqp.Result{Status: nvme.StatusInternalError})
			continue
		}
		c.waiting = c.waiting[1:]
	}
	c.armIdleDrain()
}

// armIdleDrain (re)starts the tail-flush timer; runs on the reactor.
func (c *Conn) armIdleDrain() {
	if c.idle != nil {
		c.idle.Stop()
	}
	if c.sess.PendingTC() == 0 {
		return
	}
	c.idle = time.AfterFunc(idleDrainDelay, func() {
		c.post(func() {
			if c.connErr != nil || c.sess.PendingTC() == 0 || !c.sess.CanSubmit() {
				return
			}
			c.sess.Flush()
			_ = c.sess.Submit(hostqp.IO{Op: nvme.OpFlush, Done: func(hostqp.Result) {}})
		})
	})
}

// Submit issues an asynchronous I/O; the Done callback runs on the
// connection's reactor goroutine. Ops beyond the queue depth wait
// internally.
func (c *Conn) Submit(io hostqp.IO) error {
	if io.Done == nil {
		return errors.New("tcptrans: IO without Done callback")
	}
	if !c.post(func() {
		if c.connErr != nil {
			io.Done(hostqp.Result{Status: nvme.StatusInternalError})
			return
		}
		c.waiting = append(c.waiting, io)
		c.pump()
	}) {
		return ErrClosed
	}
	return nil
}

// result pairs a Result with transport-level errors for the sync API.
type result struct {
	r hostqp.Result
}

// do runs one I/O synchronously.
func (c *Conn) do(io hostqp.IO) (hostqp.Result, error) {
	ch := make(chan result, 1)
	io.Done = func(r hostqp.Result) { ch <- result{r} }
	if err := c.Submit(io); err != nil {
		return hostqp.Result{}, err
	}
	select {
	case res := <-ch:
		if !res.r.Status.OK() {
			return res.r, fmt.Errorf("tcptrans: I/O failed: %v", res.r.Status)
		}
		return res.r, nil
	case <-c.dead:
		return hostqp.Result{}, fmt.Errorf("tcptrans: connection broken: %w", ErrClosed)
	case <-c.quit:
		return hostqp.Result{}, ErrClosed
	}
}

// Read fetches blocks synchronously. prio overrides the connection class
// when nonzero.
func (c *Conn) Read(lba uint64, blocks uint32, prio proto.Priority) ([]byte, error) {
	r, err := c.do(hostqp.IO{Op: nvme.OpRead, LBA: lba, Blocks: blocks, Prio: prio})
	if err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Write stores data (a multiple of the namespace block size) synchronously.
func (c *Conn) Write(lba uint64, data []byte, prio proto.Priority) error {
	bs := c.BlockSize()
	if bs == 0 {
		bs = 4096
	}
	if len(data) == 0 || len(data)%int(bs) != 0 {
		return fmt.Errorf("tcptrans: %d bytes is not a multiple of the %dB block size", len(data), bs)
	}
	_, err := c.do(hostqp.IO{Op: nvme.OpWrite, LBA: lba, Blocks: uint32(len(data) / int(bs)), Data: data, Prio: prio})
	return err
}

// BlockSize returns the namespace block size discovered at handshake.
func (c *Conn) BlockSize() uint32 {
	ch := make(chan uint32, 1)
	if !c.post(func() { ch <- c.sess.BlockSize() }) {
		return 0
	}
	select {
	case v := <-ch:
		return v
	case <-c.quit:
		return 0
	}
}

// Capacity returns the namespace capacity in blocks discovered at
// handshake.
func (c *Conn) Capacity() uint64 {
	ch := make(chan uint64, 1)
	if !c.post(func() { ch <- c.sess.Capacity() }) {
		return 0
	}
	select {
	case v := <-ch:
		return v
	case <-c.quit:
		return 0
	}
}

// WriteBlocks stores data of arbitrary block geometry.
func (c *Conn) WriteBlocks(lba uint64, data []byte, blockSize uint32, prio proto.Priority) error {
	if blockSize == 0 || len(data)%int(blockSize) != 0 {
		return fmt.Errorf("tcptrans: %d bytes not a multiple of block size %d", len(data), blockSize)
	}
	_, err := c.do(hostqp.IO{Op: nvme.OpWrite, LBA: lba, Blocks: uint32(len(data) / int(blockSize)), Data: data, Prio: prio})
	return err
}

// Flush issues a flush command.
func (c *Conn) Flush() error {
	_, err := c.do(hostqp.IO{Op: nvme.OpFlush})
	return err
}

// DrainNext forces the next TC submission to carry the draining flag.
func (c *Conn) DrainNext() {
	c.post(func() { c.sess.Flush() })
}

// Defer runs fn on the connection's reactor goroutine — the context every
// Submit completion callback runs on. Single-goroutine state machines
// (e.g. the h5bench kernels) use it to serialize their own transitions
// with their I/O callbacks.
func (c *Conn) Defer(fn func()) { c.post(fn) }

// Telemetry returns the live metrics registry the connection was
// configured with (nil when telemetry is disabled). Safe from any
// goroutine.
func (c *Conn) Telemetry() *telemetry.Registry { return c.tel }

// Stats snapshots the session counters.
func (c *Conn) Stats() hostqp.Stats {
	ch := make(chan hostqp.Stats, 1)
	if !c.post(func() { ch <- c.sess.Stats() }) {
		return hostqp.Stats{}
	}
	select {
	case st := <-ch:
		return st
	case <-c.quit:
		return hostqp.Stats{}
	}
}

// ClockOffset returns the handshake-estimated target-minus-host clock
// offset and the RTT bounding its error (zero when the target shares no
// clock). opf-trace uses it to merge host and target recorder dumps.
func (c *Conn) ClockOffset() (offset, rtt int64) {
	type pair struct{ off, rtt int64 }
	ch := make(chan pair, 1)
	if !c.post(func() {
		o, r := c.sess.ClockOffset()
		ch <- pair{o, r}
	}) {
		return 0, 0
	}
	select {
	case p := <-ch:
		return p.off, p.rtt
	case <-c.quit:
		return 0, 0
	}
}

// Tenant returns the target-assigned tenant ID.
func (c *Conn) Tenant() proto.TenantID {
	ch := make(chan proto.TenantID, 1)
	if !c.post(func() { ch <- c.sess.Tenant() }) {
		return 0
	}
	select {
	case t := <-ch:
		return t
	case <-c.quit:
		return 0
	}
}

// Close tears the connection down.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	close(c.quit)
	c.wg.Wait()
	if c.idle != nil {
		c.idle.Stop()
	}
	return err
}
