package tcptrans

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/telemetry"
)

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("tcptrans: connection closed")

// ConnConfig configures one initiator connection (class, window, queue
// depth, namespace).
type ConnConfig = hostqp.Config

// DialConfig bounds a connection's transport-level waits. The zero value
// gives the defaults below.
type DialConfig struct {
	// HandshakeTimeout bounds the ICReq/ICResp exchange (default 10s).
	HandshakeTimeout time.Duration
	// RequestTimeout bounds how long any submitted request may stay
	// outstanding (default 30s, the Linux nvme-tcp io-timeout default; <0
	// disables). A request exceeding it does not fail alone: like the
	// kernel initiator, the timeout escalates to a connection reset —
	// every outstanding request fails with StatusAborted and its CID is
	// released, so queue-pair depth cannot leak to a wedged target.
	RequestTimeout time.Duration
	// Dialer optionally replaces net.Dial (fault injection wraps the
	// socket here; see internal/faultnet.Dialer).
	Dialer func(network, addr string) (net.Conn, error)
	// WriteBatchBytes caps how many marshalled bytes one outbound drain
	// may coalesce into a single write syscall (default 256 KiB). 1
	// degenerates to one syscall per PDU, the pre-shard writer.
	WriteBatchBytes int
	// CoalesceBytes/CoalesceDelay open the submission-coalescing window:
	// when the outbound queue runs dry with fewer than CoalesceBytes
	// staged, the writer holds the batch up to CoalesceDelay waiting for
	// more submissions, so a stream of small commands shares one vectored
	// flush instead of paying a write syscall each — at the cost of up to
	// CoalesceDelay added submission latency. Setting either enables the
	// window (the other takes DefaultCoalesceBytes / DefaultCoalesceDelay);
	// both zero (the default) disable it, leaving the wire stream
	// byte-identical to an uncoalesced connection's.
	CoalesceBytes int
	CoalesceDelay time.Duration
	// TelemetryInterval is the cadence the connection emits TelemetryUpdate
	// PDUs on: the in-band feedback channel shipping host-observed
	// end-to-end latency deltas, outstanding depth, and busy/retry counts
	// to the target, whose ack re-estimates the clock offset each round.
	// Zero (the default) disables the channel entirely — nothing new
	// appears on the wire and the session skips e2e accumulation, so
	// behavior is bit-identical to a build without it.
	TelemetryInterval time.Duration
	// Recovery opts the connection into transparent reconnect + replay:
	// DialResilient returns a ResilientClient that re-dials after a
	// connection death and resubmits eligible requests instead of
	// surfacing every failure to the caller. Nil (the default) keeps the
	// plain fail-fast Conn semantics.
	Recovery *RecoveryConfig
}

// RecoveryConfig tunes a ResilientClient. The zero value of each field
// selects the default documented on it.
type RecoveryConfig struct {
	// MaxAttempts bounds each reconnect's dial loop (default 8); the
	// backoff policy is DialRetry's (exponential, 32× cap, jitter).
	MaxAttempts int
	// Backoff is the base reconnect backoff (default 10ms).
	Backoff time.Duration
	// Budget is the retry token bucket capacity (default 64). Every
	// replayed or busy-retried request consumes one token; an empty
	// bucket fails the request instead, so a sick target is never
	// amplified by a retry storm.
	Budget int
	// RefillInterval returns one token per interval (default 100ms).
	RefillInterval time.Duration
	// RequeueLS / RequeueTC gate replay after a connection loss by wire
	// class (latency-sensitive/normal vs throughput-critical). Replay
	// additionally requires the request to be idempotent: reads and
	// flushes always are; writes only with IO.Idempotent set.
	RequeueLS bool
	RequeueTC bool
	// BusyBackoff is the wait before resubmitting a request the target
	// answered with StatusBusy (default 2ms). Busy rejections were never
	// executed, so they retry regardless of idempotency — but still
	// consume budget.
	BusyBackoff time.Duration
	// Resolver, when set, is consulted before every reconnect attempt and
	// returns the address to dial — the cluster failover hook: a resolver
	// backed by the discovery map re-points recovery at the promoted
	// replica instead of the dead primary. A resolver error fails that
	// attempt (the retry loop backs off and asks again); nil keeps the
	// original address forever.
	Resolver func() (string, error)
}

func (r RecoveryConfig) withDefaults() RecoveryConfig {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 8
	}
	if r.Backoff == 0 {
		r.Backoff = 10 * time.Millisecond
	}
	if r.Budget == 0 {
		r.Budget = 64
	}
	if r.RefillInterval == 0 {
		r.RefillInterval = 100 * time.Millisecond
	}
	if r.BusyBackoff == 0 {
		r.BusyBackoff = 2 * time.Millisecond
	}
	return r
}

// Defaults for DialConfig zero fields.
const (
	DefaultHandshakeTimeout = 10 * time.Second
	DefaultRequestTimeout   = 30 * time.Second
)

func (d DialConfig) withDefaults() DialConfig {
	if d.HandshakeTimeout == 0 {
		d.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if d.RequestTimeout == 0 {
		d.RequestTimeout = DefaultRequestTimeout
	}
	if d.Dialer == nil {
		d.Dialer = net.Dial
	}
	if d.WriteBatchBytes <= 0 {
		d.WriteBatchBytes = maxWriteBatch
	}
	if d.CoalesceBytes > 0 || d.CoalesceDelay > 0 {
		if d.CoalesceBytes <= 0 {
			d.CoalesceBytes = DefaultCoalesceBytes
		}
		if d.CoalesceDelay <= 0 {
			d.CoalesceDelay = DefaultCoalesceDelay
		}
	}
	return d
}

// Conn is one initiator connection to a TCP target. Submissions from any
// goroutine are serialized onto the connection's reactor, which owns the
// hostqp session. Synchronous helpers (Read/Write/Flush) block the caller
// until the request completes; Submit is the asynchronous primitive.
type Conn struct {
	conn      net.Conn
	sess      *hostqp.Session
	tel       *telemetry.Registry
	events    chan func()
	quit      chan struct{}
	dead      chan struct{} // closed when the transport breaks
	idle      *time.Timer
	wg        sync.WaitGroup
	mu        sync.Mutex
	closed    bool
	waiting   []hostqp.IO
	connErr   error
	closeOnce sync.Once
	netOnce   sync.Once
	netErr    error

	// readBufs registers each in-flight read's destination buffer by CID
	// (written by the reactor via the hostqp hooks, read by the reader's
	// C2HSink) so inbound C2HData payloads land directly in the caller's
	// buffer at Offset — the zero-copy read path.
	readMu   sync.Mutex
	readBufs map[nvme.CID][]byte
}

// netClose closes the socket exactly once, from whichever path gets
// there first (writer error, request-timeout escalation, failAll, Close).
func (c *Conn) netClose() {
	c.netOnce.Do(func() { c.netErr = c.conn.Close() })
}

// idleDrainDelay bounds how long a partial throughput-critical window may
// sit undrained while the application goes quiet. Coalescing defers
// completions until a draining request arrives (§III-C); an application
// that stops submitting mid-window would otherwise wait forever, so — like
// the timeout fallback every interrupt-coalescing scheme carries — the
// connection flushes the tail after this delay.
const idleDrainDelay = 2 * time.Millisecond

// Dial connects to a target and completes the handshake with default
// transport timeouts. cfg.Window and cfg.QueueDepth govern the connection
// exactly as in the simulator.
func Dial(addr string, cfg hostqp.Config) (*Conn, error) {
	return DialWith(addr, cfg, DialConfig{})
}

// DialWith is Dial with explicit transport timeouts and an optional
// custom dialer.
func DialWith(addr string, cfg hostqp.Config, dcfg DialConfig) (*Conn, error) {
	dcfg = dcfg.withDefaults()
	nc, err := dcfg.Dialer("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn:     nc,
		tel:      cfg.Telemetry,
		events:   make(chan func(), 1024),
		quit:     make(chan struct{}),
		dead:     make(chan struct{}),
		readBufs: make(map[nvme.CID][]byte),
	}
	// The read-buffer hooks are transport-owned: the session announces
	// each read's preallocated destination before the command hits the
	// wire and retires it when the request leaves the pending set, so the
	// reader's sink below can land C2HData payloads with no staging copy.
	cfg.OnReadBuffer = func(cid nvme.CID, buf []byte) {
		c.readMu.Lock()
		c.readBufs[cid] = buf
		c.readMu.Unlock()
	}
	cfg.OnReadRetire = func(cid nvme.CID) {
		c.readMu.Lock()
		delete(c.readBufs, cid)
		c.readMu.Unlock()
	}
	out := make(chan proto.PDU, 256)
	sess, err := hostqp.New(cfg, func(p proto.PDU) {
		select {
		case out <- p:
		case <-c.quit:
		}
	}, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.sess = sess
	if dcfg.TelemetryInterval > 0 {
		// Attach the accumulator before any goroutine can touch the
		// session; the emission ticker starts below.
		sess.EnableE2E()
	}

	// Writer: stages queued PDUs into vectored batches (the same drain
	// helper as the server side) — headers into a reused buffer, large
	// write payloads referenced in place — and flushes each batch with
	// one (scatter-gather) write. Flushed structs recycle afterwards;
	// write payloads stay caller-owned, only the reference is dropped.
	// The writer gets the raw conn so writev is not defeated by a
	// wrapper type; socket teardown stays on the once-only netClose path
	// via closeConn.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		drainWriter(nc, out, c.dead, c.quit, writerConfig{
			batch:         dcfg.WriteBatchBytes,
			coalesceBytes: dcfg.CoalesceBytes,
			coalesceDelay: dcfg.CoalesceDelay,
			release:       releaseClientPDU,
			closeConn:     c.netClose,
		})
	}()
	// Reactor: owns the session.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case fn := <-c.events:
				fn()
			case <-c.quit:
				return
			}
		}
	}()
	// Reader: a pooling decoder with a zero-copy sink — C2HData payloads
	// for registered reads are written from the socket directly into the
	// request's destination buffer at Offset (no pool staging, no copy),
	// with out-of-range offsets and unknown CIDs declined here (bounded
	// pooled fallback) and rejected by the session as protocol errors.
	// Response structs still come from the proto pools and are released
	// right after the session consumes them, so the receive hot path is
	// allocation-free.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// Buffered socket reads: the zero-copy sink splits each C2HData
		// into header/PSH/payload reads, so without buffering every data
		// PDU would cost an extra read syscall. With the buffer, headers
		// come from memory and payload reads drain the buffer before
		// falling through to direct reads into the destination.
		rd := proto.NewReader(bufio.NewReaderSize(nc, 64<<10), true)
		rd.SetC2HSink(func(cid nvme.CID, off, n uint32) []byte {
			c.readMu.Lock()
			buf := c.readBufs[cid]
			c.readMu.Unlock()
			if end := uint64(off) + uint64(n); buf == nil || end > uint64(len(buf)) {
				return nil
			}
			return buf[off : off+n]
		})
		for {
			p, err := rd.Next()
			if err != nil {
				c.post(func() { c.failAll(fmt.Errorf("tcptrans: read: %w", err)) })
				return
			}
			ok := c.post(func() {
				herr := sess.HandlePDU(p)
				proto.ReleaseInbound(p)
				if herr != nil {
					c.failAll(herr)
					return
				}
				c.pump()
			})
			if !ok {
				proto.ReleaseInbound(p)
				return
			}
		}
	}()
	// Request-deadline sweeper: if the oldest outstanding request exceeds
	// RequestTimeout, reset the connection (all CIDs fail and release via
	// failAll) rather than waiting on a wedged or partitioned target.
	if dcfg.RequestTimeout > 0 {
		period := dcfg.RequestTimeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			tick := time.NewTicker(period)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					c.post(func() {
						if c.connErr != nil {
							return
						}
						ts, ok := c.sess.OldestSubmittedAt()
						if !ok {
							return
						}
						if age := time.Now().UnixNano() - ts; age > int64(dcfg.RequestTimeout) {
							c.netClose()
							c.failAll(fmt.Errorf("tcptrans: request timeout: oldest outstanding request %v old (limit %v)",
								time.Duration(age), dcfg.RequestTimeout))
						}
					})
				case <-c.dead:
					return
				case <-c.quit:
					return
				}
			}
		}()
	}

	// Telemetry cadence: on each tick the reactor snapshots the session's
	// e2e deltas into one TelemetryUpdate and queues it on the writer.
	// Heartbeat updates (no new samples) still go out — they refresh the
	// target's queue-depth gauge and the clock-offset estimate.
	if dcfg.TelemetryInterval > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			tick := time.NewTicker(dcfg.TelemetryInterval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					c.post(func() {
						if c.connErr != nil {
							return
						}
						if u := c.sess.BuildTelemetryUpdate(); u != nil {
							select {
							case out <- u:
							case <-c.quit:
							}
						}
					})
				case <-c.dead:
					return
				case <-c.quit:
					return
				}
			}
		}()
	}

	// Handshake.
	connected := make(chan error, 1)
	c.post(func() {
		sess.OnConnect(func() { connected <- nil })
		sess.Start()
	})
	select {
	case <-connected:
	case <-c.dead:
		// The target rejected or dropped us: fail now with the real
		// error instead of sitting out the timeout. connErr is written on
		// the reactor before dead is closed, so this read is safe.
		err := c.connErr
		c.Close()
		return nil, fmt.Errorf("tcptrans: handshake failed: %w", err)
	case <-time.After(dcfg.HandshakeTimeout):
		c.Close()
		c.tel.IncTransportError()
		return nil, fmt.Errorf("tcptrans: handshake timeout after %v", dcfg.HandshakeTimeout)
	}
	return c, nil
}

// IsPermanent reports whether a dial error is a protocol-level rejection
// (version mismatch, unknown namespace, target termination) that retrying
// the same configuration can never fix.
func IsPermanent(err error) bool {
	var pe *hostqp.ProtocolError
	return errors.As(err, &pe)
}

// DialRetry dials with up to attempts tries. backoff is the wait after
// the first failure; it doubles per attempt (capped at 32×) with up to
// 50% added jitter so a fleet of initiators reconnecting to a restarted
// target does not stampede in lockstep. Permanent protocol rejections
// (see IsPermanent) abort the loop immediately: a target that speaks the
// wrong PFV or lacks the namespace will still do so on attempt N. Every
// successful dial after the first failed attempt counts as a reconnect in
// cfg.Telemetry.
func DialRetry(addr string, cfg hostqp.Config, attempts int, backoff time.Duration) (*Conn, error) {
	return DialRetryWith(addr, cfg, DialConfig{}, attempts, backoff)
}

// DialRetryWith is DialRetry with explicit transport timeouts.
func DialRetryWith(addr string, cfg hostqp.Config, dcfg DialConfig, attempts int, backoff time.Duration) (*Conn, error) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	c, used, err := retryLoop(attempts, backoff, time.Sleep, rng, func() (*Conn, error) {
		return DialWith(addr, cfg, dcfg)
	})
	if err != nil {
		return nil, err
	}
	if used > 1 {
		cfg.Telemetry.IncReconnect()
	}
	return c, nil
}

// defaultRetryBackoff floors the DialRetry backoff: a zero (or negative)
// base would make every wait zero — maxBackoff = 32×0 — so a fleet
// pointed at a dead target would reconnect-hammer it in a busy loop with
// no jitter to break the lockstep.
const defaultRetryBackoff = 10 * time.Millisecond

// retryLoop is DialRetry's backoff engine, with the clock (sleep) and
// jitter source injectable so the policy is testable without real waits:
// the wait after attempt N doubles per attempt from backoff (floored at
// defaultRetryBackoff), capped at 32×backoff, plus up to 50% jitter; a
// permanent protocol rejection stops the loop immediately. Returns how
// many attempts were consumed.
func retryLoop(attempts int, backoff time.Duration, sleep func(time.Duration), rng *rand.Rand, dial func() (*Conn, error)) (*Conn, int, error) {
	if attempts < 1 {
		attempts = 1
	}
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	maxBackoff := 32 * backoff
	wait := backoff
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := wait
			if d > 0 {
				d += time.Duration(rng.Int63n(int64(d)/2 + 1))
			}
			sleep(d)
			if wait *= 2; wait > maxBackoff {
				wait = maxBackoff
			}
		}
		c, err := dial()
		if err == nil {
			return c, i + 1, nil
		}
		lastErr = err
		if IsPermanent(err) {
			return nil, i + 1, lastErr
		}
	}
	return nil, attempts, lastErr
}

// Err returns the error that broke the connection, or nil while it is
// healthy. Safe from any goroutine: connErr is written on the reactor
// strictly before dead is closed.
func (c *Conn) Err() error {
	select {
	case <-c.dead:
		return c.connErr
	default:
		return nil
	}
}

// post schedules fn on the reactor. After Close it reliably reports
// false — the quit check runs first, so a buffered events channel cannot
// win the select and swallow a stray post (e.g. a late idle-timer fire).
func (c *Conn) post(fn func()) bool {
	select {
	case <-c.quit:
		return false
	default:
	}
	select {
	case c.events <- fn:
		return true
	case <-c.quit:
		return false
	}
}

// failAll marks the connection broken, fails every outstanding request —
// in-flight CIDs through hostqp.Session.FailAll (releasing them, so
// queue-pair depth cannot leak), then the not-yet-submitted backlog — and
// closes the socket. Runs on the reactor.
func (c *Conn) failAll(err error) {
	if c.connErr == nil {
		c.connErr = err
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if !closed {
			// Count only real failures, not the reader unblocking
			// during a deliberate Close.
			c.tel.IncTransportError()
		}
		close(c.dead)
		c.netClose()
	}
	c.sess.FailAll(nvme.StatusAborted)
	for _, io := range c.waiting {
		io.Done(hostqp.Result{Status: nvme.StatusAborted})
	}
	c.waiting = nil
}

// pump submits queued ops while the session has queue-depth headroom.
// Runs on the reactor.
func (c *Conn) pump() {
	for len(c.waiting) > 0 {
		io := c.waiting[0]
		if io.Op == nvme.OpFlush {
			// A flush is a durability barrier: make it drain the current
			// TC window so everything before it completes with it.
			c.sess.Flush()
		}
		if err := c.sess.Submit(io); err != nil {
			if errors.Is(err, hostqp.ErrQueueFull) {
				return
			}
			c.waiting = c.waiting[1:]
			io.Done(hostqp.Result{Status: nvme.StatusInternalError})
			continue
		}
		c.waiting = c.waiting[1:]
	}
	c.armIdleDrain()
}

// armIdleDrain (re)starts the tail-flush timer; runs on the reactor. One
// timer per connection, created on first use and re-armed with Reset —
// pumping a deep queue must not allocate (and leak, until it fires) a
// fresh timer per submission.
func (c *Conn) armIdleDrain() {
	if c.idle != nil {
		c.idle.Stop()
	}
	if c.sess.Scavenger() {
		// Scavenger windows drain on the target's schedule (leftover
		// capacity or the aging bound), not the host's: flushing the tail
		// here would defeat the whole point of parking best-effort work.
		return
	}
	if c.sess.PendingTC() == 0 {
		return
	}
	if c.idle == nil {
		c.idle = time.AfterFunc(idleDrainDelay, c.idleFlush)
		return
	}
	c.idle.Reset(idleDrainDelay)
}

// idleFlush is the idle timer's callback: flush the partial TC window of
// a connection that went quiet. Posting to a closed connection is a
// no-op, so a timer that fires during teardown cannot touch dead state.
func (c *Conn) idleFlush() {
	c.post(func() {
		if c.connErr != nil || c.sess.Scavenger() || c.sess.PendingTC() == 0 || !c.sess.CanSubmit() {
			return
		}
		c.sess.Flush()
		_ = c.sess.Submit(hostqp.IO{Op: nvme.OpFlush, Done: func(hostqp.Result) {}})
	})
}

// Submit issues an asynchronous I/O; the Done callback runs on the
// connection's reactor goroutine. Ops beyond the queue depth wait
// internally.
func (c *Conn) Submit(io hostqp.IO) error {
	if io.Done == nil {
		return errors.New("tcptrans: IO without Done callback")
	}
	if !c.post(func() {
		if c.connErr != nil {
			io.Done(hostqp.Result{Status: nvme.StatusInternalError})
			return
		}
		c.waiting = append(c.waiting, io)
		c.pump()
	}) {
		return ErrClosed
	}
	return nil
}

// result pairs a Result with transport-level errors for the sync API.
type result struct {
	r hostqp.Result
}

// do runs one I/O synchronously.
func (c *Conn) do(io hostqp.IO) (hostqp.Result, error) {
	ch := make(chan result, 1)
	io.Done = func(r hostqp.Result) { ch <- result{r} }
	if err := c.Submit(io); err != nil {
		return hostqp.Result{}, err
	}
	select {
	case res := <-ch:
		if !res.r.Status.OK() {
			return res.r, fmt.Errorf("tcptrans: I/O failed: %v", res.r.Status)
		}
		return res.r, nil
	case <-c.dead:
		return hostqp.Result{}, fmt.Errorf("tcptrans: connection broken: %w", ErrClosed)
	case <-c.quit:
		return hostqp.Result{}, ErrClosed
	}
}

// Read fetches blocks synchronously. prio overrides the connection class
// when nonzero.
func (c *Conn) Read(lba uint64, blocks uint32, prio proto.Priority) ([]byte, error) {
	r, err := c.do(hostqp.IO{Op: nvme.OpRead, LBA: lba, Blocks: blocks, Prio: prio})
	if err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Write stores data (a multiple of the namespace block size) synchronously.
func (c *Conn) Write(lba uint64, data []byte, prio proto.Priority) error {
	bs := c.BlockSize()
	if bs == 0 {
		// The handshake always learns a nonzero block size, so a zero here
		// means the connection is closed or broken — report that instead
		// of validating the payload against invented geometry.
		if err := c.Err(); err != nil {
			return fmt.Errorf("tcptrans: connection broken: %w", err)
		}
		return ErrClosed
	}
	if len(data) == 0 || len(data)%int(bs) != 0 {
		return fmt.Errorf("tcptrans: %d bytes is not a multiple of the %dB block size", len(data), bs)
	}
	_, err := c.do(hostqp.IO{Op: nvme.OpWrite, LBA: lba, Blocks: uint32(len(data) / int(bs)), Data: data, Prio: prio})
	return err
}

// BlockSize returns the namespace block size discovered at handshake.
func (c *Conn) BlockSize() uint32 {
	ch := make(chan uint32, 1)
	if !c.post(func() { ch <- c.sess.BlockSize() }) {
		return 0
	}
	select {
	case v := <-ch:
		return v
	case <-c.quit:
		return 0
	}
}

// Capacity returns the namespace capacity in blocks discovered at
// handshake.
func (c *Conn) Capacity() uint64 {
	ch := make(chan uint64, 1)
	if !c.post(func() { ch <- c.sess.Capacity() }) {
		return 0
	}
	select {
	case v := <-ch:
		return v
	case <-c.quit:
		return 0
	}
}

// WriteBlocks stores data of arbitrary block geometry.
func (c *Conn) WriteBlocks(lba uint64, data []byte, blockSize uint32, prio proto.Priority) error {
	if blockSize == 0 || len(data)%int(blockSize) != 0 {
		return fmt.Errorf("tcptrans: %d bytes not a multiple of block size %d", len(data), blockSize)
	}
	_, err := c.do(hostqp.IO{Op: nvme.OpWrite, LBA: lba, Blocks: uint32(len(data) / int(blockSize)), Data: data, Prio: prio})
	return err
}

// Flush issues a flush command.
func (c *Conn) Flush() error {
	_, err := c.do(hostqp.IO{Op: nvme.OpFlush})
	return err
}

// DrainNext forces the next TC submission to carry the draining flag.
func (c *Conn) DrainNext() {
	c.post(func() { c.sess.Flush() })
}

// Defer runs fn on the connection's reactor goroutine — the context every
// Submit completion callback runs on. Single-goroutine state machines
// (e.g. the h5bench kernels) use it to serialize their own transitions
// with their I/O callbacks.
func (c *Conn) Defer(fn func()) { c.post(fn) }

// Telemetry returns the live metrics registry the connection was
// configured with (nil when telemetry is disabled). Safe from any
// goroutine.
func (c *Conn) Telemetry() *telemetry.Registry { return c.tel }

// AddE2ERetries counts n host-side resubmissions into the connection's
// e2e feedback accumulator. No-op when DialConfig.TelemetryInterval is
// unset; safe from any goroutine (the accumulator is attached before the
// connection's goroutines start and its counters are atomic).
func (c *Conn) AddE2ERetries(n int64) { c.sess.E2E().AddRetries(n) }

// Stats snapshots the session counters.
func (c *Conn) Stats() hostqp.Stats {
	ch := make(chan hostqp.Stats, 1)
	if !c.post(func() { ch <- c.sess.Stats() }) {
		return hostqp.Stats{}
	}
	select {
	case st := <-ch:
		return st
	case <-c.quit:
		return hostqp.Stats{}
	}
}

// ClockOffset returns the handshake-estimated target-minus-host clock
// offset and the RTT bounding its error (zero when the target shares no
// clock). opf-trace uses it to merge host and target recorder dumps.
func (c *Conn) ClockOffset() (offset, rtt int64) {
	type pair struct{ off, rtt int64 }
	ch := make(chan pair, 1)
	if !c.post(func() {
		o, r := c.sess.ClockOffset()
		ch <- pair{o, r}
	}) {
		return 0, 0
	}
	select {
	case p := <-ch:
		return p.off, p.rtt
	case <-c.quit:
		return 0, 0
	}
}

// Tenant returns the target-assigned tenant ID.
func (c *Conn) Tenant() proto.TenantID {
	ch := make(chan proto.TenantID, 1)
	if !c.post(func() { ch <- c.sess.Tenant() }) {
		return 0
	}
	select {
	case t := <-ch:
		return t
	case <-c.quit:
		return 0
	}
}

// Close tears the connection down: closes the socket and waits for the
// reader, writer, reactor, and deadline-sweeper goroutines to exit.
// Idempotent and safe to call concurrently — every caller blocks until
// the teardown (whichever call performs it) has finished.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.netClose()
		close(c.quit)
		c.wg.Wait()
		// The reactor has exited (wg.Wait above), so reading the timer it
		// owned is race-free.
		if c.idle != nil {
			c.idle.Stop()
		}
	})
	return c.netErr
}
