package tcptrans

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// TestServerTelemetryScrape drives real I/O through a telemetry-enabled
// target and reads the result back the way an operator would: over the
// HTTP exporter.
func TestServerTelemetryScrape(t *testing.T) {
	dev, err := bdev.NewMemory(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Mode: targetqp.ModeOPF, Device: dev, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Telemetry() != tel {
		t.Fatal("Server.Telemetry() accessor mismatch")
	}

	exp, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	hostTel := telemetry.New()
	conn, err := Dial(srv.Addr(), hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: 4, QueueDepth: 16, NSID: 1,
		Telemetry: hostTel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Telemetry() != hostTel {
		t.Fatal("Conn.Telemetry() accessor mismatch")
	}

	const n = 16
	buf := make([]byte, 512)
	for i := 0; i < n; i++ {
		buf[0] = byte(i)
		if err := conn.Write(uint64(i), buf, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		data, err := conn.Read(uint64(i), 1, 0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if data[0] != byte(i) {
			t.Fatalf("read %d: got %d", i, data[0])
		}
	}

	tenant := conn.Tenant()

	// Both registries saw every request.
	assertTenant := func(reg *telemetry.Registry, side string) telemetry.TenantSnapshot {
		t.Helper()
		for _, s := range reg.Tenants() {
			if s.Tenant == uint16(tenant) {
				if s.Submitted < 2*n || s.Completed < 2*n {
					t.Fatalf("%s: submitted=%d completed=%d, want >= %d", side, s.Submitted, s.Completed, 2*n)
				}
				if s.Errors != 0 {
					t.Fatalf("%s: %d errored completions", side, s.Errors)
				}
				return s
			}
		}
		t.Fatalf("%s registry has no tenant %d", side, tenant)
		return telemetry.TenantSnapshot{}
	}
	assertTenant(hostTel, "host")
	ts := assertTenant(tel, "target")
	if ts.LatencySamples == 0 {
		t.Fatal("target recorded no service-latency samples despite wall clock")
	}
	if g := tel.Global(); g.Connections != 1 {
		t.Fatalf("target connections = %d, want 1", g.Connections)
	}

	// Operator's view: scrape /metrics over HTTP.
	resp, err := http.Get("http://" + exp.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	want := fmt.Sprintf(`nvmeopf_tenant_submitted_total{tenant="%d"}`, tenant)
	if !strings.Contains(text, want) {
		t.Fatalf("/metrics missing %q:\n%s", want, text)
	}
	for _, series := range []string{
		"nvmeopf_tenant_completed_total",
		"nvmeopf_tenant_drain_window",
		"nvmeopf_connections_total",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("/metrics missing series %q", series)
		}
	}

	// And the JSON debug endpoint agrees it is non-empty.
	dresp, err := http.Get("http://" + exp.Addr() + "/debug/tenants")
	if err != nil {
		t.Fatal(err)
	}
	dbody, err := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dbody), `"submitted"`) {
		t.Fatalf("/debug/tenants unexpected body: %s", dbody)
	}
}

// TestServerObservabilityEndpoints covers the full live-wire observability
// surface added with the flight recorder: histogram and SLO burn-rate
// series on /metrics, the /debug/slo JSON view, a parseable /debug/trace
// JSONL dump, pprof under /debug/pprof/, and a handshake-estimated clock
// offset on the client connection.
func TestServerObservabilityEndpoints(t *testing.T) {
	dev, err := bdev.NewMemory(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	tel.SetDefaultSLO(time.Second, 0.999)
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{Role: "target"})
	tel.SetRecorder(rec)
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Mode: targetqp.ModeOPF, Device: dev, Telemetry: tel, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	exp, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	hostRec := telemetry.NewRecorder(telemetry.RecorderConfig{Role: "host"})
	conn, err := Dial(srv.Addr(), hostqp.Config{
		Class: proto.PrioThroughputCritical, Window: 4, QueueDepth: 16, NSID: 1,
		Recorder: hostRec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	buf := make([]byte, 512)
	for i := 0; i < 8; i++ {
		if err := conn.Write(uint64(i), buf, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	// The ICReq/ICResp handshake produced a clock estimate; on one machine
	// the offset is near zero but the RTT must be a real round trip.
	if _, rtt := conn.ClockOffset(); rtt <= 0 {
		t.Fatalf("handshake RTT = %d, want > 0", rtt)
	}
	if off1, rtt1 := hostRec.ClockOffset(); off1 == 0 && rtt1 == 0 {
		t.Fatal("host recorder never received the handshake clock estimate")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + exp.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	tenant := conn.Tenant()
	if code, text := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	} else {
		for _, series := range []string{
			fmt.Sprintf(`nvmeopf_tenant_latency_hist_ns_bucket{tenant="%d",class="tc",le="1023"}`, tenant),
			fmt.Sprintf(`nvmeopf_tenant_latency_hist_ns_bucket{tenant="%d",class="tc",le="+Inf"}`, tenant),
			"nvmeopf_tenant_latency_hist_ns_sum",
			"nvmeopf_tenant_latency_hist_ns_count",
			fmt.Sprintf(`nvmeopf_tenant_slo_objective_ns{tenant="%d"} 1000000000`, tenant),
			"nvmeopf_tenant_slo_good_total",
			"nvmeopf_tenant_slo_violations_total",
			`nvmeopf_tenant_slo_burn_rate{tenant="` + fmt.Sprint(tenant) + `",window="total"}`,
		} {
			if !strings.Contains(text, series) {
				t.Fatalf("/metrics missing %q:\n%s", series, text)
			}
		}
	}

	if code, body := get("/debug/slo"); code != http.StatusOK || !strings.Contains(body, `"objective_ns"`) {
		t.Fatalf("/debug/slo status %d body %s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	code, body := get("/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	dump, err := telemetry.ReadDump(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/debug/trace not parseable: %v", err)
	}
	if dump.Meta.Role != "target" || len(dump.Events) == 0 {
		t.Fatalf("/debug/trace dump role=%q events=%d", dump.Meta.Role, len(dump.Events))
	}

	// Without a recorder the endpoint reports there is nothing to dump.
	bare, err := telemetry.New().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	resp, err := http.Get("http://" + bare.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recorder-less /debug/trace status %d, want 404", resp.StatusCode)
	}
}

// TestDialRetryCountsReconnects verifies the reconnect counter: the first
// attempts hit a dead address, then the target comes up.
func TestDialRetryCountsReconnects(t *testing.T) {
	dev, err := bdev.NewMemory(512, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Reserve an address, then close it so the first dial fails.
	srv0, err := Listen("127.0.0.1:0", ServerConfig{Mode: targetqp.ModeOPF, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv0.Addr()
	srv0.Close()

	tel := telemetry.New()
	started := make(chan *Server, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		srv, err := Listen(addr, ServerConfig{Mode: targetqp.ModeOPF, Device: dev})
		if err != nil {
			started <- nil
			return
		}
		started <- srv
	}()
	conn, err := DialRetry(addr, hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
		Telemetry: tel,
	}, 50, 20*time.Millisecond)
	srv := <-started
	if srv != nil {
		defer srv.Close()
	}
	if err != nil {
		t.Fatalf("DialRetry never connected: %v", err)
	}
	defer conn.Close()
	if g := tel.Global(); g.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", g.Reconnects)
	}
	if _, err := conn.Read(0, 1, 0); err != nil {
		t.Fatalf("post-reconnect read: %v", err)
	}
}
