package tcptrans

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/nvme"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
)

// faultyDevice wraps a memory device and fails operations on demand.
type faultyDevice struct {
	inner     *memDevice
	mu        sync.Mutex
	failReads bool
}

type memDevice = memoryDevice

// memoryDevice aliases bdev.Memory through the test helper.
type memoryDevice struct {
	bs     uint32
	blocks uint64
	data   map[uint64][]byte
	mu     sync.Mutex
}

func newMemoryDevice(bs uint32, blocks uint64) *memoryDevice {
	return &memoryDevice{bs: bs, blocks: blocks, data: make(map[uint64][]byte)}
}

func (m *memoryDevice) BlockSize() uint32 { return m.bs }
func (m *memoryDevice) NumBlocks() uint64 { return m.blocks }
func (m *memoryDevice) ReadBlocks(buf []byte, lba uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := uint64(0); i < uint64(len(buf))/uint64(m.bs); i++ {
		blk := m.data[lba+i]
		dst := buf[i*uint64(m.bs) : (i+1)*uint64(m.bs)]
		if blk == nil {
			for j := range dst {
				dst[j] = 0
			}
		} else {
			copy(dst, blk)
		}
	}
	return nil
}
func (m *memoryDevice) WriteBlocks(buf []byte, lba uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := uint64(0); i < uint64(len(buf))/uint64(m.bs); i++ {
		blk := make([]byte, m.bs)
		copy(blk, buf[i*uint64(m.bs):])
		m.data[lba+i] = blk
	}
	return nil
}
func (m *memoryDevice) Flush() error { return nil }

func (f *faultyDevice) BlockSize() uint32 { return f.inner.BlockSize() }
func (f *faultyDevice) NumBlocks() uint64 { return f.inner.NumBlocks() }
func (f *faultyDevice) ReadBlocks(buf []byte, lba uint64) error {
	f.mu.Lock()
	fail := f.failReads
	f.mu.Unlock()
	if fail {
		return errors.New("injected media error")
	}
	return f.inner.ReadBlocks(buf, lba)
}
func (f *faultyDevice) WriteBlocks(buf []byte, lba uint64) error {
	return f.inner.WriteBlocks(buf, lba)
}
func (f *faultyDevice) Flush() error { return nil }

// TestDeviceErrorSurfacesAsStatus: injected media failures must surface as
// NVMe error statuses, not hangs or disconnects.
func TestDeviceErrorSurfacesAsStatus(t *testing.T) {
	dev := &faultyDevice{inner: newMemoryDevice(4096, 1024)}
	srv, err := Listen("127.0.0.1:0", ServerConfig{Mode: targetqp.ModeOPF, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Write(0, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	dev.failReads = true
	dev.mu.Unlock()
	if _, err := c.Read(0, 1, 0); err == nil {
		t.Fatal("injected read error not surfaced")
	}
	dev.mu.Lock()
	dev.failReads = false
	dev.mu.Unlock()
	// The connection survives the error.
	if _, err := c.Read(0, 1, 0); err != nil {
		t.Fatalf("connection broken after device error: %v", err)
	}
}

// TestAbruptClientDisconnect: killing a client mid-window must not take
// the server down or affect other tenants.
func TestAbruptClientDisconnect(t *testing.T) {
	srv, err := NewMemoryServer("127.0.0.1:0", targetqp.ModeOPF, 4096, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Victim connection: submit a partial window, then slam the socket.
	victim, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioThroughputCritical, Window: 16, QueueDepth: 32, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = victim.Submit(hostqp.IO{Op: nvme.OpWrite, LBA: uint64(i), Blocks: 1, Data: make([]byte, 4096),
			Done: func(hostqp.Result) {}})
	}
	victim.conn.Close() // abrupt: no graceful teardown

	// A healthy tenant keeps working.
	healthy, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	payload := bytes.Repeat([]byte{0x42}, 4096)
	for i := 0; i < 20; i++ {
		if err := healthy.Write(uint64(100+i), payload, 0); err != nil {
			t.Fatalf("healthy tenant failed after victim disconnect: %v", err)
		}
	}
	got, err := healthy.Read(100, 1, 0)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after disconnect: %v", err)
	}
	victim.Close()
}

// TestGarbageBytesRejected: a connection speaking garbage must be dropped
// without disturbing the server.
func TestGarbageBytesRejected(t *testing.T) {
	srv, err := NewMemoryServer("127.0.0.1:0", targetqp.ModeOPF, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(bytes.Repeat([]byte{0xFF}, 64)); err != nil {
		t.Fatal(err)
	}
	// The server should close the connection promptly.
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := raw.Read(buf); err != nil {
			break
		}
	}
	raw.Close()

	// Server still serves protocol-conformant clients.
	c, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(0, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
}

// TestCommandBeforeICReqDropped: sending a command capsule before the
// handshake must terminate that connection, not the server.
func TestCommandBeforeICReqDropped(t *testing.T) {
	srv, err := NewMemoryServer("127.0.0.1:0", targetqp.ModeOPF, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cmd := &proto.CapsuleCmd{Cmd: nvme.Command{Opcode: nvme.OpRead, CID: 1, NSID: 1}}
	if err := proto.WritePDU(raw, cmd); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := raw.Read(buf); err != nil {
			break // dropped, as required
		}
	}
	raw.Close()

	c, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestIdleDrainFlushesPartialWindow: a synchronous write on a wide-window
// TC connection must complete via the idle-drain timer instead of hanging.
func TestIdleDrainFlushesPartialWindow(t *testing.T) {
	srv, err := NewMemoryServer("127.0.0.1:0", targetqp.ModeOPF, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioThroughputCritical, Window: 16, QueueDepth: 32, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		done <- c.Write(3, make([]byte, 4096), 0)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("partial window hung; idle drain did not fire")
	}
}

// TestTargetTearsDownDeadInitiatorMidWindow: when an initiator dies with a
// partial TC window parked in the target's queue, the target must drop the
// orphaned requests, recycle the tenant ID, and keep serving everyone else.
// Before session teardown existed, the dead tenant's queue sat in the PM
// forever and its tenant ID was lost permanently.
func TestTargetTearsDownDeadInitiatorMidWindow(t *testing.T) {
	srv, err := NewMemoryServer("127.0.0.1:0", targetqp.ModeOPF, 4096, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Drive the victim with raw PDUs: a real Conn's idle-drain timer would
	// flush the partial window, but a dead-mid-window initiator leaves it
	// parked — exactly the state teardown has to clean up.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.WritePDU(raw, &proto.ICReq{PFV: 1, QueueDepth: 32,
		Prio: proto.PrioThroughputCritical, NSID: 1}); err != nil {
		t.Fatal(err)
	}
	icr, err := proto.ReadPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	victimTenant := icr.(*proto.ICResp).Tenant
	const parked = 5
	for i := 0; i < parked; i++ {
		err := proto.WritePDU(raw, &proto.CapsuleCmd{
			Cmd:  nvme.Command{Opcode: nvme.OpWrite, CID: nvme.CID(i), NSID: 1, SLBA: uint64(i)},
			Prio: proto.PrioThroughputCritical, Tenant: victimTenant,
			Data: make([]byte, 4096),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "parked window to reach the target", func() bool {
		return srv.Stats().CmdPDUs >= parked
	})
	raw.Close() // die without teardown

	waitFor(t, "target to tear the session down", func() bool {
		return srv.ActiveSessions() == 0
	})
	if st := srv.Stats(); st.Disconnects != 1 || st.TeardownDrops != parked {
		t.Fatalf("disconnects=%d teardownDrops=%d, want 1 and %d", st.Disconnects, st.TeardownDrops, parked)
	}
	if pm := srv.PMStats(); pm.TeardownDrops != parked {
		t.Fatalf("PM TeardownDrops = %d", pm.TeardownDrops)
	}

	// The freed tenant ID is reusable, and the replacement works.
	repl, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioThroughputCritical, Window: 2, QueueDepth: 8, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	if got := repl.Tenant(); got != victimTenant {
		t.Fatalf("tenant ID not recycled: victim=%d replacement=%d", victimTenant, got)
	}
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	for i := 0; i < 4; i++ {
		if err := repl.Write(uint64(200+i), payload, 0); err != nil {
			t.Fatalf("replacement tenant write %d: %v", i, err)
		}
	}
	got, err := repl.Read(200, 1, 0)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("replacement read-back: %v", err)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
