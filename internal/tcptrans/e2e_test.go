package tcptrans

import (
	"testing"
	"time"

	"nvmeopf/internal/bdev"
	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

// TestE2EFeedbackChannel drives real I/O over a live connection with the
// telemetry cadence on and asserts the full loop: the host's e2e deltas
// merge exactly into the target's per-tenant histograms (sample counts
// match the host's own completion count), the updates refresh the
// queue-depth gauge, and each ack re-estimates the clock offset.
func TestE2EFeedbackChannel(t *testing.T) {
	dev, err := bdev.NewMemory(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Mode: targetqp.ModeOPF, Device: dev, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hostTel := telemetry.New()
	conn, err := DialWith(srv.Addr(), hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 4, QueueDepth: 16, NSID: 1,
		Telemetry: hostTel,
	}, DialConfig{TelemetryInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const n = 24
	buf := make([]byte, 512)
	for i := 0; i < n; i++ {
		if err := conn.Write(uint64(i), buf, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, err := conn.Read(uint64(i), 1, 0); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	tenant := conn.Tenant()

	// The cadence is asynchronous: wait for the target to have merged
	// everything the host completed.
	deadline := time.Now().Add(5 * time.Second)
	var samples int64
	for time.Now().Before(deadline) {
		if h := tel.E2EHist(tenant, telemetry.ClassLS); h != nil {
			if samples = h.Count(); samples == 2*n {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if samples != 2*n {
		t.Fatalf("target merged %d e2e samples, want %d (exact merge)", samples, 2*n)
	}

	var snap telemetry.E2ESnapshot
	for _, s := range tel.E2E() {
		if s.Tenant == uint16(tenant) {
			snap = s
		}
	}
	if snap.Updates == 0 {
		t.Fatal("no TelemetryUpdates recorded for the tenant")
	}
	if len(snap.Classes) != 1 || snap.Classes[0].Class != "ls" {
		t.Fatalf("classes = %+v, want one ls row", snap.Classes)
	}
	cs := snap.Classes[0]
	if cs.Samples != 2*n || cs.P99NS <= 0 || cs.MaxNS < cs.P99NS {
		t.Fatalf("ls snapshot %+v inconsistent", cs)
	}
	// The host e2e view includes the fabric round trip the service view
	// cannot: its p99 must dominate the target-side service p99.
	if cs.ServiceP99NS <= 0 || cs.GapP99NS < 0 {
		t.Fatalf("service p99 %d / gap %d, want positive service p99 and non-negative gap",
			cs.ServiceP99NS, cs.GapP99NS)
	}

	// The acks re-estimated the clock offset on the host.
	count, _ := hostTel.ClockReestimates(tenant)
	if count == 0 {
		t.Fatal("no clock re-estimates recorded on the host")
	}
	if off, rtt := conn.ClockOffset(); rtt <= 0 {
		t.Fatalf("clock estimate (%d, %d), want positive rtt", off, rtt)
	}
}

// TestE2EDisabledIsInvisible pins the opt-in contract: without a
// TelemetryInterval, no TelemetryUpdate ever reaches the target and no
// e2e state exists — the wire and the registries look exactly like a
// build without the feature.
func TestE2EDisabledIsInvisible(t *testing.T) {
	dev, err := bdev.NewMemory(512, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	srv, err := Listen("127.0.0.1:0", ServerConfig{
		Mode: targetqp.ModeOPF, Device: dev, Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := Dial(srv.Addr(), hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 4, QueueDepth: 16, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	buf := make([]byte, 512)
	for i := 0; i < 8; i++ {
		if err := conn.Write(uint64(i), buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // long enough for any stray cadence

	if st := srv.Stats(); st.TelemetryUpdates != 0 {
		t.Fatalf("target merged %d TelemetryUpdates with the channel off", st.TelemetryUpdates)
	}
	if e2e := tel.E2E(); len(e2e) != 0 {
		t.Fatalf("e2e state exists with the channel off: %+v", e2e)
	}
}
