package tcptrans

// Regression tests for the transport-edge bugs: the DialRetry busy-spin
// when backoff is zero, the per-pump idle-timer churn, and Conn.Write
// inventing a 4096-byte geometry on a closed connection.

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
)

// TestRetryLoopZeroBackoffFloored pins the busy-spin fix: with a zero
// base backoff every wait used to be zero (maxBackoff = 32×0), so a
// fleet pointed at a dead target would hammer it in a tight loop. The
// floor must make every sleep at least the default base.
func TestRetryLoopZeroBackoffFloored(t *testing.T) {
	for _, backoff := range []time.Duration{0, -time.Second} {
		var sleeps []time.Duration
		record := func(d time.Duration) { sleeps = append(sleeps, d) }
		rng := rand.New(rand.NewSource(1))
		_, used, err := retryLoop(5, backoff, record, rng, func() (*Conn, error) {
			return nil, errors.New("connection refused")
		})
		if err == nil || used != 5 {
			t.Fatalf("backoff=%v: used=%d err=%v", backoff, used, err)
		}
		if len(sleeps) != 4 {
			t.Fatalf("backoff=%v: %d sleeps, want 4", backoff, len(sleeps))
		}
		for i, d := range sleeps {
			if d < defaultRetryBackoff {
				t.Errorf("backoff=%v sleep %d = %v: below the %v floor (busy-spin)", backoff, i, d, defaultRetryBackoff)
			}
		}
		// The floored base must still back off exponentially, not sit flat.
		if last := sleeps[len(sleeps)-1]; last < 4*defaultRetryBackoff {
			t.Errorf("backoff=%v: final sleep %v shows no exponential growth", backoff, last)
		}
	}
}

// TestIdleDrainTimerReused pins the timer-churn fix: pumping a stream of
// TC submissions must re-arm one reusable timer, not allocate a fresh
// time.AfterFunc per pump and leave the last one armed after Close.
func TestIdleDrainTimerReused(t *testing.T) {
	srv, err := NewMemoryServer("127.0.0.1:0", targetqp.ModeOPF, 4096, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), hostqp.Config{Class: proto.PrioThroughputCritical, Window: 4, QueueDepth: 8, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}

	// timerOnReactor reads c.idle where it is owned.
	timerOnReactor := func() *time.Timer {
		ch := make(chan *time.Timer, 1)
		if !c.post(func() { ch <- c.idle }) {
			return nil
		}
		return <-ch
	}

	buf := make([]byte, 4096)
	if err := c.Write(1, buf, 0); err != nil { // first pump creates the timer
		t.Fatal(err)
	}
	first := timerOnReactor()
	if first == nil {
		t.Fatal("no idle timer after first TC write")
	}
	for i := 0; i < 20; i++ {
		if err := c.Write(uint64(1+i%4), buf, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if again := timerOnReactor(); again != first {
		t.Fatalf("idle timer reallocated across pumps: %p -> %p", first, again)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the reactor is gone: a late timer fire must find the
	// post path closed (no stray event, no panic), and the timer must not
	// be armed anymore.
	if c.post(func() {}) {
		t.Error("post succeeded after Close")
	}
	c.idleFlush() // what a stray fire would run; must be a no-op
	if first.Stop() {
		t.Error("idle timer still armed after Close")
	}
}

// TestWriteClosedConnReportsError pins the geometry fix: Write on a
// closed (or broken) connection must surface the connection error, not
// silently validate the payload against an invented 4096-byte block
// size.
func TestWriteClosedConnReportsError(t *testing.T) {
	srv, err := NewMemoryServer("127.0.0.1:0", targetqp.ModeOPF, 512, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), hostqp.Config{Window: 2, QueueDepth: 4, NSID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Write(0, make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// 512 bytes is a valid payload for this namespace; the old code
	// validated it against a made-up 4096B geometry and returned a
	// misleading "not a multiple of the block size" error. The fixed path
	// reports the connection state — ErrClosed, or the transport error
	// that broke the connection first (reader and Close race to set it).
	err = c.Write(0, make([]byte, 512), 0)
	if err == nil {
		t.Fatal("Write on closed conn succeeded")
	}
	if strings.Contains(err.Error(), "block size") {
		t.Errorf("Write on closed conn validated invented geometry: %v", err)
	}
	if !errors.Is(err, ErrClosed) && c.Err() == nil {
		t.Errorf("Write on closed conn: %v is neither ErrClosed nor the connection error", err)
	}
}
