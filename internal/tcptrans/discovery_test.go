package tcptrans

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
	"nvmeopf/internal/telemetry"
)

func TestDiscoveryRoundTrip(t *testing.T) {
	disc, err := ListenDiscovery("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()

	srv := startServer(t, targetqp.ModeOPF)
	if err := disc.Register("nqn.2024-01.io.nvmeopf:sub1", srv.Addr(), targetqp.ModeOPF); err != nil {
		t.Fatal(err)
	}
	if err := disc.Register("nqn.2024-01.io.nvmeopf:sub2", "10.0.0.9:4420", targetqp.ModeBaseline); err != nil {
		t.Fatal(err)
	}

	entries, err := Discover(disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	want := disc.Entries()
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("discovered %+v, want %+v", entries, want)
	}
	if len(entries) != 2 || entries[0].NQN != "nqn.2024-01.io.nvmeopf:sub1" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Mode != uint8(targetqp.ModeOPF) {
		t.Fatal("mode lost")
	}
}

func TestDiscoveryRegisterValidation(t *testing.T) {
	disc, err := ListenDiscovery("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	if err := disc.Register("", "addr:1", targetqp.ModeOPF); err == nil {
		t.Error("empty NQN accepted")
	}
	if err := disc.Register("nqn.x", "", targetqp.ModeOPF); err == nil {
		t.Error("empty address accepted")
	}
}

func TestDiscoveryUnregister(t *testing.T) {
	disc, _ := ListenDiscovery("127.0.0.1:0")
	defer disc.Close()
	_ = disc.Register("nqn.a", "x:1", targetqp.ModeOPF)
	disc.Unregister("nqn.a")
	entries, err := Discover(disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestDialDiscovered(t *testing.T) {
	disc, _ := ListenDiscovery("127.0.0.1:0")
	defer disc.Close()
	srv := startServer(t, targetqp.ModeOPF)
	_ = disc.Register("nqn.sub", srv.Addr(), targetqp.ModeOPF)

	c, err := DialDiscovered(disc.Addr(), "nqn.sub", hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(0, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := DialDiscovered(disc.Addr(), "nqn.missing", hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
	}); err == nil {
		t.Fatal("missing NQN resolved")
	}
}

func TestDiscoveryRejectsNonDiscReq(t *testing.T) {
	disc, _ := ListenDiscovery("127.0.0.1:0")
	defer disc.Close()
	conn, err := net.Dial("tcp", disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.WritePDU(conn, &proto.ICReq{PFV: 1}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	p, err := proto.ReadPDU(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*proto.TermReq); !ok {
		t.Fatalf("want TermReq, got %v", p.PDUType())
	}
}

func TestRegisterRemote(t *testing.T) {
	disc, err := ListenDiscovery("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	if err := RegisterRemote(disc.Addr(), "nqn.remote", "10.1.2.3:4420", targetqp.ModeOPF); err != nil {
		t.Fatal(err)
	}
	entries, err := Discover(disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].NQN != "nqn.remote" || entries[0].Addr != "10.1.2.3:4420" {
		t.Fatalf("entries = %+v", entries)
	}
	// Re-registration updates in place.
	if err := RegisterRemote(disc.Addr(), "nqn.remote", "10.1.2.3:9999", targetqp.ModeBaseline); err != nil {
		t.Fatal(err)
	}
	entries, _ = Discover(disc.Addr())
	if len(entries) != 1 || entries[0].Addr != "10.1.2.3:9999" {
		t.Fatalf("update failed: %+v", entries)
	}
	// Invalid registrations rejected locally.
	if err := RegisterRemote(disc.Addr(), "", "x:1", targetqp.ModeOPF); err == nil {
		t.Fatal("empty NQN registered")
	}
}

// fakeClock is an injectable discovery clock tests advance by hand.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }
func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}
func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestDiscoveryTTLExpiryAndKeepAlive pins the liveness contract: a TTL'd
// registration expires once its deadline passes (counted on telemetry),
// and a re-registration inside the TTL refreshes the deadline so the
// member survives past where the original deadline would have killed it.
func TestDiscoveryTTLExpiryAndKeepAlive(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.New()
	disc, err := ListenDiscoveryCluster("127.0.0.1:0", DiscoveryConfig{
		Telemetry:     reg,
		Clock:         clk.Now,
		SweepInterval: time.Hour, // expiry must work inline, without the sweeper
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()

	keep := proto.DiscRegister{
		Entry: proto.DiscEntry{NQN: "nqn.ka", Addr: "h:1", Mode: 1},
		TTLMs: 100,
	}
	if _, err := disc.register(&keep); err != nil {
		t.Fatal(err)
	}
	// 80ms in: still alive; the keep-alive pushes the deadline out.
	clk.Advance(80 * time.Millisecond)
	if _, err := disc.register(&keep); err != nil {
		t.Fatalf("keep-alive rejected: %v", err)
	}
	// 160ms in: past the ORIGINAL deadline — the refresh must have saved it.
	clk.Advance(80 * time.Millisecond)
	if got := disc.Entries(); len(got) != 1 {
		t.Fatalf("member expired despite keep-alive: %+v", got)
	}
	if n := reg.Global().DiscoveryExpired; n != 0 {
		t.Fatalf("spurious expiries: %d", n)
	}
	// 300ms in with no further keep-alive: expired and counted.
	clk.Advance(140 * time.Millisecond)
	if got := disc.Entries(); len(got) != 0 {
		t.Fatalf("member outlived its TTL: %+v", got)
	}
	if n := reg.Global().DiscoveryExpired; n != 1 {
		t.Fatalf("expired counter = %d, want 1", n)
	}
	// A TTL-less registration never expires.
	if _, err := disc.register(&proto.DiscRegister{
		Entry: proto.DiscEntry{NQN: "nqn.forever", Addr: "h:2", Mode: 1},
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(24 * time.Hour)
	if got := disc.Entries(); len(got) != 1 || got[0].NQN != "nqn.forever" {
		t.Fatalf("TTL-less member expired: %+v", got)
	}
}

// TestDiscoveryPromotionAndZombieFence drives the control plane through a
// failover: primary expires, the replica is promoted (epoch bumps), and
// the dead ex-primary's re-registration carrying its stale epoch is
// rejected until it re-discovers the current map.
func TestDiscoveryPromotionAndZombieFence(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.New()
	disc, err := ListenDiscoveryCluster("127.0.0.1:0", DiscoveryConfig{
		Telemetry: reg, Clock: clk.Now, SweepInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()

	resp, err := disc.register(&proto.DiscRegister{
		Entry: proto.DiscEntry{NQN: "nqn.a", Addr: "h:1", Mode: 1},
		TTLMs: 100, Shards: []uint32{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	primaryEpoch := resp.Epoch
	if _, err := disc.register(&proto.DiscRegister{
		Entry: proto.DiscEntry{NQN: "nqn.b", Addr: "h:2", Mode: 1},
		TTLMs: 100, Shards: []uint32{0},
	}); err != nil {
		t.Fatal(err)
	}
	as := disc.Assignments()
	if len(as) != 1 || as[0].Primary != "nqn.a" || as[0].Replica != "nqn.b" {
		t.Fatalf("assignments = %+v", as)
	}

	// nqn.a goes silent; nqn.b keeps its heart beating.
	clk.Advance(80 * time.Millisecond)
	if _, err := disc.register(&proto.DiscRegister{
		Entry: proto.DiscEntry{NQN: "nqn.b", Addr: "h:2", Mode: 1},
		TTLMs: 100, Shards: []uint32{0},
	}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(80 * time.Millisecond) // nqn.a past its deadline
	as = disc.Assignments()
	if len(as) != 1 || as[0].Primary != "nqn.b" || as[0].Replica != "" {
		t.Fatalf("replica not promoted: %+v", as)
	}
	cur := disc.Epoch()
	if cur <= primaryEpoch {
		t.Fatalf("epoch did not advance across failover: %d <= %d", cur, primaryEpoch)
	}

	// The zombie rejoins acting on the map it saw before it died: fenced.
	_, err = disc.register(&proto.DiscRegister{
		Entry: proto.DiscEntry{NQN: "nqn.a", Addr: "h:1", Mode: 1},
		TTLMs: 100, Epoch: primaryEpoch, Shards: []uint32{0},
	})
	if err == nil || !strings.Contains(err.Error(), "stale epoch") {
		t.Fatalf("stale rejoin not fenced: %v", err)
	}
	if n := reg.Global().StaleEpochs; n != 1 {
		t.Fatalf("stale-epoch counter = %d, want 1", n)
	}
	// After re-discovering the current epoch it may rejoin — as standby,
	// then replica (the promoted primary keeps its role).
	if _, err := disc.register(&proto.DiscRegister{
		Entry: proto.DiscEntry{NQN: "nqn.a", Addr: "h:1", Mode: 1},
		TTLMs: 100, Epoch: cur, Shards: []uint32{0},
	}); err != nil {
		t.Fatalf("fresh-epoch rejoin rejected: %v", err)
	}
	as = disc.Assignments()
	if len(as) != 1 || as[0].Primary != "nqn.b" || as[0].Replica != "nqn.a" {
		t.Fatalf("rejoined zombie stole a role: %+v", as)
	}
}

// TestDialDiscoveredEmptyAndStaleLog exercises resolution failure modes:
// an empty log, and a stale entry whose target is gone (the dial itself
// must fail, not hang).
func TestDialDiscoveredEmptyAndStaleLog(t *testing.T) {
	disc, _ := ListenDiscovery("127.0.0.1:0")
	defer disc.Close()
	cfg := hostqp.Config{Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1}
	if _, err := DialDiscovered(disc.Addr(), "nqn.any", cfg); err == nil {
		t.Fatal("resolved against an empty log")
	}
	// Stale entry: the registered target closed its listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	_ = disc.Register("nqn.stale", dead, targetqp.ModeOPF)
	if _, err := DialDiscovered(disc.Addr(), "nqn.stale", cfg); err == nil {
		t.Fatal("dial against a dead target succeeded")
	}
}

// TestDiscoverMidResponseReset points Discover at an endpoint that resets
// the connection partway through its response: the client must surface an
// error, not hang or panic.
func TestDiscoverMidResponseReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if _, err := proto.ReadPDU(conn); err != nil {
			conn.Close()
			return
		}
		full := proto.Marshal(&proto.DiscResp{Entries: []proto.DiscEntry{
			{NQN: "nqn.cut", Addr: "h:1", Mode: 1},
		}})
		conn.Write(full[:len(full)/2]) // half a PDU, then a hard close
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not FIN
		}
		conn.Close()
	}()
	if _, err := Discover(ln.Addr().String()); err == nil {
		t.Fatal("mid-response reset went unnoticed")
	}
}
