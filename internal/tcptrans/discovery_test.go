package tcptrans

import (
	"net"
	"reflect"
	"testing"
	"time"

	"nvmeopf/internal/hostqp"
	"nvmeopf/internal/proto"
	"nvmeopf/internal/targetqp"
)

func TestDiscoveryRoundTrip(t *testing.T) {
	disc, err := ListenDiscovery("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()

	srv := startServer(t, targetqp.ModeOPF)
	if err := disc.Register("nqn.2024-01.io.nvmeopf:sub1", srv.Addr(), targetqp.ModeOPF); err != nil {
		t.Fatal(err)
	}
	if err := disc.Register("nqn.2024-01.io.nvmeopf:sub2", "10.0.0.9:4420", targetqp.ModeBaseline); err != nil {
		t.Fatal(err)
	}

	entries, err := Discover(disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	want := disc.Entries()
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("discovered %+v, want %+v", entries, want)
	}
	if len(entries) != 2 || entries[0].NQN != "nqn.2024-01.io.nvmeopf:sub1" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Mode != uint8(targetqp.ModeOPF) {
		t.Fatal("mode lost")
	}
}

func TestDiscoveryRegisterValidation(t *testing.T) {
	disc, err := ListenDiscovery("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	if err := disc.Register("", "addr:1", targetqp.ModeOPF); err == nil {
		t.Error("empty NQN accepted")
	}
	if err := disc.Register("nqn.x", "", targetqp.ModeOPF); err == nil {
		t.Error("empty address accepted")
	}
}

func TestDiscoveryUnregister(t *testing.T) {
	disc, _ := ListenDiscovery("127.0.0.1:0")
	defer disc.Close()
	_ = disc.Register("nqn.a", "x:1", targetqp.ModeOPF)
	disc.Unregister("nqn.a")
	entries, err := Discover(disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestDialDiscovered(t *testing.T) {
	disc, _ := ListenDiscovery("127.0.0.1:0")
	defer disc.Close()
	srv := startServer(t, targetqp.ModeOPF)
	_ = disc.Register("nqn.sub", srv.Addr(), targetqp.ModeOPF)

	c, err := DialDiscovered(disc.Addr(), "nqn.sub", hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Write(0, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := DialDiscovered(disc.Addr(), "nqn.missing", hostqp.Config{
		Class: proto.PrioLatencySensitive, Window: 1, QueueDepth: 1, NSID: 1,
	}); err == nil {
		t.Fatal("missing NQN resolved")
	}
}

func TestDiscoveryRejectsNonDiscReq(t *testing.T) {
	disc, _ := ListenDiscovery("127.0.0.1:0")
	defer disc.Close()
	conn, err := net.Dial("tcp", disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.WritePDU(conn, &proto.ICReq{PFV: 1}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	p, err := proto.ReadPDU(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*proto.TermReq); !ok {
		t.Fatalf("want TermReq, got %v", p.PDUType())
	}
}

func TestRegisterRemote(t *testing.T) {
	disc, err := ListenDiscovery("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()
	if err := RegisterRemote(disc.Addr(), "nqn.remote", "10.1.2.3:4420", targetqp.ModeOPF); err != nil {
		t.Fatal(err)
	}
	entries, err := Discover(disc.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].NQN != "nqn.remote" || entries[0].Addr != "10.1.2.3:4420" {
		t.Fatalf("entries = %+v", entries)
	}
	// Re-registration updates in place.
	if err := RegisterRemote(disc.Addr(), "nqn.remote", "10.1.2.3:9999", targetqp.ModeBaseline); err != nil {
		t.Fatal(err)
	}
	entries, _ = Discover(disc.Addr())
	if len(entries) != 1 || entries[0].Addr != "10.1.2.3:9999" {
		t.Fatalf("update failed: %+v", entries)
	}
	// Invalid registrations rejected locally.
	if err := RegisterRemote(disc.Addr(), "", "x:1", targetqp.ModeOPF); err == nil {
		t.Fatal("empty NQN registered")
	}
}
